//! Concurrency tests for the scalable free path: the lock-free local
//! fast path (zero mutex acquisitions for tcache-bound frees), an
//! 8-thread mixed-size stress with cross-thread handoff over
//! `std::sync::mpsc`, and crash recovery with remote frees still queued.

use std::sync::mpsc;
use std::sync::Arc;

use nvalloc::api::PmAllocator;
use nvalloc::telemetry::OpKind;
use nvalloc::{NvAllocator, NvConfig};
use nvalloc_pmem::{LatencyMode, PmemConfig, PmemPool};

fn pool_mb(mb: usize) -> Arc<PmemPool> {
    PmemPool::new(PmemConfig::default().pool_size(mb << 20).latency_mode(LatencyMode::Off))
}

/// A same-thread free landing in a non-full tcache takes zero mutex
/// acquisitions: N alternating malloc/free pairs bump the free-path lock
/// counter by exactly 0 and the fast-local counter by exactly N.
#[test]
fn single_thread_frees_take_zero_locks() {
    let alloc = NvAllocator::create(pool_mb(64), NvConfig::log()).unwrap();
    let mut t = alloc.thread();
    let sizes = [24usize, 64, 192];
    // Warm up: fault in a slab + tcache for each class.
    for (i, &s) in sizes.iter().enumerate() {
        let root = alloc.root_offset(i);
        t.malloc_to(s, root).unwrap();
        t.free_from(root).unwrap();
    }
    let m0 = alloc.metrics();
    let n = 300u64;
    for i in 0..n {
        let root = alloc.root_offset(8);
        t.malloc_to(sizes[i as usize % sizes.len()], root).unwrap();
        t.free_from(root).unwrap();
    }
    let d = alloc.metrics().since(&m0);
    assert_eq!(d.free_locks, 0, "same-thread tcache-bound frees must not lock");
    assert_eq!(d.free_fast_local, n, "every free must take the lock-free fast path");
    assert_eq!(d.free_remote, 0);
}

/// 8 OS threads, mixed small and large sizes, ~1/3 of blocks handed to
/// the ring neighbour over `std::sync::mpsc` and freed there. Final
/// occupancy accounting proves no block was lost or freed twice: every
/// free succeeded, frees == allocations, and live bytes return to zero.
#[test]
fn eight_thread_stress_with_mpsc_handoff() {
    const THREADS: usize = 8;
    const OPS: usize = 480;
    const SIZES: [usize; 8] = [16, 48, 64, 200, 512, 1344, 2048, 24 * 1024];

    let alloc =
        NvAllocator::create(pool_mb(256), NvConfig::log().arenas(THREADS).slab_reservoir(4))
            .unwrap();
    let (mut txs, mut rxs): (Vec<_>, Vec<_>) =
        (0..THREADS).map(|_| mpsc::channel::<usize>()).unzip();
    // Thread k frees what its predecessor sends on rxs[k] and hands off
    // to its successor on txs[k+1]; rotating the senders by one gives
    // each thread ownership of exactly its pair.
    txs.rotate_left(1);

    std::thread::scope(|s| {
        for k in 0..THREADS {
            let tx = txs.pop().expect("one sender per thread");
            let rx = rxs.pop().expect("one receiver per thread");
            let alloc = &alloc;
            s.spawn(move || {
                let mut t = alloc.thread();
                let base = (THREADS - 1 - k) * OPS; // pop order is reversed
                for i in 0..OPS {
                    while let Ok(slot) = rx.try_recv() {
                        t.free_from(alloc.root_offset(slot)).expect("handoff free");
                    }
                    let slot = base + i;
                    let root = alloc.root_offset(slot);
                    t.malloc_to(SIZES[i % SIZES.len()], root).expect("alloc");
                    if i % 3 == 0 {
                        tx.send(slot).expect("neighbour alive");
                    } else {
                        t.free_from(root).expect("local free");
                    }
                }
                // Hang up, then drain the predecessor until it does too.
                drop(tx);
                while let Ok(slot) = rx.recv() {
                    t.free_from(alloc.root_offset(slot)).expect("drain free");
                }
            });
        }
    });

    assert_eq!(alloc.live_bytes(), 0, "every allocated block must be freed");
    let m = alloc.metrics();
    let allocs = m.hists.of(OpKind::MallocSmall).count() + m.hists.of(OpKind::MallocLarge).count();
    assert_eq!(allocs, (THREADS * OPS) as u64);
    assert_eq!(m.hists.of(OpKind::Free).count(), allocs, "frees must match allocations");
    assert!(m.free_remote > 0, "cross-thread frees must use the remote queues");
}

/// Crash while remote frees are still queued (freeing threads completed
/// every persistent transition, the owner arena never drained). LOG
/// recovery must see the frees as durable and the heap must reconcile.
#[test]
fn crash_mid_remote_free_recovers_log() {
    let pool = PmemPool::new(
        PmemConfig::default()
            .pool_size(96 << 20)
            .latency_mode(LatencyMode::Off)
            .crash_tracking(true),
    );
    let alloc = NvAllocator::create(Arc::clone(&pool), NvConfig::log().arenas(2).slab_reservoir(4))
        .unwrap();
    let mut t0 = alloc.thread(); // arena 0
    let mut t1 = alloc.thread(); // arena 1 (least-loaded assignment)
    let n = 48usize;
    let mut addrs = Vec::new();
    for i in 0..n {
        let addr = t0.malloc_to(64 + (i % 3) * 120, alloc.root_offset(i)).unwrap();
        pool.write_u64(addr, 0xBEEF << 16 | i as u64);
        pool.flush(t0.pm_mut(), addr, 8, nvalloc_pmem::FlushKind::Data);
        pool.fence(t0.pm_mut());
        addrs.push(addr);
    }
    // t1 frees every even block: cross-arena, so these land on arena 0's
    // remote queue, which nobody drains before the crash.
    for i in (0..n).step_by(2) {
        t1.free_from(alloc.root_offset(i)).unwrap();
    }
    let m = alloc.metrics();
    assert!(m.free_remote > 0, "frees must have gone through the remote queue");
    assert_eq!(m.remote_drain_batches, 0, "the queue must still be pending at the crash");

    let img = PmemPool::from_crash_image(pool.crash());
    let (ralloc, report) =
        NvAllocator::recover(Arc::clone(&img), NvConfig::log().arenas(2)).expect("recover");
    assert!(!report.normal_shutdown);
    let mut t = ralloc.thread();
    for (i, &addr) in addrs.iter().enumerate() {
        let root = ralloc.root_offset(i);
        if i % 2 == 0 {
            // Freed before the crash: durably gone.
            assert_eq!(img.read_u64(root), 0, "freed root {i} must be zeroed");
            assert!(t.free_from(root).is_err(), "freed block {i} must not free again");
        } else {
            // Survivor: payload intact, freeable exactly once.
            assert_eq!(img.read_u64(root), addr, "survivor root {i}");
            assert_eq!(img.read_u64(addr), 0xBEEF << 16 | i as u64, "payload {i}");
            t.free_from(root).unwrap();
            assert!(t.free_from(root).is_err());
        }
    }
    assert_eq!(ralloc.live_bytes(), 0);
    // The heap stays fully usable.
    for i in 0..256usize {
        let a = t.malloc_to(200, ralloc.root_offset(i)).unwrap();
        img.write_u64(a, i as u64);
    }
    for i in 0..256usize {
        assert_eq!(img.read_u64(img.read_u64(ralloc.root_offset(i))), i as u64);
    }
}

/// Same crash shape under the weakly consistent GC variant: recovery is
/// conservative (an unflushed root zeroing may resurrect a freed block),
/// but the recovered heap must reconcile — every root-reachable block
/// frees exactly once and live bytes return to zero.
#[test]
fn crash_mid_remote_free_recovers_gc() {
    let pool = PmemPool::new(
        PmemConfig::default()
            .pool_size(96 << 20)
            .latency_mode(LatencyMode::Off)
            .crash_tracking(true),
    );
    let alloc =
        NvAllocator::create(Arc::clone(&pool), NvConfig::gc().arenas(2).slab_reservoir(4)).unwrap();
    let mut t0 = alloc.thread();
    let mut t1 = alloc.thread();
    let n = 48usize;
    for i in 0..n {
        t0.malloc_to(64 + (i % 3) * 120, alloc.root_offset(i)).unwrap();
    }
    for i in (0..n).step_by(2) {
        t1.free_from(alloc.root_offset(i)).unwrap();
    }
    assert!(alloc.metrics().free_remote > 0);

    let img = PmemPool::from_crash_image(pool.crash());
    let (ralloc, report) =
        NvAllocator::recover(Arc::clone(&img), NvConfig::gc().arenas(2)).expect("recover");
    assert!(!report.normal_shutdown);
    let mut t = ralloc.thread();
    for i in 0..n {
        let root = ralloc.root_offset(i);
        if img.read_u64(root) != 0 {
            t.free_from(root).unwrap();
            assert!(t.free_from(root).is_err());
        }
    }
    assert_eq!(ralloc.live_bytes(), 0, "GC recovery must account exactly the reachable set");
    for i in 0..128usize {
        t.malloc_to(300, ralloc.root_offset(i)).unwrap();
    }
    assert!(ralloc.live_bytes() > 0);
}
