//! Allocator service thread: determinism, crash safety, sanitizer
//! cleanliness, telemetry surfacing, and the stranded-remote-queue
//! regression.
//!
//! The service only changes *who* executes slow paths — every persistent
//! transition stays on the existing WAL/booklog protocols — so a
//! service-enabled pool must recover from any crash prefix exactly as a
//! service-off pool would, and same-seed virtual-clock runs must stay
//! byte-identical. On `LatencyMode::Off` pools the virtual clock never
//! reaches the first tick boundary, so these suites drive every epoch
//! tick explicitly through [`NvAllocator::service_step`] and sanitize /
//! crash-enumerate each handoff at chosen points.

use std::collections::HashMap;
use std::sync::Arc;

use nvalloc::api::PmAllocator;
use nvalloc::{NvAllocator, NvConfig};
use nvalloc_pmem::{FlushKind, LatencyMode, PmemConfig, PmemPool};

fn virtual_pool(mb: usize, pmsan: bool) -> Arc<PmemPool> {
    PmemPool::new(
        PmemConfig::default().pool_size(mb << 20).latency_mode(LatencyMode::Virtual).pmsan(pmsan),
    )
}

/// Block size (bytes) used by the slab-churn phases: ~54 blocks per
/// 64 KiB slab, so a few hundred allocations span several slabs and a
/// full free phase retires more frames than the reservoir (8) can park —
/// every extra retirement becomes a `ServiceRequest::Retire`, and the
/// reservoir refills through `Carve` requests.
const BLOCK: usize = 1200;

/// Allocate `n` payload-stamped blocks into roots `0..n`, then free them
/// all, pumping one explicit service tick every `step_every` operations
/// (0 = never). Exercises both request kinds: frees retire whole slabs
/// past the reservoir (Retire), reservoir refills below the low-water
/// mark queue carves (Carve).
fn slab_churn(alloc: &NvAllocator, pool: &PmemPool, n: usize, step_every: usize) {
    let mut t = alloc.thread();
    for i in 0..n {
        let addr = t.malloc_to(BLOCK, alloc.root_offset(i)).unwrap();
        pool.write_u64(addr, i as u64 ^ 0xA110C);
        pool.flush(t.pm_mut(), addr, 8, FlushKind::Data);
        pool.fence(t.pm_mut());
        if step_every > 0 && i % step_every == step_every - 1 {
            alloc.service_step();
        }
    }
    for i in 0..n {
        t.free_from(alloc.root_offset(i)).unwrap();
        if step_every > 0 && i % step_every == step_every - 1 {
            alloc.service_step();
        }
    }
}

// ---------------------------------------------------------------------
// Satellite: stranded remote queues (regression).
// ---------------------------------------------------------------------

/// An arena whose threads have all exited has no malloc slow path left
/// to drain its remote-free queue; `quiesce()` must be the foreign drain
/// of last resort and count it as such.
#[test]
fn quiesce_drains_stranded_remote_queue_of_exited_thread() {
    let pool = virtual_pool(96, false);
    let alloc = NvAllocator::create(Arc::clone(&pool), NvConfig::log().arenas(2).roots(8)).unwrap();
    // Least-loaded assignment pins t0 to arena 0 and t1 to arena 1.
    let mut t0 = alloc.thread();
    let mut t1 = alloc.thread();
    let addr = t0.malloc_to(64, alloc.root_offset(0)).unwrap();
    assert_ne!(addr, 0);
    // Arena 0 now has zero registered threads; a foreign free of its
    // block lands on its remote queue, and with the owner gone nothing
    // ever drains it on a malloc slow path.
    drop(t0);
    t1.free_from(alloc.root_offset(0)).unwrap();
    drop(t1);
    let before = alloc.metrics();
    assert_eq!(before.free_remote, 1, "the foreign free must have taken the remote path");
    assert_eq!(before.remote_drain_foreign, 0, "nothing drained it yet");
    alloc.quiesce();
    let after = alloc.metrics();
    assert_eq!(
        after.remote_drain_foreign,
        before.remote_drain_foreign + 1,
        "quiesce must count the stranded-queue drain as a foreign drain"
    );
    assert_eq!(alloc.live_bytes(), 0);
    // The queue is empty now: a second quiesce finds nothing stranded.
    alloc.quiesce();
    assert_eq!(alloc.metrics().remote_drain_foreign, after.remote_drain_foreign);
}

// ---------------------------------------------------------------------
// Satellite: service telemetry surfacing.
// ---------------------------------------------------------------------

#[test]
fn service_counters_surface_in_snapshot_json_and_timeline() {
    let pool = virtual_pool(96, false);
    let cfg = NvConfig::log()
        .roots(1024)
        .service(true)
        .service_tick_ns(5_000)
        .timeline(10_000)
        .decay_ms(u64::MAX);
    let alloc = NvAllocator::create(Arc::clone(&pool), cfg).unwrap();
    slab_churn(&alloc, &pool, 600, 50);
    let m = alloc.metrics();
    assert!(m.service_ticks > 0, "explicit steps and virtual-clock ticks must both count");
    assert!(m.service_requests > 0, "slab churn past the reservoir must queue requests");
    assert!(m.service_completions > 0, "ticks must execute queued requests");
    assert!(
        m.service_completions <= m.service_requests,
        "stale requests complete as no-ops, never over-count: {} > {}",
        m.service_completions,
        m.service_requests
    );
    let json = m.to_json();
    for key in [
        "\"service_requests\":",
        "\"service_completions\":",
        "\"service_ticks\":",
        "\"service_rebalances\":",
    ] {
        assert!(json.contains(key), "metrics JSON missing {key}");
    }
    // The timeline sampler exports the per-arena queue-depth gauge.
    let tl = alloc.timeline_json().expect("sampler on");
    assert!(!tl.is_empty());
    for line in tl.lines() {
        assert!(line.contains("\"service_depth\":"), "sample missing service_depth: {line}");
    }
}

#[test]
fn service_off_pools_never_tick_and_step_is_a_noop() {
    let pool = virtual_pool(96, false);
    let alloc = NvAllocator::create(Arc::clone(&pool), NvConfig::log().roots(1024)).unwrap();
    assert_eq!(alloc.service_step(), 0, "service off: step must be a no-op");
    slab_churn(&alloc, &pool, 300, 0);
    let m = alloc.metrics();
    assert_eq!(m.service_ticks, 0);
    assert_eq!(m.service_requests, 0);
    assert_eq!(m.service_completions, 0);
}

// ---------------------------------------------------------------------
// Satellite: determinism under the virtual clock.
// ---------------------------------------------------------------------

/// Deterministic single-threaded churn in the style of the observatory
/// suite: slab-heavy traffic plus occasional large blocks, driven by a
/// tiny seeded LCG (self-contained so this trace never changes).
fn churn_mixed(alloc: &NvAllocator, ops: usize, seed: u64) {
    const SLOTS: usize = 64;
    let mut t = alloc.thread();
    let mut x = seed | 1;
    let mut live = [false; SLOTS];
    for _ in 0..ops {
        x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        let slot = (x >> 33) as usize % SLOTS;
        let root = alloc.root_offset(slot);
        if live[slot] {
            t.free_from(root).unwrap();
            live[slot] = false;
        } else {
            let size = if x.is_multiple_of(20) { 40 << 10 } else { 16 + (x >> 7) as usize % 2000 };
            t.malloc_to(size, root).unwrap();
            live[slot] = true;
        }
    }
}

fn deterministic_run(service: bool) -> NvAllocator {
    let cfg = NvConfig::log()
        .roots(64)
        .timeline(10_000)
        .decay_ms(u64::MAX)
        .service(service)
        .service_tick_ns(10_000);
    let alloc = NvAllocator::create(virtual_pool(96, false), cfg).unwrap();
    churn_mixed(&alloc, 6_000, 0x5EED);
    alloc
}

#[test]
fn service_enabled_same_seed_runs_are_byte_identical() {
    let a = deterministic_run(true);
    let b = deterministic_run(true);
    assert!(
        a.metrics().service_ticks > 0,
        "virtual-clock churn must cross tick boundaries (tick=10us over a 6k-op run)"
    );
    let ja = a.timeline_json().expect("sampler on");
    let jb = b.timeline_json().expect("sampler on");
    assert!(ja.lines().count() > 5, "expected a real series");
    assert_eq!(ja, jb, "same seed + service on: timelines must be byte-identical");
    // And the full telemetry stream agrees too (wall-clock-driven lock
    // profiling and decay excluded, as in the observatory suite).
    let norm = |mut m: nvalloc::telemetry::MetricsSnapshot| {
        m.lock_wait_ns = 0;
        m.lock_hold_ns = 0;
        m.lock_wait_hist = Default::default();
        m.lock_hold_hist = Default::default();
        m.decay_epochs = 0;
        m
    };
    assert_eq!(norm(a.metrics()), norm(b.metrics()));
}

// ---------------------------------------------------------------------
// Satellite: pmsan-sanitized service stepping.
// ---------------------------------------------------------------------

#[test]
fn service_step_loop_is_pmsan_clean() {
    let pool = virtual_pool(96, true);
    let cfg = NvConfig::log().roots(1024).service(true).service_tick_ns(5_000);
    let alloc = NvAllocator::create(Arc::clone(&pool), cfg).unwrap();
    // Churn with a tight explicit tick cadence: every carve, retire,
    // remote drain, slow-GC increment, and decay the service executes
    // runs under the sanitizer's shadow state.
    slab_churn(&alloc, &pool, 600, 10);
    for _ in 0..32 {
        alloc.service_step();
    }
    assert!(alloc.metrics().service_completions > 0, "the loop must sanitize real handoffs");
    alloc.quiesce();
    alloc.exit();
    assert_eq!(
        pool.pmsan_total(),
        0,
        "service handoffs broke persist ordering: {}",
        pool.pmsan_report().expect("pmsan pool").to_json()
    );
}

// ---------------------------------------------------------------------
// Satellite: crash-matrix prefix enumeration across service handoffs.
// ---------------------------------------------------------------------

/// One step of the handoff trace: allocate into a root slot, free a
/// slot, or run one explicit service tick (the crash can land between a
/// queued request and its execution, or right after execution).
#[derive(Clone, Copy)]
enum Op {
    Alloc(usize),
    Free(usize),
    Step,
}

/// 320 allocations spanning ~7 slabs, then 320 frees retiring far more
/// frames than the reservoir parks — with ticks interleaved so carves
/// and retires flow through the service queue mid-trace.
fn handoff_trace() -> Vec<Op> {
    let mut ops = Vec::new();
    for i in 0..320 {
        ops.push(Op::Alloc(i));
        if i % 16 == 15 {
            ops.push(Op::Step);
        }
    }
    for i in 0..320 {
        ops.push(Op::Free(i));
        if i % 8 == 7 {
            ops.push(Op::Step);
        }
    }
    ops
}

fn run_handoff_prefix(steps: usize) -> (Arc<PmemPool>, HashMap<usize, u64>) {
    let pool = PmemPool::new(
        PmemConfig::default()
            .pool_size(96 << 20)
            .latency_mode(LatencyMode::Off)
            .crash_tracking(true)
            .pmsan(true),
    );
    let cfg = NvConfig::log().roots(1024).service(true);
    let alloc = NvAllocator::create(Arc::clone(&pool), cfg).unwrap();
    let mut t = alloc.thread();
    let mut live = HashMap::new();
    for op in handoff_trace().into_iter().take(steps) {
        match op {
            Op::Alloc(slot) => {
                let addr = t.malloc_to(BLOCK, alloc.root_offset(slot)).unwrap();
                pool.write_u64(addr, slot as u64 | 0xE44 << 40);
                pool.flush(t.pm_mut(), addr, 8, FlushKind::Data);
                pool.fence(t.pm_mut());
                live.insert(slot, addr);
            }
            Op::Free(slot) => {
                t.free_from(alloc.root_offset(slot)).unwrap();
                live.remove(&slot);
            }
            Op::Step => {
                alloc.service_step();
            }
        }
    }
    (pool, live)
}

fn verify_handoff_recovery(pool: Arc<PmemPool>, live: &HashMap<usize, u64>, steps: usize) {
    assert_eq!(
        pool.pmsan_total(),
        0,
        "prefix {steps}: pre-crash trace has ordering violations: {}",
        pool.pmsan_report().expect("pmsan pool").to_json()
    );
    let img = PmemPool::from_crash_image(pool.crash());
    let cfg = NvConfig::log().roots(1024).service(true);
    let (alloc, report) = NvAllocator::recover(Arc::clone(&img), cfg.clone())
        .unwrap_or_else(|e| panic!("prefix {steps}: recovery failed: {e}"));
    assert!(!report.normal_shutdown);
    let rep = nvalloc::doctor::audit_pool(&img, &cfg);
    assert!(rep.clean(), "prefix {steps}: doctor violations: {:?}", rep.violations);
    // Every committed allocation survives with its payload — a deferred
    // retire whose `large.free` had not run yet must never have taken a
    // live slab with it.
    for (&slot, &addr) in live {
        assert_eq!(img.read_u64(alloc.root_offset(slot)), addr, "prefix {steps}: root {slot}");
        assert_eq!(img.read_u64(addr), slot as u64 | 0xE44 << 40, "prefix {steps}: payload {slot}");
    }
    // No extent double-owned: live ranges are disjoint after recovery.
    let mut objs = alloc.objects();
    objs.sort_unstable();
    for w in objs.windows(2) {
        assert!(
            w[0].0 + w[0].1 as u64 <= w[1].0,
            "prefix {steps}: extent double-owned: {:#x}+{} overlaps {:#x}",
            w[0].0,
            w[0].1,
            w[1].0
        );
    }
    // Everything frees exactly once, and no extent was lost: frames that
    // sat dismantled in the volatile service queue at the crash must be
    // reallocatable after the leak sweep.
    let mut t = alloc.thread();
    for &slot in live.keys() {
        t.free_from(alloc.root_offset(slot)).unwrap();
        assert!(t.free_from(alloc.root_offset(slot)).is_err(), "prefix {steps}: double free");
    }
    assert_eq!(alloc.live_bytes(), 0, "prefix {steps}");
    for i in 0..400usize {
        t.malloc_to(BLOCK, alloc.root_offset(512 + i))
            .unwrap_or_else(|e| panic!("prefix {steps}: post-recovery alloc {i}: {e}"));
    }
    assert_eq!(
        img.pmsan_total(),
        0,
        "prefix {steps}: recovery + reuse churn has ordering violations: {}",
        img.pmsan_report().expect("pmsan pool").to_json()
    );
}

#[test]
fn crash_matrix_across_service_handoffs() {
    let len = handoff_trace().len();
    // Coarse sweep over the whole trace plus a dense window around the
    // free phase, where retires queue and execute back-to-back (slot
    // 320..340 of the trace is mid-alloc; ~360 onward is the free/retire
    // phase on this trace shape).
    let mut points = vec![0, 3, 17, 40, 101, 170, 239, 288, 339, 340, 341, 420, 520, 620, len];
    points.extend(460..472);
    for steps in points {
        let (pool, live) = run_handoff_prefix(steps);
        verify_handoff_recovery(pool, &live, steps);
    }
}

#[test]
fn queued_requests_survive_quiesce_and_orderly_exit() {
    // A quiesce must execute whatever sits in the service queues (the
    // heap is "truly idle" afterwards), and an orderly exit of a
    // service pool must save an image that recovers as a normal
    // shutdown.
    let pool = PmemPool::new(
        PmemConfig::default()
            .pool_size(96 << 20)
            .latency_mode(LatencyMode::Off)
            .crash_tracking(true),
    );
    let cfg = NvConfig::log().roots(1024).service(true);
    let alloc = NvAllocator::create(Arc::clone(&pool), cfg.clone()).unwrap();
    // Churn with *no* explicit steps: on an Off-clock pool the queue can
    // only drain through quiesce/exit.
    slab_churn(&alloc, &pool, 600, 0);
    let m = alloc.metrics();
    assert!(m.service_requests > 0, "churn must have queued requests");
    alloc.quiesce();
    let m2 = alloc.metrics();
    assert!(
        m2.service_completions > 0,
        "quiesce must execute queued service requests ({} queued)",
        m2.service_requests
    );
    alloc.exit();
    let img = PmemPool::from_crash_image(pool.crash());
    let (_alloc2, report) = NvAllocator::recover(img, cfg).unwrap();
    assert!(report.normal_shutdown, "orderly exit of a service pool");
}
