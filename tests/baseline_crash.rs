//! Crash (not clean-exit) recovery for the baseline allocators: strongly
//! consistent baselines preserve committed state; GC baselines recover
//! the root-reachable set.

use std::collections::HashMap;
use std::sync::Arc;

use nvalloc::api::PmAllocator;
use nvalloc_baselines::{Baseline, BaselineKind};
use nvalloc_pmem::{FlushKind, LatencyMode, PmemConfig, PmemPool};

fn crash_pool() -> Arc<PmemPool> {
    PmemPool::new(
        PmemConfig::default()
            .pool_size(64 << 20)
            .latency_mode(LatencyMode::Off)
            .crash_tracking(true),
    )
}

#[test]
fn strong_baselines_survive_crash() {
    for kind in BaselineKind::STRONG {
        let p = crash_pool();
        let a = Baseline::create(Arc::clone(&p), kind).unwrap();
        let mut t = a.thread();
        let mut live: HashMap<usize, u64> = HashMap::new();
        for i in 0..400usize {
            let sz = if i % 11 == 0 { 40 << 10 } else { 24 + i % 800 };
            let addr = t.malloc_to(sz, a.root_offset(i)).unwrap();
            p.write_u64(addr, i as u64 + 5);
            p.flush(t.pm_mut(), addr, 8, FlushKind::Data);
            live.insert(i, addr);
        }
        for i in (0..400).step_by(4) {
            t.free_from(a.root_offset(i)).unwrap();
            live.remove(&i);
        }
        p.fence(t.pm_mut());
        // Hard crash: only flushed lines survive. Strong baselines flushed
        // every root install and bitmap update.
        let img = PmemPool::from_crash_image(p.crash());
        let (a2, rep) =
            Baseline::recover(Arc::clone(&img), kind).unwrap_or_else(|e| panic!("{kind:?}: {e}"));
        assert!(rep.slabs > 0, "{kind:?}");
        for (&i, &addr) in &live {
            assert_eq!(img.read_u64(a2.root_offset(i)), addr, "{kind:?} root {i}");
            assert_eq!(img.read_u64(addr), i as u64 + 5, "{kind:?} payload {i}");
        }
        // nvm_malloc defers free-space reconstruction, but all baselines
        // must serve new allocations after recovery.
        let mut t2 = a2.thread();
        let fresh = t2.malloc_to(256, a2.root_offset(500)).unwrap();
        assert_ne!(fresh, 0);
        // Live blocks are freeable except where deferral makes the slab
        // view conservative — PMDK/PAllocator rescan exactly.
        if kind != BaselineKind::NvmMalloc {
            for &i in live.keys() {
                t2.free_from(a2.root_offset(i)).unwrap_or_else(|e| panic!("{kind:?}: {e}"));
            }
        }
    }
}

#[test]
fn weak_baselines_gc_recover_reachable_set() {
    for kind in BaselineKind::WEAK {
        let p = crash_pool();
        let a = Baseline::create(Arc::clone(&p), kind).unwrap();
        let mut t = a.thread();
        let mut live: HashMap<usize, u64> = HashMap::new();
        for i in 0..300usize {
            let addr = t.malloc_to(64 + i % 500, a.root_offset(i)).unwrap();
            // GC-model contract: the application persists its roots and
            // payloads.
            p.flush(t.pm_mut(), a.root_offset(i), 8, FlushKind::Data);
            p.write_u64(addr, i as u64);
            p.flush(t.pm_mut(), addr, 8, FlushKind::Data);
            live.insert(i, addr);
        }
        // Drop a third of the roots persistently: garbage.
        for i in (0..300).step_by(3) {
            p.write_u64(a.root_offset(i), 0);
            p.flush(t.pm_mut(), a.root_offset(i), 8, FlushKind::Data);
            live.remove(&i);
        }
        p.fence(t.pm_mut());
        let img = PmemPool::from_crash_image(p.crash());
        let (a2, rep) =
            Baseline::recover(Arc::clone(&img), kind).unwrap_or_else(|e| panic!("{kind:?}: {e}"));
        assert_eq!(rep.gc_marked, live.len(), "{kind:?}: GC mark count");
        let mut t2 = a2.thread();
        for (&i, &addr) in &live {
            assert_eq!(img.read_u64(a2.root_offset(i)), addr, "{kind:?} root {i}");
            assert_eq!(img.read_u64(addr), i as u64, "{kind:?} payload {i}");
            t2.free_from(a2.root_offset(i)).unwrap();
        }
    }
}
