//! Heap-observatory timeline sampler: determinism, observational
//! invariance, ring bounds, and crash-safety.
//!
//! The sampler is driven by the virtual PM clock and only *reads* —
//! never persists, never counts, never advances time — so it must be
//! invisible to everything else: same-seed runs emit byte-identical
//! JSON, metrics are unchanged whether it is on or off, and a crash
//! mid-run recovers identically with or without it.

use std::sync::Arc;

use nvalloc::api::PmAllocator;
use nvalloc::{NvAllocator, NvConfig};
use nvalloc_pmem::{LatencyMode, PmemConfig, PmemPool};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

const SLOTS: usize = 64;

/// Deterministic single-threaded malloc/free churn over root slots, on
/// the virtual clock (so the sampler actually ticks).
fn churn(alloc: &NvAllocator, ops: usize, seed: u64) {
    let mut t = alloc.thread();
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut live = [false; SLOTS];
    for _ in 0..ops {
        let slot = rng.gen_range(0..SLOTS);
        let root = alloc.root_offset(slot);
        if live[slot] {
            t.free_from(root).unwrap();
            live[slot] = false;
        } else {
            let size = if rng.gen_bool(0.05) { 40 << 10 } else { rng.gen_range(16..2048) };
            t.malloc_to(size, root).unwrap();
            live[slot] = true;
        }
    }
}

fn virtual_pool(mb: usize) -> Arc<PmemPool> {
    PmemPool::new(PmemConfig::default().pool_size(mb << 20).latency_mode(LatencyMode::Virtual))
}

fn run_once(timeline_ns: u64) -> NvAllocator {
    // decay_ms(MAX) freezes the wall-clock extent-decay schedule, the
    // one mechanism that could legitimately differ between two runs.
    let cfg = NvConfig::log().roots(SLOTS).timeline(timeline_ns).decay_ms(u64::MAX);
    let alloc = NvAllocator::create(virtual_pool(96), cfg).unwrap();
    churn(&alloc, 6_000, 0x0B5E);
    alloc
}

#[test]
fn same_seed_runs_emit_byte_identical_timelines() {
    let a = run_once(10_000);
    let b = run_once(10_000);
    let ja = a.timeline_json().expect("sampler on");
    let jb = b.timeline_json().expect("sampler on");
    assert!(!ja.is_empty(), "virtual-clock churn must produce samples");
    assert!(ja.lines().count() > 5, "expected a real series, got {} lines", ja.lines().count());
    assert_eq!(ja, jb, "same seed, same config: timelines must be byte-identical");
    // Every line is one JSON object with the fixed leading keys; the
    // schema version tag leads so downstream parsers can dispatch on it
    // before reading anything else.
    for line in ja.lines() {
        assert!(line.starts_with("{\"schema_version\":2,\"sample\":"), "bad line shape: {line}");
        assert!(line.ends_with('}'), "bad line shape: {line}");
        assert!(line.contains("\"external_frag\":") && line.contains("\"latency\":"));
    }
}

/// Zero the wall-clock-driven telemetry (lock wait/hold profiling, the
/// large allocator's 50 ms decay timer): those differ between *any* two
/// runs; every modelled counter and histogram must be untouched by the
/// sampler.
fn normalized(mut m: nvalloc::telemetry::MetricsSnapshot) -> nvalloc::telemetry::MetricsSnapshot {
    m.lock_wait_ns = 0;
    m.lock_hold_ns = 0;
    m.lock_wait_hist = Default::default();
    m.lock_hold_hist = Default::default();
    m.decay_epochs = 0;
    m
}

#[test]
fn sampler_leaves_metrics_and_heap_untouched() {
    let on = run_once(10_000);
    let off = run_once(0);
    assert!(off.timeline_json().is_none(), "timeline(0) must disable the sampler");
    assert!(!on.timeline_samples().is_empty());
    // Observational invariance: identical telemetry and identical heap
    // footprint whether the sampler ran or not.
    assert_eq!(normalized(on.metrics()), normalized(off.metrics()));
    assert_eq!(on.heap_mapped_bytes(), off.heap_mapped_bytes());
    assert_eq!(on.live_bytes(), off.live_bytes());
}

#[test]
fn ring_drops_oldest_and_respects_capacity() {
    let cfg = NvConfig::log().roots(SLOTS).timeline(500).timeline_capacity(8);
    let alloc = NvAllocator::create(virtual_pool(96), cfg).unwrap();
    churn(&alloc, 6_000, 0x0B5E);
    let sampler = alloc.timeline_sampler().expect("sampler on");
    let samples = alloc.timeline_samples();
    assert!(samples.len() <= 8, "ring exceeded capacity: {}", samples.len());
    assert!(sampler.dropped() > 0, "a 500 ns tick over this run must wrap an 8-slot ring");
    // The ring keeps the *latest* window: contiguous trailing seqs.
    for w in samples.windows(2) {
        assert_eq!(w[0].seq + 1, w[1].seq);
    }
    let total = sampler.dropped() + samples.len() as u64;
    assert_eq!(samples.last().unwrap().seq, total - 1, "last sample is the newest");
}

#[test]
fn crash_mid_run_recovers_identically_with_and_without_sampler() {
    let image = |timeline_ns: u64| {
        let pool = PmemPool::new(
            PmemConfig::default()
                .pool_size(96 << 20)
                .latency_mode(LatencyMode::Virtual)
                .crash_tracking(true),
        );
        let cfg = NvConfig::log().roots(SLOTS).timeline(timeline_ns).decay_ms(u64::MAX);
        let alloc = NvAllocator::create(Arc::clone(&pool), cfg).unwrap();
        churn(&alloc, 3_000, 0xDEAD);
        // No exit(): the image is whatever the crash left persisted.
        PmemPool::from_crash_image(pool.crash())
    };
    let (alloc_on, rep_on) =
        NvAllocator::recover(image(10_000), NvConfig::log().roots(SLOTS).timeline(10_000))
            .expect("recover with sampler");
    let (_, rep_off) = NvAllocator::recover(image(0), NvConfig::log().roots(SLOTS))
        .expect("recover without sampler");
    // The sampler never persists, so the two same-seed crash images —
    // one cut from a sampled run, one not — recover identically.
    assert_eq!(format!("{rep_on:?}"), format!("{rep_off:?}"));
    // And the recovered heap is fully usable, sampler and all.
    churn(&alloc_on, 2_000, 0xBEEF);
    assert!(!alloc_on.timeline_samples().is_empty(), "sampler ticks after recovery too");
}
