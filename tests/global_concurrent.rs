//! Concurrency battery for the global front end: an N-thread
//! malloc/free/realloc stress with cross-thread frees (objects handed to
//! the next thread over channels, freed there), per-object payload
//! verification, orderly thread exit (TLS handle teardown flushes
//! caches), and a schedule-forced double-init race on the INITIALIZING
//! sentinel via the test-only `init_with_hook` schedule point.

use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::thread;

use nvalloc::api::PmAllocator;
use nvalloc::global::{self, nv_free, nv_malloc, nv_realloc, nv_usable_size};
use nvalloc::NvConfig;
use nvalloc_pmem::{LatencyMode, PmError, PmemConfig, PmemPool};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

static LOCK: Mutex<()> = Mutex::new(());

struct Reset;
impl Drop for Reset {
    fn drop(&mut self) {
        // SAFETY: LOCK serializes tests; all worker threads are joined
        // and their pointers dropped before this guard runs.
        unsafe { global::reset_unchecked() }
    }
}

fn fresh_pool(bytes: usize) -> Arc<PmemPool> {
    PmemPool::new(PmemConfig::default().pool_size(bytes).latency_mode(LatencyMode::Off))
}

/// A live object owned by one thread: address (as usize, to cross
/// threads), requested size, and the fill tag.
#[derive(Clone, Copy)]
struct Obj {
    addr: usize,
    size: usize,
    tag: u8,
}

fn fill(o: &Obj) {
    for i in 0..o.size {
        // SAFETY: addr..addr+size is within the object's granted span.
        unsafe { (o.addr as *mut u8).add(i).write(o.tag.wrapping_add(i as u8)) }
    }
}

fn verify(o: &Obj, who: &str) {
    for i in 0..o.size {
        // SAFETY: the object is live until its single owner frees it.
        let got = unsafe { (o.addr as *const u8).add(i).read() };
        assert_eq!(got, o.tag.wrapping_add(i as u8), "{who}: byte {i} of {:#x}", o.addr);
    }
}

const THREADS: usize = 8;
const OPS: usize = 400;

#[test]
fn multithreaded_stress_with_cross_thread_frees() {
    let _g = LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let _reset = Reset;
    let pool = fresh_pool(192 << 20);
    global::init(Arc::clone(&pool), NvConfig::log().arenas(4)).unwrap();

    // Ring of channels: thread i ships objects to thread (i+1) % N, which
    // verifies and frees them — every free of a shipped object is remote.
    let (txs, rxs): (Vec<_>, Vec<_>) = (0..THREADS).map(|_| mpsc::channel::<Obj>()).unzip();
    let mut txs_rot: Vec<_> = txs.into_iter().map(Some).collect();
    txs_rot.rotate_left(1);

    let handles: Vec<_> = rxs
        .into_iter()
        .zip(txs_rot.iter_mut().map(|t| t.take().unwrap()))
        .enumerate()
        .map(|(tid, (rx, tx))| {
            thread::spawn(move || {
                let mut rng = SmallRng::seed_from_u64(0x5EED + tid as u64);
                let mut mine: Vec<Obj> = Vec::new();
                let mut shipped = 0usize;
                for op in 0..OPS {
                    // Drain anything shipped to us: verify, then free.
                    while let Ok(o) = rx.try_recv() {
                        verify(&o, "remote");
                        nv_free(o.addr as *mut _);
                    }
                    match rng.gen_range(0..10) {
                        // Allocate (sizes cross the small/large boundary).
                        0..=3 => {
                            let size = if rng.gen_bool(0.1) {
                                rng.gen_range(17 << 10..64 << 10)
                            } else {
                                rng.gen_range(1..4096)
                            };
                            let p = nv_malloc(size);
                            assert!(!p.is_null(), "thread {tid} op {op}: oom");
                            assert!(nv_usable_size(p) >= size);
                            let o =
                                Obj { addr: p as usize, size, tag: (tid as u8) ^ (op as u8) | 1 };
                            fill(&o);
                            mine.push(o);
                        }
                        // Free one of ours.
                        4..=5 => {
                            if let Some(o) = mine.pop() {
                                verify(&o, "local");
                                nv_free(o.addr as *mut _);
                            }
                        }
                        // Ship one to the neighbour (cross-thread free).
                        6..=7 => {
                            if let Some(o) = mine.pop() {
                                tx.send(o).unwrap();
                                shipped += 1;
                            }
                        }
                        // Realloc one of ours (prefix must survive).
                        _ => {
                            if let Some(mut o) = mine.pop() {
                                let new_size = rng.gen_range(1..40 << 10);
                                let q = nv_realloc(o.addr as *mut _, new_size);
                                assert!(!q.is_null(), "thread {tid} op {op}: realloc oom");
                                let keep = o.size.min(new_size);
                                for i in 0..keep {
                                    // SAFETY: q is live with ≥ new_size bytes.
                                    let got = unsafe { (q as *const u8).add(i).read() };
                                    assert_eq!(got, o.tag.wrapping_add(i as u8));
                                }
                                o.addr = q as usize;
                                o.size = new_size;
                                o.tag = o.tag.wrapping_add(0x11);
                                fill(&o);
                                mine.push(o);
                            }
                        }
                    }
                }
                drop(tx); // unblocks the neighbour's final drain
                          // Final drain: neighbour may still be shipping.
                while let Ok(o) = rx.recv() {
                    verify(&o, "remote-final");
                    nv_free(o.addr as *mut _);
                }
                for o in mine.drain(..) {
                    verify(&o, "local-final");
                    nv_free(o.addr as *mut _);
                }
                shipped
            })
        })
        .collect();

    let shipped: usize = handles.into_iter().map(|h| h.join().unwrap()).sum();
    assert!(shipped > 0, "stress never exercised a cross-thread free");

    // Worker exit dropped their TLS handles (tcache flush). The heap must
    // now hold only the directory, quiesce cleanly, and survive a
    // shutdown → re-attach round trip with nothing to recover.
    let live = global::with_allocator(|a| {
        a.quiesce();
        a.live_bytes()
    })
    .unwrap();
    assert!(live <= 64 << 10, "{live} bytes live after full teardown");
    global::shutdown().unwrap();
    let rep = global::init(Arc::clone(&pool), NvConfig::log().arenas(4)).unwrap();
    assert!(!rep.created && rep.normal_shutdown, "round trip must be a shallow recovery");
    assert_eq!(rep.recovered, 0);
    assert_eq!(rep.reclaimed, 0);
}

#[test]
fn double_init_race_on_initializing_sentinel() {
    let _g = LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let _reset = Reset;
    let pool_a = fresh_pool(24 << 20);
    let pool_b = fresh_pool(24 << 20);

    let (to_b, in_hook) = mpsc::channel::<()>();
    let (b_done_tx, b_done) = mpsc::channel::<()>();

    let loser = thread::spawn(move || {
        in_hook.recv().unwrap(); // scheduled: the sentinel is parked now
        let err = global::init(pool_b, NvConfig::log()).unwrap_err();
        // While the sentinel is parked, the shim must refuse, not hang or
        // serve a half-built heap.
        assert!(nv_malloc(16).is_null());
        b_done_tx.send(()).unwrap();
        err
    });

    let rep = global::init_with_hook(pool_a, NvConfig::log(), move || {
        to_b.send(()).unwrap();
        b_done.recv().unwrap(); // hold the sentinel until B has collided
    })
    .unwrap();
    assert!(rep.created);

    let err = loser.join().unwrap();
    assert!(
        matches!(err, PmError::InvalidRequest(m) if m.contains("initial")),
        "loser must see a typed initializing/initialized error, got {err:?}"
    );
    // The winner's heap serves.
    assert!(global::is_initialized());
    let p = nv_malloc(128);
    assert!(!p.is_null());
    nv_free(p);
}
