//! Property-based tests over the allocator API: arbitrary operation
//! sequences must preserve the no-overlap invariant, payload integrity,
//! exact root bookkeeping, and error discipline — on NVAlloc (both
//! variants) and representative baselines.

use std::sync::Arc;

use nvalloc::api::PmAllocator;
use nvalloc_pmem::{LatencyMode, PmemConfig, PmemPool};
use nvalloc_workloads::allocators::Which;
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Step {
    Alloc { slot: u8, size: usize },
    Free { slot: u8 },
}

fn step_strategy() -> impl Strategy<Value = Step> {
    prop_oneof![
        3 => (any::<u8>(), 1usize..20_000).prop_map(|(slot, size)| Step::Alloc { slot, size }),
        2 => any::<u8>().prop_map(|slot| Step::Free { slot }),
    ]
}

fn check(which: Which, steps: &[Step]) -> Result<(), TestCaseError> {
    let pool =
        PmemPool::new(PmemConfig::default().pool_size(128 << 20).latency_mode(LatencyMode::Off));
    let alloc = which.create_with_roots(Arc::clone(&pool), 256);
    let mut t = alloc.thread();
    let mut model: [Option<(u64, usize)>; 256] = [None; 256];
    for step in steps {
        match *step {
            Step::Alloc { slot, size } => {
                let slot = slot as usize;
                let root = alloc.root_offset(slot);
                if model[slot].is_some() {
                    // App discipline: free before reusing a root.
                    t.free_from(root).expect("free occupied slot");
                    model[slot] = None;
                }
                let addr = t.malloc_to(size, root).expect("alloc");
                prop_assert!(addr % 8 == 0, "misaligned {addr:#x}");
                prop_assert!((addr as usize) + size <= pool.size(), "out of pool");
                for (s2, m) in model.iter().enumerate() {
                    if let Some((a2, sz2)) = m {
                        let no = addr + size as u64 <= *a2 || addr >= a2 + *sz2 as u64;
                        prop_assert!(no, "overlap slot {slot} vs {s2}");
                    }
                }
                pool.write_u64(addr, slot as u64 ^ 0x5AA5);
                model[slot] = Some((addr, size));
            }
            Step::Free { slot } => {
                let slot = slot as usize;
                let root = alloc.root_offset(slot);
                match model[slot] {
                    Some(_) => {
                        t.free_from(root).expect("free live slot");
                        model[slot] = None;
                        prop_assert!(pool.read_u64(root) == 0, "root not cleared");
                    }
                    None => {
                        prop_assert!(t.free_from(root).is_err(), "double free undetected");
                    }
                }
            }
        }
    }
    for (slot, m) in model.iter().enumerate() {
        if let Some((addr, _)) = m {
            prop_assert!(
                pool.read_u64(*addr) == slot as u64 ^ 0x5AA5,
                "payload of slot {slot} corrupt"
            );
        }
    }
    Ok(())
}

/// Differential property: the same op trace on a sharded large allocator
/// and on a single-shard one (`large_shards(1)`) must produce the same
/// observable behaviour — identical per-op outcomes, identical live-set
/// contents (payloads, live bytes, object-size multiset), and identical
/// post-crash recovery state. Addresses are allowed to differ (shards own
/// different sub-heaps); everything address-independent must match.
fn check_sharded_differential(steps: &[Step]) -> Result<(), TestCaseError> {
    use nvalloc::{NvAllocator, NvConfig};

    let mk = |shards: usize| {
        let pool = PmemPool::new(
            PmemConfig::default()
                .pool_size(128 << 20)
                .latency_mode(LatencyMode::Off)
                .crash_tracking(true),
        );
        let alloc =
            NvAllocator::create(Arc::clone(&pool), NvConfig::log().arenas(4).large_shards(shards))
                .unwrap();
        (pool, alloc)
    };
    let (pool_s, alloc_s) = mk(4);
    let (pool_1, alloc_1) = mk(1);
    prop_assert_eq!(alloc_s.large_shards(), 4);
    prop_assert_eq!(alloc_1.large_shards(), 1);
    let mut ts = alloc_s.thread();
    let mut t1 = alloc_1.thread();
    let mut live: [Option<usize>; 256] = [None; 256];

    for step in steps {
        match *step {
            Step::Alloc { slot, size } => {
                let slot = slot as usize;
                if live[slot].is_some() {
                    ts.free_from(alloc_s.root_offset(slot)).expect("sharded free");
                    t1.free_from(alloc_1.root_offset(slot)).expect("1shard free");
                    live[slot] = None;
                }
                let rs = ts.malloc_to(size, alloc_s.root_offset(slot));
                let r1 = t1.malloc_to(size, alloc_1.root_offset(slot));
                prop_assert_eq!(
                    rs.is_ok(),
                    r1.is_ok(),
                    "alloc({size}) diverged: sharded {rs:?} vs 1-shard {r1:?}"
                );
                if let (Ok(a), Ok(b)) = (rs, r1) {
                    let tag = slot as u64 ^ 0xD1FF;
                    pool_s.write_u64(a, tag);
                    pool_s.flush(ts.pm_mut(), a, 8, nvalloc_pmem::FlushKind::Data);
                    pool_1.write_u64(b, tag);
                    pool_1.flush(t1.pm_mut(), b, 8, nvalloc_pmem::FlushKind::Data);
                    live[slot] = Some(size);
                }
            }
            Step::Free { slot } => {
                let slot = slot as usize;
                let rs = ts.free_from(alloc_s.root_offset(slot));
                let r1 = t1.free_from(alloc_1.root_offset(slot));
                prop_assert_eq!(rs.is_ok(), r1.is_ok(), "free diverged at slot {slot}");
                live[slot] = None;
            }
        }
    }

    // Live-set contents must match while running...
    prop_assert_eq!(alloc_s.live_bytes(), alloc_1.live_bytes(), "live_bytes diverged");
    let sizes = |objs: Vec<(u64, usize)>| {
        let mut v: Vec<usize> = objs.into_iter().map(|(_, s)| s).collect();
        v.sort_unstable();
        v
    };
    prop_assert_eq!(
        sizes(alloc_s.objects()),
        sizes(alloc_1.objects()),
        "object-size multiset diverged"
    );

    // ...and after crash-recovery of both images.
    let img_s = PmemPool::from_crash_image(pool_s.crash());
    let img_1 = PmemPool::from_crash_image(pool_1.crash());
    let (rec_s, rep_s) =
        NvAllocator::recover(Arc::clone(&img_s), NvConfig::log().arenas(4).large_shards(4))
            .expect("recover sharded");
    let (rec_1, rep_1) =
        NvAllocator::recover(Arc::clone(&img_1), NvConfig::log().arenas(4).large_shards(1))
            .expect("recover 1shard");
    prop_assert_eq!(rep_s.normal_shutdown, rep_1.normal_shutdown);
    prop_assert_eq!(rec_s.live_bytes(), rec_1.live_bytes(), "recovered live_bytes diverged");
    prop_assert_eq!(
        sizes(rec_s.objects()),
        sizes(rec_1.objects()),
        "recovered object multiset diverged"
    );
    for (slot, sz) in live.iter().enumerate() {
        if sz.is_some() {
            let a = img_s.read_u64(rec_s.root_offset(slot));
            let b = img_1.read_u64(rec_1.root_offset(slot));
            prop_assert!(a != 0 && b != 0, "slot {slot} lost by one side ({a:#x}/{b:#x})");
            let tag = slot as u64 ^ 0xD1FF;
            prop_assert_eq!(img_s.read_u64(a), tag, "sharded payload {slot}");
            prop_assert_eq!(img_1.read_u64(b), tag, "1shard payload {slot}");
        }
    }
    // Both recovered heaps drain to empty the same way.
    let mut ds = rec_s.thread();
    let mut d1 = rec_1.thread();
    for (slot, sz) in live.iter().enumerate() {
        if sz.is_some() {
            ds.free_from(rec_s.root_offset(slot)).expect("post-recovery free (sharded)");
            d1.free_from(rec_1.root_offset(slot)).expect("post-recovery free (1shard)");
        }
    }
    prop_assert_eq!(rec_s.live_bytes(), 0);
    prop_assert_eq!(rec_1.live_bytes(), 0);
    Ok(())
}

/// Steps biased toward the large path so the differential property
/// actually exercises shard selection, fallback, and cross-shard frees.
fn large_step_strategy() -> impl Strategy<Value = Step> {
    let size = prop_oneof![
        2 => 17_000usize..97_000,
        1 => 1usize..20_000,
    ];
    prop_oneof![
        3 => (any::<u8>(), size).prop_map(|(slot, size)| Step::Alloc { slot, size }),
        2 => any::<u8>().prop_map(|slot| Step::Free { slot }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    #[test]
    fn nvalloc_log_invariants(steps in proptest::collection::vec(step_strategy(), 1..200)) {
        check(Which::NvallocLog, &steps)?;
    }

    #[test]
    fn nvalloc_gc_invariants(steps in proptest::collection::vec(step_strategy(), 1..200)) {
        check(Which::NvallocGc, &steps)?;
    }

    #[test]
    fn pmdk_like_invariants(steps in proptest::collection::vec(step_strategy(), 1..150)) {
        check(Which::Pmdk, &steps)?;
    }

    #[test]
    fn makalu_like_invariants(steps in proptest::collection::vec(step_strategy(), 1..150)) {
        check(Which::Makalu, &steps)?;
    }

    #[test]
    fn pallocator_like_invariants(steps in proptest::collection::vec(step_strategy(), 1..150)) {
        check(Which::Pallocator, &steps)?;
    }
}

proptest! {
    // Heavier per case (two pools + two recoveries), so fewer cases.
    #![proptest_config(ProptestConfig { cases: 10, ..ProptestConfig::default() })]

    #[test]
    fn sharded_and_single_shard_are_observably_identical(
        steps in proptest::collection::vec(large_step_strategy(), 1..120)
    ) {
        check_sharded_differential(&steps)?;
    }
}
