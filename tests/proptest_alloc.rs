//! Property-based tests over the allocator API: arbitrary operation
//! sequences must preserve the no-overlap invariant, payload integrity,
//! exact root bookkeeping, and error discipline — on NVAlloc (both
//! variants) and representative baselines.

use std::sync::Arc;

use nvalloc_pmem::{LatencyMode, PmemConfig, PmemPool};
use nvalloc_workloads::allocators::Which;
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Step {
    Alloc { slot: u8, size: usize },
    Free { slot: u8 },
}

fn step_strategy() -> impl Strategy<Value = Step> {
    prop_oneof![
        3 => (any::<u8>(), 1usize..20_000).prop_map(|(slot, size)| Step::Alloc { slot, size }),
        2 => any::<u8>().prop_map(|slot| Step::Free { slot }),
    ]
}

fn check(which: Which, steps: &[Step]) -> Result<(), TestCaseError> {
    let pool =
        PmemPool::new(PmemConfig::default().pool_size(128 << 20).latency_mode(LatencyMode::Off));
    let alloc = which.create_with_roots(Arc::clone(&pool), 256);
    let mut t = alloc.thread();
    let mut model: [Option<(u64, usize)>; 256] = [None; 256];
    for step in steps {
        match *step {
            Step::Alloc { slot, size } => {
                let slot = slot as usize;
                let root = alloc.root_offset(slot);
                if model[slot].is_some() {
                    // App discipline: free before reusing a root.
                    t.free_from(root).expect("free occupied slot");
                    model[slot] = None;
                }
                let addr = t.malloc_to(size, root).expect("alloc");
                prop_assert!(addr % 8 == 0, "misaligned {addr:#x}");
                prop_assert!((addr as usize) + size <= pool.size(), "out of pool");
                for (s2, m) in model.iter().enumerate() {
                    if let Some((a2, sz2)) = m {
                        let no = addr + size as u64 <= *a2 || addr >= a2 + *sz2 as u64;
                        prop_assert!(no, "overlap slot {slot} vs {s2}");
                    }
                }
                pool.write_u64(addr, slot as u64 ^ 0x5AA5);
                model[slot] = Some((addr, size));
            }
            Step::Free { slot } => {
                let slot = slot as usize;
                let root = alloc.root_offset(slot);
                match model[slot] {
                    Some(_) => {
                        t.free_from(root).expect("free live slot");
                        model[slot] = None;
                        prop_assert!(pool.read_u64(root) == 0, "root not cleared");
                    }
                    None => {
                        prop_assert!(t.free_from(root).is_err(), "double free undetected");
                    }
                }
            }
        }
    }
    for (slot, m) in model.iter().enumerate() {
        if let Some((addr, _)) = m {
            prop_assert!(
                pool.read_u64(*addr) == slot as u64 ^ 0x5AA5,
                "payload of slot {slot} corrupt"
            );
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    #[test]
    fn nvalloc_log_invariants(steps in proptest::collection::vec(step_strategy(), 1..200)) {
        check(Which::NvallocLog, &steps)?;
    }

    #[test]
    fn nvalloc_gc_invariants(steps in proptest::collection::vec(step_strategy(), 1..200)) {
        check(Which::NvallocGc, &steps)?;
    }

    #[test]
    fn pmdk_like_invariants(steps in proptest::collection::vec(step_strategy(), 1..150)) {
        check(Which::Pmdk, &steps)?;
    }

    #[test]
    fn makalu_like_invariants(steps in proptest::collection::vec(step_strategy(), 1..150)) {
        check(Which::Makalu, &steps)?;
    }

    #[test]
    fn pallocator_like_invariants(steps in proptest::collection::vec(step_strategy(), 1..150)) {
        check(Which::Pallocator, &steps)?;
    }
}
