//! Compile-time persistent-layout table.
//!
//! Every `#[repr(C)]` mirror of an on-media structure must have its size,
//! alignment, and field offsets pinned here — `nvalloc_lint`'s
//! `repr-c-sizes` rule fails the build if a `#[repr(C)]` type in
//! `crates/core` or `crates/pmem` is missing from this file. A change to
//! any persistent format therefore shows up as a deliberate edit to this
//! table, next to the comment explaining what the old layout promised.

use std::mem::{align_of, offset_of, size_of};

use nvalloc::internals::{
    ChunkHeaderRaw, LogHeaderRaw, SlabHeaderRaw, WalEntryRaw, CHUNK_HEADER_BYTES, LOG_HEADER_BYTES,
    WAL_ENTRY_BYTES,
};

/// WAL entry slots are 32 B — two per cache line, which is what makes the
/// `IM(WAL)` interleaving experiment (Table 2) meaningful.
#[test]
fn wal_entry_layout() {
    assert_eq!(size_of::<WalEntryRaw>(), WAL_ENTRY_BYTES);
    assert_eq!(size_of::<WalEntryRaw>(), 32);
    assert_eq!(align_of::<WalEntryRaw>(), 8);
    assert_eq!(offset_of!(WalEntryRaw, addr), 0);
    assert_eq!(offset_of!(WalEntryRaw, dest), 8);
    assert_eq!(offset_of!(WalEntryRaw, op_size), 16);
    assert_eq!(offset_of!(WalEntryRaw, seq), 24);
}

/// The log-region header is exactly one cache line, so the slow-GC `alt`
/// flip and both chain heads persist with single-line flushes.
#[test]
fn booklog_log_header_layout() {
    assert_eq!(size_of::<LogHeaderRaw>(), LOG_HEADER_BYTES);
    assert_eq!(size_of::<LogHeaderRaw>(), 64);
    assert_eq!(align_of::<LogHeaderRaw>(), 8);
    assert_eq!(offset_of!(LogHeaderRaw, alt), 0);
    assert_eq!(offset_of!(LogHeaderRaw, head_a), 8);
    assert_eq!(offset_of!(LogHeaderRaw, head_b), 16);
    assert_eq!(offset_of!(LogHeaderRaw, carved), 24);
    assert_eq!(offset_of!(LogHeaderRaw, reserved), 32);
}

/// Chunk headers are one cache line; the id|epoch word and the next
/// pointer share it so a chunk link persists with one flush.
#[test]
fn booklog_chunk_header_layout() {
    assert_eq!(size_of::<ChunkHeaderRaw>(), CHUNK_HEADER_BYTES);
    assert_eq!(size_of::<ChunkHeaderRaw>(), 64);
    assert_eq!(align_of::<ChunkHeaderRaw>(), 8);
    assert_eq!(offset_of!(ChunkHeaderRaw, id_epoch), 0);
    assert_eq!(offset_of!(ChunkHeaderRaw, next), 8);
    assert_eq!(offset_of!(ChunkHeaderRaw, reserved), 16);
}

/// The fixed slab header is three packed words; word 0 doubles as the
/// morph-step flag (persisted alone by `persist_flag`), so it must stay
/// the first word of the slab.
#[test]
fn slab_header_layout() {
    assert_eq!(size_of::<SlabHeaderRaw>(), 24);
    assert_eq!(align_of::<SlabHeaderRaw>(), 8);
    assert_eq!(offset_of!(SlabHeaderRaw, magic_class_flag), 0);
    assert_eq!(offset_of!(SlabHeaderRaw, data_old_index), 8);
    assert_eq!(offset_of!(SlabHeaderRaw, old_data_table), 16);
}
