//! Compile-time persistent-layout table.
//!
//! Every `#[repr(C)]` mirror of an on-media structure must have its size,
//! alignment, and field offsets pinned here — `nvalloc_lint`'s
//! `repr-c-sizes` rule fails the build if a `#[repr(C)]` type in
//! `crates/core` or `crates/pmem` is missing from this file. A change to
//! any persistent format therefore shows up as a deliberate edit to this
//! table, next to the comment explaining what the old layout promised.

use std::mem::{align_of, offset_of, size_of};

use nvalloc::internals::{
    ChunkHeaderRaw, LogHeaderRaw, ProfLogHeaderRaw, ProfRecordRaw, SlabHeaderRaw, WalEntryRaw,
    CHUNK_HEADER_BYTES, LOG_HEADER_BYTES, PROF_HALF_RECORDS, PROF_LOG_BYTES, PROF_LOG_HEADER_BYTES,
    PROF_RECORD_BYTES, WAL_ENTRY_BYTES,
};

/// WAL entry slots are 32 B — two per cache line, which is what makes the
/// `IM(WAL)` interleaving experiment (Table 2) meaningful.
#[test]
fn wal_entry_layout() {
    assert_eq!(size_of::<WalEntryRaw>(), WAL_ENTRY_BYTES);
    assert_eq!(size_of::<WalEntryRaw>(), 32);
    assert_eq!(align_of::<WalEntryRaw>(), 8);
    assert_eq!(offset_of!(WalEntryRaw, addr), 0);
    assert_eq!(offset_of!(WalEntryRaw, dest), 8);
    assert_eq!(offset_of!(WalEntryRaw, op_size), 16);
    assert_eq!(offset_of!(WalEntryRaw, seq), 24);
}

/// The log-region header is exactly one cache line, so the slow-GC `alt`
/// flip and both chain heads persist with single-line flushes.
#[test]
fn booklog_log_header_layout() {
    assert_eq!(size_of::<LogHeaderRaw>(), LOG_HEADER_BYTES);
    assert_eq!(size_of::<LogHeaderRaw>(), 64);
    assert_eq!(align_of::<LogHeaderRaw>(), 8);
    assert_eq!(offset_of!(LogHeaderRaw, alt), 0);
    assert_eq!(offset_of!(LogHeaderRaw, head_a), 8);
    assert_eq!(offset_of!(LogHeaderRaw, head_b), 16);
    assert_eq!(offset_of!(LogHeaderRaw, carved), 24);
    assert_eq!(offset_of!(LogHeaderRaw, reserved), 32);
}

/// Chunk headers are one cache line; the id|epoch word and the next
/// pointer share it so a chunk link persists with one flush.
#[test]
fn booklog_chunk_header_layout() {
    assert_eq!(size_of::<ChunkHeaderRaw>(), CHUNK_HEADER_BYTES);
    assert_eq!(size_of::<ChunkHeaderRaw>(), 64);
    assert_eq!(align_of::<ChunkHeaderRaw>(), 8);
    assert_eq!(offset_of!(ChunkHeaderRaw, id_epoch), 0);
    assert_eq!(offset_of!(ChunkHeaderRaw, next), 8);
    assert_eq!(offset_of!(ChunkHeaderRaw, reserved), 16);
}

/// The profiler-sidelog header is one cache line; word 0 is the
/// active-half selector (the compaction commit point, flipped with a
/// single `persist_u64`) and word 1 the overflow-drop counter.
#[test]
fn prof_log_header_layout() {
    assert_eq!(size_of::<ProfLogHeaderRaw>(), PROF_LOG_HEADER_BYTES);
    assert_eq!(size_of::<ProfLogHeaderRaw>(), 64);
    assert_eq!(align_of::<ProfLogHeaderRaw>(), 8);
    assert_eq!(offset_of!(ProfLogHeaderRaw, active_half), 0);
    assert_eq!(offset_of!(ProfLogHeaderRaw, dropped), 8);
    assert_eq!(offset_of!(ProfLogHeaderRaw, _pad), 16);
}

/// Sidelog records are 32 B — two per cache line, so a record never
/// straddles a line and appears in a crash image all or nothing. The
/// `kind_addr` commit word must stay first: a record is valid iff it is
/// non-zero.
#[test]
fn prof_record_layout() {
    assert_eq!(size_of::<ProfRecordRaw>(), PROF_RECORD_BYTES);
    assert_eq!(size_of::<ProfRecordRaw>(), 32);
    assert_eq!(align_of::<ProfRecordRaw>(), 8);
    assert_eq!(offset_of!(ProfRecordRaw, kind_addr), 0);
    assert_eq!(offset_of!(ProfRecordRaw, site), 8);
    assert_eq!(offset_of!(ProfRecordRaw, seq), 16);
    assert_eq!(offset_of!(ProfRecordRaw, weight_size), 24);
    // Header + two halves of whole records tile the 64 KiB sidelog.
    assert_eq!(PROF_HALF_RECORDS, (PROF_LOG_BYTES - 64) / 64);
    const {
        assert!(
            PROF_LOG_HEADER_BYTES + 2 * PROF_HALF_RECORDS * PROF_RECORD_BYTES <= PROF_LOG_BYTES
        );
    }
}

/// The fixed slab header is three packed words; word 0 doubles as the
/// morph-step flag (persisted alone by `persist_flag`), so it must stay
/// the first word of the slab.
#[test]
fn slab_header_layout() {
    assert_eq!(size_of::<SlabHeaderRaw>(), 24);
    assert_eq!(align_of::<SlabHeaderRaw>(), 8);
    assert_eq!(offset_of!(SlabHeaderRaw, magic_class_flag), 0);
    assert_eq!(offset_of!(SlabHeaderRaw, data_old_index), 8);
    assert_eq!(offset_of!(SlabHeaderRaw, old_data_table), 16);
}
