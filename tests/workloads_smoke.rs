//! Smoke-run every workload generator against every allocator at tiny
//! scale: catches API/behaviour regressions across the full matrix.

use std::sync::Arc;

use nvalloc_pmem::{LatencyMode, PmemConfig, PmemPool};
use nvalloc_workloads::allocators::Which;
use nvalloc_workloads::{dbmstest, fragbench, larson, prodcon, shbench, threadtest};

const ALL: [Which; 7] = [
    Which::Pmdk,
    Which::NvmMalloc,
    Which::Pallocator,
    Which::Makalu,
    Which::Ralloc,
    Which::NvallocLog,
    Which::NvallocGc,
];

fn pool(mb: usize) -> Arc<PmemPool> {
    PmemPool::new(PmemConfig::default().pool_size(mb << 20).latency_mode(LatencyMode::Virtual))
}

#[test]
fn threadtest_matrix() {
    for w in ALL {
        let a = w.create(pool(128));
        let m = threadtest::run(
            &a,
            threadtest::Params { threads: 2, iterations: 2, objects: 64, size: 64 },
        );
        assert_eq!(m.ops, 2 * 2 * 64 * 2, "{w:?}");
        assert!(m.elapsed_ns > 0, "{w:?}");
    }
}

#[test]
fn prodcon_matrix() {
    for w in ALL {
        let a = w.create(pool(128));
        let m = prodcon::run(&a, prodcon::Params { threads: 2, objects: 200, size: 64, batch: 16 });
        assert_eq!(m.ops, 2 * 200, "{w:?}");
    }
}

#[test]
fn shbench_matrix() {
    for w in ALL {
        let a = w.create(pool(128));
        let m = shbench::run(
            &a,
            shbench::Params { threads: 2, iterations: 300, live_window: 16, seed: 3 },
        );
        assert!(m.ops > 0, "{w:?}");
        assert_eq!(a.live_bytes(), 0, "{w:?}");
    }
}

#[test]
fn larson_small_matrix() {
    for w in ALL {
        let a = w.create(pool(128));
        let m = larson::run(
            &a,
            larson::Params { threads: 2, rounds: 3, slots: 32, size_range: (64, 256), seed: 4 },
        );
        assert!(m.ops > 0, "{w:?}");
        assert_eq!(a.live_bytes(), 0, "{w:?}");
    }
}

#[test]
fn larson_large_matrix() {
    for w in ALL {
        let a = w.create(pool(256));
        let m = larson::run(
            &a,
            larson::Params {
                threads: 2,
                rounds: 2,
                slots: 6,
                size_range: (32 << 10, 128 << 10),
                seed: 5,
            },
        );
        assert!(m.ops > 0, "{w:?}");
        assert_eq!(a.live_bytes(), 0, "{w:?}");
    }
}

#[test]
fn dbmstest_matrix() {
    for w in ALL {
        let a = w.create(pool(512));
        let m = dbmstest::run(
            &a,
            dbmstest::Params {
                threads: 2,
                objects: 8,
                warmup: 1,
                iterations: 2,
                delete_ratio: 0.9,
                seed: 6,
            },
        );
        assert!(m.ops > 0, "{w:?}");
        assert_eq!(a.live_bytes(), 0, "{w:?}");
    }
}

#[test]
fn fragbench_w1_matrix() {
    for w in ALL {
        let a = w.create_with_roots(pool(128), 1 << 17);
        let r = fragbench::run(&a, fragbench::TABLE1[0], fragbench::Params::tiny());
        assert!(r.peak_mapped > 0, "{w:?}");
        assert!(r.final_live <= fragbench::Params::tiny().live_cap, "{w:?}");
    }
}
