//! Concurrency tests for the lock-free address radix tree: slab
//! carve/retire/lookup stress across threads, and schedule-orchestrated
//! interleaving tests for the CAS interior-node install path.
//!
//! The rtree's contract (see `rtree.rs`): reads are lock-free and can
//! never observe a *torn* mapping — a lookup returns either `None` or a
//! value some writer actually stored, never a mix of two writes — and
//! racing installs of the same interior node converge on exactly one
//! winner.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Barrier};

use nvalloc::internals::{Owner, RTree};
use nvalloc::SLAB_SIZE;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// 8 threads (4 carvers + 4 readers) hammer one tree. Each carver owns a
/// disjoint set of slab-sized ranges and repeatedly registers/unregisters
/// them (the slab carve/retire path); readers probe random addresses and
/// assert every observed value is exactly the one mapping its range can
/// hold — a torn or stale-mix read would unpack to the wrong slab base or
/// the wrong arena.
#[test]
fn eight_thread_carve_retire_lookup_stress() {
    const CARVERS: usize = 4;
    const RANGES_PER_CARVER: usize = 16;
    const ITERS: usize = 4_000;

    let rt = Arc::new(RTree::new());
    // Spread ranges across interior-node boundaries: consecutive slabs
    // plus a large stride so both leaf-sharing and subtree-install paths
    // run concurrently.
    let range_base = |c: usize, r: usize| -> u64 {
        let lane = (c * RANGES_PER_CARVER + r) as u64;
        (lane * SLAB_SIZE as u64) + (lane % 3) * (1u64 << 26)
    };
    let expected = |c: usize, r: usize| -> u64 {
        Owner::Slab { slab: range_base(c, r), arena: c as u32 }.pack()
    };
    let stop = Arc::new(AtomicBool::new(false));
    let torn = Arc::new(AtomicUsize::new(0));

    std::thread::scope(|s| {
        for c in 0..CARVERS {
            let rt = Arc::clone(&rt);
            s.spawn(move || {
                let mut rng = SmallRng::seed_from_u64(0xCA << 8 | c as u64);
                for _ in 0..ITERS {
                    let r = rng.gen_range(0..RANGES_PER_CARVER);
                    let base = range_base(c, r);
                    rt.insert_range(base, SLAB_SIZE, expected(c, r));
                    assert_eq!(rt.lookup(base + 4096), Some(expected(c, r)));
                    rt.remove_range(base, SLAB_SIZE);
                }
            });
        }
        for k in 0..4usize {
            let rt = Arc::clone(&rt);
            let stop = Arc::clone(&stop);
            let torn = Arc::clone(&torn);
            s.spawn(move || {
                let mut rng = SmallRng::seed_from_u64(0x9E << 8 | k as u64);
                while !stop.load(Ordering::Relaxed) {
                    let c = rng.gen_range(0..CARVERS);
                    let r = rng.gen_range(0..RANGES_PER_CARVER);
                    let probe = range_base(c, r) + rng.gen_range(0..SLAB_SIZE as u64 / 4096) * 4096;
                    if let Some(v) = rt.lookup(probe) {
                        // Lock-free read: the only legal non-None value
                        // for this page is the full packed owner of its
                        // range — anything else is a torn mapping.
                        if v != expected(c, r) {
                            torn.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
            });
        }
        // Scoped: carvers finish first, then release the readers.
        s.spawn({
            let stop = Arc::clone(&stop);
            move || {
                // Give readers the whole carver lifetime to probe.
                std::thread::sleep(std::time::Duration::from_millis(200));
                stop.store(true, Ordering::Relaxed);
            }
        });
    });
    assert_eq!(torn.load(Ordering::Relaxed), 0, "lock-free readers observed a torn mapping");
}

/// Loom-style schedule enumeration for the CAS install path, without
/// loom: the observable schedules of two racing installs into one empty
/// subtree are (a) A before B, (b) B before A, and (c) a true race on the
/// interior-node CAS. (a) and (b) are forced sequentially; (c) is forced
/// many times with a barrier aligning both threads at the install point.
/// Every schedule must converge to the same final state: both mappings
/// present, one winner per interior slot, neighbours unmapped.
#[test]
fn cas_install_interleavings_converge() {
    // Two pages sharing the same L1/L2 interior nodes (adjacent pages).
    let a_off = 0x40_0000u64;
    let b_off = a_off + 4096;
    let (va, vb) = (0xA0u64 << 8 | 0b01, 0xB0u64 << 8 | 0b01);
    let verify = |rt: &RTree| {
        assert_eq!(rt.lookup(a_off), Some(va));
        assert_eq!(rt.lookup(b_off), Some(vb));
        assert_eq!(rt.lookup(b_off + 4096), None);
    };

    // Schedule (a): A installs the subtree, B adopts it.
    let rt = RTree::new();
    rt.insert_range(a_off, 4096, va);
    rt.insert_range(b_off, 4096, vb);
    verify(&rt);

    // Schedule (b): B installs, A adopts.
    let rt = RTree::new();
    rt.insert_range(b_off, 4096, vb);
    rt.insert_range(a_off, 4096, va);
    verify(&rt);

    // Schedule (c): race the install itself. The loser's CAS fails, it
    // frees its candidate node and adopts the winner's — both writes must
    // land in the *same* leaf.
    for _ in 0..512 {
        let rt = RTree::new();
        let gate = Barrier::new(2);
        std::thread::scope(|s| {
            s.spawn(|| {
                gate.wait();
                rt.insert_range(a_off, 4096, va);
            });
            s.spawn(|| {
                gate.wait();
                rt.insert_range(b_off, 4096, vb);
            });
        });
        verify(&rt);
    }
}

/// The remove path under concurrent re-install: removing one range never
/// disturbs a neighbouring range sharing the same leaf, even while that
/// neighbour is being replaced.
#[test]
fn remove_and_reinstall_neighbours_stay_isolated() {
    let rt = Arc::new(RTree::new());
    let left = 0x100_0000u64;
    let right = left + SLAB_SIZE as u64;
    let vl = Owner::Slab { slab: left, arena: 1 }.pack();
    rt.insert_range(left, SLAB_SIZE, vl);

    std::thread::scope(|s| {
        let churn = {
            let rt = Arc::clone(&rt);
            s.spawn(move || {
                let vr = Owner::Slab { slab: right, arena: 2 }.pack();
                for _ in 0..10_000 {
                    rt.insert_range(right, SLAB_SIZE, vr);
                    rt.remove_range(right, SLAB_SIZE);
                }
            })
        };
        let rt = Arc::clone(&rt);
        s.spawn(move || {
            for _ in 0..10_000 {
                assert_eq!(rt.lookup(left + 8192), Some(vl), "neighbour mapping disturbed");
            }
        });
        churn.join().unwrap();
    });
    assert_eq!(rt.lookup(right), None);
    assert_eq!(rt.lookup(left), Some(vl));
}
