//! Flight-recorder integration tests: ring wraparound and drop-oldest
//! accounting, total ordering of the merged multi-producer stream, the
//! `trace_dropped` metric, and the core invariant that tracing is purely
//! observational — switching it off changes no modelled measurement.

use std::sync::Arc;

use nvalloc::trace::{EventKind, TraceRecorder};
use nvalloc::NvConfig;
use nvalloc_pmem::{LatencyMode, PmemConfig, PmemPool};
use nvalloc_workloads::allocators::create_custom;
use nvalloc_workloads::threadtest;
use proptest::prelude::*;

fn pool() -> Arc<PmemPool> {
    PmemPool::new(PmemConfig::default().pool_size(128 << 20).latency_mode(LatencyMode::Virtual))
}

#[test]
fn ring_wraparound_drops_oldest_and_counts() {
    let rec = TraceRecorder::new(8);
    let h = rec.register();
    for i in 0..20u64 {
        h.emit(i * 10, EventKind::MallocBegin.code(), i, 0);
    }
    assert_eq!(rec.events(), 8, "ring holds exactly its capacity");
    assert_eq!(rec.dropped(), 12, "every overwritten event is counted");
    // The survivors are precisely the 8 newest, still in order.
    let m = rec.merged();
    let seqs: Vec<u64> = m.iter().map(|e| e.seq).collect();
    assert_eq!(seqs, (12..20).collect::<Vec<u64>>());
    assert_eq!(m[0].a, 12, "payloads travel with their events");
}

#[test]
fn capacity_floor_is_one_event() {
    // `TraceRecorder::new(0)` must not divide by zero or allocate an
    // un-pushable ring; the configured floor is one slot.
    let rec = TraceRecorder::new(0);
    let h = rec.register();
    h.emit(1, EventKind::FreeBegin.code(), 7, 0);
    h.emit(2, EventKind::FreeEnd.code(), 7, 0);
    assert_eq!(rec.events(), 1);
    assert_eq!(rec.dropped(), 1);
    assert_eq!(rec.merged()[0].code, EventKind::FreeEnd.code());
}

#[test]
fn eight_producers_merge_totally_ordered() {
    const PRODUCERS: usize = 8;
    const PER_THREAD: u64 = 500;
    let rec = TraceRecorder::new(1024);
    let handles: Vec<_> = (0..PRODUCERS).map(|_| rec.register()).collect();
    std::thread::scope(|s| {
        for h in &handles {
            s.spawn(move || {
                for i in 0..PER_THREAD {
                    let kind = EventKind::ALL[i as usize % EventKind::ALL.len()];
                    h.emit(i, kind.code(), i, i * 2);
                }
            });
        }
    });
    let m = rec.merged();
    assert_eq!(m.len(), PRODUCERS * PER_THREAD as usize, "no drops at this capacity");
    assert_eq!(rec.dropped(), 0);
    // Total order: strictly increasing seq with no gaps — the merged
    // stream is a permutation of every emitted event.
    for (i, e) in m.iter().enumerate() {
        assert_eq!(e.seq, i as u64, "merged stream must be gapless and sorted");
    }
    // Each producer contributed exactly its share, under its own tid.
    let mut by_tid = [0u64; PRODUCERS];
    for e in &m {
        by_tid[e.tid as usize] += 1;
    }
    assert_eq!(by_tid, [PER_THREAD; PRODUCERS]);
    // And within one tid, seq order matches program order (i payload).
    for tid in 0..PRODUCERS as u16 {
        let mine: Vec<u64> = m.iter().filter(|e| e.tid == tid).map(|e| e.a).collect();
        assert_eq!(mine, (0..PER_THREAD).collect::<Vec<u64>>());
    }
}

proptest! {
    #[test]
    fn merged_stream_is_totally_ordered_for_any_interleaving(
        // Arbitrary emit schedule over 8 rings: which ring emits next,
        // with which event kind — covering uneven ring loads, idle
        // rings, and per-ring wraparound (capacity 32 < max ops).
        schedule in proptest::collection::vec((0usize..8, 0u16..16), 1..256),
    ) {
        let rec = TraceRecorder::new(32);
        let handles: Vec<_> = (0..8).map(|_| rec.register()).collect();
        for (i, &(ring, k)) in schedule.iter().enumerate() {
            handles[ring].emit(i as u64, EventKind::ALL[k as usize].code(), i as u64, 0);
        }
        let m = rec.merged();
        prop_assert_eq!(m.len() as u64 + rec.dropped(), schedule.len() as u64,
            "every emitted event is either resident or counted dropped");
        // Total order by the shared sequence counter, which here equals
        // program order — so seqs are strictly increasing and each ring's
        // survivors are a suffix of its own emissions.
        prop_assert!(m.windows(2).all(|w| w[0].seq < w[1].seq));
        for (tid, _h) in handles.iter().enumerate() {
            let mine: Vec<u64> = m.iter().filter(|e| e.tid == tid as u16).map(|e| e.seq).collect();
            let all: Vec<u64> = schedule.iter().enumerate()
                .filter(|(_, &(r, _))| r == tid)
                .map(|(i, _)| i as u64)
                .collect();
            let keep = all.len().min(32);
            prop_assert_eq!(&mine[..], &all[all.len() - keep..], "drop-oldest keeps the newest");
        }
    }
}

#[test]
fn trace_dropped_metric_reflects_ring_overflow() {
    // A deliberately tiny ring: the workload emits far more than 64
    // events, so drop-oldest must engage and be visible in the metrics.
    let a = create_custom(pool(), NvConfig::log().trace(true).trace_events_per_thread(64), 1 << 19);
    let p = threadtest::Params { threads: 1, iterations: 4, objects: 100, size: 64 };
    let m = threadtest::run(&a, p);
    assert!(m.metrics.trace_events > 0, "resident events must be reported");
    assert!(m.metrics.trace_events >= 64, "at least one ring is full");
    assert!(m.metrics.trace_dropped > 0, "overflow must surface as trace_dropped");
    // A comfortably sized ring on the same workload drops nothing.
    let b = create_custom(
        pool(),
        NvConfig::log().trace(true).trace_events_per_thread(1 << 16),
        1 << 19,
    );
    let mb = threadtest::run(&b, p);
    assert_eq!(mb.metrics.trace_dropped, 0, "no overflow at 64Ki events/thread");
    assert!(mb.metrics.trace_events > m.metrics.trace_events);
}

#[test]
fn traced_run_exports_parseable_chrome_json() {
    let a = create_custom(pool(), NvConfig::log().trace(true), 1 << 19);
    let p = threadtest::Params { threads: 2, iterations: 2, objects: 50, size: 64 };
    threadtest::run(&a, p);
    let j = a.trace_json().expect("tracing on ⇒ a document");
    assert!(j.starts_with("{\"traceEvents\":["));
    assert!(j.ends_with('}'));
    assert!(j.contains("\"name\":\"malloc\""));
    assert!(j.contains("\"ph\":\"B\"") && j.contains("\"ph\":\"E\""));
    assert!(j.contains("\"displayTimeUnit\":\"ns\""));
    // Two workload threads → at least two distinct Chrome tids.
    assert!(j.contains("\"tid\":0") && j.contains("\"tid\":1"));
}

#[test]
fn trace_off_yields_no_events_and_identical_measurements() {
    // Single-threaded: multi-thread runs are interleaving-dependent,
    // which would mask whether a difference came from tracing.
    let run = |trace: bool| {
        let a = create_custom(pool(), NvConfig::log().trace(trace), 1 << 19);
        let p = threadtest::Params { threads: 1, iterations: 6, objects: 150, size: 64 };
        let m = threadtest::run(&a, p);
        (m, a)
    };
    let (on, a_on) = run(true);
    let (off, a_off) = run(false);
    // Tracing is observational: the modelled measurement is unchanged
    // (the recorder stamps the virtual clock but never advances it).
    assert_eq!(on.ops, off.ops);
    assert_eq!(on.elapsed_ns, off.elapsed_ns);
    assert_eq!(on.stats, off.stats);
    assert_eq!(on.peak_mapped, off.peak_mapped);
    // And disabling it really does silence the recorder.
    assert!(on.metrics.trace_events > 0);
    assert!(a_on.trace_json().is_some());
    assert_eq!(off.metrics.trace_events, 0);
    assert_eq!(off.metrics.trace_dropped, 0);
    assert!(a_off.trace_json().is_none());
}
