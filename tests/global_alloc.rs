//! Differential battery for the `GlobalAlloc` front end and the C-ABI
//! shim: arbitrary malloc/free/realloc/calloc traces (sizes 0..64 KiB,
//! alignments to 4 KiB and beyond, realloc chains) run against a HashMap
//! model. Every step checks pointer alignment, non-overlap of usable
//! spans, payload contents, and `nv_usable_size` consistency; pinned unit
//! tests nail the semantic corners (zero-size, align > size, in-place
//! realloc, pre-init fallback, shutdown/retire behaviour).
//!
//! The front end is process-global, so every test serializes on [`LOCK`]
//! and tears the state down with `reset_unchecked` via a drop guard.

use std::alloc::{GlobalAlloc, Layout};
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use nvalloc::global::{self, nv_calloc, nv_free, nv_malloc, nv_realloc, nv_usable_size, GlobalNv};
use nvalloc::NvConfig;
use nvalloc_pmem::{LatencyMode, PmemConfig, PmemPool};
use proptest::prelude::*;

static LOCK: Mutex<()> = Mutex::new(());

/// Tears the process-global front end down when a test (or proptest case)
/// exits, including early `prop_assert!` returns.
struct Reset;
impl Drop for Reset {
    fn drop(&mut self) {
        // SAFETY: the test holds LOCK (no concurrent front-end use) and
        // drops every pointer it obtained before this guard runs.
        unsafe { global::reset_unchecked() }
    }
}

fn fresh_pool(bytes: usize) -> Arc<PmemPool> {
    PmemPool::new(PmemConfig::default().pool_size(bytes).latency_mode(LatencyMode::Off))
}

// ---------------------------------------------------------------------------
// Differential proptest
// ---------------------------------------------------------------------------

#[derive(Debug, Clone)]
enum Step {
    /// C shim malloc (8-aligned).
    Malloc { key: u8, size: usize },
    /// GlobalAlloc alloc with alignment `1 << align_log`.
    Aligned { key: u8, size: usize, align_log: u8 },
    /// C shim calloc (zeroed).
    Calloc { key: u8, n: usize, elem: usize },
    /// Free through whichever interface allocated the key.
    Free { key: u8 },
    /// Realloc through whichever interface allocated the key.
    Realloc { key: u8, new_size: usize },
}

fn size_strategy() -> BoxedStrategy<usize> {
    prop_oneof![
        5 => 0usize..512,
        3 => 512usize..4096,
        1 => 4096usize..17_000,
        1 => 17_000usize..65_536, // > LARGE_MIN: extent path
    ]
    .boxed()
}

fn step_strategy() -> impl Strategy<Value = Step> {
    prop_oneof![
        4 => (any::<u8>(), size_strategy()).prop_map(|(key, size)| Step::Malloc { key, size }),
        3 => (any::<u8>(), size_strategy(), 0u8..=13).prop_map(|(key, size, align_log)| {
            Step::Aligned { key, size: size.max(1), align_log }
        }),
        1 => (any::<u8>(), 1usize..64, 1usize..256)
            .prop_map(|(key, n, elem)| Step::Calloc { key, n, elem }),
        3 => any::<u8>().prop_map(|key| Step::Free { key }),
        3 => (any::<u8>(), size_strategy()).prop_map(|(key, new_size)| {
            Step::Realloc { key, new_size }
        }),
    ]
}

/// One live object in the model.
#[derive(Debug, Clone, Copy)]
struct Live {
    ptr: *mut u8,
    /// Bytes the application asked for (what we fill and verify).
    size: usize,
    /// Alignment requested at allocation time (layout identity for
    /// GlobalAlloc dealloc/realloc).
    align: usize,
    /// Last Layout size passed to GlobalAlloc (realloc updates it).
    layout_size: usize,
    /// Capacity per nv_usable_size (bounds the overlap spans).
    usable: usize,
    pattern: u8,
    via_global: bool,
}

fn fill(ptr: *mut u8, len: usize, pattern: u8) {
    for i in 0..len {
        // SAFETY: ptr..ptr+len is within the object's granted capacity.
        unsafe { ptr.add(i).write(pattern.wrapping_add(i as u8)) }
    }
}

fn verify(l: &Live) -> Result<(), TestCaseError> {
    for i in 0..l.size {
        // SAFETY: within the live object's requested size.
        let got = unsafe { l.ptr.add(i).read() };
        let want = l.pattern.wrapping_add(i as u8);
        prop_assert!(got == want, "byte {i} of {:p}: got {got:#x} want {want:#x}", l.ptr);
    }
    Ok(())
}

fn check_no_overlap(model: &HashMap<u8, Live>, key: u8, l: &Live) -> Result<(), TestCaseError> {
    let (lo, hi) = (l.ptr as usize, l.ptr as usize + l.usable);
    for (k2, o) in model {
        if *k2 == key {
            continue;
        }
        let (lo2, hi2) = (o.ptr as usize, o.ptr as usize + o.usable);
        prop_assert!(hi <= lo2 || lo >= hi2, "key {key} [{lo:#x},{hi:#x}) overlaps key {k2}");
    }
    Ok(())
}

fn free_one(l: &Live) {
    if l.via_global {
        // SAFETY: ptr came from GlobalNv::alloc with this layout identity.
        unsafe { GlobalNv.dealloc(l.ptr, Layout::from_size_align(l.layout_size, l.align).unwrap()) }
    } else {
        nv_free(l.ptr.cast());
    }
}

fn run_case(steps: &[Step], pattern0: u8) -> Result<(), TestCaseError> {
    let _g = LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let _reset = Reset;
    // Small pool + few arenas: the per-case cost is dominated by pool
    // zeroing and heap formatting, and CI runs 1000 cases.
    global::init(fresh_pool(24 << 20), NvConfig::log().arenas(2)).expect("init");

    let mut model: HashMap<u8, Live> = HashMap::new();
    let mut pattern = pattern0;
    for step in steps {
        pattern = pattern.wrapping_add(0x39);
        match *step {
            Step::Malloc { key, size } => {
                if let Some(l) = model.remove(&key) {
                    verify(&l)?;
                    free_one(&l);
                }
                let ptr = nv_malloc(size).cast::<u8>();
                prop_assert!(!ptr.is_null(), "nv_malloc({size}) returned null");
                prop_assert!((ptr as usize).is_multiple_of(8), "nv_malloc misaligned {ptr:p}");
                let usable = nv_usable_size(ptr.cast());
                prop_assert!(usable >= size.max(1), "usable {usable} < size {size}");
                let l = Live {
                    ptr,
                    size,
                    align: 8,
                    layout_size: size,
                    usable,
                    pattern,
                    via_global: false,
                };
                check_no_overlap(&model, key, &l)?;
                fill(ptr, size, pattern);
                model.insert(key, l);
            }
            Step::Aligned { key, size, align_log } => {
                if let Some(l) = model.remove(&key) {
                    verify(&l)?;
                    free_one(&l);
                }
                let align = 1usize << align_log;
                let layout = Layout::from_size_align(size, align).unwrap();
                // SAFETY: layout has non-zero size.
                let ptr = unsafe { GlobalNv.alloc(layout) };
                prop_assert!(!ptr.is_null(), "alloc({size}, {align}) returned null");
                prop_assert!(
                    (ptr as usize).is_multiple_of(align),
                    "ptr {ptr:p} not {align}-aligned"
                );
                let usable = nv_usable_size(ptr.cast());
                prop_assert!(usable >= size, "usable {usable} < size {size}");
                let l =
                    Live { ptr, size, align, layout_size: size, usable, pattern, via_global: true };
                check_no_overlap(&model, key, &l)?;
                fill(ptr, size, pattern);
                model.insert(key, l);
            }
            Step::Calloc { key, n, elem } => {
                if let Some(l) = model.remove(&key) {
                    verify(&l)?;
                    free_one(&l);
                }
                let size = n * elem;
                let ptr = nv_calloc(n, elem).cast::<u8>();
                prop_assert!(!ptr.is_null(), "nv_calloc({n}, {elem}) returned null");
                for i in 0..size {
                    // SAFETY: within the calloc'd object.
                    let b = unsafe { ptr.add(i).read() };
                    prop_assert!(b == 0, "calloc byte {i} not zero: {b:#x}");
                }
                let usable = nv_usable_size(ptr.cast());
                let l = Live {
                    ptr,
                    size,
                    align: 8,
                    layout_size: size,
                    usable,
                    pattern,
                    via_global: false,
                };
                check_no_overlap(&model, key, &l)?;
                fill(ptr, size, pattern);
                model.insert(key, l);
            }
            Step::Free { key } => {
                if let Some(l) = model.remove(&key) {
                    verify(&l)?;
                    free_one(&l);
                }
            }
            Step::Realloc { key, new_size } => {
                let Some(mut l) = model.remove(&key) else { continue };
                verify(&l)?;
                if !l.via_global && new_size == 0 {
                    // C semantics: realloc(p, 0) frees and returns null.
                    let r = nv_realloc(l.ptr.cast(), 0);
                    prop_assert!(r.is_null(), "nv_realloc(p, 0) must return null");
                    continue;
                }
                let new_size = new_size.max(1);
                let new_ptr = if l.via_global {
                    let layout = Layout::from_size_align(l.layout_size, l.align).unwrap();
                    // SAFETY: ptr/layout identity from the model; new_size > 0.
                    unsafe { GlobalNv.realloc(l.ptr, layout, new_size) }
                } else {
                    nv_realloc(l.ptr.cast(), new_size).cast::<u8>()
                };
                prop_assert!(!new_ptr.is_null(), "realloc to {new_size} returned null");
                prop_assert!(
                    (new_ptr as usize).is_multiple_of(l.align.min(8)),
                    "realloc result misaligned"
                );
                if new_size <= l.usable {
                    prop_assert!(new_ptr == l.ptr, "growth within usable must stay in place");
                }
                // Prefix preserved up to min(old size, new size).
                let keep = l.size.min(new_size);
                for i in 0..keep {
                    // SAFETY: within the reallocated object.
                    let got = unsafe { new_ptr.add(i).read() };
                    let want = l.pattern.wrapping_add(i as u8);
                    prop_assert!(got == want, "realloc lost byte {i}: {got:#x} != {want:#x}");
                }
                l.ptr = new_ptr;
                l.size = new_size;
                l.layout_size = new_size;
                l.usable = nv_usable_size(new_ptr.cast());
                prop_assert!(l.usable >= new_size, "usable shrank below new size");
                l.pattern = pattern;
                check_no_overlap(&model, key, &l)?;
                fill(new_ptr, new_size, pattern);
                model.insert(key, l);
            }
        }
    }
    // Final sweep: every surviving object is intact and freeable.
    for (_, l) in model.drain() {
        verify(&l)?;
        free_one(&l);
    }
    // With everything freed, only the directory itself remains live.
    let live = global::with_allocator(|a| {
        use nvalloc::api::PmAllocator;
        a.live_bytes()
    })
    .unwrap();
    prop_assert!(live <= 64 << 10, "leak: {live} bytes live after freeing all objects");
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 1000, ..ProptestConfig::default() })]

    #[test]
    fn global_front_end_matches_model(
        steps in proptest::collection::vec(step_strategy(), 1..40),
        pattern0 in any::<u8>(),
    ) {
        run_case(&steps, pattern0)?;
    }
}

// ---------------------------------------------------------------------------
// Pinned semantic corners
// ---------------------------------------------------------------------------

#[test]
fn zero_size_mallocs_get_unique_pointers() {
    let _g = LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let _reset = Reset;
    global::init(fresh_pool(32 << 20), NvConfig::log()).unwrap();
    let a = nv_malloc(0);
    let b = nv_malloc(0);
    assert!(!a.is_null() && !b.is_null());
    assert_ne!(a, b, "malloc(0) pointers must be distinct");
    assert!(nv_usable_size(a) >= 1);
    nv_free(a);
    nv_free(b);
}

#[test]
fn align_greater_than_size_is_honoured() {
    let _g = LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let _reset = Reset;
    global::init(fresh_pool(64 << 20), NvConfig::log()).unwrap();
    // Sub-page, page, and super-page (aligned-extent path) alignments.
    for align in [16usize, 64, 512, 4096, 8192, 65536] {
        let layout = Layout::from_size_align(8, align).unwrap();
        // SAFETY: non-zero size.
        let p = unsafe { GlobalNv.alloc(layout) };
        assert!(!p.is_null(), "alloc(8, {align}) failed");
        assert_eq!(p as usize % align, 0, "not {align}-aligned");
        fill(p, 8, 0xA5);
        // SAFETY: matching layout.
        unsafe { GlobalNv.dealloc(p, layout) };
    }
}

#[test]
fn realloc_shrink_and_slack_growth_stay_in_place() {
    let _g = LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let _reset = Reset;
    global::init(fresh_pool(32 << 20), NvConfig::log()).unwrap();
    let p = nv_malloc(100);
    let usable = nv_usable_size(p);
    assert!(usable >= 100);
    fill(p.cast(), 100, 7);
    // Shrink: in place.
    assert_eq!(nv_realloc(p, 10), p);
    // Growth within granted capacity: in place.
    assert_eq!(nv_realloc(p, usable), p);
    // Growth past capacity: moves, contents preserved.
    let q = nv_realloc(p, usable + 1);
    assert!(!q.is_null() && q != p);
    for i in 0..100usize {
        // SAFETY: q is live with at least usable+1 bytes.
        assert_eq!(unsafe { q.cast::<u8>().add(i).read() }, 7u8.wrapping_add(i as u8));
    }
    nv_free(q);
}

#[test]
fn realloc_null_and_zero_follow_c_semantics() {
    let _g = LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let _reset = Reset;
    global::init(fresh_pool(32 << 20), NvConfig::log()).unwrap();
    let p = nv_realloc(std::ptr::null_mut(), 32); // ≡ malloc(32)
    assert!(!p.is_null());
    assert!(nv_realloc(p, 0).is_null()); // ≡ free(p)
    assert!(nv_calloc(usize::MAX, 2).is_null(), "calloc overflow must fail");
}

#[test]
fn shim_returns_null_before_init_and_global_falls_back_to_system() {
    let _g = LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let _reset = Reset;
    assert!(nv_malloc(64).is_null(), "shim must not serve before init");
    assert_eq!(nv_usable_size(std::ptr::null_mut()), 0);
    // GlobalAlloc must keep working (System fallback) so a binary with
    // #[global_allocator] boots before init runs.
    let layout = Layout::from_size_align(64, 8).unwrap();
    // SAFETY: non-zero size; freed below with the same layout.
    let p = unsafe { GlobalNv.alloc(layout) };
    assert!(!p.is_null());
    fill(p, 64, 3);
    // SAFETY: matching layout, System-served pointer routes to System.
    unsafe { GlobalNv.dealloc(p, layout) };
}

#[test]
fn shutdown_retires_heap_and_recovers_objects_on_reinit() {
    let _g = LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let _reset = Reset;
    let pool = fresh_pool(32 << 20);
    let r = global::init(Arc::clone(&pool), NvConfig::log()).unwrap();
    assert!(r.created && r.recovered == 0);

    let keep = nv_malloc(200).cast::<u8>();
    let gone = nv_malloc(300);
    fill(keep, 200, 0x42);
    nv_free(gone);
    global::shutdown().unwrap();

    // The shim refuses while detached; stale frees are defined no-ops.
    assert!(nv_malloc(8).is_null());
    nv_free(keep.cast());

    // Re-attach the same image: shallow recovery, object carried over at
    // the same address (same pool, same base), contents intact.
    let r2 = global::init(Arc::clone(&pool), NvConfig::log()).unwrap();
    assert!(!r2.created && r2.normal_shutdown);
    assert_eq!(r2.recovered, 1);
    let rec = global::recovered_objects();
    assert_eq!(rec.len(), 1);
    let (p2, usable) = rec[0];
    assert_eq!(p2, keep);
    assert!(usable >= 200);
    for i in 0..200usize {
        // SAFETY: recovered object is live with ≥ 200 usable bytes.
        assert_eq!(unsafe { p2.add(i).read() }, 0x42u8.wrapping_add(i as u8));
    }
    nv_free(p2.cast());
}

#[test]
fn double_init_is_rejected() {
    let _g = LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let _reset = Reset;
    global::init(fresh_pool(32 << 20), NvConfig::log()).unwrap();
    let err = global::init(fresh_pool(32 << 20), NvConfig::log()).unwrap_err();
    assert!(matches!(err, nvalloc_pmem::PmError::InvalidRequest(_)), "got {err:?}");
}
