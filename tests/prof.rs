//! Sampled heap profiler: end-to-end battery.
//!
//! Covers the three profiler guarantees the design promises:
//!
//! * **Convergence** — the byte-sampled live-byte estimate tracks the
//!   exact live-byte count within the stated bound (`exact/4 + 16·period`)
//!   across random alloc/free traces (proptest);
//! * **Determinism** — the sampler uses a byte countdown, not an RNG, so
//!   same-seed runs on virtual-clock pools dump byte-identical profiles;
//! * **Crash-safe attribution** — the provenance sidelog follows the
//!   booklog flush/fence discipline, so after a crash at *any* flush
//!   prefix and recovery, every surviving sampled object re-attributes to
//!   its original site hash (swept under pmsan, gated by the doctor's
//!   strict `prof_attribution` check).

use std::sync::Arc;

use nvalloc::api::PmAllocator;
use nvalloc::prof::{site_tag, with_site};
use nvalloc::{NvAllocator, NvConfig};
use nvalloc_pmem::{LatencyMode, PmemConfig, PmemPool};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn pool_mb(mb: usize) -> Arc<PmemPool> {
    PmemPool::new(PmemConfig::default().pool_size(mb << 20).latency_mode(LatencyMode::Off))
}

/// The sanitizer gate: `what` ran with zero persist-ordering violations.
fn pmsan_clean(pool: &PmemPool, what: &str) {
    assert_eq!(
        pool.pmsan_total(),
        0,
        "{what} has persist-ordering violations: {}",
        pool.pmsan_report().expect("pmsan pool").to_json()
    );
}

// ---------------------------------------------------------------------------
// Convergence
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

    // The systematic byte-countdown estimator converges on the exact
    // live-byte count: |estimate − exact| ≤ exact/4 + 16·period. The
    // slack terms cover per-object rounding to sample crossings (±period
    // each on the freed population) and the countdown residue.
    #[test]
    fn sampled_estimate_converges(
        seed in 0u64..(1 << 32),
        period in 256u64..4096,
    ) {
        let pool = pool_mb(96);
        let alloc = NvAllocator::create(
            Arc::clone(&pool),
            NvConfig::log().roots(256).profiling(period),
        )
        .unwrap();
        let mut t = alloc.thread();
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut occupied = [false; 128];
        for _ in 0..400 {
            let slot = rng.gen_range(0..128usize);
            let root = alloc.root_offset(slot);
            if occupied[slot] {
                t.free_from(root).unwrap();
                occupied[slot] = false;
            } else {
                let size = if rng.gen_bool(0.05) {
                    rng.gen_range(17 << 10..64 << 10)
                } else {
                    rng.gen_range(32..6000)
                };
                t.malloc_to(size, root).unwrap();
                occupied[slot] = true;
            }
        }
        let prof = alloc.profiler().expect("profiling on");
        let est = prof.estimated_live_bytes();
        let exact = alloc.live_bytes() as u64;
        let bound = exact / 4 + 16 * period;
        let diff = est.abs_diff(exact);
        prop_assert!(
            diff <= bound,
            "estimate {est} vs exact {exact}: |diff| {diff} > bound {bound} (period {period})"
        );
    }
}

// ---------------------------------------------------------------------------
// Determinism
// ---------------------------------------------------------------------------

/// Same-seed runs on virtual-clock pools produce byte-identical profile
/// dumps (JSON and collapsed-stack): the sampler is RNG-free and the site
/// tags come from explicit labels, not addresses.
#[test]
fn same_seed_profiles_are_byte_identical() {
    let run = || {
        let pool = PmemPool::new(
            PmemConfig::default().pool_size(96 << 20).latency_mode(LatencyMode::Virtual),
        );
        let alloc =
            NvAllocator::create(Arc::clone(&pool), NvConfig::log().roots(256).profiling(2048))
                .unwrap();
        let mut t = alloc.thread();
        let mut rng = SmallRng::seed_from_u64(0x5EED);
        let mut occupied = [false; 96];
        for _ in 0..300 {
            let slot = rng.gen_range(0..96usize);
            let root = alloc.root_offset(slot);
            if occupied[slot] {
                t.free_from(root).unwrap();
                occupied[slot] = false;
            } else {
                let size = rng.gen_range(64..4000);
                if slot % 2 == 0 {
                    with_site("det_site_even", || t.malloc_to(size, root)).unwrap();
                } else {
                    with_site("det_site_odd", || t.malloc_to(size, root)).unwrap();
                }
                occupied[slot] = true;
            }
        }
        drop(t);
        alloc.quiesce(); // marks the retained set, part of the dump
        let json = alloc.profile_json().expect("profiling on");
        let folded = alloc.profile_collapsed().expect("profiling on");
        (json, folded)
    };
    let (j1, f1) = run();
    let (j2, f2) = run();
    assert_eq!(j1, j2, "profile JSON must be byte-identical across same-seed runs");
    assert_eq!(f1, f2, "collapsed output must be byte-identical across same-seed runs");
    assert!(j1.starts_with("{\"schema_version\":2,"), "{}", &j1[..60.min(j1.len())]);
    assert!(j1.contains("det_site_even") && j1.contains("det_site_odd"), "site labels in dump");
    assert!(f1.lines().any(|l| l.starts_with("det_site_even ")), "collapsed line per site");
}

/// `quiesce()` captures the retained set: sites still holding live bytes
/// show up as leak-report rows, fully-freed sites do not.
#[test]
fn quiesce_marks_retained_sites() {
    let pool = pool_mb(96);
    let alloc =
        NvAllocator::create(Arc::clone(&pool), NvConfig::log().roots(128).profiling(1)).unwrap();
    let mut t = alloc.thread();
    for i in 0..16usize {
        with_site("leaky_site", || t.malloc_to(512, alloc.root_offset(i))).unwrap();
    }
    for i in 16..32usize {
        with_site("churn_site", || t.malloc_to(512, alloc.root_offset(i))).unwrap();
        t.free_from(alloc.root_offset(i)).unwrap();
    }
    drop(t);
    alloc.quiesce();
    let prof = alloc.profiler().expect("profiling on");
    let retained = prof.retained();
    assert!(
        retained.iter().any(|r| r.site == site_tag("leaky_site") && r.live_bytes > 0),
        "leaky site must appear in the retained set: {retained:?}"
    );
    assert!(
        !retained.iter().any(|r| r.site == site_tag("churn_site")),
        "fully-freed site must not appear: {retained:?}"
    );
    let json = alloc.profile_json().unwrap();
    assert!(json.contains("\"retained\":[{"), "retained rows serialized: {json}");
}

// ---------------------------------------------------------------------------
// Crash-safe attribution
// ---------------------------------------------------------------------------

/// One deterministic profiled trace; period 1 samples *every* allocation,
/// so the sidelogs must account for every surviving object.
fn profiled_trace(alloc: &NvAllocator, ops: usize, seed: u64) {
    let mut t = alloc.thread();
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut occupied = [false; 128];
    for _ in 0..ops {
        let slot = rng.gen_range(0..128usize);
        let root = alloc.root_offset(slot);
        if occupied[slot] {
            t.free_from(root).unwrap();
            occupied[slot] = false;
        } else {
            let size = if rng.gen_bool(0.08) {
                rng.gen_range(17 << 10..64 << 10)
            } else {
                rng.gen_range(8..2500)
            };
            if slot % 2 == 0 {
                with_site("crash_site_a", || t.malloc_to(size, root)).unwrap();
            } else {
                with_site("crash_site_b", || t.malloc_to(size, root)).unwrap();
            }
            occupied[slot] = true;
        }
    }
}

/// Crash after the trace, recover, exit cleanly, and run the doctor's
/// strict attribution audit: every surviving sampled object must name a
/// live block of the recorded size, attributed to one of the two known
/// site hashes, and the survivor count must equal the live-root count.
fn verify_attribution_after_crash(pool: Arc<PmemPool>) {
    pmsan_clean(&pool, "pre-crash profiled trace");
    let img = PmemPool::from_crash_image(pool.crash());
    let (a2, report) = NvAllocator::recover(Arc::clone(&img), NvConfig::log()).expect("recover");
    assert!(!report.normal_shutdown);
    // Count live roots *after* recovery (recovery may complete in-flight
    // frees from the WAL).
    let live_roots = (0..128usize).filter(|&s| img.read_u64(a2.root_offset(s)) != 0).count();
    a2.exit();
    let rep = nvalloc::doctor::audit_pool(&img, &NvConfig::log());
    assert!(rep.clean(), "doctor violations after recovery: {:?}", rep.violations);
    assert_eq!(rep.prof_dropped, 0, "trace too short to overflow the sidelogs");
    assert_eq!(rep.prof_stale_records, 0, "recovery must prune every stale record");
    assert_eq!(
        rep.prof_live_sampled, live_roots,
        "period 1: every surviving object must be sidelog-attributed"
    );
    let (a, b) = (site_tag("crash_site_a"), site_tag("crash_site_b"));
    for row in &rep.prof_site_table {
        assert!(
            row.site == a || row.site == b,
            "survivor attributed to unknown site {:016x}",
            row.site
        );
    }
    let attributed: u64 = rep.prof_site_table.iter().map(|r| r.live_objects).sum();
    assert_eq!(attributed as usize, live_roots);
    pmsan_clean(&img, "recovery + exit of profiled pool");
}

#[test]
fn crash_matrix_reattributes_survivors() {
    for ops in [1usize, 5, 20, 60, 150, 400] {
        let pool = PmemPool::new(
            PmemConfig::default()
                .pool_size(96 << 20)
                .latency_mode(LatencyMode::Off)
                .crash_tracking(true)
                .pmsan(true),
        );
        let alloc = NvAllocator::create(Arc::clone(&pool), NvConfig::log().profiling(1)).unwrap();
        profiled_trace(&alloc, ops, 0xA110C + ops as u64);
        verify_attribution_after_crash(pool);
    }
}

/// Sweep the power-failure point across every few individual cache-line
/// flushes of a profiled trace — including crashes landing *inside* a
/// sidelog append (data words flushed, commit word not), between an
/// append and its allocation's commit, and mid-compaction before and
/// after the half flip. At every prefix, recovery + the doctor's strict
/// audit must re-attribute every survivor.
#[test]
fn crash_swept_across_sidelog_flush_prefixes() {
    let ops = 90;
    let seed = 0x51DE;
    let total = {
        let pool = PmemPool::new(
            PmemConfig::default()
                .pool_size(96 << 20)
                .latency_mode(LatencyMode::Off)
                .crash_tracking(true)
                .pmsan(true),
        );
        let alloc = NvAllocator::create(Arc::clone(&pool), NvConfig::log().profiling(1)).unwrap();
        profiled_trace(&alloc, ops, seed);
        pool.stats().flushes()
    };
    assert!(total > 300, "trace too small ({total} flushes)");
    let step = (total / 40).max(1);
    let mut points: Vec<u64> = (0..12).collect();
    points.extend((12..total).step_by(step as usize));
    for n in points {
        let pool = PmemPool::new(
            PmemConfig::default()
                .pool_size(96 << 20)
                .latency_mode(LatencyMode::Off)
                .crash_tracking(true)
                .pmsan(true),
        );
        let alloc = NvAllocator::create(Arc::clone(&pool), NvConfig::log().profiling(1)).unwrap();
        pool.freeze_persistence_after(n);
        profiled_trace(&alloc, ops, seed);
        verify_attribution_after_crash(pool);
    }
}

/// Sidelog overflow is coverage loss, never corruption: a trace long
/// enough to fill both halves with live records drops the excess, counts
/// it, and still audits clean (the strict attribution check stands down
/// once records were dropped).
#[test]
fn sidelog_overflow_drops_and_stays_clean() {
    let pool = pool_mb(192);
    let alloc =
        NvAllocator::create(Arc::clone(&pool), NvConfig::log().roots(4096).profiling(1)).unwrap();
    let mut t = alloc.thread();
    // More live sampled objects than one arena's sidelog can hold
    // (2 × 1023 records), with no frees: compaction cannot reclaim.
    for i in 0..2200usize {
        with_site("overflow_site", || t.malloc_to(64, alloc.root_offset(i))).unwrap();
    }
    drop(t);
    alloc.quiesce();
    alloc.exit();
    let rep = nvalloc::doctor::audit_pool(&pool, &NvConfig::log().roots(4096));
    assert!(rep.clean(), "overflow must not corrupt anything: {:?}", rep.violations);
    assert!(rep.prof_dropped > 0, "trace sized to overflow the sidelog");
    assert!(rep.prof_live_sampled > 0);
    let m = alloc.metrics();
    assert_eq!(m.prof_dropped, rep.prof_dropped, "volatile and persistent drop counts agree");
    assert!(m.prof_samples >= 2200);
}
