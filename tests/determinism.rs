//! The virtual time model makes benchmark measurements bit-for-bit
//! reproducible: identical runs must produce identical modelled times and
//! PM counters.

use nvalloc_pmem::{LatencyMode, PmemConfig, PmemPool};
use nvalloc_workloads::allocators::Which;
use nvalloc_workloads::{shbench, threadtest};

fn pool() -> std::sync::Arc<PmemPool> {
    PmemPool::new(PmemConfig::default().pool_size(128 << 20).latency_mode(LatencyMode::Virtual))
}

#[test]
fn threadtest_is_deterministic_single_thread() {
    let run = || {
        let a = Which::NvallocLog.create(pool());
        let m = threadtest::run(
            &a,
            threadtest::Params { threads: 1, iterations: 5, objects: 200, size: 64 },
        );
        (m.ops, m.elapsed_ns, m.stats.flushes, m.stats.reflushes, m.stats.kind_ns)
    };
    assert_eq!(run(), run(), "single-threaded runs must be identical");
}

#[test]
fn seeded_workloads_are_deterministic() {
    let run = |which: Which| {
        let a = which.create(pool());
        let m = shbench::run(
            &a,
            shbench::Params { threads: 1, iterations: 2000, live_window: 32, seed: 77 },
        );
        (m.ops, m.elapsed_ns, m.stats.flushes)
    };
    for w in [Which::NvallocLog, Which::NvallocGc, Which::Pmdk, Which::Makalu] {
        assert_eq!(run(w), run(w), "{w:?}");
    }
}
