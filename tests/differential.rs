//! Differential testing: the same deterministic operation trace runs
//! through every allocator in the workspace; user-visible behaviour
//! (root contents, payload integrity, live accounting) must agree.

use std::sync::Arc;

use nvalloc_pmem::{LatencyMode, PmemConfig, PmemPool};
use nvalloc_workloads::allocators::Which;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

const ALL: [Which; 7] = [
    Which::Pmdk,
    Which::NvmMalloc,
    Which::Pallocator,
    Which::Makalu,
    Which::Ralloc,
    Which::NvallocLog,
    Which::NvallocGc,
];

#[derive(Debug, Clone, Copy)]
enum Op {
    Alloc { slot: usize, size: usize },
    Free { slot: usize },
}

fn trace(seed: u64, n: usize, slots: usize, large: bool) -> Vec<Op> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut occupied = vec![false; slots];
    (0..n)
        .map(|_| {
            let slot = rng.gen_range(0..slots);
            if occupied[slot] {
                occupied[slot] = false;
                Op::Free { slot }
            } else {
                occupied[slot] = true;
                let size = if large && rng.gen_bool(0.15) {
                    rng.gen_range(17 << 10..256 << 10)
                } else {
                    rng.gen_range(8..4096)
                };
                Op::Alloc { slot, size }
            }
        })
        .collect()
}

/// Run a trace; returns (final root values validity, live_bytes) summary.
fn run_trace(which: Which, ops: &[Op]) -> (usize, usize) {
    let pool =
        PmemPool::new(PmemConfig::default().pool_size(256 << 20).latency_mode(LatencyMode::Off));
    let alloc = which.create_with_roots(Arc::clone(&pool), 4096);
    let mut t = alloc.thread();
    let mut expected: Vec<Option<u64>> = vec![None; 4096];
    for op in ops {
        match *op {
            Op::Alloc { slot, size } => {
                let root = alloc.root_offset(slot);
                let addr = t
                    .malloc_to(size, root)
                    .unwrap_or_else(|e| panic!("{which:?}: alloc {size} -> {e}"));
                // Tag the block.
                pool.write_u64(addr, slot as u64 | 0xAB00_0000_0000);
                expected[slot] = Some(addr);
            }
            Op::Free { slot } => {
                let root = alloc.root_offset(slot);
                t.free_from(root).unwrap_or_else(|e| panic!("{which:?}: free {slot} -> {e}"));
                expected[slot] = None;
            }
        }
    }
    // Validate every live slot.
    let mut live = 0;
    for (slot, exp) in expected.iter().enumerate() {
        let root_val = pool.read_u64(alloc.root_offset(slot));
        match exp {
            Some(addr) => {
                assert_eq!(root_val, *addr, "{which:?}: root {slot}");
                assert_eq!(
                    pool.read_u64(*addr),
                    slot as u64 | 0xAB00_0000_0000,
                    "{which:?}: payload {slot}"
                );
                live += 1;
            }
            None => assert_eq!(root_val, 0, "{which:?}: stale root {slot}"),
        }
    }
    (live, alloc.live_bytes())
}

#[test]
fn small_trace_agrees_across_allocators() {
    let ops = trace(0xD1FF, 4000, 512, false);
    let results: Vec<(usize, usize)> = ALL.iter().map(|w| run_trace(*w, &ops)).collect();
    let live0 = results[0].0;
    for (w, (live, _)) in ALL.iter().zip(&results) {
        assert_eq!(*live, live0, "{w:?} diverged in live count");
    }
}

#[test]
fn mixed_size_trace_agrees_across_allocators() {
    let ops = trace(0xD2FF, 2000, 256, true);
    let results: Vec<(usize, usize)> = ALL.iter().map(|w| run_trace(*w, &ops)).collect();
    let live0 = results[0].0;
    for (w, (live, _)) in ALL.iter().zip(&results) {
        assert_eq!(*live, live0, "{w:?} diverged");
    }
}

#[test]
fn full_free_returns_all_bytes_every_allocator() {
    for which in ALL {
        let pool = PmemPool::new(
            PmemConfig::default().pool_size(128 << 20).latency_mode(LatencyMode::Off),
        );
        let alloc = which.create_with_roots(Arc::clone(&pool), 2048);
        let mut t = alloc.thread();
        for i in 0..1000usize {
            t.malloc_to(24 + (i * 31) % 3000, alloc.root_offset(i)).unwrap();
        }
        for i in 0..1000usize {
            t.free_from(alloc.root_offset(i)).unwrap();
        }
        assert_eq!(alloc.live_bytes(), 0, "{which:?} leaked accounting");
    }
}
