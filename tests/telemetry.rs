//! Telemetry-layer integration tests: histogram bucket arithmetic, JSON
//! round-trips, snapshot diffing, end-to-end metric collection through a
//! real workload, and the core invariant that telemetry is purely
//! observational — switching it off changes no modelled measurement.

use std::sync::Arc;

use nvalloc::telemetry::{
    bucket_high, bucket_index, bucket_low, json, CoreMetrics, Counter, LatencyHistogram, OpKind,
    TcacheEvent, HIST_BUCKETS,
};
use nvalloc::NvConfig;
use nvalloc_pmem::{LatencyMode, PmemConfig, PmemPool};
use nvalloc_workloads::allocators::{create_custom, Which};
use nvalloc_workloads::threadtest;
use proptest::prelude::*;

fn pool() -> Arc<PmemPool> {
    PmemPool::new(PmemConfig::default().pool_size(128 << 20).latency_mode(LatencyMode::Virtual))
}

#[test]
fn every_sample_lands_in_its_bucket_bounds() {
    for shift in 0..64u32 {
        for delta in [-1i64, 0, 1] {
            let ns = (1u128 << shift) as i128 + delta as i128;
            if ns < 0 || ns > u64::MAX as i128 {
                continue;
            }
            let ns = ns as u64;
            let b = bucket_index(ns);
            assert!(b < HIST_BUCKETS);
            assert!(ns >= bucket_low(b), "{ns} below low of bucket {b}");
            if b < HIST_BUCKETS - 1 {
                assert!(ns < bucket_high(b), "{ns} at/above high of bucket {b}");
            }
        }
    }
}

#[test]
fn workload_populates_metrics_and_histograms() {
    let a = Which::NvallocLog.create(pool());
    let p = threadtest::Params { threads: 2, iterations: 4, objects: 100, size: 64 };
    let m = threadtest::run(&a, p);
    assert_eq!(m.ops, 2 * 4 * 100 * 2);
    // Every op is a small malloc or a free; one histogram sample each.
    let small = m.metrics.hists.of(OpKind::MallocSmall).count();
    let frees = m.metrics.hists.of(OpKind::Free).count();
    assert_eq!(small + frees, m.ops, "histogram samples must cover every op");
    assert_eq!(small, frees);
    assert!(m.metrics.tcache_hits > 0, "64 B churn must hit the tcache");
    assert_eq!(
        m.metrics.tcache_hits + m.metrics.tcache_misses,
        small,
        "every small malloc is a tcache hit or miss"
    );
    assert!(m.metrics.wal_appends > 0, "LOG variant logs every op");
    assert!(m.metrics.slab_allocs > 0);
    // The per-class breakdown sums back to the totals.
    let by_class: u64 = m.metrics.tcache_by_class.iter().map(|c| c.hits).sum();
    assert_eq!(by_class, m.metrics.tcache_hits);
}

#[test]
fn telemetry_off_yields_zero_metrics_and_identical_measurements() {
    // Single-threaded: multi-thread runs are interleaving-dependent, which
    // would mask whether a difference came from telemetry.
    let run = |telemetry: bool| {
        let a = create_custom(pool(), NvConfig::log().telemetry(telemetry), 1 << 19);
        let p = threadtest::Params { threads: 1, iterations: 6, objects: 150, size: 64 };
        threadtest::run(&a, p)
    };
    let on = run(true);
    let off = run(false);
    // Telemetry is observational: the modelled measurement is unchanged.
    assert_eq!(on.ops, off.ops);
    assert_eq!(on.elapsed_ns, off.elapsed_ns);
    assert_eq!(on.stats, off.stats);
    assert_eq!(on.peak_mapped, off.peak_mapped);
    // And disabling it really does silence every counter.
    assert!(on.metrics.tcache_hits > 0);
    assert_eq!(off.metrics.tcache_hits, 0);
    assert_eq!(off.metrics.wal_appends, 0);
    assert!(off.metrics.hists.of(OpKind::MallocSmall).is_empty());
}

#[test]
fn snapshot_since_isolates_a_phase() {
    let m = CoreMetrics::new(true);
    m.tcache_event(2, TcacheEvent::Hit);
    m.bump(Counter::WalAppends);
    let before = m.snapshot();
    m.tcache_event(2, TcacheEvent::Hit);
    m.add(Counter::WalAppends, 3);
    m.record_hist(OpKind::Free, 250);
    let d = m.snapshot().since(&before);
    assert_eq!(d.tcache_hits, 1);
    assert_eq!(d.tcache_by_class[2].hits, 1);
    assert_eq!(d.wal_appends, 3);
    assert_eq!(d.hists.of(OpKind::Free).count(), 1);
    // Reversed diff saturates to zero instead of panicking.
    let z = before.since(&m.snapshot());
    assert_eq!(z.tcache_hits, 0);
    assert_eq!(z.wal_appends, 0);
}

#[test]
fn lock_spans_diff_without_double_counting() {
    // Regression: two lock spans recorded around a snapshot must split
    // cleanly — the diff carries only the second span, in both the
    // totals and the wait/hold histograms, and re-merging the halves
    // reproduces the full picture exactly once.
    let m = CoreMetrics::new(true);
    m.record_lock(1_000, 5_000);
    let before = m.snapshot();
    m.record_lock(30_000, 70_000);
    let after = m.snapshot();
    let d = after.since(&before);
    assert_eq!(d.lock_wait_ns, 30_000);
    assert_eq!(d.lock_hold_ns, 70_000);
    assert_eq!(d.lock_wait_hist.count(), 1, "diff holds exactly the second span");
    assert_eq!(d.lock_hold_hist.count(), 1);
    assert_eq!(d.lock_wait_hist.buckets[bucket_index(30_000)], 1);
    assert_eq!(d.lock_hold_hist.buckets[bucket_index(70_000)], 1);
    // First half + diff = whole; no sample lost, none counted twice.
    let mut rebuilt = before.lock_wait_hist;
    rebuilt.merge(&d.lock_wait_hist);
    assert_eq!(rebuilt.buckets, after.lock_wait_hist.buckets);
    let mut rebuilt = before.lock_hold_hist;
    rebuilt.merge(&d.lock_hold_hist);
    assert_eq!(rebuilt.buckets, after.lock_hold_hist.buckets);
    // Reversed diff saturates rather than underflowing.
    let z = before.since(&after);
    assert_eq!(z.lock_wait_ns, 0);
    assert_eq!(z.lock_wait_hist.count(), 0);
}

#[test]
fn measurement_json_is_parseable_shape() {
    let a = Which::NvallocLog.create(pool());
    let p = threadtest::Params { threads: 1, iterations: 2, objects: 50, size: 64 };
    let m = threadtest::run(&a, p);
    let line = m.to_json("telemetry_test");
    assert!(!line.contains('\n'));
    assert!(line.starts_with('{') && line.ends_with('}'));
    // Balanced braces/brackets outside strings — a cheap well-formedness
    // check that catches unterminated objects and stray commas in arrays.
    let (mut depth, mut adepth, mut in_str, mut esc) = (0i64, 0i64, false, false);
    for c in line.chars() {
        if esc {
            esc = false;
            continue;
        }
        match c {
            '\\' if in_str => esc = true,
            '"' => in_str = !in_str,
            '{' if !in_str => depth += 1,
            '}' if !in_str => depth -= 1,
            '[' if !in_str => adepth += 1,
            ']' if !in_str => adepth -= 1,
            _ => {}
        }
        assert!(depth >= 0 && adepth >= 0);
    }
    assert_eq!((depth, adepth, in_str), (0, 0, false));
    for key in ["\"bench\":", "\"stats\":", "\"metrics\":", "\"hist\":", "\"malloc_small\":"] {
        assert!(line.contains(key), "missing {key} in {line}");
    }
    // The embedded metrics object leads with its schema version so a
    // consumer can dispatch before reading counters, and always carries
    // the profiler counters (zero when profiling is off).
    assert!(line.contains("{\"schema_version\":2,"), "missing schema_version in {line}");
    for key in ["\"prof_samples\":0", "\"prof_dropped\":0"] {
        assert!(line.contains(key), "missing {key} in {line}");
    }
}

/// Arbitrary text including control characters and non-BMP code points,
/// for exercising every branch of the JSON escaper.
fn text_strategy() -> impl Strategy<Value = String> {
    proptest::collection::vec(any::<u32>(), 0..48)
        .prop_map(|v| v.into_iter().filter_map(|c| char::from_u32(c % 0x11_0000)).collect())
}

proptest! {
    #[test]
    fn histogram_merge_preserves_total_counts(
        xs in proptest::collection::vec(any::<u64>(), 1..64),
        ys in proptest::collection::vec(any::<u64>(), 1..64),
    ) {
        let mut a = LatencyHistogram::default();
        for &x in &xs {
            a.record(x);
        }
        let mut b = LatencyHistogram::default();
        for &y in &ys {
            b.record(y);
        }
        let (ca, cb) = (a.count(), b.count());
        a.merge(&b);
        prop_assert_eq!(ca + cb, a.count());
        prop_assert_eq!(ca, xs.len() as u64);
        prop_assert_eq!(cb, ys.len() as u64);
    }

    #[test]
    fn json_escape_round_trips(s in text_strategy()) {
        let escaped = json::escape(&s);
        prop_assert!(!escaped.contains('\n'));
        prop_assert_eq!(json::unescape(&escaped), Some(s));
    }
}
