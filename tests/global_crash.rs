//! Crash matrix for the global front end's slot directory: sweep the
//! power-failure point across every flush of (a) the init handshake that
//! formats the directory and (b) a shim window containing a moving
//! `nv_realloc` (old live → persistent copy → new live → old freed), a
//! fresh `nv_malloc`, and an `nv_free`. At every prefix the crash image
//! must re-attach, recover a plausible object set — committed objects
//! intact, the realloc target present as old, old+new, or new, **never
//! neither** — with no overlap and no double-ownership, and the
//! persist-ordering sanitizer must stay silent on both sides of the
//! crash. A final pair of tests pins the clean rejection of mismatched
//! directory magic / layout version.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use nvalloc::api::PmAllocator;
use nvalloc::global::{self, nv_free, nv_malloc, nv_realloc, nv_usable_size};
use nvalloc::NvConfig;
use nvalloc_pmem::{FlushKind, LatencyMode, PmError, PmemConfig, PmemPool};

static LOCK: Mutex<()> = Mutex::new(());

struct Reset;
impl Drop for Reset {
    fn drop(&mut self) {
        // SAFETY: LOCK serializes tests; no pointer from a previous
        // incarnation is touched after this guard runs.
        unsafe { global::reset_unchecked() }
    }
}

fn cfg() -> NvConfig {
    NvConfig::log().arenas(2)
}

fn crash_pool() -> Arc<PmemPool> {
    PmemPool::new(
        PmemConfig::default()
            .pool_size(48 << 20)
            .latency_mode(LatencyMode::Off)
            .crash_tracking(true)
            .pmsan(true),
    )
}

fn pmsan_clean(pool: &PmemPool, what: &str) {
    assert_eq!(pool.pmsan_total(), 0, "pmsan violations {what}: {:?}", pool.pmsan_report());
}

fn off_of(pool: &PmemPool, ptr: *mut core::ffi::c_void) -> u64 {
    (ptr as usize - pool.base_ptr() as usize) as u64
}

/// Write a recognizable pattern *through the pool API* (flushed + fenced)
/// so it participates in crash tracking, unlike raw-pointer stores.
fn persist_pattern(pool: &PmemPool, off: u64, len: usize, tag: u8) {
    let buf: Vec<u8> = (0..len).map(|i| tag.wrapping_add(i as u8)).collect();
    pool.write_bytes(off, &buf);
    let mut pt = pool.register_thread();
    pool.flush(&mut pt, off, len, FlushKind::Data);
    pool.fence(&mut pt);
}

fn check_pattern(pool: &PmemPool, off: u64, len: usize, tag: u8, what: &str) {
    let mut buf = vec![0u8; len];
    pool.read_bytes(off, &mut buf);
    for (i, b) in buf.iter().enumerate() {
        assert_eq!(*b, tag.wrapping_add(i as u8), "{what}: byte {i} at {off:#x}");
    }
}

const A_SIZE: usize = 1000;
const B_SIZE: usize = 30_000; // extent-path object
const C_SIZE: usize = 200;
const X_SIZE: usize = 600;
const X_NEW: usize = 50_000; // realloc target moves (and moves tiers)
const Y_SIZE: usize = 700;

struct Trace {
    a: u64,
    b: u64,
    c: u64,
    x_old: u64,
    x_new: u64,
    y: u64,
}

/// Settled prefix: init + allocate A, B, C, X and persist their payloads.
fn setup(pool: &Arc<PmemPool>) -> (u64, u64, u64, u64) {
    global::init(Arc::clone(pool), cfg()).expect("init");
    let a = off_of(pool, nv_malloc(A_SIZE));
    let b = off_of(pool, nv_malloc(B_SIZE));
    let c = off_of(pool, nv_malloc(C_SIZE));
    let x = off_of(pool, nv_malloc(X_SIZE));
    persist_pattern(pool, a, A_SIZE, 0xA0);
    persist_pattern(pool, b, B_SIZE, 0xB0);
    persist_pattern(pool, c, C_SIZE, 0xC0);
    persist_pattern(pool, x, X_SIZE, 0x50);
    (a, b, c, x)
}

/// The crash window: a moving realloc, a fresh malloc, a free.
fn window(pool: &Arc<PmemPool>, a: u64, b: u64, c: u64, x: u64) -> Trace {
    let x_ptr = (pool.base_ptr() as usize + x as usize) as *mut core::ffi::c_void;
    let x_new_ptr = nv_realloc(x_ptr, X_NEW);
    assert!(!x_new_ptr.is_null());
    let y = off_of(pool, nv_malloc(Y_SIZE));
    let c_ptr = (pool.base_ptr() as usize + c as usize) as *mut core::ffi::c_void;
    nv_free(c_ptr);
    Trace { a, b, c, x_old: x, x_new: off_of(pool, x_new_ptr), y }
}

/// Run the full trace unfrozen and report the window's flush span.
fn window_flushes() -> u64 {
    let _reset = Reset;
    let pool = crash_pool();
    let (a, b, c, x) = setup(&pool);
    let f0 = pool.stats().flushes();
    let _t = window(&pool, a, b, c, x);
    pmsan_clean(&pool, "in unfrozen trace");
    pool.stats().flushes() - f0
}

/// Crash the image at the current freeze point, re-attach, and verify the
/// directory's recovery contract for the scripted trace.
fn crash_and_verify(pool: &Arc<PmemPool>, t: &Trace, label: &str) {
    pmsan_clean(pool, &format!("pre-crash ({label})"));
    let img = PmemPool::from_crash_image(pool.crash());
    // SAFETY: the old incarnation's pointers are dropped with the trace.
    unsafe { global::reset_unchecked() };
    let rep = global::init(Arc::clone(&img), cfg())
        .unwrap_or_else(|e| panic!("{label}: attach after crash failed: {e}"));
    assert!(!rep.created, "{label}: image lost the formatted heap");

    let mut rec: HashMap<u64, usize> = HashMap::new();
    for (ptr, usable) in global::recovered_objects() {
        let off = (ptr as usize - img.base_ptr() as usize) as u64;
        assert!(rec.insert(off, usable).is_none(), "{label}: offset {off:#x} recovered twice");
    }

    // Nothing outside the scripted universe may surface.
    let universe = [t.a, t.b, t.c, t.x_old, t.x_new, t.y];
    for off in rec.keys() {
        assert!(universe.contains(off), "{label}: unexpected recovered object {off:#x}");
    }
    // A, B committed and published before the window: always present,
    // payload intact.
    for (off, size, tag, name) in [(t.a, A_SIZE, 0xA0u8, "A"), (t.b, B_SIZE, 0xB0, "B")] {
        let usable =
            *rec.get(&off).unwrap_or_else(|| panic!("{label}: committed object {name} lost"));
        assert!(usable >= size, "{label}: {name} usable shrank to {usable}");
        check_pattern(&img, off, size, tag, name);
    }
    // The realloc target: old, both, or new — never neither.
    let old_live = rec.contains_key(&t.x_old);
    let new_live = rec.contains_key(&t.x_new);
    assert!(old_live || new_live, "{label}: realloc target lost (neither old nor new)");
    if old_live {
        check_pattern(&img, t.x_old, X_SIZE, 0x50, "X(old)");
    }
    if new_live {
        // Publication follows the persistent copy, so a published new
        // block always carries the old prefix.
        check_pattern(&img, t.x_new, X_SIZE.min(X_NEW), 0x50, "X(new)");
        assert!(rec[&t.x_new] >= X_NEW, "{label}: X(new) usable too small");
    }
    // No double-ownership: recovered usable spans must not overlap.
    let spans: Vec<(u64, u64)> = rec.iter().map(|(o, u)| (*o, *o + *u as u64)).collect();
    for (i, s) in spans.iter().enumerate() {
        for s2 in &spans[i + 1..] {
            assert!(s.1 <= s2.0 || s.0 >= s2.1, "{label}: spans {s:?} and {s2:?} overlap");
        }
    }
    // Every recovered object is freeable exactly once, and the heap ends
    // holding only the directory.
    for (ptr, _) in global::recovered_objects() {
        nv_free(ptr.cast());
    }
    let live = global::with_allocator(|al| al.live_bytes()).unwrap();
    assert!(live <= 64 << 10, "{label}: {live} bytes still live after freeing everything");
    // The re-attached heap is fully usable.
    let p = nv_malloc(4096);
    assert!(!p.is_null());
    assert!(nv_usable_size(p) >= 4096);
    nv_free(p);
    pmsan_clean(&img, &format!("after recovery ({label})"));
}

#[test]
fn realloc_window_crash_matrix() {
    let _g = LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let total = window_flushes();
    assert!(total > 10, "window unexpectedly cheap ({total} flushes)");
    for n in 0..=total {
        let _reset = Reset;
        let pool = crash_pool();
        let (a, b, c, x) = setup(&pool);
        pool.freeze_persistence_after(n);
        let t = window(&pool, a, b, c, x);
        crash_and_verify(&pool, &t, &format!("freeze={n}/{total}"));
    }
}

#[test]
fn init_handshake_crash_matrix() {
    let _g = LOCK.lock().unwrap_or_else(|e| e.into_inner());
    // Measure a full init's flush count.
    let total = {
        let _reset = Reset;
        let pool = crash_pool();
        global::init(Arc::clone(&pool), cfg()).unwrap();
        pool.stats().flushes()
    };
    assert!(total > 10);
    // Crash inside init at every few flushes (and at the very end); the
    // image must always re-attach to an empty, fully usable heap.
    let points: Vec<u64> = (0..total).step_by(3).chain([total]).collect();
    for n in points {
        let _reset = Reset;
        let pool = crash_pool();
        pool.freeze_persistence_after(n);
        global::init(Arc::clone(&pool), cfg()).unwrap();
        pmsan_clean(&pool, &format!("in frozen init (freeze={n})"));
        let img = PmemPool::from_crash_image(pool.crash());
        // SAFETY: serialized by LOCK; prior pointers are not reused.
        unsafe { global::reset_unchecked() };
        global::init(Arc::clone(&img), cfg())
            .unwrap_or_else(|e| panic!("freeze={n}/{total}: attach failed: {e}"));
        assert!(global::recovered_objects().is_empty(), "freeze={n}: phantom object");
        let p = nv_malloc(1234);
        assert!(!p.is_null(), "freeze={n}: heap unusable after re-attach");
        persist_pattern(&img, off_of(&img, p), 1234, 0x77);
        check_pattern(&img, off_of(&img, p), 1234, 0x77, "post-attach payload");
        nv_free(p);
        pmsan_clean(&img, &format!("after re-attach (freeze={n})"));
    }
}

#[test]
fn mismatched_directory_magic_and_version_are_rejected() {
    let _g = LOCK.lock().unwrap_or_else(|e| e.into_inner());
    for corrupt_version in [false, true] {
        let _reset = Reset;
        let pool = crash_pool();
        global::init(Arc::clone(&pool), cfg()).unwrap();
        let p = nv_malloc(64);
        assert!(!p.is_null());
        let meta = global::with_allocator(|a| pool.read_u64(a.root_offset(0))).unwrap();
        global::shutdown().unwrap();
        if corrupt_version {
            pool.write_u64(meta + 8, 999); // unsupported layout version
        } else {
            pool.write_u64(meta, 0xDEAD_BEEF_DEAD_BEEF); // wrong magic
        }
        // SAFETY: serialized by LOCK; `p` is never used again.
        unsafe { global::reset_unchecked() };
        let err = global::init(Arc::clone(&pool), cfg()).unwrap_err();
        assert!(matches!(err, PmError::Corrupt(_)), "got {err:?}");
        // The rejection releases the handshake sentinel: front end stays
        // uninitialized and a later init is possible.
        assert!(!global::is_initialized());
        assert!(nv_malloc(8).is_null());
    }
}
