//! Crash-injection matrix: run a deterministic trace on a crash-tracked
//! pool, crash after every N operations, recover, and verify the LOG
//! variant's guarantees — committed state intact, no double-allocation,
//! heap fully reusable.

use std::collections::HashMap;
use std::sync::Arc;

use nvalloc::api::PmAllocator;
use nvalloc::{NvAllocator, NvConfig};
use nvalloc_pmem::{LatencyMode, PmemConfig, PmemPool};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn run_until_crash(ops: usize, seed: u64) -> (Arc<PmemPool>, HashMap<usize, (u64, usize)>) {
    let pool = PmemPool::new(
        PmemConfig::default()
            .pool_size(96 << 20)
            .latency_mode(LatencyMode::Off)
            .crash_tracking(true),
    );
    let alloc = NvAllocator::create(Arc::clone(&pool), NvConfig::log()).unwrap();
    let mut t = alloc.thread();
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut live: HashMap<usize, (u64, usize)> = HashMap::new();
    for _ in 0..ops {
        let slot = rng.gen_range(0..128usize);
        let root = alloc.root_offset(slot);
        if let std::collections::hash_map::Entry::Vacant(e) = live.entry(slot) {
            let size = if rng.gen_bool(0.1) {
                rng.gen_range(17 << 10..128 << 10)
            } else {
                rng.gen_range(8..3000)
            };
            let addr = t.malloc_to(size, root).unwrap();
            pool.write_u64(addr, slot as u64 | 0xCAFE << 32);
            pool.flush(t.pm_mut(), addr, 8, nvalloc_pmem::FlushKind::Data);
            pool.fence(t.pm_mut());
            e.insert((addr, size));
        } else {
            t.free_from(root).unwrap();
            live.remove(&slot);
        }
    }
    (pool, live)
}

fn verify_recovery(pool: Arc<PmemPool>, live: &HashMap<usize, (u64, usize)>) {
    let img = PmemPool::from_crash_image(pool.crash());
    let (alloc, report) = NvAllocator::recover(Arc::clone(&img), NvConfig::log()).expect("recover");
    assert!(!report.normal_shutdown);
    let mut t = alloc.thread();
    // Every committed allocation survives with its payload.
    for (&slot, &(addr, _)) in live {
        assert_eq!(img.read_u64(alloc.root_offset(slot)), addr, "root {slot}");
        assert_eq!(img.read_u64(addr), slot as u64 | 0xCAFE << 32, "payload {slot}");
    }
    // Everything can be freed exactly once, then re-allocated heavily
    // (catches double-allocation of leaked space).
    for &slot in live.keys() {
        t.free_from(alloc.root_offset(slot)).unwrap();
        assert!(t.free_from(alloc.root_offset(slot)).is_err());
    }
    assert_eq!(alloc.live_bytes(), 0);
    let mut addrs = Vec::new();
    for i in 0..512usize {
        let root = alloc.root_offset(i);
        let a = t.malloc_to(1500, root).unwrap();
        img.write_u64(a, i as u64);
        addrs.push(a);
    }
    for (i, a) in addrs.iter().enumerate() {
        assert_eq!(img.read_u64(*a), i as u64, "post-recovery block {i} clobbered");
    }
}

#[test]
fn crash_at_many_points() {
    // Crash after progressively longer traces; each recovery must hold
    // every invariant.
    for ops in [1, 3, 10, 33, 100, 333, 1000] {
        let (pool, live) = run_until_crash(ops, 0xC0 + ops as u64);
        verify_recovery(pool, &live);
    }
}

#[test]
fn crash_with_multithreaded_history() {
    let pool = PmemPool::new(
        PmemConfig::default()
            .pool_size(128 << 20)
            .latency_mode(LatencyMode::Off)
            .crash_tracking(true),
    );
    let alloc = NvAllocator::create(Arc::clone(&pool), NvConfig::log().arenas(2)).unwrap();
    let live: Vec<(usize, u64)> = std::thread::scope(|s| {
        (0..4usize)
            .map(|k| {
                let alloc = alloc.clone();
                let pool = Arc::clone(&pool);
                s.spawn(move || {
                    let mut t = alloc.thread();
                    let mut mine = Vec::new();
                    for i in 0..200usize {
                        let slot = k * 256 + i;
                        let root = alloc.root_offset(slot);
                        let addr = t.malloc_to(64 + i % 900, root).unwrap();
                        pool.write_u64(addr, slot as u64);
                        pool.flush(t.pm_mut(), addr, 8, nvalloc_pmem::FlushKind::Data);
                        if i % 3 == 0 {
                            t.free_from(root).unwrap();
                        } else {
                            mine.push((slot, addr));
                        }
                    }
                    pool.fence(t.pm_mut());
                    mine
                })
            })
            .collect::<Vec<_>>()
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect()
    });
    let img = PmemPool::from_crash_image(pool.crash());
    let (alloc2, _) = NvAllocator::recover(Arc::clone(&img), NvConfig::log().arenas(2)).unwrap();
    let mut t = alloc2.thread();
    for (slot, addr) in live {
        assert_eq!(img.read_u64(alloc2.root_offset(slot)), addr);
        assert_eq!(img.read_u64(addr), slot as u64);
        t.free_from(alloc2.root_offset(slot)).unwrap();
    }
}

#[test]
fn repeated_crash_recover_cycles() {
    // Crash → recover → work → crash → recover …: state stays sound.
    let mut image = {
        let pool = PmemPool::new(
            PmemConfig::default()
                .pool_size(96 << 20)
                .latency_mode(LatencyMode::Off)
                .crash_tracking(true),
        );
        let alloc = NvAllocator::create(Arc::clone(&pool), NvConfig::log()).unwrap();
        let mut t = alloc.thread();
        t.malloc_to(100, alloc.root_offset(0)).unwrap();
        pool.crash()
    };
    for round in 0..5 {
        let pool = PmemPool::from_crash_image(image);
        let (alloc, _) = NvAllocator::recover(Arc::clone(&pool), NvConfig::log())
            .unwrap_or_else(|e| panic!("round {round}: {e}"));
        let mut t = alloc.thread();
        // Slot 0 survives every cycle; add one more object per round.
        assert_ne!(pool.read_u64(alloc.root_offset(0)), 0, "round {round}");
        t.malloc_to(200 + round * 10, alloc.root_offset(round + 1)).unwrap();
        image = pool.crash();
    }
}

#[test]
fn gc_variant_multithreaded_crash() {
    use nvalloc_pmem::FlushKind;
    let pool = PmemPool::new(
        PmemConfig::default()
            .pool_size(128 << 20)
            .latency_mode(LatencyMode::Off)
            .crash_tracking(true),
    );
    let alloc = NvAllocator::create(Arc::clone(&pool), NvConfig::gc().arenas(2)).unwrap();
    let live: Vec<(usize, u64)> = std::thread::scope(|s| {
        (0..4usize)
            .map(|k| {
                let alloc = alloc.clone();
                let pool = Arc::clone(&pool);
                s.spawn(move || {
                    let mut t = alloc.thread();
                    let mut mine = Vec::new();
                    for i in 0..150usize {
                        let slot = k * 200 + i;
                        let root = alloc.root_offset(slot);
                        let addr = t.malloc_to(48 + i % 700, root).unwrap();
                        // GC-model contract: the app persists roots and data.
                        pool.flush(t.pm_mut(), root, 8, FlushKind::Data);
                        pool.write_u64(addr, slot as u64);
                        pool.flush(t.pm_mut(), addr, 8, FlushKind::Data);
                        if i % 3 == 0 {
                            pool.write_u64(root, 0);
                            pool.flush(t.pm_mut(), root, 8, FlushKind::Data);
                        } else {
                            mine.push((slot, addr));
                        }
                    }
                    pool.fence(t.pm_mut());
                    mine
                })
            })
            .collect::<Vec<_>>()
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect()
    });
    let img = PmemPool::from_crash_image(pool.crash());
    let (alloc2, report) =
        NvAllocator::recover(Arc::clone(&img), NvConfig::gc().arenas(2)).unwrap();
    assert!(report.gc_live_blocks >= live.len());
    let mut t = alloc2.thread();
    for (slot, addr) in live {
        assert_eq!(img.read_u64(alloc2.root_offset(slot)), addr);
        assert_eq!(img.read_u64(addr), slot as u64);
        t.free_from(alloc2.root_offset(slot)).unwrap();
    }
}

#[test]
fn crash_during_recovery_is_recoverable() {
    // §4.4: "If the recovery process finds the flag is running or
    // recovery, it indicates a failure has occurred during running or
    // recovery" — a second recovery must succeed from that state.
    let pool = PmemPool::new(
        PmemConfig::default()
            .pool_size(96 << 20)
            .latency_mode(LatencyMode::Off)
            .crash_tracking(true),
    );
    let alloc = NvAllocator::create(Arc::clone(&pool), NvConfig::log()).unwrap();
    let mut t = alloc.thread();
    let mut live = HashMap::new();
    for i in 0..200usize {
        let addr = t.malloc_to(100, alloc.root_offset(i)).unwrap();
        pool.write_u64(addr, i as u64);
        pool.flush(t.pm_mut(), addr, 8, nvalloc_pmem::FlushKind::Data);
        live.insert(i, addr);
    }
    let img1 = PmemPool::from_crash_image(pool.crash());

    // First recovery starts (persists the RECOVERY flag) and then "crashes":
    // simulate by recovering fully, crashing, and rewinding the flags to the
    // mid-recovery state before the second attempt.
    {
        let (_a, _) = NvAllocator::recover(Arc::clone(&img1), NvConfig::log()).unwrap();
    }
    let mut img2 = img1.crash();
    // Force the arena flags back to RECOVERY (words live at offset 64+i*64;
    // values: 1 running / 2 shutdown / 3 recovery).
    {
        let p = PmemPool::from_crash_image(img2);
        let mut t = p.register_thread();
        for i in 0..NvConfig::log().arenas {
            p.persist_u64(&mut t, 64 + (i * 64) as u64, 3, nvalloc_pmem::FlushKind::Meta);
        }
        img2 = p.crash();
    }
    let reboot = PmemPool::from_crash_image(img2);
    let (a2, report) = NvAllocator::recover(Arc::clone(&reboot), NvConfig::log())
        .expect("recovery must be idempotent");
    assert!(!report.normal_shutdown, "RECOVERY flag means failure path");
    let mut t2 = a2.thread();
    for (&i, &addr) in &live {
        assert_eq!(reboot.read_u64(a2.root_offset(i)), addr);
        assert_eq!(reboot.read_u64(addr), i as u64);
        t2.free_from(a2.root_offset(i)).unwrap();
    }
    assert_eq!(a2.live_bytes(), 0);
}
