//! Crash-injection matrix: run a deterministic trace on a crash-tracked
//! pool, crash after every N operations, recover, and verify the LOG
//! variant's guarantees — committed state intact, no double-allocation,
//! heap fully reusable.
//!
//! Every pool here also runs the persist-ordering sanitizer
//! ([`nvalloc_pmem::pmsan`]): both the pre-crash trace and the recovery
//! pass must be violation-free, so any ordering regression in the
//! allocator's persistence paths fails this matrix even when the
//! resulting image happens to recover correctly.

use std::collections::HashMap;
use std::sync::Arc;

use nvalloc::api::PmAllocator;
use nvalloc::{NvAllocator, NvConfig};
use nvalloc_pmem::{LatencyMode, PmemConfig, PmemPool};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn run_until_crash(ops: usize, seed: u64) -> (Arc<PmemPool>, HashMap<usize, (u64, usize)>) {
    let pool = PmemPool::new(
        PmemConfig::default()
            .pool_size(96 << 20)
            .latency_mode(LatencyMode::Off)
            .crash_tracking(true)
            .pmsan(true),
    );
    let alloc = NvAllocator::create(Arc::clone(&pool), NvConfig::log()).unwrap();
    let mut t = alloc.thread();
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut live: HashMap<usize, (u64, usize)> = HashMap::new();
    for _ in 0..ops {
        let slot = rng.gen_range(0..128usize);
        let root = alloc.root_offset(slot);
        if let std::collections::hash_map::Entry::Vacant(e) = live.entry(slot) {
            let size = if rng.gen_bool(0.1) {
                rng.gen_range(17 << 10..128 << 10)
            } else {
                rng.gen_range(8..3000)
            };
            let addr = t.malloc_to(size, root).unwrap();
            pool.write_u64(addr, slot as u64 | 0xCAFE << 32);
            pool.flush(t.pm_mut(), addr, 8, nvalloc_pmem::FlushKind::Data);
            pool.fence(t.pm_mut());
            e.insert((addr, size));
        } else {
            t.free_from(root).unwrap();
            live.remove(&slot);
        }
    }
    (pool, live)
}

/// Run the offline doctor over a freshly recovered image: recovery must
/// leave every persistent structure in a state the auditor calls clean.
fn audit_clean(img: &PmemPool, cfg: &NvConfig) {
    let rep = nvalloc::doctor::audit_pool(img, cfg);
    assert!(rep.clean(), "doctor violations after recovery: {:?}", rep.violations);
}

/// The sanitizer gate: `what` ran with zero persist-ordering violations.
fn pmsan_clean(pool: &PmemPool, what: &str) {
    assert_eq!(
        pool.pmsan_total(),
        0,
        "{what} has persist-ordering violations: {}",
        pool.pmsan_report().expect("pmsan pool").to_json()
    );
}

fn verify_recovery(pool: Arc<PmemPool>, live: &HashMap<usize, (u64, usize)>) {
    pmsan_clean(&pool, "pre-crash trace");
    let img = PmemPool::from_crash_image(pool.crash());
    let (alloc, report) = NvAllocator::recover(Arc::clone(&img), NvConfig::log()).expect("recover");
    assert!(!report.normal_shutdown);
    audit_clean(&img, &NvConfig::log());
    let mut t = alloc.thread();
    // Every committed allocation survives with its payload.
    for (&slot, &(addr, _)) in live {
        assert_eq!(img.read_u64(alloc.root_offset(slot)), addr, "root {slot}");
        assert_eq!(img.read_u64(addr), slot as u64 | 0xCAFE << 32, "payload {slot}");
    }
    // Everything can be freed exactly once, then re-allocated heavily
    // (catches double-allocation of leaked space).
    for &slot in live.keys() {
        t.free_from(alloc.root_offset(slot)).unwrap();
        assert!(t.free_from(alloc.root_offset(slot)).is_err());
    }
    assert_eq!(alloc.live_bytes(), 0);
    let mut addrs = Vec::new();
    for i in 0..512usize {
        let root = alloc.root_offset(i);
        let a = t.malloc_to(1500, root).unwrap();
        img.write_u64(a, i as u64);
        addrs.push(a);
    }
    for (i, a) in addrs.iter().enumerate() {
        assert_eq!(img.read_u64(*a), i as u64, "post-recovery block {i} clobbered");
    }
    pmsan_clean(&img, "recovery + post-recovery churn");
}

#[test]
fn crash_at_many_points() {
    // Crash after progressively longer traces; each recovery must hold
    // every invariant.
    for ops in [1, 3, 10, 33, 100, 333, 1000] {
        let (pool, live) = run_until_crash(ops, 0xC0 + ops as u64);
        verify_recovery(pool, &live);
    }
}

#[test]
fn crash_with_multithreaded_history() {
    let pool = PmemPool::new(
        PmemConfig::default()
            .pool_size(128 << 20)
            .latency_mode(LatencyMode::Off)
            .crash_tracking(true)
            .pmsan(true),
    );
    let alloc = NvAllocator::create(Arc::clone(&pool), NvConfig::log().arenas(2)).unwrap();
    let live: Vec<(usize, u64)> = std::thread::scope(|s| {
        (0..4usize)
            .map(|k| {
                let alloc = alloc.clone();
                let pool = Arc::clone(&pool);
                s.spawn(move || {
                    let mut t = alloc.thread();
                    let mut mine = Vec::new();
                    for i in 0..200usize {
                        let slot = k * 256 + i;
                        let root = alloc.root_offset(slot);
                        let addr = t.malloc_to(64 + i % 900, root).unwrap();
                        pool.write_u64(addr, slot as u64);
                        pool.flush(t.pm_mut(), addr, 8, nvalloc_pmem::FlushKind::Data);
                        if i % 3 == 0 {
                            t.free_from(root).unwrap();
                        } else {
                            mine.push((slot, addr));
                        }
                    }
                    pool.fence(t.pm_mut());
                    mine
                })
            })
            .collect::<Vec<_>>()
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect()
    });
    pmsan_clean(&pool, "multithreaded trace");
    let img = PmemPool::from_crash_image(pool.crash());
    let (alloc2, _) = NvAllocator::recover(Arc::clone(&img), NvConfig::log().arenas(2)).unwrap();
    let mut t = alloc2.thread();
    for (slot, addr) in live {
        assert_eq!(img.read_u64(alloc2.root_offset(slot)), addr);
        assert_eq!(img.read_u64(addr), slot as u64);
        t.free_from(alloc2.root_offset(slot)).unwrap();
    }
    pmsan_clean(&img, "recovery after multithreaded crash");
}

#[test]
fn repeated_crash_recover_cycles() {
    // Crash → recover → work → crash → recover …: state stays sound.
    let mut image = {
        let pool = PmemPool::new(
            PmemConfig::default()
                .pool_size(96 << 20)
                .latency_mode(LatencyMode::Off)
                .crash_tracking(true)
                .pmsan(true),
        );
        let alloc = NvAllocator::create(Arc::clone(&pool), NvConfig::log()).unwrap();
        let mut t = alloc.thread();
        t.malloc_to(100, alloc.root_offset(0)).unwrap();
        pool.crash()
    };
    for round in 0..5 {
        let pool = PmemPool::from_crash_image(image);
        let (alloc, _) = NvAllocator::recover(Arc::clone(&pool), NvConfig::log())
            .unwrap_or_else(|e| panic!("round {round}: {e}"));
        let mut t = alloc.thread();
        // Slot 0 survives every cycle; add one more object per round.
        assert_ne!(pool.read_u64(alloc.root_offset(0)), 0, "round {round}");
        t.malloc_to(200 + round * 10, alloc.root_offset(round + 1)).unwrap();
        image = pool.crash();
    }
}

#[test]
fn gc_variant_multithreaded_crash() {
    use nvalloc_pmem::FlushKind;
    let pool = PmemPool::new(
        PmemConfig::default()
            .pool_size(128 << 20)
            .latency_mode(LatencyMode::Off)
            .crash_tracking(true)
            .pmsan(true),
    );
    let alloc = NvAllocator::create(Arc::clone(&pool), NvConfig::gc().arenas(2)).unwrap();
    let live: Vec<(usize, u64)> = std::thread::scope(|s| {
        (0..4usize)
            .map(|k| {
                let alloc = alloc.clone();
                let pool = Arc::clone(&pool);
                s.spawn(move || {
                    let mut t = alloc.thread();
                    let mut mine = Vec::new();
                    for i in 0..150usize {
                        let slot = k * 200 + i;
                        let root = alloc.root_offset(slot);
                        let addr = t.malloc_to(48 + i % 700, root).unwrap();
                        // GC-model contract: the app persists roots and data.
                        pool.flush(t.pm_mut(), root, 8, FlushKind::Data);
                        pool.write_u64(addr, slot as u64);
                        pool.flush(t.pm_mut(), addr, 8, FlushKind::Data);
                        if i % 3 == 0 {
                            pool.write_u64(root, 0);
                            pool.flush(t.pm_mut(), root, 8, FlushKind::Data);
                        } else {
                            mine.push((slot, addr));
                        }
                        // Order each op: without the fence, the next op's
                        // root store lands on a flushed-pending line
                        // (store_unfenced). The crash image is identical
                        // either way — the shadow is flush-driven — so
                        // this only tightens the app's ordering to what
                        // the sanitizer (rightly) demands.
                        pool.fence(t.pm_mut());
                    }
                    mine
                })
            })
            .collect::<Vec<_>>()
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect()
    });
    pmsan_clean(&pool, "gc-variant trace");
    let img = PmemPool::from_crash_image(pool.crash());
    let (alloc2, report) =
        NvAllocator::recover(Arc::clone(&img), NvConfig::gc().arenas(2)).unwrap();
    assert!(report.gc_live_blocks >= live.len());
    let mut t = alloc2.thread();
    for (slot, addr) in live {
        assert_eq!(img.read_u64(alloc2.root_offset(slot)), addr);
        assert_eq!(img.read_u64(addr), slot as u64);
        t.free_from(alloc2.root_offset(slot)).unwrap();
    }
    pmsan_clean(&img, "gc-variant recovery");
}

/// One step of the cross-shard large-allocation trace. `th` selects one
/// of four allocator threads, each pinned (by least-loaded assignment at
/// creation) to a distinct arena — so each has a distinct preferred large
/// shard, and frees route by address to whichever shard owns the extent,
/// regardless of the freeing thread.
#[derive(Clone, Copy)]
enum LOp {
    A { th: usize, slot: usize, size: usize },
    F { th: usize, slot: usize },
}

/// Deterministic interleaving of large allocs/frees across 4 threads,
/// including cross-thread (and therefore cross-shard) frees.
fn sharded_trace() -> Vec<LOp> {
    use LOp::{A, F};
    vec![
        A { th: 0, slot: 0, size: 18 << 10 },
        A { th: 1, slot: 1, size: 33 << 10 },
        A { th: 2, slot: 2, size: 70 << 10 },
        A { th: 3, slot: 3, size: 25 << 10 },
        A { th: 0, slot: 4, size: 48 << 10 },
        F { th: 1, slot: 1 },
        A { th: 1, slot: 5, size: 90 << 10 },
        F { th: 3, slot: 0 }, // cross-shard: t3 frees t0's extent
        A { th: 2, slot: 6, size: 21 << 10 },
        A { th: 3, slot: 7, size: 60 << 10 },
        F { th: 0, slot: 2 }, // cross-shard: t0 frees t2's extent
        F { th: 2, slot: 3 }, // cross-shard: t2 frees t3's extent
        A { th: 0, slot: 8, size: 40 << 10 },
        A { th: 1, slot: 9, size: 17 << 10 },
        F { th: 1, slot: 4 },
        F { th: 0, slot: 5 },
        A { th: 2, slot: 10, size: 80 << 10 },
        F { th: 3, slot: 6 },
        F { th: 2, slot: 9 },
        A { th: 3, slot: 11, size: 28 << 10 },
    ]
}

/// Run the first `steps` ops of the cross-shard trace under `cfg`, then
/// crash. Returns the crash image and the model of committed live slots.
fn run_sharded_prefix(
    cfg: NvConfig,
    gc_contract: bool,
    steps: usize,
) -> (Arc<PmemPool>, HashMap<usize, (u64, usize)>) {
    use nvalloc_pmem::FlushKind;
    let pool = PmemPool::new(
        PmemConfig::default()
            .pool_size(128 << 20)
            .latency_mode(LatencyMode::Off)
            .crash_tracking(true)
            .pmsan(true),
    );
    let alloc = NvAllocator::create(Arc::clone(&pool), cfg).unwrap();
    assert!(alloc.large_shards() >= 4, "need >= 4 shards, got {}", alloc.large_shards());
    let mut ts: Vec<_> = (0..4).map(|_| alloc.thread()).collect();
    let mut live: HashMap<usize, (u64, usize)> = HashMap::new();
    for op in sharded_trace().into_iter().take(steps) {
        match op {
            LOp::A { th, slot, size } => {
                let root = alloc.root_offset(slot);
                let addr = ts[th].malloc_to(size, root).unwrap();
                // No app-side root flush even under the GC contract:
                // large allocations use the WAL in both variants, so the
                // allocator persists the destination itself as the WAL
                // commit record — an app re-flush would be redundant
                // (and the sanitizer flags it as such).
                pool.write_u64(addr, slot as u64 | 0xD0D0 << 32);
                pool.flush(ts[th].pm_mut(), addr, 8, FlushKind::Data);
                pool.fence(ts[th].pm_mut());
                live.insert(slot, (addr, size));
            }
            LOp::F { th, slot } => {
                let root = alloc.root_offset(slot);
                if gc_contract {
                    // GC model: drop the reference; recovery collects it.
                    pool.write_u64(root, 0);
                    pool.flush(ts[th].pm_mut(), root, 8, FlushKind::Data);
                    pool.fence(ts[th].pm_mut());
                } else {
                    ts[th].free_from(root).unwrap();
                }
                live.remove(&slot);
            }
        }
    }
    (pool, live)
}

/// Recover a crashed cross-shard image and assert the shard invariants:
/// committed extents survive with payloads, no extent is double-owned
/// (live ranges are disjoint), none is lost (every live slot enumerable,
/// everything frees exactly once, space is fully reusable).
fn verify_sharded_recovery(
    pool: Arc<PmemPool>,
    cfg: NvConfig,
    live: &HashMap<usize, (u64, usize)>,
) {
    pmsan_clean(&pool, "sharded trace");
    let img = PmemPool::from_crash_image(pool.crash());
    let (alloc, report) = NvAllocator::recover(Arc::clone(&img), cfg.clone()).expect("recover");
    assert!(!report.normal_shutdown);
    assert!(alloc.large_shards() >= 4);
    audit_clean(&img, &cfg);
    for (&slot, &(addr, _)) in live {
        assert_eq!(img.read_u64(alloc.root_offset(slot)), addr, "root {slot}");
        assert_eq!(img.read_u64(addr), slot as u64 | 0xD0D0 << 32, "payload {slot}");
    }
    // No double-ownership across shards: every live range is disjoint.
    let mut objs = alloc.objects();
    objs.sort_unstable();
    for w in objs.windows(2) {
        assert!(
            w[0].0 + w[0].1 as u64 <= w[1].0,
            "extent double-owned: {:#x}+{} overlaps {:#x}",
            w[0].0,
            w[0].1,
            w[1].0
        );
    }
    // No extent lost: every committed allocation is enumerable at (at
    // least) its requested size.
    for (&slot, &(addr, size)) in live {
        assert!(
            objs.iter().any(|&(o, s)| o == addr && s >= size),
            "extent of slot {slot} lost ({addr:#x}, {size})"
        );
    }
    // Everything frees exactly once, and the space is reusable.
    let mut t = alloc.thread();
    for &slot in live.keys() {
        t.free_from(alloc.root_offset(slot)).unwrap();
        assert!(t.free_from(alloc.root_offset(slot)).is_err(), "double free of {slot}");
    }
    assert_eq!(alloc.live_bytes(), 0);
    for i in 0..24usize {
        t.malloc_to(48 << 10, alloc.root_offset(300 + i)).unwrap();
    }
    pmsan_clean(&img, "sharded recovery + reuse churn");
}

#[test]
fn sharded_large_crash_matrix_log() {
    let len = sharded_trace().len();
    for steps in 0..=len {
        let cfg = || NvConfig::log().arenas(4);
        let (pool, live) = run_sharded_prefix(cfg(), false, steps);
        verify_sharded_recovery(pool, cfg(), &live);
    }
}

#[test]
fn sharded_large_crash_matrix_gc() {
    let len = sharded_trace().len();
    for steps in 0..=len {
        let cfg = || NvConfig::gc().arenas(4);
        let (pool, live) = run_sharded_prefix(cfg(), true, steps);
        verify_sharded_recovery(pool, cfg(), &live);
    }
}

#[test]
fn reservoir_crash_accounting_is_pinned() {
    // The slab reservoir now defaults on (batch = 8): the first small
    // allocation carves a batch of 8 slab frames, one becomes a live slab
    // and 7 sit in the volatile reservoir with scrubbed headers. A crash
    // must surface exactly those 7 as fixed leaks, and the space must be
    // fully reusable afterwards.
    let cfg = NvConfig::log();
    assert_eq!(cfg.slab_reservoir, 8, "reservoir default changed; update this pin");
    let pool = PmemPool::new(
        PmemConfig::default()
            .pool_size(96 << 20)
            .latency_mode(LatencyMode::Off)
            .crash_tracking(true)
            .pmsan(true),
    );
    let alloc = NvAllocator::create(Arc::clone(&pool), NvConfig::log()).unwrap();
    let mut t = alloc.thread();
    let addr = t.malloc_to(100, alloc.root_offset(0)).unwrap();
    pool.write_u64(addr, 0xFEED);
    pool.flush(t.pm_mut(), addr, 8, nvalloc_pmem::FlushKind::Data);
    pool.fence(t.pm_mut());

    let img = PmemPool::from_crash_image(pool.crash());
    let (alloc2, report) = NvAllocator::recover(Arc::clone(&img), NvConfig::log()).unwrap();
    assert_eq!(report.slabs, 1, "exactly one slab has a persisted header");
    assert_eq!(
        report.leaks_fixed,
        cfg.slab_reservoir - 1,
        "reserved-but-unused slab frames must be reclaimed as leaks"
    );
    assert_eq!(img.read_u64(addr), 0xFEED);
    let mut t2 = alloc2.thread();
    t2.free_from(alloc2.root_offset(0)).unwrap();
    assert_eq!(alloc2.live_bytes(), 0);
    // The reclaimed frames are allocatable again.
    for i in 0..256usize {
        t2.malloc_to(1200, alloc2.root_offset(1 + i)).unwrap();
    }
    pmsan_clean(&img, "reservoir recovery");
}

#[test]
fn crash_during_recovery_is_recoverable() {
    // §4.4: "If the recovery process finds the flag is running or
    // recovery, it indicates a failure has occurred during running or
    // recovery" — a second recovery must succeed from that state.
    let pool = PmemPool::new(
        PmemConfig::default()
            .pool_size(96 << 20)
            .latency_mode(LatencyMode::Off)
            .crash_tracking(true)
            .pmsan(true),
    );
    let alloc = NvAllocator::create(Arc::clone(&pool), NvConfig::log()).unwrap();
    let mut t = alloc.thread();
    let mut live = HashMap::new();
    for i in 0..200usize {
        let addr = t.malloc_to(100, alloc.root_offset(i)).unwrap();
        pool.write_u64(addr, i as u64);
        pool.flush(t.pm_mut(), addr, 8, nvalloc_pmem::FlushKind::Data);
        live.insert(i, addr);
    }
    let img1 = PmemPool::from_crash_image(pool.crash());

    // First recovery starts (persists the RECOVERY flag) and then "crashes":
    // simulate by recovering fully, crashing, and rewinding the flags to the
    // mid-recovery state before the second attempt.
    {
        let (_a, _) = NvAllocator::recover(Arc::clone(&img1), NvConfig::log()).unwrap();
    }
    let mut img2 = img1.crash();
    // Force the arena flags back to RECOVERY (words live at offset 64+i*64;
    // values: 1 running / 2 shutdown / 3 recovery).
    {
        let p = PmemPool::from_crash_image(img2);
        let mut t = p.register_thread();
        for i in 0..NvConfig::log().arenas {
            p.persist_u64(&mut t, 64 + (i * 64) as u64, 3, nvalloc_pmem::FlushKind::Meta);
        }
        img2 = p.crash();
    }
    let reboot = PmemPool::from_crash_image(img2);
    let (a2, report) = NvAllocator::recover(Arc::clone(&reboot), NvConfig::log())
        .expect("recovery must be idempotent");
    assert!(!report.normal_shutdown, "RECOVERY flag means failure path");
    let mut t2 = a2.thread();
    for (&i, &addr) in &live {
        assert_eq!(reboot.read_u64(a2.root_offset(i)), addr);
        assert_eq!(reboot.read_u64(addr), i as u64);
        t2.free_from(a2.root_offset(i)).unwrap();
    }
    assert_eq!(a2.live_bytes(), 0);
    pmsan_clean(&reboot, "double recovery");
}
