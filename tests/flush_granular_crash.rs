//! Flush-granular crash injection: sweep the power-failure point across
//! *every few individual cache-line flushes* of a workload and verify that
//! NVAlloc-LOG recovery holds its invariants at each point — including
//! crashes landing mid-operation, between a WAL append and the bitmap
//! update, or between the bitmap and the destination install.

use std::sync::Arc;

use nvalloc::api::PmAllocator;
use nvalloc::{NvAllocator, NvConfig};
use nvalloc_pmem::{FlushKind, LatencyMode, PmemConfig, PmemPool};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

const TAG: u64 = 0xF1A5 << 32;

/// Run a deterministic trace with persistence frozen after `freeze`
/// flushes, then crash, recover, and validate. Returns the total number of
/// flushes the full trace issues (for sweep sizing).
fn run_with_freeze(freeze: Option<u64>, ops: usize, seed: u64) -> u64 {
    let pool = PmemPool::new(
        PmemConfig::default()
            .pool_size(96 << 20)
            .latency_mode(LatencyMode::Off)
            .crash_tracking(true),
    );
    let alloc = NvAllocator::create(Arc::clone(&pool), NvConfig::log()).unwrap();
    if let Some(n) = freeze {
        pool.freeze_persistence_after(n);
    }
    {
        let mut t = alloc.thread();
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut occupied = [false; 128];
        for _ in 0..ops {
            let slot = rng.gen_range(0..128usize);
            let root = alloc.root_offset(slot);
            if occupied[slot] {
                t.free_from(root).unwrap();
                occupied[slot] = false;
            } else {
                let size = if rng.gen_bool(0.08) {
                    rng.gen_range(17 << 10..96 << 10)
                } else {
                    rng.gen_range(8..2500)
                };
                let addr = t.malloc_to(size, root).unwrap();
                pool.write_u64(addr, slot as u64 | TAG);
                pool.flush(t.pm_mut(), addr, 8, FlushKind::Data);
                pool.fence(t.pm_mut());
                occupied[slot] = true;
            }
        }
    }
    let total_flushes = pool.stats().flushes();
    if freeze.is_none() {
        return total_flushes;
    }

    // Crash at the frozen point and recover.
    let img = PmemPool::from_crash_image(pool.crash());
    let (a2, _) = NvAllocator::recover(Arc::clone(&img), NvConfig::log())
        .unwrap_or_else(|e| panic!("freeze={freeze:?}: recover failed: {e}"));
    let mut t2 = a2.thread();

    // Invariants: every non-zero root points at an allocated block that is
    // freeable exactly once; afterwards the heap is empty and fully
    // reusable. (Payload contents may legitimately be stale — the tag
    // write's own flush can fall after the crash point — so only the
    // allocator-level invariants are asserted.)
    let mut live = 0;
    for slot in 0..128usize {
        let root = a2.root_offset(slot);
        let addr = img.read_u64(root);
        if addr == 0 {
            continue;
        }
        t2.free_from(root)
            .unwrap_or_else(|e| panic!("freeze={freeze:?} slot {slot}: free failed: {e}"));
        assert!(
            t2.free_from(root).is_err(),
            "freeze={freeze:?} slot {slot}: double free undetected"
        );
        live += 1;
    }
    assert_eq!(a2.live_bytes(), 0, "freeze={freeze:?}: {live} frees left residue");
    // Reuse the whole heap.
    for i in 0..256usize {
        t2.malloc_to(1000, a2.root_offset(i)).unwrap();
    }
    total_flushes
}

#[test]
fn crash_swept_across_individual_flushes() {
    let ops = 160;
    let seed = 0xF1A5;
    let total = run_with_freeze(None, ops, seed);
    assert!(total > 400, "trace too small ({total} flushes)");
    // Sweep ~60 crash points spread over the whole trace, plus the first
    // dozen flushes one by one (formatting / first-slab edge cases).
    let step = (total / 48).max(1);
    let mut points: Vec<u64> = (0..12).collect();
    points.extend((12..total).step_by(step as usize));
    for n in points {
        run_with_freeze(Some(n), ops, seed);
    }
}

#[test]
fn crash_swept_multithreaded_coarse() {
    // Multi-threaded traces with freeze points: coarser sweep (the
    // interleaving varies run to run; invariants must hold regardless).
    for freeze in [50u64, 300, 900, 2500] {
        let pool = PmemPool::new(
            PmemConfig::default()
                .pool_size(128 << 20)
                .latency_mode(LatencyMode::Off)
                .crash_tracking(true),
        );
        let alloc = NvAllocator::create(Arc::clone(&pool), NvConfig::log().arenas(2)).unwrap();
        pool.freeze_persistence_after(freeze);
        std::thread::scope(|s| {
            for k in 0..3usize {
                let alloc = alloc.clone();
                let pool = Arc::clone(&pool);
                s.spawn(move || {
                    let mut t = alloc.thread();
                    for i in 0..120usize {
                        let root = alloc.root_offset(k * 256 + i);
                        let addr = t.malloc_to(32 + i % 700, root).unwrap();
                        pool.write_u64(addr, (k * 256 + i) as u64 | TAG);
                        pool.flush(t.pm_mut(), addr, 8, FlushKind::Data);
                        if i % 3 == 0 {
                            t.free_from(root).unwrap();
                        }
                    }
                });
            }
        });
        let img = PmemPool::from_crash_image(pool.crash());
        let (a2, _) = NvAllocator::recover(Arc::clone(&img), NvConfig::log().arenas(2))
            .unwrap_or_else(|e| panic!("freeze={freeze}: {e}"));
        let mut t2 = a2.thread();
        for slot in 0..768usize {
            let root = a2.root_offset(slot);
            if img.read_u64(root) != 0 {
                t2.free_from(root).unwrap();
                assert!(t2.free_from(root).is_err(), "slot {slot}: double free");
            }
        }
        assert_eq!(a2.live_bytes(), 0);
    }
}
