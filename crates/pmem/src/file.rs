//! Heap files: persisting a pool image to disk and re-mapping it.
//!
//! The paper's heaps live as files on a DAX filesystem (§2.1 "Heap files").
//! This module provides the equivalent round-trip for the emulated pool:
//! [`PmemPool::save_heap_file`] writes the *persistent* image (or the full
//! volatile state for a clean shutdown) with a checksummed header, and
//! [`PmemPool::open_heap_file`] maps it back into a new pool, preserving
//! the configuration's latency/crash-tracking settings.

use std::fs::File;
use std::io::{self, Read, Write};
use std::path::Path;
use std::sync::Arc;

use crate::pool::{PmemConfig, PmemPool};

const FILE_MAGIC: u64 = 0x4E56_4845_4150_0001; // "NVHEAP"+v1

fn checksum(words: &[u64]) -> u64 {
    // FNV-1a over the word stream: cheap, deterministic, good enough to
    // catch truncation and bit rot in a heap file.
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for w in words {
        h ^= *w;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

impl PmemPool {
    /// Write this pool's state to `path` as a heap file.
    ///
    /// With `flushed_only = true` (requires crash tracking) the file holds
    /// exactly what an ADR platform would have preserved at this instant;
    /// with `false` it holds the full volatile state (a clean shutdown).
    ///
    /// # Errors
    /// Propagates I/O errors.
    ///
    /// # Panics
    /// Panics if `flushed_only` is requested without crash tracking.
    pub fn save_heap_file(&self, path: &Path, flushed_only: bool) -> io::Result<()> {
        let image = if flushed_only { self.crash() } else { self.clean_shutdown_image() };
        let words = image.words();
        let mut f = File::create(path)?;
        let mut header = Vec::with_capacity(4 * 8);
        header.extend_from_slice(&FILE_MAGIC.to_le_bytes());
        header.extend_from_slice(&(words.len() as u64 * 8).to_le_bytes());
        header.extend_from_slice(&checksum(words).to_le_bytes());
        header.extend_from_slice(&0u64.to_le_bytes());
        f.write_all(&header)?;
        // Word stream, little endian.
        let mut buf = Vec::with_capacity(1 << 20);
        for chunk in words.chunks(1 << 17) {
            buf.clear();
            for w in chunk {
                buf.extend_from_slice(&w.to_le_bytes());
            }
            f.write_all(&buf)?;
        }
        f.sync_all()
    }

    /// Open a heap file written by [`PmemPool::save_heap_file`] as a new
    /// pool. `config` supplies the runtime settings (latency mode, crash
    /// tracking); its pool size is overridden by the file's.
    ///
    /// # Errors
    /// I/O errors, or [`io::ErrorKind::InvalidData`] on a corrupt file.
    pub fn open_heap_file(path: &Path, config: PmemConfig) -> io::Result<Arc<PmemPool>> {
        let mut f = File::open(path)?;
        let mut header = [0u8; 32];
        f.read_exact(&mut header)?;
        let magic = u64::from_le_bytes(header[0..8].try_into().expect("8 bytes"));
        if magic != FILE_MAGIC {
            return Err(io::Error::new(io::ErrorKind::InvalidData, "not a heap file"));
        }
        let bytes = u64::from_le_bytes(header[8..16].try_into().expect("8 bytes")) as usize;
        let want_sum = u64::from_le_bytes(header[16..24].try_into().expect("8 bytes"));
        let mut raw = vec![0u8; bytes];
        f.read_exact(&mut raw)?;
        let words: Vec<u64> = raw
            .chunks_exact(8)
            .map(|c| u64::from_le_bytes(c.try_into().expect("8 bytes")))
            .collect();
        if checksum(&words) != want_sum {
            return Err(io::Error::new(io::ErrorKind::InvalidData, "heap file checksum mismatch"));
        }
        Ok(PmemPool::from_words(words, config))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FlushKind, LatencyMode};

    fn tmp(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("nvalloc-heapfile-{}-{}", std::process::id(), name));
        p
    }

    #[test]
    fn roundtrip_clean_image() {
        let pool =
            PmemPool::new(PmemConfig::default().pool_size(1 << 20).latency_mode(LatencyMode::Off));
        pool.write_u64(4096, 0xFEED);
        pool.write_u64((1 << 20) - 8, 7);
        let path = tmp("clean");
        pool.save_heap_file(&path, false).unwrap();
        let re =
            PmemPool::open_heap_file(&path, PmemConfig::default().latency_mode(LatencyMode::Off))
                .unwrap();
        assert_eq!(re.size(), 1 << 20);
        assert_eq!(re.read_u64(4096), 0xFEED);
        assert_eq!(re.read_u64((1 << 20) - 8), 7);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn flushed_only_respects_crash_semantics() {
        let pool = PmemPool::new(
            PmemConfig::default()
                .pool_size(1 << 16)
                .latency_mode(LatencyMode::Off)
                .crash_tracking(true),
        );
        let mut t = pool.register_thread();
        pool.write_u64(0, 1);
        pool.flush(&mut t, 0, 8, FlushKind::Data);
        pool.write_u64(64, 2); // never flushed
        let path = tmp("flushed");
        pool.save_heap_file(&path, true).unwrap();
        let re =
            PmemPool::open_heap_file(&path, PmemConfig::default().latency_mode(LatencyMode::Off))
                .unwrap();
        assert_eq!(re.read_u64(0), 1);
        assert_eq!(re.read_u64(64), 0, "unflushed write must not reach the file");
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn corrupt_file_rejected() {
        let path = tmp("corrupt");
        std::fs::write(&path, b"definitely not a heap file, far too short?").unwrap();
        let err =
            PmemPool::open_heap_file(&path, PmemConfig::default().latency_mode(LatencyMode::Off))
                .unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn bitflip_detected() {
        let pool =
            PmemPool::new(PmemConfig::default().pool_size(1 << 16).latency_mode(LatencyMode::Off));
        pool.write_u64(128, 42);
        let path = tmp("bitflip");
        pool.save_heap_file(&path, false).unwrap();
        // Flip one byte in the body.
        let mut raw = std::fs::read(&path).unwrap();
        let n = raw.len();
        raw[n / 2] ^= 0x40;
        std::fs::write(&path, raw).unwrap();
        let err =
            PmemPool::open_heap_file(&path, PmemConfig::default().latency_mode(LatencyMode::Off))
                .unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        std::fs::remove_file(path).ok();
    }
}
