//! The emulated persistent-memory pool.
//!
//! A [`PmemPool`] is a fixed-size, offset-addressed byte region standing in
//! for a DAX-mapped heap file. All addressing is by [`PmOffset`] (byte offset
//! from the pool base), matching the offset-based pointer representation the
//! paper uses so heaps can be remapped after recovery (§4.1).
//!
//! Storage is a slice of `AtomicU64` words, so concurrent access from many
//! allocator threads is sound without `unsafe`; aligned 8-byte accesses are
//! single atomic operations (the common case for heap metadata), and
//! sub-word or unaligned accesses fall back to CAS loops on the covering
//! words.
//!
//! With [`PmemConfig::crash_tracking`] enabled the pool keeps a shadow
//! *persistent image* that only receives data on [`PmemPool::flush`]; a
//! simulated power failure ([`PmemPool::crash`]) yields exactly the bytes an
//! ADR platform would have preserved. Crash-injection tests recover a new
//! pool from that image.

use std::sync::atomic::{AtomicI64, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

use crate::error::{PmError, PmResult};
use crate::layout::{line_of, CACHE_LINE};
use crate::model::{LatencyModel, ModelParams};
use crate::pmsan::{PmsanKind, PmsanReport, PmsanState, PmsanWindow, MAX_EXHAUSTIVE_LINES};
use crate::stats::{FlushKind, PmemStats};
use crate::thread::PmThread;
use crate::{LatencyMode, PmemMode};

/// Byte offset from the pool base. The universal "pointer" type of this
/// workspace; persistent structures store these instead of virtual addresses.
pub type PmOffset = u64;

/// Configuration for a [`PmemPool`].
///
/// ```
/// use nvalloc_pmem::{LatencyMode, PmemConfig, PmemPool};
///
/// let pool = PmemPool::new(
///     PmemConfig::default()
///         .pool_size(16 << 20)
///         .latency_mode(LatencyMode::Virtual)
///         .crash_tracking(true),
/// );
/// assert_eq!(pool.size(), 16 << 20);
/// ```
#[derive(Debug, Clone)]
pub struct PmemConfig {
    pool_size: usize,
    latency_mode: LatencyMode,
    pmem_mode: PmemMode,
    params: ModelParams,
    crash_tracking: bool,
    trace_capacity: usize,
    pmsan: bool,
}

impl Default for PmemConfig {
    fn default() -> Self {
        PmemConfig {
            pool_size: 64 << 20,
            latency_mode: LatencyMode::Virtual,
            pmem_mode: PmemMode::Adr,
            params: ModelParams::default(),
            crash_tracking: false,
            trace_capacity: 1 << 17,
            pmsan: false,
        }
    }
}

impl PmemConfig {
    /// Pool size in bytes (rounded up to a cache line).
    pub fn pool_size(mut self, bytes: usize) -> Self {
        self.pool_size = bytes;
        self
    }

    /// How modelled latencies are applied (virtual clock, spin, or off).
    pub fn latency_mode(mut self, mode: LatencyMode) -> Self {
        self.latency_mode = mode;
        self
    }

    /// ADR (flushes required) or eADR (flushes free, stores charged).
    pub fn pmem_mode(mut self, mode: PmemMode) -> Self {
        self.pmem_mode = mode;
        self
    }

    /// Override latency-model constants.
    pub fn model_params(mut self, params: ModelParams) -> Self {
        self.params = params;
        self
    }

    /// Keep a shadow persistent image so [`PmemPool::crash`] can produce
    /// the flushed-only state. Costs one extra copy per flushed line plus
    /// 2× memory.
    pub fn crash_tracking(mut self, enabled: bool) -> Self {
        self.crash_tracking = enabled;
        self
    }

    /// Capacity of the flush-address trace used by the Fig. 2 experiment.
    pub fn trace_capacity(mut self, records: usize) -> Self {
        self.trace_capacity = records;
        self
    }

    /// Enable the persist-ordering sanitizer (see [`crate::pmsan`]).
    /// Observational only: it never touches the latency model, so
    /// modelled measurements are identical with it on or off. Costs one
    /// atomic per 64 B line of shadow state plus per-op bookkeeping.
    pub fn pmsan(mut self, enabled: bool) -> Self {
        self.pmsan = enabled;
        self
    }

    /// Whether the persist-ordering sanitizer is enabled.
    pub fn pmsan_enabled(&self) -> bool {
        self.pmsan
    }
}

/// The flushed-only bytes surviving a simulated power failure.
///
/// Produced by [`PmemPool::crash`]; feed it to [`PmemPool::from_crash_image`]
/// to "reboot".
#[derive(Debug, Clone)]
pub struct CrashImage {
    words: Vec<u64>,
    config: PmemConfig,
}

impl CrashImage {
    /// The raw 8-byte words of the image (heap-file serialisation).
    pub fn words(&self) -> &[u64] {
        &self.words
    }
}

/// An emulated persistent-memory pool. See the crate-level docs for the
/// cost model and crash semantics.
///
/// Cheap to share: wrap in an [`Arc`] (constructors already return one).
#[derive(Debug)]
pub struct PmemPool {
    words: Box<[AtomicU64]>,
    shadow: Option<Box<[AtomicU64]>>,
    size: usize,
    model: LatencyModel,
    stats: PmemStats,
    next_thread: AtomicUsize,
    config: PmemConfig,
    /// Remaining line-flushes that still reach the persistent image
    /// (crash-injection hook; `i64::MAX` = unlimited).
    persist_budget: AtomicI64,
    /// Persist-ordering sanitizer state ([`PmemConfig::pmsan`]).
    pmsan: Option<PmsanState>,
}

fn alloc_words(n: usize) -> Box<[AtomicU64]> {
    // Zeroed backing store; AtomicU64 is repr(transparent) over u64 but we
    // build it without unsafe.
    let mut v = Vec::with_capacity(n);
    v.resize_with(n, || AtomicU64::new(0));
    v.into_boxed_slice()
}

impl PmemPool {
    /// Create a zero-filled pool.
    pub fn new(config: PmemConfig) -> Arc<Self> {
        let size = crate::layout::align_up(config.pool_size as u64, CACHE_LINE as u64) as usize;
        let nwords = size / 8;
        let shadow = config.crash_tracking.then(|| alloc_words(nwords));
        Arc::new(PmemPool {
            words: alloc_words(nwords),
            shadow,
            size,
            model: LatencyModel::new(config.params.clone(), config.latency_mode, config.pmem_mode),
            stats: PmemStats::new(config.trace_capacity),
            next_thread: AtomicUsize::new(0),
            pmsan: config.pmsan.then(|| PmsanState::new(size)),
            config,
            persist_budget: AtomicI64::new(i64::MAX),
        })
    }

    /// Rebuild a pool from the persistent image left by a crash. The new
    /// pool's volatile and persistent state both equal the image, exactly
    /// like re-mapping a heap file after a power failure.
    pub fn from_crash_image(image: CrashImage) -> Arc<Self> {
        let nwords = image.words.len();
        let words = alloc_words(nwords);
        for (w, v) in words.iter().zip(&image.words) {
            w.store(*v, Ordering::Relaxed);
        }
        let shadow = image.config.crash_tracking.then(|| {
            let s = alloc_words(nwords);
            for (w, v) in s.iter().zip(&image.words) {
                w.store(*v, Ordering::Relaxed);
            }
            s
        });
        let config = image.config;
        Arc::new(PmemPool {
            words,
            shadow,
            size: nwords * 8,
            model: LatencyModel::new(config.params.clone(), config.latency_mode, config.pmem_mode),
            stats: PmemStats::new(config.trace_capacity),
            next_thread: AtomicUsize::new(0),
            // Fresh sanitizer state: the image's contents are the
            // already-durable baseline, i.e. every line starts persisted.
            pmsan: config.pmsan.then(|| PmsanState::new(nwords * 8)),
            config,
            persist_budget: AtomicI64::new(i64::MAX),
        })
    }

    /// Pool size in bytes.
    pub fn size(&self) -> usize {
        self.size
    }

    /// Host address of the pool's first byte. Pool offsets are byte
    /// offsets from this base, so `base_ptr() + off` is the host location
    /// of offset `off` — the mapping a `GlobalAlloc` front end hands out
    /// as real pointers. The backing store lives as long as the pool
    /// (keep the `Arc` alive while any such pointer is in use); writes
    /// made through derived raw pointers are volatile-only — they bypass
    /// the latency model, the sanitizer, and crash tracking, exactly like
    /// CPU stores that were never flushed.
    pub fn base_ptr(&self) -> *const u8 {
        self.words.as_ptr().cast::<u8>()
    }

    /// The configuration this pool was built with.
    pub fn config(&self) -> &PmemConfig {
        &self.config
    }

    /// Event counters.
    pub fn stats(&self) -> &PmemStats {
        &self.stats
    }

    /// The latency model (for parameter inspection).
    pub fn model(&self) -> &LatencyModel {
        &self.model
    }

    /// Register a worker thread; returns its PM handle.
    pub fn register_thread(&self) -> PmThread {
        PmThread::new(self.next_thread.fetch_add(1, Ordering::Relaxed))
    }

    #[inline]
    fn check(&self, off: PmOffset, len: usize) -> PmResult<()> {
        if (off as usize).checked_add(len).is_none_or(|end| end > self.size) {
            return Err(PmError::OutOfBounds { offset: off, len, pool: self.size });
        }
        Ok(())
    }

    #[inline]
    fn bounds_panic(&self, off: PmOffset, len: usize) {
        if let Err(e) = self.check(off, len) {
            panic!("{e}");
        }
    }

    // ----- reads (never charged; the paper's model is write-dominated) -----

    /// Read an aligned `u64`.
    ///
    /// # Panics
    /// Panics if `off` is not 8-byte aligned or out of bounds.
    #[inline]
    pub fn read_u64(&self, off: PmOffset) -> u64 {
        self.bounds_panic(off, 8);
        assert_eq!(off % 8, 0, "unaligned u64 read at {off:#x}");
        self.words[off as usize / 8].load(Ordering::Acquire)
    }

    /// Read an aligned `u32`.
    #[inline]
    pub fn read_u32(&self, off: PmOffset) -> u32 {
        self.bounds_panic(off, 4);
        assert_eq!(off % 4, 0, "unaligned u32 read at {off:#x}");
        let w = self.words[off as usize / 8].load(Ordering::Acquire);
        (w >> ((off % 8) * 8)) as u32
    }

    /// Read an aligned `u16`.
    #[inline]
    pub fn read_u16(&self, off: PmOffset) -> u16 {
        self.bounds_panic(off, 2);
        assert_eq!(off % 2, 0, "unaligned u16 read at {off:#x}");
        let w = self.words[off as usize / 8].load(Ordering::Acquire);
        (w >> ((off % 8) * 8)) as u16
    }

    /// Read one byte.
    #[inline]
    pub fn read_u8(&self, off: PmOffset) -> u8 {
        self.bounds_panic(off, 1);
        let w = self.words[off as usize / 8].load(Ordering::Acquire);
        (w >> ((off % 8) * 8)) as u8
    }

    /// Read `dst.len()` bytes starting at `off`.
    pub fn read_bytes(&self, off: PmOffset, dst: &mut [u8]) {
        self.bounds_panic(off, dst.len());
        for (i, b) in dst.iter_mut().enumerate() {
            let o = off + i as u64;
            let w = self.words[o as usize / 8].load(Ordering::Acquire);
            *b = (w >> ((o % 8) * 8)) as u8;
        }
    }

    // ----- writes -----

    /// pmsan store hook: mark every line of `[off, off+len)` dirty.
    #[inline]
    fn san_store(&self, off: PmOffset, len: usize) {
        if let Some(s) = &self.pmsan {
            s.note_store(off, len);
        }
    }

    /// Write an aligned `u64`, charging the store model (eADR).
    ///
    /// # Panics
    /// Panics if `off` is not 8-byte aligned or out of bounds.
    #[inline]
    pub fn write_u64(&self, off: PmOffset, value: u64) {
        self.bounds_panic(off, 8);
        assert_eq!(off % 8, 0, "unaligned u64 write at {off:#x}");
        self.san_store(off, 8);
        self.words[off as usize / 8].store(value, Ordering::Release);
    }

    /// Write an aligned `u32`.
    #[inline]
    pub fn write_u32(&self, off: PmOffset, value: u32) {
        self.bounds_panic(off, 4);
        assert_eq!(off % 4, 0, "unaligned u32 write at {off:#x}");
        self.san_store(off, 4);
        self.rmw_word(off, 4, value as u64);
    }

    /// Write an aligned `u16`.
    #[inline]
    pub fn write_u16(&self, off: PmOffset, value: u16) {
        self.bounds_panic(off, 2);
        assert_eq!(off % 2, 0, "unaligned u16 write at {off:#x}");
        self.san_store(off, 2);
        self.rmw_word(off, 2, value as u64);
    }

    /// Write one byte.
    #[inline]
    pub fn write_u8(&self, off: PmOffset, value: u8) {
        self.bounds_panic(off, 1);
        self.san_store(off, 1);
        self.rmw_word(off, 1, value as u64);
    }

    #[inline]
    fn rmw_word(&self, off: PmOffset, len: u64, value: u64) {
        let shift = (off % 8) * 8;
        let mask = if len == 8 { u64::MAX } else { ((1u64 << (len * 8)) - 1) << shift };
        let word = &self.words[off as usize / 8];
        let mut cur = word.load(Ordering::Relaxed);
        loop {
            let new = (cur & !mask) | ((value << shift) & mask);
            match word.compare_exchange_weak(cur, new, Ordering::AcqRel, Ordering::Relaxed) {
                Ok(_) => return,
                Err(c) => cur = c,
            }
        }
    }

    /// Write `src` starting at `off`.
    pub fn write_bytes(&self, off: PmOffset, src: &[u8]) {
        self.bounds_panic(off, src.len());
        self.san_store(off, src.len());
        let mut i = 0usize;
        // Leading partial word.
        while i < src.len() && !(off + i as u64).is_multiple_of(8) {
            self.rmw_word(off + i as u64, 1, src[i] as u64);
            i += 1;
        }
        // Full words.
        while i + 8 <= src.len() {
            let v = u64::from_le_bytes(src[i..i + 8].try_into().expect("8-byte chunk"));
            self.words[(off as usize + i) / 8].store(v, Ordering::Release);
            i += 8;
        }
        // Trailing bytes.
        while i < src.len() {
            self.rmw_word(off + i as u64, 1, src[i] as u64);
            i += 1;
        }
    }

    /// Fill `len` bytes at `off` with `byte`.
    pub fn fill_bytes(&self, off: PmOffset, len: usize, byte: u8) {
        self.bounds_panic(off, len);
        self.san_store(off, len);
        let word = u64::from_le_bytes([byte; 8]);
        let mut i = 0usize;
        while i < len && !(off + i as u64).is_multiple_of(8) {
            self.rmw_word(off + i as u64, 1, byte as u64);
            i += 1;
        }
        while i + 8 <= len {
            self.words[(off as usize + i) / 8].store(word, Ordering::Release);
            i += 8;
        }
        while i < len {
            self.rmw_word(off + i as u64, 1, byte as u64);
            i += 1;
        }
    }

    /// Atomically OR `bits` into the aligned `u64` at `off`; returns the
    /// previous value.
    #[inline]
    pub fn fetch_or_u64(&self, off: PmOffset, bits: u64) -> u64 {
        self.bounds_panic(off, 8);
        assert_eq!(off % 8, 0);
        self.san_store(off, 8);
        self.words[off as usize / 8].fetch_or(bits, Ordering::AcqRel)
    }

    /// Atomically AND `bits` into the aligned `u64` at `off`; returns the
    /// previous value.
    #[inline]
    pub fn fetch_and_u64(&self, off: PmOffset, bits: u64) -> u64 {
        self.bounds_panic(off, 8);
        assert_eq!(off % 8, 0);
        self.san_store(off, 8);
        self.words[off as usize / 8].fetch_and(bits, Ordering::AcqRel)
    }

    /// Atomically compare-and-swap the aligned `u64` at `off`.
    ///
    /// # Errors
    /// Returns the actual current value if it did not match `expected`.
    #[inline]
    pub fn compare_exchange_u64(&self, off: PmOffset, expected: u64, new: u64) -> Result<u64, u64> {
        self.bounds_panic(off, 8);
        assert_eq!(off % 8, 0);
        let r = self.words[off as usize / 8].compare_exchange(
            expected,
            new,
            Ordering::AcqRel,
            Ordering::Acquire,
        );
        if r.is_ok() {
            self.san_store(off, 8);
        }
        r
    }

    // ----- persistence -----

    /// Charge the eADR store model for a write of `len` bytes at `off`.
    ///
    /// On ADR platforms this is free; call it after stores on paths that the
    /// eADR experiments measure. Kept separate from the write methods so
    /// initialisation and volatile scratch writes do not distort the model.
    #[inline]
    pub fn charge_store(&self, thread: &mut PmThread, off: PmOffset, len: usize) {
        if let Some(s) = &self.pmsan {
            s.on_charge(thread, off, len);
        }
        self.model.store(thread, off, len);
    }

    /// Flush (clwb-equivalent) every cache line covering `[off, off+len)`.
    ///
    /// Counts, classifies (reflush / sequential / random / XPBuffer), and
    /// charges each line. With crash tracking on, copies the lines into the
    /// persistent image.
    pub fn flush(&self, thread: &mut PmThread, off: PmOffset, len: usize, kind: FlushKind) {
        self.flush_impl(thread, off, len, kind, true);
    }

    /// [`PmemPool::flush`], declared as a *writeback sweep*: a flush of a
    /// range that may legitimately already be persisted (shutdown
    /// writeback, belt-and-braces sweeps before an audit). Identical
    /// cost model and crash semantics; the only difference is that the
    /// pmsan redundant-flush check is skipped, which for small targeted
    /// flushes would otherwise flag re-flushing clean lines.
    pub fn flush_writeback(
        &self,
        thread: &mut PmThread,
        off: PmOffset,
        len: usize,
        kind: FlushKind,
    ) {
        self.flush_impl(thread, off, len, kind, false);
    }

    fn flush_impl(
        &self,
        thread: &mut PmThread,
        off: PmOffset,
        len: usize,
        kind: FlushKind,
        check_redundant: bool,
    ) {
        if len == 0 {
            return;
        }
        self.bounds_panic(off, len);
        thread.flushed_since_fence = thread.flushed_since_fence.saturating_add(1);
        let first = line_of(off);
        let last = line_of(off + len as u64 - 1);
        if check_redundant {
            if let Some(s) = &self.pmsan {
                s.on_flush_call(thread, first, last, kind);
            }
        }
        let mut line = first;
        while line <= last {
            let outcome = self.model.flush_line(thread, line);
            self.stats.record_flush(
                outcome.seq,
                line,
                kind,
                outcome.is_reflush,
                outcome.is_sequential,
                outcome.xpbuf_miss,
                outcome.cost_ns,
                CACHE_LINE as u64,
            );
            if let Some(shadow) = &self.shadow {
                // Crash-injection hook: once the persistence budget runs
                // out, flushes keep "succeeding" from the program's point
                // of view but no longer reach the media — exactly the
                // in-flight state a power failure at that flush leaves.
                if self.persist_budget.fetch_sub(1, Ordering::Relaxed) > 0 {
                    let w0 = line as usize / 8;
                    if let Some(s) = &self.pmsan {
                        // Window undo log: capture the line's pre-flush
                        // persistent content before overwriting it.
                        if s.window_active() {
                            let mut old = [0u64; 8];
                            for (i, o) in old.iter_mut().enumerate() {
                                *o = shadow[w0 + i].load(Ordering::Acquire);
                            }
                            s.window_note(line, old);
                        }
                    }
                    for i in 0..CACHE_LINE / 8 {
                        shadow[w0 + i]
                            .store(self.words[w0 + i].load(Ordering::Acquire), Ordering::Release);
                    }
                }
            }
            if let Some(s) = &self.pmsan {
                s.on_flush_line(thread, line);
            }
            line += CACHE_LINE as u64;
        }
    }

    /// Store fence (sfence-equivalent): orders prior flushes.
    pub fn fence(&self, thread: &mut PmThread) {
        if let Some(s) = &self.pmsan {
            s.on_fence(thread);
        }
        thread.flushed_since_fence = 0;
        self.model.fence(thread);
        self.stats.record_fence();
    }

    /// Fence only if this thread has flushes pending since its last
    /// fence — the explicit-ordering form for code that flushes
    /// conditionally (quiesce, shutdown sweeps) and must not issue
    /// fences that order nothing.
    pub fn fence_pending(&self, thread: &mut PmThread) {
        if thread.flushed_since_fence > 0 {
            self.fence(thread);
        }
    }

    /// Convenience: write an aligned `u64` and flush+fence it (the classic
    /// 8-byte atomic persistent store).
    pub fn persist_u64(&self, thread: &mut PmThread, off: PmOffset, value: u64, kind: FlushKind) {
        self.write_u64(off, value);
        self.charge_store(thread, off, 8);
        self.flush(thread, off, 8, kind);
        self.fence(thread);
    }

    /// Stop persisting after `n` more line-flushes (crash injection at
    /// flush granularity). Later flushes are modelled and counted but no
    /// longer reach the persistent image, as if power failed at that
    /// point; take the image with [`PmemPool::crash`]. Requires crash
    /// tracking.
    pub fn freeze_persistence_after(&self, n: u64) {
        assert!(self.shadow.is_some(), "freeze_persistence_after requires crash tracking");
        self.persist_budget.store(n as i64, Ordering::Relaxed);
    }

    /// Simulate a power failure: returns the persistent image (flushed bytes
    /// only).
    ///
    /// ```
    /// use nvalloc_pmem::{FlushKind, PmemConfig, PmemPool};
    /// let pool = PmemPool::new(PmemConfig::default().pool_size(4096).crash_tracking(true));
    /// let mut t = pool.register_thread();
    /// pool.write_u64(0, 1);           // flushed below: survives
    /// pool.flush(&mut t, 0, 8, FlushKind::Data);
    /// pool.write_u64(64, 2);          // never flushed: lost
    /// let rebooted = PmemPool::from_crash_image(pool.crash());
    /// assert_eq!(rebooted.read_u64(0), 1);
    /// assert_eq!(rebooted.read_u64(64), 0);
    /// ```
    ///
    /// # Panics
    /// Panics unless the pool was built with
    /// [`PmemConfig::crash_tracking`]`(true)`.
    pub fn crash(&self) -> CrashImage {
        let shadow =
            self.shadow.as_ref().expect("crash() requires PmemConfig::crash_tracking(true)");
        let words = shadow.iter().map(|w| w.load(Ordering::Acquire)).collect();
        CrashImage { words, config: self.config.clone() }
    }

    /// Build a pool whose volatile (and, with crash tracking, persistent)
    /// state equals `words` — used when opening heap files.
    pub fn from_words(words: Vec<u64>, config: PmemConfig) -> Arc<Self> {
        let config = config.pool_size(words.len() * 8);
        PmemPool::from_crash_image(CrashImage { words, config })
    }

    /// Copy the full *volatile* state into a crash image — what an orderly
    /// `nvalloc_exit()` leaves behind (everything written back).
    pub fn clean_shutdown_image(&self) -> CrashImage {
        let words = self.words.iter().map(|w| w.load(Ordering::Acquire)).collect();
        CrashImage { words, config: self.config.clone() }
    }

    // ----- pmsan: persist-ordering sanitizer (see `crate::pmsan`) -----

    /// True when the pool carries sanitizer state
    /// ([`PmemConfig::pmsan`]).
    pub fn pmsan_enabled(&self) -> bool {
        self.pmsan.is_some()
    }

    /// Total violations recorded so far (0 when the sanitizer is off).
    pub fn pmsan_total(&self) -> u64 {
        self.pmsan.as_ref().map_or(0, |s| s.report().total())
    }

    /// Snapshot of the violation counters and recorded contexts.
    pub fn pmsan_report(&self) -> Option<PmsanReport> {
        self.pmsan.as_ref().map(|s| s.report())
    }

    /// Per-kind violation counters, indexed like
    /// [`crate::pmsan::PmsanKind::ALL`].
    pub fn pmsan_counts(&self) -> Option<[u64; 4]> {
        self.pmsan.as_ref().map(|s| s.report().counts)
    }

    /// True when every store to the line holding `off` has been flushed
    /// and fenced (trivially true with the sanitizer off).
    pub fn pmsan_line_persisted(&self, off: PmOffset) -> bool {
        self.pmsan.as_ref().is_none_or(|s| s.line_persisted(line_of(off)))
    }

    /// Mark `[off, off+len)` persisted without touching the model. For
    /// states durable by construction only — e.g. a fresh pool's
    /// metadata zero-fill re-stores bytes the zeroed backing file
    /// already holds, so no flush is owed for them.
    pub fn pmsan_mark_persisted(&self, off: PmOffset, len: usize) {
        if let Some(s) = &self.pmsan {
            self.bounds_panic(off, len);
            s.mark_persisted(off, len);
        }
    }

    /// Shutdown audit: record a [`PmsanKind::ShutdownDirty`] violation
    /// for every line in `[off, off+len)` that is still unpersisted.
    /// Returns how many were found (0 when the sanitizer is off).
    pub fn pmsan_audit_range(&self, thread: &PmThread, off: PmOffset, len: usize) -> usize {
        let Some(s) = &self.pmsan else { return 0 };
        if len == 0 {
            return 0;
        }
        self.bounds_panic(off, len);
        let mut dirty = 0;
        let mut line = line_of(off);
        let last = line_of(off + len as u64 - 1);
        while line <= last {
            if !s.line_persisted(line) {
                s.record(thread, PmsanKind::ShutdownDirty, line, None);
                dirty += 1;
            }
            line += CACHE_LINE as u64;
        }
        dirty
    }

    /// Start recording a crash-image enumeration window. Requires the
    /// sanitizer *and* crash tracking (the undo log is relative to the
    /// shadow persistent image).
    ///
    /// # Panics
    /// Panics unless both [`PmemConfig::pmsan`] and
    /// [`PmemConfig::crash_tracking`] are enabled.
    pub fn pmsan_window_begin(&self) {
        assert!(self.shadow.is_some(), "pmsan windows require crash_tracking");
        self.pmsan.as_ref().expect("pmsan windows require PmemConfig::pmsan").window_begin();
    }

    /// Close the window and return its undo log for
    /// [`PmemPool::pmsan_window_images`].
    pub fn pmsan_window_end(&self) -> PmsanWindow {
        self.pmsan.as_ref().expect("pmsan windows require PmemConfig::pmsan").window_end()
    }

    /// Enumerate every distinct legal crash image at each fence inside
    /// `window`, oldest fence last: the persisted image at that fence
    /// plus each subset of the fence's flushed-pending lines (exhaustive
    /// up to [`crate::pmsan::MAX_EXHAUSTIVE_LINES`] pending lines per
    /// fence, the empty/full/each-single-omitted boundary subsets
    /// beyond), de-duplicated, capped at `max_images`.
    pub fn pmsan_window_images(&self, window: &PmsanWindow, max_images: usize) -> Vec<CrashImage> {
        let shadow = self.shadow.as_ref().expect("pmsan_window_images requires crash_tracking");
        let mut cur: Vec<u64> = shadow.iter().map(|w| w.load(Ordering::Acquire)).collect();
        // Roll back the unfenced tail first: those flushes are applied
        // in the shadow but not yet committed by any fence.
        revert_epoch(&mut cur, &window.tail);
        let mut out = Vec::new();
        let mut seen = std::collections::HashSet::new();
        // Walk fences newest→oldest; `cur` is the all-pending-applied
        // image at the fence under inspection.
        for epoch in window.fences.iter().rev() {
            let n = epoch.len();
            if n <= MAX_EXHAUSTIVE_LINES {
                for mask in 0..(1u64 << n) {
                    let mut img = cur.clone();
                    for (i, (line, old)) in epoch.iter().enumerate() {
                        if mask & (1 << i) == 0 {
                            revert_line(&mut img, *line, old);
                        }
                    }
                    push_image(&mut out, &mut seen, img, &self.config, max_images);
                }
            } else {
                // Boundary subsets: all pending persisted, none, and
                // each single line omitted.
                push_image(&mut out, &mut seen, cur.clone(), &self.config, max_images);
                let mut none = cur.clone();
                revert_epoch(&mut none, epoch);
                push_image(&mut out, &mut seen, none, &self.config, max_images);
                for (line, old) in epoch {
                    let mut img = cur.clone();
                    revert_line(&mut img, *line, old);
                    push_image(&mut out, &mut seen, img, &self.config, max_images);
                }
            }
            if out.len() >= max_images {
                break;
            }
            // Unwind this epoch to position `cur` at the previous fence.
            revert_epoch(&mut cur, epoch);
        }
        out
    }
}

/// Overwrite one 64 B line of `words` with its recorded old content.
fn revert_line(words: &mut [u64], line: u64, old: &[u64; 8]) {
    let w0 = line as usize / 8;
    words[w0..w0 + 8].copy_from_slice(old);
}

/// Revert every line of an epoch (first-flush old contents).
fn revert_epoch(words: &mut [u64], epoch: &[(u64, [u64; 8])]) {
    for (line, old) in epoch {
        revert_line(words, *line, old);
    }
}

/// Append `img` as a [`CrashImage`] unless an identical image was
/// already emitted or the cap is reached.
fn push_image(
    out: &mut Vec<CrashImage>,
    seen: &mut std::collections::HashSet<u64>,
    img: Vec<u64>,
    config: &PmemConfig,
    max_images: usize,
) {
    if out.len() >= max_images {
        return;
    }
    // FNV-1a over the words: cheap content identity for de-duplication.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for w in &img {
        h ^= *w;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    if seen.insert(h) {
        out.push(CrashImage { words: img, config: config.clone() });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pool() -> Arc<PmemPool> {
        PmemPool::new(PmemConfig::default().pool_size(1 << 16).latency_mode(LatencyMode::Off))
    }

    #[test]
    fn u64_roundtrip() {
        let p = pool();
        p.write_u64(128, 0x0123_4567_89ab_cdef);
        assert_eq!(p.read_u64(128), 0x0123_4567_89ab_cdef);
    }

    #[test]
    fn subword_roundtrips() {
        let p = pool();
        p.write_u8(3, 0xab);
        p.write_u16(4, 0xbeef);
        p.write_u32(8, 0xdead_beef);
        assert_eq!(p.read_u8(3), 0xab);
        assert_eq!(p.read_u16(4), 0xbeef);
        assert_eq!(p.read_u32(8), 0xdead_beef);
        // Neighbours untouched.
        assert_eq!(p.read_u8(2), 0);
        assert_eq!(p.read_u16(6), 0);
    }

    #[test]
    fn bytes_roundtrip_unaligned() {
        let p = pool();
        let src: Vec<u8> = (0..37).collect();
        p.write_bytes(13, &src);
        let mut dst = vec![0u8; 37];
        p.read_bytes(13, &mut dst);
        assert_eq!(src, dst);
    }

    #[test]
    fn fill_bytes_works() {
        let p = pool();
        p.fill_bytes(5, 100, 0x5a);
        let mut dst = vec![0u8; 102];
        p.read_bytes(4, &mut dst);
        assert_eq!(dst[0], 0);
        assert!(dst[1..101].iter().all(|&b| b == 0x5a));
        assert_eq!(dst[101], 0);
    }

    #[test]
    fn fetch_ops() {
        let p = pool();
        p.write_u64(0, 0b1010);
        assert_eq!(p.fetch_or_u64(0, 0b0101), 0b1010);
        assert_eq!(p.read_u64(0), 0b1111);
        assert_eq!(p.fetch_and_u64(0, 0b0011), 0b1111);
        assert_eq!(p.read_u64(0), 0b0011);
        assert_eq!(p.compare_exchange_u64(0, 0b0011, 7), Ok(0b0011));
        assert_eq!(p.compare_exchange_u64(0, 0b0011, 9), Err(7));
    }

    #[test]
    #[should_panic(expected = "exceeds pool")]
    fn out_of_bounds_read_panics() {
        let p = pool();
        p.read_u64(1 << 16);
    }

    #[test]
    #[should_panic(expected = "unaligned")]
    fn unaligned_u64_panics() {
        let p = pool();
        p.read_u64(4);
    }

    #[test]
    fn flush_spans_lines_and_counts() {
        let p = pool();
        let mut t = p.register_thread();
        p.flush(&mut t, 60, 8, FlushKind::Meta); // crosses a line boundary
        assert_eq!(p.stats().flushes(), 2);
    }

    #[test]
    fn crash_preserves_only_flushed_lines() {
        let p = PmemPool::new(
            PmemConfig::default()
                .pool_size(4096)
                .latency_mode(LatencyMode::Off)
                .crash_tracking(true),
        );
        let mut t = p.register_thread();
        p.write_u64(0, 111);
        p.write_u64(64, 222);
        p.flush(&mut t, 0, 8, FlushKind::Data);
        p.fence(&mut t);
        // Line at 64 never flushed.
        let rebooted = PmemPool::from_crash_image(p.crash());
        assert_eq!(rebooted.read_u64(0), 111);
        assert_eq!(rebooted.read_u64(64), 0, "unflushed line must be lost");
    }

    #[test]
    fn clean_shutdown_image_keeps_everything() {
        let p = PmemPool::new(
            PmemConfig::default()
                .pool_size(4096)
                .latency_mode(LatencyMode::Off)
                .crash_tracking(true),
        );
        p.write_u64(64, 222);
        let rebooted = PmemPool::from_crash_image(p.clean_shutdown_image());
        assert_eq!(rebooted.read_u64(64), 222);
    }

    #[test]
    fn persist_u64_is_atomic_durable() {
        let p = PmemPool::new(
            PmemConfig::default()
                .pool_size(4096)
                .latency_mode(LatencyMode::Off)
                .crash_tracking(true),
        );
        let mut t = p.register_thread();
        p.persist_u64(&mut t, 512, 77, FlushKind::Meta);
        let rebooted = PmemPool::from_crash_image(p.crash());
        assert_eq!(rebooted.read_u64(512), 77);
    }

    #[test]
    fn thread_ids_are_dense() {
        let p = pool();
        assert_eq!(p.register_thread().id(), 0);
        assert_eq!(p.register_thread().id(), 1);
    }

    #[test]
    fn concurrent_disjoint_writes() {
        let p =
            PmemPool::new(PmemConfig::default().pool_size(1 << 20).latency_mode(LatencyMode::Off));
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let p = &p;
                s.spawn(move || {
                    for i in 0..1000u64 {
                        let off = (t * 1000 + i) * 8;
                        p.write_u64(off, t << 32 | i);
                    }
                });
            }
        });
        for t in 0..4u64 {
            for i in 0..1000u64 {
                assert_eq!(p.read_u64((t * 1000 + i) * 8), t << 32 | i);
            }
        }
    }

    #[test]
    fn concurrent_byte_neighbours_no_tearing() {
        // Two threads CAS-write adjacent bytes of the same word.
        let p = PmemPool::new(PmemConfig::default().pool_size(4096).latency_mode(LatencyMode::Off));
        std::thread::scope(|s| {
            for b in 0..8u64 {
                let p = &p;
                s.spawn(move || {
                    for _ in 0..10_000 {
                        p.write_u8(b, b as u8 + 1);
                    }
                });
            }
        });
        for b in 0..8u64 {
            assert_eq!(p.read_u8(b), b as u8 + 1);
        }
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn small_pool() -> Arc<PmemPool> {
        PmemPool::new(
            PmemConfig::default().pool_size(1 << 16).latency_mode(crate::LatencyMode::Off),
        )
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 128, ..ProptestConfig::default() })]

        #[test]
        fn bytes_roundtrip_any_offset(off in 0u64..60_000, data in proptest::collection::vec(any::<u8>(), 1..300)) {
            let p = small_pool();
            let off = off.min((1 << 16) - data.len() as u64);
            p.write_bytes(off, &data);
            let mut back = vec![0u8; data.len()];
            p.read_bytes(off, &mut back);
            prop_assert_eq!(back, data);
        }

        #[test]
        fn subword_writes_do_not_tear_neighbours(
            word in 0u64..8000,
            byte_in_word in 0u64..8,
            val in any::<u8>(),
        ) {
            let p = small_pool();
            let base = word * 8;
            p.write_u64(base, 0xA5A5_A5A5_A5A5_A5A5);
            p.write_u8(base + byte_in_word, val);
            for b in 0..8u64 {
                let expect = if b == byte_in_word { val } else { 0xA5 };
                prop_assert_eq!(p.read_u8(base + b), expect);
            }
        }

        #[test]
        fn fill_then_overwrite_window(
            start in 0u64..30_000,
            len in 1usize..500,
            fill in any::<u8>(),
        ) {
            let p = small_pool();
            p.fill_bytes(start, len, fill);
            let mut back = vec![0u8; len + 2];
            let probe = start.saturating_sub(1);
            p.read_bytes(probe, &mut back[..len.min(100) + 1]);
            // Byte before the window (if any) stays zero.
            if start > 0 {
                prop_assert_eq!(back[0], 0);
            }
        }

        #[test]
        fn crash_image_reflects_flush_set(lines in proptest::collection::btree_set(0u64..64, 1..32)) {
            let p = PmemPool::new(
                PmemConfig::default()
                    .pool_size(64 * 64)
                    .latency_mode(crate::LatencyMode::Off)
                    .crash_tracking(true),
            );
            let mut t = p.register_thread();
            for l in 0..64u64 {
                p.write_u64(l * 64, l + 1);
            }
            for &l in &lines {
                p.flush(&mut t, l * 64, 8, FlushKind::Data);
            }
            let img = PmemPool::from_crash_image(p.crash());
            for l in 0..64u64 {
                let expect = if lines.contains(&l) { l + 1 } else { 0 };
                prop_assert_eq!(img.read_u64(l * 64), expect, "line {}", l);
            }
        }
    }
}

#[cfg(test)]
mod pmsan_tests {
    use super::*;
    use crate::pmsan::PmsanKind;

    fn san_pool() -> Arc<PmemPool> {
        PmemPool::new(
            PmemConfig::default()
                .pool_size(1 << 16)
                .latency_mode(LatencyMode::Off)
                .crash_tracking(true)
                .pmsan(true),
        )
    }

    #[test]
    fn clean_persist_sequence_has_no_violations() {
        let p = san_pool();
        let mut t = p.register_thread();
        for i in 0..16u64 {
            p.persist_u64(&mut t, i * 64, i + 1, FlushKind::Meta);
        }
        assert_eq!(p.pmsan_total(), 0, "{}", p.pmsan_report().unwrap().to_json());
        assert!(p.pmsan_line_persisted(0));
    }

    #[test]
    fn store_over_unfenced_flush_is_flagged() {
        let p = san_pool();
        let mut t = p.register_thread();
        p.write_u64(64, 1);
        p.charge_store(&mut t, 64, 8);
        p.flush(&mut t, 64, 8, FlushKind::Meta);
        // No fence: the dependent store below races the flush to the media.
        p.write_u64(72, 2);
        p.charge_store(&mut t, 72, 8);
        let r = p.pmsan_report().unwrap();
        assert_eq!(r.count(PmsanKind::StoreUnfenced), 1, "{}", r.to_json());
        assert_eq!(r.violations[0].line, 64);
    }

    #[test]
    fn fence_after_flush_clears_pending() {
        let p = san_pool();
        let mut t = p.register_thread();
        p.write_u64(64, 1);
        p.charge_store(&mut t, 64, 8);
        p.flush(&mut t, 64, 8, FlushKind::Meta);
        p.fence(&mut t);
        // Same-line store after the fence is a fresh epoch, not a violation.
        p.write_u64(72, 2);
        p.charge_store(&mut t, 72, 8);
        p.flush(&mut t, 72, 8, FlushKind::Meta);
        p.fence(&mut t);
        assert_eq!(p.pmsan_total(), 0);
    }

    #[test]
    fn empty_fence_is_flagged_and_fence_pending_is_not() {
        let p = san_pool();
        let mut t = p.register_thread();
        p.fence(&mut t);
        assert_eq!(p.pmsan_report().unwrap().count(PmsanKind::EmptyFence), 1);
        // fence_pending with nothing flushed is a no-op, not a violation.
        p.fence_pending(&mut t);
        assert_eq!(p.pmsan_report().unwrap().count(PmsanKind::EmptyFence), 1);
        p.write_u64(0, 9);
        p.charge_store(&mut t, 0, 8);
        p.flush(&mut t, 0, 8, FlushKind::Meta);
        p.fence_pending(&mut t);
        assert_eq!(p.pmsan_total(), 1);
        assert!(p.pmsan_line_persisted(0));
    }

    #[test]
    fn redundant_flush_of_clean_line_is_flagged() {
        let p = san_pool();
        let mut t = p.register_thread();
        p.persist_u64(&mut t, 128, 7, FlushKind::Meta);
        assert_eq!(p.pmsan_total(), 0);
        // Line 128 is persisted; flushing it again orders nothing.
        p.flush(&mut t, 128, 8, FlushKind::Meta);
        p.fence(&mut t);
        let r = p.pmsan_report().unwrap();
        assert_eq!(r.count(PmsanKind::RedundantFlush), 1, "{}", r.to_json());
    }

    #[test]
    fn cross_thread_same_line_flushes_are_benign() {
        let p = san_pool();
        let mut t1 = p.register_thread();
        let mut t2 = p.register_thread();
        // Both threads store+flush disjoint words of one line; each fences
        // its own flush. Neither owns the other's pending entry.
        p.write_u64(64, 1);
        p.charge_store(&mut t1, 64, 8);
        p.flush(&mut t1, 64, 8, FlushKind::Meta);
        p.write_u64(72, 2);
        p.charge_store(&mut t2, 72, 8);
        p.flush(&mut t2, 72, 8, FlushKind::Meta);
        p.fence(&mut t1);
        p.fence(&mut t2);
        assert_eq!(p.pmsan_total(), 0, "{}", p.pmsan_report().unwrap().to_json());
    }

    #[test]
    fn shutdown_audit_counts_unpersisted_lines() {
        let p = san_pool();
        let mut t = p.register_thread();
        p.persist_u64(&mut t, 0, 1, FlushKind::Meta);
        p.write_u64(64, 2); // dirty, never flushed
        p.write_u64(128, 3);
        p.charge_store(&mut t, 128, 8);
        p.flush(&mut t, 128, 8, FlushKind::Meta); // flushed, never fenced
        let dirty = p.pmsan_audit_range(&t, 0, 3 * 64);
        assert_eq!(dirty, 2);
        let r = p.pmsan_report().unwrap();
        assert_eq!(r.count(PmsanKind::ShutdownDirty), 2);
    }

    #[test]
    fn mark_persisted_silences_audit() {
        let p = san_pool();
        let t = p.register_thread();
        p.fill_bytes(0, 256, 0);
        p.pmsan_mark_persisted(0, 256);
        assert_eq!(p.pmsan_audit_range(&t, 0, 256), 0);
    }

    #[test]
    fn window_enumerates_per_fence_subsets() {
        let p = san_pool();
        let mut t = p.register_thread();
        // Committed baseline.
        p.persist_u64(&mut t, 0, 0xaa, FlushKind::Meta);
        p.pmsan_window_begin();
        // Fence 1: two pending lines -> 4 subsets.
        p.write_u64(64, 1);
        p.charge_store(&mut t, 64, 8);
        p.write_u64(128, 2);
        p.charge_store(&mut t, 128, 8);
        p.flush(&mut t, 64, 8, FlushKind::Meta);
        p.flush(&mut t, 128, 8, FlushKind::Meta);
        p.fence(&mut t);
        // Fence 2: one pending line -> 2 subsets.
        p.write_u64(192, 3);
        p.charge_store(&mut t, 192, 8);
        p.flush(&mut t, 192, 8, FlushKind::Meta);
        p.fence(&mut t);
        let w = p.pmsan_window_end();
        assert_eq!(w.fence_count(), 2);
        assert!(!w.truncated());
        let images = p.pmsan_window_images(&w, 64);
        // Distinct images: at fence 2 {192 in, 192 out}; at fence 1 the four
        // subsets of {64,128} with 192 rolled back — "all out" at fence 2
        // equals "all in" at fence 1, so 2 + 4 - 1 = 5 distinct.
        assert_eq!(images.len(), 5);
        for img in images {
            let ip = PmemPool::from_crash_image(img);
            // The pre-window committed line survives in every image.
            assert_eq!(ip.read_u64(0), 0xaa);
            // Causality: line 192 persisted implies fence 1 completed.
            if ip.read_u64(192) == 3 {
                assert_eq!(ip.read_u64(64), 1);
                assert_eq!(ip.read_u64(128), 2);
            }
        }
    }

    #[test]
    fn window_tail_flushes_are_not_committed() {
        let p = san_pool();
        let mut t = p.register_thread();
        p.pmsan_window_begin();
        p.write_u64(64, 1);
        p.charge_store(&mut t, 64, 8);
        p.flush(&mut t, 64, 8, FlushKind::Meta);
        p.fence(&mut t);
        // Flushed after the last fence: must not appear in any image.
        p.write_u64(128, 2);
        p.charge_store(&mut t, 128, 8);
        p.flush(&mut t, 128, 8, FlushKind::Meta);
        let w = p.pmsan_window_end();
        let images = p.pmsan_window_images(&w, 16);
        assert_eq!(images.len(), 2);
        for img in images {
            let ip = PmemPool::from_crash_image(img);
            assert_eq!(ip.read_u64(128), 0, "tail flush leaked into an image");
        }
    }

    #[test]
    fn pmsan_off_accessors_are_inert() {
        let p = PmemPool::new(PmemConfig::default().pool_size(4096).latency_mode(LatencyMode::Off));
        let mut t = p.register_thread();
        p.write_u64(0, 1);
        p.fence(&mut t);
        assert!(!p.pmsan_enabled());
        assert_eq!(p.pmsan_total(), 0);
        assert!(p.pmsan_report().is_none());
        assert!(p.pmsan_line_persisted(0));
        assert_eq!(p.pmsan_audit_range(&t, 0, 4096), 0);
    }
}
