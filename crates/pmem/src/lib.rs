//! Software-emulated persistent memory (PM) with a cache-line flush cost model.
//!
//! This crate is the substrate beneath the `nvalloc` allocator and all the
//! baseline allocators in this workspace. Real Intel Optane DC persistent
//! memory is not available in this environment, so the substrate reproduces
//! the *behavioural* properties of PM that the NVAlloc paper (ASPLOS'22)
//! measures:
//!
//! * **Cache-line flushes** (`clwb` + fence) are explicit, counted, and
//!   charged with a latency model.
//! * **Cache line reflushes** — flushing the same 64 B line again within a
//!   reflush distance < 4 — are detected and charged 800→500 ns
//!   (distance 0→3), exactly the figures reported in §3.1 of the paper.
//! * **Sequential vs. random writes** are classified per thread and charged
//!   asymmetrically (sequential is ~2.3× cheaper), reproducing the §3.3
//!   observation that small random metadata writes are expensive.
//! * **XPBuffer pressure**: Optane's internal write-combining buffer works on
//!   256 B "XPLines"; a small global LRU models it, so flushing many distinct
//!   lines concurrently gets more expensive (the effect behind Fig. 16a).
//! * **eADR mode** makes flushes free but charges media writes through a
//!   write-combining buffer (the paper's own §6.7 emulation strategy).
//! * **Crash semantics**: optionally, only bytes that were *flushed* survive
//!   [`PmemPool::crash`], which is what crash-injection tests build on.
//!
//! Latency is accrued on per-thread **virtual clocks**
//! ([`PmThread::virtual_ns`]) by default, which makes every benchmark
//! deterministic; a spin mode injects the delays into wall-clock time
//! instead.
//!
//! # Example
//!
//! ```
//! use nvalloc_pmem::{PmemPool, PmemConfig, FlushKind};
//!
//! let pool = PmemPool::new(PmemConfig::default().pool_size(1 << 20));
//! let mut t = pool.register_thread();
//! pool.write_u64(64, 0xdead_beef);
//! pool.flush(&mut t, 64, 8, FlushKind::Data);
//! pool.fence(&mut t);
//! assert_eq!(pool.read_u64(64), 0xdead_beef);
//! assert_eq!(pool.stats().flushes(), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod error;
mod file;
mod layout;
mod model;
pub mod pmsan;
mod pool;
mod stats;
mod thread;
mod trace;

pub use error::{PmError, PmResult};
pub use layout::{CACHE_LINE, XPLINE};
pub use model::{LatencyModel, ModelParams};
pub use pmsan::{
    PmsanKind, PmsanReport, PmsanViolation, PmsanWindow, MAX_EXHAUSTIVE_LINES, PMSAN_TRACE_CODE,
};
pub use pool::{CrashImage, PmOffset, PmemConfig, PmemPool};
pub use stats::{FlushKind, FlushRecord, PmemStats, StatsSnapshot};
pub use thread::{ClockSpan, PmThread};
pub use trace::{TraceEvent, TraceRing, TracerHandle};

/// How flush/write latencies are applied to the caller.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LatencyMode {
    /// Accrue modelled nanoseconds on the per-thread virtual clock
    /// ([`PmThread::virtual_ns`]). Deterministic; the default.
    #[default]
    Virtual,
    /// Busy-wait for the modelled duration so latencies appear in wall-clock
    /// measurements as well as on the virtual clock.
    Spin,
    /// `std::thread::sleep` the modelled duration off (batched into small
    /// quanta to amortise timer overhead). Unlike [`LatencyMode::Spin`],
    /// sleeping yields the CPU, so concurrent threads' PM stalls overlap
    /// in wall-clock time the way they do on real parallel hardware —
    /// even on a single-core host. Latency charged while a lock is held
    /// still serialises waiters. Used by the wall-clock scalability
    /// benchmark (Fig. 22).
    Sleep,
    /// Count events but charge no latency. Fastest; used by unit tests that
    /// only care about functional behaviour.
    Off,
}

/// Whether the platform flushes CPU caches on power failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PmemMode {
    /// ADR: the CPU cache is *not* in the persistence domain; `clwb`-style
    /// flushes are required and charged.
    #[default]
    Adr,
    /// eADR: caches are flushed by the platform on power failure. Explicit
    /// flushes become free; stores are charged through a write-combining
    /// buffer model when they eventually reach the media.
    Eadr,
}
