//! Event counters and the flush-address trace.
//!
//! Everything the paper's motivation and evaluation sections *measure* about
//! PM traffic is collected here: flush / reflush counts (Fig. 1a), the
//! sequential-vs-random classification (§3.3), per-category flush time for
//! the Fig. 11 breakdowns, and a bounded trace of flush addresses that
//! regenerates the Fig. 2 scatter plots.

use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::Mutex;

/// What kind of state a flush persists. Used to attribute flush time in the
/// Fig. 11 execution-time breakdown and to separate *allocator-induced*
/// traffic (everything except [`FlushKind::Data`]) from application traffic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FlushKind {
    /// Slab headers, bitmaps, extent headers — heap metadata proper.
    Meta,
    /// Write-ahead-log entries.
    Wal,
    /// Persistent bookkeeping-log entries (NVAlloc §5.3).
    BookLog,
    /// Application data (payload writes by the benchmark itself).
    Data,
}

impl FlushKind {
    /// All kinds, in a stable order (indexing into per-kind counters).
    pub const ALL: [FlushKind; 4] =
        [FlushKind::Meta, FlushKind::Wal, FlushKind::BookLog, FlushKind::Data];

    #[inline]
    pub(crate) fn index(self) -> usize {
        match self {
            FlushKind::Meta => 0,
            FlushKind::Wal => 1,
            FlushKind::BookLog => 2,
            FlushKind::Data => 3,
        }
    }

    /// Short label used by the benchmark reporters.
    pub fn label(self) -> &'static str {
        match self {
            FlushKind::Meta => "meta",
            FlushKind::Wal => "wal",
            FlushKind::BookLog => "booklog",
            FlushKind::Data => "data",
        }
    }
}

/// One recorded flush, kept in the bounded trace for Fig. 2 reproduction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlushRecord {
    /// Global flush sequence number at the time of the flush.
    pub seq: u64,
    /// Byte offset of the flushed line inside the pool.
    pub addr: u64,
    /// Attribution of the flush.
    pub kind: FlushKind,
}

const KINDS: usize = 4;

/// Atomic event counters for one [`crate::PmemPool`].
///
/// All counters are monotone; read a consistent-enough view with
/// [`PmemStats::snapshot`] or reset between benchmark phases with
/// [`PmemStats::reset`].
#[derive(Debug)]
pub struct PmemStats {
    flushes: AtomicU64,
    reflushes: AtomicU64,
    fences: AtomicU64,
    seq_writes: AtomicU64,
    rand_writes: AtomicU64,
    bytes_flushed: AtomicU64,
    xpbuf_misses: AtomicU64,
    kind_flushes: [AtomicU64; KINDS],
    kind_reflushes: [AtomicU64; KINDS],
    kind_ns: [AtomicU64; KINDS],
    /// Bounded flush-address trace (first `capacity` flushes after a reset).
    trace: Mutex<Vec<FlushRecord>>,
    trace_capacity: usize,
    trace_enabled: AtomicU64,
}

impl PmemStats {
    pub(crate) fn new(trace_capacity: usize) -> Self {
        PmemStats {
            flushes: AtomicU64::new(0),
            reflushes: AtomicU64::new(0),
            fences: AtomicU64::new(0),
            seq_writes: AtomicU64::new(0),
            rand_writes: AtomicU64::new(0),
            bytes_flushed: AtomicU64::new(0),
            xpbuf_misses: AtomicU64::new(0),
            kind_flushes: Default::default(),
            kind_reflushes: Default::default(),
            kind_ns: Default::default(),
            trace: Mutex::new(Vec::new()),
            trace_capacity,
            trace_enabled: AtomicU64::new(0),
        }
    }

    #[allow(clippy::too_many_arguments)]
    pub(crate) fn record_flush(
        &self,
        seq: u64,
        addr: u64,
        kind: FlushKind,
        is_reflush: bool,
        is_sequential: bool,
        xpbuf_miss: bool,
        cost_ns: u64,
        bytes: u64,
    ) {
        self.flushes.fetch_add(1, Ordering::Relaxed);
        if is_reflush {
            self.reflushes.fetch_add(1, Ordering::Relaxed);
        }
        if is_sequential {
            self.seq_writes.fetch_add(1, Ordering::Relaxed);
        } else {
            self.rand_writes.fetch_add(1, Ordering::Relaxed);
        }
        if xpbuf_miss {
            self.xpbuf_misses.fetch_add(1, Ordering::Relaxed);
        }
        self.bytes_flushed.fetch_add(bytes, Ordering::Relaxed);
        self.kind_flushes[kind.index()].fetch_add(1, Ordering::Relaxed);
        if is_reflush {
            self.kind_reflushes[kind.index()].fetch_add(1, Ordering::Relaxed);
        }
        self.kind_ns[kind.index()].fetch_add(cost_ns, Ordering::Relaxed);
        if self.trace_enabled.load(Ordering::Relaxed) != 0 {
            let mut trace = self.trace.lock();
            if trace.len() < self.trace_capacity {
                trace.push(FlushRecord { seq, addr, kind });
            }
        }
    }

    pub(crate) fn record_fence(&self) {
        self.fences.fetch_add(1, Ordering::Relaxed);
    }

    /// Total number of flush operations.
    pub fn flushes(&self) -> u64 {
        self.flushes.load(Ordering::Relaxed)
    }

    /// Number of flushes classified as *reflushes* (same cache line flushed
    /// again at reflush distance < 4 — §3.1 of the paper).
    pub fn reflushes(&self) -> u64 {
        self.reflushes.load(Ordering::Relaxed)
    }

    /// Number of fences.
    pub fn fences(&self) -> u64 {
        self.fences.load(Ordering::Relaxed)
    }

    /// Enable the flush-address trace (records the next
    /// `trace_capacity` flushes).
    pub fn enable_trace(&self) {
        self.trace_enabled.store(1, Ordering::Relaxed);
    }

    /// Disable and clear the flush-address trace.
    pub fn disable_trace(&self) {
        self.trace_enabled.store(0, Ordering::Relaxed);
        self.trace.lock().clear();
    }

    /// A copy of the recorded flush trace.
    pub fn trace(&self) -> Vec<FlushRecord> {
        self.trace.lock().clone()
    }

    /// Zero all counters and the trace. Virtual clocks of registered threads
    /// are *not* affected.
    pub fn reset(&self) {
        self.flushes.store(0, Ordering::Relaxed);
        self.reflushes.store(0, Ordering::Relaxed);
        self.fences.store(0, Ordering::Relaxed);
        self.seq_writes.store(0, Ordering::Relaxed);
        self.rand_writes.store(0, Ordering::Relaxed);
        self.bytes_flushed.store(0, Ordering::Relaxed);
        self.xpbuf_misses.store(0, Ordering::Relaxed);
        for c in &self.kind_flushes {
            c.store(0, Ordering::Relaxed);
        }
        for c in &self.kind_reflushes {
            c.store(0, Ordering::Relaxed);
        }
        for c in &self.kind_ns {
            c.store(0, Ordering::Relaxed);
        }
        self.trace.lock().clear();
    }

    /// A point-in-time copy of every counter.
    pub fn snapshot(&self) -> StatsSnapshot {
        let mut kind_flushes = [0u64; KINDS];
        let mut kind_reflushes = [0u64; KINDS];
        let mut kind_ns = [0u64; KINDS];
        for i in 0..KINDS {
            kind_flushes[i] = self.kind_flushes[i].load(Ordering::Relaxed);
            kind_reflushes[i] = self.kind_reflushes[i].load(Ordering::Relaxed);
            kind_ns[i] = self.kind_ns[i].load(Ordering::Relaxed);
        }
        StatsSnapshot {
            flushes: self.flushes.load(Ordering::Relaxed),
            reflushes: self.reflushes.load(Ordering::Relaxed),
            fences: self.fences.load(Ordering::Relaxed),
            seq_writes: self.seq_writes.load(Ordering::Relaxed),
            rand_writes: self.rand_writes.load(Ordering::Relaxed),
            bytes_flushed: self.bytes_flushed.load(Ordering::Relaxed),
            xpbuf_misses: self.xpbuf_misses.load(Ordering::Relaxed),
            kind_flushes,
            kind_reflushes,
            kind_ns,
        }
    }
}

/// A point-in-time copy of [`PmemStats`], cheap to diff between phases.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// Total flush operations.
    pub flushes: u64,
    /// Flushes classified as reflushes (distance < 4).
    pub reflushes: u64,
    /// Fence operations.
    pub fences: u64,
    /// Flushes classified as sequential.
    pub seq_writes: u64,
    /// Flushes classified as random.
    pub rand_writes: u64,
    /// Total bytes flushed.
    pub bytes_flushed: u64,
    /// Flushes that missed the modelled XPBuffer.
    pub xpbuf_misses: u64,
    /// Flush counts indexed in [`FlushKind::ALL`] order.
    pub kind_flushes: [u64; 4],
    /// Reflush counts indexed in [`FlushKind::ALL`] order.
    pub kind_reflushes: [u64; 4],
    /// Modelled nanoseconds indexed in [`FlushKind::ALL`] order.
    pub kind_ns: [u64; 4],
}

impl StatsSnapshot {
    /// Counter-wise difference `self - earlier` (for phase measurements).
    ///
    /// Each field is computed with saturating subtraction: if `earlier` was
    /// taken after `self` (or after a pool reset zeroed the live counters),
    /// the affected fields clamp to zero instead of panicking on underflow.
    pub fn since(&self, earlier: &StatsSnapshot) -> StatsSnapshot {
        let mut kind_flushes = [0u64; KINDS];
        let mut kind_reflushes = [0u64; KINDS];
        let mut kind_ns = [0u64; KINDS];
        for i in 0..KINDS {
            kind_flushes[i] = self.kind_flushes[i].saturating_sub(earlier.kind_flushes[i]);
            kind_reflushes[i] = self.kind_reflushes[i].saturating_sub(earlier.kind_reflushes[i]);
            kind_ns[i] = self.kind_ns[i].saturating_sub(earlier.kind_ns[i]);
        }
        StatsSnapshot {
            flushes: self.flushes.saturating_sub(earlier.flushes),
            reflushes: self.reflushes.saturating_sub(earlier.reflushes),
            fences: self.fences.saturating_sub(earlier.fences),
            seq_writes: self.seq_writes.saturating_sub(earlier.seq_writes),
            rand_writes: self.rand_writes.saturating_sub(earlier.rand_writes),
            bytes_flushed: self.bytes_flushed.saturating_sub(earlier.bytes_flushed),
            xpbuf_misses: self.xpbuf_misses.saturating_sub(earlier.xpbuf_misses),
            kind_flushes,
            kind_reflushes,
            kind_ns,
        }
    }

    /// Flush count for one attribution kind.
    pub fn flushes_of(&self, kind: FlushKind) -> u64 {
        self.kind_flushes[kind.index()]
    }

    /// Modelled flush nanoseconds for one attribution kind.
    pub fn ns_of(&self, kind: FlushKind) -> u64 {
        self.kind_ns[kind.index()]
    }

    /// Allocator-induced flushes: everything except [`FlushKind::Data`].
    pub fn allocator_flushes(&self) -> u64 {
        self.flushes - self.flushes_of(FlushKind::Data)
    }

    /// Reflush count for one attribution kind.
    pub fn reflushes_of(&self, kind: FlushKind) -> u64 {
        self.kind_reflushes[kind.index()]
    }

    /// Fraction of flushes that were reflushes, in percent.
    pub fn reflush_pct(&self) -> f64 {
        if self.flushes == 0 {
            0.0
        } else {
            100.0 * self.reflushes as f64 / self.flushes as f64
        }
    }

    /// Reflush share of *allocator-induced* flushes (Meta + WAL +
    /// bookkeeping log; application `Data` traffic excluded) — the §3.1
    /// metric of Fig. 1(a).
    pub fn allocator_reflush_pct(&self) -> f64 {
        let kinds = [FlushKind::Meta, FlushKind::Wal, FlushKind::BookLog];
        let flushes: u64 = kinds.iter().map(|k| self.flushes_of(*k)).sum();
        let reflushes: u64 = kinds.iter().map(|k| self.reflushes_of(*k)).sum();
        if flushes == 0 {
            0.0
        } else {
            100.0 * reflushes as f64 / flushes as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_diff() {
        let s = PmemStats::new(16);
        s.record_flush(0, 0, FlushKind::Meta, false, true, false, 100, 64);
        let a = s.snapshot();
        s.record_flush(1, 64, FlushKind::Wal, true, false, true, 700, 64);
        let b = s.snapshot();
        let d = b.since(&a);
        assert_eq!(d.flushes, 1);
        assert_eq!(d.reflushes, 1);
        assert_eq!(d.rand_writes, 1);
        assert_eq!(d.xpbuf_misses, 1);
        assert_eq!(d.flushes_of(FlushKind::Wal), 1);
        assert_eq!(d.ns_of(FlushKind::Wal), 700);
        assert_eq!(d.flushes_of(FlushKind::Meta), 0);
    }

    #[test]
    fn snapshot_diff_saturates_on_reversed_order() {
        let s = PmemStats::new(16);
        s.record_flush(0, 0, FlushKind::Meta, false, true, false, 100, 64);
        let later = s.snapshot();
        s.record_flush(1, 64, FlushKind::Wal, true, false, true, 700, 64);
        let even_later = s.snapshot();
        // Diffing the wrong way round clamps to zero rather than underflowing.
        let d = later.since(&even_later);
        assert_eq!(d, StatsSnapshot::default());
    }

    #[test]
    fn trace_bounded_and_gated() {
        let s = PmemStats::new(2);
        // Disabled: nothing recorded.
        s.record_flush(0, 0, FlushKind::Data, false, true, false, 0, 64);
        assert!(s.trace().is_empty());
        s.enable_trace();
        for i in 0..5 {
            s.record_flush(i, i * 64, FlushKind::Data, false, true, false, 0, 64);
        }
        assert_eq!(s.trace().len(), 2);
        s.disable_trace();
        assert!(s.trace().is_empty());
    }

    #[test]
    fn reflush_pct() {
        let s = PmemStats::new(0);
        for i in 0..4 {
            s.record_flush(i, 0, FlushKind::Meta, i % 2 == 0, true, false, 0, 64);
        }
        assert_eq!(s.snapshot().reflush_pct(), 50.0);
    }
}
