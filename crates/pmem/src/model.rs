//! The latency model: reflush detection, sequential/random classification,
//! and the XPBuffer / write-combining working-set models.
//!
//! All constants are taken from the paper or the measurement studies it
//! cites (Yang et al., FAST'20; Chen et al., ASPLOS'20 "FlatStore"):
//!
//! * reflush at distance 0..=3 costs 800/700/600/500 ns (§3.1: "the latency
//!   of cache line reflushes is decreased from 800 ns to 500 ns when reflush
//!   distance is increased from 0 to 3");
//! * a regular random flush costs ~250 ns and a sequential flush ~110 ns
//!   (§3.1: reflush latency is "3x and 7x higher than random and sequential
//!   writes");
//! * Optane's internal write-combining buffer (XPBuffer) holds a small
//!   working set of 256 B XPLines; flushes that fall outside it pay an extra
//!   media write-amplification penalty — the effect that makes *too many*
//!   bit stripes slow (Fig. 16a).

use parking_lot::Mutex;

use crate::layout::{line_of, xpline_of};
use crate::thread::PmThread;
use crate::{LatencyMode, PmemMode};

/// Tunable constants of the latency model. The defaults reproduce the
/// paper's numbers; tests and sensitivity benches may override them.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelParams {
    /// Cost in ns of a reflush at distance `d` (index 0..=3).
    pub reflush_ns: [u64; 4],
    /// Reflush distance threshold: a flush of a line last flushed fewer than
    /// this many flushes ago counts as a reflush.
    pub reflush_window: u64,
    /// Cost in ns of a regular flush classified as random.
    pub random_flush_ns: u64,
    /// Cost in ns of a regular flush classified as sequential.
    pub seq_flush_ns: u64,
    /// Extra ns charged when the flushed XPLine suffers a *capacity* miss:
    /// it was flushed recently (within `xpbuf_history`) but has already
    /// been evicted from the XPBuffer — the write-combining opportunity was
    /// lost and the 256 B line is written to media again. Cold first-touch
    /// misses carry no extra charge (their media write is part of the base
    /// flush cost).
    pub xpbuf_miss_ns: u64,
    /// Number of 256 B XPLines the XPBuffer holds. The hardware buffer is
    /// 16 KB per DIMM but is shared by every concurrent access stream
    /// (prefetches, reads, neighbouring threads); the default models the
    /// effective share available to one allocation stream.
    pub xpbuf_lines: usize,
    /// Window (in line-flushes) within which a re-flushed-but-evicted
    /// XPLine counts as a capacity miss.
    pub xpbuf_history: u64,
    /// Cost in ns of a fence.
    pub fence_ns: u64,
    /// Distance (bytes) within which a flush after the previous one from the
    /// same thread still counts as sequential.
    pub seq_threshold: u64,
    /// eADR: ns charged when a *store* misses the write-combining buffer.
    pub eadr_store_miss_ns: u64,
    /// eADR: number of cache lines the write-combining buffer holds.
    pub eadr_wc_lines: usize,
}

impl Default for ModelParams {
    fn default() -> Self {
        ModelParams {
            reflush_ns: [800, 700, 600, 500],
            reflush_window: 4,
            random_flush_ns: 250,
            seq_flush_ns: 110,
            xpbuf_miss_ns: 100,
            xpbuf_lines: 8,
            xpbuf_history: 128,
            fence_ns: 30,
            seq_threshold: 4096,
            eadr_store_miss_ns: 90,
            eadr_wc_lines: 256,
        }
    }
}

/// Direct-mapped cache of `line -> last flush sequence number` used for
/// reflush-distance detection. Collisions evict, which can only *miss* a
/// reflush (conservative), never invent one.
#[derive(Debug)]
struct ReflushCache {
    tags: Vec<u64>, // line index + 1; 0 = empty
    seqs: Vec<u64>,
    mask: usize,
}

impl ReflushCache {
    fn new(entries: usize) -> Self {
        let entries = entries.next_power_of_two();
        ReflushCache { tags: vec![0; entries], seqs: vec![0; entries], mask: entries - 1 }
    }

    /// Record a flush of `line` at `seq`; returns the previous sequence
    /// number for the same line, if it is still cached.
    fn touch(&mut self, line: u64, seq: u64) -> Option<u64> {
        let idx = (line as usize).wrapping_mul(0x9E37_79B9_7F4A_7C15_usize) >> 13 & self.mask;
        let tag = line + 1;
        let prev = if self.tags[idx] == tag { Some(self.seqs[idx]) } else { None };
        self.tags[idx] = tag;
        self.seqs[idx] = seq;
        prev
    }
}

/// A tiny set with LRU replacement, modelling a hardware buffer of
/// `capacity` entries. Linear scan — capacities are small (≤ 256).
#[derive(Debug)]
struct LruSet {
    entries: Vec<(u64, u64)>, // (key, last-use stamp)
    capacity: usize,
    stamp: u64,
}

impl LruSet {
    fn new(capacity: usize) -> Self {
        LruSet { entries: Vec::with_capacity(capacity), capacity, stamp: 0 }
    }

    /// Touch `key`; returns `true` on hit, `false` on miss (inserting it,
    /// evicting the least recently used entry if full).
    fn touch(&mut self, key: u64) -> bool {
        self.stamp += 1;
        if let Some(e) = self.entries.iter_mut().find(|e| e.0 == key) {
            e.1 = self.stamp;
            return true;
        }
        if self.entries.len() < self.capacity {
            self.entries.push((key, self.stamp));
        } else if let Some(victim) = self.entries.iter_mut().min_by_key(|e| e.1) {
            *victim = (key, self.stamp);
        }
        false
    }
}

#[derive(Debug)]
struct ModelCore {
    reflush: ReflushCache,
    xpbuf: LruSet,
    /// XPLine → last flush seq, for separating capacity misses from cold
    /// misses.
    xp_recent: ReflushCache,
    eadr_wc: LruSet,
    seq: u64,
}

/// Outcome of modelling one flush.
#[derive(Debug, Clone, Copy)]
pub(crate) struct FlushOutcome {
    pub seq: u64,
    pub cost_ns: u64,
    pub is_reflush: bool,
    pub is_sequential: bool,
    pub xpbuf_miss: bool,
}

/// The shared latency model for one pool.
///
/// A single short critical section per flush models the fact that the real
/// DIMM's buffers are themselves a shared, contended resource.
#[derive(Debug)]
pub struct LatencyModel {
    params: ModelParams,
    mode: LatencyMode,
    pmem_mode: PmemMode,
    core: Mutex<ModelCore>,
}

impl LatencyModel {
    pub(crate) fn new(params: ModelParams, mode: LatencyMode, pmem_mode: PmemMode) -> Self {
        let core = ModelCore {
            reflush: ReflushCache::new(1 << 20),
            xpbuf: LruSet::new(params.xpbuf_lines),
            xp_recent: ReflushCache::new(1 << 18),
            eadr_wc: LruSet::new(params.eadr_wc_lines),
            seq: 0,
        };
        LatencyModel { params, mode, pmem_mode, core: Mutex::new(core) }
    }

    /// The model parameters in force.
    pub fn params(&self) -> &ModelParams {
        &self.params
    }

    /// Latency application mode.
    pub fn mode(&self) -> LatencyMode {
        self.mode
    }

    /// ADR or eADR.
    pub fn pmem_mode(&self) -> PmemMode {
        self.pmem_mode
    }

    /// Model one cache-line flush at byte offset `addr`.
    pub(crate) fn flush_line(&self, thread: &mut PmThread, addr: u64) -> FlushOutcome {
        let line = line_of(addr);
        // Per-thread sequential/random classification: a flush within
        // `seq_threshold` bytes of the previous flush from this thread is
        // sequential (log appends, bitmap walks — the device's write
        // combining covers short backward hops too).
        let last = thread.last_flush_addr();
        let is_sequential = match last {
            Some(prev) => addr.abs_diff(prev) <= self.params.seq_threshold,
            None => false,
        };
        thread.set_last_flush_addr(addr);

        if self.pmem_mode == PmemMode::Eadr {
            // eADR: explicit flushes are free; the store already paid.
            let mut core = self.core.lock();
            core.seq += 1;
            let seq = core.seq;
            return FlushOutcome {
                seq,
                cost_ns: 0,
                is_reflush: false,
                is_sequential,
                xpbuf_miss: false,
            };
        }

        let (seq, reflush_distance, xpbuf_miss) = {
            let mut core = self.core.lock();
            core.seq += 1;
            let seq = core.seq;
            let prev = core.reflush.touch(line, seq);
            let distance = prev.map(|p| seq - p - 1);
            let xp = xpline_of(addr);
            let in_buffer = core.xpbuf.touch(xp);
            let last_seen = core.xp_recent.touch(xp, seq);
            // Capacity miss: seen recently, but the buffer already evicted
            // it (lost write combining). Cold misses are free beyond the
            // base media cost.
            let miss =
                !in_buffer && last_seen.is_some_and(|p| seq - p <= self.params.xpbuf_history);
            (seq, distance, miss)
        };

        let is_reflush = matches!(reflush_distance, Some(d) if d < self.params.reflush_window);
        let mut cost = if let Some(d) = reflush_distance.filter(|&d| d < self.params.reflush_window)
        {
            self.params.reflush_ns[(d as usize).min(self.params.reflush_ns.len() - 1)]
        } else if is_sequential {
            self.params.seq_flush_ns
        } else {
            self.params.random_flush_ns
        };
        if xpbuf_miss {
            cost += self.params.xpbuf_miss_ns;
        }
        let charged = self.charge(thread, cost);
        FlushOutcome { seq, cost_ns: charged, is_reflush, is_sequential, xpbuf_miss }
    }

    /// Model a fence.
    pub(crate) fn fence(&self, thread: &mut PmThread) -> u64 {
        self.charge(thread, self.params.fence_ns)
    }

    /// Model a store of `len` bytes at `addr`. Only charged in eADR mode,
    /// where stores reaching the media through the write-combining buffer
    /// are the persistence cost.
    pub(crate) fn store(&self, thread: &mut PmThread, addr: u64, len: usize) -> u64 {
        if self.pmem_mode != PmemMode::Eadr || self.mode == LatencyMode::Off {
            return 0;
        }
        let first = line_of(addr);
        let last = line_of(addr + len.max(1) as u64 - 1);
        let mut cost = 0;
        {
            let mut core = self.core.lock();
            let mut l = first;
            while l <= last {
                if !core.eadr_wc.touch(l) {
                    cost += self.params.eadr_store_miss_ns;
                }
                l += crate::layout::CACHE_LINE as u64;
            }
        }
        self.charge(thread, cost)
    }

    fn charge(&self, thread: &mut PmThread, ns: u64) -> u64 {
        match self.mode {
            LatencyMode::Off => 0,
            LatencyMode::Virtual => {
                thread.accrue_ns(ns);
                ns
            }
            LatencyMode::Spin => {
                thread.accrue_ns(ns);
                spin_for(ns);
                ns
            }
            LatencyMode::Sleep => {
                thread.accrue_ns(ns);
                if let Some(due) = thread.add_sleep_debt(ns, SLEEP_QUANTUM_NS) {
                    std::thread::sleep(std::time::Duration::from_nanos(due));
                }
                ns
            }
        }
    }
}

/// Sleep-mode debt quantum: modelled nanoseconds are slept off in batches
/// of at least this much, amortising per-sleep timer overhead (Linux timer
/// slack alone is ~50 µs) while keeping sleeps frequent enough that they
/// land near the operations that charged them.
const SLEEP_QUANTUM_NS: u64 = 2_000;

fn spin_for(ns: u64) {
    if ns == 0 {
        return;
    }
    let start = std::time::Instant::now();
    while (start.elapsed().as_nanos() as u64) < ns {
        std::hint::spin_loop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model(mode: LatencyMode, pmem: PmemMode) -> LatencyModel {
        LatencyModel::new(ModelParams::default(), mode, pmem)
    }

    fn thread() -> PmThread {
        PmThread::new(0)
    }

    #[test]
    fn back_to_back_flush_is_reflush_at_distance_zero() {
        let m = model(LatencyMode::Virtual, PmemMode::Adr);
        let mut t = thread();
        m.flush_line(&mut t, 0);
        let o = m.flush_line(&mut t, 0);
        assert!(o.is_reflush);
        assert_eq!(o.cost_ns, 800 + if o.xpbuf_miss { m.params().xpbuf_miss_ns } else { 0 });
    }

    #[test]
    fn reflush_cost_decreases_with_distance() {
        // A, B, A -> distance 1 -> 700 ns.
        let m = model(LatencyMode::Virtual, PmemMode::Adr);
        let mut t = thread();
        m.flush_line(&mut t, 0);
        m.flush_line(&mut t, 64);
        let o = m.flush_line(&mut t, 0);
        assert!(o.is_reflush);
        assert_eq!(o.cost_ns - if o.xpbuf_miss { m.params().xpbuf_miss_ns } else { 0 }, 700);
    }

    #[test]
    fn distance_beyond_window_is_regular_flush() {
        let m = model(LatencyMode::Virtual, PmemMode::Adr);
        let mut t = thread();
        m.flush_line(&mut t, 0);
        for i in 1..=4u64 {
            m.flush_line(&mut t, i * 64);
        }
        let o = m.flush_line(&mut t, 0);
        assert!(!o.is_reflush);
    }

    #[test]
    fn sequential_cheaper_than_random() {
        let m = model(LatencyMode::Virtual, PmemMode::Adr);
        let mut t = thread();
        m.flush_line(&mut t, 0);
        let seq = m.flush_line(&mut t, 64);
        assert!(seq.is_sequential);
        let rand = m.flush_line(&mut t, 10 << 20);
        assert!(!rand.is_sequential);
        let seq_base = seq.cost_ns - if seq.xpbuf_miss { m.params().xpbuf_miss_ns } else { 0 };
        let rand_base = rand.cost_ns - if rand.xpbuf_miss { m.params().xpbuf_miss_ns } else { 0 };
        assert!(seq_base < rand_base, "{seq_base} !< {rand_base}");
    }

    #[test]
    fn backward_jump_is_random() {
        let m = model(LatencyMode::Virtual, PmemMode::Adr);
        let mut t = thread();
        m.flush_line(&mut t, 1 << 20);
        let o = m.flush_line(&mut t, 64);
        assert!(!o.is_sequential);
    }

    #[test]
    fn eadr_flush_is_free_but_store_charges() {
        let m = model(LatencyMode::Virtual, PmemMode::Eadr);
        let mut t = thread();
        let o = m.flush_line(&mut t, 0);
        assert_eq!(o.cost_ns, 0);
        let c = m.store(&mut t, 1 << 20, 8);
        assert!(c > 0, "cold store should miss the WC buffer");
        let c2 = m.store(&mut t, 1 << 20, 8);
        assert_eq!(c2, 0, "hot store should hit");
    }

    #[test]
    fn adr_store_is_free() {
        let m = model(LatencyMode::Virtual, PmemMode::Adr);
        let mut t = thread();
        assert_eq!(m.store(&mut t, 0, 64), 0);
    }

    #[test]
    fn off_mode_accrues_nothing() {
        let m = model(LatencyMode::Off, PmemMode::Adr);
        let mut t = thread();
        m.flush_line(&mut t, 0);
        m.flush_line(&mut t, 0);
        m.fence(&mut t);
        assert_eq!(t.virtual_ns(), 0);
    }

    #[test]
    fn virtual_mode_accrues_on_thread_clock() {
        let m = model(LatencyMode::Virtual, PmemMode::Adr);
        let mut t = thread();
        m.flush_line(&mut t, 0);
        m.fence(&mut t);
        assert!(t.virtual_ns() >= 110 + 30);
    }

    #[test]
    fn xpbuffer_working_set_detects_misses() {
        let p = ModelParams { xpbuf_lines: 2, ..ModelParams::default() };
        let m = LatencyModel::new(p, LatencyMode::Virtual, PmemMode::Adr);
        let mut t = thread();
        // Three distinct XPLines cycle through a 2-line buffer: all misses.
        for round in 0..2 {
            for i in 0..3u64 {
                let o = m.flush_line(&mut t, i * 256);
                if round > 0 {
                    assert!(o.xpbuf_miss, "line {i} should keep missing");
                }
            }
        }
        // Two lines fit: second round hits.
        let m = LatencyModel::new(
            ModelParams { xpbuf_lines: 2, ..ModelParams::default() },
            LatencyMode::Virtual,
            PmemMode::Adr,
        );
        let mut t = thread();
        for i in 0..2u64 {
            m.flush_line(&mut t, i * 256);
        }
        for i in 0..2u64 {
            // Interleave >=4 unique lines apart to dodge reflush accounting.
            let o = m.flush_line(&mut t, i * 256 + 64);
            assert!(!o.xpbuf_miss, "warm XPLine {i} should hit");
        }
    }

    #[test]
    fn lru_set_evicts_least_recent() {
        let mut s = LruSet::new(2);
        assert!(!s.touch(1));
        assert!(!s.touch(2));
        assert!(s.touch(1)); // refresh 1; 2 becomes LRU
        assert!(!s.touch(3)); // evicts 2
        assert!(s.touch(1));
        assert!(!s.touch(2));
    }
}

#[cfg(test)]
mod spin_tests {
    use super::*;

    #[test]
    fn spin_mode_injects_wall_clock_delay() {
        let m = LatencyModel::new(ModelParams::default(), LatencyMode::Spin, PmemMode::Adr);
        let mut t = PmThread::new(0);
        let start = std::time::Instant::now();
        for i in 0..200u64 {
            m.flush_line(&mut t, i * 64);
        }
        let wall = start.elapsed().as_nanos() as u64;
        let virt = t.virtual_ns();
        assert!(virt > 0);
        // The busy-wait must make wall time at least the modelled time
        // (scheduling can only add).
        assert!(wall >= virt, "wall {wall} < virtual {virt}");
    }
}
