//! Geometry constants of the emulated hardware.

/// CPU cache line size in bytes. Flush granularity.
pub const CACHE_LINE: usize = 64;

/// Optane media access granularity ("XPLine") in bytes. The XPBuffer
/// write-combining model works at this granularity.
pub const XPLINE: usize = 256;

/// Round `x` down to a cache-line boundary.
#[inline]
pub fn line_of(x: u64) -> u64 {
    x & !(CACHE_LINE as u64 - 1)
}

/// Round `x` down to an XPLine boundary.
#[inline]
pub fn xpline_of(x: u64) -> u64 {
    x & !(XPLINE as u64 - 1)
}

/// Round `x` up to a multiple of `align` (power of two).
#[inline]
pub fn align_up(x: u64, align: u64) -> u64 {
    debug_assert!(align.is_power_of_two());
    (x + align - 1) & !(align - 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_rounding() {
        assert_eq!(line_of(0), 0);
        assert_eq!(line_of(63), 0);
        assert_eq!(line_of(64), 64);
        assert_eq!(line_of(130), 128);
    }

    #[test]
    fn xpline_rounding() {
        assert_eq!(xpline_of(255), 0);
        assert_eq!(xpline_of(256), 256);
        assert_eq!(xpline_of(1000), 768);
    }

    #[test]
    fn align_up_works() {
        assert_eq!(align_up(0, 8), 0);
        assert_eq!(align_up(1, 8), 8);
        assert_eq!(align_up(8, 8), 8);
        assert_eq!(align_up(65, 64), 128);
    }
}
