//! pmsan — the persist-ordering sanitizer.
//!
//! A config-gated shadow state machine over the emulated pool: every 64 B
//! line carries a persist state (*clean → dirty → flushed-pending →
//! persisted at fence*), and every `write_*` / `flush` / `fence` call
//! transitions it. The sanitizer checks the *discipline* of persist
//! ordering, not the outcome: crash_matrix replays prefixes and the
//! doctor audits final images, but a missing flush that happens to land
//! in a line someone else flushed passes both. pmsan flags the missing
//! call itself, at the call site, with flight-recorder context.
//!
//! ## State tracking
//!
//! Per line, one atomic cell packs two wrapping generation counters:
//! `gen_stored` (bumped by every store touching the line) and
//! `gen_persisted` (raised at fence to the generation each pending flush
//! captured). A line is *persisted* when the two are equal. The
//! flushed-pending set is tracked per *thread* (the `PmThread` that
//! issued the flush), which is what makes the checks race-free: another
//! thread legitimately storing into a line I flushed (adjacent root
//! slots, shared bitmap words) never trips a violation, because the
//! ordering obligation — fence before *my* dependent store — is a
//! per-thread contract.
//!
//! ## Violations
//!
//! * [`PmsanKind::StoreUnfenced`] — a charged store to a line whose
//!   crash-ordering dependency (this thread's own earlier flush) is
//!   still unfenced. Detected at `charge_store`, which persistence
//!   paths call immediately after their stores.
//! * [`PmsanKind::EmptyFence`] — a fence issued with zero flushes
//!   pending on the fencing thread. Harmless on hardware but always a
//!   discipline bug: either the flush above it was lost, or the fence
//!   itself is dead code.
//! * [`PmsanKind::RedundantFlush`] — a metadata-granularity flush call
//!   (≤ 2 lines) all of whose lines are already persisted and unmodified.
//!   Large sweep flushes (shutdown write-back of whole slab headers) are
//!   exempt; the paper's redundant-flush pathology is per-line metadata.
//! * [`PmsanKind::ShutdownDirty`] — at a quiesced shutdown, a line
//!   recovery depends on is still dirty or flushed-pending. Recorded by
//!   the allocator's exit audit via [`crate::PmemPool::pmsan_audit_range`].
//!
//! Violations carry the recording thread's id, virtual-clock time and a
//! pmsan-global sequence number, and are mirrored into the PR-4 flight
//! recorder (event code [`PMSAN_TRACE_CODE`]) so a trace export shows
//! them inline with the surrounding allocator spans.
//!
//! ## Crash-image enumeration
//!
//! With a window marked ([`crate::PmemPool::pmsan_window_begin`] /
//! [`crate::PmemPool::pmsan_window_end`]), the sanitizer records, per
//! fence epoch, the pre-flush persistent content of every line flushed
//! in that epoch. From that undo log,
//! [`crate::PmemPool::pmsan_window_images`] reconstructs, *at each
//! fence*, every distinct legal crash image: the persisted prefix plus
//! each subset of the epoch's flushed-pending lines (exhaustive up to
//! [`MAX_EXHAUSTIVE_LINES`]; beyond that, the empty / full / each-single
//! -omitted boundary cases). Running recovery plus the doctor over each
//! image upgrades crash_matrix's single-prefix replay to
//! exhaustive-at-fence coverage of the morph and booklog-switch state
//! machines.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use parking_lot::Mutex;

use crate::layout::{line_of, CACHE_LINE};
use crate::stats::FlushKind;
use crate::thread::PmThread;

/// Flight-recorder event code pmsan violations are emitted under.
/// The allocator crate's `EventKind::PmsanViolation` must map to the
/// same code (checked by a test there).
pub const PMSAN_TRACE_CODE: u16 = 17;

/// Max violations kept with full context (counters keep counting past it).
const MAX_RECORDED: usize = 256;

/// Up to this many flushed-pending lines per fence epoch, enumeration is
/// exhaustive (`2^n` images); beyond it, the boundary subsets only.
pub const MAX_EXHAUSTIVE_LINES: usize = 6;

/// Violation taxonomy. See the module docs for definitions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PmsanKind {
    /// Charged store to a line this thread flushed but has not fenced.
    StoreUnfenced,
    /// Fence with zero flushes pending on the fencing thread.
    EmptyFence,
    /// Small flush whose lines were all already persisted and unchanged.
    RedundantFlush,
    /// Line still unpersisted at the shutdown audit.
    ShutdownDirty,
}

impl PmsanKind {
    /// All kinds, in counter-index order.
    pub const ALL: [PmsanKind; 4] = [
        PmsanKind::StoreUnfenced,
        PmsanKind::EmptyFence,
        PmsanKind::RedundantFlush,
        PmsanKind::ShutdownDirty,
    ];

    pub(crate) fn index(self) -> usize {
        match self {
            PmsanKind::StoreUnfenced => 0,
            PmsanKind::EmptyFence => 1,
            PmsanKind::RedundantFlush => 2,
            PmsanKind::ShutdownDirty => 3,
        }
    }

    /// Stable snake_case label (JSON report, test assertions).
    pub fn label(self) -> &'static str {
        match self {
            PmsanKind::StoreUnfenced => "store_unfenced",
            PmsanKind::EmptyFence => "empty_fence",
            PmsanKind::RedundantFlush => "redundant_flush",
            PmsanKind::ShutdownDirty => "shutdown_dirty",
        }
    }
}

/// One recorded violation, with the context the flight recorder sees.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PmsanViolation {
    /// What rule was broken.
    pub kind: PmsanKind,
    /// Pool byte offset of the offending line (0 for `EmptyFence`,
    /// whose subject is the fence itself).
    pub line: u64,
    /// Registered id of the thread the violation was detected on.
    pub thread: usize,
    /// That thread's virtual-clock nanoseconds at detection.
    pub ns: u64,
    /// pmsan-global detection sequence number (total order).
    pub seq: u64,
    /// Flush classification, when the violating op was a flush.
    pub flush: Option<FlushKind>,
}

/// Aggregated violation state: per-kind totals plus the recorded list.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PmsanReport {
    /// Per-kind totals, indexed like [`PmsanKind::ALL`].
    pub counts: [u64; 4],
    /// First [`MAX_RECORDED`] violations with full context.
    pub violations: Vec<PmsanViolation>,
}

impl PmsanReport {
    /// Total violations across all kinds.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Count for one kind.
    pub fn count(&self, kind: PmsanKind) -> u64 {
        self.counts[kind.index()]
    }

    /// Machine-readable report (no external deps; keys are stable).
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(256 + self.violations.len() * 96);
        s.push_str("{\"pmsan\":{\"total\":");
        s.push_str(&self.total().to_string());
        for (i, k) in PmsanKind::ALL.iter().enumerate() {
            s.push_str(",\"");
            s.push_str(k.label());
            s.push_str("\":");
            s.push_str(&self.counts[i].to_string());
        }
        s.push_str(",\"violations\":[");
        for (i, v) in self.violations.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str("{\"kind\":\"");
            s.push_str(v.kind.label());
            s.push_str("\",\"line\":");
            s.push_str(&v.line.to_string());
            s.push_str(",\"thread\":");
            s.push_str(&v.thread.to_string());
            s.push_str(",\"ns\":");
            s.push_str(&v.ns.to_string());
            s.push_str(",\"seq\":");
            s.push_str(&v.seq.to_string());
            if let Some(f) = v.flush {
                s.push_str(",\"flush\":\"");
                s.push_str(f.label());
                s.push('"');
            }
            s.push('}');
        }
        s.push_str("]}}");
        s
    }
}

/// Undo log of one marked window: per fence epoch, the lines flushed in
/// that epoch with their pre-epoch persistent contents. Produced by
/// [`crate::PmemPool::pmsan_window_end`], consumed by
/// [`crate::PmemPool::pmsan_window_images`].
#[derive(Debug, Clone)]
pub struct PmsanWindow {
    /// One entry per fence, oldest first: the epoch's first-flush undo
    /// records `(line offset, pre-epoch shadow words)`.
    pub(crate) fences: Vec<Vec<(u64, [u64; 8])>>,
    /// Flushes after the last fence (still pending at window end).
    pub(crate) tail: Vec<(u64, [u64; 8])>,
    /// True when the per-window line cap was hit (coverage incomplete).
    pub(crate) truncated: bool,
}

impl PmsanWindow {
    /// Number of fences observed inside the window.
    pub fn fence_count(&self) -> usize {
        self.fences.len()
    }

    /// True when the undo log overflowed and enumeration is partial.
    pub fn truncated(&self) -> bool {
        self.truncated
    }
}

/// Bound on undo-log lines per window (memory guard; ~ 72 B each).
const MAX_WINDOW_LINES: usize = 1 << 16;

#[derive(Debug, Default)]
struct WindowState {
    epoch: Vec<(u64, [u64; 8])>,
    fences: Vec<Vec<(u64, [u64; 8])>>,
    lines: usize,
    truncated: bool,
}

/// Shared sanitizer state hung off the pool (one per pool, gated by
/// [`crate::PmemConfig::pmsan`]).
#[derive(Debug)]
pub(crate) struct PmsanState {
    /// Per-line cell: `gen_stored << 32 | gen_persisted` (wrapping u32s;
    /// the line is persisted iff the halves are equal).
    cells: Box<[AtomicU64]>,
    seq: AtomicU64,
    counts: [AtomicU64; 4],
    list: Mutex<Vec<PmsanViolation>>,
    window_active: AtomicBool,
    window: Mutex<Option<WindowState>>,
}

#[inline]
fn stored(cell: u64) -> u32 {
    (cell >> 32) as u32
}

#[inline]
fn persisted(cell: u64) -> u32 {
    cell as u32
}

impl PmsanState {
    pub(crate) fn new(pool_bytes: usize) -> PmsanState {
        let nlines = pool_bytes / CACHE_LINE;
        let mut v = Vec::with_capacity(nlines);
        v.resize_with(nlines, || AtomicU64::new(0));
        PmsanState {
            cells: v.into_boxed_slice(),
            seq: AtomicU64::new(0),
            counts: Default::default(),
            list: Mutex::new(Vec::new()),
            window_active: AtomicBool::new(false),
            window: Mutex::new(None),
        }
    }

    #[inline]
    fn cell(&self, line: u64) -> &AtomicU64 {
        &self.cells[line as usize / CACHE_LINE]
    }

    /// A store touched `[off, off+len)`: bump every covered line's
    /// stored generation.
    #[inline]
    pub(crate) fn note_store(&self, off: u64, len: usize) {
        if len == 0 {
            return;
        }
        let mut line = line_of(off);
        let last = line_of(off + len as u64 - 1);
        while line <= last {
            self.cell(line).fetch_add(1 << 32, Ordering::Relaxed);
            line += CACHE_LINE as u64;
        }
    }

    /// `charge_store` hook: persistence paths charge right after their
    /// stores, giving us thread identity the raw store lacked. A charged
    /// store into a line this thread flushed — where the store moved the
    /// generation past what that flush captured — is a dependent store
    /// issued before the ordering fence.
    pub(crate) fn on_charge(&self, t: &mut PmThread, off: u64, len: usize) {
        if t.pmsan_pending.is_empty() || len == 0 {
            return;
        }
        let first = line_of(off);
        let last = line_of(off + len as u64 - 1);
        // Iterate the (short) pending list, not the line range: charges
        // can cover many lines, pending rarely holds more than a few.
        for i in 0..t.pmsan_pending.len() {
            let (line, gen) = t.pmsan_pending[i];
            if line < first || line > last {
                continue;
            }
            if stored(self.cell(line).load(Ordering::Relaxed)) != gen {
                self.record(t, PmsanKind::StoreUnfenced, line, None);
            }
        }
    }

    /// Call-level flush hook, before the per-line work: flag
    /// metadata-granularity flushes whose lines are all already persisted
    /// and untouched.
    pub(crate) fn on_flush_call(&self, t: &mut PmThread, first: u64, last: u64, kind: FlushKind) {
        let nlines = ((last - first) / CACHE_LINE as u64 + 1) as usize;
        if nlines <= 2 {
            let mut clean = true;
            let mut line = first;
            while line <= last {
                let c = self.cell(line).load(Ordering::Relaxed);
                if stored(c) != persisted(c) {
                    clean = false;
                    break;
                }
                line += CACHE_LINE as u64;
            }
            if clean {
                self.record(t, PmsanKind::RedundantFlush, first, Some(kind));
            }
        }
    }

    /// Per-line flush hook: remember (per thread) what generation this
    /// flush captured, so the fence knows what it is committing.
    #[inline]
    pub(crate) fn on_flush_line(&self, t: &mut PmThread, line: u64) {
        let gen = stored(self.cell(line).load(Ordering::Relaxed));
        if let Some(e) = t.pmsan_pending.iter_mut().find(|e| e.0 == line) {
            e.1 = gen;
        } else {
            t.pmsan_pending.push((line, gen));
        }
    }

    /// Pre-shadow-copy window hook: record the line's pre-epoch
    /// persistent content (first flush of the line per epoch wins).
    pub(crate) fn window_note(&self, line: u64, old: [u64; 8]) {
        let mut guard = self.window.lock();
        if let Some(w) = guard.as_mut() {
            if w.epoch.iter().any(|e| e.0 == line) {
                return;
            }
            if w.lines >= MAX_WINDOW_LINES {
                w.truncated = true;
                return;
            }
            w.lines += 1;
            w.epoch.push((line, old));
        }
    }

    #[inline]
    pub(crate) fn window_active(&self) -> bool {
        self.window_active.load(Ordering::Relaxed)
    }

    /// Fence hook: commit the thread's pending flushes (raise each
    /// line's persisted generation to what the flush captured), close
    /// the window epoch, and flag empty fences.
    pub(crate) fn on_fence(&self, t: &mut PmThread) {
        if t.pmsan_pending.is_empty() {
            self.record(t, PmsanKind::EmptyFence, 0, None);
        } else {
            for i in 0..t.pmsan_pending.len() {
                let (line, gen) = t.pmsan_pending[i];
                let cell = self.cell(line);
                let mut cur = cell.load(Ordering::Relaxed);
                // Raise persisted to `gen`; never lower it (another
                // thread's fence may have committed a newer flush).
                loop {
                    if (persisted(cur).wrapping_sub(gen) as i32) >= 0 {
                        break;
                    }
                    let new = (cur & !0xFFFF_FFFF) | gen as u64;
                    match cell.compare_exchange_weak(cur, new, Ordering::Relaxed, Ordering::Relaxed)
                    {
                        Ok(_) => break,
                        Err(c) => cur = c,
                    }
                }
            }
            t.pmsan_pending.clear();
        }
        if self.window_active() {
            let mut guard = self.window.lock();
            if let Some(w) = guard.as_mut() {
                if !w.epoch.is_empty() {
                    let epoch = std::mem::take(&mut w.epoch);
                    w.fences.push(epoch);
                }
            }
        }
    }

    /// True when every store to the line has been flushed *and* fenced.
    pub(crate) fn line_persisted(&self, line: u64) -> bool {
        let c = self.cell(line).load(Ordering::Relaxed);
        stored(c) == persisted(c)
    }

    /// Mark `[off, off+len)` persisted without touching the model: used
    /// for states already durable by construction (a fresh pool's zero
    /// fill re-stores bytes the zeroed backing file already holds).
    pub(crate) fn mark_persisted(&self, off: u64, len: usize) {
        if len == 0 {
            return;
        }
        let mut line = line_of(off);
        let last = line_of(off + len as u64 - 1);
        while line <= last {
            let cell = self.cell(line);
            let mut cur = cell.load(Ordering::Relaxed);
            loop {
                let new = (cur & !0xFFFF_FFFF) | stored(cur) as u64;
                match cell.compare_exchange_weak(cur, new, Ordering::Relaxed, Ordering::Relaxed) {
                    Ok(_) => break,
                    Err(c) => cur = c,
                }
            }
            line += CACHE_LINE as u64;
        }
    }

    /// Record one violation: bump the counter, keep context for the
    /// first [`MAX_RECORDED`], and mirror into the flight recorder.
    pub(crate) fn record(
        &self,
        t: &PmThread,
        kind: PmsanKind,
        line: u64,
        flush: Option<FlushKind>,
    ) {
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        self.counts[kind.index()].fetch_add(1, Ordering::Relaxed);
        t.trace(PMSAN_TRACE_CODE, line, kind.index() as u64);
        let v = PmsanViolation { kind, line, thread: t.id(), ns: t.virtual_ns(), seq, flush };
        let mut list = self.list.lock();
        if list.len() < MAX_RECORDED {
            list.push(v);
        }
    }

    pub(crate) fn report(&self) -> PmsanReport {
        let counts = [
            self.counts[0].load(Ordering::Relaxed),
            self.counts[1].load(Ordering::Relaxed),
            self.counts[2].load(Ordering::Relaxed),
            self.counts[3].load(Ordering::Relaxed),
        ];
        PmsanReport { counts, violations: self.list.lock().clone() }
    }

    pub(crate) fn window_begin(&self) {
        let mut guard = self.window.lock();
        *guard = Some(WindowState::default());
        self.window_active.store(true, Ordering::Relaxed);
    }

    pub(crate) fn window_end(&self) -> PmsanWindow {
        self.window_active.store(false, Ordering::Relaxed);
        let state = self.window.lock().take().unwrap_or_default();
        PmsanWindow { fences: state.fences, tail: state.epoch, truncated: state.truncated }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_labels_are_stable() {
        assert_eq!(PmsanKind::StoreUnfenced.label(), "store_unfenced");
        assert_eq!(PmsanKind::ALL.len(), 4);
        for (i, k) in PmsanKind::ALL.iter().enumerate() {
            assert_eq!(k.index(), i);
        }
    }

    #[test]
    fn report_json_shape() {
        let r = PmsanReport {
            counts: [1, 0, 2, 0],
            violations: vec![PmsanViolation {
                kind: PmsanKind::RedundantFlush,
                line: 128,
                thread: 3,
                ns: 42,
                seq: 0,
                flush: Some(FlushKind::Meta),
            }],
        };
        let j = r.to_json();
        assert!(j.contains("\"total\":3"), "{j}");
        assert!(j.contains("\"store_unfenced\":1"), "{j}");
        assert!(j.contains("\"redundant_flush\":2"), "{j}");
        assert!(j.contains("\"flush\":\"meta\""), "{j}");
    }

    #[test]
    fn mark_persisted_clears_dirty_state() {
        let s = PmsanState::new(4096);
        s.note_store(0, 200);
        assert!(!s.line_persisted(0));
        assert!(!s.line_persisted(192));
        s.mark_persisted(0, 200);
        assert!(s.line_persisted(0));
        assert!(s.line_persisted(192));
    }
}
