//! Flight-recorder transport: per-thread, lock-free event rings.
//!
//! This module is the *transport* half of the allocator's flight
//! recorder: fixed-size binary events, one single-producer ring per
//! registered thread, drop-oldest on wrap. The semantic half (event
//! kinds, merging, Chrome trace export) lives in the allocator crate;
//! keeping the transport here lets [`crate::PmThread`] carry a tracer
//! handle so every module that already receives a `PmThread` can emit
//! events with zero extra plumbing.
//!
//! Events are stamped with a *global* sequence number (one shared
//! counter across all rings, so a merged stream has a total order) and
//! the emitting thread's virtual-clock nanoseconds (so event times line
//! up with the modelled latencies every benchmark reports).
//!
//! Concurrency contract: each ring has exactly one producer (the owning
//! thread). Readers may snapshot at any time without stopping the
//! producer; a snapshot taken during concurrent pushes can miss or tear
//! events that are being overwritten at that instant, so authoritative
//! merges should be taken at quiescence (after worker threads have
//! finished), which is when benchmarks export traces.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Number of `u64` words per ring slot.
const SLOT_WORDS: usize = 5;

/// One decoded flight-recorder event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Global sequence number (total order across all threads).
    pub seq: u64,
    /// Emitting thread's virtual-clock nanoseconds at emission.
    pub ns: u64,
    /// Event kind code (interpreted by the allocator's trace module).
    pub code: u16,
    /// Tracer-local thread index (dense, assigned at registration).
    pub tid: u16,
    /// First event payload word (kind-specific).
    pub a: u64,
    /// Second event payload word (kind-specific).
    pub b: u64,
}

/// A fixed-capacity single-producer event ring with drop-oldest
/// semantics: once `capacity` events are resident, each push overwrites
/// the oldest event. `written() - len()` events have been dropped.
#[derive(Debug)]
pub struct TraceRing {
    slots: Box<[[AtomicU64; SLOT_WORDS]]>,
    head: AtomicU64,
}

impl TraceRing {
    /// Create a ring holding up to `capacity` events (min 1).
    pub fn new(capacity: usize) -> TraceRing {
        let cap = capacity.max(1);
        let mut v = Vec::with_capacity(cap);
        v.resize_with(cap, Default::default);
        TraceRing { slots: v.into_boxed_slice(), head: AtomicU64::new(0) }
    }

    /// Maximum number of resident events.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Total events ever pushed (monotone; not capped by capacity).
    pub fn written(&self) -> u64 {
        self.head.load(Ordering::Acquire)
    }

    /// Events currently resident (`min(written, capacity)`).
    pub fn len(&self) -> u64 {
        self.written().min(self.slots.len() as u64)
    }

    /// True when no event was ever pushed.
    pub fn is_empty(&self) -> bool {
        self.written() == 0
    }

    /// Events lost to drop-oldest wraparound.
    pub fn dropped(&self) -> u64 {
        self.written().saturating_sub(self.slots.len() as u64)
    }

    /// Append `ev`, overwriting the oldest event when full.
    pub fn push(&self, ev: TraceEvent) {
        let idx = self.head.load(Ordering::Relaxed) as usize % self.slots.len();
        let slot = &self.slots[idx];
        // seq is stored +1 so a never-written slot (all zero) is
        // distinguishable from an event with seq 0.
        slot[1].store(ev.ns, Ordering::Relaxed);
        slot[2].store(ev.code as u64 | (ev.tid as u64) << 16, Ordering::Relaxed);
        slot[3].store(ev.a, Ordering::Relaxed);
        slot[4].store(ev.b, Ordering::Relaxed);
        slot[0].store(ev.seq + 1, Ordering::Release);
        self.head.fetch_add(1, Ordering::Release);
    }

    /// Copy the resident events out, oldest first.
    pub fn snapshot(&self) -> Vec<TraceEvent> {
        let head = self.written();
        let cap = self.slots.len() as u64;
        let start = head.saturating_sub(cap);
        let mut out = Vec::with_capacity((head - start) as usize);
        for i in start..head {
            let slot = &self.slots[(i % cap) as usize];
            let tag = slot[0].load(Ordering::Acquire);
            if tag == 0 {
                continue;
            }
            let meta = slot[2].load(Ordering::Relaxed);
            out.push(TraceEvent {
                seq: tag - 1,
                ns: slot[1].load(Ordering::Relaxed),
                code: meta as u16,
                tid: (meta >> 16) as u16,
                a: slot[3].load(Ordering::Relaxed),
                b: slot[4].load(Ordering::Relaxed),
            });
        }
        out
    }
}

/// A cloneable per-thread emitter: the owning ring plus the recorder's
/// shared sequence counter and this thread's dense tracer index.
/// Installed on a [`crate::PmThread`] via
/// [`crate::PmThread::set_tracer`].
#[derive(Debug, Clone)]
pub struct TracerHandle {
    ring: Arc<TraceRing>,
    seq: Arc<AtomicU64>,
    tid: u16,
}

impl TracerHandle {
    /// Build a handle emitting into `ring` as tracer-thread `tid`,
    /// stamping events from the shared counter `seq`.
    pub fn new(ring: Arc<TraceRing>, seq: Arc<AtomicU64>, tid: u16) -> TracerHandle {
        TracerHandle { ring, seq, tid }
    }

    /// The ring this handle emits into.
    pub fn ring(&self) -> &Arc<TraceRing> {
        &self.ring
    }

    /// Emit one event at virtual time `ns`.
    #[inline]
    pub fn emit(&self, ns: u64, code: u16, a: u64, b: u64) {
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        self.ring.push(TraceEvent { seq, ns, code, tid: self.tid, a, b });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(seq: u64) -> TraceEvent {
        TraceEvent { seq, ns: seq * 10, code: 7, tid: 3, a: seq, b: !seq }
    }

    #[test]
    fn roundtrip_under_capacity() {
        let r = TraceRing::new(8);
        for s in 0..5 {
            r.push(ev(s));
        }
        assert_eq!(r.written(), 5);
        assert_eq!(r.dropped(), 0);
        let got = r.snapshot();
        assert_eq!(got.len(), 5);
        for (s, e) in got.iter().enumerate() {
            assert_eq!(*e, ev(s as u64));
        }
    }

    #[test]
    fn wraparound_drops_oldest() {
        let r = TraceRing::new(4);
        for s in 0..11 {
            r.push(ev(s));
        }
        assert_eq!(r.written(), 11);
        assert_eq!(r.len(), 4);
        assert_eq!(r.dropped(), 7);
        let got = r.snapshot();
        assert_eq!(got.iter().map(|e| e.seq).collect::<Vec<_>>(), vec![7, 8, 9, 10]);
    }

    #[test]
    fn handle_stamps_shared_sequence() {
        let seq = Arc::new(AtomicU64::new(0));
        let h1 = TracerHandle::new(Arc::new(TraceRing::new(8)), Arc::clone(&seq), 0);
        let h2 = TracerHandle::new(Arc::new(TraceRing::new(8)), Arc::clone(&seq), 1);
        h1.emit(5, 1, 0, 0);
        h2.emit(6, 2, 0, 0);
        h1.emit(7, 3, 0, 0);
        let mut all: Vec<_> = h1.ring().snapshot();
        all.extend(h2.ring().snapshot());
        all.sort_by_key(|e| e.seq);
        assert_eq!(
            all.iter().map(|e| (e.seq, e.code, e.tid)).collect::<Vec<_>>(),
            vec![(0, 1, 0), (1, 2, 1), (2, 3, 0)]
        );
    }
}
