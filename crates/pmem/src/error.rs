//! Error type shared by the PM substrate and everything built on it.

use std::error::Error;
use std::fmt;

/// Errors produced by the PM substrate and by allocators built on it.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum PmError {
    /// An access touched bytes outside the pool.
    OutOfBounds {
        /// Requested offset.
        offset: u64,
        /// Requested length.
        len: usize,
        /// Pool size.
        pool: usize,
    },
    /// The pool (or an allocator region inside it) has no room left.
    OutOfMemory {
        /// The request that could not be satisfied, in bytes.
        requested: usize,
    },
    /// A zero-sized or otherwise unservable request.
    InvalidRequest(&'static str),
    /// `free_from` was asked to free a root that holds no allocation.
    NotAllocated,
    /// Persistent state failed a consistency check during recovery.
    Corrupt(&'static str),
    /// An extent operation was routed to a shard that does not own the
    /// extent's address range (corrupt VEH or cross-shard handle). Freeing
    /// such an extent would poison another shard's free space, so the
    /// operation is refused with full context instead.
    ShardViolation {
        /// Heap span start of the shard that was asked to operate.
        shard_base: u64,
        /// Heap span end (exclusive) of that shard.
        shard_end: u64,
        /// The extent's offset.
        offset: u64,
        /// The extent's size in bytes.
        len: usize,
    },
}

impl fmt::Display for PmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PmError::OutOfBounds { offset, len, pool } => write!(
                f,
                "access of {len} bytes at offset {offset:#x} exceeds pool of {pool} bytes"
            ),
            PmError::OutOfMemory { requested } => {
                write!(f, "out of persistent memory serving a {requested}-byte request")
            }
            PmError::InvalidRequest(msg) => write!(f, "invalid request: {msg}"),
            PmError::NotAllocated => write!(f, "root slot holds no allocation"),
            PmError::Corrupt(msg) => write!(f, "persistent state corrupt: {msg}"),
            PmError::ShardViolation { shard_base, shard_end, offset, len } => write!(
                f,
                "extent [{offset:#x}, +{len}) does not belong to the shard spanning \
                 [{shard_base:#x}, {shard_end:#x})"
            ),
        }
    }
}

impl Error for PmError {}

/// Result alias used across the workspace.
pub type PmResult<T> = Result<T, PmError>;
