//! Per-thread handles onto the PM substrate.

use crate::trace::TracerHandle;

/// Per-thread PM state: the virtual clock and the last flushed address used
/// for sequential/random classification.
///
/// Obtain one per worker thread via [`crate::PmemPool::register_thread`] and
/// pass it (mutably) to every flush/fence call. Keeping this explicit instead
/// of thread-local makes benchmarks deterministic and lets a harness collect
/// all virtual clocks at the end of a run.
///
/// A [`TracerHandle`] may be attached with [`PmThread::set_tracer`]; every
/// module that already receives a `PmThread` can then emit flight-recorder
/// events via [`PmThread::trace`] with no extra plumbing.
#[derive(Debug)]
pub struct PmThread {
    id: usize,
    virtual_ns: u64,
    last_flush_addr: Option<u64>,
    /// Modelled nanoseconds not yet slept off in `LatencyMode::Sleep`
    /// (sleeps are batched into quanta; see `LatencyModel::charge`).
    sleep_debt: u64,
    tracer: Option<TracerHandle>,
    /// Flush calls issued since this thread's last fence (always
    /// maintained; lets [`crate::PmemPool::fence_pending`] skip fences
    /// that would order nothing).
    pub(crate) flushed_since_fence: u32,
    /// pmsan bookkeeping: lines this thread flushed since its last
    /// fence, with the store generation each flush captured. Stays empty
    /// when the pool's sanitizer is off.
    pub(crate) pmsan_pending: Vec<(u64, u32)>,
}

impl PmThread {
    pub(crate) fn new(id: usize) -> Self {
        PmThread {
            id,
            virtual_ns: 0,
            last_flush_addr: None,
            sleep_debt: 0,
            tracer: None,
            flushed_since_fence: 0,
            pmsan_pending: Vec::new(),
        }
    }

    /// Identifier assigned at registration (dense, starting at 0).
    pub fn id(&self) -> usize {
        self.id
    }

    /// Modelled nanoseconds this thread has spent waiting on PM.
    pub fn virtual_ns(&self) -> u64 {
        self.virtual_ns
    }

    /// Reset the virtual clock (between benchmark phases).
    pub fn reset_clock(&mut self) {
        self.virtual_ns = 0;
    }

    /// Start a span on this thread's virtual clock (telemetry latency
    /// measurements). Reading the clock does not advance it.
    pub fn span(&self) -> ClockSpan {
        ClockSpan { start_ns: self.virtual_ns }
    }

    /// Attach a flight-recorder emitter; subsequent [`PmThread::trace`]
    /// calls push into its ring.
    pub fn set_tracer(&mut self, tracer: TracerHandle) {
        self.tracer = Some(tracer);
    }

    /// The attached tracer, if any (cloneable; lets a lock guard keep
    /// emitting after the `PmThread` borrow ends).
    pub fn tracer(&self) -> Option<&TracerHandle> {
        self.tracer.as_ref()
    }

    /// True when a tracer is attached (guards payload computation at
    /// call sites that would otherwise do work to build `a`/`b`).
    #[inline]
    pub fn tracing(&self) -> bool {
        self.tracer.is_some()
    }

    /// Emit one flight-recorder event stamped with this thread's current
    /// virtual-clock time. No-op (one branch) when no tracer is attached.
    #[inline]
    pub fn trace(&self, code: u16, a: u64, b: u64) {
        if let Some(t) = &self.tracer {
            t.emit(self.virtual_ns, code, a, b);
        }
    }

    #[inline]
    pub(crate) fn accrue_ns(&mut self, ns: u64) {
        self.virtual_ns += ns;
    }

    /// Add `ns` to the sleep debt; when the accumulated debt reaches
    /// `quantum`, return it (reset to 0) for the caller to sleep off.
    #[inline]
    pub(crate) fn add_sleep_debt(&mut self, ns: u64, quantum: u64) -> Option<u64> {
        self.sleep_debt += ns;
        if self.sleep_debt >= quantum {
            let due = self.sleep_debt;
            self.sleep_debt = 0;
            Some(due)
        } else {
            None
        }
    }

    #[inline]
    pub(crate) fn last_flush_addr(&self) -> Option<u64> {
        self.last_flush_addr
    }

    #[inline]
    pub(crate) fn set_last_flush_addr(&mut self, addr: u64) {
        self.last_flush_addr = Some(addr);
    }
}

/// A started measurement on a [`PmThread`]'s virtual clock.
///
/// Saturating on both ends: a `reset_clock` between `span()` and
/// `elapsed_ns()` yields 0, never a panic or a wrapped value.
#[derive(Debug, Clone, Copy)]
pub struct ClockSpan {
    start_ns: u64,
}

impl ClockSpan {
    /// Modelled nanoseconds accrued on `t` since the span started.
    pub fn elapsed_ns(&self, t: &PmThread) -> u64 {
        t.virtual_ns.saturating_sub(self.start_ns)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_accrues_and_resets() {
        let mut t = PmThread::new(7);
        assert_eq!(t.id(), 7);
        t.accrue_ns(100);
        t.accrue_ns(50);
        assert_eq!(t.virtual_ns(), 150);
        t.reset_clock();
        assert_eq!(t.virtual_ns(), 0);
    }

    #[test]
    fn span_measures_accrual_and_saturates_across_reset() {
        let mut t = PmThread::new(0);
        t.accrue_ns(10);
        let span = t.span();
        assert_eq!(span.elapsed_ns(&t), 0);
        t.accrue_ns(25);
        assert_eq!(span.elapsed_ns(&t), 25);
        t.reset_clock();
        assert_eq!(span.elapsed_ns(&t), 0, "reset mid-span must not underflow");
    }
}
