//! Per-thread handles onto the PM substrate.

/// Per-thread PM state: the virtual clock and the last flushed address used
/// for sequential/random classification.
///
/// Obtain one per worker thread via [`crate::PmemPool::register_thread`] and
/// pass it (mutably) to every flush/fence call. Keeping this explicit instead
/// of thread-local makes benchmarks deterministic and lets a harness collect
/// all virtual clocks at the end of a run.
#[derive(Debug)]
pub struct PmThread {
    id: usize,
    virtual_ns: u64,
    last_flush_addr: Option<u64>,
}

impl PmThread {
    pub(crate) fn new(id: usize) -> Self {
        PmThread { id, virtual_ns: 0, last_flush_addr: None }
    }

    /// Identifier assigned at registration (dense, starting at 0).
    pub fn id(&self) -> usize {
        self.id
    }

    /// Modelled nanoseconds this thread has spent waiting on PM.
    pub fn virtual_ns(&self) -> u64 {
        self.virtual_ns
    }

    /// Reset the virtual clock (between benchmark phases).
    pub fn reset_clock(&mut self) {
        self.virtual_ns = 0;
    }

    #[inline]
    pub(crate) fn accrue_ns(&mut self, ns: u64) {
        self.virtual_ns += ns;
    }

    #[inline]
    pub(crate) fn last_flush_addr(&self) -> Option<u64> {
        self.last_flush_addr
    }

    #[inline]
    pub(crate) fn set_last_flush_addr(&mut self, addr: u64) {
        self.last_flush_addr = Some(addr);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_accrues_and_resets() {
        let mut t = PmThread::new(7);
        assert_eq!(t.id(), 7);
        t.accrue_ns(100);
        t.accrue_ns(50);
        assert_eq!(t.virtual_ns(), 150);
        t.reset_clock();
        assert_eq!(t.virtual_ns(), 0);
    }
}
