//! The NVAlloc front end: pool layout, arena/thread management, and the
//! `malloc_to` / `free_from` paths tying slabs, tcaches, morphing, the WAL,
//! and the large allocator together.
//!
//! # Pool layout
//!
//! ```text
//! [ pool header | arena flags | root slots | per-arena WAL regions |
//!   region table | bookkeeping log | heap (slabs + extents) ]
//! ```
//!
//! # Lock order
//!
//! `Arena::inner` → large shard mutex ([`crate::shards::ShardedLarge`];
//! at most one shard lock is held at a time). WAL appends are per-thread
//! micro-logs (lock-free); persistent bitmap bits are atomic word
//! updates; rtree reads and writes are lock-free.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
// nvalloc-lint: allow(determinism) — lock wait/hold profiling timestamps only; never feeds persistent state.
use std::time::Instant;

use nvalloc_pmem::{
    FlushKind, LatencyMode, PmError, PmOffset, PmResult, PmThread, PmemMode, PmemPool, TracerHandle,
};

use crate::api::{AllocThread, PmAllocator};
use crate::arena::{arena_state, Arena};
use crate::bitmap::PmBitmap;
use crate::config::{NvConfig, Variant};
use crate::geometry::GeometryTable;
use crate::large::{LargeConfig, VehId, PAGE, REGION_BYTES};
use crate::morph;
use crate::observe::{ArenaGauge, ClassGauge, TimelineSample, TimelineSampler};
use crate::remote::{RemoteFree, SlabGates};
use crate::rtree::{Owner, RTree};
use crate::service::{ServiceRequest, ServiceState};
use crate::shards::ShardedLarge;
use crate::size_class::{class_size, size_to_class, ClassId, SLAB_SIZE};
use crate::slab::{flag, SlabHeader, VSlab};
use crate::tcache::TCache;
use crate::telemetry::{CoreMetrics, Counter, MetricsSnapshot, OpHistograms, OpKind, TcacheEvent};
use crate::trace::{EventKind, TraceRecorder};
use crate::wal::{MicroWal, WalOp, WalRegion, MICRO_ENTRIES};

/// Magic tag identifying an NVAlloc-formatted pool.
pub const POOL_MAGIC: u64 = 0x4E56_414C_4C4F_4331; // "NVALLOC1"

/// Computed pool layout (all offsets in bytes).
#[derive(Debug, Clone)]
pub(crate) struct Layout {
    pub arena_flags: PmOffset,
    pub roots: PmOffset,
    pub roots_count: usize,
    pub wal_base: PmOffset,
    pub wal_micro_count: usize,
    pub region_table: PmOffset,
    pub region_table_bytes: usize,
    pub booklog: PmOffset,
    pub booklog_bytes: usize,
    /// Provenance-sidelog region ([`crate::prof`]); `prof_bytes == 0`
    /// when profiling is off and the region collapses to nothing.
    pub prof_base: PmOffset,
    pub prof_bytes: usize,
    pub heap_base: PmOffset,
    pub heap_bytes: usize,
    /// Effective large-allocation shard count (power of two; clamped so
    /// every shard keeps a workable booklog slice and heap span). Both
    /// `create` and `recover` derive it here, so the per-shard region
    /// slicing is deterministic across crashes.
    pub large_shards: usize,
}

impl Layout {
    pub(crate) fn compute(cfg: &NvConfig, pool_size: usize) -> PmResult<Layout> {
        let arena_flags = 64u64;
        let flags_end = arena_flags + cfg.arenas as u64 * 64;
        let roots = crate::align_up64(flags_end, 64);
        let roots_end = roots + cfg.roots as u64 * 8;
        let wal_base = crate::align_up64(roots_end, 64);
        let wal_micro_count = (cfg.wal_entries / MICRO_ENTRIES).max(16);
        let wal_bytes = cfg.arenas * WalRegion::region_bytes(wal_micro_count);
        let wal_end = wal_base + wal_bytes as u64;
        let booklog_bytes = cfg.booklog_bytes.min(pool_size / 4).max(64 << 10);
        // Shard count: requested (0 = one per arena), rounded up to a
        // power of two, then halved until every shard keeps a workable
        // booklog slice and a two-region heap span — small pools degrade
        // gracefully to a single shard.
        let want = if cfg.large_shards == 0 { cfg.arenas } else { cfg.large_shards };
        let mut shards = want.max(1).next_power_of_two().min(crate::shards::MAX_SHARDS);
        loop {
            // Each shard gets its own region-table slice sized with
            // headroom for its whole sub-heap, so no shard can run out
            // of region slots while its neighbours sit empty.
            let region_table_bytes = shards * (8 + 8 * (pool_size / REGION_BYTES / shards + 2));
            let region_table = crate::align_up64(wal_end, 64);
            let booklog = crate::align_up64(region_table + region_table_bytes as u64, 64);
            let prof_base = crate::align_up64(booklog + booklog_bytes as u64, 64);
            let prof_bytes = if cfg.profile_sample_bytes > 0 {
                cfg.arenas * crate::prof::PROF_LOG_BYTES
            } else {
                0
            };
            let heap_base = crate::align_up64(prof_base + prof_bytes as u64, SLAB_SIZE as u64);
            let fits = heap_base as usize + REGION_BYTES <= pool_size;
            if shards > 1
                && (!fits
                    || booklog_bytes / shards < crate::shards::MIN_SHARD_BOOKLOG
                    || (pool_size - heap_base as usize) / shards < crate::shards::MIN_SHARD_HEAP)
            {
                shards /= 2;
                continue;
            }
            if !fits {
                return Err(PmError::OutOfMemory { requested: REGION_BYTES });
            }
            return Ok(Layout {
                arena_flags,
                roots,
                roots_count: cfg.roots,
                wal_base,
                wal_micro_count,
                region_table,
                region_table_bytes,
                booklog,
                booklog_bytes,
                prof_base,
                prof_bytes,
                heap_base,
                heap_bytes: pool_size - heap_base as usize,
                large_shards: shards,
            });
        }
    }

    pub(crate) fn large_config_pub(&self, cfg: &NvConfig) -> LargeConfig {
        self.large_config(cfg)
    }

    fn large_config(&self, cfg: &NvConfig) -> LargeConfig {
        LargeConfig {
            heap_base: self.heap_base,
            heap_bytes: self.heap_bytes,
            log_bookkeeping: cfg.log_bookkeeping,
            booklog_base: self.booklog,
            booklog_bytes: self.booklog_bytes,
            booklog_stripes: cfg.stripes_for(cfg.interleave_booklog),
            booklog_gc: cfg.booklog_gc,
            slow_gc_threshold: usize::MAX, // set by NvInner from usage_pmem
            decay_ms: cfg.decay_ms,
            region_table_base: self.region_table,
            region_table_bytes: self.region_table_bytes,
            shard_tag: 0, // per-shard tags are applied by ShardedLarge
        }
    }
}

/// Slab-utilisation snapshot for the Fig. 15(b) space breakdown.
#[derive(Debug, Clone, PartialEq)]
pub struct SlabUtilization {
    /// Upper bounds of the occupancy bins (e.g. `[0.3, 0.7]` → bins
    /// 0–30 %, 30–70 %, 70–100 %).
    pub bins: Vec<f64>,
    /// Slab counts per bin (one more than `bins`).
    pub counts: Vec<usize>,
}

/// Outcome summary of [`NvAllocator::recover`]. See §4.4.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Every arena flag read `NormalShutdown`.
    pub normal_shutdown: bool,
    /// Slabs reconstructed from the bookkeeping log.
    pub slabs: usize,
    /// Non-slab extents reconstructed.
    pub extents: usize,
    /// WAL entries replayed (LOG variant, failure recovery).
    pub wal_replayed: usize,
    /// Blocks/extents whose leaks were fixed by replay or GC.
    pub leaks_fixed: usize,
    /// Slab morphs rolled back (or forward) via the header flag.
    pub morphs_resolved: usize,
    /// Live blocks found by conservative GC (GC variant).
    pub gc_live_blocks: usize,
    /// Provenance-sidelog records scanned during profiler replay.
    pub prof_records: usize,
    /// Replayed profiler records pruned because their object is dead
    /// on-heap (crash landed between an append and its commit point).
    pub prof_stale: usize,
}

pub(crate) struct NvInner {
    pub pool: Arc<PmemPool>,
    pub cfg: NvConfig,
    pub geoms: GeometryTable,
    pub layout: Layout,
    pub arenas: Vec<Arc<Arena>>,
    pub large: ShardedLarge,
    pub rtree: Arc<RTree>,
    pub live_bytes: AtomicUsize,
    pub wal_seq: AtomicU64,
    pub metrics: CoreMetrics,
    /// Flight recorder (`NvConfig::trace`); threads register a ring on
    /// creation and emit through their `PmThread`.
    pub tracer: Option<Arc<TraceRecorder>>,
    /// Per-slab shared/exclusive gates arbitrating the lock-free free
    /// fast path against slab layout changes (morph, retire).
    pub slab_gates: SlabGates,
    /// Timeline sampler (`NvConfig::timeline`); operation completions
    /// check it against their thread's virtual clock and the boundary
    /// winner records one [`TimelineSample`].
    pub observe: Option<Arc<TimelineSampler>>,
    /// Allocator service (`NvConfig::service`): epoch-tick claim state
    /// plus the dedicated-thread lifecycle on wall-clock pools. `None`
    /// when the service is off — workers then run every slow path
    /// inline, exactly as before.
    pub service: Option<ServiceState>,
    /// Sampled heap profiler (`NvConfig::profiling`); `None` when off.
    pub prof: Option<Arc<crate::prof::Prof>>,
}

impl NvInner {
    /// Drain `arena`'s deferred cross-arena frees into its slabs. The
    /// caller holds `ai` (the arena's lock), which makes it the queue's
    /// single consumer.
    pub(crate) fn drain_remote(
        &self,
        t: &mut PmThread,
        arena: &Arena,
        ai: &mut crate::arena::ArenaInner,
    ) -> usize {
        let items = arena.remote.drain();
        if items.is_empty() {
            return 0;
        }
        self.metrics.bump(Counter::RemoteDrainBatches);
        self.metrics.add(Counter::RemoteDrained, items.len() as u64);
        t.trace(EventKind::RemoteDrain.code(), arena.id as u64, items.len() as u64);
        for f in &items {
            let idx = f.idx as usize;
            // The persistent free already happened on the freeing thread;
            // only the volatile return-to-slab is deferred. Entries whose
            // slab vanished in the meantime are stale and ignorable.
            let valid = ai.slabs.get(&f.slab).is_some_and(|v| idx < v.nblocks && v.is_taken(idx));
            if !valid {
                continue;
            }
            if ai.return_block_to_slab(f.slab, idx) {
                let _ = self.destroy_or_reserve(t, arena, ai, f.slab);
            }
        }
        items.len()
    }

    /// Retire `slab_off` if it is completely free: dismantle it under its
    /// exclusive gate, then park the frame in the arena's reservoir
    /// (header scrubbed, so crash recovery reclaims it as a leaked slab
    /// extent) or return it to the large allocator. Caller holds the
    /// arena lock.
    pub(crate) fn destroy_or_reserve(
        &self,
        t: &mut PmThread,
        arena: &Arena,
        ai: &mut crate::arena::ArenaInner,
        slab_off: PmOffset,
    ) -> PmResult<()> {
        if !ai.slabs.get(&slab_off).is_some_and(|v| v.is_completely_free()) {
            return Ok(());
        }
        // Spin out in-flight pinned frees and divert new ones to the
        // locked path while the frame is dismantled. Pin sections never
        // wait on the arena lock (held here), so this cannot deadlock.
        self.slab_gates.lock(slab_off);
        let vs = ai.remove_slab(slab_off);
        self.metrics.bump(Counter::SlabRetires);
        let res = if ai.reservoir.len() < self.cfg.slab_reservoir {
            // Scrub the header magic and hide the frame from address
            // lookups: until it is re-carved it must be invisible to
            // frees, and a crash image reclaims it as a leak.
            self.pool.persist_u64(t, slab_off, 0, FlushKind::Meta);
            self.rtree.remove_range(slab_off, SLAB_SIZE);
            ai.reservoir.push((vs.veh, slab_off));
            Ok(())
        } else if self.service.is_some() {
            // Offload the extent release to the allocator service.
            // Dismantle exactly as a parked reservoir frame first —
            // scrubbed header, no rtree range — so a crash that loses
            // the volatile queue leaves only a leak the recovery sweep
            // reclaims; the deferred `large.free` is pure timing.
            self.pool.persist_u64(t, slab_off, 0, FlushKind::Meta);
            self.rtree.remove_range(slab_off, SLAB_SIZE);
            arena.service.push(ServiceRequest::Retire { veh: vs.veh });
            self.metrics.bump(Counter::ServiceRequests);
            Ok(())
        } else {
            // large.free re-registers nothing; it removes the range
            // (which the slab owner entry overwrote) from the rtree. The
            // shard is selected by the frame's veh tag.
            self.large.free(&self.pool, t, vs.veh)
        };
        self.slab_gates.unlock(slab_off);
        res
    }

    /// Collect one timeline sample at virtual time `ns` (read-only; see
    /// [`crate::observe`]). Takes each arena lock and each large-shard
    /// lock briefly — the *uncounted* raw locks, so sampling never shows
    /// up in the lock telemetry it observes — and makes no persistence
    /// calls. The windowed latency quantiles are filled in later by
    /// [`TimelineSampler::record`].
    pub(crate) fn collect_sample(&self, ns: u64) -> TimelineSample {
        let shards = self.large.gauges();
        let mut arenas = Vec::with_capacity(self.arenas.len());
        for a in &self.arenas {
            let ai = a.inner.lock();
            // (slabs, capacity blocks, live blocks) per class; aggregated
            // into a fixed-order array so the HashMap iteration order of
            // `ai.slabs` cannot leak into the sample.
            let mut per_class = [(0usize, 0usize, 0usize); crate::size_class::NUM_CLASSES];
            // Occupancy deciles share the same pass (the arena lock is
            // held, so a second `slabs` walk would only add hold time) and
            // the same binning as the doctor's audit histogram.
            let mut occupancy_hist = vec![0usize; crate::observe::DECILE_BINS.len() + 1];
            for vs in ai.slabs.values() {
                let e = &mut per_class[vs.class];
                e.0 += 1;
                e.1 += vs.nblocks;
                e.2 += vs.nblocks - vs.nfree;
                if let Some(d) = crate::observe::occupancy_decile(vs.nblocks - vs.nfree, vs.nblocks)
                {
                    occupancy_hist[d] += 1;
                }
            }
            // `remote.len()`'s / `service.len()`'s safety contracts
            // require the arena lock (held here).
            let remote_depth = a.remote.len();
            let service_depth = a.service.len();
            arenas.push(ArenaGauge {
                slabs: ai.slabs.len(),
                occupancy_hist,
                classes: per_class
                    .iter()
                    .enumerate()
                    .filter(|(_, e)| e.0 > 0)
                    .map(|(class, &(slabs, capacity_blocks, live_blocks))| ClassGauge {
                        class,
                        slabs,
                        capacity_blocks,
                        live_blocks,
                    })
                    .collect(),
                reservoir: ai.reservoir.len(),
                remote_depth,
                service_depth,
            });
        }
        // Reservoir frames keep their (header-scrubbed) slab extents
        // Active in the large allocator, so `active_slabs` already counts
        // claimed + parked frames — the same coverage the doctor derives
        // from `slabs + reservoir_slabs`.
        let slab_frames: usize = shards.iter().map(|s| s.active_slabs).sum();
        let live_large: u64 = shards.iter().map(|s| s.live_large_bytes).sum();
        let max_end = shards.iter().map(|s| s.max_extent_end).max().filter(|&e| e > 0);
        let heap_used = crate::observe::heap_used_bytes(max_end, self.layout.heap_base);
        let covered = crate::observe::covered_bytes(slab_frames, live_large);
        let (cap, live) = arenas
            .iter()
            .flat_map(|a| &a.classes)
            .fold((0usize, 0usize), |(c, l), g| (c + g.capacity_blocks, l + g.live_blocks));
        TimelineSample {
            seq: 0, // assigned by TimelineSampler::record
            ns,
            heap_used_bytes: heap_used,
            covered_bytes: covered,
            external_frag: crate::observe::external_fragmentation(heap_used, covered),
            slab_utilization: crate::observe::utilization(live, cap),
            mapped_bytes: shards.iter().map(|s| s.mapped_bytes).sum(),
            live_bytes: self.live_bytes.load(Ordering::Relaxed) as u64,
            booklog_live: shards.iter().map(|s| s.booklog_live).sum(),
            booklog_dead: shards.iter().map(|s| s.booklog_dead).sum(),
            wal_appends: self.metrics.counter(Counter::WalAppends),
            shards,
            arenas,
            window: Default::default(),
        }
    }
}

impl std::fmt::Debug for NvInner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NvInner")
            .field("cfg", &self.cfg.tag())
            .field("arenas", &self.arenas.len())
            .finish_non_exhaustive()
    }
}

/// The NVAlloc allocator handle (clone freely; all clones share state).
#[derive(Debug, Clone)]
pub struct NvAllocator(pub(crate) Arc<NvInner>);

impl NvAllocator {
    /// Format `pool` and create a fresh allocator.
    ///
    /// # Errors
    /// [`PmError::OutOfMemory`] if the pool is too small for the
    /// configured metadata regions plus one heap region.
    pub fn create(pool: Arc<PmemPool>, cfg: NvConfig) -> PmResult<NvAllocator> {
        // `effective` folds the persisted sampling period from the pool
        // header, but a *fresh* format must use the requested one, not
        // whatever a stale image left at word 24.
        let want_prof = cfg.profile_sample_bytes;
        let mut cfg = Self::effective(cfg, &pool);
        cfg.profile_sample_bytes = want_prof;
        let layout = Layout::compute(&cfg, pool.size())?;
        let mut t = pool.register_thread();

        // Zero the metadata area. The backing words are already zero, so
        // this re-states durable content: tell the sanitizer no flush is
        // owed for it (it is not an ordering-relevant store sequence).
        pool.fill_bytes(0, layout.heap_base as usize, 0);
        pool.pmsan_mark_persisted(0, layout.heap_base as usize);

        let geoms = GeometryTable::new(cfg.stripes_for(cfg.interleave_bitmap));
        let rtree = Arc::new(RTree::new());
        let mut large_cfg = layout.large_config(&cfg);
        large_cfg.slow_gc_threshold = ((pool.size() as f64 * cfg.usage_pmem) as usize).max(4096);
        let large = ShardedLarge::new(&pool, large_cfg, layout.large_shards, &rtree);

        let arenas: Vec<Arc<Arena>> = (0..cfg.arenas)
            .map(|i| {
                let wal_base =
                    layout.wal_base + (i * WalRegion::region_bytes(layout.wal_micro_count)) as u64;
                Arc::new(Arena::create(
                    &pool,
                    i as u32,
                    layout.arena_flags + (i * 64) as u64,
                    wal_base,
                    layout.wal_micro_count,
                ))
            })
            .collect();
        for a in &arenas {
            a.set_state(&pool, &mut t, arena_state::RUNNING);
        }

        // Pool header last (commit point of the format).
        pool.write_u64(8, cfg.arenas as u64);
        pool.write_u64(16, cfg.roots as u64);
        pool.write_u64(24, cfg.profile_sample_bytes);
        pool.persist_u64(&mut t, 0, POOL_MAGIC, FlushKind::Meta);

        let metrics = CoreMetrics::new(cfg.telemetry);
        let tracer = cfg.trace.then(|| Arc::new(TraceRecorder::new(cfg.trace_events_per_thread)));
        let slab_gates = SlabGates::new(pool.size());
        let observe = (cfg.timeline_interval_ns > 0).then(|| {
            Arc::new(TimelineSampler::new(cfg.timeline_interval_ns, cfg.timeline_capacity))
        });
        let service = cfg.service.then(|| ServiceState::new(cfg.service_tick_ns));
        // The sidelog region sits wholly below the heap (zeroed by the
        // format pass above alongside every other metadata region).
        debug_assert!(layout.prof_base + layout.prof_bytes as u64 <= layout.heap_base);
        let prof = (cfg.profile_sample_bytes > 0).then(|| {
            Arc::new(crate::prof::Prof::new(cfg.profile_sample_bytes, layout.prof_base, cfg.arenas))
        });
        let alloc = NvAllocator(Arc::new(NvInner {
            pool,
            cfg,
            geoms,
            layout,
            arenas,
            large,
            rtree,
            live_bytes: AtomicUsize::new(0),
            wal_seq: AtomicU64::new(1),
            metrics,
            tracer,
            slab_gates,
            observe,
            service,
            prof,
        }));
        alloc.maybe_spawn_service();
        Ok(alloc)
    }

    /// Start the dedicated service thread — wall-clock
    /// ([`LatencyMode::Sleep`]) pools only. Virtual-clock and latency-off
    /// pools keep the epoch tick on the deterministic cooperative path
    /// (operation boundaries + explicit [`NvAllocator::service_step`]).
    pub(crate) fn maybe_spawn_service(&self) {
        if self.0.service.is_some() && self.0.pool.model().mode() == LatencyMode::Sleep {
            crate::service::spawn(&self.0);
        }
    }

    /// Run one service epoch tick synchronously on the calling thread,
    /// regardless of clock mode or tick schedule, and return the number
    /// of queued requests completed. This is the explicit test pump of
    /// the determinism contract (see [`crate::service`]): crash-matrix
    /// and pmsan suites step the service at chosen points instead of
    /// racing a background thread. No-op returning 0 when the service
    /// is off.
    pub fn service_step(&self) -> u64 {
        let mut t = self.0.pool.register_thread();
        crate::service::service_step(&self.0, &mut t)
    }

    /// Recover an allocator from an existing (possibly crashed) pool image.
    /// `cfg` must match the configuration the pool was created with.
    ///
    /// # Errors
    /// [`PmError::Corrupt`] if the pool was never formatted.
    pub fn recover(pool: Arc<PmemPool>, cfg: NvConfig) -> PmResult<(NvAllocator, RecoveryReport)> {
        crate::recovery::recover(pool, cfg)
    }

    /// Adjust the configuration for the platform (eADR auto-disables
    /// interleaving, §6.7) and clamp fields.
    pub(crate) fn effective(mut cfg: NvConfig, pool: &PmemPool) -> NvConfig {
        if cfg.auto_eadr && pool.model().pmem_mode() == PmemMode::Eadr {
            cfg.interleave_bitmap = false;
            cfg.interleave_tcache = false;
            cfg.interleave_wal = false;
            cfg.interleave_booklog = false;
        }
        cfg.arenas = cfg.arenas.max(1);
        cfg.stripes = cfg.stripes.max(1);
        // The sanitizer lives in the pool; the allocator-side knob just
        // declares intent. Reflect the pool's reality so `config()` and
        // the config log never disagree with what is actually running.
        cfg.pmsan = pool.pmsan_enabled();
        // The sampling period is part of the pool layout (it sizes the
        // provenance-sidelog region), so on a formatted pool the header's
        // word is authoritative — recover and the offline doctor must see
        // the geometry the pool was created with.
        if pool.read_u64(0) == POOL_MAGIC {
            cfg.profile_sample_bytes = pool.read_u64(24);
        }
        cfg
    }

    /// The effective configuration (after platform adjustment).
    pub fn config(&self) -> &NvConfig {
        &self.0.cfg
    }

    /// Slab-occupancy histogram across all arenas (Fig. 15b). Drains any
    /// deferred cross-arena frees first so the histogram reflects them.
    pub fn slab_utilization(&self, bins: &[f64]) -> SlabUtilization {
        let mut t = self.0.pool.register_thread();
        let mut counts = vec![0usize; bins.len() + 1];
        for a in &self.0.arenas {
            let mut inner = a.inner.lock();
            self.0.drain_remote(&mut t, a, &mut inner);
            for (i, c) in inner.occupancy_histogram(bins).into_iter().enumerate() {
                counts[i] += c;
            }
        }
        SlabUtilization { bins: bins.to_vec(), counts }
    }

    /// Booklog GC statistics, summed across shards (None when the
    /// booklog is disabled).
    pub fn booklog_stats(&self) -> Option<crate::booklog::BookLogStats> {
        self.0.large.booklog_stats()
    }

    /// Effective large-shard count (after layout clamping).
    pub fn large_shards(&self) -> usize {
        self.0.large.shard_count()
    }

    /// Enumerate every live allocation as `(offset, size)` — the
    /// internal-collection interface (PMDK's `POBJ_FIRST`/`POBJ_NEXT`
    /// analogue, §7). Available in every variant; with
    /// [`Variant::Internal`] it is the primary way references are kept.
    pub fn objects(&self) -> Vec<(PmOffset, usize)> {
        let pool = &self.0.pool;
        let mut out = Vec::new();
        for a in &self.0.arenas {
            let inner = a.inner.lock();
            for vs in inner.slabs.values() {
                let bm = vs.pbitmap(&self.0.geoms);
                let bs = vs.block_size();
                for i in 0..vs.nblocks {
                    if bm.get(pool, i) {
                        out.push((vs.block_addr(i), bs));
                    }
                }
                if let Some(m) = &vs.morph {
                    let old_bs = crate::size_class::class_size(m.old_class);
                    for e in m.index.iter().filter(|e| e.allocated) {
                        let addr =
                            vs.off + (m.old_data_offset + e.old_idx as usize * old_bs) as u64;
                        out.push((addr, old_bs));
                    }
                }
            }
        }
        for (id, off, is_slab) in self.0.large.active_extents() {
            if !is_slab {
                if let Some(v) = self.0.large.veh(id) {
                    out.push((off, v.size));
                }
            }
        }
        out
    }

    /// Usable size of the live allocation starting exactly at `addr`: the
    /// granted capacity — its size class, its morph-old class for a block
    /// that predates a slab morph, or its (page-rounded) extent size.
    /// `None` when `addr` is not the base of a live allocation. This is
    /// what the `GlobalAlloc` front end reports as `nv_usable_size` and
    /// uses to bound realloc's copy.
    pub fn usable_size(&self, addr: PmOffset) -> Option<usize> {
        match Owner::unpack(self.0.rtree.lookup(addr)?) {
            Owner::Slab { slab, arena } => {
                let a = self.0.arenas.get(arena as usize)?;
                let ai = a.inner.lock();
                if morph::find_old_block(&ai, slab, addr).is_some() {
                    return ai.slabs.get(&slab)?.morph.as_ref().map(|m| class_size(m.old_class));
                }
                let vs = ai.slabs.get(&slab)?;
                vs.block_index(addr).filter(|&i| vs.is_taken(i)).map(|_| class_size(vs.class))
            }
            Owner::Extent { veh } => self.0.large.veh(veh).map(|v| v.size),
        }
    }

    /// Force a decay pass on every large shard's free lists.
    pub fn drain_free_lists(&self) {
        let mut t = self.0.pool.register_thread();
        let _ = self.0.large.drain_free_lists(&self.0.pool, &mut t);
    }

    /// The flight recorder, when `NvConfig::trace` is on.
    pub fn trace_recorder(&self) -> Option<&Arc<TraceRecorder>> {
        self.0.tracer.as_ref()
    }

    /// The timeline sampler, when `NvConfig::timeline` is on.
    pub fn timeline_sampler(&self) -> Option<&Arc<TimelineSampler>> {
        self.0.observe.as_ref()
    }

    /// The sampled heap profiler, when `NvConfig::profiling` is on.
    pub fn profiler(&self) -> Option<&Arc<crate::prof::Prof>> {
        self.0.prof.as_ref()
    }

    /// Resident timeline samples, oldest first (empty when the sampler
    /// is off or no tick has fired yet).
    pub fn timeline_samples(&self) -> Vec<TimelineSample> {
        self.0.observe.as_ref().map(|o| o.samples()).unwrap_or_default()
    }

    /// Collect one out-of-band sample of the heap's *current* state,
    /// independent of the sampler (works with the timeline off; the
    /// windowed latency fields stay zero and the sample is not recorded
    /// into the ring). This is what the doctor-equivalence test compares
    /// against the offline audit on a quiesced heap.
    pub fn timeline_sample_now(&self) -> TimelineSample {
        self.0.collect_sample(0)
    }
}

impl PmAllocator for NvAllocator {
    fn name(&self) -> String {
        self.0.cfg.tag()
    }

    fn pool(&self) -> &Arc<PmemPool> {
        &self.0.pool
    }

    fn thread(&self) -> Box<dyn AllocThread> {
        // Least-loaded arena assignment (§4.2).
        let arena = self
            .0
            .arenas
            .iter()
            .min_by_key(|a| a.threads.load(Ordering::Relaxed))
            .expect("at least one arena")
            .clone();
        arena.threads.fetch_add(1, Ordering::Relaxed);
        let micro_idx = arena.wal_next_micro.fetch_add(1, Ordering::Relaxed);
        let wal = arena.wal.micro(micro_idx, self.0.cfg.stripes_for(self.0.cfg.interleave_wal));
        let tc_stripes = if self.0.cfg.interleave_tcache { self.0.geoms.stripes() } else { 1 };
        let mut pm = self.0.pool.register_thread();
        if let Some(rec) = &self.0.tracer {
            pm.set_tracer(rec.register());
        }
        Box::new(NvThread {
            inner: Arc::clone(&self.0),
            pm,
            tcache: TCache::new(tc_stripes, self.0.cfg.tcache_cap),
            arena,
            wal,
            hists: OpHistograms::default(),
            prof_acc: 0,
        })
    }

    fn root_offset(&self, i: usize) -> PmOffset {
        assert!(i < self.0.layout.roots_count, "root {i} out of range");
        self.0.layout.roots + (i * 8) as u64
    }

    fn root_count(&self) -> usize {
        self.0.layout.roots_count
    }

    fn heap_mapped_bytes(&self) -> usize {
        self.0.large.mapped_bytes()
    }

    fn peak_mapped_bytes(&self) -> usize {
        self.0.large.peak_mapped()
    }

    fn live_bytes(&self) -> usize {
        self.0.live_bytes.load(Ordering::Relaxed)
    }

    fn metrics(&self) -> MetricsSnapshot {
        let mut s = self.0.metrics.snapshot();
        if self.0.metrics.enabled() {
            // Booklog and extent counters live under the shard locks;
            // merge the per-shard sums into the snapshot here.
            if let Some(b) = self.0.large.booklog_stats() {
                s.booklog_appends = b.appends;
                s.booklog_tombstones = b.tombstones;
                s.booklog_fast_gc_runs = b.fast_gc_runs;
                s.booklog_fast_gc_reaps = b.fast_gc_chunks;
                s.booklog_slow_gc_runs = b.slow_gc_runs;
                s.booklog_slow_gc_copied = b.slow_gc_copied;
                s.booklog_alt_flips = b.alt_flips;
            }
            let ls = self.0.large.stats();
            s.extent_best_fit = ls.best_fit_hits;
            s.extent_splits = ls.splits;
            s.extent_coalesces = ls.coalesces;
            s.decay_epochs = ls.decay_epochs;
            s.hists.hists[OpKind::SlowGc.index()].merge(&ls.slow_gc_hist);
            let (acq, cont) = self.0.large.lock_counts();
            s.large_lock_acquires = acq.iter().sum();
            s.large_lock_contended = cont.iter().sum();
            s.large_shard_acquires = acq;
            s.large_shard_contended = cont;
            // Shard-mutex wait/hold times accumulate inside ShardedLarge
            // (the guards can't reach CoreMetrics); fold them in here.
            let (wait, hold) = self.0.large.lock_times();
            s.lock_wait_ns += wait;
            s.lock_hold_ns += hold;
            let (wh, hh) = self.0.large.lock_time_hists();
            s.lock_wait_hist.merge(&wh);
            s.lock_hold_hist.merge(&hh);
        }
        // Trace accounting is independent of the telemetry toggle: the
        // flight recorder can run with counters off.
        if let Some(rec) = &self.0.tracer {
            s.trace_events = rec.events();
            s.trace_dropped = rec.dropped();
        }
        // So is pmsan: the sanitizer lives in the pool and its counters
        // are the ground truth for the CI zero-violation gates.
        if let Some(c) = self.0.pool.pmsan_counts() {
            s.pmsan_store_unfenced = c[0];
            s.pmsan_empty_fence = c[1];
            s.pmsan_redundant_flush = c[2];
            s.pmsan_shutdown_dirty = c[3];
            s.pmsan_violations = c.iter().sum();
        }
        // Profiler counters live in `Prof`'s own atomics (it is config-
        // gated and lock-disciplined separately from CoreMetrics).
        if let Some(p) = &self.0.prof {
            let [samples, appends, frees, compactions, dropped] = p.counters();
            s.prof_samples = samples;
            s.prof_appends = appends;
            s.prof_frees = frees;
            s.prof_compactions = compactions;
            s.prof_dropped = dropped;
        }
        s
    }

    fn trace_json(&self) -> Option<String> {
        self.0.tracer.as_ref().map(|r| match &self.0.observe {
            // Merge the timeline's counter tracks into the event stream so
            // the fragmentation/heap/queue curves render above the ops.
            Some(o) => r.chrome_json_with(&o.chrome_counter_events()),
            None => r.chrome_json(),
        })
    }

    fn timeline_json(&self) -> Option<String> {
        self.0.observe.as_ref().map(|o| o.json_lines())
    }

    fn profile_json(&self) -> Option<String> {
        self.0.prof.as_ref().map(|p| p.json())
    }

    fn profile_collapsed(&self) -> Option<String> {
        self.0.prof.as_ref().map(|p| p.collapsed())
    }

    fn quiesce(&self) {
        let pool = &self.0.pool;
        let mut t = pool.register_thread();
        for a in &self.0.arenas {
            // An arena whose threads have all exited has no owner left to
            // drain it on the malloc slow path; quiesce is the foreign
            // drain of last resort for those stranded queues, and counts
            // as such.
            let stranded = a.threads.load(Ordering::Relaxed) == 0 && !a.remote.is_empty();
            let mut inner = a.inner.lock();
            if self.0.drain_remote(&mut t, a, &mut inner) > 0 && stranded {
                self.0.metrics.bump(Counter::RemoteDrainForeign);
            }
            // Pending service requests must not outlive a quiesce either:
            // execute them now so the heap is truly idle afterwards.
            crate::service::drain_requests(&self.0, &mut t, a, &mut inner);
        }
        // Draining is volatile, but returning the last block of a slab
        // can retire the frame (persistent header scrub); order any such
        // flushes now. No-op if nothing was flushed.
        pool.fence_pending(&mut t);
        // The heap is idle: capture the retained-set leak report — every
        // profiled site still holding live bytes.
        if let Some(p) = &self.0.prof {
            p.mark_retained();
        }
    }

    fn exit(&self) {
        let pool = &self.0.pool;
        let mut t = pool.register_thread();
        // Stop the dedicated service thread (if any) before the sweep:
        // its epoch ticks must not interleave with the shutdown flushes.
        if let Some(svc) = &self.0.service {
            svc.stop();
        }
        // Flush everything recovery reads: slab headers + bitmaps + index
        // tables (the GC variant never flushed them at runtime), and the
        // root region. These are writeback sweeps — re-flushing lines the
        // LOG variant already persisted is the point, not a bug.
        for a in &self.0.arenas {
            let mut inner = a.inner.lock();
            self.0.drain_remote(&mut t, a, &mut inner);
            // Execute any still-queued carves/retires so no extent
            // release is left pending across an orderly shutdown.
            crate::service::drain_requests(&self.0, &mut t, a, &mut inner);
            for vs in inner.slabs.values() {
                pool.flush_writeback(&mut t, vs.off, vs.data_offset, FlushKind::Meta);
            }
            a.set_state(pool, &mut t, arena_state::NORMAL_SHUTDOWN);
        }
        pool.flush_writeback(
            &mut t,
            self.0.layout.roots,
            self.0.layout.roots_count * 8,
            FlushKind::Meta,
        );
        pool.fence(&mut t);
        // With the sanitizer on, audit the committed-reachable metadata:
        // after the sweep above, every line recovery depends on — the
        // whole metadata region below heap_base plus each live slab's
        // header/bitmap/index prefix — must be persisted. Violations are
        // recorded as `ShutdownDirty` with this thread's context.
        if pool.pmsan_enabled() {
            pool.pmsan_audit_range(&t, 0, self.0.layout.heap_base as usize);
            for a in &self.0.arenas {
                let inner = a.inner.lock();
                for vs in inner.slabs.values() {
                    pool.pmsan_audit_range(&t, vs.off, vs.data_offset);
                }
            }
        }
    }
}

/// Measures one arena-lock critical section. The caller times the
/// acquire and hands over the wait; the hold runs from construction to
/// drop, when both are recorded in the telemetry histograms and (if a
/// tracer is attached) emitted as a `LockAcquire` event stamped at the
/// acquisition's virtual-clock time. Wait/hold are wall-clock
/// nanoseconds — lock contention is a host-side phenomenon the modelled
/// PM clock cannot see — so recording never perturbs modelled results.
struct LockProbe<'a> {
    metrics: &'a CoreMetrics,
    tracer: Option<TracerHandle>,
    at_ns: u64,
    wait_ns: u64,
    held: Instant,
}

impl<'a> LockProbe<'a> {
    fn new(metrics: &'a CoreMetrics, pm: &PmThread, wait_ns: u64) -> LockProbe<'a> {
        LockProbe {
            metrics,
            tracer: pm.tracer().cloned(),
            at_ns: pm.virtual_ns(),
            wait_ns,
            held: Instant::now(),
        }
    }
}

impl Drop for LockProbe<'_> {
    fn drop(&mut self) {
        let hold_ns = self.held.elapsed().as_nanos() as u64;
        self.metrics.record_lock(self.wait_ns, hold_ns);
        if let Some(t) = &self.tracer {
            t.emit(self.at_ns, EventKind::LockAcquire.code(), self.wait_ns, hold_ns);
        }
    }
}

/// A per-thread NVAlloc handle.
#[derive(Debug)]
pub struct NvThread {
    inner: Arc<NvInner>,
    pm: PmThread,
    tcache: TCache,
    arena: Arc<Arena>,
    wal: MicroWal,
    /// Thread-local op-latency histograms; merged into the shared
    /// registry when the thread drops.
    hists: OpHistograms,
    /// Heap-profiler byte countdown ([`crate::prof`]): granted bytes
    /// accumulated since the last sample crossing.
    prof_acc: u64,
}

impl NvThread {
    fn variant(&self) -> Variant {
        self.inner.cfg.variant
    }

    /// Strongly consistent variants persist metadata and destination slots
    /// on every operation.
    fn strong(&self) -> bool {
        matches!(self.variant(), Variant::Log | Variant::Internal)
    }

    /// Only NVAlloc-LOG needs WAL entries for small allocations; the
    /// internal-collection variant's objects are enumerable, so nothing can
    /// leak (§4.1 / §7 "allocators using internal collection").
    fn use_small_wal(&self) -> bool {
        self.variant() == Variant::Log
    }

    /// Large allocations use the WAL in the LOG and GC variants (Table 2);
    /// the internal-collection variant relies on the booklog alone.
    fn use_large_wal(&self) -> bool {
        self.variant() != Variant::Internal
    }

    fn next_seq(&self) -> u64 {
        self.inner.wal_seq.fetch_add(1, Ordering::Relaxed)
    }

    /// Timeline hook, run after an operation completes (no locks held).
    /// One relaxed load + branch when the clock hasn't crossed the next
    /// boundary; the (single, per boundary) claim winner collects and
    /// records a sample. Driven by the virtual clock only, so sampled
    /// single-threaded runs are deterministic.
    #[inline]
    fn timeline_tick(&self) {
        let Some(obs) = &self.inner.observe else { return };
        let now = self.pm.virtual_ns();
        if !obs.due(now) {
            return;
        }
        let Some(stamp) = obs.claim(now) else { return };
        let sample = self.inner.collect_sample(stamp);
        // Window base: the shared registry (threads that already merged)
        // plus this thread's local histograms. Other live threads' local
        // samples merge when they drop — single-threaded runs see every
        // op; multi-threaded windows are best-effort like any cross-
        // thread cut.
        let mut cum = self.inner.metrics.hists();
        cum.merge(&self.hists);
        obs.record(sample, &cum);
    }

    /// Cooperative service hook, run after an operation completes (no
    /// locks held) and — deliberately — after the op's latency was
    /// already recorded, so epoch-tick work never lands in the op
    /// histograms. One relaxed load + branch when the virtual clock
    /// hasn't crossed the next tick boundary; the single claim winner
    /// runs [`crate::service::service_step`] inline. Stands down
    /// entirely when a dedicated service thread paces the ticks.
    #[inline]
    fn service_tick(&mut self) {
        let Some(svc) = &self.inner.service else { return };
        if svc.threaded() {
            return;
        }
        let now = self.pm.virtual_ns();
        if !svc.due(now) || !svc.claim(now) {
            return;
        }
        crate::service::service_step(&self.inner, &mut self.pm);
    }

    /// Profiler allocation hook: advance the byte countdown and, on a
    /// sample crossing, record the site + append the provenance record.
    /// Must run *before* the allocation's persistent commit (dest
    /// install) — see [`crate::prof`] for the crash argument. One
    /// `Option` check when profiling is off.
    #[inline]
    fn prof_alloc_hook(&mut self, addr: PmOffset, granted: usize) {
        let Some(p) = self.inner.prof.clone() else { return };
        let crossings = p.crossings(&mut self.prof_acc, granted);
        if crossings == 0 {
            return;
        }
        p.record_alloc(&self.inner.pool, &mut self.pm, self.arena.id, addr, granted, crossings);
    }

    /// Profiler free hook: append the FREE provenance record if `addr`
    /// was sampled. Must run *after* the free's persistent commit and
    /// *before* the block can be reused (tcache/remote push).
    #[inline]
    fn prof_free_hook(&mut self, addr: PmOffset) {
        let Some(p) = self.inner.prof.clone() else { return };
        p.record_free(&self.inner.pool, &mut self.pm, addr);
    }

    /// Append one entry to this thread's micro-WAL with a fresh sequence
    /// number, and count it.
    fn wal_append(&mut self, op: WalOp, addr: PmOffset, dest: PmOffset, size: u32) {
        let inner = Arc::clone(&self.inner);
        let seq = self.next_seq();
        self.wal.append(&inner.pool, &mut self.pm, op, addr, dest, size, seq);
        inner.metrics.bump(Counter::WalAppends);
        self.pm.trace(EventKind::WalAppend.code(), addr, seq);
    }

    /// Persist or plainly write the 8-byte destination slot, depending on
    /// the consistency variant and allocation size class. Attributed as
    /// `Data`: the destination is an application-owned location (§4.1), so
    /// its flush is not allocator heap-metadata traffic.
    fn write_dest(&mut self, dest: PmOffset, value: u64, persist: bool) {
        let pool = Arc::clone(&self.inner.pool);
        if persist {
            pool.persist_u64(&mut self.pm, dest, value, FlushKind::Data);
            // In the WAL-covered variants the persisted dest install *is*
            // the commit record of the preceding append (§4.3).
            if self.use_large_wal() {
                self.pm.trace(EventKind::WalCommit.code(), value, dest);
            }
        } else {
            pool.write_u64(dest, value);
            pool.charge_store(&mut self.pm, dest, 8);
        }
    }

    fn check_dest(&self, dest: PmOffset) -> PmResult<()> {
        if !dest.is_multiple_of(8)
            || (dest as usize).checked_add(8).is_none_or(|end| end > self.inner.pool.size())
        {
            return Err(PmError::InvalidRequest("dest must be an 8-byte-aligned pool slot"));
        }
        Ok(())
    }

    // ----- small path -----

    fn malloc_small(&mut self, class: ClassId, size: usize, dest: PmOffset) -> PmResult<PmOffset> {
        let rot0 = self.tcache.rotations();
        let addr = match self.tcache.pop(class) {
            Some(a) => {
                self.inner.metrics.tcache_event(class, TcacheEvent::Hit);
                a
            }
            None => {
                self.inner.metrics.tcache_event(class, TcacheEvent::Miss);
                self.refill(class)?;
                self.tcache.pop(class).ok_or(PmError::OutOfMemory { requested: size })?
            }
        };
        if self.pm.tracing() && self.tcache.rotations() > rot0 {
            self.pm.trace(EventKind::CursorRotate.code(), class as u64, 0);
        }
        let pool = Arc::clone(&self.inner.pool);
        let strong = self.strong();
        if self.use_small_wal() {
            self.wal_append(WalOp::Alloc, addr, dest, size as u32);
        }
        // Persist the allocation in the slab bitmap.
        let slab_off = addr & !(SLAB_SIZE as u64 - 1);
        let h = SlabHeader::read(&pool, slab_off).ok_or(PmError::Corrupt("missing slab header"))?;
        let g = self.inner.geoms.of(class);
        let idx = ((addr - slab_off - h.data_offset as u64) / g.block_size as u64) as usize;
        let bm = PmBitmap::new(slab_off + g.bitmap_off as u64, g.bitmap);
        if strong {
            bm.set_persist(&pool, &mut self.pm, idx);
        } else {
            bm.write_volatile(&pool, idx, true);
        }
        // Provenance before commit: a survivor must have its record.
        self.prof_alloc_hook(addr, class_size(class));
        // Install the user pointer (the commit record).
        self.write_dest(dest, addr, strong);
        self.inner.live_bytes.fetch_add(class_size(class), Ordering::Relaxed);
        Ok(addr)
    }

    /// Refill the tcache for `class`: remote-free drain → freelist slabs →
    /// slab morphing → a slab frame from the reservoir or the large
    /// allocator (§4.2).
    fn refill(&mut self, class: ClassId) -> PmResult<()> {
        // A refill is already a slow path: opportunistically help other
        // arenas clear their remote-free queues before taking our own
        // lock (the ROADMAP drain hook). try_lock only — never blocks.
        self.drain_idle_arenas();
        let inner = Arc::clone(&self.inner);
        let pool = &inner.pool;
        inner.metrics.tcache_event(class, TcacheEvent::Refill);
        let arena = Arc::clone(&self.arena);
        let wait = Instant::now();
        let mut ai = arena.inner.lock();
        let _probe = LockProbe::new(&inner.metrics, &self.pm, wait.elapsed().as_nanos() as u64);
        // Drain deferred cross-arena frees first: remote-freed blocks are
        // the cheapest refill source, and draining on every refill keeps
        // the queue bounded by the refill cadence.
        inner.drain_remote(&mut self.pm, &arena, &mut ai);
        let got = ai.fill_tcache(&inner.geoms, class, &mut self.tcache);
        if got > 0 {
            self.pm.trace(EventKind::TcacheRefill.code(), class as u64, got as u64);
            return Ok(());
        }
        if inner.cfg.morphing {
            let span = self.pm.span();
            let morphed = morph::try_morph(
                pool,
                &mut self.pm,
                &mut ai,
                &inner.geoms,
                inner.cfg.su_threshold,
                class,
                Some(&inner.slab_gates),
                &inner.metrics,
            )
            .is_some();
            if morphed {
                self.hists.record(OpKind::Morph, span.elapsed_ns(&self.pm));
                let got = ai.fill_tcache(&inner.geoms, class, &mut self.tcache);
                if got > 0 {
                    self.pm.trace(EventKind::TcacheRefill.code(), class as u64, got as u64);
                    return Ok(());
                }
            }
        }
        // New slab frame (64 KB aligned): reservoir first, then the
        // large allocator.
        let (veh, off) = self.acquire_slab_frame(&inner, &mut ai)?;
        inner.rtree.insert_range(
            off,
            SLAB_SIZE,
            Owner::Slab { slab: off, arena: self.arena.id }.pack(),
        );
        let vs = VSlab::create(pool, &mut self.pm, off, class, veh, inner.geoms.of(class), true);
        ai.add_slab(vs);
        let got = ai.fill_tcache(&inner.geoms, class, &mut self.tcache);
        self.pm.trace(EventKind::TcacheRefill.code(), class as u64, got as u64);
        Ok(())
    }

    /// Pop a pre-carved slab frame from the arena's reservoir, refilling
    /// the reservoir with one batched carve on a miss so a shard mutex
    /// is touched once per `cfg.slab_reservoir` frames. Reserved frames
    /// have scrubbed headers and no rtree range: they are invisible to
    /// frees, and a crash image reclaims them as leaked slab extents.
    /// Carving probes the arena's hint shard first and falls back
    /// round-robin; the whole batch stays in one shard.
    fn acquire_slab_frame(
        &mut self,
        inner: &NvInner,
        ai: &mut crate::arena::ArenaInner,
    ) -> PmResult<(VehId, PmOffset)> {
        let pool = &inner.pool;
        let batch = inner.cfg.slab_reservoir;
        if batch > 0 {
            if let Some(frame) = ai.reservoir.pop() {
                inner.metrics.bump(Counter::ReservoirHits);
                // Low-water restock: below half the batch, ask the
                // service to carve the next frame off the worker's
                // critical path, so the reservoir refills without this
                // thread touching a shard mutex on a future refill.
                if inner.service.is_some() && ai.reservoir.len() * 2 < batch {
                    self.arena.service.push(ServiceRequest::Carve);
                    inner.metrics.bump(Counter::ServiceRequests);
                }
                return Ok(frame);
            }
            inner.metrics.bump(Counter::ReservoirMisses);
        }
        let mut oom = PmError::OutOfMemory { requested: SLAB_SIZE };
        for s in inner.large.shard_order(self.arena.id as usize) {
            let mut large = inner.large.lock_traced(s, &self.pm);
            let first = match large.alloc_aligned(pool, &mut self.pm, SLAB_SIZE, SLAB_SIZE, true) {
                Ok(f) => f,
                Err(e @ PmError::OutOfMemory { .. }) => {
                    oom = e;
                    continue;
                }
                Err(e) => return Err(e),
            };
            inner.metrics.bump(Counter::SlabAllocs);
            for _ in 1..batch {
                let Ok((veh, off)) =
                    large.alloc_aligned(pool, &mut self.pm, SLAB_SIZE, SLAB_SIZE, true)
                else {
                    break; // partial batch: serve what we got
                };
                inner.metrics.bump(Counter::SlabAllocs);
                pool.persist_u64(&mut self.pm, off, 0, FlushKind::Meta);
                inner.rtree.remove_range(off, SLAB_SIZE);
                ai.reservoir.push((veh, off));
            }
            return Ok(first);
        }
        Err(oom)
    }

    fn free_small(
        &mut self,
        slab_off: PmOffset,
        arena_id: u32,
        addr: PmOffset,
        dest: PmOffset,
    ) -> PmResult<()> {
        if let Some(r) = self.try_fast_free_small(slab_off, arena_id, addr, dest) {
            return r;
        }
        self.free_small_locked(slab_off, arena_id, addr, dest)
    }

    /// Lock-free free fast path. The common case — a well-formed free of a
    /// regular (non-morphing) slab's block that fits the local tcache or
    /// targets a remote arena — completes every persistent transition (WAL
    /// append, atomic bitmap clear, destination zeroing) without taking a
    /// single mutex; only the volatile return-to-slab is deferred (own
    /// tcache, or the owner arena's remote-free queue). Returns `None` to
    /// divert to the locked slow path.
    fn try_fast_free_small(
        &mut self,
        slab_off: PmOffset,
        arena_id: u32,
        addr: PmOffset,
        dest: PmOffset,
    ) -> Option<PmResult<()>> {
        let inner = Arc::clone(&self.inner);
        if !inner.slab_gates.try_pin(slab_off) {
            return None; // layout change in flight: take the locked path
        }
        let out = self.fast_free_pinned(&inner, slab_off, arena_id, addr, dest);
        inner.slab_gates.unpin(slab_off);
        out
    }

    /// Body of the lock-free free, executed while `slab_off`'s gate is
    /// pinned (so no morph or retire can change the slab's layout
    /// underneath it).
    fn fast_free_pinned(
        &mut self,
        inner: &NvInner,
        slab_off: PmOffset,
        arena_id: u32,
        addr: PmOffset,
        dest: PmOffset,
    ) -> Option<PmResult<()>> {
        let pool = &inner.pool;
        // Re-verify ownership now that the pin excludes layout changes:
        // the slab could have been retired and its frame reused between
        // the caller's rtree lookup and the pin.
        match inner.rtree.lookup(addr).map(Owner::unpack) {
            Some(Owner::Slab { slab, arena }) if slab == slab_off && arena == arena_id => {}
            _ => return Some(Err(PmError::NotAllocated)),
        }
        let h = SlabHeader::read(pool, slab_off)?;
        if h.flag != flag::NONE || h.is_morphed() {
            return None; // morphing slabs take the locked path (§5.2)
        }
        let class = h.class as usize;
        if class >= crate::size_class::NUM_CLASSES {
            return None;
        }
        let g = inner.geoms.of(class);
        let rel = addr.checked_sub(slab_off + h.data_offset as u64)?;
        if rel % g.block_size as u64 != 0 {
            return None;
        }
        let idx = (rel / g.block_size as u64) as usize;
        if idx >= g.nblocks_at(h.data_offset as usize) {
            return None;
        }
        let local = arena_id == self.arena.id;
        if local && self.tcache.is_full(class) {
            return None; // overflow: the block must return to its slab
        }
        let owner = if local {
            None
        } else {
            // Resolve the owner arena up front so nothing fails after the
            // persistent free below.
            Some(Arc::clone(inner.arenas.get(arena_id as usize)?))
        };
        let bm = PmBitmap::new(slab_off + g.bitmap_off as u64, g.bitmap);
        if !bm.get(pool, idx) {
            return Some(Err(PmError::NotAllocated));
        }
        let strong = self.strong();
        if self.use_small_wal() {
            self.wal_append(WalOp::Free, addr, dest, 0);
        }
        // The atomic word RMW arbitrates racing frees of the same block:
        // exactly one clearer observes the bit still set.
        let prev = if strong {
            bm.clear_persist_fetch(pool, &mut self.pm, idx)
        } else {
            bm.clear_volatile_fetch(pool, idx)
        };
        if !prev {
            return Some(Err(PmError::NotAllocated));
        }
        self.write_dest(dest, 0, strong);
        inner.live_bytes.fetch_sub(class_size(class), Ordering::Relaxed);
        // Provenance after the commit, before the block can be reused.
        self.prof_free_hook(addr);
        if local {
            let stripe = g.bitmap.stripe_of(idx);
            let pushed = self.tcache.push(class, addr, stripe);
            debug_assert!(pushed, "tcache checked non-full above");
            inner.metrics.bump(Counter::FreeFastLocal);
        } else {
            let arena = owner.expect("resolved above");
            arena.remote.push(RemoteFree { slab: slab_off, idx: idx as u32 });
            inner.metrics.bump(Counter::FreeRemote);
            self.pm.trace(EventKind::RemotePush.code(), addr, arena_id as u64);
        }
        Some(Ok(()))
    }

    /// Locked free slow path: tcache overflow, morphing slabs, and every
    /// ill-formed request diverted by the fast path.
    fn free_small_locked(
        &mut self,
        slab_off: PmOffset,
        arena_id: u32,
        addr: PmOffset,
        dest: PmOffset,
    ) -> PmResult<()> {
        let inner = Arc::clone(&self.inner);
        let pool = &inner.pool;
        let strong = self.strong();
        let arena =
            inner.arenas.get(arena_id as usize).ok_or(PmError::Corrupt("bad arena id in rtree"))?;
        let wait = Instant::now();
        let mut ai = arena.inner.lock();
        let _probe = LockProbe::new(&inner.metrics, &self.pm, wait.elapsed().as_nanos() as u64);
        inner.metrics.bump(Counter::FreeLocks);

        // Old-class block of a morphing slab? Released directly, bypassing
        // the tcache (§5.2).
        if morph::find_old_block(&ai, slab_off, addr).is_some() {
            let old_class =
                ai.slabs[&slab_off].morph.as_ref().expect("morph state present").old_class;
            if self.use_small_wal() {
                self.wal_append(WalOp::Free, addr, dest, 0);
            }
            morph::release_old_block(pool, &mut self.pm, &mut ai, slab_off, addr)?;
            self.write_dest(dest, 0, strong);
            inner.live_bytes.fetch_sub(class_size(old_class), Ordering::Relaxed);
            // Provenance after the commit (prof is a leaf lock; holding
            // the arena lock here is fine), before the slab can retire.
            self.prof_free_hook(addr);
            self.maybe_destroy_slab(arena, &mut ai, slab_off)?;
            return Ok(());
        }

        let vs = ai.slabs.get(&slab_off).ok_or(PmError::Corrupt("slab missing"))?;
        let class = vs.class;
        let idx = vs.block_index(addr).ok_or(PmError::NotAllocated)?;
        let g = inner.geoms.of(class);
        let bm = PmBitmap::new(slab_off + g.bitmap_off as u64, g.bitmap);
        if !bm.get(pool, idx) {
            return Err(PmError::NotAllocated);
        }
        if self.use_small_wal() {
            self.wal_append(WalOp::Free, addr, dest, 0);
        }
        if strong {
            bm.clear_persist(pool, &mut self.pm, idx);
        } else {
            bm.write_volatile(pool, idx, false);
        }
        self.write_dest(dest, 0, strong);
        inner.live_bytes.fetch_sub(class_size(class), Ordering::Relaxed);
        // Provenance after the commit, before the block can be reused.
        self.prof_free_hook(addr);

        // The freed block goes to *this* thread's tcache; when the tcache
        // is full it returns to its slab directly, bypassing the cache
        // (§4.2).
        let stripe = g.bitmap.stripe_of(idx);
        if !self.tcache.push(class, addr, stripe) {
            inner.metrics.tcache_event(class, TcacheEvent::Flush);
            self.pm.trace(EventKind::TcacheFlush.code(), class as u64, 1);
            if ai.return_block_to_slab(slab_off, idx) {
                self.maybe_destroy_slab(arena, &mut ai, slab_off)?;
            }
        }
        Ok(())
    }

    /// Destroy `slab_off` if it is completely free: unregister it and
    /// reserve or return its extent (or defer the extent release to the
    /// allocator service). Caller holds `arena`'s lock.
    fn maybe_destroy_slab(
        &mut self,
        arena: &Arena,
        ai: &mut crate::arena::ArenaInner,
        slab_off: PmOffset,
    ) -> PmResult<()> {
        self.inner.destroy_or_reserve(&mut self.pm, arena, ai, slab_off)
    }

    // ----- large path -----

    /// Opportunistically drain other arenas' remote-free queues from a
    /// malloc slow path. `try_lock` only — an arena whose owner is busy
    /// is skipped, so this never blocks and never inverts the lock
    /// order (the caller holds no locks).
    fn drain_idle_arenas(&mut self) {
        let inner = Arc::clone(&self.inner);
        for a in &inner.arenas {
            if a.id == self.arena.id || a.remote.is_empty() {
                continue;
            }
            let Some(mut ai) = a.inner.try_lock() else { continue };
            if inner.drain_remote(&mut self.pm, a, &mut ai) > 0 {
                inner.metrics.bump(Counter::RemoteDrainForeign);
            }
        }
    }

    fn malloc_large(&mut self, size: usize, dest: PmOffset) -> PmResult<PmOffset> {
        self.malloc_large_aligned(size, PAGE, dest)
    }

    fn malloc_large_aligned(
        &mut self,
        size: usize,
        align: usize,
        dest: PmOffset,
    ) -> PmResult<PmOffset> {
        // A large malloc is a slow path: run the remote-free drain hook
        // before taking any shard lock.
        self.drain_idle_arenas();
        let inner = Arc::clone(&self.inner);
        let pool = &inner.pool;
        // Reserve (volatile), then WAL, then persist the extent record,
        // then commit via the dest install — each crash window is covered
        // (§4.3/§4.4). Large allocations use the WAL in both variants
        // (Table 2). Shards are probed hint-first with round-robin
        // fallback on exhaustion; the whole reserve → WAL → commit
        // sequence stays under one shard guard, so a crash can never
        // interleave half-committed records from two shards.
        let mut oom = PmError::OutOfMemory { requested: size };
        for s in inner.large.shard_order(self.arena.id as usize) {
            let mut large = inner.large.lock_traced(s, &self.pm);
            let (veh, off) = match large.alloc_deferred_aligned(pool, &mut self.pm, size, align) {
                Ok(r) => r,
                Err(e @ PmError::OutOfMemory { .. }) => {
                    oom = e;
                    continue;
                }
                Err(e) => return Err(e),
            };
            if self.use_large_wal() {
                self.wal_append(WalOp::Alloc, off, dest, size as u32);
            }
            large.commit_extent(pool, &mut self.pm, veh)?;
            let actual = large.veh(veh).map(|v| v.size).unwrap_or(size);
            drop(large);
            // Provenance before the commit: the extent record is already
            // persisted, so the address cannot be re-granted elsewhere,
            // and a survivor must have its record before the install.
            self.prof_alloc_hook(off, actual);
            self.write_dest(dest, off, true);
            inner.live_bytes.fetch_add(actual, Ordering::Relaxed);
            return Ok(off);
        }
        Err(oom)
    }

    fn free_large(
        &mut self,
        veh: crate::large::VehId,
        addr: PmOffset,
        dest: PmOffset,
    ) -> PmResult<()> {
        let inner = Arc::clone(&self.inner);
        let pool = &inner.pool;
        // One critical section on the owning shard (routed by the id's
        // shard tag): validate, log, zero the destination, and free, all
        // under a single lock acquisition, so a racing free cannot
        // recycle the VEH between validation and release.
        inner.metrics.bump(Counter::FreeLocks);
        let mut large = inner.large.lock_veh_traced(veh, &self.pm).ok_or(PmError::NotAllocated)?;
        let v = large.veh(veh).ok_or(PmError::NotAllocated)?;
        if v.off != addr {
            return Err(PmError::NotAllocated);
        }
        let size = v.size;
        if self.use_large_wal() {
            self.wal_append(WalOp::Free, addr, dest, 0);
        }
        self.write_dest(dest, 0, true);
        // Provenance after the commit, before `free` returns the extent
        // to the shard's free lists (prof is a leaf lock; the shard
        // guard is still held, so the address cannot be re-granted
        // before the FREE record is fenced).
        self.prof_free_hook(addr);
        large.free(pool, &mut self.pm, veh)?;
        drop(large);
        inner.live_bytes.fetch_sub(size, Ordering::Relaxed);
        Ok(())
    }
}

impl AllocThread for NvThread {
    fn malloc_to(&mut self, size: usize, dest: PmOffset) -> PmResult<PmOffset> {
        self.check_dest(dest)?;
        if size == 0 {
            return Err(PmError::InvalidRequest("zero-size allocation"));
        }
        let span = self.pm.span();
        self.pm.trace(EventKind::MallocBegin.code(), size as u64, 0);
        let r = match size_to_class(size) {
            Some(class) => {
                let r = self.malloc_small(class, size, dest);
                if r.is_ok() {
                    self.hists.record(OpKind::MallocSmall, span.elapsed_ns(&self.pm));
                }
                r
            }
            None => {
                let r = self.malloc_large(size, dest);
                if r.is_ok() {
                    self.hists.record(OpKind::MallocLarge, span.elapsed_ns(&self.pm));
                }
                r
            }
        };
        self.pm.trace(EventKind::MallocEnd.code(), r.as_ref().map_or(0, |a| *a), 0);
        self.timeline_tick();
        self.service_tick();
        r
    }

    fn malloc_aligned_to(
        &mut self,
        size: usize,
        align: usize,
        dest: PmOffset,
    ) -> PmResult<PmOffset> {
        self.check_dest(dest)?;
        if size == 0 {
            return Err(PmError::InvalidRequest("zero-size allocation"));
        }
        if !align.is_power_of_two() {
            return Err(PmError::InvalidRequest("alignment must be a power of two"));
        }
        if align <= 8 {
            // Every block and extent base is at least 8-byte aligned.
            return self.malloc_to(size, dest);
        }
        // Oversize alignment: serve a naturally aligned extent. Aligning
        // to at least a page keeps one code path — any power of two
        // below it divides the page.
        let span = self.pm.span();
        self.pm.trace(EventKind::MallocBegin.code(), size as u64, 0);
        let r = self.malloc_large_aligned(size, align.max(PAGE), dest);
        if r.is_ok() {
            self.hists.record(OpKind::MallocLarge, span.elapsed_ns(&self.pm));
        }
        self.pm.trace(EventKind::MallocEnd.code(), r.as_ref().map_or(0, |a| *a), 0);
        self.timeline_tick();
        self.service_tick();
        r
    }

    fn free_from(&mut self, dest: PmOffset) -> PmResult<()> {
        self.check_dest(dest)?;
        let addr = self.inner.pool.read_u64(dest);
        if addr == 0 {
            return Err(PmError::NotAllocated);
        }
        let owner = self.inner.rtree.lookup(addr).ok_or(PmError::NotAllocated)?;
        let span = self.pm.span();
        self.pm.trace(EventKind::FreeBegin.code(), addr, 0);
        let r = match Owner::unpack(owner) {
            Owner::Slab { slab, arena } => self.free_small(slab, arena, addr, dest),
            Owner::Extent { veh } => self.free_large(veh, addr, dest),
        };
        if r.is_ok() {
            self.hists.record(OpKind::Free, span.elapsed_ns(&self.pm));
        }
        self.pm.trace(EventKind::FreeEnd.code(), addr, 0);
        self.timeline_tick();
        self.service_tick();
        r
    }

    fn flush_cache(&mut self) {
        let inner = Arc::clone(&self.inner);
        for class in 0..crate::size_class::NUM_CLASSES {
            let drained = self.tcache.drain(class);
            if !drained.is_empty() {
                self.pm.trace(EventKind::TcacheFlush.code(), class as u64, drained.len() as u64);
            }
            for addr in drained {
                let slab_off = addr & !(SLAB_SIZE as u64 - 1);
                let Some(owner) = inner.rtree.lookup(addr) else { continue };
                let Owner::Slab { arena, .. } = Owner::unpack(owner) else { continue };
                let arena = Arc::clone(&inner.arenas[arena as usize]);
                let mut ai = arena.inner.lock();
                let Some(vs) = ai.slabs.get(&slab_off) else { continue };
                let Some(idx) = vs.block_index(addr) else { continue };
                if ai.return_block_to_slab(slab_off, idx) {
                    let _ = self.maybe_destroy_slab(&arena, &mut ai, slab_off);
                }
            }
        }
        // Drain our own arena's deferred frees too: a departing thread
        // must not leave queued blocks' volatile state stranded.
        let arena = Arc::clone(&self.arena);
        let mut ai = arena.inner.lock();
        inner.drain_remote(&mut self.pm, &arena, &mut ai);
    }

    fn pm(&self) -> &PmThread {
        &self.pm
    }

    fn pm_mut(&mut self) -> &mut PmThread {
        &mut self.pm
    }
}

impl Drop for NvThread {
    fn drop(&mut self) {
        self.flush_cache();
        self.inner.metrics.add(Counter::CursorRotations, self.tcache.rotations());
        self.inner.metrics.merge_hists(&self.hists);
        self.arena.threads.fetch_sub(1, Ordering::Relaxed);
    }
}

/// Per-size-class allocator statistics (diagnostics / space studies).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ClassStats {
    /// Size class index.
    pub class: usize,
    /// Block size in bytes.
    pub block_size: usize,
    /// Slabs currently dedicated to this class.
    pub slabs: usize,
    /// Blocks allocated (persistent view).
    pub allocated: usize,
    /// Blocks free or cached.
    pub free: usize,
}

impl NvAllocator {
    /// Per-class slab statistics across all arenas.
    pub fn class_stats(&self) -> Vec<ClassStats> {
        let pool = &self.0.pool;
        let mut out: Vec<ClassStats> = (0..crate::size_class::NUM_CLASSES)
            .map(|c| ClassStats {
                class: c,
                block_size: crate::size_class::class_size(c),
                ..ClassStats::default()
            })
            .collect();
        for a in &self.0.arenas {
            let inner = a.inner.lock();
            for vs in inner.slabs.values() {
                let st = &mut out[vs.class];
                st.slabs += 1;
                let allocated = vs.pbitmap(&self.0.geoms).count_set(pool);
                st.allocated += allocated;
                st.free += vs.nblocks - allocated;
            }
        }
        out
    }

    /// Total internal fragmentation: bytes reserved by slabs beyond the
    /// persistent allocations they hold.
    pub fn slab_overhead_bytes(&self) -> usize {
        self.class_stats()
            .iter()
            .map(|s| {
                (s.slabs * crate::size_class::SLAB_SIZE).saturating_sub(s.allocated * s.block_size)
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::PmAllocator;
    use nvalloc_pmem::{LatencyMode, PmemConfig, PmemPool};

    #[test]
    fn class_stats_track_allocations() {
        let pool =
            PmemPool::new(PmemConfig::default().pool_size(32 << 20).latency_mode(LatencyMode::Off));
        let a = NvAllocator::create(pool, NvConfig::log()).unwrap();
        let mut t = a.thread();
        for i in 0..100 {
            t.malloc_to(64, a.root_offset(i)).unwrap();
        }
        let c64 = crate::size_class::size_to_class(64).unwrap();
        let stats = a.class_stats();
        assert_eq!(stats[c64].allocated, 100);
        assert!(stats[c64].slabs >= 1);
        assert_eq!(stats[c64].block_size, 64);
        // Other classes untouched.
        assert_eq!(stats[c64 + 1].slabs, 0);
        assert!(a.slab_overhead_bytes() > 0, "a mostly-empty slab has overhead");
        for i in 0..100 {
            t.free_from(a.root_offset(i)).unwrap();
        }
        let stats = a.class_stats();
        assert_eq!(stats[c64].allocated, 0);
    }

    #[test]
    fn layout_rejects_tiny_pools() {
        let cfg = NvConfig::log();
        assert!(Layout::compute(&cfg, 1 << 20).is_err(), "1 MiB cannot host a heap region");
        assert!(Layout::compute(&cfg, 64 << 20).is_ok());
    }

    #[test]
    fn layout_regions_are_disjoint_and_ordered() {
        let cfg = NvConfig::log().arenas(3).roots(1000);
        let l = Layout::compute(&cfg, 128 << 20).unwrap();
        assert!(l.arena_flags < l.roots);
        assert!(l.roots + (l.roots_count * 8) as u64 <= l.wal_base);
        assert!(l.region_table < l.booklog);
        assert!(l.booklog + l.booklog_bytes as u64 <= l.heap_base);
        assert_eq!(l.heap_base % crate::size_class::SLAB_SIZE as u64, 0);
        assert!(l.large_shards.is_power_of_two());
        // Profiling off: the sidelog region collapses to nothing and the
        // heap starts exactly where it would without the region.
        assert_eq!(l.prof_bytes, 0);
        assert!(l.booklog + l.booklog_bytes as u64 <= l.prof_base);
        assert!(l.prof_base + l.prof_bytes as u64 <= l.heap_base);
        // Profiling on: one 64 KiB sidelog per arena, between the booklog
        // and the (still slab-aligned) heap.
        let lp = Layout::compute(&cfg.clone().profiling(512 << 10), 128 << 20).unwrap();
        assert_eq!(lp.prof_bytes, 3 * crate::prof::PROF_LOG_BYTES);
        assert!(lp.booklog + lp.booklog_bytes as u64 <= lp.prof_base);
        assert!(lp.prof_base + lp.prof_bytes as u64 <= lp.heap_base);
        assert_eq!(lp.prof_base % 64, 0);
        assert_eq!(lp.heap_base % crate::size_class::SLAB_SIZE as u64, 0);
    }

    #[test]
    fn layout_shard_count_clamps_to_pool() {
        let cfg = NvConfig::log().arenas(8);
        let l = Layout::compute(&cfg, 256 << 20).unwrap();
        assert_eq!(l.large_shards, 8, "a large pool keeps one shard per arena");
        // A small pool cannot give 8 shards a two-region span each.
        let l = Layout::compute(&cfg, 32 << 20).unwrap();
        assert!(l.large_shards < 8 && l.large_shards.is_power_of_two());
        // An explicit request wins over the arena count (before clamping).
        let cfg = NvConfig::log().arenas(2).large_shards(4);
        assert_eq!(Layout::compute(&cfg, 256 << 20).unwrap().large_shards, 4);
        // large_shards = 1 restores the single global allocator.
        let cfg = NvConfig::log().arenas(8).large_shards(1);
        assert_eq!(Layout::compute(&cfg, 256 << 20).unwrap().large_shards, 1);
    }
}
