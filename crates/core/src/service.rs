//! The allocator service: asynchronous slow-path offload with
//! epoch-driven maintenance.
//!
//! NVAlloc's log-structured metadata (§5.3) makes slow-path work —
//! slab carves, extent retires, booklog slow-GC, morph scans —
//! batchable and replayable, but by default all of it runs inline on
//! the application thread's malloc/free path. With
//! [`crate::NvConfig::service`] on, worker threads instead *submit*
//! that work over per-arena MPSC request queues (a [`ServiceQueue`],
//! generalizing the remote-free Treiber stacks of [`crate::remote`])
//! and continue on their tcache; completions return through the slab
//! reservoir, where the next refill picks them up without touching a
//! shard lock.
//!
//! # The epoch tick
//!
//! Queued requests are executed by an **epoch tick**
//! ([`service_step`]) that also performs incremental maintenance:
//!
//! * drains idle arenas' remote-free queues (so deferred cross-arena
//!   frees no longer wait for the owner's next malloc slow path);
//! * executes queued `Carve`/`Retire` requests against the reservoir;
//! * scans arenas for morph candidates (sparse slabs below the
//!   space-utilisation threshold);
//! * runs per-shard booklog slow-GC when due and the mimalloc-style
//!   deferred extent-decay schedule (the existing `decay_epochs`
//!   counter);
//! * rebalances the large-shard overflow preference from the
//!   per-shard `large_shard_acquires`/`contended` telemetry.
//!
//! # Determinism contract
//!
//! Every persistent transition stays on the existing WAL/booklog
//! protocols — the service only changes *who* executes them. On
//! wall-clock pools ([`nvalloc_pmem::LatencyMode::Sleep`]) a dedicated
//! thread paces the ticks. On virtual-clock pools **no thread is
//! spawned**: ticks are claimed at operation boundaries from the
//! virtual PM clock (one CAS per boundary, exactly one winner — the
//! same discipline as the timeline sampler), and tests may pump
//! [`crate::NvAllocator::service_step`] directly. Same-seed runs with
//! the service enabled are therefore byte-identical, and crash-matrix
//! / pmsan runs can sanitize every handoff.
//!
//! # Crash safety of deferred retires
//!
//! A `Retire` is submitted only after the worker has dismantled the
//! frame under its exclusive slab gate: header scrubbed, rtree range
//! removed. From that point the frame is indistinguishable from a
//! parked reservoir frame — invisible to frees, and a crash image
//! reclaims it through the leaked-extent sweep — so losing the
//! volatile queue loses nothing. The service's `large.free` merely
//! releases the extent earlier than recovery would.

use std::ptr;
use std::sync::atomic::{AtomicBool, AtomicPtr, AtomicU64, Ordering};
use std::sync::{Arc, Weak};

use nvalloc_pmem::{FlushKind, PmError, PmThread};
use parking_lot::Mutex;

use crate::arena::Arena;
use crate::front::NvInner;
use crate::large::VehId;
use crate::size_class::SLAB_SIZE;
use crate::telemetry::Counter;

/// One deferred slow-path request, submitted by a worker thread to its
/// slab's owning arena queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ServiceRequest {
    /// Restock the arena's slab reservoir with one carved frame (the
    /// submitting refill saw the reservoir below its low-water mark).
    Carve,
    /// Release a retired slab frame's extent back to the large
    /// allocator. The frame is already dismantled (scrubbed header, no
    /// rtree range); only the extent release is deferred.
    Retire {
        /// The retired frame's extent handle (routes to its shard).
        veh: VehId,
    },
}

struct Node {
    item: ServiceRequest,
    next: *mut Node,
}

/// A multi-producer single-consumer Treiber stack of service requests
/// (one per arena), the request-side counterpart of
/// [`crate::remote::RemoteFreeQueue`].
///
/// `push` is lock-free and safe from any thread; `drain` detaches every
/// queued entry at once and is intended to be called by a thread that
/// holds the owning arena's lock (the single-consumer side — the epoch
/// tick, a quiescing thread, or shutdown).
#[derive(Debug)]
pub struct ServiceQueue {
    head: AtomicPtr<Node>,
}

impl Default for ServiceQueue {
    fn default() -> Self {
        Self::new()
    }
}

impl ServiceQueue {
    /// Create an empty queue.
    pub fn new() -> Self {
        ServiceQueue { head: AtomicPtr::new(ptr::null_mut()) }
    }

    /// Push one request (lock-free, any thread).
    pub fn push(&self, item: ServiceRequest) {
        let node = Box::into_raw(Box::new(Node { item, next: ptr::null_mut() }));
        let mut head = self.head.load(Ordering::Relaxed);
        loop {
            // SAFETY: `node` is ours until the CAS publishes it.
            unsafe { (*node).next = head };
            match self.head.compare_exchange_weak(head, node, Ordering::Release, Ordering::Relaxed)
            {
                Ok(_) => return,
                Err(h) => head = h,
            }
        }
    }

    /// True when no requests are queued (racy, advisory: a concurrent
    /// push may land right after the load).
    pub fn is_empty(&self) -> bool {
        self.head.load(Ordering::Acquire).is_null()
    }

    /// Number of queued requests (advisory — the timeline sampler's
    /// queue-depth gauge). Walks the chain without detaching it;
    /// entries pushed after the head load are not counted.
    ///
    /// The caller must hold the owning arena's lock: nodes are freed
    /// only by [`ServiceQueue::drain`], whose single consumer also runs
    /// under that lock, so holding it keeps the chain alive for the
    /// walk. (Concurrent lock-free pushes only prepend ahead of the
    /// loaded head and are simply not counted.)
    pub fn len(&self) -> usize {
        let mut p = self.head.load(Ordering::Acquire);
        let mut n = 0;
        while !p.is_null() {
            // SAFETY: per the contract above the caller holds the arena
            // lock, which excludes the only code path that frees nodes.
            p = unsafe { (*p).next };
            n += 1;
        }
        n
    }

    /// Detach and return every queued request, in LIFO push order.
    ///
    /// Single-consumer: the caller must be the unique drainer (in the
    /// allocator, that uniqueness comes from holding the arena lock).
    /// Detaching with one `swap` means concurrent pushes either make it
    /// into this batch or stay queued for the next — no request is
    /// lost.
    pub fn drain(&self) -> Vec<ServiceRequest> {
        let mut p = self.head.swap(ptr::null_mut(), Ordering::Acquire);
        let mut out = Vec::new();
        while !p.is_null() {
            // SAFETY: the swap gave us exclusive ownership of the chain.
            let node = unsafe { Box::from_raw(p) };
            out.push(node.item);
            p = node.next;
        }
        out
    }
}

impl Drop for ServiceQueue {
    fn drop(&mut self) {
        // Free any still-queued nodes. Dropping a pending `Retire` is
        // benign by construction (see the module docs): the frame's
        // extent is reclaimed by the next recovery's leak sweep.
        self.drain();
    }
}

// SAFETY: the queue owns heap nodes reachable only through `head`;
// publication is ordered by the Release CAS / Acquire swap pair.
unsafe impl Send for ServiceQueue {}
unsafe impl Sync for ServiceQueue {}

/// Shared service state hanging off the allocator: the epoch-tick
/// claim word plus the (optional) dedicated thread's lifecycle.
#[derive(Debug)]
pub(crate) struct ServiceState {
    /// Epoch-tick interval (virtual ns on virtual-clock pools,
    /// wall-clock ns for the dedicated thread).
    tick_ns: u64,
    /// Virtual timestamp of the next tick boundary; claimed by CAS so
    /// exactly one worker executes each boundary's tick.
    next_due: AtomicU64,
    /// A dedicated thread paces the ticks; cooperative claims are off.
    threaded: AtomicBool,
    /// Tells the dedicated thread to exit.
    shutdown: AtomicBool,
    /// The dedicated thread's handle, joined by [`ServiceState::stop`].
    handle: Mutex<Option<std::thread::JoinHandle<()>>>,
}

impl ServiceState {
    pub(crate) fn new(tick_ns: u64) -> ServiceState {
        let tick_ns = tick_ns.max(1);
        ServiceState {
            tick_ns,
            next_due: AtomicU64::new(tick_ns),
            threaded: AtomicBool::new(false),
            shutdown: AtomicBool::new(false),
            handle: Mutex::new(None),
        }
    }

    /// Cheap pre-check: has the virtual clock crossed the next tick
    /// boundary? (One relaxed load on the per-operation path.)
    #[inline]
    pub(crate) fn due(&self, now: u64) -> bool {
        now >= self.next_due.load(Ordering::Relaxed)
    }

    /// Claim the boundary at `now`: the single CAS winner runs the
    /// tick; everyone else keeps going. Mirrors the timeline sampler's
    /// exactly-once-per-boundary discipline.
    pub(crate) fn claim(&self, now: u64) -> bool {
        loop {
            let due = self.next_due.load(Ordering::Relaxed);
            if now < due {
                return false;
            }
            let next = (now / self.tick_ns) * self.tick_ns + self.tick_ns;
            if self
                .next_due
                .compare_exchange(due, next, Ordering::AcqRel, Ordering::Relaxed)
                .is_ok()
            {
                return true;
            }
        }
    }

    /// True while a dedicated service thread paces the ticks
    /// (cooperative boundary claims stand down).
    #[inline]
    pub(crate) fn threaded(&self) -> bool {
        self.threaded.load(Ordering::Relaxed)
    }

    /// Stop and join the dedicated thread, if one is running.
    pub(crate) fn stop(&self) {
        self.shutdown.store(true, Ordering::Release);
        let handle = self.handle.lock().take();
        if let Some(h) = handle {
            let _ = h.join();
        }
        self.threaded.store(false, Ordering::Relaxed);
    }
}

/// Spawn the dedicated service thread (wall-clock pools only). The
/// thread holds a `Weak` reference: it terminates on its own within
/// one tick of the allocator dropping, and [`ServiceState::stop`]
/// (called from `exit()`) shuts it down synchronously.
pub(crate) fn spawn(inner: &Arc<NvInner>) {
    let svc = inner.service.as_ref().expect("service state");
    svc.threaded.store(true, Ordering::Relaxed);
    let weak: Weak<NvInner> = Arc::downgrade(inner);
    // Wall-clock pacing is the point of the dedicated thread; virtual
    // pools never reach here (their ticks ride the virtual clock).
    let tick = std::time::Duration::from_nanos(svc.tick_ns); // nvalloc-lint: allow(determinism)
    let handle = std::thread::Builder::new()
        .name("nvalloc-service".into())
        .spawn(move || {
            let mut t = None;
            loop {
                std::thread::sleep(tick);
                let Some(inner) = weak.upgrade() else { break };
                let svc = inner.service.as_ref().expect("service state");
                if svc.shutdown.load(Ordering::Acquire) {
                    break;
                }
                let t = t.get_or_insert_with(|| inner.pool.register_thread());
                service_step(&inner, t);
            }
        })
        .expect("spawn allocator service thread");
    *svc.handle.lock() = Some(handle);
}

/// One epoch tick: drain idle arenas' remote queues, execute queued
/// carve/retire requests, scan for morph candidates, run per-shard
/// booklog slow-GC + extent decay, and rebalance the shard overflow
/// preference. Returns the number of requests completed.
///
/// Non-blocking with respect to workers: arenas are visited with
/// `try_lock` only, so a worker mid-refill is never stalled; skipped
/// queues keep until the next tick (or the owner's own drain).
pub(crate) fn service_step(inner: &NvInner, t: &mut PmThread) -> u64 {
    if inner.service.is_none() {
        return 0;
    }
    inner.metrics.bump(Counter::ServiceTicks);
    let mut completed = 0u64;
    for arena in &inner.arenas {
        let Some(mut ai) = arena.inner.try_lock() else { continue };
        if !arena.remote.is_empty() && inner.drain_remote(t, arena, &mut ai) > 0 {
            // The service is never the draining arena's owner thread.
            inner.metrics.bump(Counter::RemoteDrainForeign);
        }
        completed += drain_requests(inner, t, arena, &mut ai);
        scan_morph_candidates(inner, &ai);
    }
    // Incremental per-shard maintenance: booklog slow-GC when the dead
    // ratio crossed its threshold, plus the wall-clock extent-decay
    // schedule (`decay_epochs`). try_lock inside — busy shards wait
    // for the next epoch.
    inner.large.maintain(&inner.pool, t);
    if inner.large.rebalance() {
        inner.metrics.bump(Counter::ServiceRebalances);
    }
    // Periodic profile dump: fold the site table into the profiler's
    // snapshot ring (volatile, deterministic — driven by the same epoch
    // claim that paced this step).
    if let Some(p) = &inner.prof {
        p.service_snapshot();
    }
    // Persistent work above (frame scrubs, extent releases, GC copies)
    // must not leave the epoch with dangling flushes.
    inner.pool.fence_pending(t);
    completed
}

/// Execute every queued request for `arena`. The caller holds the
/// arena lock (`ai`), making it the queue's single consumer; shutdown
/// paths (`quiesce`/`exit`) call this directly so no retire or carve
/// is left pending across an orderly stop.
pub(crate) fn drain_requests(
    inner: &NvInner,
    t: &mut PmThread,
    arena: &Arena,
    ai: &mut crate::arena::ArenaInner,
) -> u64 {
    let reqs = arena.service.drain();
    if reqs.is_empty() {
        return 0;
    }
    let mut completed = 0u64;
    for req in reqs {
        match req {
            ServiceRequest::Carve => {
                if restock_one(inner, t, arena, ai) {
                    completed += 1;
                }
            }
            ServiceRequest::Retire { veh } => {
                // The submitting thread already dismantled the frame
                // under its exclusive gate; releasing the extent is all
                // that is deferred (and all a crash would skip).
                if inner.large.free(&inner.pool, t, veh).is_ok() {
                    completed += 1;
                }
            }
        }
    }
    inner.metrics.add(Counter::ServiceCompletions, completed);
    completed
}

/// Carve one slab frame into `arena`'s reservoir, probing shards in
/// the arena's preference order. Stale requests (the reservoir
/// refilled or the knob is off) complete as no-ops.
fn restock_one(
    inner: &NvInner,
    t: &mut PmThread,
    arena: &Arena,
    ai: &mut crate::arena::ArenaInner,
) -> bool {
    if inner.cfg.slab_reservoir == 0 || ai.reservoir.len() >= inner.cfg.slab_reservoir {
        return false;
    }
    for s in inner.large.shard_order(arena.id as usize) {
        let mut large = inner.large.lock(s);
        match large.alloc_aligned(&inner.pool, t, SLAB_SIZE, SLAB_SIZE, true) {
            Ok((veh, off)) => {
                inner.metrics.bump(Counter::SlabAllocs);
                // Park it exactly like a batch-carved reservoir frame:
                // scrubbed header, no rtree range — invisible to frees,
                // reclaimed as a leak by crash recovery.
                inner.pool.persist_u64(t, off, 0, FlushKind::Meta);
                inner.rtree.remove_range(off, SLAB_SIZE);
                ai.reservoir.push((veh, off));
                return true;
            }
            Err(PmError::OutOfMemory { .. }) => continue,
            Err(_) => return false,
        }
    }
    false
}

/// Count slabs whose occupancy sits at or below the morph
/// space-utilisation threshold (read-only; the actual transform still
/// happens on a refill that wants the space, under the same arena
/// lock). Feeds the `morph_candidates` telemetry so sparse heaps are
/// visible between refills.
fn scan_morph_candidates(inner: &NvInner, ai: &crate::arena::ArenaInner) {
    if !inner.cfg.morphing {
        return;
    }
    let mut cands = 0u64;
    for vs in ai.slabs.values() {
        if vs.morph.is_none() && vs.nblocks > 0 && vs.nfree < vs.nblocks {
            let su = (vs.nblocks - vs.nfree) as f64 / vs.nblocks as f64;
            if su <= inner.cfg.su_threshold {
                cands += 1;
            }
        }
    }
    inner.metrics.add(Counter::MorphCandidates, cands);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn queue_push_drain_roundtrip() {
        let q = ServiceQueue::new();
        assert!(q.is_empty());
        q.push(ServiceRequest::Carve);
        q.push(ServiceRequest::Retire { veh: 7 });
        assert!(!q.is_empty());
        let items = q.drain();
        // LIFO push order.
        assert_eq!(items, vec![ServiceRequest::Retire { veh: 7 }, ServiceRequest::Carve]);
        assert!(q.is_empty());
        assert!(q.drain().is_empty());
    }

    #[test]
    fn queue_concurrent_pushes_all_arrive() {
        let q = std::sync::Arc::new(ServiceQueue::new());
        let threads = 8;
        let per = 500u32;
        std::thread::scope(|s| {
            for t in 0..threads {
                let q = std::sync::Arc::clone(&q);
                s.spawn(move || {
                    for i in 0..per {
                        q.push(ServiceRequest::Retire { veh: t * 1000 + i });
                    }
                });
            }
        });
        let items = q.drain();
        assert_eq!(items.len(), (threads * per) as usize);
        let mut seen = std::collections::HashSet::new();
        for it in items {
            assert!(seen.insert(it));
        }
    }

    #[test]
    fn claim_is_exactly_once_per_boundary() {
        let s = ServiceState::new(100);
        assert!(!s.due(99), "before the first boundary");
        assert!(s.due(100));
        assert!(s.claim(100), "first claimer wins");
        assert!(!s.claim(100), "same boundary cannot be claimed twice");
        assert!(!s.due(150));
        // Jumping several boundaries claims once and re-arms past `now`.
        assert!(s.claim(450));
        assert!(!s.due(499));
        assert!(s.due(500));
    }
}
