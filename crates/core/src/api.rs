//! The allocator interface shared by NVAlloc and every baseline allocator
//! in the workspace.
//!
//! The API mirrors the paper's programming model (§4.1): allocation and
//! deallocation are *atomic with respect to a persistent destination slot*.
//! `malloc_to(size, dest)` allocates a block and installs its offset at
//! `dest`; `free_from(dest)` frees whatever `dest` points at and clears it.
//! Offsets, not virtual addresses, flow through the API so heaps can be
//! remapped after recovery.
//!
//! Allocators are cloneable handles ([`PmAllocator`] implementors wrap an
//! `Arc`); each worker thread obtains its own [`AllocThread`], which owns
//! the thread's PM clock and any thread-local caches.

use std::fmt::Debug;
use std::sync::Arc;

use nvalloc_pmem::{PmOffset, PmResult, PmThread, PmemPool};

use crate::telemetry::MetricsSnapshot;

/// A persistent-memory allocator instance.
pub trait PmAllocator: Send + Sync + Debug {
    /// Short display name ("NVAlloc-LOG", "PMDK", …).
    fn name(&self) -> String;

    /// The pool this allocator manages.
    fn pool(&self) -> &Arc<PmemPool>;

    /// Create a per-thread handle. One per worker thread.
    fn thread(&self) -> Box<dyn AllocThread>;

    /// Pool offset of root slot `i` (an 8-byte persistent location usable
    /// as a `malloc_to` destination).
    ///
    /// # Panics
    /// Panics if `i >= root_count()`.
    fn root_offset(&self, i: usize) -> PmOffset;

    /// Number of reserved root slots.
    fn root_count(&self) -> usize;

    /// Bytes of heap currently mapped (extent regions + metadata logs);
    /// the "memory consumption" metric of Figs. 1b/13/15.
    fn heap_mapped_bytes(&self) -> usize;

    /// High-water mark of [`PmAllocator::heap_mapped_bytes`].
    fn peak_mapped_bytes(&self) -> usize;

    /// Bytes handed out and not yet freed (rounded to class/extent sizes).
    fn live_bytes(&self) -> usize;

    /// A snapshot of the allocator's internal telemetry counters and
    /// op-latency histograms (see [`crate::telemetry`]). Allocators
    /// without internal instrumentation — the baselines — return the
    /// all-zero default, so callers can diff and serialize snapshots
    /// uniformly across allocators.
    fn metrics(&self) -> MetricsSnapshot {
        MetricsSnapshot::default()
    }

    /// Merged flight-recorder stream serialized as Chrome trace-event
    /// JSON, or `None` when tracing is disabled or unsupported (see
    /// [`crate::trace`]). Baselines have no flight recorder and inherit
    /// this default.
    fn trace_json(&self) -> Option<String> {
        None
    }

    /// The heap-observatory timeline serialized as JSON lines (one
    /// [`crate::observe::TimelineSample`] object per line), or `None`
    /// when the timeline sampler is disabled or unsupported. Baselines
    /// have no sampler and inherit this default.
    fn timeline_json(&self) -> Option<String> {
        None
    }

    /// The sampled heap profile serialized as one JSON object (site
    /// table, retained-set rows, snapshot ring — see [`crate::prof`]),
    /// or `None` when profiling is disabled or unsupported. Baselines
    /// have no profiler and inherit this default.
    fn profile_json(&self) -> Option<String> {
        None
    }

    /// The sampled heap profile as collapsed-stack text (one
    /// `label live_bytes_estimate` line per site, flamegraph-ready), or
    /// `None` when profiling is disabled or unsupported.
    fn profile_collapsed(&self) -> Option<String> {
        None
    }

    /// Drain deferred work without shutting down: return every arena's
    /// pending remote (cross-arena) frees to their slabs and fence any
    /// resulting flushes, leaving an idle heap with no stranded queues.
    /// This is the defined "clean point" the pmsan shutdown audit
    /// assumes. Baselines defer nothing and inherit this no-op.
    fn quiesce(&self) {}

    /// Orderly shutdown (the paper's `nvalloc_exit()`): flush volatile
    /// state that recovery would otherwise have to reconstruct and mark
    /// the heap cleanly closed.
    fn exit(&self);
}

/// A per-thread allocator handle.
pub trait AllocThread: Send {
    /// Allocate `size` bytes and atomically install the block offset at
    /// the 8-byte-aligned persistent slot `dest`. Returns the block offset.
    ///
    /// # Errors
    /// [`nvalloc_pmem::PmError::OutOfMemory`] when the heap is exhausted,
    /// [`nvalloc_pmem::PmError::InvalidRequest`] for zero-size requests.
    fn malloc_to(&mut self, size: usize, dest: PmOffset) -> PmResult<PmOffset>;

    /// Allocate `size` bytes whose offset is aligned to `align` (a power
    /// of two) and atomically install it at `dest`, like
    /// [`AllocThread::malloc_to`]. This is the oversize-alignment hook of
    /// the `GlobalAlloc` front end: implementations that can serve
    /// naturally aligned extents override it; the default honours only
    /// the ≤ 8-byte alignment every block already has.
    ///
    /// # Errors
    /// [`nvalloc_pmem::PmError::InvalidRequest`] when the implementation
    /// cannot honour `align`; otherwise as [`AllocThread::malloc_to`].
    fn malloc_aligned_to(
        &mut self,
        size: usize,
        align: usize,
        dest: PmOffset,
    ) -> PmResult<PmOffset> {
        if align <= 8 {
            return self.malloc_to(size, dest);
        }
        let _ = size;
        Err(nvalloc_pmem::PmError::InvalidRequest("allocator cannot serve oversize alignment"))
    }

    /// Free the block whose offset is stored at `dest` and clear `dest`.
    ///
    /// # Errors
    /// [`nvalloc_pmem::PmError::NotAllocated`] if `dest` holds no live
    /// allocation (double free).
    fn free_from(&mut self, dest: PmOffset) -> PmResult<()>;

    /// Return all thread-cached blocks to their slabs (thread exit).
    fn flush_cache(&mut self);

    /// The thread's PM handle (virtual clock).
    fn pm(&self) -> &PmThread;

    /// Mutable access to the PM handle (workloads use it to persist their
    /// own payload writes on this thread's clock).
    fn pm_mut(&mut self) -> &mut PmThread;
}
