//! Arenas: per-core containers of slabs (§4.2).
//!
//! Each CPU core owns an arena; each thread is assigned to the arena with
//! the fewest threads. An arena keeps, per size class, a freelist of slabs
//! with available blocks (`freelist_slab`), plus an LRU list over its
//! regular slabs from which morph candidates are chosen (§5.2), and the
//! arena's write-ahead log.
//!
//! Locking: the slab structures live under `Arena::inner`; WAL appends go
//! to per-thread micro-logs and need no lock at all, so the malloc fast
//! path (tcache hit + WAL append + atomic bitmap bit) never contends with
//! slab-list maintenance. Lock order is always arena inner → large
//! allocator.

use std::collections::{BTreeMap, HashMap, VecDeque};
use std::sync::atomic::AtomicUsize;

use parking_lot::Mutex;

use nvalloc_pmem::{PmOffset, PmThread, PmemPool};

use crate::geometry::GeometryTable;
use crate::large::VehId;
use crate::remote::RemoteFreeQueue;
use crate::service::ServiceQueue;
use crate::size_class::{ClassId, NUM_CLASSES};
use crate::slab::VSlab;
use crate::tcache::TCache;
use crate::wal::WalRegion;

/// Persistent per-arena state flag values (§4.4).
pub mod arena_state {
    /// The arena is (or was, at crash time) running.
    pub const RUNNING: u64 = 1;
    /// `nvalloc_exit()` completed.
    pub const NORMAL_SHUTDOWN: u64 = 2;
    /// Recovery was in progress.
    pub const RECOVERY: u64 = 3;
}

/// The mutable core of an arena.
#[derive(Debug)]
pub struct ArenaInner {
    /// All slabs owned by this arena, by base offset.
    pub slabs: HashMap<PmOffset, VSlab>,
    /// Per class: slabs with at least one available block.
    pub freelist: Vec<VecDeque<PmOffset>>,
    /// LRU over regular (non-`slab_in`) slabs: token → slab offset;
    /// ascending iteration = least recently used first.
    pub lru: BTreeMap<u64, PmOffset>,
    /// Pre-carved 64 KB slab extents, grabbed from the large allocator in
    /// batches so refills touch the global large mutex once per batch.
    /// Volatile only: a crash reclaims reservoir extents as leaks during
    /// recovery (their headers are scrubbed when they enter the pool).
    pub reservoir: Vec<(VehId, PmOffset)>,
    next_token: u64,
}

impl ArenaInner {
    pub(crate) fn new() -> Self {
        ArenaInner {
            slabs: HashMap::new(),
            freelist: (0..NUM_CLASSES).map(|_| VecDeque::new()).collect(),
            lru: BTreeMap::new(),
            reservoir: Vec::new(),
            next_token: 1,
        }
    }

    /// Register a slab: slab map + class freelist + LRU.
    pub fn add_slab(&mut self, mut vslab: VSlab) {
        let off = vslab.off;
        let class = vslab.class;
        self.touch_lru(&mut vslab);
        if vslab.nfree > 0 {
            vslab.in_freelist = true;
            self.freelist[class].push_back(off);
        }
        self.slabs.insert(off, vslab);
    }

    /// Move a slab to the most-recently-used end of the LRU.
    fn touch_lru(&mut self, vslab: &mut VSlab) {
        if vslab.lru_token != 0 {
            self.lru.remove(&vslab.lru_token);
        }
        let token = self.next_token;
        self.next_token += 1;
        vslab.lru_token = token;
        self.lru.insert(token, vslab.off);
    }

    /// Touch a slab by offset (records "recent access" for morph LRU).
    pub fn touch(&mut self, off: PmOffset) {
        // Split-borrow via temporary take to satisfy the borrow checker.
        if let Some(mut vs) = self.slabs.remove(&off) {
            if vs.morph.is_none() {
                self.touch_lru(&mut vs);
            }
            self.slabs.insert(off, vs);
        }
    }

    /// Remove a slab from the LRU (it became a `slab_in` or is being
    /// destroyed).
    pub fn lru_remove(&mut self, off: PmOffset) {
        if let Some(vs) = self.slabs.get_mut(&off) {
            if vs.lru_token != 0 {
                self.lru.remove(&vs.lru_token);
                vs.lru_token = 0;
            }
        }
    }

    /// Drop a slab from the freelist of `class` (e.g. it is now full or is
    /// morphing away). O(1): only the slab's `in_freelist` flag is
    /// cleared; the stale deque entry is discarded lazily when a pop
    /// reaches it (checked against the flag and the slab's current class).
    pub fn freelist_remove(&mut self, class: ClassId, off: PmOffset) {
        let _ = class;
        if let Some(vs) = self.slabs.get_mut(&off) {
            vs.in_freelist = false;
        }
    }

    /// Link a slab into its class freelist unless it already has a live
    /// entry there.
    pub fn freelist_push(&mut self, class: ClassId, off: PmOffset) {
        if let Some(vs) = self.slabs.get_mut(&off) {
            debug_assert_eq!(vs.class, class);
            if !vs.in_freelist {
                vs.in_freelist = true;
                self.freelist[class].push_back(off);
            }
        }
    }

    /// Whether `off` is logically linked in the freelist of `class`
    /// (deques may additionally hold stale entries awaiting lazy discard).
    #[allow(dead_code)] // exercised by the morph unit tests
    pub fn freelist_contains(&self, class: ClassId, off: PmOffset) -> bool {
        self.slabs.get(&off).is_some_and(|vs| vs.in_freelist && vs.class == class)
    }

    /// Fill `tcache` for `class` from freelist slabs until the tcache is
    /// full or the freelist is exhausted. Returns the number of blocks
    /// cached (§4.2: "the working thread will fill it until full using
    /// slabs from their corresponding freelist_slab").
    pub fn fill_tcache(
        &mut self,
        geoms: &GeometryTable,
        class: ClassId,
        tcache: &mut TCache,
    ) -> usize {
        let mut filled = 0;
        while !tcache.is_full(class) {
            let Some(&slab_off) = self.freelist[class].front() else { break };
            // Lazy discard: entries whose slab was removed, re-classed, or
            // logically unlinked (flag cleared) are stale.
            let Some(vs) =
                self.slabs.get_mut(&slab_off).filter(|v| v.in_freelist && v.class == class)
            else {
                self.freelist[class].pop_front();
                continue;
            };
            match vs.take_block() {
                Some(i) => {
                    let addr = vs.block_addr(i);
                    let stripe = geoms.of(class).bitmap.stripe_of(i);
                    let ok = tcache.push(class, addr, stripe);
                    debug_assert!(ok, "tcache was checked non-full");
                    filled += 1;
                    if vs.nfree == 0 {
                        vs.in_freelist = false;
                        self.freelist[class].pop_front();
                    }
                }
                None => {
                    vs.in_freelist = false;
                    self.freelist[class].pop_front();
                }
            }
        }
        if filled > 0 {
            if let Some(&slab_off) = self.freelist[class].front() {
                self.touch(slab_off);
            }
        }
        filled
    }

    /// Return one block to its slab (tcache overflow / flush / direct
    /// morph-free). Clears the volatile bit; re-links the slab into the
    /// freelist if it was full. Returns `true` if the slab is now
    /// completely free (caller should consider destroying it).
    pub fn return_block_to_slab(&mut self, slab_off: PmOffset, block_idx: usize) -> bool {
        let vs = self.slabs.get_mut(&slab_off).expect("slab exists");
        vs.release_block(block_idx);
        let class = vs.class;
        let free_now = vs.is_completely_free();
        self.freelist_push(class, slab_off);
        self.touch(slab_off);
        free_now
    }

    /// Unregister a completely-free slab, returning its vslab. O(1): any
    /// deque entry the slab still has goes stale (its offset no longer
    /// resolves in `slabs`) and is discarded lazily on pop.
    pub fn remove_slab(&mut self, off: PmOffset) -> VSlab {
        let mut vs = self.slabs.remove(&off).expect("slab exists");
        if vs.lru_token != 0 {
            self.lru.remove(&vs.lru_token);
        }
        vs.in_freelist = false;
        vs
    }

    /// Total bytes of live small blocks (persistent view is authoritative,
    /// but the volatile one is cheap and equals it whenever no tcaches hold
    /// blocks — used for utilisation reports).
    pub fn occupancy_histogram(&self, bins: &[f64]) -> Vec<usize> {
        let mut out = vec![0; bins.len() + 1];
        for vs in self.slabs.values() {
            let occ = vs.occupancy();
            let mut placed = false;
            for (i, b) in bins.iter().enumerate() {
                if occ <= *b {
                    out[i] += 1;
                    placed = true;
                    break;
                }
            }
            if !placed {
                *out.last_mut().expect("nonempty") += 1;
            }
        }
        out
    }
}

/// A per-core arena.
#[derive(Debug)]
pub struct Arena {
    /// Arena id (dense from 0).
    pub id: u32,
    /// Pool offset of the persistent arena state flag.
    pub flag_off: PmOffset,
    /// The arena's WAL region (per-thread micro-logs are carved from it).
    pub wal: WalRegion,
    /// Next micro-log index to hand to a joining thread.
    pub wal_next_micro: AtomicUsize,
    /// Slab structures.
    pub inner: Mutex<ArenaInner>,
    /// Deferred cross-arena frees (volatile bookkeeping only), drained by
    /// owner threads under `inner`.
    pub remote: RemoteFreeQueue,
    /// Deferred slow-path requests for the allocator service (volatile;
    /// executed under `inner` by the epoch tick — see [`crate::service`]).
    pub service: ServiceQueue,
    /// Number of threads currently assigned (least-loaded assignment).
    pub threads: AtomicUsize,
}

impl Arena {
    /// Create a fresh arena whose WAL region occupies
    /// `[wal_base, wal_base + WalRegion::region_bytes(micro_count))`.
    pub fn create(
        pool: &PmemPool,
        id: u32,
        flag_off: PmOffset,
        wal_base: PmOffset,
        micro_count: usize,
    ) -> Self {
        let wal = WalRegion::create(pool, wal_base, micro_count);
        Arena {
            id,
            flag_off,
            wal,
            wal_next_micro: AtomicUsize::new(0),
            inner: Mutex::new(ArenaInner::new()),
            remote: RemoteFreeQueue::new(),
            service: ServiceQueue::new(),
            threads: AtomicUsize::new(0),
        }
    }

    /// Re-open an arena during recovery. The WAL region is *not* cleared —
    /// recovery reads it first — but joining threads restart at micro-log
    /// 0 and overwrite old entries slot by slot.
    pub fn reopen(id: u32, flag_off: PmOffset, wal_base: PmOffset, micro_count: usize) -> Self {
        let wal = WalRegion::open(wal_base, micro_count);
        Arena {
            id,
            flag_off,
            wal,
            wal_next_micro: AtomicUsize::new(0),
            inner: Mutex::new(ArenaInner::new()),
            remote: RemoteFreeQueue::new(),
            service: ServiceQueue::new(),
            threads: AtomicUsize::new(0),
        }
    }

    /// Persist the arena state flag.
    pub fn set_state(&self, pool: &PmemPool, t: &mut PmThread, state: u64) {
        pool.persist_u64(t, self.flag_off, state, nvalloc_pmem::FlushKind::Meta);
    }

    /// Read the persistent arena state flag.
    pub fn state(&self, pool: &PmemPool) -> u64 {
        pool.read_u64(self.flag_off)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::size_class::size_to_class;
    use nvalloc_pmem::{LatencyMode, PmemConfig, PmemPool};
    use std::sync::Arc;

    fn pool() -> Arc<PmemPool> {
        PmemPool::new(PmemConfig::default().pool_size(4 << 20).latency_mode(LatencyMode::Off))
    }

    fn make_slab(
        p: &PmemPool,
        t: &mut PmThread,
        g: &GeometryTable,
        off: PmOffset,
        class: ClassId,
    ) -> VSlab {
        VSlab::create(p, t, off, class, 0, g.of(class), false)
    }

    #[test]
    fn fill_tcache_from_one_slab() {
        let p = pool();
        let mut t = p.register_thread();
        let g = GeometryTable::new(6);
        let class = size_to_class(64).unwrap();
        let mut inner = ArenaInner::new();
        inner.add_slab(make_slab(&p, &mut t, &g, 0, class));
        let mut tc = TCache::new(6, 32);
        let n = inner.fill_tcache(&g, class, &mut tc);
        assert_eq!(n, 32);
        assert!(tc.is_full(class));
        let vs = &inner.slabs[&0];
        assert_eq!(vs.nfree, vs.nblocks - 32);
    }

    #[test]
    fn fill_tcache_spans_slabs_and_exhausts() {
        let p = pool();
        let mut t = p.register_thread();
        let g = GeometryTable::new(1);
        let class = crate::size_class::NUM_CLASSES - 1; // 3 blocks per slab
        let mut inner = ArenaInner::new();
        inner.add_slab(make_slab(&p, &mut t, &g, 0, class));
        inner.add_slab(make_slab(&p, &mut t, &g, 65536, class));
        let per_slab = inner.slabs[&0].nblocks;
        let mut tc = TCache::new(1, 64);
        let n = inner.fill_tcache(&g, class, &mut tc);
        assert_eq!(n, per_slab * 2, "both slabs drained");
        assert!(inner.freelist[class].is_empty());
        // Nothing left: further fills get zero.
        assert_eq!(inner.fill_tcache(&g, class, &mut tc), 0);
    }

    #[test]
    fn return_block_relinks_full_slab() {
        let p = pool();
        let mut t = p.register_thread();
        let g = GeometryTable::new(1);
        let class = crate::size_class::NUM_CLASSES - 1;
        let mut inner = ArenaInner::new();
        inner.add_slab(make_slab(&p, &mut t, &g, 0, class));
        let mut tc = TCache::new(1, 64);
        inner.fill_tcache(&g, class, &mut tc);
        assert!(inner.freelist[class].is_empty());
        let addr = tc.pop(class).unwrap();
        let idx = inner.slabs[&0].block_index(addr).unwrap();
        let now_free = inner.return_block_to_slab(0, idx);
        assert!(!now_free, "other blocks still cached");
        assert_eq!(inner.freelist[class].front(), Some(&0));
    }

    #[test]
    fn slab_becomes_completely_free() {
        let p = pool();
        let mut t = p.register_thread();
        let g = GeometryTable::new(1);
        let class = crate::size_class::NUM_CLASSES - 1;
        let mut inner = ArenaInner::new();
        inner.add_slab(make_slab(&p, &mut t, &g, 0, class));
        let mut tc = TCache::new(1, 64);
        inner.fill_tcache(&g, class, &mut tc);
        let mut last = false;
        while let Some(addr) = tc.pop(class) {
            let idx = inner.slabs[&0].block_index(addr).unwrap();
            last = inner.return_block_to_slab(0, idx);
        }
        assert!(last, "returning every block frees the slab");
        let vs = inner.remove_slab(0);
        assert!(vs.is_completely_free());
        assert!(inner.slabs.is_empty());
        assert!(inner.lru.is_empty());
    }

    #[test]
    fn lru_orders_by_access() {
        let p = pool();
        let mut t = p.register_thread();
        let g = GeometryTable::new(1);
        let class = size_to_class(64).unwrap();
        let mut inner = ArenaInner::new();
        inner.add_slab(make_slab(&p, &mut t, &g, 0, class));
        inner.add_slab(make_slab(&p, &mut t, &g, 65536, class));
        inner.add_slab(make_slab(&p, &mut t, &g, 131072, class));
        // Access slab 0 -> it becomes most recent; LRU head must be 65536.
        inner.touch(0);
        let head = *inner.lru.values().next().unwrap();
        assert_eq!(head, 65536);
        let tail = *inner.lru.values().next_back().unwrap();
        assert_eq!(tail, 0);
    }

    #[test]
    fn lru_remove_unlinks() {
        let p = pool();
        let mut t = p.register_thread();
        let g = GeometryTable::new(1);
        let class = size_to_class(64).unwrap();
        let mut inner = ArenaInner::new();
        inner.add_slab(make_slab(&p, &mut t, &g, 0, class));
        inner.lru_remove(0);
        assert!(inner.lru.is_empty());
        // Touching a slab with morph state must not re-add it.
        inner.slabs.get_mut(&0).unwrap().morph = Some(crate::slab::MorphState {
            old_class: 0,
            old_data_offset: 0,
            index_off: 0,
            index: vec![],
            cnt_slab: 0,
            cnt_block: vec![],
        });
        inner.touch(0);
        assert!(inner.lru.is_empty());
    }

    #[test]
    fn occupancy_histogram_bins() {
        let p = pool();
        let mut t = p.register_thread();
        let g = GeometryTable::new(1);
        let class = size_to_class(64).unwrap();
        let mut inner = ArenaInner::new();
        inner.add_slab(make_slab(&p, &mut t, &g, 0, class));
        let mut tc = TCache::new(1, 2048);
        inner.fill_tcache(&g, class, &mut tc); // near-full occupancy? cap 2048 > nblocks -> full
        let h = inner.occupancy_histogram(&[0.3, 0.7]);
        assert_eq!(h, vec![0, 0, 1], "fully drained slab is >70% occupied");
    }

    #[test]
    fn arena_state_flag_roundtrip() {
        let p = pool();
        let mut t = p.register_thread();
        let a = Arena::create(&p, 0, 512, 4096, 16);
        assert_eq!(a.state(&p), 0);
        a.set_state(&p, &mut t, arena_state::RUNNING);
        assert_eq!(a.state(&p), arena_state::RUNNING);
        a.set_state(&p, &mut t, arena_state::NORMAL_SHUTDOWN);
        assert_eq!(a.state(&p), arena_state::NORMAL_SHUTDOWN);
    }
}
