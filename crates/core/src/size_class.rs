//! Size classes for small allocations.
//!
//! Small requests (≤ 16 KB, the paper's boundary) are rounded up to one of
//! [`NUM_CLASSES`] size classes and served from 64 KB slabs; anything larger
//! goes to the large (extent) allocator. The class table follows the
//! jemalloc spacing the paper builds on: 16-byte spacing up to 128 B, then
//! four classes per size doubling.

/// Index into the size-class table.
pub type ClassId = usize;

/// Slab size in bytes (§2.1: "The slab size is 64 KB in this paper").
pub const SLAB_SIZE: usize = 64 * 1024;

/// Smallest request routed to the large allocator. Requests of exactly
/// 16 KB still fit a slab (4 blocks); strictly larger ones do not.
pub const LARGE_MIN: usize = 16 * 1024 + 1;

/// The size-class table: 8, 16, 32, 48 … 128, then 4 classes per doubling
/// up to 16 KB.
pub const CLASS_SIZES: [usize; 37] = [
    8, 16, 32, 48, 64, 80, 96, 112, 128, // 16-byte spacing
    160, 192, 224, 256, // /32
    320, 384, 448, 512, // /64
    640, 768, 896, 1024, // /128
    1280, 1536, 1792, 2048, // /256
    2560, 3072, 3584, 4096, // /512
    5120, 6144, 7168, 8192, // /1024
    10240, 12288, 14336, 16384, // /2048
];

/// Number of size classes.
pub const NUM_CLASSES: usize = CLASS_SIZES.len();

/// Block size of a class.
///
/// # Panics
/// Panics if `class >= NUM_CLASSES`.
#[inline]
pub fn class_size(class: ClassId) -> usize {
    CLASS_SIZES[class]
}

/// Map a request size to the smallest class that fits, or `None` if the
/// request is large (> 16 KB) or zero.
#[inline]
pub fn size_to_class(size: usize) -> Option<ClassId> {
    if size == 0 || size > CLASS_SIZES[NUM_CLASSES - 1] {
        return None;
    }
    // Binary search for the first class >= size.
    match CLASS_SIZES.binary_search(&size) {
        Ok(i) => Some(i),
        Err(i) => Some(i),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_is_strictly_increasing_and_aligned() {
        for w in CLASS_SIZES.windows(2) {
            assert!(w[0] < w[1]);
        }
        for &s in &CLASS_SIZES {
            assert_eq!(s % 8, 0, "class {s} must be 8-byte aligned");
        }
    }

    #[test]
    fn size_to_class_rounds_up() {
        assert_eq!(size_to_class(1), Some(0));
        assert_eq!(size_to_class(8), Some(0));
        assert_eq!(size_to_class(9), Some(1));
        assert_eq!(class_size(size_to_class(100).unwrap()), 112);
        assert_eq!(size_to_class(16384), Some(NUM_CLASSES - 1));
        assert_eq!(size_to_class(16385), None);
        assert_eq!(size_to_class(0), None);
    }

    #[test]
    fn every_size_fits_its_class() {
        for size in 1..=16384usize {
            let c = size_to_class(size).expect("small size must map");
            assert!(class_size(c) >= size);
            if c > 0 {
                assert!(class_size(c - 1) < size, "class not minimal for {size}");
            }
        }
    }

    #[test]
    fn internal_fragmentation_bounded() {
        // jemalloc-style spacing keeps worst-case internal fragmentation
        // under 50 % (and under 25 % past 128 B).
        for size in 129..=16384usize {
            let c = size_to_class(size).unwrap();
            let waste = class_size(c) - size;
            assert!((waste as f64) < 0.25 * size as f64 + 1.0, "size {size} wastes {waste}");
        }
    }

    #[test]
    fn class_fits_slab() {
        for &s in &CLASS_SIZES {
            assert!(SLAB_SIZE / s >= 4, "class {s} must yield >= 4 blocks per slab");
        }
    }
}
