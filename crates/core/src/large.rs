//! The large allocator (§4.3): extents from 16 KB to 2 MB, managed through
//! virtual extent headers (VEHs) in DRAM.
//!
//! VEHs move between three lists: **activated** (allocated extents),
//! **reclaimed** (freed, physical memory still mapped), and **retained**
//! (freed, physical memory unmapped — only the virtual reservation
//! remains). Allocation best-fit-searches reclaimed, then retained; misses
//! `mmap` a fresh 4 MB region and split it. Freed extents coalesce with
//! address-adjacent reclaimed neighbours through an ordered address index.
//! A smootherstep *decay* schedule demotes reclaimed → retained → OS, as in
//! jemalloc (§2.2).
//!
//! Extent metadata persistence has two modes:
//!
//! * **In-place headers** (`log_bookkeeping = false`; the Base config and
//!   all baselines): each 4 MB region reserves a header area; every VEH
//!   change rewrites a 16 B slot there — the small *random* writes of §3.3.
//! * **Log-structured bookkeeping** (`log_bookkeeping = true`): changes
//!   append to the [`BookLog`] instead; in-place slots are never written.
//!
//! Objects larger than 2 MB bypass the lists: they get a dedicated mapping
//! and return straight to the OS on free (§4.3).

use std::collections::BTreeMap;
use std::sync::Arc;
// nvalloc-lint: allow(determinism) — lock profiling and deferred-free epoch pacing only; never feeds persistent state.
use std::time::Instant;

use nvalloc_pmem::{FlushKind, PmError, PmOffset, PmResult, PmThread, PmemPool};

use crate::booklog::{BookEntry, BookLog, BookLogStats, EntryRef};
use crate::rtree::{Owner, RTree};
use crate::telemetry::LatencyHistogram;

/// Volatile telemetry counters for the extent allocator (merged into
/// [`crate::telemetry::MetricsSnapshot`] by the front end; recorded
/// unconditionally since the allocator is already under its lock and the
/// increments are plain integer adds).
#[derive(Debug, Clone, Copy, Default)]
pub struct LargeStats {
    /// Allocations served best-fit from the reclaimed/retained lists.
    pub best_fit_hits: u64,
    /// Head/tail remainders produced by carving an extent.
    pub splits: u64,
    /// Merges with address-adjacent reclaimed neighbours on free.
    pub coalesces: u64,
    /// Decay-schedule ticks executed.
    pub decay_epochs: u64,
    /// Latency of booklog slow-GC passes on the triggering thread's
    /// virtual clock.
    pub slow_gc_hist: LatencyHistogram,
}

/// Page granularity of extent sizes and addresses.
pub const PAGE: usize = 4096;
/// Region granularity requested from "mmap".
pub const REGION_BYTES: usize = 4 << 20;
/// Header area reserved at the start of each region in in-place mode.
pub const REGION_HEADER_BYTES: usize = 16 << 10;
/// Bytes per in-place header slot.
pub(crate) const HDR_SLOT_BYTES: usize = 16;
/// Extent-slot area of a region header (the rest holds the chunk map).
pub(crate) const HDR_SLOTS_BYTES: usize = 12 << 10;
/// Offset of the per-64 KB chunk map within a region header.
const CHUNK_MAP_OFF: usize = HDR_SLOTS_BYTES;
/// Chunk-map granule: the paper-era baselines keep *page-granular*
/// bookkeeping for large objects (nvm_malloc/Makalu page bitmaps, PMDK
/// chunk runs), so the metadata written for a large allocation scales
/// with its size — unlike NVAlloc's single 8 B log record (§3.3).
/// 2 B per 4 KB page.
const CHUNK_GRANULE: usize = 4 << 10;
/// Largest size served through the extent lists; bigger objects get a
/// dedicated mapping.
pub const HUGE_MIN: usize = 2 << 20;

/// A live extent found during recovery.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecoveredExtent {
    /// VEH id in the recovered allocator.
    pub veh: VehId,
    /// Extent base offset.
    pub off: PmOffset,
    /// Extent size in bytes.
    pub size: usize,
    /// Whether the extent was registered as a slab.
    pub is_slab: bool,
}

/// State of an extent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExtentState {
    /// Allocated to a user (or serving as a slab).
    Active,
    /// Freed; physical memory still mapped.
    Reclaimed,
    /// Freed; physical memory unmapped, virtual reservation kept.
    Retained,
}

/// Identifier of a virtual extent header.
///
/// Published ids carry the owning shard's index in the bits above
/// [`VEH_LOCAL_BITS`] (see `crate::shards`); the low bits index the
/// shard's local VEH table. A single-shard allocator uses tag 0, so ids
/// are plain table indices there.
pub type VehId = u32;

/// Bits of a [`VehId`] that index a shard's local VEH table; bits above
/// carry the shard index.
pub const VEH_LOCAL_BITS: u32 = 24;
/// Mask selecting the local-index bits of a [`VehId`].
pub const VEH_LOCAL_MASK: u32 = (1 << VEH_LOCAL_BITS) - 1;

/// A virtual extent header (kept in DRAM; §4.3).
#[derive(Debug, Clone)]
pub struct Veh {
    /// Extent base offset.
    pub off: PmOffset,
    /// Extent size in bytes (page multiple).
    pub size: usize,
    /// Current list membership.
    pub state: ExtentState,
    /// True when the extent backs a small-allocator slab.
    pub is_slab: bool,
    /// Booklog entry describing this extent (log mode).
    book: Option<EntryRef>,
    /// In-place header slot (region index, slot index) (in-place mode).
    hdr: Option<(u32, u16)>,
    /// When the extent entered a free list (decay bookkeeping).
    freed_at: Option<Instant>,
    /// True for > 2 MB dedicated mappings.
    huge: bool,
}

/// 6t⁵ − 15t⁴ + 10t³: the smootherstep curve used by the decay schedule.
pub fn smootherstep(t: f64) -> f64 {
    let t = t.clamp(0.0, 1.0);
    t * t * t * (t * (t * 6.0 - 15.0) + 10.0)
}

#[derive(Debug)]
struct DecayList {
    /// Oldest-first queue of decaying extents.
    queue: std::collections::VecDeque<VehId>,
    bytes: usize,
    peak: usize,
    epoch_start: Instant,
}

impl DecayList {
    fn new() -> Self {
        DecayList {
            queue: std::collections::VecDeque::new(),
            bytes: 0,
            peak: 0,
            epoch_start: Instant::now(),
        }
    }

    fn push(&mut self, id: VehId, size: usize) {
        self.queue.push_back(id);
        self.bytes += size;
        if self.bytes > self.peak {
            self.peak = self.bytes;
            self.epoch_start = Instant::now();
        }
    }

    fn threshold(&self, now: Instant, window_ms: u64) -> usize {
        if self.peak == 0 {
            return 0;
        }
        let elapsed = now.duration_since(self.epoch_start).as_millis() as f64;
        let t = elapsed / window_ms as f64;
        (self.peak as f64 * (1.0 - smootherstep(t))) as usize
    }
}

#[derive(Debug)]
struct HdrRegion {
    off: PmOffset,
    next_slot: u16,
    free_slots: Vec<u16>,
}

/// Configuration handed to [`LargeAlloc::new`] by the front end.
#[derive(Debug, Clone)]
pub struct LargeConfig {
    /// Start of the heap area extents are carved from.
    pub heap_base: PmOffset,
    /// Size of the heap area.
    pub heap_bytes: usize,
    /// Use the log-structured bookkeeping log.
    pub log_bookkeeping: bool,
    /// Booklog region base (log mode).
    pub booklog_base: PmOffset,
    /// Booklog region size.
    pub booklog_bytes: usize,
    /// Stripes for booklog entry interleaving.
    pub booklog_stripes: usize,
    /// Enable booklog GC.
    pub booklog_gc: bool,
    /// Slow-GC threshold in bytes.
    pub slow_gc_threshold: usize,
    /// Decay window in milliseconds (reclaimed → retained → OS).
    pub decay_ms: u64,
    /// Persistent region-table base (in-place mode: lets recovery find the
    /// 4 MB regions and their header areas).
    pub region_table_base: PmOffset,
    /// Region-table capacity in bytes (8 B count + 8 B per region).
    pub region_table_bytes: usize,
    /// Pre-shifted shard tag OR-ed into every [`VehId`] this allocator
    /// publishes (`shard_index << VEH_LOCAL_BITS`; 0 for a single
    /// shard). Lets the sharded front end route a tagged id back to its
    /// owning shard without consulting the address.
    pub shard_tag: u32,
}

/// The large allocator. Callers serialise access (the front end wraps it in
/// a mutex); `&mut self` methods reflect that.
#[derive(Debug)]
pub struct LargeAlloc {
    cfg: LargeConfig,
    rtree: Arc<RTree>,
    vehs: Vec<Option<Veh>>,
    veh_free: Vec<VehId>,
    /// Best-fit indexes: (size, off) → VehId.
    reclaimed: BTreeMap<(usize, PmOffset), VehId>,
    retained: BTreeMap<(usize, PmOffset), VehId>,
    /// Address index over all list extents (coalescing neighbours).
    by_addr: BTreeMap<PmOffset, VehId>,
    /// Unmapped ranges available for future "mmap"s (off → len).
    unmapped: BTreeMap<PmOffset, usize>,
    /// Bump pointer for fresh mappings.
    brk: PmOffset,
    heap_end: PmOffset,
    /// In-place header regions (in-place mode only).
    regions: Vec<HdrRegion>,
    booklog: Option<BookLog>,
    decay_reclaimed: DecayList,
    decay_retained: DecayList,
    last_tick: Instant,
    mapped_bytes: usize,
    peak_mapped: usize,
    stats: LargeStats,
}

impl LargeAlloc {
    /// Create a fresh large allocator over an empty heap area.
    pub fn new(pool: &PmemPool, cfg: LargeConfig, rtree: Arc<RTree>) -> Self {
        let booklog = cfg.log_bookkeeping.then(|| {
            BookLog::create(
                pool,
                cfg.booklog_base,
                cfg.booklog_bytes,
                cfg.booklog_stripes,
                cfg.booklog_gc,
                cfg.slow_gc_threshold,
            )
        });
        LargeAlloc {
            brk: cfg.heap_base,
            heap_end: cfg.heap_base + cfg.heap_bytes as u64,
            cfg,
            rtree,
            vehs: Vec::new(),
            veh_free: Vec::new(),
            reclaimed: BTreeMap::new(),
            retained: BTreeMap::new(),
            by_addr: BTreeMap::new(),
            unmapped: BTreeMap::new(),
            regions: Vec::new(),
            booklog,
            decay_reclaimed: DecayList::new(),
            decay_retained: DecayList::new(),
            last_tick: Instant::now(),
            mapped_bytes: 0,
            peak_mapped: 0,
            stats: LargeStats::default(),
        }
    }

    /// Tag a local VEH index with this shard's tag for publication.
    #[inline]
    fn tag_id(&self, local: VehId) -> VehId {
        debug_assert_eq!(local & !VEH_LOCAL_MASK, 0);
        self.cfg.shard_tag | local
    }

    /// Strip the shard tag from a published id; `None` when the id
    /// belongs to a different shard (mis-routed free or stale handle).
    #[inline]
    fn local_id(&self, id: VehId) -> Option<VehId> {
        (id & !VEH_LOCAL_MASK == self.cfg.shard_tag).then_some(id & VEH_LOCAL_MASK)
    }

    #[inline]
    fn veh_local(&self, local: VehId) -> Option<&Veh> {
        self.vehs.get(local as usize).and_then(|v| v.as_ref())
    }

    /// Look up a VEH by its published (shard-tagged) id.
    pub fn veh(&self, id: VehId) -> Option<&Veh> {
        self.veh_local(self.local_id(id)?)
    }

    /// Bytes of heap currently mapped (active + reclaimed extents and
    /// region headers).
    pub fn mapped_bytes(&self) -> usize {
        self.mapped_bytes
    }

    /// High-water mark of [`LargeAlloc::mapped_bytes`].
    pub fn peak_mapped(&self) -> usize {
        self.peak_mapped
    }

    /// Size of the active extent at exactly `off`, if any.
    pub fn veh_by_off(&self, off: PmOffset) -> Option<usize> {
        self.by_addr
            .get(&off)
            .and_then(|id| self.veh_local(*id))
            .and_then(|v| (v.state == ExtentState::Active).then_some(v.size))
    }

    /// Every active extent: (tagged veh, offset, is_slab). Used by
    /// recovery GC.
    pub fn active_extents(&self) -> Vec<(VehId, PmOffset, bool)> {
        self.vehs
            .iter()
            .enumerate()
            .filter_map(|(i, v)| v.as_ref().map(|v| (i as VehId, v)))
            .filter(|(_, v)| v.state == ExtentState::Active)
            .map(|(i, v)| (self.tag_id(i), v.off, v.is_slab))
            .collect()
    }

    /// Booklog GC statistics, if the booklog is in use.
    pub fn booklog_stats(&self) -> Option<BookLogStats> {
        self.booklog.as_ref().map(|b| b.stats())
    }

    /// Point-in-time occupancy gauge for the timeline sampler (read-only;
    /// see [`crate::observe`]). Mirrors what the offline doctor derives
    /// from the persistent extent inventory, but from the volatile state,
    /// so a quiesced heap reports identical figures both ways.
    pub fn gauge(&self) -> crate::observe::ShardGauge {
        let mut g = crate::observe::ShardGauge {
            mapped_bytes: self.mapped_bytes as u64,
            free_extents: self.reclaimed.len() + self.retained.len(),
            ..Default::default()
        };
        for v in self.vehs.iter().flatten() {
            if v.state != ExtentState::Active {
                continue;
            }
            if v.is_slab {
                g.active_slabs += 1;
            } else {
                g.active_extents += 1;
                g.live_large_bytes += v.size as u64;
            }
            g.max_extent_end = g.max_extent_end.max(v.off + v.size as u64);
        }
        if let Some(b) = &self.booklog {
            g.booklog_live = b.live_entries() as u64;
            g.booklog_dead = (b.stats().appends).saturating_sub(g.booklog_live);
        }
        g
    }

    /// Extent-allocator telemetry counters.
    pub fn stats(&self) -> &LargeStats {
        &self.stats
    }

    /// The shared address radix tree.
    pub fn rtree(&self) -> &Arc<RTree> {
        &self.rtree
    }

    fn new_veh(&mut self, veh: Veh) -> VehId {
        debug_assert!(self.vehs.len() < VEH_LOCAL_MASK as usize, "shard VEH table full");
        if let Some(id) = self.veh_free.pop() {
            self.vehs[id as usize] = Some(veh);
            id
        } else {
            self.vehs.push(Some(veh));
            (self.vehs.len() - 1) as VehId
        }
    }

    fn drop_veh(&mut self, id: VehId) {
        self.vehs[id as usize] = None;
        self.veh_free.push(id);
    }

    fn add_mapped(&mut self, delta: isize) {
        self.mapped_bytes = (self.mapped_bytes as isize + delta) as usize;
        self.peak_mapped = self.peak_mapped.max(self.mapped_bytes);
    }

    // ----- persistent metadata (either mode) -----

    /// Record a VEH's current (off, size) persistently — booklog append in
    /// log mode, header-slot rewrite in in-place mode.
    fn persist_extent(&mut self, pool: &PmemPool, t: &mut PmThread, id: VehId) -> PmResult<()> {
        let (off, size, is_slab, book, hdr) = {
            let v = self.vehs[id as usize].as_ref().expect("live veh");
            (v.off, v.size, v.is_slab, v.book, v.hdr)
        };
        if self.booklog.is_some() {
            if let Some(old) = book {
                self.booklog.as_mut().expect("log").delete(pool, t, old)?;
            }
            let er = self.booklog.as_mut().expect("log").append(
                pool,
                t,
                BookEntry { addr: off, size: size as u32, is_slab },
            )?;
            self.vehs[id as usize].as_mut().expect("live veh").book = Some(er);
            self.maybe_slow_gc(pool, t)?;
        } else {
            let (region, slot) = match hdr {
                Some(h) => h,
                None => {
                    let h = self.acquire_hdr_slot(off);
                    self.vehs[id as usize].as_mut().expect("live veh").hdr = Some(h);
                    h
                }
            };
            let slot_off =
                self.regions[region as usize].off + (slot as usize * HDR_SLOT_BYTES) as u64;
            pool.write_u64(slot_off, off);
            pool.write_u64(slot_off + 8, (size as u64) << 8 | (is_slab as u64) << 1 | 1);
            pool.charge_store(t, slot_off, HDR_SLOT_BYTES);
            pool.flush(t, slot_off, HDR_SLOT_BYTES, FlushKind::Meta);
            // Chunk-granular bookkeeping: one in-place mark per 64 KB of
            // extent, scattered through the region header (the §3.3
            // write-amplification of chunk-mapped allocators; recovery
            // reads the slots, which stay authoritative).
            self.write_chunk_marks(pool, t, off, size, 1);
            pool.fence(t);
        }
        Ok(())
    }

    /// Write + flush one chunk-map entry per [`CHUNK_GRANULE`] of
    /// `[off, off+size)`, when the extent lies in a header region.
    fn write_chunk_marks(
        &self,
        pool: &PmemPool,
        t: &mut PmThread,
        off: PmOffset,
        size: usize,
        value: u16,
    ) {
        let Some(region) =
            self.regions.iter().find(|r| off >= r.off && off < r.off + REGION_BYTES as u64)
        else {
            return; // direct mappings outside regions carry no chunk map
        };
        let first = ((off - region.off) as usize) / CHUNK_GRANULE;
        let last = (((off + size as u64 - 1 - region.off) as usize) / CHUNK_GRANULE)
            .min(REGION_BYTES / CHUNK_GRANULE - 1);
        // All stores first, then one flush of the covered map range:
        // flushing after each mark would re-dirty a flushed-pending line
        // (an ordering-discipline violation pmsan flags) and eat the
        // reflush penalty on every entry sharing a cache line.
        for c in first..=last {
            pool.write_u16(region.off + (CHUNK_MAP_OFF + c * 2) as u64, value);
        }
        let base = region.off + (CHUNK_MAP_OFF + first * 2) as u64;
        let bytes = (last - first + 1) * 2;
        pool.charge_store(t, base, bytes);
        pool.flush(t, base, bytes, FlushKind::Meta);
    }

    /// Remove a VEH's persistent record.
    fn unpersist_extent(&mut self, pool: &PmemPool, t: &mut PmThread, id: VehId) -> PmResult<()> {
        let v = self.vehs[id as usize].as_mut().expect("live veh");
        if let Some(er) = v.book.take() {
            self.booklog.as_mut().expect("log mode").delete(pool, t, er)?;
            self.maybe_slow_gc(pool, t)?;
        } else if let Some((region, slot)) = v.hdr.take() {
            let (off, size) = {
                let v = self.vehs[id as usize].as_ref().expect("live veh");
                (v.off, v.size)
            };
            let slot_off =
                self.regions[region as usize].off + (slot as usize * HDR_SLOT_BYTES) as u64;
            pool.write_u64(slot_off + 8, 0);
            pool.charge_store(t, slot_off + 8, 8);
            pool.flush(t, slot_off + 8, 8, FlushKind::Meta);
            self.write_chunk_marks(pool, t, off, size, 0);
            pool.fence(t);
            self.regions[region as usize].free_slots.push(slot);
        }
        Ok(())
    }

    fn maybe_slow_gc(&mut self, pool: &PmemPool, t: &mut PmThread) -> PmResult<()> {
        let needs = self.booklog.as_ref().is_some_and(|b| b.needs_slow_gc());
        if !needs {
            return Ok(());
        }
        let span = t.span();
        let moves = self.booklog.as_mut().expect("booklog").slow_gc(pool, t)?;
        self.stats.slow_gc_hist.record(span.elapsed_ns(t));
        for veh in self.vehs.iter_mut().flatten() {
            if let Some(er) = veh.book {
                if let Some(new) = moves.get(&er) {
                    veh.book = Some(*new);
                }
            }
        }
        Ok(())
    }

    /// Find (or create) the in-place header region covering `off` and take
    /// a slot from it. `off` normally falls inside a region this allocator
    /// mapped; slot exhaustion falls back to any region with space
    /// (metadata for an extent may then live in a foreign region — still a
    /// random in-place write, which is the behaviour under study).
    fn acquire_hdr_slot(&mut self, off: PmOffset) -> (u32, u16) {
        let covering =
            self.regions.iter().position(|r| off >= r.off && off < r.off + REGION_BYTES as u64);
        let order: Vec<usize> = covering
            .into_iter()
            .chain((0..self.regions.len()).filter(|i| Some(*i) != covering))
            .collect();
        for i in order {
            let r = &mut self.regions[i];
            if let Some(s) = r.free_slots.pop() {
                return (i as u32, s);
            }
            if (r.next_slot as usize) < HDR_SLOTS_BYTES / HDR_SLOT_BYTES {
                let s = r.next_slot;
                r.next_slot += 1;
                return (i as u32, s);
            }
        }
        unreachable!("header regions can describe every extent they contain");
    }

    // ----- mapping -----

    /// Take a page-aligned range of exactly `len` bytes from the unmapped
    /// set or the bump pointer.
    fn map_range(&mut self, len: usize) -> PmResult<PmOffset> {
        debug_assert_eq!(len % PAGE, 0);
        // First fit over recycled ranges.
        let found = self.unmapped.iter().find(|(_, l)| **l >= len).map(|(o, l)| (*o, *l));
        if let Some((off, have)) = found {
            self.unmapped.remove(&off);
            if have > len {
                self.unmapped.insert(off + len as u64, have - len);
            }
            return Ok(off);
        }
        if self.brk + len as u64 > self.heap_end {
            return Err(PmError::OutOfMemory { requested: len });
        }
        let off = self.brk;
        self.brk += len as u64;
        Ok(off)
    }

    /// Return a range to the unmapped set, merging neighbours.
    fn unmap_range(&mut self, off: PmOffset, len: usize) {
        let mut off = off;
        let mut len = len;
        // Merge with predecessor.
        if let Some((&po, &pl)) = self.unmapped.range(..off).next_back() {
            if po + pl as u64 == off {
                self.unmapped.remove(&po);
                off = po;
                len += pl;
            }
        }
        // Merge with successor.
        if let Some(&sl) = self.unmapped.get(&(off + len as u64)) {
            self.unmapped.remove(&(off + len as u64));
            len += sl;
        }
        self.unmapped.insert(off, len);
    }

    /// "mmap" a fresh 4 MB region, register its header area (in-place
    /// mode), and return the usable data range.
    fn map_region(&mut self, pool: &PmemPool, t: &mut PmThread) -> PmResult<(PmOffset, usize)> {
        let off = self.map_range(REGION_BYTES)?;
        self.add_mapped(REGION_BYTES as isize);
        if self.cfg.log_bookkeeping {
            Ok((off, REGION_BYTES))
        } else {
            // Zero + persist the header area once at mapping time.
            pool.fill_bytes(off, REGION_HEADER_BYTES, 0);
            pool.charge_store(t, off, REGION_HEADER_BYTES);
            pool.flush(t, off, REGION_HEADER_BYTES, FlushKind::Meta);
            pool.fence(t);
            self.regions.push(HdrRegion { off, next_slot: 0, free_slots: Vec::new() });
            // Record the region in the persistent region table so recovery
            // can find its header slots.
            let n = self.regions.len() as u64;
            let cap = (self.cfg.region_table_bytes / 8).saturating_sub(1) as u64;
            assert!(n <= cap, "region table full ({n} regions)");
            // Slot first, count last: the count word is the commit point,
            // so it must never persist ahead of the entry it makes
            // reachable (a crash between the two would hand recovery a
            // garbage region pointer).
            pool.write_u64(self.cfg.region_table_base + n * 8, off);
            pool.charge_store(t, self.cfg.region_table_base + n * 8, 8);
            pool.flush(t, self.cfg.region_table_base + n * 8, 8, FlushKind::Meta);
            pool.fence(t);
            pool.persist_u64(t, self.cfg.region_table_base, n, FlushKind::Meta);
            Ok((off + REGION_HEADER_BYTES as u64, REGION_BYTES - REGION_HEADER_BYTES))
        }
    }

    // ----- public allocation API -----

    /// Allocate an extent of at least `size` bytes (page-rounded). Returns
    /// the VEH id and extent offset.
    ///
    /// # Errors
    /// [`PmError::OutOfMemory`] when the heap area is exhausted;
    /// [`PmError::InvalidRequest`] for zero-size requests.
    pub fn alloc(
        &mut self,
        pool: &PmemPool,
        t: &mut PmThread,
        size: usize,
        is_slab: bool,
    ) -> PmResult<(VehId, PmOffset)> {
        self.alloc_aligned(pool, t, size, PAGE, is_slab)
    }

    /// Allocate an extent of at least `size` bytes whose base is aligned to
    /// `align` (power of two ≥ page). Slab extents use 64 KB alignment so
    /// the small allocator can recover the slab base from any block
    /// address.
    ///
    /// # Errors
    /// Same as [`LargeAlloc::alloc`].
    pub fn alloc_aligned(
        &mut self,
        pool: &PmemPool,
        t: &mut PmThread,
        size: usize,
        align: usize,
        is_slab: bool,
    ) -> PmResult<(VehId, PmOffset)> {
        let (id, off) = self.alloc_reserve(pool, t, size, align, is_slab)?;
        self.commit_local(pool, t, id)?;
        Ok((self.tag_id(id), off))
    }

    /// Reserve an extent *without* persisting its metadata record or
    /// registering it in the rtree. The NVAlloc large path reserves, writes
    /// its WAL entry, and only then calls [`LargeAlloc::commit_extent`], so
    /// a crash between reservation and WAL leaves no persistent trace and
    /// a crash between WAL and commit is undone by replay (§4.4).
    ///
    /// # Errors
    /// Same as [`LargeAlloc::alloc`].
    pub fn alloc_deferred(
        &mut self,
        pool: &PmemPool,
        t: &mut PmThread,
        size: usize,
    ) -> PmResult<(VehId, PmOffset)> {
        self.alloc_deferred_aligned(pool, t, size, PAGE)
    }

    /// [`LargeAlloc::alloc_deferred`] with an explicit base alignment
    /// (power of two ≥ page). This is the oversize-alignment path of the
    /// `GlobalAlloc` front end: requests whose alignment exceeds what
    /// size-class padding can honour get a naturally aligned extent.
    ///
    /// # Errors
    /// Same as [`LargeAlloc::alloc`], plus [`PmError::InvalidRequest`]
    /// when `align` exceeds the page size on a huge (> [`HUGE_MIN`])
    /// request — huge extents are mapped page-aligned only; callers pad
    /// instead.
    pub fn alloc_deferred_aligned(
        &mut self,
        pool: &PmemPool,
        t: &mut PmThread,
        size: usize,
        align: usize,
    ) -> PmResult<(VehId, PmOffset)> {
        if align > PAGE && size.next_multiple_of(PAGE) > HUGE_MIN {
            return Err(PmError::InvalidRequest("huge extents are page-aligned only"));
        }
        let (id, off) = self.alloc_reserve(pool, t, size, align, false)?;
        Ok((self.tag_id(id), off))
    }

    /// Persist the metadata record of a reserved extent and register it in
    /// the rtree.
    ///
    /// # Errors
    /// Propagates booklog append failures.
    ///
    /// # Panics
    /// Panics if `id` carries another shard's tag.
    pub fn commit_extent(&mut self, pool: &PmemPool, t: &mut PmThread, id: VehId) -> PmResult<()> {
        let local = self.local_id(id).expect("commit of foreign-shard veh");
        self.commit_local(pool, t, local)
    }

    fn commit_local(&mut self, pool: &PmemPool, t: &mut PmThread, id: VehId) -> PmResult<()> {
        self.persist_extent(pool, t, id)?;
        let tagged = self.tag_id(id);
        let v = self.vehs[id as usize].as_ref().expect("live veh");
        self.rtree.insert_range(v.off, v.size, Owner::Extent { veh: tagged }.pack());
        Ok(())
    }

    fn alloc_reserve(
        &mut self,
        pool: &PmemPool,
        t: &mut PmThread,
        size: usize,
        align: usize,
        is_slab: bool,
    ) -> PmResult<(VehId, PmOffset)> {
        if size == 0 {
            return Err(PmError::InvalidRequest("zero-size extent"));
        }
        debug_assert!(align.is_power_of_two() && align >= PAGE);
        let size = size.next_multiple_of(PAGE);
        self.maybe_decay(pool, t)?;

        if size > HUGE_MIN {
            debug_assert_eq!(align, PAGE, "huge allocations are page-aligned only");
            return self.huge_reserve(size, is_slab);
        }

        // Best fit: reclaimed, then retained (§4.3), requiring an aligned
        // body to fit.
        let candidate = Self::best_fit_aligned(&self.reclaimed, size, align)
            .map(|k| (k, true))
            .or_else(|| Self::best_fit_aligned(&self.retained, size, align).map(|k| (k, false)));

        let id = if let Some((key, was_reclaimed)) = candidate {
            self.stats.best_fit_hits += 1;
            let id = if was_reclaimed {
                self.reclaimed.remove(&key).expect("candidate present")
            } else {
                let id = self.retained.remove(&key).expect("candidate present");
                // Re-mapping a retained extent brings its memory back.
                self.add_mapped(key.0 as isize);
                id
            };
            self.carve_aligned(id, size, align)
        } else {
            // No extent available: map a new region and carve it.
            let (base, avail) = self.map_region(pool, t)?;
            debug_assert!(crate::size_class::SLAB_SIZE <= avail);
            let id = self.new_veh(Veh {
                off: base,
                size: avail,
                state: ExtentState::Reclaimed,
                is_slab: false,
                book: None,
                hdr: None,
                freed_at: None,
                huge: false,
            });
            self.by_addr.insert(base, id);
            self.carve_aligned(id, size, align)
        };

        let v = self.vehs[id as usize].as_mut().expect("live veh");
        v.state = ExtentState::Active;
        v.is_slab = is_slab;
        v.freed_at = None;
        let off = v.off;
        debug_assert_eq!(v.size, size);
        debug_assert_eq!(off % align as u64, 0);
        Ok((id, off))
    }

    fn aligned_body(off: PmOffset, esize: usize, size: usize, align: usize) -> Option<PmOffset> {
        let a = crate::align_up64(off, align as u64);
        (a + size as u64 <= off + esize as u64).then_some(a)
    }

    fn best_fit_aligned(
        list: &BTreeMap<(usize, PmOffset), VehId>,
        size: usize,
        align: usize,
    ) -> Option<(usize, PmOffset)> {
        list.range((size, 0)..)
            .find(|((esize, off), _)| Self::aligned_body(*off, *esize, size, align).is_some())
            .map(|(k, _)| *k)
    }

    /// Trim extent `id` (not in any list) down to an `align`-aligned body
    /// of `size` bytes; head and tail remainders return to the reclaimed
    /// list. Returns the id of the body extent. Free extents have no
    /// persistent record: recovery infers them from the gaps between live
    /// extents (§4.4), so carving writes nothing.
    fn carve_aligned(&mut self, id: VehId, size: usize, align: usize) -> VehId {
        let (off, have) = {
            let v = self.vehs[id as usize].as_ref().expect("live veh");
            (v.off, v.size)
        };
        let body = Self::aligned_body(off, have, size, align).expect("candidate fits");
        let head = (body - off) as usize;
        let tail = have - head - size;
        // Reuse `id` for the body; re-key its address index if it moved.
        if head > 0 {
            self.stats.splits += 1;
            self.by_addr.remove(&off);
            let head_id = self.new_veh(Veh {
                off,
                size: head,
                state: ExtentState::Reclaimed,
                is_slab: false,
                book: None,
                hdr: None,
                freed_at: Some(Instant::now()),
                huge: false,
            });
            self.by_addr.insert(off, head_id);
            self.reclaimed.insert((head, off), head_id);
            self.decay_reclaimed.push(head_id, head);
            self.by_addr.insert(body, id);
        }
        {
            let v = self.vehs[id as usize].as_mut().expect("live veh");
            v.off = body;
            v.size = size;
        }
        if tail > 0 {
            self.stats.splits += 1;
            let tail_off = body + size as u64;
            let tail_id = self.new_veh(Veh {
                off: tail_off,
                size: tail,
                state: ExtentState::Reclaimed,
                is_slab: false,
                book: None,
                hdr: None,
                freed_at: Some(Instant::now()),
                huge: false,
            });
            self.by_addr.insert(tail_off, tail_id);
            self.reclaimed.insert((tail, tail_off), tail_id);
            self.decay_reclaimed.push(tail_id, tail);
        }
        id
    }

    fn huge_reserve(&mut self, size: usize, is_slab: bool) -> PmResult<(VehId, PmOffset)> {
        let off = self.map_range(size)?;
        self.add_mapped(size as isize);
        let id = self.new_veh(Veh {
            off,
            size,
            state: ExtentState::Active,
            is_slab,
            book: None,
            hdr: None,
            freed_at: None,
            huge: true,
        });
        self.by_addr.insert(off, id);
        Ok((id, off))
    }

    /// Free extent `id`: move it to the reclaimed list and coalesce with
    /// adjacent reclaimed extents.
    ///
    /// # Errors
    /// [`PmError::NotAllocated`] if the extent is not active (double free).
    pub fn free(&mut self, pool: &PmemPool, t: &mut PmThread, id: VehId) -> PmResult<()> {
        let Some(id) = self.local_id(id) else { return Err(PmError::NotAllocated) };
        let (off, size, state, huge) = match self.vehs.get(id as usize).and_then(|v| v.as_ref()) {
            Some(v) => (v.off, v.size, v.state, v.huge),
            None => return Err(PmError::NotAllocated),
        };
        if state != ExtentState::Active {
            return Err(PmError::NotAllocated);
        }
        // Shard-identity gate: an extent whose body lies outside this
        // shard's heap span is corrupt or mis-routed, and unmapping it
        // here would hand this shard free space another shard owns —
        // silent cross-shard double-ownership. This used to be implied
        // (debug builds only, via the carve asserts); it is now a typed,
        // always-on refusal that the malloc shim escalates to an
        // abort-with-report.
        if off < self.cfg.heap_base || off + size as u64 > self.heap_end {
            return Err(PmError::ShardViolation {
                shard_base: self.cfg.heap_base,
                shard_end: self.heap_end,
                offset: off,
                len: size,
            });
        }
        self.unpersist_extent(pool, t, id)?;
        self.rtree.remove_range(off, size);

        if huge {
            self.by_addr.remove(&off);
            self.drop_veh(id);
            self.unmap_range(off, size);
            self.add_mapped(-(size as isize));
            return Ok(());
        }

        {
            let v = self.vehs[id as usize].as_mut().expect("live veh");
            v.state = ExtentState::Reclaimed;
            v.is_slab = false;
            v.freed_at = Some(Instant::now());
        }
        let id = self.coalesce(id);
        let v = self.vehs[id as usize].as_ref().expect("live veh");
        self.reclaimed.insert((v.size, v.off), id);
        let sz = v.size;
        self.decay_reclaimed.push(id, sz);
        self.maybe_decay(pool, t)?;
        Ok(())
    }

    /// Merge `id` with address-adjacent *reclaimed* neighbours; returns the
    /// id of the merged extent. The caller re-inserts the result into the
    /// reclaimed index.
    fn coalesce(&mut self, id: VehId) -> VehId {
        let (mut off, mut size) = {
            let v = self.vehs[id as usize].as_ref().expect("live veh");
            (v.off, v.size)
        };
        let mut id = id;
        // Predecessor.
        if let Some((&po, &pid)) = self.by_addr.range(..off).next_back() {
            let mergable = {
                let p = self.vehs[pid as usize].as_ref().expect("live veh");
                p.state == ExtentState::Reclaimed
                    && !p.huge
                    && po + p.size as u64 == off
                    && self.reclaimed.contains_key(&(p.size, po))
            };
            if mergable {
                let p_size = self.vehs[pid as usize].as_ref().expect("live veh").size;
                self.reclaimed.remove(&(p_size, po));
                self.by_addr.remove(&off);
                self.drop_veh(id);
                let p = self.vehs[pid as usize].as_mut().expect("live veh");
                p.size += size;
                id = pid;
                off = po;
                size = p.size;
                self.stats.coalesces += 1;
            }
        }
        // Successor.
        let succ = off + size as u64;
        if let Some(&sid) = self.by_addr.get(&succ) {
            let mergable = {
                let s = self.vehs[sid as usize].as_ref().expect("live veh");
                s.state == ExtentState::Reclaimed
                    && !s.huge
                    && self.reclaimed.contains_key(&(s.size, succ))
            };
            if mergable {
                let s_size = self.vehs[sid as usize].as_ref().expect("live veh").size;
                self.reclaimed.remove(&(s_size, succ));
                self.by_addr.remove(&succ);
                self.drop_veh(sid);
                let v = self.vehs[id as usize].as_mut().expect("live veh");
                v.size += s_size;
                self.stats.coalesces += 1;
            }
        }
        id
    }

    // ----- decay -----

    /// One incremental maintenance step, run by the allocator service's
    /// epoch tick: booklog slow-GC when its dead-bytes threshold has
    /// been crossed, then the decay schedule — exactly the work a
    /// worker's slow path would otherwise do inline.
    pub fn maintain(&mut self, pool: &PmemPool, t: &mut PmThread) -> PmResult<()> {
        self.maybe_slow_gc(pool, t)?;
        self.maybe_decay(pool, t)
    }

    /// Run the decay schedule if ≥ 50 ms elapsed since the last tick
    /// (jemalloc's interval, §2.2).
    pub fn maybe_decay(&mut self, pool: &PmemPool, t: &mut PmThread) -> PmResult<()> {
        let now = Instant::now();
        if now.duration_since(self.last_tick).as_millis() < 50 {
            return Ok(());
        }
        self.last_tick = now;
        self.decay_tick(pool, t, now)
    }

    fn decay_tick(&mut self, _pool: &PmemPool, _t: &mut PmThread, now: Instant) -> PmResult<()> {
        self.stats.decay_epochs += 1;
        // Reclaimed → retained.
        let th = self.decay_reclaimed.threshold(now, self.cfg.decay_ms);
        while self.decay_reclaimed.bytes > th {
            let Some(id) = self.decay_reclaimed.queue.pop_front() else { break };
            // Skip ids that were coalesced away or re-activated.
            let Some(v) = self.vehs.get(id as usize).and_then(|v| v.as_ref()) else {
                continue;
            };
            if v.state != ExtentState::Reclaimed || !self.reclaimed.contains_key(&(v.size, v.off)) {
                continue;
            }
            let (off, size) = (v.off, v.size);
            self.reclaimed.remove(&(size, off));
            self.decay_reclaimed.bytes = self.decay_reclaimed.bytes.saturating_sub(size);
            let v = self.vehs[id as usize].as_mut().expect("live veh");
            v.state = ExtentState::Retained;
            self.retained.insert((size, off), id);
            self.decay_retained.push(id, size);
            // Unmapping releases physical memory.
            self.add_mapped(-(size as isize));
        }
        if self.decay_reclaimed.bytes == 0 {
            self.decay_reclaimed.peak = 0;
        }

        // Retained → OS.
        let th = self.decay_retained.threshold(now, self.cfg.decay_ms);
        while self.decay_retained.bytes > th {
            let Some(id) = self.decay_retained.queue.pop_front() else { break };
            let Some(v) = self.vehs.get(id as usize).and_then(|v| v.as_ref()) else {
                continue;
            };
            if v.state != ExtentState::Retained || !self.retained.contains_key(&(v.size, v.off)) {
                continue;
            }
            let (off, size) = (v.off, v.size);
            self.retained.remove(&(size, off));
            self.decay_retained.bytes = self.decay_retained.bytes.saturating_sub(size);
            self.by_addr.remove(&off);
            self.drop_veh(id);
            self.unmap_range(off, size);
        }
        if self.decay_retained.bytes == 0 {
            self.decay_retained.peak = 0;
        }
        Ok(())
    }

    // ----- recovery -----

    /// Rebuild the large allocator from a (possibly crashed) pool image.
    ///
    /// Live extents come from the bookkeeping log (log mode) or the
    /// region-table header slots (in-place mode); the space gaps between
    /// them become reclaimed extents (§4.4). Returns the rebuilt allocator
    /// and the recovered extents (the front end re-registers slabs).
    pub fn recover(
        pool: &PmemPool,
        cfg: LargeConfig,
        rtree: Arc<RTree>,
    ) -> (Self, Vec<RecoveredExtent>) {
        let mut la = if cfg.log_bookkeeping {
            let (log, entries) = BookLog::recover(
                pool,
                cfg.booklog_base,
                cfg.booklog_bytes,
                cfg.booklog_stripes,
                cfg.booklog_gc,
                cfg.slow_gc_threshold,
            );
            let mut la = LargeAlloc::new_empty(cfg, rtree);
            la.booklog = Some(log);
            for (er, e) in entries {
                let id = la.new_veh(Veh {
                    off: e.addr,
                    size: e.size as usize,
                    state: ExtentState::Active,
                    is_slab: e.is_slab,
                    book: Some(er),
                    hdr: None,
                    freed_at: None,
                    huge: e.size as usize > HUGE_MIN,
                });
                la.by_addr.insert(e.addr, id);
            }
            la
        } else {
            let mut la = LargeAlloc::new_empty(cfg, rtree);
            let n = pool.read_u64(la.cfg.region_table_base);
            for r in 1..=n {
                let roff = pool.read_u64(la.cfg.region_table_base + r * 8);
                let mut region = HdrRegion { off: roff, next_slot: 0, free_slots: Vec::new() };
                let slots = HDR_SLOTS_BYTES / HDR_SLOT_BYTES;
                for s in 0..slots {
                    let slot_off = roff + (s * HDR_SLOT_BYTES) as u64;
                    let w1 = pool.read_u64(slot_off + 8);
                    if w1 & 1 == 1 {
                        let off = pool.read_u64(slot_off);
                        let size = (w1 >> 8) as usize;
                        let is_slab = w1 >> 1 & 1 == 1;
                        let id = la.new_veh(Veh {
                            off,
                            size,
                            state: ExtentState::Active,
                            is_slab,
                            book: None,
                            hdr: Some(((r - 1) as u32, s as u16)),
                            freed_at: None,
                            huge: size > HUGE_MIN,
                        });
                        la.by_addr.insert(off, id);
                        region.next_slot = region.next_slot.max(s as u16 + 1);
                    }
                }
                // Free slots below the high-water mark are reusable.
                for s in 0..region.next_slot {
                    let w1 = pool.read_u64(roff + (s as usize * HDR_SLOT_BYTES) as u64 + 8);
                    if w1 & 1 == 0 {
                        region.free_slots.push(s);
                    }
                }
                la.regions.push(region);
            }
            la
        };

        // Reconstruct brk: everything below the highest live byte (or
        // region end) is considered mapped heap.
        let mut ceiling = la.cfg.heap_base;
        for v in la.vehs.iter().flatten() {
            ceiling = ceiling.max(v.off + v.size as u64);
        }
        for r in &la.regions {
            ceiling = ceiling.max(r.off + REGION_BYTES as u64);
        }
        la.brk = crate::align_up64(ceiling, PAGE as u64);

        // Space gaps between live extents (and region headers) become
        // reclaimed extents.
        let mut blocked: Vec<(PmOffset, usize)> = la
            .vehs
            .iter()
            .flatten()
            .map(|v| (v.off, v.size))
            .chain(la.regions.iter().map(|r| (r.off, REGION_HEADER_BYTES)))
            .collect();
        blocked.sort_unstable();
        let mut cursor = la.cfg.heap_base;
        let mut gaps = Vec::new();
        for (off, size) in blocked {
            if off > cursor {
                gaps.push((cursor, (off - cursor) as usize));
            }
            cursor = cursor.max(off + size as u64);
        }
        if la.brk > cursor {
            gaps.push((cursor, (la.brk - cursor) as usize));
        }
        for (off, size) in gaps {
            let id = la.new_veh(Veh {
                off,
                size,
                state: ExtentState::Reclaimed,
                is_slab: false,
                book: None,
                hdr: None,
                freed_at: Some(Instant::now()),
                huge: false,
            });
            la.by_addr.insert(off, id);
            la.reclaimed.insert((size, off), id);
            la.decay_reclaimed.push(id, size);
        }

        // Accounting: everything up to brk is mapped.
        la.mapped_bytes = (la.brk - la.cfg.heap_base) as usize;
        la.peak_mapped = la.mapped_bytes;

        // Register live extents in the rtree; the front end overwrites
        // slab ranges with slab owners afterwards.
        let mut out = Vec::new();
        for (idx, v) in la.vehs.iter().enumerate() {
            let Some(v) = v else { continue };
            if v.state == ExtentState::Active {
                let tagged = la.tag_id(idx as VehId);
                la.rtree.insert_range(v.off, v.size, Owner::Extent { veh: tagged }.pack());
                out.push(RecoveredExtent {
                    veh: tagged,
                    off: v.off,
                    size: v.size,
                    is_slab: v.is_slab,
                });
            }
        }
        (la, out)
    }

    fn new_empty(cfg: LargeConfig, rtree: Arc<RTree>) -> Self {
        LargeAlloc {
            brk: cfg.heap_base,
            heap_end: cfg.heap_base + cfg.heap_bytes as u64,
            cfg,
            rtree,
            vehs: Vec::new(),
            veh_free: Vec::new(),
            reclaimed: BTreeMap::new(),
            retained: BTreeMap::new(),
            by_addr: BTreeMap::new(),
            unmapped: BTreeMap::new(),
            regions: Vec::new(),
            booklog: None,
            decay_reclaimed: DecayList::new(),
            decay_retained: DecayList::new(),
            last_tick: Instant::now(),
            mapped_bytes: 0,
            peak_mapped: 0,
            stats: LargeStats::default(),
        }
    }

    /// Force a full decay pass regardless of thresholds (shutdown, tests).
    pub fn drain_free_lists(&mut self, pool: &PmemPool, t: &mut PmThread) -> PmResult<()> {
        self.decay_reclaimed.peak = 0;
        self.decay_retained.peak = 0;
        self.decay_tick(pool, t, Instant::now())?;
        // Second pass: extents demoted above may now retire fully.
        self.decay_retained.peak = 0;
        self.decay_tick(pool, t, Instant::now())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nvalloc_pmem::{LatencyMode, PmemConfig};

    fn setup(log_mode: bool) -> (Arc<PmemPool>, LargeAlloc, PmThread) {
        let pool =
            PmemPool::new(PmemConfig::default().pool_size(80 << 20).latency_mode(LatencyMode::Off));
        let t = pool.register_thread();
        let cfg = LargeConfig {
            heap_base: 2 << 20,
            heap_bytes: 76 << 20,
            log_bookkeeping: log_mode,
            booklog_base: 4096,
            booklog_bytes: (1 << 20) - 4096,
            booklog_stripes: 6,
            booklog_gc: true,
            slow_gc_threshold: 4 << 10, // 4 chunks — small enough for tests to exercise slow GC
            decay_ms: 10_000,
            region_table_base: 1 << 20,
            region_table_bytes: 64 << 10,
            shard_tag: 0,
        };
        let rtree = Arc::new(RTree::new());
        let la = LargeAlloc::new(&pool, cfg, rtree);
        (pool, la, t)
    }

    #[test]
    fn smootherstep_properties() {
        assert_eq!(smootherstep(0.0), 0.0);
        assert_eq!(smootherstep(1.0), 1.0);
        assert!(smootherstep(-1.0) == 0.0 && smootherstep(2.0) == 1.0);
        let mut prev = 0.0;
        for i in 0..=100 {
            let v = smootherstep(i as f64 / 100.0);
            assert!(v >= prev, "must be monotone");
            prev = v;
        }
        assert!((smootherstep(0.5) - 0.5).abs() < 1e-12, "symmetric at midpoint");
    }

    #[test]
    fn alloc_free_roundtrip_both_modes() {
        for mode in [true, false] {
            let (pool, mut la, mut t) = setup(mode);
            let (id, off) = la.alloc(&pool, &mut t, 100 << 10, false).unwrap();
            assert_eq!(off % PAGE as u64, 0);
            let v = la.veh(id).unwrap();
            assert_eq!(v.size, 100 << 10);
            assert_eq!(v.state, ExtentState::Active);
            la.free(&pool, &mut t, id).unwrap();
            assert!(la.free(&pool, &mut t, id).is_err(), "double free must fail");
        }
    }

    #[test]
    fn freed_extent_is_reused() {
        let (pool, mut la, mut t) = setup(true);
        let (id, off) = la.alloc(&pool, &mut t, 64 << 10, false).unwrap();
        la.free(&pool, &mut t, id).unwrap();
        let (_, off2) = la.alloc(&pool, &mut t, 64 << 10, false).unwrap();
        assert_eq!(off, off2, "best-fit should reuse the freed extent");
    }

    #[test]
    fn best_fit_prefers_snuggest_extent() {
        let (pool, mut la, mut t) = setup(true);
        let (a, _) = la.alloc(&pool, &mut t, 256 << 10, false).unwrap();
        let (_b, _) = la.alloc(&pool, &mut t, 32 << 10, false).unwrap();
        let (c, off_c) = la.alloc(&pool, &mut t, 64 << 10, false).unwrap();
        let (_d, _) = la.alloc(&pool, &mut t, 32 << 10, false).unwrap();
        // Free the 256 K and 64 K extents; a 60 K request must take the 64 K.
        la.free(&pool, &mut t, a).unwrap();
        la.free(&pool, &mut t, c).unwrap();
        let (_, off) = la.alloc(&pool, &mut t, 60 << 10, false).unwrap();
        assert_eq!(off, off_c);
    }

    #[test]
    fn adjacent_frees_coalesce() {
        let (pool, mut la, mut t) = setup(true);
        let (a, off_a) = la.alloc(&pool, &mut t, 64 << 10, false).unwrap();
        let (b, off_b) = la.alloc(&pool, &mut t, 64 << 10, false).unwrap();
        let (_guard, _) = la.alloc(&pool, &mut t, 64 << 10, false).unwrap();
        assert_eq!(off_b, off_a + (64 << 10));
        la.free(&pool, &mut t, a).unwrap();
        la.free(&pool, &mut t, b).unwrap();
        // A 128 K request must fit the coalesced extent at off_a.
        let (_, off) = la.alloc(&pool, &mut t, 128 << 10, false).unwrap();
        assert_eq!(off, off_a);
    }

    #[test]
    fn split_leaves_usable_remainder() {
        let (pool, mut la, mut t) = setup(true);
        let (_, off1) = la.alloc(&pool, &mut t, 20 << 10, false).unwrap();
        let (_, off2) = la.alloc(&pool, &mut t, 20 << 10, false).unwrap();
        // Both should come from the same 4 MB region.
        assert_eq!(off2, off1 + (20 << 10));
    }

    #[test]
    fn huge_objects_bypass_lists() {
        let (pool, mut la, mut t) = setup(true);
        let (id, off) = la.alloc(&pool, &mut t, 3 << 20, false).unwrap();
        assert!(la.veh(id).unwrap().huge);
        let mapped = la.mapped_bytes();
        la.free(&pool, &mut t, id).unwrap();
        assert_eq!(la.mapped_bytes(), mapped - (3 << 20));
        // The range is recycled for the next huge alloc.
        let (_, off2) = la.alloc(&pool, &mut t, 3 << 20, false).unwrap();
        assert_eq!(off, off2);
    }

    #[test]
    fn rtree_tracks_active_extents() {
        let (pool, mut la, mut t) = setup(true);
        let rtree = Arc::clone(la.rtree());
        let (id, off) = la.alloc(&pool, &mut t, 64 << 10, false).unwrap();
        match Owner::unpack(rtree.lookup(off + 100).unwrap()) {
            Owner::Extent { veh } => assert_eq!(veh, id),
            o => panic!("wrong owner {o:?}"),
        }
        la.free(&pool, &mut t, id).unwrap();
        assert!(rtree.lookup(off).is_none(), "freed extent must leave the rtree");
    }

    #[test]
    fn shard_tag_routes_ids() {
        let (pool, mut la, mut t) = setup(true);
        la.cfg.shard_tag = 3 << VEH_LOCAL_BITS;
        let (id, off) = la.alloc(&pool, &mut t, 64 << 10, false).unwrap();
        assert_eq!(id >> VEH_LOCAL_BITS, 3, "published ids carry the shard tag");
        assert!(la.veh(id).is_some());
        assert!(la.veh(id & VEH_LOCAL_MASK).is_none(), "untagged id must not resolve");
        // The rtree handle carries the tag too, so free-by-address routes.
        match Owner::unpack(la.rtree().lookup(off).unwrap()) {
            Owner::Extent { veh } => assert_eq!(veh, id),
            o => panic!("wrong owner {o:?}"),
        }
        // A free carrying the wrong shard tag is rejected; the right one works.
        assert!(la.free(&pool, &mut t, id & VEH_LOCAL_MASK).is_err());
        la.free(&pool, &mut t, id).unwrap();
    }

    #[test]
    fn free_refuses_extent_outside_shard_span() {
        let (pool, mut la, mut t) = setup(true);
        let (id, _) = la.alloc(&pool, &mut t, 64 << 10, false).unwrap();
        // Corrupt the VEH so its body sits below the shard's heap span —
        // exactly what a cross-shard mix-up or trashed table produces.
        let forged = la.cfg.heap_base - (64 << 10);
        la.vehs[id as usize].as_mut().unwrap().off = forged;
        match la.free(&pool, &mut t, id) {
            Err(PmError::ShardViolation { shard_base, offset, len, .. }) => {
                assert_eq!(shard_base, la.cfg.heap_base);
                assert_eq!(offset, forged);
                assert_eq!(len, 64 << 10);
            }
            r => panic!("expected ShardViolation, got {r:?}"),
        }
        // The refusal must leave the extent untouched (no unmap happened).
        assert_eq!(la.veh(id).unwrap().state, ExtentState::Active);
    }

    #[test]
    fn aligned_deferred_reserve_honours_alignment() {
        let (pool, mut la, mut t) = setup(true);
        // Misalign the carve cursor first.
        la.alloc(&pool, &mut t, 12 << 10, false).unwrap();
        let (id, off) = la.alloc_deferred_aligned(&pool, &mut t, 20 << 10, 64 << 10).unwrap();
        assert_eq!(off % (64 << 10), 0, "base must honour the requested alignment");
        la.commit_extent(&pool, &mut t, id).unwrap();
        la.free(&pool, &mut t, id).unwrap();
        // Huge + oversize alignment is refused (callers pad instead).
        assert!(matches!(
            la.alloc_deferred_aligned(&pool, &mut t, (2 << 20) + PAGE, 8192),
            Err(PmError::InvalidRequest(_))
        ));
    }

    #[test]
    fn mapped_accounting_tracks_regions() {
        let (pool, mut la, mut t) = setup(true);
        assert_eq!(la.mapped_bytes(), 0);
        la.alloc(&pool, &mut t, 64 << 10, false).unwrap();
        assert_eq!(la.mapped_bytes(), REGION_BYTES);
        la.alloc(&pool, &mut t, 64 << 10, false).unwrap();
        assert_eq!(la.mapped_bytes(), REGION_BYTES, "second alloc reuses the region");
        assert_eq!(la.peak_mapped(), REGION_BYTES);
    }

    #[test]
    fn inplace_mode_writes_header_slots() {
        let (pool, mut la, mut t) = setup(false);
        pool.stats().reset();
        let (id, _) = la.alloc(&pool, &mut t, 64 << 10, false).unwrap();
        let s = pool.stats().snapshot();
        assert!(s.flushes_of(FlushKind::Meta) > 0, "in-place mode must flush metadata");
        assert_eq!(s.flushes_of(FlushKind::BookLog), 0);
        assert!(la.veh(id).unwrap().hdr.is_some());
    }

    #[test]
    fn log_mode_appends_instead() {
        let (pool, mut la, mut t) = setup(true);
        pool.stats().reset();
        let (id, _) = la.alloc(&pool, &mut t, 64 << 10, false).unwrap();
        let s = pool.stats().snapshot();
        assert!(s.flushes_of(FlushKind::BookLog) > 0);
        assert_eq!(s.flushes_of(FlushKind::Meta), 0, "log mode must not write headers");
        assert!(la.veh(id).unwrap().book.is_some());
    }

    #[test]
    fn exhaustion_reports_oom() {
        let (pool, mut la, mut t) = setup(true);
        let mut n = 0;
        loop {
            match la.alloc(&pool, &mut t, 1 << 20, false) {
                Ok(_) => n += 1,
                Err(PmError::OutOfMemory { .. }) => break,
                Err(e) => panic!("unexpected error {e}"),
            }
            assert!(n < 10_000, "must eventually exhaust");
        }
        assert!(n >= 60, "should fit ~76 one-MB extents, got {n}");
    }

    #[test]
    fn slow_gc_relocation_keeps_vehs_consistent() {
        let (pool, mut la, mut t) = setup(true);
        let mut ids = Vec::new();
        for i in 0..500 {
            let (id, _) = la.alloc(&pool, &mut t, 16 << 10, false).unwrap();
            ids.push(id);
            if i % 3 == 0 {
                let id = ids.remove(0);
                la.free(&pool, &mut t, id).unwrap();
            }
        }
        assert!(
            la.booklog_stats().unwrap().slow_gc_runs > 0,
            "threshold was sized to force slow GCs"
        );
        // All survivors can still be freed (their EntryRefs stayed valid
        // across the relocations).
        for id in ids {
            la.free(&pool, &mut t, id).unwrap();
        }
    }

    #[test]
    fn decay_demotes_and_releases() {
        let (pool, mut la, mut t) = setup(true);
        let (id, _) = la.alloc(&pool, &mut t, 1 << 20, false).unwrap();
        la.free(&pool, &mut t, id).unwrap();
        let mapped_before = la.mapped_bytes();
        la.drain_free_lists(&pool, &mut t).unwrap();
        assert!(
            la.mapped_bytes() < mapped_before,
            "drain must unmap reclaimed extents ({} !< {})",
            la.mapped_bytes(),
            mapped_before
        );
    }

    #[test]
    fn retained_extent_can_be_reallocated() {
        let (pool, mut la, mut t) = setup(true);
        let (id, off) = la.alloc(&pool, &mut t, 256 << 10, false).unwrap();
        la.free(&pool, &mut t, id).unwrap();
        // Demote to retained only (first drain pass).
        la.decay_reclaimed.peak = 0;
        la.decay_tick(&pool, &mut t, Instant::now()).unwrap();
        assert!(!la.retained.is_empty());
        let (_, off2) = la.alloc(&pool, &mut t, 256 << 10, false).unwrap();
        // The retained extent (or a prefix of the coalesced one) comes back.
        assert_eq!(off2, off);
    }
}
