//! Offline pool auditor — the "heap doctor".
//!
//! [`audit_pool`] opens a quiesced NVAlloc pool image (a saved heap file,
//! or a live pool right after recovery) and cross-checks every persistent
//! structure against the others *without mutating anything*:
//!
//! * pool header: magic word, recorded arena and root counts vs. the
//!   supplied configuration, and a successful [`Layout`] recomputation;
//! * bookkeeping log (LOG mode): every surviving entry must name a
//!   page-multiple extent inside its shard's heap span, slab entries must
//!   be slab-sized and slab-aligned, and no two live extents may overlap;
//! * region table (in-place mode): the same checks driven from the
//!   per-shard region-header slots instead of the log;
//! * slab headers: class range, morph-step flag (a quiesced image must
//!   not be mid-morph), data-offset bounds, and — for morphing slabs —
//!   index-table bounds and old-block geometry. Headerless slab extents
//!   are counted as parked reservoir frames, not flagged: their header
//!   is only written on claim and recovery reclaims them as leaks;
//! * slab bitmaps: no ghost bits set beyond the slab's block count;
//! * WAL vs. committed state (LOG mode, crashed images only): the newest
//!   entry per block whose destination slot committed must agree with the
//!   authoritative bitmap / extent state;
//! * root slots: in-bounds targets;
//! * provenance sidelogs (profiling-enabled pools): every sampled object
//!   surviving sidelog replay must name a live heap block of the recorded
//!   size on a cleanly shut down, lossless image — the profiler's
//!   re-attribution guarantee — and the sampled live-byte total must not
//!   exceed the swept heap live bytes.
//!
//! Alongside the violations the doctor reports per-class occupancy, a
//! ten-bin slab-occupancy histogram, and heap fragmentation figures, all
//! exportable as one JSON object ([`DoctorReport::to_json`]) — the format
//! consumed by the `nvalloc_doctor` binary and the CI audit step.

use std::collections::BTreeMap;

use nvalloc_pmem::{PmOffset, PmemPool};

use crate::arena::arena_state;
use crate::bitmap::PmBitmap;
use crate::booklog::BookLog;
use crate::config::{NvConfig, Variant};
use crate::front::{Layout, NvAllocator, POOL_MAGIC};
use crate::geometry::GeometryTable;
use crate::large::{HDR_SLOTS_BYTES, HDR_SLOT_BYTES, PAGE};
use crate::shards::ShardedLarge;
use crate::size_class::{class_size, NUM_CLASSES, SLAB_SIZE};
use crate::slab::{flag, read_index_entry, SlabHeader, NO_OLD_CLASS};
use crate::telemetry::json::JsonObj;
use crate::wal::{WalEntry, WalOp, WalRegion};

/// One invariant violation found by the auditor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Stable identifier of the failed check (e.g. `"slab_bitmap"`).
    pub check: &'static str,
    /// Human-readable description with the offending offsets.
    pub detail: String,
}

/// Per-class slab occupancy summary.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClassOccupancy {
    /// Size class index.
    pub class: usize,
    /// Block size of the class in bytes.
    pub block_size: usize,
    /// Slabs of this class found in the image.
    pub slabs: usize,
    /// Total block capacity across those slabs.
    pub capacity_blocks: usize,
    /// Blocks marked live in the persistent bitmaps.
    pub live_blocks: usize,
}

/// Per-site attribution row reconstructed from the provenance sidelogs
/// (profiling-enabled pools only).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProfSiteRow {
    /// FNV-1a hash of the creating call site.
    pub site: u64,
    /// Surviving sampled objects attributed to the site.
    pub live_objects: u64,
    /// Bytes of those objects (granted sizes, not sample weights).
    pub live_bytes: u64,
}

/// Result of one [`audit_pool`] run.
#[derive(Debug, Clone, Default)]
pub struct DoctorReport {
    /// Every invariant violation found (empty for a healthy image).
    pub violations: Vec<Violation>,
    /// Arena count used for the audit.
    pub arenas: usize,
    /// Effective large-allocator shard count.
    pub large_shards: usize,
    /// Slab extents with a persisted header.
    pub slabs: usize,
    /// Headerless slab extents — parked reservoir frames whose header was
    /// never written. Benign: crash recovery reclaims them as leaks.
    pub reservoir_slabs: usize,
    /// Slabs with a live morph index table.
    pub morphing_slabs: usize,
    /// Non-slab extents audited.
    pub extents: usize,
    /// Surviving bookkeeping-log entries (LOG mode).
    pub booklog_entries: usize,
    /// WAL entries inspected (newest per micro-log; LOG mode).
    pub wal_entries: usize,
    /// Live small-object bytes per the persistent bitmaps.
    pub live_small_bytes: u64,
    /// Live non-slab extent bytes.
    pub live_large_bytes: u64,
    /// Heap bytes spanned by live extents (base → highest extent end).
    pub heap_used_bytes: u64,
    /// Total heap bytes available to the large allocator.
    pub heap_bytes: u64,
    /// Per-class occupancy rows (classes with at least one slab).
    pub occupancy: Vec<ClassOccupancy>,
    /// Slab counts by occupancy decile (`[0–10 %, …, 90–100 %]`).
    pub occupancy_hist: [usize; 10],
    /// Sampling period persisted in the pool header (0 = profiling off;
    /// the prof_* fields below are then all zero).
    pub prof_sample_bytes: u64,
    /// Raw provenance-sidelog records scanned across all arenas.
    pub prof_records: usize,
    /// Sampled objects surviving sidelog replay.
    pub prof_live_sampled: usize,
    /// Distinct call sites among the attributed survivors.
    pub prof_sites: usize,
    /// Surviving records with no matching live heap block. Expected on
    /// crashed or overflowed images; a violation on clean lossless ones.
    pub prof_stale_records: usize,
    /// Records dropped by sidelog overflow (summed across arenas).
    pub prof_dropped: u64,
    /// Bytes of surviving sampled objects per the sidelogs.
    pub prof_sampled_live_bytes: u64,
    /// Per-site attribution rows (survivors matched to live blocks).
    pub prof_site_table: Vec<ProfSiteRow>,
}

impl DoctorReport {
    /// True when the audit found no violations.
    pub fn clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// Fraction of the used heap span not covered by live extents
    /// (external fragmentation; 0.0 when the heap is untouched). Shares
    /// its math with the live timeline sampler ([`crate::observe`]), so
    /// the offline and online views can never disagree on a quiesced
    /// heap.
    pub fn external_fragmentation(&self) -> f64 {
        let covered =
            crate::observe::covered_bytes(self.slabs + self.reservoir_slabs, self.live_large_bytes);
        crate::observe::external_fragmentation(self.heap_used_bytes, covered)
    }

    /// Live blocks over slab capacity (slab-internal utilisation; 1.0 for
    /// an image without slabs). Shared math with [`crate::observe`].
    pub fn slab_utilization(&self) -> f64 {
        let cap: usize = self.occupancy.iter().map(|c| c.capacity_blocks).sum();
        let live: usize = self.occupancy.iter().map(|c| c.live_blocks).sum();
        crate::observe::utilization(live, cap)
    }

    /// The whole report as one JSON object (machine-readable output of
    /// the `nvalloc_doctor` binary and the crash-matrix audits).
    pub fn to_json(&self) -> String {
        let mut o = JsonObj::new();
        o.field_str("report", "nvalloc_doctor");
        o.field_u64("violations", self.violations.len() as u64);
        let items: Vec<String> = self
            .violations
            .iter()
            .map(|v| {
                let mut vo = JsonObj::new();
                vo.field_str("check", v.check);
                vo.field_str("detail", &v.detail);
                vo.finish()
            })
            .collect();
        o.field_raw("violation_list", &format!("[{}]", items.join(",")));
        o.field_u64("arenas", self.arenas as u64);
        o.field_u64("large_shards", self.large_shards as u64);
        o.field_u64("slabs", self.slabs as u64);
        o.field_u64("reservoir_slabs", self.reservoir_slabs as u64);
        o.field_u64("morphing_slabs", self.morphing_slabs as u64);
        o.field_u64("extents", self.extents as u64);
        o.field_u64("booklog_entries", self.booklog_entries as u64);
        o.field_u64("wal_entries", self.wal_entries as u64);
        o.field_u64("live_small_bytes", self.live_small_bytes);
        o.field_u64("live_large_bytes", self.live_large_bytes);
        o.field_u64("heap_used_bytes", self.heap_used_bytes);
        o.field_u64("heap_bytes", self.heap_bytes);
        o.field_f64("external_fragmentation", self.external_fragmentation());
        o.field_f64("slab_utilization", self.slab_utilization());
        let rows: Vec<String> = self
            .occupancy
            .iter()
            .map(|c| {
                let mut co = JsonObj::new();
                co.field_u64("class", c.class as u64);
                co.field_u64("block_size", c.block_size as u64);
                co.field_u64("slabs", c.slabs as u64);
                co.field_u64("capacity_blocks", c.capacity_blocks as u64);
                co.field_u64("live_blocks", c.live_blocks as u64);
                co.finish()
            })
            .collect();
        o.field_raw("occupancy", &format!("[{}]", rows.join(",")));
        let hist: Vec<String> = self.occupancy_hist.iter().map(|n| n.to_string()).collect();
        o.field_raw("occupancy_hist", &format!("[{}]", hist.join(",")));
        o.field_u64("prof_sample_bytes", self.prof_sample_bytes);
        o.field_u64("prof_records", self.prof_records as u64);
        o.field_u64("prof_live_sampled", self.prof_live_sampled as u64);
        o.field_u64("prof_sites", self.prof_sites as u64);
        o.field_u64("prof_stale_records", self.prof_stale_records as u64);
        o.field_u64("prof_dropped", self.prof_dropped);
        o.field_u64("prof_sampled_live_bytes", self.prof_sampled_live_bytes);
        let sites: Vec<String> = self
            .prof_site_table
            .iter()
            .map(|s| {
                let mut so = JsonObj::new();
                so.field_str("site", &format!("{:016x}", s.site));
                so.field_u64("live_objects", s.live_objects);
                so.field_u64("live_bytes", s.live_bytes);
                so.finish()
            })
            .collect();
        o.field_raw("prof_site_table", &format!("[{}]", sites.join(",")));
        o.finish()
    }
}

/// What the doctor remembers about a slab for the later WAL cross-check.
struct SlabInfo {
    class: usize,
    data_offset: usize,
    nblocks: usize,
    /// Old-block starts with a live morph-index entry.
    morph_live: Vec<PmOffset>,
}

/// Audit the pool image against `cfg` (the configuration the pool was
/// created with; arena and root counts are additionally cross-checked
/// against the persistent header). Purely read-only.
pub fn audit_pool(pool: &PmemPool, cfg: &NvConfig) -> DoctorReport {
    let cfg = NvAllocator::effective(cfg.clone(), pool);
    let mut rep = DoctorReport::default();
    let viol = |rep: &mut DoctorReport, check: &'static str, detail: String| {
        rep.violations.push(Violation { check, detail });
    };

    if pool.read_u64(0) != POOL_MAGIC {
        viol(&mut rep, "pool_magic", format!("word 0 is {:#x}, not POOL_MAGIC", pool.read_u64(0)));
        return rep;
    }
    let h_arenas = pool.read_u64(8);
    let h_roots = pool.read_u64(16);
    if h_arenas != cfg.arenas as u64 {
        viol(&mut rep, "pool_header", format!("header arenas {h_arenas} != cfg {}", cfg.arenas));
    }
    if h_roots != cfg.roots as u64 {
        viol(&mut rep, "pool_header", format!("header roots {h_roots} != cfg {}", cfg.roots));
    }
    let layout = match Layout::compute(&cfg, pool.size()) {
        Ok(l) => l,
        Err(e) => {
            viol(&mut rep, "layout", format!("layout does not fit this pool: {e}"));
            return rep;
        }
    };
    rep.arenas = cfg.arenas;
    rep.large_shards = layout.large_shards;
    rep.heap_bytes = layout.heap_bytes as u64;
    let geoms = GeometryTable::new(cfg.stripes_for(cfg.interleave_bitmap));
    let normal_shutdown = (0..cfg.arenas).all(|i| {
        pool.read_u64(layout.arena_flags + (i * 64) as u64) == arena_state::NORMAL_SHUTDOWN
    });

    // ----- extent inventory: booklog (LOG) or region table (in-place) -----
    let base = layout.large_config_pub(&cfg);
    let mut extents: Vec<(PmOffset, usize, bool)> = Vec::new();
    for (si, sc) in ShardedLarge::shard_cfgs(&base, layout.large_shards).iter().enumerate() {
        let span_end = sc.heap_base + sc.heap_bytes as u64;
        let check_extent = |rep: &mut DoctorReport, addr: PmOffset, size: usize, slab: bool| {
            if addr < sc.heap_base || addr + size as u64 > span_end {
                viol(
                    rep,
                    "extent_span",
                    format!(
                        "shard {si}: extent {addr:#x}+{size:#x} outside heap span \
                         [{:#x}, {span_end:#x})",
                        sc.heap_base
                    ),
                );
                return false;
            }
            if size == 0 || !size.is_multiple_of(PAGE) {
                viol(rep, "extent_size", format!("extent {addr:#x}: size {size:#x} not pages"));
                return false;
            }
            if slab && (size != SLAB_SIZE || !addr.is_multiple_of(SLAB_SIZE as u64)) {
                viol(
                    rep,
                    "slab_extent",
                    format!("slab extent {addr:#x}+{size:#x} not one aligned slab"),
                );
                return false;
            }
            true
        };
        if cfg.log_bookkeeping {
            let (_log, entries) = BookLog::recover(
                pool,
                sc.booklog_base,
                sc.booklog_bytes,
                sc.booklog_stripes,
                false,
                usize::MAX,
            );
            for (_er, e) in entries {
                rep.booklog_entries += 1;
                if check_extent(&mut rep, e.addr, e.size as usize, e.is_slab) {
                    extents.push((e.addr, e.size as usize, e.is_slab));
                }
            }
        } else {
            let n = pool.read_u64(sc.region_table_base);
            if 8 + n * 8 > sc.region_table_bytes as u64 {
                viol(
                    &mut rep,
                    "region_table",
                    format!("shard {si}: region count {n} overflows its table slice"),
                );
                continue;
            }
            for r in 1..=n {
                let roff = pool.read_u64(sc.region_table_base + r * 8);
                if roff < sc.heap_base || roff + HDR_SLOTS_BYTES as u64 > span_end {
                    viol(
                        &mut rep,
                        "region_table",
                        format!("shard {si}: region header {roff:#x} outside heap span"),
                    );
                    continue;
                }
                for s in 0..HDR_SLOTS_BYTES / HDR_SLOT_BYTES {
                    let slot = roff + (s * HDR_SLOT_BYTES) as u64;
                    let w1 = pool.read_u64(slot + 8);
                    if w1 & 1 == 1 {
                        let addr = pool.read_u64(slot);
                        let size = (w1 >> 8) as usize;
                        let is_slab = w1 >> 1 & 1 == 1;
                        if check_extent(&mut rep, addr, size, is_slab) {
                            extents.push((addr, size, is_slab));
                        }
                    }
                }
            }
        }
    }

    // Live extents must be pairwise disjoint.
    extents.sort_unstable();
    for w in extents.windows(2) {
        let (a_off, a_size, _) = w[0];
        let (b_off, _, _) = w[1];
        if a_off + a_size as u64 > b_off {
            viol(
                &mut rep,
                "extent_overlap",
                format!("extents {a_off:#x}+{a_size:#x} and {b_off:#x} overlap"),
            );
        }
    }

    // ----- slab audits -----
    // With profiling on, the sweep additionally collects every live block
    // address → granted size, the ground truth the sidelog join below
    // re-attributes against.
    let prof_on = cfg.profile_sample_bytes > 0;
    let mut prof_live: BTreeMap<PmOffset, usize> = BTreeMap::new();
    let mut slab_map: BTreeMap<PmOffset, SlabInfo> = BTreeMap::new();
    let mut per_class = vec![ClassOccupancy::default(); NUM_CLASSES];
    for &(addr, size, is_slab) in &extents {
        if !is_slab {
            rep.extents += 1;
            rep.live_large_bytes += size as u64;
            if prof_on {
                prof_live.insert(addr, size);
            }
            continue;
        }
        let Some(h) = SlabHeader::read(pool, addr) else {
            // A pre-carved reservoir frame: its header is only written
            // when the frame is claimed. Recovery reclaims these as
            // leaks, so a quiesced image may legitimately contain them.
            rep.reservoir_slabs += 1;
            continue;
        };
        rep.slabs += 1;
        let class = h.class as usize;
        if class >= NUM_CLASSES {
            viol(&mut rep, "slab_class", format!("slab {addr:#x}: class {class} out of range"));
            continue;
        }
        if h.flag > flag::NEW_WRITTEN {
            viol(&mut rep, "slab_flag", format!("slab {addr:#x}: unknown morph flag {}", h.flag));
            continue;
        }
        if h.flag != flag::NONE {
            viol(
                &mut rep,
                "slab_flag",
                format!("slab {addr:#x}: left mid-morph (flag {})", h.flag),
            );
        }
        let g = geoms.of(class);
        let header_end = g.bitmap_off + g.bitmap.bytes();
        let doff = h.data_offset as usize;
        if doff < header_end || doff > SLAB_SIZE {
            viol(
                &mut rep,
                "slab_data_offset",
                format!("slab {addr:#x}: data offset {doff:#x} outside [{header_end:#x}, 64K]"),
            );
            continue;
        }
        let nblocks = g.nblocks_at(doff);
        let bm = PmBitmap::new(addr + g.bitmap_off as u64, g.bitmap);
        let mut live = 0usize;
        let mut ghosts = 0usize;
        for i in 0..g.bitmap.nbits() {
            if bm.get(pool, i) {
                if i < nblocks {
                    live += 1;
                    if prof_on {
                        prof_live.insert(addr + (doff + i * g.block_size) as u64, g.block_size);
                    }
                } else {
                    ghosts += 1;
                }
            }
        }
        if ghosts > 0 {
            viol(
                &mut rep,
                "slab_bitmap",
                format!("slab {addr:#x}: {ghosts} ghost bit(s) set beyond block {nblocks}"),
            );
        }
        let mut morph_live = Vec::new();
        if h.old_class != NO_OLD_CLASS {
            rep.morphing_slabs += 1;
            let old_class = h.old_class as usize;
            if old_class >= NUM_CLASSES {
                viol(
                    &mut rep,
                    "morph_class",
                    format!("slab {addr:#x}: old class {old_class} out of range"),
                );
            } else {
                let table_off = h.index_table_off as usize;
                let table_end = table_off + 2 * h.index_len as usize;
                if table_off < header_end || table_end > doff {
                    viol(
                        &mut rep,
                        "morph_index",
                        format!(
                            "slab {addr:#x}: index table [{table_off:#x}, {table_end:#x}) \
                             outside [bitmap end, data offset)"
                        ),
                    );
                } else {
                    let old_bs = class_size(old_class);
                    let old_doff = h.old_data_offset as usize;
                    for i in 0..h.index_len as usize {
                        let e = read_index_entry(pool, addr, h.index_table_off, i);
                        let start = old_doff + e.old_idx as usize * old_bs;
                        if start + old_bs > SLAB_SIZE {
                            viol(
                                &mut rep,
                                "morph_index",
                                format!(
                                    "slab {addr:#x}: index entry {i} names old block \
                                     {start:#x}+{old_bs:#x} past the slab end"
                                ),
                            );
                        } else if e.allocated {
                            rep.live_small_bytes += old_bs as u64;
                            morph_live.push(addr + start as u64);
                            if prof_on {
                                prof_live.insert(addr + start as u64, old_bs);
                            }
                        }
                    }
                }
            }
        } else if h.index_len != 0 {
            viol(
                &mut rep,
                "morph_index",
                format!("slab {addr:#x}: index_len {} without an old class", h.index_len),
            );
        }
        rep.live_small_bytes += (live * g.block_size) as u64;
        per_class[class].class = class;
        per_class[class].block_size = g.block_size;
        per_class[class].slabs += 1;
        per_class[class].capacity_blocks += nblocks;
        per_class[class].live_blocks += live;
        if let Some(decile) = crate::observe::occupancy_decile(live, nblocks) {
            rep.occupancy_hist[decile] += 1;
        }
        slab_map.insert(addr, SlabInfo { class, data_offset: doff, nblocks, morph_live });
    }
    rep.occupancy = per_class.into_iter().filter(|c| c.slabs > 0).collect();

    // ----- WAL vs committed state (LOG variant) -----
    if matches!(cfg.variant, Variant::Log) {
        let mut latest: BTreeMap<PmOffset, WalEntry> = BTreeMap::new();
        for i in 0..cfg.arenas {
            let region = WalRegion::open(
                layout.wal_base + (i * WalRegion::region_bytes(layout.wal_micro_count)) as u64,
                layout.wal_micro_count,
            );
            for e in region.replay_entries(pool) {
                rep.wal_entries += 1;
                if e.addr + 8 > pool.size() as u64 || e.dest + 8 > pool.size() as u64 {
                    viol(
                        &mut rep,
                        "wal_bounds",
                        format!("WAL entry seq {}: addr/dest outside the pool", e.seq),
                    );
                    continue;
                }
                let keep = latest.get(&e.addr).is_none_or(|p| e.seq > p.seq);
                if keep {
                    latest.insert(e.addr, e);
                }
            }
        }
        // On a cleanly shut down image the WAL is stale by definition
        // (every operation completed and destination slots may have been
        // reused), so the commit cross-check only applies to crashed /
        // freshly recovered images.
        if !normal_shutdown {
            for e in latest.values() {
                let committed = matches!(e.op, WalOp::Alloc) && pool.read_u64(e.dest) == e.addr;
                if !committed {
                    continue;
                }
                let slab_off = e.addr & !(SLAB_SIZE as u64 - 1);
                if let Some(info) = slab_map.get(&slab_off) {
                    if info.morph_live.contains(&e.addr) {
                        continue; // live old-class block
                    }
                    let rel = (e.addr - slab_off) as usize;
                    let bs = class_size(info.class);
                    if rel < info.data_offset || !(rel - info.data_offset).is_multiple_of(bs) {
                        continue; // interior or old-layout address
                    }
                    let idx = (rel - info.data_offset) / bs;
                    let g = geoms.of(info.class);
                    let bm = PmBitmap::new(slab_off + g.bitmap_off as u64, g.bitmap);
                    if idx < info.nblocks && !bm.get(pool, idx) {
                        viol(
                            &mut rep,
                            "wal_commit",
                            format!(
                                "WAL seq {}: committed alloc of {:#x} but bitmap bit clear",
                                e.seq, e.addr
                            ),
                        );
                    }
                } else if !extents.iter().any(|&(off, _, _)| off == e.addr) {
                    viol(
                        &mut rep,
                        "wal_commit",
                        format!(
                            "WAL seq {}: committed alloc of {:#x} not in any slab or extent",
                            e.seq, e.addr
                        ),
                    );
                }
            }
        }
    }

    // ----- roots -----
    for i in 0..layout.roots_count {
        let p = pool.read_u64(layout.roots + (i * 8) as u64);
        if p != 0 && p >= pool.size() as u64 {
            viol(&mut rep, "root_bounds", format!("root {i} points outside the pool: {p:#x}"));
        }
    }

    // ----- provenance sidelogs vs. the live sweep (profiling pools) -----
    if prof_on {
        rep.prof_sample_bytes = cfg.profile_sample_bytes;
        for a in 0..cfg.arenas {
            let w = pool.read_u64(layout.prof_base + (a * crate::prof::PROF_LOG_BYTES) as u64);
            if w > 1 {
                viol(
                    &mut rep,
                    "prof_log_header",
                    format!("arena {a}: sidelog active-half word is {w:#x}, not 0 or 1"),
                );
            }
        }
        let (recs, states) = crate::prof::Prof::scan_raw(pool, layout.prof_base, cfg.arenas);
        rep.prof_records = recs.len();
        rep.prof_dropped = states.iter().map(|&(_, _, d)| d).sum();
        for r in &recs {
            if r.kind != crate::prof::PROF_KIND_ALLOC && r.kind != crate::prof::PROF_KIND_FREE {
                viol(
                    &mut rep,
                    "prof_record",
                    format!("sidelog record seq {}: unknown kind {}", r.seq, r.kind),
                );
            }
        }
        let survivors = crate::prof::Prof::replay(&recs);
        rep.prof_live_sampled = survivors.len();
        // Survivors naming dead blocks are expected on crash images (the
        // ALLOC record is fenced *before* its commit) and after overflow
        // (the matching FREE record may have been dropped). On a cleanly
        // shut down, lossless image every survivor must name a live block
        // of the recorded size — the re-attribution guarantee.
        let strict = normal_shutdown && rep.prof_dropped == 0;
        let mut sites: BTreeMap<u64, ProfSiteRow> = BTreeMap::new();
        for (&addr, obj) in &survivors {
            rep.prof_sampled_live_bytes += obj.size;
            match prof_live.get(&addr) {
                Some(&sz) if sz as u64 == obj.size => {
                    let row = sites.entry(obj.site).or_insert(ProfSiteRow {
                        site: obj.site,
                        live_objects: 0,
                        live_bytes: 0,
                    });
                    row.live_objects += 1;
                    row.live_bytes += obj.size;
                }
                Some(&sz) => {
                    rep.prof_stale_records += 1;
                    if strict {
                        viol(
                            &mut rep,
                            "prof_attribution",
                            format!(
                                "sampled object {addr:#x} (site {:016x}): sidelog size {} \
                                 != heap block size {sz}",
                                obj.site, obj.size
                            ),
                        );
                    }
                }
                None => {
                    rep.prof_stale_records += 1;
                    if strict {
                        viol(
                            &mut rep,
                            "prof_attribution",
                            format!(
                                "sampled object {addr:#x} (site {:016x}) survives replay \
                                 but no live block is at that address",
                                obj.site
                            ),
                        );
                    }
                }
            }
        }
        rep.prof_sites = sites.len();
        rep.prof_site_table = sites.into_values().collect();
        let live_total = rep.live_small_bytes + rep.live_large_bytes;
        let sampled_total = rep.prof_sampled_live_bytes;
        if strict && sampled_total > live_total {
            viol(
                &mut rep,
                "prof_live_bytes",
                format!(
                    "sidelog live bytes {sampled_total} exceed swept heap live bytes {live_total}"
                ),
            );
        }
    }

    // Fragmentation figures (shared math with the live sampler).
    rep.heap_used_bytes = crate::observe::heap_used_bytes(
        extents.iter().map(|&(off, size, _)| off + size as u64).max(),
        layout.heap_base,
    );
    rep
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::PmAllocator;
    use crate::booklog::{CHUNK_HEADER_BYTES, ENTRIES_PER_CHUNK, LOG_HEADER_BYTES};
    use nvalloc_pmem::{LatencyMode, PmemConfig};
    use std::sync::Arc;

    fn pool() -> Arc<PmemPool> {
        PmemPool::new(PmemConfig::default().pool_size(96 << 20).latency_mode(LatencyMode::Off))
    }

    /// Create, run a small workload, exit; return the quiesced pool.
    fn quiesced(cfg: NvConfig) -> (Arc<PmemPool>, NvConfig) {
        let cfg = cfg.roots(64);
        let p = pool();
        let a = NvAllocator::create(Arc::clone(&p), cfg.clone()).expect("create");
        let mut t = a.thread();
        for i in 0..32usize {
            t.malloc_to(64 + (i % 5) * 256, a.root_offset(i)).expect("alloc");
        }
        for i in (0..32usize).step_by(2) {
            t.free_from(a.root_offset(i)).expect("free");
        }
        t.malloc_to(1 << 20, a.root_offset(40)).expect("large alloc");
        drop(t);
        a.exit();
        (p, cfg)
    }

    #[test]
    fn clean_pool_audits_clean() {
        let (p, cfg) = quiesced(NvConfig::log());
        let rep = audit_pool(&p, &cfg);
        assert!(rep.clean(), "unexpected violations: {:?}", rep.violations);
        assert!(rep.slabs > 0, "workload must have created slabs");
        assert_eq!(rep.extents, 1, "exactly one non-slab extent");
        assert!(rep.live_small_bytes > 0);
        assert!(rep.occupancy.iter().any(|c| c.live_blocks > 0));
        let j = rep.to_json();
        assert!(j.contains("\"violations\":0"), "json must report zero violations: {j}");
    }

    /// The live timeline sampler and the offline doctor share their
    /// fragmentation/occupancy math; on a quiesced heap (threads gone,
    /// deferred frees drained) the volatile and persistent views must
    /// agree exactly.
    #[test]
    fn live_sampler_matches_doctor_on_quiesced_heap() {
        let cfg = NvConfig::log().roots(64);
        let p = pool();
        let a = NvAllocator::create(Arc::clone(&p), cfg.clone()).expect("create");
        let mut t = a.thread();
        for i in 0..32usize {
            t.malloc_to(64 + (i % 5) * 256, a.root_offset(i)).expect("alloc");
        }
        for i in (0..32usize).step_by(2) {
            t.free_from(a.root_offset(i)).expect("free");
        }
        t.malloc_to(1 << 20, a.root_offset(40)).expect("large alloc");
        drop(t);
        a.quiesce();
        a.exit();
        let live = a.timeline_sample_now();
        let rep = audit_pool(&p, &cfg);
        assert!(rep.clean(), "{:?}", rep.violations);
        assert_eq!(live.heap_used_bytes, rep.heap_used_bytes);
        assert_eq!(live.external_frag, rep.external_fragmentation());
        assert_eq!(live.slab_utilization, rep.slab_utilization());
        let frames: usize = live.shards.iter().map(|s| s.active_slabs).sum();
        assert_eq!(
            frames,
            rep.slabs + rep.reservoir_slabs,
            "live slab frames == headered + reservoir slabs"
        );
        let large: u64 = live.shards.iter().map(|s| s.live_large_bytes).sum();
        assert_eq!(large, rep.live_large_bytes);
        let extents: usize = live.shards.iter().map(|s| s.active_extents).sum();
        assert_eq!(extents, rep.extents);
        // Per-class occupancy agrees row by row (sampler rows are
        // per-arena; fold them before comparing).
        let mut per_class = std::collections::BTreeMap::new();
        for g in live.arenas.iter().flat_map(|ar| &ar.classes) {
            let e = per_class.entry(g.class).or_insert((0usize, 0usize, 0usize));
            e.0 += g.slabs;
            e.1 += g.capacity_blocks;
            e.2 += g.live_blocks;
        }
        assert_eq!(per_class.len(), rep.occupancy.len());
        for c in &rep.occupancy {
            let &(slabs, cap, live_blocks) =
                per_class.get(&c.class).expect("class present in live sample");
            assert_eq!(
                (slabs, cap, live_blocks),
                (c.slabs, c.capacity_blocks, c.live_blocks),
                "class {} occupancy",
                c.class
            );
        }
        // Decile occupancy histograms agree bin by bin: both sides bin
        // through `observe::occupancy_decile`.
        let mut hist = [0usize; 10];
        for ar in &live.arenas {
            for (i, n) in ar.occupancy_hist.iter().enumerate() {
                hist[i] += n;
            }
        }
        assert_eq!(hist, rep.occupancy_hist, "decile occupancy histogram");
    }

    #[test]
    fn in_place_mode_audits_clean() {
        let (p, cfg) = quiesced(NvConfig::base());
        let rep = audit_pool(&p, &cfg);
        assert!(rep.clean(), "unexpected violations: {:?}", rep.violations);
        assert!(rep.slabs > 0);
    }

    #[test]
    fn unformatted_pool_is_flagged() {
        let p = pool();
        let rep = audit_pool(&p, &NvConfig::log());
        assert_eq!(rep.violations.len(), 1);
        assert_eq!(rep.violations[0].check, "pool_magic");
    }

    #[test]
    fn corrupt_slab_class_is_detected() {
        let (p, cfg) = quiesced(NvConfig::log());
        assert!(audit_pool(&p, &cfg).clean());
        // Corrupt the class field of a slab header (magic preserved).
        let layout = Layout::compute(&cfg, p.size()).unwrap();
        let base = layout.large_config_pub(&cfg);
        let sc = &ShardedLarge::shard_cfgs(&base, layout.large_shards)[0];
        let (_log, entries) =
            BookLog::recover(&p, sc.booklog_base, sc.booklog_bytes, sc.booklog_stripes, false, 1);
        let slab = entries
            .iter()
            .filter(|(_, e)| e.is_slab)
            .map(|(_, e)| e.addr)
            .find(|&a| SlabHeader::read(&p, a).is_some())
            .expect("a headered slab in shard 0");
        p.write_u64(slab, crate::slab::header_word0(999, flag::NONE));
        let rep = audit_pool(&p, &cfg);
        assert!(rep.violations.iter().any(|v| v.check == "slab_class"), "{:?}", rep.violations);
    }

    #[test]
    fn flipped_bitmap_bit_is_detected_on_crashed_image() {
        // Simulated crash: allocate with a committed WAL entry, then drop
        // the allocator without `exit()` (arena flags stay RUNNING).
        let cfg = NvConfig::log().roots(8);
        let p = pool();
        let a = NvAllocator::create(Arc::clone(&p), cfg.clone()).expect("create");
        let mut t = a.thread();
        let addr = t.malloc_to(64, a.root_offset(0)).expect("alloc");
        drop(t);
        drop(a);
        assert!(audit_pool(&p, &cfg).clean(), "crashed-but-uncorrupted image must audit clean");
        // Flip the committed block's bitmap bit: now the WAL says the
        // alloc committed but the authoritative bitmap disagrees.
        let slab_off = addr & !(SLAB_SIZE as u64 - 1);
        let h = SlabHeader::read(&p, slab_off).expect("slab header");
        let geoms = GeometryTable::new(cfg.stripes_for(cfg.interleave_bitmap));
        let g = geoms.of(h.class as usize);
        let idx = (addr - slab_off) as usize - h.data_offset as usize;
        let bm = PmBitmap::new(slab_off + g.bitmap_off as u64, g.bitmap);
        bm.write_volatile(&p, idx / g.block_size, false);
        let rep = audit_pool(&p, &cfg);
        assert!(rep.violations.iter().any(|v| v.check == "wal_commit"), "{:?}", rep.violations);
    }

    #[test]
    fn orphaned_booklog_entry_is_detected() {
        let (p, cfg) = quiesced(NvConfig::log());
        let layout = Layout::compute(&cfg, p.size()).unwrap();
        let base = layout.large_config_pub(&cfg);
        let sc = &ShardedLarge::shard_cfgs(&base, layout.large_shards)[0];
        // Forge an extent entry pointing past the pool into a free slot of
        // chunk 0 (the head chunk of shard 0's chain).
        let bogus_addr = (p.size() as u64 + (4 << 20)) & !4095;
        let word = 1u64 | (bogus_addr >> 12) << 3 | 1 << 38; // TYPE_EXTENT, one page
        let chunk0 = sc.booklog_base + LOG_HEADER_BYTES as u64;
        let mut planted = false;
        for slot in 0..ENTRIES_PER_CHUNK {
            let off = chunk0 + CHUNK_HEADER_BYTES as u64 + (slot * 8) as u64;
            if p.read_u64(off) == 0 {
                p.write_u64(off, word);
                planted = true;
                break;
            }
        }
        assert!(planted, "chunk 0 must have a free slot");
        let rep = audit_pool(&p, &cfg);
        assert!(rep.violations.iter().any(|v| v.check == "extent_span"), "{:?}", rep.violations);
    }

    /// On a cleanly shut down profiling pool every sidelog survivor must
    /// re-attribute to a live heap block of the recorded size.
    #[test]
    fn profiled_pool_attributes_all_survivors() {
        let (p, cfg) = quiesced(NvConfig::log().profiling(256));
        let rep = audit_pool(&p, &cfg);
        assert!(rep.clean(), "unexpected violations: {:?}", rep.violations);
        assert_eq!(rep.prof_sample_bytes, 256);
        assert!(rep.prof_records > 0, "workload must have appended sidelog records");
        assert!(rep.prof_live_sampled > 0, "half the roots stay live, so survivors exist");
        assert_eq!(rep.prof_stale_records, 0, "every survivor must match a live block");
        assert_eq!(rep.prof_dropped, 0);
        assert!(rep.prof_sites >= 1);
        let attributed: u64 = rep.prof_site_table.iter().map(|r| r.live_bytes).sum();
        assert_eq!(attributed, rep.prof_sampled_live_bytes);
        assert!(rep.prof_sampled_live_bytes <= rep.live_small_bytes + rep.live_large_bytes);
        let j = rep.to_json();
        assert!(j.contains("\"prof_stale_records\":0"), "{j}");
        assert!(j.contains("\"prof_site_table\":[{"), "{j}");
    }

    /// A sidelog record naming an address with no live block is the
    /// attribution violation on a clean image.
    #[test]
    fn forged_sidelog_record_is_detected() {
        use crate::prof::{
            PROF_HALF_RECORDS, PROF_KIND_ALLOC, PROF_LOG_HEADER_BYTES, PROF_RECORD_BYTES,
        };
        let (p, cfg) = quiesced(NvConfig::log().profiling(256));
        assert!(audit_pool(&p, &cfg).clean());
        let layout = Layout::compute(&cfg, p.size()).unwrap();
        // First free slot of arena 0's active half.
        let lb = layout.prof_base;
        let active = (p.read_u64(lb) & 1) as usize;
        let hb = lb
            + PROF_LOG_HEADER_BYTES as u64
            + (active * PROF_HALF_RECORDS * PROF_RECORD_BYTES) as u64;
        let slot = (0..PROF_HALF_RECORDS)
            .map(|i| hb + (i * PROF_RECORD_BYTES) as u64)
            .find(|&off| p.read_u64(off) == 0)
            .expect("active half must have a free slot");
        // Forge an ALLOC record naming an address that holds no live block.
        p.write_u64(slot + 8, 0xDEAD); // site
        p.write_u64(slot + 16, u64::MAX / 2); // seq newer than every real record
        p.write_u64(slot + 24, (1 << 40) | 64); // one crossing, 64 bytes
        p.write_u64(slot, (PROF_KIND_ALLOC << 56) | (layout.heap_base + 8));
        let rep = audit_pool(&p, &cfg);
        assert!(
            rep.violations.iter().any(|v| v.check == "prof_attribution"),
            "{:?}",
            rep.violations
        );
        assert_eq!(rep.prof_stale_records, 1);
    }

    #[test]
    fn report_json_shape() {
        let rep = DoctorReport {
            violations: vec![Violation { check: "x", detail: "a \"quoted\" detail".into() }],
            ..DoctorReport::default()
        };
        let j = rep.to_json();
        assert!(j.starts_with('{') && j.ends_with('}'));
        assert!(j.contains("\"violations\":1"));
        assert!(j.contains("\\\"quoted\\\""));
        assert!(j.contains("\"occupancy_hist\":[0,0,0,0,0,0,0,0,0,0]"));
    }
}
