//! The persistent bookkeeping log (§5.3): log-structured storage for
//! extent metadata.
//!
//! Instead of updating extent headers in place (small *random* PM writes,
//! §3.3), every virtual-extent-header change appends one 8-byte entry to
//! this log. The log region is divided into 1 KB chunks; each chunk has a
//! 64 B header (id, epoch, next pointer) and 120 entry slots. The log
//! header holds *two* chain-head pointers and an `alt` bit — slow GC builds
//! a fresh chain under the inactive pointer and switches atomically by
//! flipping `alt`.
//!
//! Every chunk has a volatile twin (*vchunk*) carrying a validity bitmap;
//! vchunks live in an ordered map (the paper uses a red-black tree — Rust's
//! `BTreeMap` is the equivalent balanced ordered map). Freeing an extent
//! appends a *tombstone* entry that names the victim entry by
//! `(chunk, slot, epoch)` and clears the victim's vchunk bit.
//!
//! **Fast GC** reaps chunks whose bitmaps are empty, without touching PM;
//! the persistent unlink + zero + epoch bump happens lazily when the chunk
//! is reused. **Slow GC** copies all live entries to a new chain and flips
//! `alt`; it runs when the log grows past `Usage_pmem` (§6.6).
//!
//! Entry placement inside a chunk is interleaved across cache lines
//! exactly like slab bitmaps (`IM(bookkeeping log)`, Table 2), because
//! consecutive 8-byte appends would otherwise reflush the line.

use std::collections::{BTreeMap, HashMap};

use nvalloc_pmem::{FlushKind, PmError, PmOffset, PmResult, PmThread, PmemPool};

use crate::interleave::Interleave;

/// Bytes per chunk.
pub const CHUNK_BYTES: usize = 1024;
/// Bytes of each chunk's header.
pub const CHUNK_HEADER_BYTES: usize = 64;
/// Entry slots per chunk.
pub const ENTRIES_PER_CHUNK: usize = (CHUNK_BYTES - CHUNK_HEADER_BYTES) / 8; // 120
/// Bytes of the log-region header.
pub const LOG_HEADER_BYTES: usize = 64;

/// Raw media image of the 64 B log-region header. Word 0 holds the `alt`
/// bit slow GC flips atomically to switch chains; exactly one of the two
/// head words is active at a time. Sizes and offsets are pinned by
/// `tests/layout_sizes.rs` (the `repr-c-sizes` lint rule keeps that table
/// in sync with every `#[repr(C)]` layout here).
#[repr(C)]
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LogHeaderRaw {
    /// Word 0: active-chain selector; only bit 0 is meaningful.
    pub alt: u64,
    /// Word 1: chain head when `alt == 0`, encoded `id + 1` (0 = empty).
    pub head_a: u64,
    /// Word 2: chain head when `alt == 1`, encoded `id + 1` (0 = empty).
    pub head_b: u64,
    /// Word 3: carve high-water mark — chunks `0..carved` have been
    /// formatted at least once, so recovery scans exactly this span.
    pub carved: u64,
    /// Words 4–7: reserved, zero on fresh media.
    pub reserved: [u64; 4],
}

/// Raw media image of one chunk's 64 B header.
#[repr(C)]
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChunkHeaderRaw {
    /// Word 0: `epoch << 32 | id`; the epoch bumps on every reuse so
    /// stale [`EntryRef`]s can be detected.
    pub id_epoch: u64,
    /// Word 1: next chunk in the chain, encoded `id + 1` (0 = end).
    pub next: u64,
    /// Words 2–7: reserved, zero on fresh media.
    pub reserved: [u64; 6],
}

const TYPE_BITS: u64 = 0b111;
const TYPE_EXTENT: u64 = 1;
const TYPE_SLAB: u64 = 2;
const TYPE_TOMBSTONE: u64 = 3;

/// Payload of a live (normal) bookkeeping entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BookEntry {
    /// Extent/slab base offset (4 KB aligned — §5.3 stores `addr >> 12`).
    pub addr: PmOffset,
    /// Extent size in bytes.
    pub size: u32,
    /// True if the extent is a slab (recovery rebuilds a vslab for it).
    pub is_slab: bool,
}

impl BookEntry {
    fn encode(&self) -> u64 {
        debug_assert_eq!(self.addr % 4096, 0, "booklog addresses are 4 KB aligned");
        debug_assert!((self.size as u64 >> 12) < 1 << 26, "size field overflows 26 bits");
        let ty = if self.is_slab { TYPE_SLAB } else { TYPE_EXTENT };
        // [type:3 | addr>>12 :35 | size>>12 :26] — sizes are page-multiple.
        debug_assert_eq!(self.size % 4096, 0, "extent sizes are page-multiple");
        ty | (self.addr >> 12) << 3 | (self.size as u64 >> 12) << 38
    }

    fn decode(word: u64) -> Option<BookEntry> {
        match word & TYPE_BITS {
            TYPE_EXTENT | TYPE_SLAB => Some(BookEntry {
                addr: (word >> 3 & ((1 << 35) - 1)) << 12,
                size: ((word >> 38) << 12) as u32,
                is_slab: word & TYPE_BITS == TYPE_SLAB,
            }),
            _ => None,
        }
    }
}

/// Identity of one physical entry slot; owners keep this to delete or
/// relocate their entry later.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EntryRef {
    chunk: u32,
    slot: u8,
    epoch: u32,
}

#[derive(Debug)]
struct VChunk {
    bitmap: [u64; 2],
    live: u16,
    /// Volatile copy of the persistent header fields.
    epoch: u32,
    next: Option<u32>,
    prev: Option<u32>,
}

impl VChunk {
    fn empty(epoch: u32) -> Self {
        VChunk { bitmap: [0; 2], live: 0, epoch, next: None, prev: None }
    }

    fn set(&mut self, slot: u8) {
        self.bitmap[slot as usize / 64] |= 1 << (slot % 64);
        self.live += 1;
    }

    fn clear(&mut self, slot: u8) {
        let w = &mut self.bitmap[slot as usize / 64];
        debug_assert!(*w >> (slot % 64) & 1 == 1);
        *w &= !(1 << (slot % 64));
        self.live -= 1;
    }

    fn is_set(&self, slot: u8) -> bool {
        self.bitmap[slot as usize / 64] >> (slot % 64) & 1 == 1
    }
}

/// Statistics exposed for the GC-overhead experiment (Fig. 17).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BookLogStats {
    /// Number of fast-GC passes.
    pub fast_gc_runs: u64,
    /// Chunks reaped by fast GC.
    pub fast_gc_chunks: u64,
    /// Number of slow-GC passes.
    pub slow_gc_runs: u64,
    /// Live entries copied by slow GC.
    pub slow_gc_copied: u64,
    /// Entries appended (normal, tombstone, and slow-GC copies alike).
    pub appends: u64,
    /// Tombstone entries appended by [`BookLog::delete`].
    pub tombstones: u64,
    /// Dual-chain head flips performed by slow GC.
    pub alt_flips: u64,
}

/// The persistent bookkeeping log. All methods require external
/// synchronisation (the large allocator holds it under its lock).
#[derive(Debug)]
pub struct BookLog {
    base: PmOffset,
    region_bytes: usize,
    map: Interleave,
    /// Volatile chunk index (paper: red-black tree of vchunks).
    vchunks: BTreeMap<u32, VChunk>,
    free: Vec<u32>,
    head: Option<u32>,
    tail: Option<u32>,
    /// Next slot to fill in the tail chunk.
    tail_fill: u8,
    /// High-water mark of carved chunks (persisted in the log header).
    carved: u32,
    alt: u64,
    appends_since_fast_gc: u32,
    gc_enabled: bool,
    in_gc: bool,
    slow_gc_threshold_bytes: usize,
    stats: BookLogStats,
}

impl BookLog {
    /// Max number of chunks a region can hold.
    fn max_chunks(region_bytes: usize) -> u32 {
        ((region_bytes - LOG_HEADER_BYTES) / CHUNK_BYTES) as u32
    }

    fn chunk_off(&self, id: u32) -> PmOffset {
        self.base + LOG_HEADER_BYTES as u64 + id as u64 * CHUNK_BYTES as u64
    }

    fn slot_off(&self, id: u32, slot: u8) -> PmOffset {
        self.chunk_off(id) + CHUNK_HEADER_BYTES as u64 + slot as u64 * 8
    }

    /// Initialise a fresh log in `[base, base + region_bytes)`.
    pub fn create(
        pool: &PmemPool,
        base: PmOffset,
        region_bytes: usize,
        stripes: usize,
        gc_enabled: bool,
        slow_gc_threshold_bytes: usize,
    ) -> Self {
        assert!(region_bytes >= LOG_HEADER_BYTES + 2 * CHUNK_BYTES, "booklog region too small");
        // Fresh media is already zero; restating it owes no flush.
        pool.fill_bytes(base, LOG_HEADER_BYTES, 0);
        pool.pmsan_mark_persisted(base, LOG_HEADER_BYTES);
        BookLog {
            base,
            region_bytes,
            map: Interleave::new(ENTRIES_PER_CHUNK, 8, stripes),
            vchunks: BTreeMap::new(),
            free: Vec::new(),
            head: None,
            tail: None,
            tail_fill: 0,
            carved: 0,
            alt: 0,
            appends_since_fast_gc: 0,
            gc_enabled,
            in_gc: false,
            slow_gc_threshold_bytes,
            stats: BookLogStats::default(),
        }
    }

    /// GC statistics.
    pub fn stats(&self) -> BookLogStats {
        self.stats
    }

    /// Bytes of log chunks currently in the active chain.
    pub fn active_bytes(&self) -> usize {
        self.vchunks.len() * CHUNK_BYTES
    }

    /// Number of live entries.
    pub fn live_entries(&self) -> usize {
        self.vchunks.values().map(|v| v.live as usize).sum()
    }

    fn persist_header_word(&self, pool: &PmemPool, t: &mut PmThread, word_idx: u64, value: u64) {
        pool.persist_u64(t, self.base + word_idx * 8, value, FlushKind::BookLog);
    }

    /// Acquire a chunk: from the free list (unlink + zero + epoch bump) or
    /// by carving a fresh one from the region.
    fn acquire_chunk(&mut self, pool: &PmemPool, t: &mut PmThread) -> PmResult<(u32, u32)> {
        if let Some(id) = self.free.pop() {
            let off = self.chunk_off(id);
            let epoch = (pool.read_u64(off) >> 32) as u32 + 1;
            // Zero the entry area persistently so stale entries can never be
            // scanned after this chunk re-enters a chain.
            pool.fill_bytes(off + CHUNK_HEADER_BYTES as u64, CHUNK_BYTES - CHUNK_HEADER_BYTES, 0);
            pool.charge_store(t, off + CHUNK_HEADER_BYTES as u64, CHUNK_BYTES - CHUNK_HEADER_BYTES);
            pool.flush(
                t,
                off + CHUNK_HEADER_BYTES as u64,
                CHUNK_BYTES - CHUNK_HEADER_BYTES,
                FlushKind::BookLog,
            );
            // Header: id | epoch, next = none.
            pool.write_u64(off, (id as u64) | (epoch as u64) << 32);
            pool.write_u64(off + 8, 0);
            pool.charge_store(t, off, 16);
            pool.flush(t, off, 16, FlushKind::BookLog);
            pool.fence(t);
            return Ok((id, epoch));
        }
        if self.carved >= Self::max_chunks(self.region_bytes) {
            return Err(PmError::OutOfMemory { requested: CHUNK_BYTES });
        }
        let id = self.carved;
        self.carved += 1;
        let off = self.chunk_off(id);
        pool.fill_bytes(off, CHUNK_BYTES, 0);
        pool.write_u64(off, id as u64 | 1 << 32); // epoch 1
        pool.charge_store(t, off, CHUNK_BYTES);
        pool.flush(t, off, CHUNK_BYTES, FlushKind::BookLog);
        // Persist the carve high-water mark (header word 3) so recovery can
        // find orphaned chunks.
        self.persist_header_word(pool, t, 3, self.carved as u64);
        Ok((id, 1))
    }

    fn link_at_tail(&mut self, pool: &PmemPool, t: &mut PmThread, id: u32, epoch: u32) {
        match self.tail {
            Some(tail_id) => {
                // tail.next = id (+1 encoding; 0 = none).
                pool.persist_u64(t, self.chunk_off(tail_id) + 8, id as u64 + 1, FlushKind::BookLog);
                if let Some(tv) = self.vchunks.get_mut(&tail_id) {
                    tv.next = Some(id);
                }
            }
            None => {
                // Empty chain: set the active head pointer.
                let word = if self.alt == 0 { 1 } else { 2 };
                self.persist_header_word(pool, t, word, id as u64 + 1);
                self.head = Some(id);
            }
        }
        let mut v = VChunk::empty(epoch);
        v.prev = self.tail;
        self.vchunks.insert(id, v);
        self.tail = Some(id);
        self.tail_fill = 0;
    }

    /// Append a normal entry; returns its [`EntryRef`].
    ///
    /// # Errors
    /// Propagates [`PmError::OutOfMemory`] if the region is exhausted.
    pub fn append(
        &mut self,
        pool: &PmemPool,
        t: &mut PmThread,
        entry: BookEntry,
    ) -> PmResult<EntryRef> {
        let r = self.append_word(pool, t, entry.encode())?;
        t.trace(crate::trace::EventKind::BooklogAppend.code(), entry.addr, entry.size as u64);
        Ok(r)
    }

    fn append_word(&mut self, pool: &PmemPool, t: &mut PmThread, word: u64) -> PmResult<EntryRef> {
        if self.tail.is_none() || self.tail_fill as usize >= ENTRIES_PER_CHUNK {
            let fast_chunks0 = self.stats.fast_gc_chunks;
            let fast_runs0 = self.stats.fast_gc_runs;
            self.maybe_gc();
            if self.stats.fast_gc_runs > fast_runs0 {
                t.trace(
                    crate::trace::EventKind::BooklogGc.code(),
                    0,
                    self.stats.fast_gc_chunks - fast_chunks0,
                );
            }
            let (id, epoch) = self.acquire_chunk(pool, t)?;
            self.link_at_tail(pool, t, id, epoch);
        }
        let chunk = self.tail.expect("tail chunk exists after acquire");
        let logical = self.tail_fill;
        self.tail_fill += 1;
        let slot = self.map.physical(logical as usize) as u8;
        let off = self.slot_off(chunk, slot);
        pool.write_u64(off, word);
        pool.charge_store(t, off, 8);
        pool.flush(t, off, 8, FlushKind::BookLog);
        pool.fence(t);
        let vc = self.vchunks.get_mut(&chunk).expect("tail vchunk");
        vc.set(slot);
        let epoch = vc.epoch;
        self.appends_since_fast_gc += 1;
        self.stats.appends += 1;
        Ok(EntryRef { chunk, slot, epoch })
    }

    /// Delete a normal entry by appending a tombstone and clearing its
    /// vchunk bit.
    ///
    /// # Errors
    /// Propagates [`PmError::OutOfMemory`] from the tombstone append.
    pub fn delete(&mut self, pool: &PmemPool, t: &mut PmThread, er: EntryRef) -> PmResult<()> {
        let word = TYPE_TOMBSTONE
            | (er.chunk as u64) << 3
            | (er.slot as u64) << 25
            | (er.epoch as u64) << 32;
        self.append_word(pool, t, word)?;
        self.stats.tombstones += 1;
        if let Some(vc) = self.vchunks.get_mut(&er.chunk) {
            if vc.epoch == er.epoch && vc.is_set(er.slot) {
                vc.clear(er.slot);
            }
        }
        Ok(())
    }

    fn decode_tombstone(word: u64) -> EntryRef {
        EntryRef {
            chunk: (word >> 3 & ((1 << 22) - 1)) as u32,
            slot: (word >> 25 & 0x7f) as u8,
            epoch: (word >> 32) as u32,
        }
    }

    /// Run fast GC if due. Slow GC is *not* auto-triggered here because its
    /// relocation map must reach the entry owners; callers poll
    /// [`BookLog::needs_slow_gc`] after each operation and invoke
    /// [`BookLog::slow_gc`] themselves.
    fn maybe_gc(&mut self) {
        if !self.gc_enabled || self.in_gc {
            return;
        }
        if self.appends_since_fast_gc as usize >= ENTRIES_PER_CHUNK {
            self.fast_gc();
        }
    }

    /// True when the active chain has outgrown the `Usage_pmem` threshold
    /// and the owner should run [`BookLog::slow_gc`].
    pub fn needs_slow_gc(&self) -> bool {
        self.gc_enabled && self.active_bytes() > self.slow_gc_threshold_bytes
    }

    /// Fast GC (§5.3): move empty chunks to the free list. Touches no PM.
    pub fn fast_gc(&mut self) {
        self.appends_since_fast_gc = 0;
        self.stats.fast_gc_runs += 1;
        let empties: Vec<u32> = self
            .vchunks
            .iter()
            .filter(|(id, v)| v.live == 0 && Some(**id) != self.tail)
            .map(|(id, _)| *id)
            .collect();
        for id in empties {
            let v = self.vchunks.remove(&id).expect("empty vchunk");
            // Splice volatile neighbours; the persistent unlink happens at
            // reuse (acquire) or at the next slow GC, whichever first.
            if let Some(p) = v.prev {
                if let Some(pv) = self.vchunks.get_mut(&p) {
                    pv.next = v.next;
                }
            } else {
                self.head = v.next;
            }
            if let Some(n) = v.next {
                if let Some(nv) = self.vchunks.get_mut(&n) {
                    nv.prev = v.prev;
                }
            }
            self.free.push(id);
            self.stats.fast_gc_chunks += 1;
        }
    }

    /// Slow GC (§5.3): copy live entries to a fresh chain under the
    /// inactive head pointer, flip `alt`, recycle every old chunk.
    ///
    /// Returns the relocation map so owners (VEHs) can update their
    /// [`EntryRef`]s.
    ///
    /// # Errors
    /// Propagates [`PmError::OutOfMemory`] if no fresh chunks are available.
    pub fn slow_gc(
        &mut self,
        pool: &PmemPool,
        t: &mut PmThread,
    ) -> PmResult<HashMap<EntryRef, EntryRef>> {
        self.stats.slow_gc_runs += 1;
        self.in_gc = true;
        // Snapshot live *normal* entries in chain order; tombstones are
        // dropped in the process (§5.3).
        let mut live: Vec<(EntryRef, u64)> = Vec::with_capacity(self.live_entries());
        let mut cur = self.head;
        while let Some(id) = cur {
            let v = &self.vchunks[&id];
            for slot in 0..ENTRIES_PER_CHUNK as u8 {
                if v.is_set(slot) {
                    let word = pool.read_u64(self.slot_off(id, slot));
                    if matches!(word & TYPE_BITS, TYPE_EXTENT | TYPE_SLAB) {
                        live.push((EntryRef { chunk: id, slot, epoch: v.epoch }, word));
                    }
                }
            }
            cur = v.next;
        }

        // Build the new chain in a scratch BookLog state.
        let old_vchunks = std::mem::take(&mut self.vchunks);
        let old_head = self.head.take();
        self.tail = None;
        self.tail_fill = 0;
        self.alt ^= 1; // appends now target the other head pointer
        self.stats.alt_flips += 1;
        let mut moves = HashMap::with_capacity(live.len());
        let mut append_err = None;
        for (old_ref, word) in &live {
            match self.append_word(pool, t, *word) {
                Ok(new_ref) => {
                    moves.insert(*old_ref, new_ref);
                }
                Err(e) => {
                    append_err = Some(e);
                    break;
                }
            }
            self.stats.slow_gc_copied += 1;
        }
        if let Some(e) = append_err {
            self.in_gc = false;
            return Err(e);
        }
        // Atomic switch: persist the alt bit (header word 0). Written out
        // long-hand (store / charge / flush / fence) so the mutation
        // tests can delete exactly one flush or fence from the switch.
        pool.write_u64(self.base, self.alt);
        pool.charge_store(t, self.base, 8);
        if !faults::skip_flip_flush() {
            pool.flush(t, self.base, 8, FlushKind::BookLog);
        }
        if !faults::skip_flip_fence() {
            pool.fence(t);
        }
        t.trace(crate::trace::EventKind::BooklogGc.code(), 1, moves.len() as u64);
        // Recycle the old chain.
        let mut cur = old_head;
        let mut seen = 0u32;
        while let Some(id) = cur {
            cur = old_vchunks[&id].next;
            self.free.push(id);
            seen += 1;
            debug_assert!(seen <= self.carved);
        }
        self.in_gc = false;
        Ok(moves)
    }

    /// Recover the log from a (possibly crashed) pool image.
    ///
    /// Walks the active chain, applies tombstones (matching epochs), and
    /// returns the surviving entries together with a rebuilt `BookLog`.
    /// Mirrors §4.4: the caller should follow up with a slow GC to compact
    /// tombstoned state (`recover` already rebuilds vchunk bitmaps, so the
    /// follow-up is optional and cheap).
    pub fn recover(
        pool: &PmemPool,
        base: PmOffset,
        region_bytes: usize,
        stripes: usize,
        gc_enabled: bool,
        slow_gc_threshold_bytes: usize,
    ) -> (Self, Vec<(EntryRef, BookEntry)>) {
        let alt = pool.read_u64(base) & 1;
        let head_word = pool.read_u64(base + if alt == 0 { 8 } else { 16 });
        let carved = pool.read_u64(base + 24) as u32;
        let head = (head_word != 0).then(|| (head_word - 1) as u32);

        let mut log = BookLog {
            base,
            region_bytes,
            map: Interleave::new(ENTRIES_PER_CHUNK, 8, stripes),
            vchunks: BTreeMap::new(),
            free: Vec::new(),
            head,
            tail: None,
            tail_fill: 0,
            carved,
            alt,
            appends_since_fast_gc: 0,
            gc_enabled,
            in_gc: false,
            slow_gc_threshold_bytes,
            stats: BookLogStats::default(),
        };

        // Pass 1: walk the chain, reading raw entries.
        let mut chain: Vec<u32> = Vec::new();
        let mut cur = head;
        let mut raw: Vec<(u32, u8, u64)> = Vec::new();
        let mut tombs: Vec<EntryRef> = Vec::new();
        let mut prev: Option<u32> = None;
        while let Some(id) = cur {
            if id >= carved || chain.contains(&id) {
                break; // corrupt or cyclic: stop at the damage
            }
            chain.push(id);
            let off = log.chunk_off(id);
            let hdr = pool.read_u64(off);
            let epoch = (hdr >> 32) as u32;
            let mut v = VChunk::empty(epoch);
            v.prev = prev;
            for slot in 0..ENTRIES_PER_CHUNK as u8 {
                let word = pool.read_u64(log.slot_off(id, slot));
                match word & TYPE_BITS {
                    TYPE_EXTENT | TYPE_SLAB => raw.push((id, slot, word)),
                    TYPE_TOMBSTONE => {
                        tombs.push(Self::decode_tombstone(word));
                        raw.push((id, slot, word));
                    }
                    _ => {}
                }
            }
            let next_word = pool.read_u64(off + 8);
            let next = (next_word != 0).then(|| (next_word - 1) as u32);
            v.next = next;
            if let Some(p) = prev {
                if let Some(pv) = log.vchunks.get_mut(&p) {
                    pv.next = Some(id);
                }
            }
            log.vchunks.insert(id, v);
            prev = Some(id);
            cur = next;
        }
        log.tail = chain.last().copied();

        // Pass 2: cancel tombstoned entries (epoch-checked).
        use std::collections::HashSet;
        let mut dead: HashSet<(u32, u8)> = HashSet::new();
        for tr in &tombs {
            if let Some(v) = log.vchunks.get(&tr.chunk) {
                if v.epoch == tr.epoch {
                    dead.insert((tr.chunk, tr.slot));
                }
            }
        }

        // Pass 3: survivors get their vchunk bits; tombstones stay live
        // (until slow GC) exactly as at runtime.
        let mut out = Vec::new();
        for (chunk, slot, word) in raw {
            let is_tomb = word & TYPE_BITS == TYPE_TOMBSTONE;
            if !is_tomb && dead.contains(&(chunk, slot)) {
                continue;
            }
            let epoch = log.vchunks[&chunk].epoch;
            log.vchunks.get_mut(&chunk).expect("chunk in map").set(slot);
            if !is_tomb {
                let e = BookEntry::decode(word).expect("typed word decodes");
                out.push((EntryRef { chunk, slot, epoch }, e));
            }
        }

        // Tail fill: resume after the last used logical slot of the tail.
        if let Some(tail) = log.tail {
            let v = &log.vchunks[&tail];
            let mut fill = 0u8;
            for logical in 0..ENTRIES_PER_CHUNK {
                let slot = log.map.physical(logical) as u8;
                let word = pool.read_u64(log.slot_off(tail, slot));
                if word & TYPE_BITS != 0 || v.is_set(slot) {
                    fill = logical as u8 + 1;
                }
            }
            log.tail_fill = fill;
        }

        // Orphaned chunks (carved but unreachable) return to the free list.
        for id in 0..carved {
            if !log.vchunks.contains_key(&id) {
                log.free.push(id);
            }
        }
        (log, out)
    }
}

/// Test-only fault injection for the slow-GC atomic switch: mutation
/// tests delete exactly one flush or fence from the alt-bit flip and
/// assert pmsan flags that site. Compiled out of release builds.
#[cfg(test)]
pub(crate) mod faults {
    use std::cell::Cell;

    thread_local! {
        pub static SKIP_FLIP_FLUSH: Cell<bool> = const { Cell::new(false) };
        pub static SKIP_FLIP_FENCE: Cell<bool> = const { Cell::new(false) };
    }

    pub(crate) fn skip_flip_flush() -> bool {
        SKIP_FLIP_FLUSH.with(|f| f.get())
    }

    pub(crate) fn skip_flip_fence() -> bool {
        SKIP_FLIP_FENCE.with(|f| f.get())
    }
}

#[cfg(not(test))]
mod faults {
    pub(crate) fn skip_flip_flush() -> bool {
        false
    }

    pub(crate) fn skip_flip_fence() -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nvalloc_pmem::{LatencyMode, PmemConfig};
    use std::sync::Arc;

    fn pool() -> Arc<PmemPool> {
        PmemPool::new(PmemConfig::default().pool_size(8 << 20).latency_mode(LatencyMode::Off))
    }

    fn entry(addr: u64, size: u32) -> BookEntry {
        BookEntry { addr, size, is_slab: false }
    }

    #[test]
    fn entry_codec_roundtrip() {
        for (a, s, slab) in
            [(0u64, 4096u32, false), (4096, 65536, true), (123 << 12, 2 << 20, false)]
        {
            let e = BookEntry { addr: a, size: s, is_slab: slab };
            assert_eq!(BookEntry::decode(e.encode()), Some(e));
        }
        assert_eq!(BookEntry::decode(0), None);
    }

    #[test]
    fn append_and_delete_track_liveness() {
        let p = pool();
        let mut t = p.register_thread();
        let mut log = BookLog::create(&p, 0, 1 << 20, 6, true, 1 << 19);
        let r1 = log.append(&p, &mut t, entry(0x10000, 4096)).unwrap();
        let _r2 = log.append(&p, &mut t, entry(0x20000, 8192)).unwrap();
        assert_eq!(log.live_entries(), 2);
        log.delete(&p, &mut t, r1).unwrap();
        // The tombstone itself is live; the victim is not: 1 normal + 1 tomb.
        assert_eq!(log.live_entries(), 2);
    }

    #[test]
    fn chunks_chain_as_they_fill() {
        let p = pool();
        let mut t = p.register_thread();
        let mut log = BookLog::create(&p, 0, 1 << 20, 1, false, usize::MAX);
        for i in 0..(ENTRIES_PER_CHUNK * 3) as u64 {
            log.append(&p, &mut t, entry(i << 12, 4096)).unwrap();
        }
        assert_eq!(log.vchunks.len(), 3);
        assert_eq!(log.live_entries(), ENTRIES_PER_CHUNK * 3);
    }

    #[test]
    fn fast_gc_reaps_empty_chunks_without_pm_traffic() {
        let p = pool();
        let mut t = p.register_thread();
        let mut log = BookLog::create(&p, 0, 1 << 20, 1, false, usize::MAX);
        let mut refs = Vec::new();
        for i in 0..(ENTRIES_PER_CHUNK * 2) as u64 {
            refs.push(log.append(&p, &mut t, entry(i << 12, 4096)).unwrap());
        }
        // Kill everything in the first chunk.
        for r in refs.iter().take(ENTRIES_PER_CHUNK) {
            log.delete(&p, &mut t, *r).unwrap();
        }
        let flushes_before = p.stats().flushes();
        log.fast_gc();
        assert_eq!(p.stats().flushes(), flushes_before, "fast GC must not flush");
        assert_eq!(log.stats().fast_gc_chunks, 1);
        assert_eq!(log.free.len(), 1);
    }

    #[test]
    fn reused_chunk_is_zeroed_and_epoch_bumped() {
        let p = pool();
        let mut t = p.register_thread();
        let mut log = BookLog::create(&p, 0, 1 << 20, 1, false, usize::MAX);
        let mut refs = Vec::new();
        for i in 0..(ENTRIES_PER_CHUNK * 2) as u64 {
            refs.push(log.append(&p, &mut t, entry(i << 12, 4096)).unwrap());
        }
        for r in refs.iter().take(ENTRIES_PER_CHUNK) {
            log.delete(&p, &mut t, *r).unwrap();
        }
        log.fast_gc();
        // Fill until the freed chunk is reused.
        let mut new_ref = None;
        for i in 0..(ENTRIES_PER_CHUNK * 2) as u64 {
            let r = log.append(&p, &mut t, entry((1000 + i) << 12, 4096)).unwrap();
            if r.chunk == refs[0].chunk {
                new_ref = Some(r);
                break;
            }
        }
        let nr = new_ref.expect("freed chunk should be reused");
        assert!(nr.epoch > refs[0].epoch, "epoch must bump on reuse");
    }

    #[test]
    fn slow_gc_compacts_and_relocates() {
        let p = pool();
        let mut t = p.register_thread();
        let mut log = BookLog::create(&p, 0, 1 << 20, 6, false, usize::MAX);
        let mut refs = Vec::new();
        for i in 0..(ENTRIES_PER_CHUNK * 2) as u64 {
            refs.push((log.append(&p, &mut t, entry(i << 12, 4096)).unwrap(), i));
        }
        // Delete every other entry.
        for (r, i) in &refs {
            if i % 2 == 0 {
                log.delete(&p, &mut t, *r).unwrap();
            }
        }
        let live_before = refs.len() / 2;
        let moves = log.slow_gc(&p, &mut t).unwrap();
        assert_eq!(moves.len(), live_before);
        assert_eq!(log.live_entries(), live_before, "tombstones dropped");
        // Every surviving old ref has a new location with readable content.
        for (r, i) in &refs {
            if i % 2 == 1 {
                let nr = moves[r];
                let word = pool_read_entry(&p, &log, nr);
                assert_eq!(BookEntry::decode(word).unwrap().addr, i << 12);
            }
        }
    }

    fn pool_read_entry(p: &PmemPool, log: &BookLog, r: EntryRef) -> u64 {
        p.read_u64(log.slot_off(r.chunk, r.slot))
    }

    #[test]
    fn slow_gc_triggers_on_threshold() {
        let p = pool();
        let mut t = p.register_thread();
        // Threshold = 2 chunks; caller polls needs_slow_gc like the large
        // allocator does.
        let mut log = BookLog::create(&p, 0, 1 << 20, 1, true, 2 * CHUNK_BYTES);
        for i in 0..(ENTRIES_PER_CHUNK * 4) as u64 {
            let r = log.append(&p, &mut t, entry(i << 12, 4096)).unwrap();
            // Immediately delete so slow GC can shrink the chain.
            log.delete(&p, &mut t, r).unwrap();
            if log.needs_slow_gc() {
                log.slow_gc(&p, &mut t).unwrap();
            }
        }
        assert!(log.stats().slow_gc_runs > 0, "slow GC should have run");
        assert!(log.active_bytes() <= 3 * CHUNK_BYTES);
        // Only tombstones appended since the last slow GC may remain live.
        let moves = log.slow_gc(&p, &mut t).unwrap();
        assert!(moves.is_empty(), "no normal entry should survive");
        assert_eq!(log.live_entries(), 0);
    }

    #[test]
    fn recover_after_clean_image() {
        let p = PmemPool::new(
            PmemConfig::default()
                .pool_size(8 << 20)
                .latency_mode(LatencyMode::Off)
                .crash_tracking(true),
        );
        let mut t = p.register_thread();
        let mut log = BookLog::create(&p, 0, 1 << 20, 6, false, usize::MAX);
        let mut kept = Vec::new();
        for i in 0..300u64 {
            let r = log.append(&p, &mut t, entry(i << 12, 4096)).unwrap();
            if i % 3 == 0 {
                log.delete(&p, &mut t, r).unwrap();
            } else {
                kept.push(i << 12);
            }
        }
        let reboot = PmemPool::from_crash_image(p.clean_shutdown_image());
        let (log2, entries) = BookLog::recover(&reboot, 0, 1 << 20, 6, false, usize::MAX);
        let mut addrs: Vec<u64> = entries.iter().map(|(_, e)| e.addr).collect();
        addrs.sort_unstable();
        kept.sort_unstable();
        assert_eq!(addrs, kept, "recovery must keep exactly the undeleted entries");
        assert!(log2.tail.is_some());
    }

    #[test]
    fn recover_after_crash_with_unflushed_suffix() {
        // Entries are flushed one by one; a crash preserves them all (each
        // append flushes+fences). The *volatile-only* state (vchunks) is
        // rebuilt.
        let p = PmemPool::new(
            PmemConfig::default()
                .pool_size(8 << 20)
                .latency_mode(LatencyMode::Off)
                .crash_tracking(true),
        );
        let mut t = p.register_thread();
        let mut log = BookLog::create(&p, 0, 1 << 20, 1, false, usize::MAX);
        for i in 0..10u64 {
            log.append(&p, &mut t, entry(i << 12, 4096)).unwrap();
        }
        let reboot = PmemPool::from_crash_image(p.crash());
        let (_, entries) = BookLog::recover(&reboot, 0, 1 << 20, 1, false, usize::MAX);
        assert_eq!(entries.len(), 10);
    }

    #[test]
    fn recovery_resumes_appending_into_tail() {
        let p = pool();
        let mut t = p.register_thread();
        let mut log = BookLog::create(&p, 0, 1 << 20, 6, false, usize::MAX);
        for i in 0..10u64 {
            log.append(&p, &mut t, entry(i << 12, 4096)).unwrap();
        }
        let (mut log2, entries) = BookLog::recover(&p, 0, 1 << 20, 6, false, usize::MAX);
        assert_eq!(entries.len(), 10);
        let r = log2.append(&p, &mut t, entry(999 << 12, 4096)).unwrap();
        // Must not collide with an existing live entry.
        let (_, entries2) = BookLog::recover(&p, 0, 1 << 20, 6, false, usize::MAX);
        assert_eq!(entries2.len(), 11);
        let _ = r;
    }

    #[test]
    fn interleaved_appends_do_not_reflush() {
        let run = |stripes: usize| {
            let p = PmemPool::new(
                PmemConfig::default().pool_size(8 << 20).latency_mode(LatencyMode::Virtual),
            );
            let mut t = p.register_thread();
            let mut log = BookLog::create(&p, 0, 1 << 20, stripes, false, usize::MAX);
            // Warm up: first append carves+links the chunk (one-time header
            // traffic); measure steady-state appends only.
            log.append(&p, &mut t, entry(1 << 12, 4096)).unwrap();
            p.stats().reset();
            for i in 2..66u64 {
                log.append(&p, &mut t, entry(i << 12, 4096)).unwrap();
            }
            p.stats().reflushes()
        };
        assert!(run(1) > 30, "sequential log appends must reflush");
        assert_eq!(run(6), 0, "interleaved appends must not reflush");
    }

    // ---- pmsan mutation tests (ordering-sanitizer sensitivity) ----
    //
    // Delete exactly one flush or one fence from slow GC's alt-bit flip
    // via the `faults` hooks and assert the sanitizer flags that site.

    use nvalloc_pmem::PmsanKind;

    fn san_pool() -> Arc<PmemPool> {
        PmemPool::new(
            PmemConfig::default()
                .pool_size(8 << 20)
                .latency_mode(LatencyMode::Off)
                .crash_tracking(true)
                .pmsan(true),
        )
    }

    #[test]
    fn pmsan_unmutated_slow_gc_is_clean() {
        let p = san_pool();
        let mut t = p.register_thread();
        let mut log = BookLog::create(&p, 0, 1 << 20, 1, true, usize::MAX);
        let r0 = log.append(&p, &mut t, entry(0x10000, 4096)).unwrap();
        log.append(&p, &mut t, entry(0x20000, 4096)).unwrap();
        log.delete(&p, &mut t, r0).unwrap();
        log.slow_gc(&p, &mut t).unwrap();
        assert_eq!(p.pmsan_total(), 0, "{}", p.pmsan_report().unwrap().to_json());
    }

    #[test]
    fn pmsan_flags_deleted_flip_flush() {
        let p = san_pool();
        let mut t = p.register_thread();
        let mut log = BookLog::create(&p, 0, 1 << 20, 1, true, usize::MAX);
        log.append(&p, &mut t, entry(0x10000, 4096)).unwrap();
        assert_eq!(p.pmsan_total(), 0, "setup must be ordering-clean");
        faults::SKIP_FLIP_FLUSH.with(|f| f.set(true));
        log.slow_gc(&p, &mut t).unwrap();
        faults::SKIP_FLIP_FLUSH.with(|f| f.set(false));
        let r = p.pmsan_report().unwrap();
        assert_eq!(r.count(PmsanKind::EmptyFence), 1, "{}", r.to_json());
        assert_eq!(r.total(), 1, "exactly the deleted site: {}", r.to_json());
        // The alt bit never reached media: the header line is unpersisted.
        assert!(!p.pmsan_line_persisted(0), "flip store must still be dirty");
    }

    #[test]
    fn pmsan_flags_deleted_flip_fence() {
        let p = san_pool();
        let mut t = p.register_thread();
        let mut log = BookLog::create(&p, 0, 1 << 20, 1, true, usize::MAX);
        assert_eq!(p.pmsan_total(), 0, "setup must be ordering-clean");
        faults::SKIP_FLIP_FENCE.with(|f| f.set(true));
        log.slow_gc(&p, &mut t).unwrap();
        faults::SKIP_FLIP_FENCE.with(|f| f.set(false));
        // The flush happened but was never fenced: the flip is not
        // durable yet, and no violation has fired so far.
        assert!(!p.pmsan_line_persisted(0), "unfenced flush must not persist");
        assert_eq!(p.pmsan_total(), 0);
        // The next flip stores to the header line while that flush is
        // still pending — exactly the hazard the deleted fence guarded.
        log.slow_gc(&p, &mut t).unwrap();
        let r = p.pmsan_report().unwrap();
        assert_eq!(r.count(PmsanKind::StoreUnfenced), 1, "{}", r.to_json());
        assert_eq!(r.total(), 1, "exactly the deleted site: {}", r.to_json());
        assert_eq!(r.violations[0].line, 0, "violation pinpoints the header line");
    }

    #[test]
    fn window_enumeration_covers_slow_gc_switch() {
        // Enumerate every legal crash image across the slow-GC window:
        // each image must recover to either the pre-GC or post-GC live
        // set — never a mixture, never a loss.
        let p = san_pool();
        let mut t = p.register_thread();
        let mut log = BookLog::create(&p, 0, 1 << 20, 1, true, usize::MAX);
        let r0 = log.append(&p, &mut t, entry(0x10000, 4096)).unwrap();
        for a in [0x20000u64, 0x30000, 0x40000] {
            log.append(&p, &mut t, entry(a, 4096)).unwrap();
        }
        log.delete(&p, &mut t, r0).unwrap();
        p.pmsan_window_begin();
        log.slow_gc(&p, &mut t).unwrap();
        let w = p.pmsan_window_end();
        assert!(w.fence_count() > 0, "slow gc must fence inside the window");
        let images = p.pmsan_window_images(&w, 256);
        assert!(!images.is_empty());
        let want: Vec<u64> = vec![0x20000, 0x30000, 0x40000];
        let n = images.len();
        for (i, img) in images.into_iter().enumerate() {
            let rp = PmemPool::from_crash_image(img);
            let (_, recovered) = BookLog::recover(&rp, 0, 1 << 20, 1, true, usize::MAX);
            let mut got: Vec<u64> = recovered.iter().map(|(_, e)| e.addr).collect();
            got.sort_unstable();
            assert_eq!(got, want, "image {i}/{n} lost or duplicated entries");
        }
        assert_eq!(p.pmsan_total(), 0, "{}", p.pmsan_report().unwrap().to_json());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use nvalloc_pmem::{LatencyMode, PmemConfig, PmemPool};
    use proptest::prelude::*;

    /// Arbitrary append/delete/gc sequences preserve exactly the live
    /// entry set, both in the running log and across recovery.
    fn check(ops: &[(u8, u64)]) -> Result<(), TestCaseError> {
        let pool =
            PmemPool::new(PmemConfig::default().pool_size(8 << 20).latency_mode(LatencyMode::Off));
        let mut t = pool.register_thread();
        let mut log = BookLog::create(&pool, 0, 1 << 20, 6, true, usize::MAX);
        // Model: live normal entries by addr -> (ref, size).
        let mut live: Vec<(EntryRef, u64)> = Vec::new();
        for (i, &(op, x)) in ops.iter().enumerate() {
            match op % 3 {
                0 | 1 => {
                    let addr = ((i as u64 + 1) << 12) % (1 << 30);
                    let e =
                        BookEntry { addr, size: 4096 * (1 + (x % 4) as u32), is_slab: op % 2 == 0 };
                    let r = log.append(&pool, &mut t, e).expect("append");
                    live.push((r, addr));
                }
                _ => {
                    if !live.is_empty() {
                        let idx = (x as usize) % live.len();
                        let (r, _) = live.swap_remove(idx);
                        log.delete(&pool, &mut t, r).expect("delete");
                    }
                }
            }
            if x % 17 == 0 {
                log.fast_gc();
            }
            if x % 29 == 0 {
                let moves = log.slow_gc(&pool, &mut t).expect("slow gc");
                for (r, _) in live.iter_mut() {
                    if let Some(nr) = moves.get(r) {
                        *r = *nr;
                    }
                }
            }
        }
        // Recovery sees exactly the live set.
        let (_, recovered) = BookLog::recover(&pool, 0, 1 << 20, 6, true, usize::MAX);
        let mut got: Vec<u64> = recovered.iter().map(|(_, e)| e.addr).collect();
        let mut want: Vec<u64> = live.iter().map(|(_, a)| *a).collect();
        got.sort_unstable();
        want.sort_unstable();
        prop_assert_eq!(got, want);
        Ok(())
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

        #[test]
        fn booklog_preserves_live_set(ops in proptest::collection::vec((any::<u8>(), any::<u64>()), 1..300)) {
            check(&ops)?;
        }
    }
}
