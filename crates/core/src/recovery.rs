//! Recovery (§4.4): rebuild the allocator from a pool image after a normal
//! shutdown or a crash.
//!
//! Normal-shutdown path: re-create the arenas, recover the bookkeeping log
//! (or region-table headers), reconstruct a vslab for every slab entry —
//! including `cnt_slab`/`cnt_block` for slabs that were mid-morph — and
//! rebuild VEHs plus the reclaimed list from the gaps between live extents.
//!
//! Failure path additions:
//! * interrupted **morphs** are rolled back (flag 1–2) or forward (flag 3)
//!   using the header flag and index table;
//! * **NVAlloc-LOG** replays the newest WAL entry per thread micro-log in
//!   global sequence order, completing or undoing half-finished operations;
//! * **NVAlloc-GC** runs a conservative garbage collection from the root
//!   slots, rebuilding every slab bitmap from the reachable set and
//!   reclaiming leaked blocks and extents (as Makalu does).

use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::atomic::{AtomicU64, AtomicUsize};
use std::sync::Arc;

use nvalloc_pmem::{FlushKind, PmError, PmOffset, PmResult, PmThread, PmemPool};

use crate::arena::{arena_state, Arena};
use crate::bitmap::PmBitmap;
use crate::config::{NvConfig, Variant};
use crate::front::{Layout, NvAllocator, NvInner, RecoveryReport, POOL_MAGIC};
use crate::geometry::GeometryTable;
use crate::large::{RecoveredExtent, VehId};
use crate::rtree::{Owner, RTree};
use crate::shards::ShardedLarge;
use crate::size_class::{class_size, SLAB_SIZE};
use crate::slab::{
    flag, header_word1, persist_flag, read_index_entry, IndexEntry, MorphState, SlabHeader, VSlab,
    NO_OLD_CLASS,
};
use crate::telemetry::{CoreMetrics, Counter, OpKind};
use crate::trace::{EventKind, TraceRecorder};
use crate::wal::{WalEntry, WalOp, WalRegion};

pub(crate) fn recover(
    pool: Arc<PmemPool>,
    cfg: NvConfig,
) -> PmResult<(NvAllocator, RecoveryReport)> {
    let cfg = NvAllocator::effective(cfg, &pool);
    if pool.read_u64(0) != POOL_MAGIC {
        return Err(PmError::Corrupt("pool is not NVAlloc-formatted"));
    }
    let layout = Layout::compute(&cfg, pool.size())?;
    let geoms = GeometryTable::new(cfg.stripes_for(cfg.interleave_bitmap));
    let mut t = pool.register_thread();
    // The recorder is created before any repair work so the recovery
    // thread's phase transitions land in the flight record too.
    let tracer = cfg.trace.then(|| Arc::new(TraceRecorder::new(cfg.trace_events_per_thread)));
    if let Some(rec) = &tracer {
        t.set_tracer(rec.register());
    }
    let mut report = RecoveryReport::default();
    t.trace(EventKind::RecoveryPhase.code(), 0, cfg.arenas as u64);

    // Arena flags decide the recovery mode (§4.4).
    let arenas: Vec<Arc<Arena>> = (0..cfg.arenas)
        .map(|i| {
            let wal_base =
                layout.wal_base + (i * WalRegion::region_bytes(layout.wal_micro_count)) as u64;
            Arc::new(Arena::reopen(
                i as u32,
                layout.arena_flags + (i * 64) as u64,
                wal_base,
                layout.wal_micro_count,
            ))
        })
        .collect();
    report.normal_shutdown = arenas.iter().all(|a| a.state(&pool) == arena_state::NORMAL_SHUTDOWN);
    for a in &arenas {
        a.set_state(&pool, &mut t, arena_state::RECOVERY);
    }

    // Rebuild the large allocator (booklog scan or region-table scan).
    // Shards recover in ascending index order, so the merged extent list
    // is deterministic for a given pool image.
    let rtree = Arc::new(RTree::new());
    let mut large_cfg = layout.large_config_pub(&cfg);
    large_cfg.slow_gc_threshold = ((pool.size() as f64 * cfg.usage_pmem) as usize).max(4096);
    let (large, extents) = ShardedLarge::recover(&pool, large_cfg, layout.large_shards, &rtree);

    // Reconstruct slabs (and resolve interrupted morphs).
    let mut vslabs: Vec<VSlab> = Vec::new();
    let mut bad_slab_extents: Vec<VehId> = Vec::new();
    for e in &extents {
        if e.is_slab {
            match recover_slab(&pool, &mut t, &geoms, e, &mut report) {
                Some(vs) => vslabs.push(vs),
                None => bad_slab_extents.push(e.veh),
            }
        } else {
            report.extents += 1;
        }
    }
    // Slab extents whose header never persisted are leaks: free them.
    for veh in bad_slab_extents {
        let _ = large.free(&pool, &mut t, veh);
        report.leaks_fixed += 1;
    }
    report.slabs = vslabs.len();
    t.trace(EventKind::RecoveryPhase.code(), 1, report.slabs as u64);

    // Register slab ownership in the rtree (round-robin arena assignment;
    // the original assignment is not persisted and does not affect
    // correctness).
    for (i, vs) in vslabs.iter().enumerate() {
        let arena = (i % cfg.arenas) as u32;
        rtree.insert_range(vs.off, SLAB_SIZE, Owner::Slab { slab: vs.off, arena }.pack());
    }

    // Failure-only repairs.
    if !report.normal_shutdown {
        match cfg.variant {
            Variant::Log => {
                replay_wals(
                    &pool,
                    &mut t,
                    &cfg,
                    &layout,
                    &geoms,
                    &arenas,
                    &large,
                    &rtree,
                    &mut vslabs,
                    &mut report,
                )?;
                t.trace(EventKind::RecoveryPhase.code(), 2, report.wal_replayed as u64);
            }
            Variant::Gc => {
                conservative_gc(
                    &pool,
                    &mut t,
                    &layout,
                    &geoms,
                    &large,
                    &rtree,
                    &mut vslabs,
                    &mut report,
                )?;
                t.trace(EventKind::RecoveryPhase.code(), 3, report.gc_live_blocks as u64);
            }
            Variant::Internal => {
                // Internal collection: the persisted bitmaps and booklog
                // are authoritative and every object is enumerable, so
                // nothing can leak and nothing needs replaying (§7).
            }
        }
    }

    // Volatile state: resync every vslab against the (possibly repaired)
    // persistent bitmaps and hand slabs to their arenas.
    let mut live_bytes = 0usize;
    for (i, mut vs) in vslabs.into_iter().enumerate() {
        vs.resync_from_persistent(&pool, &geoms);
        live_bytes += (vs.nblocks - vs.nfree) * class_size(vs.class);
        if let Some(m) = &vs.morph {
            live_bytes += m.cnt_slab * class_size(m.old_class);
            // Blocks withheld by cnt_block are not live allocations.
            let withheld: usize = m.cnt_block.iter().take(vs.nblocks).filter(|&&c| c > 0).count();
            live_bytes -= withheld.min(vs.nblocks - vs.nfree) * class_size(vs.class);
        }
        let arena = &arenas[i % cfg.arenas];
        arena.inner.lock().add_slab(vs);
    }
    for e in &extents {
        // Only extents still *active* after the repairs count as live
        // (WAL replay / GC may have freed orphans to the reclaimed list).
        let active = large
            .veh(e.veh)
            .is_some_and(|v| v.state == crate::large::ExtentState::Active && v.off == e.off);
        if !e.is_slab && active {
            live_bytes += e.size;
        }
    }

    // Highest surviving WAL sequence so new entries keep winning replays.
    let max_seq =
        arenas.iter().flat_map(|a| a.wal.replay_entries(&pool)).map(|e| e.seq).max().unwrap_or(0);

    for a in &arenas {
        a.set_state(&pool, &mut t, arena_state::RUNNING);
    }

    // Telemetry: the whole recovery ran on `t`'s virtual clock (the WAL
    // replay and conservative-GC passes share it), so its reading is the
    // modelled recovery latency.
    let metrics = CoreMetrics::new(cfg.telemetry);
    metrics.add(Counter::WalReplays, report.wal_replayed as u64);
    metrics.add(Counter::MorphUndone, report.morphs_resolved as u64);
    metrics.record_hist(OpKind::Recovery, t.virtual_ns());
    t.trace(EventKind::RecoveryPhase.code(), 4, report.leaks_fixed as u64);

    let slab_gates = crate::remote::SlabGates::new(pool.size());
    let observe = (cfg.timeline_interval_ns > 0).then(|| {
        Arc::new(crate::observe::TimelineSampler::new(
            cfg.timeline_interval_ns,
            cfg.timeline_capacity,
        ))
    });
    let service = cfg.service.then(|| crate::service::ServiceState::new(cfg.service_tick_ns));
    let prof = (cfg.profile_sample_bytes > 0).then(|| {
        Arc::new(crate::prof::Prof::new(cfg.profile_sample_bytes, layout.prof_base, cfg.arenas))
    });
    let alloc = NvAllocator(Arc::new(NvInner {
        pool,
        cfg,
        geoms,
        layout,
        arenas,
        large,
        rtree,
        live_bytes: AtomicUsize::new(live_bytes),
        wal_seq: AtomicU64::new(max_seq + 1),
        metrics,
        tracer,
        slab_gates,
        observe,
        service,
        prof,
    }));
    // Provenance-sidelog replay runs after the heap is authoritative:
    // replayed records whose object did not survive (the crash landed
    // between an append and its commit point, or a repair freed the
    // object) are pruned against the live-object view, then each arena
    // log is re-compacted so the persistent sidelog again holds exactly
    // the surviving attributions.
    if let Some(p) = &alloc.0.prof {
        let mut pt = alloc.0.pool.register_thread();
        let stats = p.rebuild(&alloc.0.pool, &mut pt, |a| alloc.usable_size(a));
        report.prof_records = stats.records;
        report.prof_stale = stats.stale;
    }
    alloc.maybe_spawn_service();
    Ok((alloc, report))
}

/// Rebuild one slab's vslab from its persistent header, rolling
/// interrupted morphs back or forward first. Returns `None` for slabs
/// whose header never persisted.
fn recover_slab(
    pool: &PmemPool,
    t: &mut nvalloc_pmem::PmThread,
    geoms: &GeometryTable,
    e: &RecoveredExtent,
    report: &mut RecoveryReport,
) -> Option<VSlab> {
    let mut h = SlabHeader::read(pool, e.off)?;
    if (h.class as usize) >= crate::size_class::NUM_CLASSES {
        return None;
    }

    // Resolve interrupted morphs via the step flag (§5.2).
    if h.flag != flag::NONE {
        report.morphs_resolved += 1;
        match h.flag {
            flag::OLD_SAVED => {
                // Undo step 1: clear the old-layout fields.
                pool.write_u64(e.off + 8, header_word1(h.data_offset, NO_OLD_CLASS, 0));
                pool.write_u64(e.off + 16, 0);
                pool.flush(t, e.off + 8, 16, FlushKind::Meta);
                persist_flag(pool, t, e.off, h.class, flag::NONE);
            }
            flag::INDEX_WRITTEN => {
                // Undo steps 1–2. The bitmap may be partially overwritten
                // by an interrupted step 3: rebuild it from the index
                // table, which is authoritative at this point.
                let g = geoms.of(h.class as usize);
                let bm = PmBitmap::new(e.off + g.bitmap_off as u64, g.bitmap);
                bm.clear_all(pool);
                for i in 0..h.index_len as usize {
                    let entry = read_index_entry(pool, e.off, h.index_table_off, i);
                    if entry.allocated {
                        bm.write_volatile(pool, entry.old_idx as usize, true);
                    }
                }
                pool.flush(t, e.off + g.bitmap_off as u64, g.bitmap.bytes(), FlushKind::Meta);
                pool.write_u64(e.off + 8, header_word1(h.old_data_offset, NO_OLD_CLASS, 0));
                pool.write_u64(e.off + 16, 0);
                pool.flush(t, e.off + 8, 16, FlushKind::Meta);
                persist_flag(pool, t, e.off, h.class, flag::NONE);
            }
            flag::NEW_WRITTEN => {
                // Step 3 completed: roll forward.
                persist_flag(pool, t, e.off, h.class, flag::NONE);
            }
            _ => return None,
        }
        h = SlabHeader::read(pool, e.off)?;
    }

    let class = h.class as usize;
    let g = geoms.of(class);
    let data_offset = h.data_offset as usize;
    if data_offset < g.bitmap_off || data_offset > SLAB_SIZE {
        return None;
    }
    let nblocks = g.nblocks_at(data_offset);
    let morph_state = (h.old_class != NO_OLD_CLASS).then(|| {
        let index: Vec<IndexEntry> = (0..h.index_len as usize)
            .map(|i| read_index_entry(pool, e.off, h.index_table_off, i))
            .collect();
        let old_class = (h.old_class as usize).min(crate::size_class::NUM_CLASSES - 1);
        let old_bs = class_size(old_class);
        let mut cnt_block = vec![0u16; nblocks];
        let mut cnt_slab = 0;
        for entry in index.iter().filter(|e| e.allocated) {
            cnt_slab += 1;
            let start = h.old_data_offset as usize + entry.old_idx as usize * old_bs;
            let end = start + old_bs;
            if end > data_offset && !cnt_block.is_empty() {
                let bs = class_size(class);
                let first = start.saturating_sub(data_offset) / bs;
                let last = ((end - 1).saturating_sub(data_offset) / bs).min(nblocks - 1);
                for c in cnt_block.iter_mut().take(last + 1).skip(first) {
                    *c += 1;
                }
            }
        }
        MorphState {
            old_class,
            old_data_offset: h.old_data_offset as usize,
            index_off: h.index_table_off as usize,
            index,
            cnt_slab,
            cnt_block,
        }
    });

    let mut vs = VSlab::create_shell(e.off, class, e.veh, data_offset, nblocks);
    vs.morph = morph_state;
    Some(vs)
}

/// NVAlloc-LOG failure recovery: replay the newest WAL entry of every
/// micro-log in global sequence order (§4.4).
#[allow(clippy::too_many_arguments)]
fn replay_wals(
    pool: &PmemPool,
    t: &mut PmThread,
    cfg: &NvConfig,
    layout: &Layout,
    geoms: &GeometryTable,
    arenas: &[Arc<Arena>],
    large: &ShardedLarge,
    rtree: &RTree,
    vslabs: &mut [VSlab],
    report: &mut RecoveryReport,
) -> PmResult<()> {
    let _ = (cfg, layout);
    let mut entries: Vec<WalEntry> =
        arenas.iter().flat_map(|a| a.wal.replay_entries(pool)).collect();
    entries.sort_by_key(|e| e.seq);
    // Later entries supersede earlier ones for the same block.
    let mut latest: HashMap<PmOffset, WalEntry> = HashMap::new();
    for e in &entries {
        latest.insert(e.addr, *e);
    }
    let mut by_slab: HashMap<PmOffset, &mut VSlab> =
        vslabs.iter_mut().map(|v| (v.off, v)).collect();

    for e in latest.values() {
        report.wal_replayed += 1;
        let committed_alloc = pool.read_u64(e.dest) == e.addr;
        let slab_off = e.addr & !(SLAB_SIZE as u64 - 1);
        if let Some(vs) = by_slab.get_mut(&slab_off) {
            let should_be_live = matches!(e.op, WalOp::Alloc) && committed_alloc;
            // Old-class (morph) block?
            if let Some(m) = vs.morph.as_mut() {
                let old_bs = class_size(m.old_class) as u64;
                let rel = e.addr.wrapping_sub(slab_off + m.old_data_offset as u64);
                if rel % old_bs == 0 {
                    let old_idx = (rel / old_bs) as u16;
                    if let Some(pos) = m.index.iter().position(|x| x.old_idx == old_idx) {
                        if m.index[pos].allocated != should_be_live {
                            crate::slab::persist_index_entry(
                                pool,
                                t,
                                slab_off,
                                m.index_off as u32,
                                pos,
                                IndexEntry { old_idx, allocated: should_be_live },
                            );
                            m.index[pos].allocated = should_be_live;
                            report.leaks_fixed += 1;
                            // cnt fields are rebuilt below from the index.
                            rebuild_counts(
                                vs.morph.as_mut().expect("morph"),
                                vs.data_offset,
                                class_size(vs.class),
                                vs.nblocks,
                            );
                        }
                        continue;
                    }
                }
            }
            let g = geoms.of(vs.class);
            let Some(idx) = vs.block_index(e.addr) else { continue };
            let bm = PmBitmap::new(slab_off + g.bitmap_off as u64, g.bitmap);
            if bm.get(pool, idx) != should_be_live {
                if should_be_live {
                    bm.set_persist(pool, t, idx);
                } else {
                    bm.clear_persist(pool, t, idx);
                }
                report.leaks_fixed += 1;
            }
            if matches!(e.op, WalOp::Free) && committed_alloc {
                // The free never finished clearing the destination.
                pool.persist_u64(t, e.dest, 0, FlushKind::Meta);
            }
        } else if let Some(Owner::Extent { veh }) = large_owner_of(large, rtree, e.addr) {
            let should_be_live = matches!(e.op, WalOp::Alloc) && committed_alloc;
            if !should_be_live {
                if matches!(e.op, WalOp::Free) && committed_alloc {
                    pool.persist_u64(t, e.dest, 0, FlushKind::Meta);
                }
                if large.free(pool, t, veh).is_ok() {
                    report.leaks_fixed += 1;
                }
            }
        } else if matches!(e.op, WalOp::Alloc) && !committed_alloc {
            // Nothing persisted for this allocation: nothing to undo.
        }
    }
    Ok(())
}

fn large_owner_of(large: &ShardedLarge, rtree: &RTree, addr: PmOffset) -> Option<Owner> {
    rtree.lookup(addr).map(Owner::unpack).filter(|o| match o {
        Owner::Extent { veh } => large.veh(*veh).is_some_and(|v| v.off == addr),
        _ => false,
    })
}

fn rebuild_counts(m: &mut MorphState, data_offset: usize, bs: usize, nblocks: usize) {
    let old_bs = class_size(m.old_class);
    m.cnt_block = vec![0u16; nblocks];
    m.cnt_slab = 0;
    for e in m.index.iter().filter(|e| e.allocated) {
        m.cnt_slab += 1;
        let start = m.old_data_offset + e.old_idx as usize * old_bs;
        let end = start + old_bs;
        if end > data_offset && nblocks > 0 {
            let first = start.saturating_sub(data_offset) / bs;
            let last = ((end - 1).saturating_sub(data_offset) / bs).min(nblocks - 1);
            for j in first..=last {
                m.cnt_block[j] += 1;
            }
        }
    }
}

/// NVAlloc-GC failure recovery: conservative mark from the root slots,
/// then rebuild every slab bitmap and free unreachable extents (§4.4,
/// following Makalu).
#[allow(clippy::too_many_arguments)]
fn conservative_gc(
    pool: &PmemPool,
    t: &mut PmThread,
    layout: &Layout,
    geoms: &GeometryTable,
    large: &ShardedLarge,
    rtree: &RTree,
    vslabs: &mut [VSlab],
    report: &mut RecoveryReport,
) -> PmResult<()> {
    let by_slab: HashMap<PmOffset, usize> =
        vslabs.iter().enumerate().map(|(i, v)| (v.off, i)).collect();

    // Mark phase: BFS over pointer-looking words.
    let mut marked: HashSet<PmOffset> = HashSet::new();
    let mut queue: VecDeque<(PmOffset, usize)> = VecDeque::new(); // (block start, len)

    let push_candidate =
        |p: PmOffset, marked: &mut HashSet<PmOffset>, queue: &mut VecDeque<(PmOffset, usize)>| {
            if p == 0 || p as usize >= pool.size() {
                return false;
            }
            let slab_off = p & !(SLAB_SIZE as u64 - 1);
            if let Some(&vi) = by_slab.get(&slab_off) {
                let vs = &vslabs[vi];
                // New-class block start?
                if let Some(_idx) = vs.block_index(p) {
                    if marked.insert(p) {
                        queue.push_back((p, vs.block_size()));
                        return true;
                    }
                    return false;
                }
                // Live old-class block start?
                if let Some(m) = &vs.morph {
                    let old_bs = class_size(m.old_class) as u64;
                    let rel = p.wrapping_sub(slab_off + m.old_data_offset as u64);
                    if rel.is_multiple_of(old_bs)
                        && m.index.iter().any(|e| e.old_idx as u64 == rel / old_bs)
                        && marked.insert(p)
                    {
                        queue.push_back((p, old_bs as usize));
                        return true;
                    }
                }
                return false;
            }
            if let Some(Owner::Extent { veh }) = large_owner_of(large, rtree, p) {
                let size = large.veh(veh).expect("validated").size;
                if marked.insert(p) {
                    queue.push_back((p, size));
                    return true;
                }
            }
            false
        };

    // Roots.
    for i in 0..layout.roots_count {
        let p = pool.read_u64(layout.roots + (i * 8) as u64);
        push_candidate(p, &mut marked, &mut queue);
    }
    // Transitive closure.
    while let Some((start, len)) = queue.pop_front() {
        let mut off = start;
        let end = start + len as u64;
        while off + 8 <= end {
            let p = pool.read_u64(off);
            push_candidate(p, &mut marked, &mut queue);
            off += 8;
        }
    }
    report.gc_live_blocks = marked.len();

    // Rebuild slab bitmaps from the mark set.
    for vs in vslabs.iter_mut() {
        let g = geoms.of(vs.class);
        let bm = PmBitmap::new(vs.off + g.bitmap_off as u64, g.bitmap);
        let before = bm.count_set(pool);
        bm.clear_all(pool);
        let mut after = 0;
        for idx in 0..vs.nblocks {
            let addr = vs.block_addr(idx);
            if marked.contains(&addr) {
                bm.write_volatile(pool, idx, true);
                after += 1;
            }
        }
        report.leaks_fixed += before.saturating_sub(after);
        // Morph index entries: unreachable old blocks die.
        let (doff, bs, nblocks, off) = (vs.data_offset, vs.block_size(), vs.nblocks, vs.off);
        if let Some(m) = vs.morph.as_mut() {
            for pos in 0..m.index.len() {
                let e = m.index[pos];
                if !e.allocated {
                    continue;
                }
                let addr =
                    off + (m.old_data_offset + e.old_idx as usize * class_size(m.old_class)) as u64;
                if !marked.contains(&addr) {
                    m.index[pos].allocated = false;
                    crate::slab::persist_index_entry(
                        pool,
                        t,
                        off,
                        m.index_off as u32,
                        pos,
                        IndexEntry { allocated: false, ..e },
                    );
                    report.leaks_fixed += 1;
                }
            }
            rebuild_counts(m, doff, bs, nblocks);
        }
        pool.flush(t, vs.off, vs.data_offset, FlushKind::Meta);
    }
    // Conditional: with no slabs to sweep, nothing was flushed and an
    // unconditional fence here would order nothing (pmsan: empty_fence).
    pool.fence_pending(t);

    // Free unreachable non-slab extents.
    let unreachable: Vec<VehId> = large_active_nonslab(large)
        .into_iter()
        .filter(|(_, off)| !marked.contains(off))
        .map(|(veh, _)| veh)
        .collect();
    for veh in unreachable {
        if large.free(pool, t, veh).is_ok() {
            report.leaks_fixed += 1;
        }
    }
    // Clear any root slots that pointed at garbage.
    for i in 0..layout.roots_count {
        let slot = layout.roots + (i * 8) as u64;
        let p = pool.read_u64(slot);
        if p != 0 && !marked.contains(&p) {
            pool.persist_u64(t, slot, 0, FlushKind::Meta);
        }
    }
    Ok(())
}

fn large_active_nonslab(large: &ShardedLarge) -> Vec<(VehId, PmOffset)> {
    large
        .active_extents()
        .into_iter()
        .filter(|(_, _, is_slab)| !*is_slab)
        .map(|(v, o, _)| (v, o))
        .collect()
}
