//! Slab morphing (§5.2): transforming a mostly-empty slab to another size
//! class while its remaining old-class blocks stay live.
//!
//! A morph candidate is chosen by scanning the arena's LRU list from the
//! least-recently-used end for a slab whose occupancy is below the
//! space-utilisation threshold `SU`, whose blocks are all accounted for in
//! the persistent bitmap (none parked in thread caches), and whose live
//! blocks don't overlap the *new* header area.
//!
//! The metadata transform is staged behind the header `flag` field so a
//! crash at any point can be rolled back (flag 1–2) or forward (flag 3):
//!
//! 1. save `old_size_class` / `old_data_offset` / `index_table_off`  → flag 1
//! 2. write the index table (one 2 B entry per live old block)       → flag 2
//! 3. write the new `size_class` / `data_offset`, zero the new bitmap → flag 3,
//!    then reset flag to 0 (morph complete; the slab is a `slab_in`).
//!
//! While `cnt_slab > 0` the slab indexes two block layouts at once; new
//! blocks overlapped by live old blocks are withheld via `cnt_block`.
//! Releasing the last old block turns the slab into a regular `slab_after`.

use nvalloc_pmem::{FlushKind, PmError, PmOffset, PmResult, PmThread, PmemPool};

use crate::arena::ArenaInner;
use crate::geometry::GeometryTable;
use crate::remote::SlabGates;
use crate::size_class::{class_size, ClassId};
use crate::slab::{
    flag, header_word1, persist_flag, persist_index_entry, IndexEntry, MorphState, NO_OLD_CLASS,
};
use crate::telemetry::{CoreMetrics, Counter};

/// Geometry of a morph target, computed before committing to the transform.
#[derive(Debug, Clone)]
struct MorphPlan {
    slab: PmOffset,
    old_class: ClassId,
    old_data_offset: usize,
    live: Vec<u16>,
    index_off: usize,
    new_data_offset: usize,
    new_nblocks: usize,
}

/// Plan the new in-slab layout for morphing to `new_class` with
/// `live_count` index entries. Returns `(index_off, new_data_offset,
/// new_nblocks)`.
fn plan_layout(
    geoms: &GeometryTable,
    new_class: ClassId,
    live_count: usize,
) -> (usize, usize, usize) {
    let g = geoms.of(new_class);
    let index_off = g.bitmap_off + g.bitmap.bytes();
    let new_data_offset = (index_off + 2 * live_count).next_multiple_of(64);
    let new_nblocks = g.nblocks_at(new_data_offset);
    (index_off, new_data_offset, new_nblocks)
}

/// Try to morph one of the arena's slabs into `new_class`. On success the
/// morphed slab is already linked into `freelist[new_class]` and its offset
/// is returned.
///
/// When `gates` is provided, the candidate's slab gate is held exclusively
/// from before the bitmap scan until the transform completes, so a
/// lock-free free cannot mutate the bitmap between planning and applying
/// (which would record a freed block as live in the index table). Slabs
/// with in-flight pinned frees are simply skipped.
///
/// Returns `None` when no eligible candidate exists.
#[allow(clippy::too_many_arguments)]
pub fn try_morph(
    pool: &PmemPool,
    t: &mut PmThread,
    inner: &mut ArenaInner,
    geoms: &GeometryTable,
    su_threshold: f64,
    new_class: ClassId,
    gates: Option<&SlabGates>,
    metrics: &CoreMetrics,
) -> Option<PmOffset> {
    let (examined, plan) = find_candidate(pool, inner, geoms, su_threshold, new_class, gates);
    metrics.add(Counter::MorphCandidates, examined);
    let plan = plan?;
    let slab = plan.slab;
    metrics.bump(Counter::MorphStarted);
    let done = apply(pool, t, inner, geoms, new_class, plan);
    if let Some(g) = gates {
        g.unlock(slab);
    }
    if done.is_some() {
        metrics.bump(Counter::MorphCompleted);
    }
    done
}

/// Scan the LRU list for a morphable slab. Returns the number of slabs
/// examined alongside the plan (telemetry).
fn find_candidate(
    pool: &PmemPool,
    inner: &ArenaInner,
    geoms: &GeometryTable,
    su_threshold: f64,
    new_class: ClassId,
    gates: Option<&SlabGates>,
) -> (u64, Option<MorphPlan>) {
    let mut examined = 0u64;
    // LRU scan, least recently used first (§5.2).
    for (_, &off) in inner.lru.iter() {
        examined += 1;
        let vs = &inner.slabs[&off];
        if vs.class == new_class || vs.morph.is_some() {
            continue;
        }
        if vs.occupancy() >= su_threshold {
            continue;
        }
        // Take the slab's gate before reading the bitmap: a lock-free
        // free landing between this scan and the transform would be
        // recorded as live in the index table. A pinned gate (in-flight
        // fast free) makes the slab ineligible this round.
        if let Some(g) = gates {
            if !g.try_lock(off) {
                continue;
            }
        }
        match evaluate(pool, vs, geoms, new_class, off) {
            Some(plan) => return (examined, Some(plan)),
            None => {
                if let Some(g) = gates {
                    g.unlock(off);
                }
            }
        }
    }
    (examined, None)
}

/// Evaluate one gate-held candidate: bitmap scan plus layout checks.
fn evaluate(
    pool: &PmemPool,
    vs: &crate::slab::VSlab,
    geoms: &GeometryTable,
    new_class: ClassId,
    off: PmOffset,
) -> Option<MorphPlan> {
    // All unavailable blocks must be persistent allocations; blocks
    // parked in thread caches or remote-free queues make the slab
    // ineligible (their space may be handed out or returned at any
    // moment without taking the arena lock).
    let pbm = vs.pbitmap(geoms);
    let live: Vec<u16> =
        pbm.scan_set(pool).into_iter().filter(|&i| i < vs.nblocks).map(|i| i as u16).collect();
    if live.len() != vs.nblocks - vs.nfree {
        return None; // tcache-cached blocks present
    }
    let (index_off, new_data_offset, new_nblocks) = plan_layout(geoms, new_class, live.len());
    if new_nblocks == 0 {
        return None;
    }
    // The new header must not overlap live old-block data (§5.2: "a
    // slab will not be selected if the new header space is overlapped
    // with block spaces having live data").
    let old_bs = class_size(vs.class);
    let overlaps = live.iter().any(|&i| {
        let start = vs.data_offset + i as usize * old_bs;
        start < new_data_offset
    });
    if overlaps {
        return None;
    }
    Some(MorphPlan {
        slab: off,
        old_class: vs.class,
        old_data_offset: vs.data_offset,
        live,
        index_off,
        new_data_offset,
        new_nblocks,
    })
}

/// Execute the three-step transform and rebuild the volatile state.
fn apply(
    pool: &PmemPool,
    t: &mut PmThread,
    inner: &mut ArenaInner,
    geoms: &GeometryTable,
    new_class: ClassId,
    plan: MorphPlan,
) -> Option<PmOffset> {
    let off = plan.slab;
    let old_class = plan.old_class as u16;
    let index_len = plan.live.len() as u16;

    // Step 1: save old layout fields.
    pool.write_u64(off + 8, header_word1(plan.old_data_offset as u32, old_class, index_len));
    pool.write_u64(off + 16, plan.old_data_offset as u64 | (plan.index_off as u64) << 32);
    pool.charge_store(t, off + 8, 16);
    if !faults::skip_step1_flush() {
        pool.flush(t, off + 8, 16, FlushKind::Meta);
    }
    if !faults::skip_step1_fence() {
        pool.fence(t);
    }
    persist_flag(pool, t, off, old_class, flag::OLD_SAVED);

    // Step 2: write the index table.
    for (pos, &old_idx) in plan.live.iter().enumerate() {
        let e = IndexEntry { old_idx, allocated: true };
        pool.write_u16(off + plan.index_off as u64 + (pos * 2) as u64, e.pack());
    }
    let table_bytes = 2 * plan.live.len();
    if table_bytes > 0 {
        pool.charge_store(t, off + plan.index_off as u64, table_bytes);
        pool.flush(t, off + plan.index_off as u64, table_bytes, FlushKind::Meta);
        pool.fence(t);
    }
    persist_flag(pool, t, off, old_class, flag::INDEX_WRITTEN);

    // Step 3: install the new layout. The old bitmap region is overwritten
    // here; the index table written in step 2 is now the authoritative
    // record of the live old blocks.
    let g = geoms.of(new_class);
    let new_bm = crate::bitmap::PmBitmap::new(off + g.bitmap_off as u64, g.bitmap);
    new_bm.clear_all(pool);
    pool.write_u64(off + 8, header_word1(plan.new_data_offset as u32, old_class, index_len));
    pool.charge_store(t, off + 8, 8 + g.bitmap.bytes());
    pool.flush(t, off + g.bitmap_off as u64, g.bitmap.bytes(), FlushKind::Meta);
    pool.flush(t, off + 8, 8, FlushKind::Meta);
    pool.fence(t);
    persist_flag(pool, t, off, new_class as u16, flag::NEW_WRITTEN);
    // Transformation complete.
    persist_flag(pool, t, off, new_class as u16, flag::NONE);

    // Volatile rebuild.
    let old_bs = class_size(plan.old_class);
    let new_bs = class_size(new_class);
    let mut cnt_block = vec![0u16; plan.new_nblocks];
    for &i in &plan.live {
        let start = plan.old_data_offset + i as usize * old_bs;
        let end = start + old_bs;
        mark_overlaps(&mut cnt_block, plan.new_data_offset, new_bs, start, end);
    }
    let cnt_slab = plan.live.len();

    let old_class_id = plan.old_class;
    inner.freelist_remove(old_class_id, off);
    inner.lru_remove(off);

    let vs = inner.slabs.get_mut(&off).expect("slab exists");
    vs.class = new_class;
    vs.data_offset = plan.new_data_offset;
    vs.nblocks = plan.new_nblocks;
    vs.morph = Some(MorphState {
        old_class: old_class_id,
        old_data_offset: plan.old_data_offset,
        index_off: plan.index_off,
        index: plan.live.iter().map(|&i| IndexEntry { old_idx: i, allocated: true }).collect(),
        cnt_slab,
        cnt_block: cnt_block.clone(),
    });
    // Rebuild availability: new bitmap is empty; block positions with
    // cnt_block > 0 are withheld.
    vs.resync_from_persistent(pool, geoms);

    if vs.nfree > 0 {
        inner.freelist_push(new_class, off);
    }
    Some(off)
}

/// Test-only fault injection: mutation tests for the pmsan sanitizer
/// delete exactly one flush or one fence from the step-1 sequence and
/// assert pmsan flags that site. Compiled out of release builds; the
/// accessors below collapse to `false` constants outside `cfg(test)`.
#[cfg(test)]
pub(crate) mod faults {
    use std::cell::Cell;

    thread_local! {
        pub static SKIP_STEP1_FLUSH: Cell<bool> = const { Cell::new(false) };
        pub static SKIP_STEP1_FENCE: Cell<bool> = const { Cell::new(false) };
    }

    pub(crate) fn skip_step1_flush() -> bool {
        SKIP_STEP1_FLUSH.with(|f| f.get())
    }

    pub(crate) fn skip_step1_fence() -> bool {
        SKIP_STEP1_FENCE.with(|f| f.get())
    }
}

#[cfg(not(test))]
mod faults {
    pub(crate) fn skip_step1_flush() -> bool {
        false
    }

    pub(crate) fn skip_step1_fence() -> bool {
        false
    }
}

fn mark_overlaps(cnt_block: &mut [u16], new_doff: usize, new_bs: usize, start: usize, end: usize) {
    if end <= new_doff || cnt_block.is_empty() {
        return;
    }
    let first = start.saturating_sub(new_doff) / new_bs;
    let last = (end - 1).saturating_sub(new_doff) / new_bs;
    for j in first..=last.min(cnt_block.len() - 1) {
        cnt_block[j] += 1;
    }
}

/// If `addr` is a live old-class block of a morphed slab, return its index
/// position in the index table.
pub fn find_old_block(
    inner: &ArenaInner,
    slab_off: PmOffset,
    addr: PmOffset,
) -> Option<(usize, u16)> {
    let vs = inner.slabs.get(&slab_off)?;
    let m = vs.morph.as_ref()?;
    let old_bs = class_size(m.old_class) as u64;
    let rel = addr.checked_sub(slab_off + m.old_data_offset as u64)?;
    if rel % old_bs != 0 {
        return None;
    }
    let old_idx = (rel / old_bs) as u16;
    m.index.iter().position(|e| e.old_idx == old_idx && e.allocated).map(|pos| (pos, old_idx))
}

/// Release a live old-class block (blocks released this way bypass the
/// tcache; §5.2). Returns `true` if the slab just finished morphing
/// (`cnt_slab` hit zero) and has been restored to a regular slab.
///
/// # Errors
/// [`PmError::NotAllocated`] if `addr` is not a live old block.
pub fn release_old_block(
    pool: &PmemPool,
    t: &mut PmThread,
    inner: &mut ArenaInner,
    slab_off: PmOffset,
    addr: PmOffset,
) -> PmResult<bool> {
    let (pos, _) = find_old_block(inner, slab_off, addr).ok_or(PmError::NotAllocated)?;
    let vs = inner.slabs.get_mut(&slab_off).expect("morphed slab exists");
    let was_exhausted = vs.nfree == 0;
    let m = vs.morph.as_mut().expect("morph state present");
    let (index_off, old_class, old_doff) = (m.index_off, m.old_class, m.old_data_offset);
    let e = IndexEntry { old_idx: m.index[pos].old_idx, allocated: false };
    // Persist the state change in the index table.
    persist_index_entry(pool, t, slab_off, index_off as u32, pos, e);
    m.index[pos].allocated = false;
    m.cnt_slab -= 1;
    let finished = m.cnt_slab == 0;

    // Unblock new-class positions that no longer overlap a live old block.
    let old_bs = class_size(old_class);
    let start = old_doff + e.old_idx as usize * old_bs;
    let end = start + old_bs;
    let new_doff = vs.data_offset;
    let new_bs = vs.block_size();
    let nblocks = vs.nblocks;
    let mut newly_free = Vec::new();
    {
        let m = vs.morph.as_mut().expect("morph state present");
        if end > new_doff && !m.cnt_block.is_empty() {
            let first = start.saturating_sub(new_doff) / new_bs;
            let last = ((end - 1).saturating_sub(new_doff) / new_bs).min(m.cnt_block.len() - 1);
            for j in first..=last {
                debug_assert!(m.cnt_block[j] > 0);
                m.cnt_block[j] -= 1;
                if m.cnt_block[j] == 0 && j < nblocks {
                    newly_free.push(j);
                }
            }
        }
    }
    for j in newly_free {
        if vs.is_taken(j) {
            vs.release_block(j);
        }
    }
    let class = vs.class;
    let has_free = vs.nfree > 0;

    if finished {
        // slab_in → slab_after: clear the old-layout fields and rejoin the
        // LRU (§5.2: "slab_in is reset to a regular slab and is inserted
        // into the LRU list again").
        let w1 = header_word1(vs.data_offset as u32, NO_OLD_CLASS, 0);
        pool.write_u64(slab_off + 8, w1);
        pool.write_u64(slab_off + 16, 0);
        pool.charge_store(t, slab_off + 8, 16);
        pool.flush(t, slab_off + 8, 16, FlushKind::Meta);
        pool.fence(t);
        vs.morph = None;
        inner.touch(slab_off);
    }
    if was_exhausted && has_free {
        inner.freelist_push(class, slab_off);
    }
    Ok(finished)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arena::ArenaInner;
    use crate::size_class::size_to_class;
    use crate::slab::{SlabHeader, VSlab};
    use crate::tcache::TCache;
    use nvalloc_pmem::{LatencyMode, PmemConfig, PmemPool};
    use std::sync::Arc;

    fn pool() -> Arc<PmemPool> {
        PmemPool::new(PmemConfig::default().pool_size(4 << 20).latency_mode(LatencyMode::Off))
    }

    /// Build an arena with one slab of `class` holding `live` persistent
    /// allocations (no tcache residue).
    fn arena_with_slab(
        p: &PmemPool,
        t: &mut PmThread,
        g: &GeometryTable,
        class: ClassId,
        live: &[usize],
    ) -> (crate::arena::ArenaInner, Vec<PmOffset>) {
        let mut inner = ArenaInner::new();
        let mut vs = VSlab::create(p, t, 0, class, 0, g.of(class), true);
        let pbm = vs.pbitmap(g);
        let mut addrs = Vec::new();
        for &i in live {
            pbm.set_persist(p, t, i);
            vs.reserve_block(i);
            addrs.push(vs.block_addr(i));
        }
        inner.add_slab(vs);
        (inner, addrs)
    }

    use nvalloc_pmem::PmThread;

    #[test]
    fn morph_empty_slab_to_other_class() {
        let p = pool();
        let mut t = p.register_thread();
        let g = GeometryTable::new(6);
        let small = size_to_class(100).unwrap();
        let big = size_to_class(1500).unwrap();
        let (mut inner, _) = arena_with_slab(&p, &mut t, &g, small, &[]);
        let off = try_morph(&p, &mut t, &mut inner, &g, 0.2, big, None, &CoreMetrics::new(true))
            .expect("morphs");
        assert_eq!(off, 0);
        let vs = &inner.slabs[&0];
        assert_eq!(vs.class, big);
        assert!(vs.morph.is_some());
        assert_eq!(vs.morph.as_ref().unwrap().cnt_slab, 0);
        assert!(inner.freelist_contains(big, 0));
        assert!(!inner.freelist_contains(small, 0));
        // Header reflects the new class with flag reset.
        let h = SlabHeader::read(&p, 0).unwrap();
        assert_eq!(h.class as usize, big);
        assert_eq!(h.flag, flag::NONE);
        assert!(h.is_morphed(), "old fields kept until last old block dies");
    }

    #[test]
    fn morph_preserves_live_old_blocks() {
        let p = pool();
        let mut t = p.register_thread();
        let g = GeometryTable::new(6);
        let small = size_to_class(100).unwrap(); // 112 B blocks
        let big = size_to_class(1200).unwrap();
        // Live blocks in the middle of the slab: away from the new
        // header, but overlapping the new block region.
        let nb = g.of(small).nblocks;
        let live = [nb / 2, nb / 2 + 4, nb / 2 + 8];
        let (mut inner, addrs) = arena_with_slab(&p, &mut t, &g, small, &live);
        try_morph(&p, &mut t, &mut inner, &g, 0.2, big, None, &CoreMetrics::new(true))
            .expect("morphs");
        let vs = &inner.slabs[&0];
        let m = vs.morph.as_ref().unwrap();
        assert_eq!(m.cnt_slab, 3);
        assert_eq!(m.old_class, small);
        // Overlapped new blocks are withheld.
        let blocked: usize = m.cnt_block.iter().filter(|&&c| c > 0).count();
        assert!(blocked >= 1);
        // New allocations never land on a live old block.
        let old_ranges: Vec<(u64, u64)> =
            addrs.iter().map(|&a| (a, a + class_size(small) as u64)).collect();
        let mut scratch = inner.slabs.get_mut(&0).unwrap();
        let mut handed = Vec::new();
        while let Some(i) = scratch.take_block() {
            handed.push(scratch.block_addr(i));
        }
        for h in handed {
            let h_end = h + class_size(big) as u64;
            for &(s, e) in &old_ranges {
                assert!(h_end <= s || h >= e, "new block {h:#x} overlaps old block {s:#x}");
            }
        }
        let _ = &mut scratch;
    }

    #[test]
    fn occupied_slab_is_not_selected() {
        let p = pool();
        let mut t = p.register_thread();
        let g = GeometryTable::new(6);
        let small = size_to_class(100).unwrap();
        let big = size_to_class(1200).unwrap();
        let nb = g.of(small).nblocks;
        // 30% occupancy > SU=20%.
        let live: Vec<usize> = (0..(nb * 3 / 10)).map(|k| nb - 1 - k).collect();
        let (mut inner, _) = arena_with_slab(&p, &mut t, &g, small, &live);
        assert!(try_morph(&p, &mut t, &mut inner, &g, 0.2, big, None, &CoreMetrics::new(true))
            .is_none());
    }

    #[test]
    fn tcache_resident_blocks_prevent_morph() {
        let p = pool();
        let mut t = p.register_thread();
        let g = GeometryTable::new(6);
        let small = size_to_class(100).unwrap();
        let big = size_to_class(1200).unwrap();
        let (mut inner, _) = arena_with_slab(&p, &mut t, &g, small, &[]);
        // Reserve blocks into a tcache: volatile occupancy without
        // persistent bits.
        let mut tc = TCache::new(6, 8);
        inner.fill_tcache(&g, small, &mut tc);
        assert!(
            try_morph(&p, &mut t, &mut inner, &g, 0.2, big, None, &CoreMetrics::new(true))
                .is_none(),
            "slab with tcache-cached blocks must be ineligible"
        );
    }

    #[test]
    fn live_blocks_overlapping_new_header_prevent_morph() {
        let p = pool();
        let mut t = p.register_thread();
        let g = GeometryTable::new(6);
        let small = size_to_class(100).unwrap();
        let big = size_to_class(1200).unwrap();
        // Block 0 sits right after the old header — inside the new header
        // area (which is at least as large).
        let (mut inner, _) = arena_with_slab(&p, &mut t, &g, small, &[0]);
        assert!(try_morph(&p, &mut t, &mut inner, &g, 0.2, big, None, &CoreMetrics::new(true))
            .is_none());
    }

    #[test]
    fn release_old_blocks_until_slab_after() {
        let p = pool();
        let mut t = p.register_thread();
        let g = GeometryTable::new(6);
        let small = size_to_class(100).unwrap();
        let big = size_to_class(1200).unwrap();
        let nb = g.of(small).nblocks;
        let live = [nb - 1, nb - 3];
        let (mut inner, addrs) = arena_with_slab(&p, &mut t, &g, small, &live);
        try_morph(&p, &mut t, &mut inner, &g, 0.2, big, None, &CoreMetrics::new(true)).unwrap();

        assert!(find_old_block(&inner, 0, addrs[0]).is_some());
        let done = release_old_block(&p, &mut t, &mut inner, 0, addrs[0]).unwrap();
        assert!(!done, "one old block remains");
        // Double free of the same old block must fail.
        assert!(release_old_block(&p, &mut t, &mut inner, 0, addrs[0]).is_err());

        let done = release_old_block(&p, &mut t, &mut inner, 0, addrs[1]).unwrap();
        assert!(done, "last old block converts slab_in to slab_after");
        let vs = &inner.slabs[&0];
        assert!(vs.morph.is_none());
        let h = SlabHeader::read(&p, 0).unwrap();
        assert!(!h.is_morphed());
        assert_eq!(h.class as usize, big);
        // Back on the LRU: it may morph again later.
        assert!(inner.lru.values().any(|&o| o == 0));
    }

    #[test]
    fn release_unblocks_overlapped_new_blocks() {
        let p = pool();
        let mut t = p.register_thread();
        let g = GeometryTable::new(6);
        let small = size_to_class(100).unwrap();
        let big = size_to_class(1200).unwrap();
        let nb = g.of(small).nblocks;
        let (mut inner, addrs) = arena_with_slab(&p, &mut t, &g, small, &[nb / 2]);
        try_morph(&p, &mut t, &mut inner, &g, 0.2, big, None, &CoreMetrics::new(true)).unwrap();
        let free_before = inner.slabs[&0].nfree;
        release_old_block(&p, &mut t, &mut inner, 0, addrs[0]).unwrap();
        let free_after = inner.slabs[&0].nfree;
        assert!(free_after > free_before, "blocked positions must open up");
    }

    #[test]
    fn morph_is_crash_consistent_via_flag() {
        // Persist tracking: a clean morph leaves flag == NONE in the
        // persistent image.
        let p = PmemPool::new(
            PmemConfig::default()
                .pool_size(4 << 20)
                .latency_mode(LatencyMode::Off)
                .crash_tracking(true),
        );
        let mut t = p.register_thread();
        let g = GeometryTable::new(6);
        let small = size_to_class(100).unwrap();
        let big = size_to_class(1200).unwrap();
        let nb = g.of(small).nblocks;
        let (mut inner, _) = arena_with_slab(&p, &mut t, &g, small, &[nb - 1]);
        try_morph(&p, &mut t, &mut inner, &g, 0.2, big, None, &CoreMetrics::new(true)).unwrap();
        let img = PmemPool::from_crash_image(p.crash());
        let h = SlabHeader::read(&img, 0).unwrap();
        assert_eq!(h.flag, flag::NONE);
        assert_eq!(h.class as usize, big);
        assert!(h.is_morphed());
        assert_eq!(h.index_len, 1);
        // The index table survived and records the live block.
        let e = crate::slab::read_index_entry(&img, 0, h.index_table_off, 0);
        assert!(e.allocated);
        assert_eq!(e.old_idx as usize, nb - 1);
    }

    #[test]
    fn morph_progress_is_counted() {
        let p = pool();
        let mut t = p.register_thread();
        let g = GeometryTable::new(6);
        let small = size_to_class(100).unwrap();
        let big = size_to_class(1500).unwrap();
        let (mut inner, _) = arena_with_slab(&p, &mut t, &g, small, &[]);
        let m = CoreMetrics::new(true);
        try_morph(&p, &mut t, &mut inner, &g, 0.2, big, None, &m).expect("morphs");
        let s = m.snapshot();
        assert!(s.morph_candidates >= 1);
        assert_eq!(s.morph_started, 1);
        assert_eq!(s.morph_completed, 1);
    }

    #[test]
    fn same_class_is_never_a_candidate() {
        let p = pool();
        let mut t = p.register_thread();
        let g = GeometryTable::new(6);
        let small = size_to_class(100).unwrap();
        let (mut inner, _) = arena_with_slab(&p, &mut t, &g, small, &[]);
        assert!(try_morph(&p, &mut t, &mut inner, &g, 0.2, small, None, &CoreMetrics::new(true))
            .is_none());
    }

    #[test]
    fn morph_large_to_small_class() {
        let p = pool();
        let mut t = p.register_thread();
        let g = GeometryTable::new(6);
        let big = size_to_class(1200).unwrap();
        let small = size_to_class(100).unwrap();
        let nb = g.of(big).nblocks;
        let (mut inner, addrs) = arena_with_slab(&p, &mut t, &g, big, &[nb - 1]);
        try_morph(&p, &mut t, &mut inner, &g, 0.3, small, None, &CoreMetrics::new(true))
            .expect("downward morph works");
        let vs = &inner.slabs[&0];
        assert_eq!(vs.class, small);
        // Many small blocks are blocked by the one big old block.
        let m = vs.morph.as_ref().unwrap();
        let blocked = m.cnt_block.iter().filter(|&&c| c > 0).count();
        assert!(blocked >= class_size(big) / class_size(small));
        release_old_block(&p, &mut t, &mut inner, 0, addrs[0]).unwrap();
        assert!(inner.slabs[&0].morph.is_none());
    }

    // ---- pmsan mutation tests (ordering-sanitizer sensitivity) ----
    //
    // Each test deletes exactly one flush or one fence from the step-1
    // header-save sequence via the `faults` hooks and asserts the
    // sanitizer flags exactly that site — and nothing else.

    use nvalloc_pmem::PmsanKind;

    fn san_pool() -> Arc<PmemPool> {
        PmemPool::new(
            PmemConfig::default()
                .pool_size(4 << 20)
                .latency_mode(LatencyMode::Off)
                .crash_tracking(true)
                .pmsan(true),
        )
    }

    fn san_morph(skip_flush: bool, skip_fence: bool) -> Arc<PmemPool> {
        let p = san_pool();
        let mut t = p.register_thread();
        let g = GeometryTable::new(6);
        let small = size_to_class(100).unwrap();
        let big = size_to_class(1200).unwrap();
        let nb = g.of(small).nblocks;
        let live = [nb / 2, nb / 2 + 4];
        let (mut inner, _) = arena_with_slab(&p, &mut t, &g, small, &live);
        assert_eq!(p.pmsan_total(), 0, "setup must be ordering-clean");
        faults::SKIP_STEP1_FLUSH.with(|f| f.set(skip_flush));
        faults::SKIP_STEP1_FENCE.with(|f| f.set(skip_fence));
        let r = try_morph(&p, &mut t, &mut inner, &g, 0.2, big, None, &CoreMetrics::new(true));
        faults::SKIP_STEP1_FLUSH.with(|f| f.set(false));
        faults::SKIP_STEP1_FENCE.with(|f| f.set(false));
        r.expect("morphs");
        p
    }

    #[test]
    fn pmsan_unmutated_morph_is_clean() {
        let p = san_morph(false, false);
        assert_eq!(p.pmsan_total(), 0, "{}", p.pmsan_report().unwrap().to_json());
    }

    #[test]
    fn pmsan_flags_deleted_step1_flush() {
        // Without the step-1 flush, its fence commits nothing: the very
        // next fence in the sequence is flagged as empty.
        let p = san_morph(true, false);
        let r = p.pmsan_report().unwrap();
        assert_eq!(r.count(PmsanKind::EmptyFence), 1, "{}", r.to_json());
        assert_eq!(r.total(), 1, "exactly the deleted site: {}", r.to_json());
    }

    #[test]
    fn pmsan_flags_deleted_step1_fence() {
        // Without the step-1 fence, the flag-word store in persist_flag
        // lands on the header line while its flush is still pending: the
        // OLD_SAVED transition could reach media before the fields it
        // depends on.
        let p = san_morph(false, true);
        let r = p.pmsan_report().unwrap();
        assert_eq!(r.count(PmsanKind::StoreUnfenced), 1, "{}", r.to_json());
        assert_eq!(r.total(), 1, "exactly the deleted site: {}", r.to_json());
        // The violation pinpoints the slab header line (slab at offset 0).
        assert_eq!(r.violations[0].line, 0);
    }
}
