//! Slab geometry: where the header, bitmap, index table, and blocks live
//! inside a 64 KB slab, per size class.
//!
//! Every slab starts with a fixed 64 B header line, followed by the
//! persistent bitmap (whose size depends on the class's block count and the
//! configured stripe count), followed by the data region. A *morphing* slab
//! additionally carries an index table between bitmap and data; its data
//! region therefore starts later, which is exactly why the persistent
//! header stores an explicit `data_offset` (§5.2, Fig. 5).

use crate::bitmap::BitmapLayout;
use crate::size_class::{class_size, ClassId, NUM_CLASSES, SLAB_SIZE};

/// CPU cache line size, re-exported for in-crate use.
pub const CACHE_LINE: usize = nvalloc_pmem::CACHE_LINE;

/// Size of the fixed slab-header fields (one cache line).
pub const SLAB_FIXED_HEADER: usize = CACHE_LINE;

/// Geometry of a *regular* (non-morphing) slab of one size class.
#[derive(Debug, Clone, Copy)]
pub struct SlabGeometry {
    /// The size class this geometry describes.
    pub class: ClassId,
    /// Block size in bytes.
    pub block_size: usize,
    /// Number of blocks a regular slab of this class holds.
    pub nblocks: usize,
    /// Offset of the bitmap region within the slab.
    pub bitmap_off: usize,
    /// Bitmap layout (also used, truncated, by morphed slabs).
    pub bitmap: BitmapLayout,
    /// Offset of block 0 within a regular slab.
    pub data_offset: usize,
}

impl SlabGeometry {
    /// Compute the geometry for `class` with `stripes` bit stripes.
    ///
    /// The block count and header size are mutually dependent (more blocks
    /// ⇒ bigger bitmap ⇒ later data start ⇒ fewer blocks), so this iterates
    /// to the fixed point.
    pub fn compute(class: ClassId, stripes: usize) -> Self {
        let bs = class_size(class);
        let mut nblocks = (SLAB_SIZE - SLAB_FIXED_HEADER) / bs;
        loop {
            let bitmap = BitmapLayout::new(nblocks.max(1), stripes);
            let data_offset = (SLAB_FIXED_HEADER + bitmap.bytes()).next_multiple_of(CACHE_LINE);
            let fit = (SLAB_SIZE - data_offset) / bs;
            if fit >= nblocks {
                return SlabGeometry {
                    class,
                    block_size: bs,
                    nblocks,
                    bitmap_off: SLAB_FIXED_HEADER,
                    bitmap,
                    data_offset,
                };
            }
            nblocks = fit;
        }
    }

    /// Offset of block `i` within the slab, for a given data offset (which
    /// differs between regular and morphed slabs).
    #[inline]
    pub fn block_off(&self, data_offset: usize, i: usize) -> usize {
        data_offset + i * self.block_size
    }

    /// Number of blocks that fit behind an arbitrary `data_offset`
    /// (morphed slabs start their data later).
    #[inline]
    pub fn nblocks_at(&self, data_offset: usize) -> usize {
        ((SLAB_SIZE - data_offset) / self.block_size).min(self.nblocks)
    }
}

/// Per-configuration table of all class geometries.
#[derive(Debug, Clone)]
pub struct GeometryTable {
    geoms: Vec<SlabGeometry>,
    stripes: usize,
}

impl GeometryTable {
    /// Build the table for a stripe count.
    pub fn new(stripes: usize) -> Self {
        let geoms = (0..NUM_CLASSES).map(|c| SlabGeometry::compute(c, stripes)).collect();
        GeometryTable { geoms, stripes }
    }

    /// Geometry of `class`.
    #[inline]
    pub fn of(&self, class: ClassId) -> &SlabGeometry {
        &self.geoms[class]
    }

    /// The stripe count the table was built for.
    pub fn stripes(&self) -> usize {
        self.stripes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::size_class::CLASS_SIZES;

    #[test]
    fn every_class_converges_and_fits() {
        for stripes in [1, 2, 6, 8, 32] {
            for c in 0..NUM_CLASSES {
                let g = SlabGeometry::compute(c, stripes);
                assert!(g.nblocks >= 1, "class {c} stripes {stripes}: no blocks");
                assert!(g.data_offset.is_multiple_of(CACHE_LINE));
                assert!(
                    g.data_offset + g.nblocks * g.block_size <= SLAB_SIZE,
                    "class {c}: overflows slab"
                );
                // Header (fixed + bitmap) must not overlap data.
                assert!(g.bitmap_off + g.bitmap.bytes() <= g.data_offset);
                assert!(g.bitmap.nbits() >= g.nblocks);
            }
        }
    }

    #[test]
    fn small_classes_have_many_blocks() {
        let g = SlabGeometry::compute(0, 6); // 8 B class
        assert!(g.nblocks > 7000, "8 B class should hold ~8k blocks, got {}", g.nblocks);
        let g64 = GeometryTable::new(6);
        let c64 = crate::size_class::size_to_class(64).unwrap();
        assert!(g64.of(c64).nblocks > 900);
    }

    #[test]
    fn header_overhead_is_bounded() {
        // Even for the 8 B class with many stripes, the header must stay a
        // small fraction of the slab.
        for stripes in [1, 6, 32] {
            for (c, &size) in CLASS_SIZES.iter().enumerate() {
                let g = SlabGeometry::compute(c, stripes);
                assert!(
                    g.data_offset <= SLAB_SIZE / 4,
                    "class {c} ({size} B) stripes {stripes}: header {} too big",
                    g.data_offset
                );
            }
        }
    }

    #[test]
    fn block_offsets_disjoint_from_header() {
        let g = SlabGeometry::compute(3, 6);
        assert!(g.block_off(g.data_offset, 0) >= g.data_offset);
        let last = g.block_off(g.data_offset, g.nblocks - 1);
        assert!(last + g.block_size <= SLAB_SIZE);
    }

    #[test]
    fn nblocks_at_shrinks_with_later_data() {
        let g = SlabGeometry::compute(5, 6);
        let full = g.nblocks_at(g.data_offset);
        assert_eq!(full, g.nblocks);
        let fewer = g.nblocks_at(g.data_offset + 1024);
        assert!(fewer < full);
    }
}
