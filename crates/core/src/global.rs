//! `GlobalAlloc` front end and C-ABI `malloc` shim over [`NvAllocator`].
//!
//! NVAlloc's native API is *slot-based*: `malloc_to(size, dest)` installs a
//! block offset at a persistent 8-byte slot, and `free_from(dest)` frees
//! whatever that slot names. Real programs, however, speak `malloc`/`free`
//! with raw pointers and no slots. This module bridges the two worlds:
//!
//! * [`GlobalNv`] implements [`std::alloc::GlobalAlloc`] so a binary can put
//!   `#[global_allocator] static A: GlobalNv = GlobalNv;` at its top and
//!   have *every* Rust heap allocation served from the persistent pool.
//! * [`nv_malloc`] / [`nv_free`] / [`nv_realloc`] / [`nv_calloc`] /
//!   [`nv_usable_size`] are C-ABI entry points with C `malloc` semantics.
//!
//! # The slot directory
//!
//! The pointer↔slot translation is itself crash-consistent, built from the
//! allocator's own primitives. Root slot 0 names a 64-byte **meta block**:
//!
//! ```text
//! word 0  GLOBAL_MAGIC          word 2  first slot-page link (a dest)
//! word 1  LAYOUT_VERSION        word 3  staging slot (page-grow protocol)
//! ```
//!
//! Slot pages are 4 KiB blocks chained through their word 0 (each link word
//! is the `malloc_to` dest of the next page). The rest of a page is 255
//! slot *pairs*: word A is the dest the allocator installs a block offset
//! into (the allocation's commit point), word B publishes the *user*
//! offset inside that block (≠ A's value when alignment padding was
//! inserted). The publication protocol makes every crash prefix
//! recoverable:
//!
//! * slot free        ⇔ A == 0 (B is ignored, stale)
//! * owned, unpublished ⇔ A ≠ 0, B == 0 — a crash hit between the commit
//!   and the publication; recovery *frees* the block (the application never
//!   saw the pointer), so nothing leaks and nothing is double-owned.
//! * live             ⇔ A ≠ 0, B ≠ 0 — recovery re-exposes the object via
//!   [`recovered_objects`].
//!
//! Slot reuse clears B (persistently) *before* re-installing A, so a stale
//! publication can never pair with a new block. Page growth allocates the
//! new page into the staging slot, zeroes it, and only then installs the
//! chain link — a crash leaves either a reachable page or a staged orphan
//! that recovery frees.
//!
//! # Volatility boundary
//!
//! The emulated pool lives in DRAM, so `GlobalAlloc` hands out real host
//! pointers (`pool.base_ptr() + offset`). Payload stores through those
//! pointers are **volatile-only**: they bypass the latency model, the
//! persist-ordering sanitizer, and crash-image tracking. Code that needs
//! its payload to survive a simulated crash must write it through the pool
//! API (as the crash tests do); the *directory* updates and the
//! `nv_realloc` copy path always do.
//!
//! # Re-entrancy and lifecycle
//!
//! The front end's own bookkeeping (hash map, free-slot vector) allocates
//! through the Rust global allocator — which may be `GlobalNv` itself. A
//! thread-local guard detects re-entry and routes those internal (and any
//! pre-[`init`]) allocations to [`std::alloc::System`]; `dealloc` routes by
//! pointer range, so the two heaps never cross. [`shutdown`] retires the
//! active state onto a leaked list instead of dropping it: stale pointers
//! into a retired pool stay dereferenceable, and freeing them is a defined
//! no-op.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::{Cell, RefCell};
use std::collections::HashMap;
use std::ptr::null_mut;
use std::sync::atomic::{AtomicPtr, AtomicU64, Ordering};
use std::sync::Arc;

use nvalloc_pmem::{FlushKind, LatencyMode, PmError, PmOffset, PmResult, PmemConfig, PmemPool};
use parking_lot::Mutex;

use crate::api::{AllocThread, PmAllocator};
use crate::front::POOL_MAGIC;
use crate::large::{HUGE_MIN, PAGE};
use crate::{NvAllocator, NvConfig};

/// Magic tag in word 0 of the global directory's meta block ("NVGLOBL1").
pub const GLOBAL_MAGIC: u64 = 0x4E56_474C_4F42_4C31;
/// Version of the slot-directory layout described in the module docs.
/// Attaching to a pool recorded with any other version is refused.
pub const LAYOUT_VERSION: u64 = 1;

/// Meta block size (one size-64 class block).
const META_BYTES: usize = 64;
/// Slot-page size: one 4 KiB block.
const PAGE_BYTES: usize = 4096;
/// Slot pairs per page: word 0 link + word 1 reserved + 255 × (A, B).
const SLOTS_PER_PAGE: usize = 255;

// ---------------------------------------------------------------------------
// Global handshake
// ---------------------------------------------------------------------------

/// The one process-wide front-end state (leaked once initialized).
static SHARED: AtomicPtr<GlobalState> = AtomicPtr::new(null_mut());
/// Sentinel parked in [`SHARED`] while one thread runs [`init`]; any
/// concurrent initializer loses the CAS and gets a typed error instead of
/// a second heap.
const INITIALIZING: *mut GlobalState = usize::MAX as *mut GlobalState;
/// Head of the retired-state list (states detached by [`shutdown`], kept
/// alive so stale pointers into their pools remain valid).
static RETIRED_HEAD: AtomicPtr<GlobalState> = AtomicPtr::new(null_mut());
/// Monotonic epoch: distinguishes successive [`init`] generations so
/// cached per-thread allocator handles can detect staleness.
static EPOCHS: AtomicU64 = AtomicU64::new(1);

thread_local! {
    /// Re-entrancy guard: true while this thread is inside front-end code.
    static GUARD: Cell<bool> = const { Cell::new(false) };
    /// Cached per-thread allocator handle (epoch-tagged).
    static TCTX: RefCell<Option<ThreadCtx>> = const { RefCell::new(None) };
}

struct ThreadCtx {
    epoch: u64,
    t: Box<dyn AllocThread>,
}

/// A live object tracked by the directory.
#[derive(Debug, Clone, Copy)]
struct Obj {
    /// Dest slot (word A) holding the block offset.
    slot: PmOffset,
    /// Block base offset (what the allocator granted).
    block: PmOffset,
    /// Bytes usable at the user offset: granted size minus alignment
    /// padding. Bounds realloc's copy and in-place growth.
    usable: usize,
}

struct Inner {
    /// Offsets of every slot page, in chain order.
    pages: Vec<PmOffset>,
    /// Dest offsets (word A) of currently free slot pairs.
    free_slots: Vec<PmOffset>,
    /// Live objects keyed by *user* offset (the published word B value).
    objects: HashMap<u64, Obj>,
}

struct GlobalState {
    alloc: NvAllocator,
    pool: Arc<PmemPool>,
    /// Host address of pool offset 0 (`pool.base_ptr() as usize`).
    base: usize,
    /// Pool size in bytes; `[base, base + size)` is this heap's range.
    size: usize,
    /// Meta block offset (word layout in the module docs).
    meta: PmOffset,
    epoch: u64,
    inner: Mutex<Inner>,
    /// Objects re-exposed by the attach scan, frozen at init time.
    recovered: Vec<(u64, usize)>,
    /// Next state in the retired list (null while active).
    next_retired: AtomicPtr<GlobalState>,
}

/// What [`init`] found and did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InitReport {
    /// True when the pool was freshly formatted; false when an existing
    /// image was recovered and attached.
    pub created: bool,
    /// Whether the recovered image was closed by an orderly
    /// [`shutdown`] (always true for a fresh pool). `false` means deep
    /// recovery ran (WAL replay / GC).
    pub normal_shutdown: bool,
    /// Published objects carried over from the previous incarnation
    /// (see [`recovered_objects`]).
    pub recovered: usize,
    /// Owned-but-unpublished blocks the attach scan freed: allocations
    /// whose crash hit between commit and publication.
    pub reclaimed: usize,
}

/// Outcome of a single front-end operation that the C shim must surface
/// as a hard failure rather than a return code.
fn die(what: &str, detail: &dyn std::fmt::Display) -> ! {
    // Abort, not panic: the C ABI has no unwinding, and a corrupt heap
    // must not keep serving. Mirrors glibc's abort-on-heap-corruption.
    eprintln!("nvalloc-global: fatal: {what}: {detail}");
    std::process::abort();
}

fn state() -> Option<&'static GlobalState> {
    let p = SHARED.load(Ordering::Acquire);
    if p.is_null() || p == INITIALIZING {
        return None;
    }
    // SAFETY: any non-sentinel pointer stored in SHARED came from
    // Box::leak in init() and is never freed (shutdown moves it to the
    // retired list, still leaked), so it is valid for 'static.
    Some(unsafe { &*p })
}

/// Run `f` with the re-entrancy guard held. Returns `None` when this
/// thread is already inside the front end (internal allocation) or its
/// TLS is being torn down — callers fall back to `System` / a temporary
/// handle.
fn with_guard<R>(f: impl FnOnce() -> R) -> Option<R> {
    GUARD
        .try_with(|g| {
            if g.get() {
                return None;
            }
            g.set(true);
            let r = f();
            g.set(false);
            Some(r)
        })
        .unwrap_or(None)
}

/// Run `f` on this thread's cached allocator handle, creating or
/// refreshing it if absent or from a previous epoch. Falls back to a
/// temporary handle during TLS teardown.
fn with_thread<R>(st: &GlobalState, f: impl FnOnce(&mut dyn AllocThread) -> R) -> R {
    let mut f = Some(f);
    let made = TCTX.try_with(|c| {
        let mut slot = c.borrow_mut();
        let stale = !matches!(slot.as_ref(), Some(ctx) if ctx.epoch == st.epoch);
        if stale {
            // Dropping a stale ctx flushes its tcache into the retired
            // pool image, which is inert; harmless by design.
            *slot = Some(ThreadCtx { epoch: st.epoch, t: st.alloc.thread() });
        }
        (f.take().expect("with_thread closure consumed twice"))(
            slot.as_mut().expect("ctx just ensured").t.as_mut(),
        )
    });
    match made {
        Ok(r) => r,
        Err(_) => {
            let mut t = st.alloc.thread();
            (f.take().expect("with_thread closure consumed twice"))(t.as_mut())
        }
    }
}

// ---------------------------------------------------------------------------
// init / attach / shutdown
// ---------------------------------------------------------------------------

/// Install `pool` as the process-wide heap behind [`GlobalNv`] and the C
/// shim. Formats a fresh pool (no [`POOL_MAGIC`]) or recovers an existing
/// image — deep (WAL replay / GC) after a crash, shallow after an orderly
/// [`shutdown`] — then validates the slot directory's magic and layout
/// version before exposing it.
///
/// # Errors
/// * [`PmError::InvalidRequest`] if another thread is initializing or the
///   front end is already initialized.
/// * [`PmError::Corrupt`] for a directory magic/version mismatch (the
///   sentinel is released, so a later `init` with the right pool works).
/// * Any allocator create/recover error, likewise releasing the sentinel.
pub fn init(pool: Arc<PmemPool>, cfg: NvConfig) -> PmResult<InitReport> {
    init_with_hook(pool, cfg, || ())
}

/// [`init`] with a hook run *while the `INITIALIZING` sentinel is parked*
/// in the shared slot — the schedule point the double-init race test
/// forces a concurrent `init` through. Not part of the public contract.
#[doc(hidden)]
pub fn init_with_hook(
    pool: Arc<PmemPool>,
    cfg: NvConfig,
    hook: impl FnOnce(),
) -> PmResult<InitReport> {
    match SHARED.compare_exchange(null_mut(), INITIALIZING, Ordering::AcqRel, Ordering::Acquire) {
        Ok(_) => {}
        Err(cur) if cur == INITIALIZING => {
            return Err(PmError::InvalidRequest(
                "global allocator is being initialized by another thread",
            ));
        }
        Err(_) => {
            return Err(PmError::InvalidRequest("global allocator already initialized"));
        }
    }
    hook();
    let r = with_guard(|| attach(pool, cfg)).expect("init called from inside the front end");
    match r {
        Ok((st, report)) => {
            let leaked: &'static mut GlobalState = Box::leak(Box::new(st));
            SHARED.store(leaked, Ordering::Release);
            Ok(report)
        }
        Err(e) => {
            // Release the sentinel so a corrected init can run later.
            SHARED.store(null_mut(), Ordering::Release);
            Err(e)
        }
    }
}

/// Convenience for examples and binaries: build a fresh latency-off pool
/// of `bytes` and [`init`] on it with the LOG variant.
pub fn init_default(bytes: usize) -> PmResult<InitReport> {
    let pool = PmemPool::new(PmemConfig::default().pool_size(bytes).latency_mode(LatencyMode::Off));
    init(pool, NvConfig::log())
}

fn attach(pool: Arc<PmemPool>, cfg: NvConfig) -> PmResult<(GlobalState, InitReport)> {
    let fresh = pool.read_u64(0) != POOL_MAGIC;
    let (alloc, report) = if fresh {
        let a = NvAllocator::create(Arc::clone(&pool), cfg)?;
        (a, None)
    } else {
        let (a, r) = NvAllocator::recover(Arc::clone(&pool), cfg)?;
        (a, Some(r))
    };
    let root0 = alloc.root_offset(0);
    let mut inner = Inner { pages: Vec::new(), free_slots: Vec::new(), objects: HashMap::new() };
    let mut recovered = Vec::new();
    let mut reclaimed = 0usize;
    let mut t = alloc.thread();

    let meta = if fresh || pool.read_u64(root0) == 0 {
        // Fresh pool — or a crash hit init before the directory's meta
        // block committed at root 0. Either way nothing was ever
        // reachable through the directory, so (re)format it.
        format_directory(&pool, t.as_mut(), root0, &mut inner)?
    } else if pool.read_u64(pool.read_u64(root0)) == 0 {
        // Meta block committed but the magic — the directory's format
        // commit point, written last — did not. Discard and re-format.
        t.free_from(root0)?;
        format_directory(&pool, t.as_mut(), root0, &mut inner)?
    } else {
        let meta = pool.read_u64(root0);
        if pool.read_u64(meta) != GLOBAL_MAGIC {
            return Err(PmError::Corrupt("global directory magic mismatch"));
        }
        if pool.read_u64(meta + 8) != LAYOUT_VERSION {
            return Err(PmError::Corrupt("global directory layout version unsupported"));
        }
        // Walk the page chain and classify every slot pair.
        let mut link = meta + 16;
        loop {
            let page = pool.read_u64(link);
            if page == 0 {
                break;
            }
            inner.pages.push(page);
            for i in 0..SLOTS_PER_PAGE {
                let a_off = page + 16 + (16 * i) as u64;
                let block = pool.read_u64(a_off);
                if block == 0 {
                    inner.free_slots.push(a_off);
                    continue;
                }
                let granted = alloc.usable_size(block).ok_or(PmError::Corrupt(
                    "slot directory names a block the allocator does not own",
                ))?;
                let user = pool.read_u64(a_off + 8);
                if user == 0 {
                    // Crash between commit and publication: the pointer
                    // never escaped, reclaim the block.
                    t.free_from(a_off)?;
                    inner.free_slots.push(a_off);
                    reclaimed += 1;
                } else if user < block || user >= block + granted as u64 {
                    return Err(PmError::Corrupt("published offset outside its block"));
                } else {
                    let usable = (block as usize + granted) - user as usize;
                    inner.objects.insert(user, Obj { slot: a_off, block, usable });
                    recovered.push((user, usable));
                }
            }
            link = page;
        }
        // Resolve the page-grow staging slot: a staged page already in the
        // chain just needs the stage cleared; an orphan is freed.
        let staged = pool.read_u64(meta + 24);
        if staged != 0 {
            if inner.pages.contains(&staged) {
                pool.persist_u64(t.pm_mut(), meta + 24, 0, FlushKind::Meta);
            } else {
                t.free_from(meta + 24)?;
                reclaimed += 1;
            }
        }
        meta
    };
    drop(t);

    let created = report.is_none();
    let normal_shutdown = report.as_ref().is_none_or(|r| r.normal_shutdown);
    let st = GlobalState {
        base: pool.base_ptr() as usize,
        size: pool.size(),
        meta,
        alloc,
        pool,
        epoch: EPOCHS.fetch_add(1, Ordering::Relaxed),
        inner: Mutex::new(inner),
        recovered,
        next_retired: AtomicPtr::new(null_mut()),
    };
    let report = InitReport { created, normal_shutdown, recovered: st.recovered.len(), reclaimed };
    Ok((st, report))
}

/// Format the slot directory on an otherwise-ready heap: commit the meta
/// block at root 0, state every word, publish the magic last (the format's
/// commit point), then grow the first slot page. Any crash prefix leaves a
/// state [`attach`] maps back to "no directory yet".
fn format_directory(
    pool: &PmemPool,
    t: &mut dyn AllocThread,
    root0: PmOffset,
    inner: &mut Inner,
) -> PmResult<PmOffset> {
    let meta = t.malloc_to(META_BYTES, root0)?;
    // The block may be recycled in principle; state every word before
    // the magic commit so the attach scan never reads garbage.
    pool.persist_u64(t.pm_mut(), meta + 8, LAYOUT_VERSION, FlushKind::Meta);
    pool.persist_u64(t.pm_mut(), meta + 16, 0, FlushKind::Meta);
    pool.persist_u64(t.pm_mut(), meta + 24, 0, FlushKind::Meta);
    pool.persist_u64(t.pm_mut(), meta, GLOBAL_MAGIC, FlushKind::Meta);
    grow(pool, t, meta + 16, meta + 24, inner)?;
    Ok(meta)
}

/// Grow the directory by one slot page. `link` is the chain word the new
/// page will hang off (zero until now); `stage` is the meta staging slot.
/// Caller holds the directory lock.
fn grow(
    pool: &PmemPool,
    t: &mut dyn AllocThread,
    link: PmOffset,
    stage: PmOffset,
    inner: &mut Inner,
) -> PmResult<()> {
    let page = t.malloc_to(PAGE_BYTES, stage)?;
    // Zero the page before it becomes reachable: a recycled block could
    // otherwise replay garbage as live slots after a crash.
    pool.fill_bytes(page, PAGE_BYTES, 0);
    pool.flush(t.pm_mut(), page, PAGE_BYTES, FlushKind::Meta);
    pool.fence(t.pm_mut());
    pool.persist_u64(t.pm_mut(), link, page, FlushKind::Meta);
    pool.persist_u64(t.pm_mut(), stage, 0, FlushKind::Meta);
    inner.pages.push(page);
    for i in 0..SLOTS_PER_PAGE {
        inner.free_slots.push(page + 16 + (16 * i) as u64);
    }
    Ok(())
}

/// Detach and retire the active front end: quiesce deferred work, flush
/// this thread's cached handle, and mark the heap cleanly closed so the
/// next [`init`] takes the shallow recovery path. The state is moved to a
/// leaked retired list — pointers into the old pool stay dereferenceable
/// and freeing them becomes a no-op.
///
/// Call only after application threads have stopped allocating; handles
/// cached by still-live threads are flushed lazily on their next use.
///
/// # Errors
/// [`PmError::InvalidRequest`] when the front end is not initialized.
pub fn shutdown() -> PmResult<()> {
    let p = SHARED.swap(null_mut(), Ordering::AcqRel);
    if p.is_null() || p == INITIALIZING {
        if p == INITIALIZING {
            SHARED.store(INITIALIZING, Ordering::Release);
        }
        return Err(PmError::InvalidRequest("global allocator not initialized"));
    }
    // SAFETY: p came from Box::leak in init() and is never freed.
    let st: &'static GlobalState = unsafe { &*p };
    with_guard(|| {
        // Drop this thread's cached handle so its tcache flushes back
        // before the clean-shutdown mark.
        let _ = TCTX.try_with(|c| c.borrow_mut().take());
        st.alloc.quiesce();
        st.alloc.exit();
    });
    // Push onto the retired list (lock-free Treiber stack).
    let mut head = RETIRED_HEAD.load(Ordering::Acquire);
    loop {
        st.next_retired.store(head, Ordering::Relaxed);
        match RETIRED_HEAD.compare_exchange(head, p, Ordering::AcqRel, Ordering::Acquire) {
            Ok(_) => break,
            Err(h) => head = h,
        }
    }
    Ok(())
}

/// Tear the front end down *completely* — active state and the whole
/// retired list are dropped, releasing their pools. Test support: the
/// production path is [`shutdown`], which deliberately leaks so stale
/// pointers stay defined. After this, nothing may touch any pointer a
/// previous incarnation handed out.
///
/// # Safety
/// The caller must guarantee no other thread is inside the front end and
/// that no pointer served by any prior incarnation (active or retired)
/// will ever be dereferenced, freed, or realloc'd again.
#[doc(hidden)]
// SAFETY: contract in the `# Safety` section above (exclusive access, no
// pointer from any prior incarnation is ever used again).
pub unsafe fn reset_unchecked() {
    let p = SHARED.swap(null_mut(), Ordering::AcqRel);
    if !p.is_null() && p != INITIALIZING {
        // SAFETY: non-sentinel SHARED pointers are leaked Boxes from
        // init(); the caller promises exclusive access.
        drop(unsafe { Box::from_raw(p) });
    }
    let mut r = RETIRED_HEAD.swap(null_mut(), Ordering::AcqRel);
    while !r.is_null() {
        // SAFETY: retired nodes are leaked Boxes; detaching the whole
        // list above made this traversal exclusive.
        let st = unsafe { Box::from_raw(r) };
        r = st.next_retired.load(Ordering::Acquire);
        drop(st);
    }
}

/// True when [`init`] has completed and the front end is serving.
pub fn is_initialized() -> bool {
    state().is_some()
}

/// Run `f` against the active allocator (metrics, audits, telemetry).
/// `None` when uninitialized.
pub fn with_allocator<R>(f: impl FnOnce(&NvAllocator) -> R) -> Option<R> {
    state().map(|st| f(&st.alloc))
}

/// Objects the attach scan carried over from the previous incarnation of
/// the heap, as `(pointer, usable_bytes)` pairs valid in this process.
/// They are ordinary live objects: read them, `realloc` them, free them
/// with [`nv_free`]. Empty when the pool was freshly created.
pub fn recovered_objects() -> Vec<(*mut u8, usize)> {
    match state() {
        None => Vec::new(),
        Some(st) => st
            .recovered
            .iter()
            .map(|&(off, usable)| ((st.base + off as usize) as *mut u8, usable))
            .collect(),
    }
}

// ---------------------------------------------------------------------------
// Allocation paths
// ---------------------------------------------------------------------------

/// How a request maps onto the allocator.
fn plan(size: usize, align: usize) -> (usize, usize) {
    // Returns (request_bytes, align_for_malloc_aligned_to). align == 0 in
    // the second slot means "plain malloc_to + padding".
    let size = size.max(1);
    if align <= 8 {
        (size, 0)
    } else if align <= PAGE {
        // Pad: blocks are 8-aligned, and any request this large that goes
        // to the extent path is page-aligned anyway.
        (size + align, 0)
    } else if size.next_multiple_of(PAGE) > HUGE_MIN {
        // Huge extents are page-aligned only; fall back to padding.
        (size + align, 0)
    } else {
        (size, align)
    }
}

/// Allocate without publishing: installs the block at a free slot's word A
/// and returns `(slot, block, user_off, usable)`. Word B stays zero — the
/// caller publishes after it finishes preparing the payload (realloc's
/// copy happens in that window).
fn alloc_unpublished(
    st: &GlobalState,
    size: usize,
    align: usize,
) -> PmResult<(PmOffset, PmOffset, u64, usize)> {
    let (request, aligned) = plan(size, align);
    // Alignment is a *host-address* property: the pool base is only
    // word-aligned, so an aligned pool offset lands at base % align into
    // an alignment stride. The aligned-extent route compensates by
    // requesting exactly the base's misalignment as extra bytes; the
    // padded route already over-requests a full `align`.
    let request =
        if aligned == 0 { request } else { request + (aligned - st.base % aligned) % aligned };
    let slot = {
        let mut inner = st.inner.lock();
        match inner.free_slots.pop() {
            Some(s) => s,
            None => {
                // Hang the new page off the last page's link word — or off
                // the meta link when a crash left the chain empty.
                let link = inner.pages.last().map_or(st.meta + 16, |p| *p);
                with_thread(st, |t| grow(&st.pool, t, link, st.meta + 24, &mut inner))?;
                inner.free_slots.pop().expect("grow added slots")
            }
        }
    };
    let r = with_thread(st, |t| -> PmResult<(PmOffset, usize)> {
        // Clear any stale publication before the new commit can land.
        st.pool.persist_u64(t.pm_mut(), slot + 8, 0, FlushKind::Meta);
        let block = if aligned == 0 {
            t.malloc_to(request, slot)?
        } else {
            t.malloc_aligned_to(request, aligned, slot)?
        };
        Ok((block, 0))
    });
    let block = match r {
        Ok((b, _)) => b,
        Err(e) => {
            st.inner.lock().free_slots.push(slot);
            return Err(e);
        }
    };
    let granted = st
        .alloc
        .usable_size(block)
        .unwrap_or_else(|| die("allocator granted an untracked block", &block));
    let user = if align <= 8 {
        block // word-aligned base keeps ≤ 8-byte alignments for free
    } else {
        (st.base as u64 + block).next_multiple_of(align as u64) - st.base as u64
    };
    debug_assert!(user + size.max(1) as u64 <= block + granted as u64);
    let usable = (block as usize + granted) - user as usize;
    Ok((slot, block, user, usable))
}

/// Publish word B and index the object. Completes [`alloc_unpublished`].
fn publish(st: &GlobalState, slot: PmOffset, block: PmOffset, user: u64, usable: usize) {
    with_thread(st, |t| {
        st.pool.persist_u64(t.pm_mut(), slot + 8, user, FlushKind::Meta);
    });
    st.inner.lock().objects.insert(user, Obj { slot, block, usable });
}

/// Full allocation: commit + publish. Returns the user offset.
fn try_alloc(st: &GlobalState, size: usize, align: usize) -> PmResult<(u64, usize)> {
    let (slot, block, user, usable) = alloc_unpublished(st, size, align)?;
    publish(st, slot, block, user, usable);
    Ok((user, usable))
}

/// Free the object at user offset `user`. Aborts on an offset the
/// directory does not track (wild or double free — the heap cannot tell
/// which, and either means corruption).
fn do_free(st: &GlobalState, user: u64) {
    let obj = match st.inner.lock().objects.remove(&user) {
        Some(o) => o,
        None => die("free of untracked pointer (wild or double free)", &format_args!("{user:#x}")),
    };
    let r = with_thread(st, |t| {
        let r = t.free_from(obj.slot);
        if r.is_ok() {
            st.pool.persist_u64(t.pm_mut(), obj.slot + 8, 0, FlushKind::Meta);
        }
        r
    });
    if let Err(e) = r {
        // NotAllocated / ShardViolation here means directory and allocator
        // disagree — typed corruption, surfaced as abort-with-report.
        die("free_from failed", &format_args!("block {:#x}: {e}", obj.block));
    }
    st.inner.lock().free_slots.push(obj.slot);
}

/// Copy `len` payload bytes from `src` to `dst` *persistently* (through
/// the pool API, flushed and fenced) so the realloc protocol's committed
/// image always contains the copy once the new block is published.
fn persistent_copy(st: &GlobalState, src: u64, dst: u64, len: usize) {
    if len == 0 {
        return;
    }
    let mut buf = vec![0u8; len];
    st.pool.read_bytes(src, &mut buf);
    st.pool.write_bytes(dst, &buf);
    with_thread(st, |t| {
        st.pool.charge_store(t.pm_mut(), dst, len);
        st.pool.flush(t.pm_mut(), dst, len, FlushKind::Data);
        st.pool.fence(t.pm_mut());
    });
}

/// Shared realloc core: `user` must be a tracked offset. Returns the new
/// user offset (possibly unchanged, for in-place growth/shrink).
fn do_realloc(st: &GlobalState, user: u64, new_size: usize, align: usize) -> PmResult<u64> {
    let obj = match st.inner.lock().objects.get(&user) {
        Some(o) => *o,
        None => die("realloc of untracked pointer", &format_args!("{user:#x}")),
    };
    if new_size.max(1) <= obj.usable {
        return Ok(user); // in place: shrink or slack growth
    }
    // old live → new committed (unpublished) → copy → new live → old freed
    let (slot, block, new_user, usable) = alloc_unpublished(st, new_size, align)?;
    persistent_copy(st, user, new_user, obj.usable.min(new_size));
    publish(st, slot, block, new_user, usable);
    do_free(st, user);
    Ok(new_user)
}

fn in_pool(st: &GlobalState, addr: usize) -> bool {
    addr >= st.base && addr < st.base + st.size
}

/// True when `addr` points into a retired (shut-down) pool image.
fn in_retired(addr: usize) -> bool {
    let mut p = RETIRED_HEAD.load(Ordering::Acquire);
    while !p.is_null() {
        // SAFETY: retired states are leaked Box allocations; the list is
        // append-only, so every reachable node stays valid forever.
        let st = unsafe { &*p };
        if in_pool(st, addr) {
            return true;
        }
        p = st.next_retired.load(Ordering::Acquire);
    }
    false
}

// ---------------------------------------------------------------------------
// GlobalAlloc
// ---------------------------------------------------------------------------

/// Zero-sized handle implementing [`GlobalAlloc`] over the process-wide
/// NVAlloc heap. Until [`init`] runs (and for the front end's own internal
/// bookkeeping) it transparently defers to [`System`]; `dealloc` routes by
/// pointer provenance, so mixing the phases is safe.
///
/// ```ignore
/// #[global_allocator]
/// static ALLOC: nvalloc::global::GlobalNv = nvalloc::global::GlobalNv;
/// ```
pub struct GlobalNv;

// SAFETY: alloc returns blocks satisfying the layout (plan() pads or
// requests aligned extents); dealloc/realloc accept only pointers with
// matching provenance (System back to System, retired pools no-op).
unsafe impl GlobalAlloc for GlobalNv {
    // SAFETY: callers uphold the GlobalAlloc contract (non-zero size).
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let served = with_guard(|| {
            let st = state()?;
            // Fixed-depth profiler site: skip the backtrace capture on
            // the sampled path and attribute to the shim entry point.
            match crate::prof::with_site("GlobalNv::alloc", || {
                try_alloc(st, layout.size(), layout.align())
            }) {
                Ok((user, _)) => Some((st.base + user as usize) as *mut u8),
                Err(PmError::OutOfMemory { .. }) => Some(null_mut()),
                Err(e) => die("alloc failed", &e),
            }
        });
        match served {
            Some(Some(p)) => p,
            // Uninitialized, re-entrant, or TLS teardown: System heap.
            // SAFETY: caller's layout obligations forwarded verbatim.
            _ => unsafe { System.alloc(layout) },
        }
    }

    // SAFETY: ptr/layout come from a matching alloc per the trait contract.
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        let addr = ptr as usize;
        if let Some(st) = state() {
            if in_pool(st, addr) {
                // Must never reach System; run even when the guard is
                // taken (internal code does not free pool pointers, so a
                // guarded entry here is impossible in practice).
                let done = with_guard(|| do_free(st, (addr - st.base) as u64));
                if done.is_none() {
                    do_free(st, (addr - st.base) as u64);
                }
                return;
            }
        }
        if in_retired(addr) {
            return; // stale pointer into a shut-down heap: defined no-op
        }
        // SAFETY: not ours, so it was served by System.alloc.
        unsafe { System.dealloc(ptr, layout) }
    }

    // SAFETY: contract as GlobalAlloc::realloc; new_size > 0.
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let addr = ptr as usize;
        if let Some(st) = state() {
            if in_pool(st, addr) {
                let r = with_guard(|| {
                    match crate::prof::with_site("GlobalNv::realloc", || {
                        do_realloc(st, (addr - st.base) as u64, new_size, layout.align())
                    }) {
                        Ok(user) => (st.base + user as usize) as *mut u8,
                        Err(_) => null_mut(),
                    }
                });
                return r.unwrap_or(null_mut());
            }
        }
        if in_retired(addr) || state().is_none() {
            // Retired or pre-init pointer: migrate to whichever heap
            // alloc() currently serves, then release the original.
            // SAFETY: same contract forwarding as alloc/dealloc above.
            unsafe {
                let n = self.alloc(Layout::from_size_align_unchecked(new_size, layout.align()));
                if !n.is_null() {
                    std::ptr::copy_nonoverlapping(ptr, n, layout.size().min(new_size));
                    self.dealloc(ptr, layout);
                }
                return n;
            }
        }
        // SAFETY: a System pointer with the caller's layout contract.
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

// ---------------------------------------------------------------------------
// C-ABI shim
// ---------------------------------------------------------------------------

/// C `malloc`: allocate `size` bytes, 8-byte aligned. `malloc(0)` returns
/// a unique pointer (a minimum-class block). Returns null when the heap is
/// exhausted **or the front end is not initialized** — the shim never
/// falls back to the system heap, because `nv_free` could not route the
/// result. Aborts with a report on heap corruption.
pub extern "C" fn nv_malloc(size: usize) -> *mut core::ffi::c_void {
    let r = with_guard(|| {
        let st = state()?;
        match crate::prof::with_site("nv_malloc", || try_alloc(st, size, 8)) {
            Ok((user, _)) => Some((st.base + user as usize) as *mut core::ffi::c_void),
            Err(PmError::OutOfMemory { .. }) => None,
            Err(e) => die("nv_malloc failed", &e),
        }
    });
    match r {
        Some(Some(p)) => p,
        _ => null_mut::<core::ffi::c_void>(),
    }
}

/// C `calloc`: allocate `n * size` zeroed bytes. Unlike payload stores
/// through the returned pointer, the zero fill goes through the pool API
/// (flushed + fenced), so a recovered object is guaranteed to read zero
/// wherever the application never wrote. Returns null on overflow,
/// exhaustion, or before [`init`].
pub extern "C" fn nv_calloc(n: usize, size: usize) -> *mut core::ffi::c_void {
    let Some(total) = n.checked_mul(size) else {
        return null_mut();
    };
    let r = with_guard(|| {
        let st = state()?;
        match crate::prof::with_site("nv_calloc", || try_alloc(st, total, 8)) {
            Ok((user, _)) => {
                st.pool.fill_bytes(user, total.max(1), 0);
                with_thread(st, |t| {
                    st.pool.charge_store(t.pm_mut(), user, total.max(1));
                    st.pool.flush(t.pm_mut(), user, total.max(1), FlushKind::Data);
                    st.pool.fence(t.pm_mut());
                });
                Some((st.base + user as usize) as *mut core::ffi::c_void)
            }
            Err(PmError::OutOfMemory { .. }) => None,
            Err(e) => die("nv_calloc failed", &e),
        }
    });
    match r {
        Some(Some(p)) => p,
        _ => null_mut::<core::ffi::c_void>(),
    }
}

/// C `free`. Null is a no-op; pointers into a retired heap (one that is
/// not also the current one — re-attaching the same pool makes its
/// recovered objects live again) are a defined no-op; a pointer the
/// directory does not track aborts with a report (wild or double free).
pub extern "C" fn nv_free(ptr: *mut core::ffi::c_void) {
    let addr = ptr as usize;
    if ptr.is_null() {
        return;
    }
    // The current heap takes precedence over the retired list: after a
    // shutdown + re-init on the *same* pool their ranges coincide, and
    // recovered objects must free into the live directory, not no-op.
    if let Some(st) = state() {
        if in_pool(st, addr) {
            let done = with_guard(|| do_free(st, (addr - st.base) as u64));
            if done.is_none() {
                do_free(st, (addr - st.base) as u64);
            }
            return;
        }
    }
    if in_retired(addr) {
        return;
    }
    if state().is_none() {
        die("nv_free before init", &format_args!("{addr:#x}"));
    }
    die("nv_free of pointer outside the heap", &format_args!("{addr:#x}"));
}

/// C `realloc`: `nv_realloc(null, n)` ≡ `nv_malloc(n)`;
/// `nv_realloc(p, 0)` frees `p` and returns null; growth within the
/// block's usable slack is in place; otherwise the crash protocol is
/// *old live → copy (persistent) → new live → old freed*, so a crash at
/// any prefix leaves old, both, or new — never neither.
pub extern "C" fn nv_realloc(
    ptr: *mut core::ffi::c_void,
    new_size: usize,
) -> *mut core::ffi::c_void {
    if ptr.is_null() {
        return nv_malloc(new_size);
    }
    if new_size == 0 {
        nv_free(ptr);
        return null_mut();
    }
    let addr = ptr as usize;
    // Current heap first — see nv_free for the same-pool re-init hazard.
    if let Some(st) = state() {
        if in_pool(st, addr) {
            let r = with_guard(|| {
                match crate::prof::with_site("nv_realloc", || {
                    do_realloc(st, (addr - st.base) as u64, new_size, 8)
                }) {
                    Ok(user) => (st.base + user as usize) as *mut core::ffi::c_void,
                    Err(_) => null_mut(),
                }
            });
            return r.unwrap_or(null_mut());
        }
    }
    if in_retired(addr) {
        return null_mut(); // retired heaps cannot serve; old ptr stays valid
    }
    if state().is_none() {
        die("nv_realloc before init", &format_args!("{addr:#x}"));
    }
    die("nv_realloc of pointer outside the heap", &format_args!("{addr:#x}"));
}

/// `malloc_usable_size`: granted capacity at `ptr` (≥ the requested
/// size), or 0 for null / untracked / retired pointers.
pub extern "C" fn nv_usable_size(ptr: *mut core::ffi::c_void) -> usize {
    let addr = ptr as usize;
    let Some(st) = state() else { return 0 };
    if ptr.is_null() || !in_pool(st, addr) {
        return 0;
    }
    st.inner.lock().objects.get(&((addr - st.base) as u64)).map_or(0, |o| o.usable)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_padding_and_aligned_routes() {
        assert_eq!(plan(100, 1), (100, 0));
        assert_eq!(plan(100, 8), (100, 0));
        assert_eq!(plan(0, 8), (1, 0));
        // Sub-page oversize alignment pads.
        assert_eq!(plan(100, 64), (164, 0));
        assert_eq!(plan(100, PAGE), (100 + PAGE, 0));
        // Super-page alignment gets an aligned extent...
        assert_eq!(plan(100, 2 * PAGE), (100, 2 * PAGE));
        // ...unless the extent would be huge, which pads instead.
        assert_eq!(plan(HUGE_MIN + 1, 2 * PAGE), (HUGE_MIN + 1 + 2 * PAGE, 0));
    }

    #[test]
    fn slot_page_geometry_fills_the_block() {
        assert_eq!(16 + 16 * SLOTS_PER_PAGE, PAGE_BYTES);
    }
}
