//! Thread-local caches with the interleaved sub-tcache layout (§5.1).
//!
//! A tcache holds one bin of ready-to-serve block addresses per size class.
//! In the *flat* layout (1 sub-tcache), LIFO order means consecutive
//! allocations often pick blocks whose bitmap bits share a cache line —
//! reflushing it even when the bitmap itself is interleaved. The
//! *interleaved* layout splits each bin into one sub-tcache per bit stripe
//! and serves them round-robin with a cursor, so consecutive allocations
//! touch bits in different cache lines (Fig. 6).

use nvalloc_pmem::PmOffset;

use crate::size_class::{ClassId, NUM_CLASSES};

/// One size class's cache.
#[derive(Debug)]
struct Bin {
    /// One LIFO stack per stripe (length 1 = flat layout).
    subs: Vec<Vec<PmOffset>>,
    /// Next sub-tcache to serve from.
    cursor: usize,
    /// Total cached blocks across subs.
    count: usize,
}

impl Bin {
    fn new(stripes: usize) -> Self {
        Bin { subs: (0..stripes).map(|_| Vec::new()).collect(), cursor: 0, count: 0 }
    }
}

/// A per-thread block cache.
#[derive(Debug)]
#[allow(dead_code)] // `stripes` is read by the unit tests and diagnostics
pub struct TCache {
    bins: Vec<Bin>,
    cap: usize,
    stripes: usize,
    /// Cursor rotations performed by [`TCache::pop`] in the interleaved
    /// layout (telemetry; merged into the allocator registry on thread
    /// exit).
    rotations: u64,
}

impl TCache {
    /// Create a tcache with `stripes` sub-tcaches per class (1 = flat LIFO)
    /// and `cap` max blocks per class.
    pub fn new(stripes: usize, cap: usize) -> Self {
        let stripes = stripes.max(1);
        TCache {
            bins: (0..NUM_CLASSES).map(|_| Bin::new(stripes)).collect(),
            cap: cap.max(1),
            stripes,
            rotations: 0,
        }
    }

    /// Cursor rotations performed so far (0 in the flat layout).
    pub fn rotations(&self) -> u64 {
        self.rotations
    }

    /// Number of sub-tcaches per bin.
    #[allow(dead_code)]
    pub fn stripes(&self) -> usize {
        self.stripes
    }

    /// Cached block count for a class.
    #[allow(dead_code)]
    pub fn len(&self, class: ClassId) -> usize {
        self.bins[class].count
    }

    /// True if no blocks are cached for `class`.
    #[allow(dead_code)]
    pub fn is_empty(&self, class: ClassId) -> bool {
        self.len(class) == 0
    }

    /// True if the class bin is at capacity.
    pub fn is_full(&self, class: ClassId) -> bool {
        self.bins[class].count >= self.cap
    }

    /// Pop one block, rotating the cursor across sub-tcaches so that
    /// consecutive pops come from different stripes.
    pub fn pop(&mut self, class: ClassId) -> Option<PmOffset> {
        let bin = &mut self.bins[class];
        if bin.count == 0 {
            return None;
        }
        let n = bin.subs.len();
        for probe in 0..n {
            let s = (bin.cursor + probe) % n;
            if let Some(addr) = bin.subs[s].pop() {
                bin.cursor = (s + 1) % n;
                bin.count -= 1;
                if n > 1 {
                    self.rotations += 1;
                }
                return Some(addr);
            }
        }
        unreachable!("count > 0 implies a non-empty sub-tcache");
    }

    /// Push a block whose bitmap bit lives in `stripe`. Returns `false` if
    /// the bin is full (caller must return the block to its slab instead).
    pub fn push(&mut self, class: ClassId, addr: PmOffset, stripe: usize) -> bool {
        let bin = &mut self.bins[class];
        if bin.count >= self.cap {
            return false;
        }
        let s = stripe % bin.subs.len();
        bin.subs[s].push(addr);
        bin.count += 1;
        true
    }

    /// Remove and return every cached block of `class` (tcache flush /
    /// thread exit).
    pub fn drain(&mut self, class: ClassId) -> Vec<PmOffset> {
        let bin = &mut self.bins[class];
        let mut out = Vec::with_capacity(bin.count);
        for sub in &mut bin.subs {
            out.append(sub);
        }
        bin.count = 0;
        out
    }

    /// Remove roughly half the cached blocks of `class` (overflow flush).
    #[allow(dead_code)] // alternative overflow policy, kept for experiments
    pub fn drain_half(&mut self, class: ClassId) -> Vec<PmOffset> {
        let bin = &mut self.bins[class];
        let target = bin.count / 2;
        let mut out = Vec::with_capacity(target);
        while out.len() < target {
            // Take from the currently longest sub to keep subs balanced.
            let s = (0..bin.subs.len())
                .max_by_key(|&s| bin.subs[s].len())
                .expect("bins have at least one sub");
            match bin.subs[s].pop() {
                Some(a) => out.push(a),
                None => break,
            }
        }
        bin.count -= out.len();
        out
    }

    /// Iterate over all cached blocks (diagnostics, leak checks in tests).
    #[allow(dead_code)]
    pub fn iter(&self) -> impl Iterator<Item = (ClassId, PmOffset)> + '_ {
        self.bins
            .iter()
            .enumerate()
            .flat_map(|(c, b)| b.subs.iter().flatten().map(move |a| (c, *a)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_pop_roundtrip() {
        let mut tc = TCache::new(4, 64);
        assert!(tc.is_empty(3));
        assert!(tc.push(3, 1000, 0));
        assert!(tc.push(3, 2000, 1));
        assert_eq!(tc.len(3), 2);
        let a = tc.pop(3).unwrap();
        let b = tc.pop(3).unwrap();
        assert_eq!(tc.pop(3), None);
        let mut got = vec![a, b];
        got.sort_unstable();
        assert_eq!(got, vec![1000, 2000]);
    }

    #[test]
    fn capacity_is_enforced() {
        let mut tc = TCache::new(2, 4);
        for i in 0..4 {
            assert!(tc.push(0, i * 8, i as usize));
        }
        assert!(tc.is_full(0));
        assert!(!tc.push(0, 999, 0), "push past cap must be rejected");
    }

    #[test]
    fn rotation_spreads_stripes() {
        // Push 4 blocks per stripe; pops must cycle stripes 0,1,2,3,0,1,…
        let stripes = 4;
        let mut tc = TCache::new(stripes, 64);
        for s in 0..stripes {
            for k in 0..4 {
                // Encode the stripe in the address for checking.
                assert!(tc.push(0, (s * 100 + k) as u64, s));
            }
        }
        let mut last_stripe = None;
        for _ in 0..stripes * 4 {
            let addr = tc.pop(0).unwrap();
            let stripe = (addr / 100) as usize;
            if let Some(prev) = last_stripe {
                assert_ne!(prev, stripe, "consecutive pops must differ in stripe");
            }
            last_stripe = Some(stripe);
        }
        assert_eq!(tc.rotations(), (stripes * 4) as u64);
    }

    #[test]
    fn flat_layout_is_lifo() {
        let mut tc = TCache::new(1, 64);
        for i in 0..5u64 {
            tc.push(2, i, 0);
        }
        for i in (0..5u64).rev() {
            assert_eq!(tc.pop(2), Some(i));
        }
        assert_eq!(tc.rotations(), 0, "flat layout never rotates");
    }

    #[test]
    fn drain_and_drain_half() {
        let mut tc = TCache::new(3, 64);
        for i in 0..9u64 {
            tc.push(1, i, i as usize % 3);
        }
        let half = tc.drain_half(1);
        assert_eq!(half.len(), 4);
        assert_eq!(tc.len(1), 5);
        let rest = tc.drain(1);
        assert_eq!(rest.len(), 5);
        assert!(tc.is_empty(1));
        let mut all: Vec<u64> = half.into_iter().chain(rest).collect();
        all.sort_unstable();
        assert_eq!(all, (0..9u64).collect::<Vec<_>>());
    }

    #[test]
    fn pop_skips_empty_subs() {
        let mut tc = TCache::new(4, 64);
        tc.push(0, 42, 2); // only stripe 2 populated
        assert_eq!(tc.pop(0), Some(42));
        assert_eq!(tc.pop(0), None);
    }

    #[test]
    fn iter_sees_everything() {
        let mut tc = TCache::new(2, 8);
        tc.push(0, 1, 0);
        tc.push(5, 2, 1);
        let mut got: Vec<(usize, u64)> = tc.iter().collect();
        got.sort_unstable();
        assert_eq!(got, vec![(0, 1), (5, 2)]);
    }
}
