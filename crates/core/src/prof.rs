//! Sampled heap profiler with crash-surviving allocation-site provenance.
//!
//! `prof` answers the production question "*which call sites own the bytes
//! in this pool*" — live, at shutdown, and after a crash. It has two
//! halves:
//!
//! 1. **Volatile site table.** Allocations are byte-sampled: a per-thread
//!    countdown accumulates granted bytes and every time it crosses the
//!    configured sampling period (`NvConfig::profiling(sample_bytes)`) the
//!    allocation is *sampled*. A sampled allocation captures a call-site
//!    tag — either the explicit tag installed by [`with_site`] (the
//!    fixed-depth fast path used by the `GlobalNv`/`nv_malloc` shim) or a
//!    hash of the `std::backtrace` frames — and updates a per-site table
//!    of estimated live bytes/objects, cumulative sampled allocs/frees,
//!    and the size-class mix.
//! 2. **Persistent provenance sidelog.** Each arena owns a small
//!    log-structured sidelog (two halves of [`PROF_HALF_RECORDS`] 32-byte
//!    records behind a 64-byte header), modeled on the booklog: records
//!    are appended with the same store → flush → fence discipline, a
//!    full half is compacted by rewriting the surviving live records into
//!    the other half and flipping the header's active-half word with a
//!    single `persist_u64` (crash-atomic), and recovery replays the
//!    active half sequentially. Because an ALLOC record is fenced
//!    *before* the allocation's commit point and a FREE record is fenced
//!    *after* the free's commit but *before* the block can be reused,
//!    every object that survives a crash has a persisted ALLOC record,
//!    and no FREE record ever refers to a survivor — recovery and
//!    `nvalloc_doctor --profile` can therefore re-attribute every
//!    surviving sampled object to the site that created it.
//!
//! Sampling math: with period `P`, an allocation of `s` bytes is sampled
//! with expected weight `s` (the countdown crosses `P` on average `s/P`
//! times and each crossing contributes `P` estimated bytes), so
//! `Σ crossings·P` over sampled live objects is an unbiased estimator of
//! live bytes. The countdown is deterministic — no RNG — so same-seed
//! runs on virtual-clock pools produce byte-identical dumps.

use std::cell::Cell;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::RwLock;

use nvalloc_pmem::{FlushKind, PmOffset, PmThread, PmemPool};

use crate::size_class::{size_to_class, LARGE_MIN};
use crate::telemetry::json::JsonObj;
use crate::telemetry::SCHEMA_VERSION;

/// Bytes reserved per arena for the provenance sidelog (header + 2 halves).
pub const PROF_LOG_BYTES: usize = 64 << 10;
/// Bytes of the per-arena sidelog header (active-half word + dropped count).
pub const PROF_LOG_HEADER_BYTES: usize = 64;
/// Bytes per sidelog record. 32 divides the 64-byte line, so a record
/// never straddles a cache line and can never tear in a crash image.
pub const PROF_RECORD_BYTES: usize = 32;
/// Records per sidelog half: `(64 KiB - 64 B) / (2 · 32 B)`.
pub const PROF_HALF_RECORDS: usize =
    (PROF_LOG_BYTES - PROF_LOG_HEADER_BYTES) / (2 * PROF_RECORD_BYTES);

/// Record kind tag for a sampled allocation.
pub const PROF_KIND_ALLOC: u64 = 1;
/// Record kind tag for the free of a previously sampled allocation.
pub const PROF_KIND_FREE: u64 = 2;

/// Bits of record word 3 holding the granted size; the rest hold crossings.
const SIZE_BITS: u32 = 40;
const SIZE_MASK: u64 = (1 << SIZE_BITS) - 1;
const ADDR_MASK: u64 = (1 << 56) - 1;
const MAX_CROSSINGS: u64 = (1 << (64 - SIZE_BITS)) - 1;

/// Pseudo size-class id used in the site mix for large (extent) allocations.
pub const PROF_CLASS_LARGE: usize = 255;

/// Snapshots retained in the periodic service-tick ring.
const MAX_SNAPSHOTS: usize = 64;

/// Frames hashed per backtrace site (fixed depth keeps tags stable).
const MAX_FRAMES: usize = 16;

/// On-PM layout of a sidelog header (documentation + layout-test anchor).
///
/// Word 0 is the active-half selector (0 or 1; flipping it is the
/// compaction commit point), word 1 counts records dropped because both
/// halves were full of live records.
#[repr(C)]
#[derive(Debug, Clone, Copy)]
pub struct ProfLogHeaderRaw {
    /// Active half selector: 0 or 1.
    pub active_half: u64,
    /// Records dropped due to overflow (coverage loss, not corruption).
    pub dropped: u64,
    /// Pad the header to one cache line.
    pub _pad: [u64; 6],
}

/// On-PM layout of one sidelog record (documentation + layout-test anchor).
///
/// `kind_addr` packs `kind << 56 | addr` and is written *last* in program
/// order: a record is valid iff this word is non-zero, and because the
/// record sits inside one cache line it appears in a crash image all or
/// nothing.
#[repr(C)]
#[derive(Debug, Clone, Copy)]
pub struct ProfRecordRaw {
    /// `kind << 56 | pool offset` — the commit word.
    pub kind_addr: u64,
    /// FNV-1a hash of the creating call site.
    pub site: u64,
    /// Global sequence number; totally orders replay across arena logs.
    pub seq: u64,
    /// `crossings << 40 | granted size in bytes`.
    pub weight_size: u64,
}

// ---------------------------------------------------------------------------
// Call-site capture
// ---------------------------------------------------------------------------

thread_local! {
    static SITE_TAG: Cell<Option<(u64, &'static str)>> = const { Cell::new(None) };
}

/// FNV-1a offset basis.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv1a(h: &mut u64, bytes: &[u8]) {
    for &b in bytes {
        *h ^= u64::from(b);
        *h = h.wrapping_mul(FNV_PRIME);
    }
}

/// Hash a static label into a site tag.
pub fn site_tag(label: &str) -> u64 {
    let mut h = FNV_OFFSET;
    fnv1a(&mut h, label.as_bytes());
    h
}

struct SiteGuard(Option<(u64, &'static str)>);

impl Drop for SiteGuard {
    fn drop(&mut self) {
        SITE_TAG.with(|s| s.set(self.0));
    }
}

/// Run `f` with an explicit call-site tag installed for the current
/// thread. Sampled allocations inside `f` attribute to `label` without
/// capturing a backtrace — the fixed-depth fast path used by the
/// `GlobalNv` front end and the C-ABI shim.
pub fn with_site<R>(label: &'static str, f: impl FnOnce() -> R) -> R {
    let guard = SiteGuard(SITE_TAG.with(|s| s.replace(Some((site_tag(label), label)))));
    let r = f();
    drop(guard);
    r
}

/// Strip `0x…` hex tokens so ASLR'd frame addresses never reach the hash.
fn strip_hex(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut rest = s;
    while let Some(i) = rest.find("0x") {
        out.push_str(&rest[..i]);
        rest = &rest[i + 2..];
        let end = rest.find(|c: char| !c.is_ascii_hexdigit()).unwrap_or(rest.len());
        rest = &rest[end..];
    }
    out.push_str(rest);
    out
}

/// Capture the current call site: the TLS override if installed, else a
/// fixed-depth hash of the symbolized backtrace frames.
fn capture_site() -> (u64, String) {
    if let Some((tag, label)) = SITE_TAG.with(Cell::get) {
        return (tag, label.to_string());
    }
    let bt = std::backtrace::Backtrace::force_capture();
    let text = bt.to_string();
    let mut frames: Vec<String> = Vec::new();
    for line in text.lines() {
        let t = line.trim_start();
        let Some((idx, sym)) = t.split_once(": ") else {
            continue;
        };
        if idx.is_empty() || !idx.bytes().all(|b| b.is_ascii_digit()) {
            continue;
        }
        let sym = strip_hex(sym.trim());
        if sym.is_empty() || sym.contains("nvalloc::prof") || sym.starts_with("std::backtrace") {
            continue;
        }
        frames.push(sym);
        if frames.len() >= MAX_FRAMES {
            break;
        }
    }
    if frames.is_empty() {
        return (site_tag("unknown"), "unknown".to_string());
    }
    let mut h = FNV_OFFSET;
    for f in &frames {
        fnv1a(&mut h, f.as_bytes());
        fnv1a(&mut h, b";");
    }
    frames.reverse(); // collapsed-stack convention: outermost first
    (h, frames.join(";"))
}

// ---------------------------------------------------------------------------
// Volatile state
// ---------------------------------------------------------------------------

/// Per-site statistics. `live_*`/`*_est` fields are sampled estimates
/// (crossings × period); cumulative counters count *sampled events* since
/// attach and are volatile — they reset across crash recovery.
#[derive(Debug, Clone, Default)]
pub struct SiteStats {
    /// Human-readable site label (collapsed frame stack or explicit tag).
    pub label: String,
    /// Estimated live bytes attributed to this site.
    pub live_bytes: u64,
    /// Estimated live objects (sample crossings) for this site.
    pub live_objects: u64,
    /// Cumulative estimated bytes allocated here since attach.
    pub alloc_bytes: u64,
    /// Sampled allocation events since attach.
    pub allocs: u64,
    /// Sampled free events since attach.
    pub frees: u64,
    /// Size-class mix: class id (255 = large) → sampled events.
    pub class_mix: BTreeMap<usize, u64>,
}

#[derive(Debug, Clone, Copy)]
struct LiveObj {
    site: u64,
    seq: u64,
    size: u64,
    crossings: u64,
    arena: u32,
}

#[derive(Debug, Clone, Copy, Default)]
struct LogState {
    active: usize,
    fill: usize,
    dropped: u64,
}

/// One entry in the periodic service-tick snapshot ring.
#[derive(Debug, Clone, Copy)]
pub struct ProfSnapshot {
    /// Monotonic snapshot index (total snapshots taken so far, 1-based).
    pub tick: u64,
    /// Estimated live bytes across all sites at snapshot time.
    pub live_bytes: u64,
    /// Estimated live objects across all sites at snapshot time.
    pub live_objects: u64,
    /// Number of distinct sites with live bytes.
    pub sites: u64,
}

/// One row of the retained-set report captured at `quiesce()`.
#[derive(Debug, Clone)]
pub struct RetainedSite {
    /// Site hash.
    pub site: u64,
    /// Site label.
    pub label: String,
    /// Estimated bytes still live at quiesce.
    pub live_bytes: u64,
    /// Estimated objects still live at quiesce.
    pub live_objects: u64,
}

#[derive(Debug, Default)]
struct ProfInner {
    sites: BTreeMap<u64, SiteStats>,
    live: BTreeMap<PmOffset, LiveObj>,
    logs: Vec<LogState>,
    snapshots: Vec<ProfSnapshot>,
    snapshot_total: u64,
    retained: Vec<RetainedSite>,
}

/// A raw sidelog record as scanned off persistent memory.
#[derive(Debug, Clone, Copy)]
pub struct RawProfRecord {
    /// [`PROF_KIND_ALLOC`] or [`PROF_KIND_FREE`].
    pub kind: u64,
    /// Pool offset of the object.
    pub addr: PmOffset,
    /// Site hash.
    pub site: u64,
    /// Global sequence number.
    pub seq: u64,
    /// Sample crossings (weight = crossings × period).
    pub crossings: u64,
    /// Granted size in bytes.
    pub size: u64,
    /// Arena whose sidelog held the record.
    pub arena: u32,
}

/// A sampled object reconstructed by sidelog replay.
#[derive(Debug, Clone, Copy)]
pub struct ReplayedObj {
    /// Site hash that created the object.
    pub site: u64,
    /// Sequence number of the creating ALLOC record.
    pub seq: u64,
    /// Granted size in bytes.
    pub size: u64,
    /// Sample crossings.
    pub crossings: u64,
    /// Owning arena.
    pub arena: u32,
}

/// Outcome of a recovery-time sidelog rebuild.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ProfReplayStats {
    /// Raw records scanned across all arena sidelogs.
    pub records: usize,
    /// Replayed-live records pruned because the object is dead on-heap
    /// (crash landed between an append and its matching commit).
    pub stale: usize,
}

// ---------------------------------------------------------------------------
// Prof
// ---------------------------------------------------------------------------

/// The sampled heap profiler attached to an [`crate::NvAllocator`].
///
/// Locking: the inner `RwLock` is a **leaf lock** — `Prof` never acquires
/// arena or shard locks, so callers may invoke it while holding either.
#[derive(Debug)]
pub struct Prof {
    period: u64,
    base: PmOffset,
    arenas: usize,
    seq: AtomicU64,
    samples: AtomicU64,
    appends: AtomicU64,
    free_hits: AtomicU64,
    compactions: AtomicU64,
    dropped: AtomicU64,
    inner: RwLock<ProfInner>,
}

impl Prof {
    /// Fresh profiler over a zeroed sidelog region (pool create path).
    pub(crate) fn new(period: u64, base: PmOffset, arenas: usize) -> Prof {
        Prof {
            period: period.max(1),
            base,
            arenas,
            seq: AtomicU64::new(1),
            samples: AtomicU64::new(0),
            appends: AtomicU64::new(0),
            free_hits: AtomicU64::new(0),
            compactions: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
            inner: RwLock::new(ProfInner {
                logs: vec![LogState::default(); arenas],
                ..ProfInner::default()
            }),
        }
    }

    /// The configured sampling period in bytes.
    pub fn sample_period(&self) -> u64 {
        self.period
    }

    fn log_base(&self, arena: usize) -> PmOffset {
        self.base + (arena * PROF_LOG_BYTES) as u64
    }

    fn half_base(&self, arena: usize, half: usize) -> PmOffset {
        self.log_base(arena)
            + PROF_LOG_HEADER_BYTES as u64
            + (half * PROF_HALF_RECORDS * PROF_RECORD_BYTES) as u64
    }

    /// Advance the per-thread byte countdown by `size` granted bytes and
    /// return how many times it crossed the sampling period (0 = not
    /// sampled). Deterministic: no RNG, so same-seed runs sample the same
    /// allocations.
    #[inline]
    pub(crate) fn crossings(&self, acc: &mut u64, size: usize) -> u64 {
        *acc += size as u64;
        if *acc < self.period {
            return 0;
        }
        let c = *acc / self.period;
        *acc %= self.period;
        c.min(MAX_CROSSINGS)
    }

    /// Record a sampled allocation. Must be called *before* the
    /// allocation's persistent commit point (dest install): if the commit
    /// never lands, the record is stale and recovery prunes it; if it
    /// lands, the survivor is guaranteed an attributing record.
    pub(crate) fn record_alloc(
        &self,
        pool: &PmemPool,
        t: &mut PmThread,
        arena: u32,
        addr: PmOffset,
        size: usize,
        crossings: u64,
    ) {
        let (site, label) = capture_site();
        let weight = crossings.saturating_mul(self.period);
        self.samples.fetch_add(1, Ordering::Relaxed);
        let mut inner = self.inner.write().unwrap();
        let e = inner.sites.entry(site).or_default();
        if e.label.is_empty() {
            e.label = label;
        }
        e.live_bytes += weight;
        e.live_objects += crossings;
        e.alloc_bytes += weight;
        e.allocs += 1;
        let class = if size < LARGE_MIN {
            size_to_class(size).unwrap_or(PROF_CLASS_LARGE)
        } else {
            PROF_CLASS_LARGE
        };
        *e.class_mix.entry(class).or_insert(0) += 1;
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        let prev = inner
            .live
            .insert(addr, LiveObj { site, seq, size: size as u64 & SIZE_MASK, crossings, arena });
        debug_assert!(prev.is_none(), "sampled address allocated twice: {addr:#x}");
        self.append_locked(
            &mut inner,
            pool,
            t,
            arena as usize,
            PROF_KIND_ALLOC,
            addr,
            site,
            seq,
            crossings,
            size as u64,
        );
    }

    /// Record the free of an address if (and only if) it was sampled.
    /// Must be called *after* the free's persistent commit (bitmap
    /// clear, slot reset) and *before* the block becomes reusable, so a
    /// later ALLOC record for the same address always replays after
    /// this FREE.
    pub(crate) fn record_free(&self, pool: &PmemPool, t: &mut PmThread, addr: PmOffset) {
        {
            let inner = self.inner.read().unwrap();
            if !inner.live.contains_key(&addr) {
                return;
            }
        }
        let mut inner = self.inner.write().unwrap();
        let Some(obj) = inner.live.remove(&addr) else {
            return;
        };
        self.free_hits.fetch_add(1, Ordering::Relaxed);
        let weight = obj.crossings.saturating_mul(self.period);
        if let Some(s) = inner.sites.get_mut(&obj.site) {
            s.live_bytes = s.live_bytes.saturating_sub(weight);
            s.live_objects = s.live_objects.saturating_sub(obj.crossings);
            s.frees += 1;
        }
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        self.append_locked(
            &mut inner,
            pool,
            t,
            obj.arena as usize,
            PROF_KIND_FREE,
            addr,
            obj.site,
            seq,
            obj.crossings,
            obj.size,
        );
    }

    /// Append one record to `arena`'s sidelog, compacting first if the
    /// active half is full. Follows the booklog discipline: data words
    /// first, commit word last (same cache line), then charge + flush +
    /// fence before the caller proceeds to its own commit point.
    #[allow(clippy::too_many_arguments)]
    fn append_locked(
        &self,
        inner: &mut ProfInner,
        pool: &PmemPool,
        t: &mut PmThread,
        arena: usize,
        kind: u64,
        addr: PmOffset,
        site: u64,
        seq: u64,
        crossings: u64,
        size: u64,
    ) {
        if inner.logs[arena].fill == PROF_HALF_RECORDS {
            self.compact_locked(inner, pool, t, arena);
        }
        let st = &mut inner.logs[arena];
        if st.fill == PROF_HALF_RECORDS {
            // Both halves full of live records: drop (coverage loss only).
            st.dropped += 1;
            let dropped = st.dropped;
            self.dropped.fetch_add(1, Ordering::Relaxed);
            pool.persist_u64(t, self.log_base(arena) + 8, dropped, FlushKind::BookLog);
            return;
        }
        let off = self.half_base(arena, st.active) + (st.fill * PROF_RECORD_BYTES) as u64;
        pool.write_u64(off + 8, site);
        pool.write_u64(off + 16, seq);
        pool.write_u64(off + 24, (crossings << SIZE_BITS) | (size & SIZE_MASK));
        pool.write_u64(off, (kind << 56) | (addr & ADDR_MASK));
        pool.charge_store(t, off, PROF_RECORD_BYTES);
        pool.flush(t, off, PROF_RECORD_BYTES, FlushKind::BookLog);
        pool.fence(t);
        st.fill += 1;
        self.appends.fetch_add(1, Ordering::Relaxed);
    }

    /// Rewrite `arena`'s surviving live records into the inactive half and
    /// flip the header's active-half word. The flip is a single
    /// `persist_u64`, so a crash at any prefix leaves one self-consistent
    /// half: before the flip the old half replays to the same live set.
    fn compact_locked(
        &self,
        inner: &mut ProfInner,
        pool: &PmemPool,
        t: &mut PmThread,
        arena: usize,
    ) {
        let to = 1 - inner.logs[arena].active;
        let dst = self.half_base(arena, to);
        let half_bytes = PROF_HALF_RECORDS * PROF_RECORD_BYTES;
        let mut survivors: Vec<(PmOffset, LiveObj)> = inner
            .live
            .iter()
            .filter(|(_, o)| o.arena as usize == arena)
            .map(|(a, o)| (*a, *o))
            .collect();
        survivors.sort_by_key(|(_, o)| o.seq);
        // The arena can track more live sampled objects than one half
        // holds once earlier appends overflowed (each overflow was counted
        // in `dropped` as it happened). Cap the rewrite at capacity so it
        // can never run past the half; the excess stays coverage loss and
        // is already accounted for, so `dropped` is not bumped again here.
        survivors.truncate(PROF_HALF_RECORDS);
        pool.fill_bytes(dst, half_bytes, 0);
        for (i, (addr, o)) in survivors.iter().enumerate() {
            let off = dst + (i * PROF_RECORD_BYTES) as u64;
            pool.write_u64(off + 8, o.site);
            pool.write_u64(off + 16, o.seq);
            pool.write_u64(off + 24, (o.crossings << SIZE_BITS) | (o.size & SIZE_MASK));
            pool.write_u64(off, (PROF_KIND_ALLOC << 56) | (addr & ADDR_MASK));
        }
        pool.charge_store(t, dst, half_bytes);
        pool.flush(t, dst, half_bytes, FlushKind::BookLog);
        pool.fence(t);
        pool.persist_u64(t, self.log_base(arena), to as u64, FlushKind::BookLog);
        let st = &mut inner.logs[arena];
        st.active = to;
        st.fill = survivors.len();
        self.compactions.fetch_add(1, Ordering::Relaxed);
    }

    // -----------------------------------------------------------------------
    // Recovery / offline replay
    // -----------------------------------------------------------------------

    /// Scan every arena sidelog's active half off persistent memory.
    /// Returns the raw records sorted by global sequence number, plus each
    /// log's `(active, fill, dropped)` state. Pure read — usable both by
    /// recovery and by the offline doctor.
    pub fn scan_raw(
        pool: &PmemPool,
        base: PmOffset,
        arenas: usize,
    ) -> (Vec<RawProfRecord>, Vec<(usize, usize, u64)>) {
        let mut recs = Vec::new();
        let mut states = Vec::new();
        for a in 0..arenas {
            let lb = base + (a * PROF_LOG_BYTES) as u64;
            let active = (pool.read_u64(lb) & 1) as usize;
            let dropped = pool.read_u64(lb + 8);
            let hb = lb
                + PROF_LOG_HEADER_BYTES as u64
                + (active * PROF_HALF_RECORDS * PROF_RECORD_BYTES) as u64;
            let mut fill = 0;
            for i in 0..PROF_HALF_RECORDS {
                let off = hb + (i * PROF_RECORD_BYTES) as u64;
                let w0 = pool.read_u64(off);
                if w0 == 0 {
                    break;
                }
                fill = i + 1;
                let w3 = pool.read_u64(off + 24);
                recs.push(RawProfRecord {
                    kind: w0 >> 56,
                    addr: w0 & ADDR_MASK,
                    site: pool.read_u64(off + 8),
                    seq: pool.read_u64(off + 16),
                    crossings: w3 >> SIZE_BITS,
                    size: w3 & SIZE_MASK,
                    arena: a as u32,
                });
            }
            states.push((active, fill, dropped));
        }
        recs.sort_by_key(|r| r.seq);
        (recs, states)
    }

    /// Replay seq-ordered raw records into the set of sampled objects the
    /// sidelogs believe are live.
    pub fn replay(recs: &[RawProfRecord]) -> BTreeMap<PmOffset, ReplayedObj> {
        let mut live = BTreeMap::new();
        for r in recs {
            match r.kind {
                PROF_KIND_ALLOC => {
                    live.insert(
                        r.addr,
                        ReplayedObj {
                            site: r.site,
                            seq: r.seq,
                            size: r.size,
                            crossings: r.crossings,
                            arena: r.arena,
                        },
                    );
                }
                PROF_KIND_FREE => {
                    live.remove(&r.addr);
                }
                _ => {}
            }
        }
        live
    }

    /// Recovery-time rebuild: replay the sidelogs, prune records whose
    /// object is dead on-heap (`live_size` returns the granted size of a
    /// live allocation base, or `None`), adopt the surviving set as the
    /// volatile live/site tables, and compact every arena log so the
    /// persistent sidelog again holds exactly the surviving records.
    /// Site labels are volatile and come back as `site_<hash>`; cumulative
    /// counters restart from zero.
    pub(crate) fn rebuild(
        &self,
        pool: &PmemPool,
        t: &mut PmThread,
        live_size: impl Fn(PmOffset) -> Option<usize>,
    ) -> ProfReplayStats {
        let (recs, states) = Prof::scan_raw(pool, self.base, self.arenas);
        let mut stats = ProfReplayStats { records: recs.len(), stale: 0 };
        let replayed = Prof::replay(&recs);
        let mut max_seq = 0;
        for r in &recs {
            max_seq = max_seq.max(r.seq);
        }
        let mut inner = self.inner.write().unwrap();
        inner.logs = states
            .iter()
            .map(|&(active, fill, dropped)| LogState { active, fill, dropped })
            .collect();
        self.dropped.store(states.iter().map(|&(_, _, d)| d).sum(), Ordering::Relaxed);
        inner.live.clear();
        inner.sites.clear();
        for (addr, obj) in replayed {
            if live_size(addr) != Some(obj.size as usize) {
                stats.stale += 1;
                continue;
            }
            let weight = obj.crossings.saturating_mul(self.period);
            let e = inner.sites.entry(obj.site).or_default();
            if e.label.is_empty() {
                e.label = format!("site_{:016x}", obj.site);
            }
            e.live_bytes += weight;
            e.live_objects += obj.crossings;
            let class = if (obj.size as usize) < LARGE_MIN {
                size_to_class(obj.size as usize).unwrap_or(PROF_CLASS_LARGE)
            } else {
                PROF_CLASS_LARGE
            };
            *e.class_mix.entry(class).or_insert(0) += 1;
            inner.live.insert(
                addr,
                LiveObj {
                    site: obj.site,
                    seq: obj.seq,
                    size: obj.size,
                    crossings: obj.crossings,
                    arena: obj.arena,
                },
            );
        }
        self.seq.store(max_seq + 1, Ordering::Relaxed);
        // Re-compact every log so stale records (pruned above) do not
        // linger on PM and trip a later offline audit of a clean image.
        for a in 0..self.arenas {
            self.compact_locked(&mut inner, pool, t, a);
        }
        stats
    }

    // -----------------------------------------------------------------------
    // Reporting
    // -----------------------------------------------------------------------

    /// Take a periodic snapshot (driven by the allocator service tick).
    pub(crate) fn service_snapshot(&self) {
        let mut inner = self.inner.write().unwrap();
        let (mut bytes, mut objs, mut nsites) = (0u64, 0u64, 0u64);
        for s in inner.sites.values() {
            bytes += s.live_bytes;
            objs += s.live_objects;
            if s.live_bytes > 0 {
                nsites += 1;
            }
        }
        inner.snapshot_total += 1;
        let snap = ProfSnapshot {
            tick: inner.snapshot_total,
            live_bytes: bytes,
            live_objects: objs,
            sites: nsites,
        };
        if inner.snapshots.len() == MAX_SNAPSHOTS {
            inner.snapshots.remove(0);
        }
        inner.snapshots.push(snap);
    }

    /// Capture the retained-set report: every site still holding
    /// estimated live bytes. Called from `quiesce()`.
    pub(crate) fn mark_retained(&self) {
        let mut inner = self.inner.write().unwrap();
        let rows: Vec<RetainedSite> = inner
            .sites
            .iter()
            .filter(|(_, s)| s.live_bytes > 0)
            .map(|(&site, s)| RetainedSite {
                site,
                label: s.label.clone(),
                live_bytes: s.live_bytes,
                live_objects: s.live_objects,
            })
            .collect();
        inner.retained = rows;
    }

    /// The retained-set rows captured by the last `quiesce()`.
    pub fn retained(&self) -> Vec<RetainedSite> {
        self.inner.read().unwrap().retained.clone()
    }

    /// Estimated live bytes summed over all sites.
    pub fn estimated_live_bytes(&self) -> u64 {
        self.inner.read().unwrap().sites.values().map(|s| s.live_bytes).sum()
    }

    /// Number of distinct sites observed.
    pub fn site_count(&self) -> usize {
        self.inner.read().unwrap().sites.len()
    }

    /// Number of currently tracked sampled live objects.
    pub fn live_sampled(&self) -> usize {
        self.inner.read().unwrap().live.len()
    }

    /// `[samples, appends, free_hits, compactions, dropped]` counters.
    pub(crate) fn counters(&self) -> [u64; 5] {
        [
            self.samples.load(Ordering::Relaxed),
            self.appends.load(Ordering::Relaxed),
            self.free_hits.load(Ordering::Relaxed),
            self.compactions.load(Ordering::Relaxed),
            self.dropped.load(Ordering::Relaxed),
        ]
    }

    /// Full profile dump as a JSON object: site table (BTreeMap order,
    /// deterministic), retained-set rows, and the service snapshot ring.
    pub fn json(&self) -> String {
        let inner = self.inner.read().unwrap();
        let mut o = JsonObj::new();
        o.field_u64("schema_version", SCHEMA_VERSION);
        o.field_u64("sample_bytes", self.period);
        o.field_u64("samples", self.samples.load(Ordering::Relaxed));
        o.field_u64("appends", self.appends.load(Ordering::Relaxed));
        o.field_u64("frees", self.free_hits.load(Ordering::Relaxed));
        o.field_u64("compactions", self.compactions.load(Ordering::Relaxed));
        o.field_u64("dropped", self.dropped.load(Ordering::Relaxed));
        o.field_u64("live_sampled", inner.live.len() as u64);
        o.field_u64("estimated_live_bytes", inner.sites.values().map(|s| s.live_bytes).sum());
        let mut sites = String::from("[");
        for (i, (site, s)) in inner.sites.iter().enumerate() {
            if i > 0 {
                sites.push(',');
            }
            let mut so = JsonObj::new();
            so.field_str("site", &format!("{site:016x}"));
            so.field_str("label", &s.label);
            so.field_u64("live_bytes_est", s.live_bytes);
            so.field_u64("live_objects_est", s.live_objects);
            so.field_u64("alloc_bytes_est", s.alloc_bytes);
            so.field_u64("allocs", s.allocs);
            so.field_u64("frees", s.frees);
            let mut mix = String::from("[");
            for (j, (class, n)) in s.class_mix.iter().enumerate() {
                if j > 0 {
                    mix.push(',');
                }
                mix.push_str(&format!("{{\"class\":{class},\"samples\":{n}}}"));
            }
            mix.push(']');
            so.field_raw("classes", &mix);
            sites.push_str(&so.finish());
        }
        sites.push(']');
        o.field_raw("sites", &sites);
        let mut ret = String::from("[");
        for (i, r) in inner.retained.iter().enumerate() {
            if i > 0 {
                ret.push(',');
            }
            let mut ro = JsonObj::new();
            ro.field_str("site", &format!("{:016x}", r.site));
            ro.field_str("label", &r.label);
            ro.field_u64("live_bytes_est", r.live_bytes);
            ro.field_u64("live_objects_est", r.live_objects);
            ret.push_str(&ro.finish());
        }
        ret.push(']');
        o.field_raw("retained", &ret);
        let mut snaps = String::from("[");
        for (i, sn) in inner.snapshots.iter().enumerate() {
            if i > 0 {
                snaps.push(',');
            }
            snaps.push_str(&format!(
                "{{\"tick\":{},\"live_bytes_est\":{},\"live_objects_est\":{},\"sites\":{}}}",
                sn.tick, sn.live_bytes, sn.live_objects, sn.sites
            ));
        }
        snaps.push(']');
        o.field_raw("snapshots", &snaps);
        o.finish()
    }

    /// Collapsed-stack dump: one `label live_bytes_estimate` line per
    /// site, flamegraph-compatible.
    pub fn collapsed(&self) -> String {
        let inner = self.inner.read().unwrap();
        let mut out = String::new();
        for s in inner.sites.values() {
            out.push_str(&s.label);
            out.push(' ');
            out.push_str(&s.live_bytes.to_string());
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometry_is_exact() {
        assert_eq!(PROF_HALF_RECORDS, 1023);
        assert_eq!(
            PROF_LOG_HEADER_BYTES + 2 * PROF_HALF_RECORDS * PROF_RECORD_BYTES,
            PROF_LOG_BYTES
        );
    }

    #[test]
    fn countdown_crossings_are_unbiased() {
        let p = Prof::new(1024, 0, 1);
        let mut acc = 0u64;
        let mut crossings = 0u64;
        let n = 10_000usize;
        let each = 96usize;
        for _ in 0..n {
            crossings += p.crossings(&mut acc, each);
        }
        let est = crossings * 1024 + acc;
        assert_eq!(est as usize, n * each, "countdown conserves bytes exactly");
    }

    #[test]
    fn with_site_overrides_and_restores() {
        assert!(SITE_TAG.with(Cell::get).is_none());
        let (tag, label) = with_site("alpha", capture_site);
        assert_eq!(tag, site_tag("alpha"));
        assert_eq!(label, "alpha");
        assert!(SITE_TAG.with(Cell::get).is_none());
        // Nested override wins, outer restored after.
        with_site("outer", || {
            let (t2, _) = with_site("inner", capture_site);
            assert_eq!(t2, site_tag("inner"));
            let (t3, _) = capture_site();
            assert_eq!(t3, site_tag("outer"));
        });
    }

    #[test]
    fn backtrace_hash_is_stable_within_process() {
        fn here() -> (u64, String) {
            capture_site()
        }
        let a = here();
        let b = here();
        assert_eq!(a.0, b.0, "same call path hashes to the same site");
        assert_eq!(a.1, b.1);
    }

    #[test]
    fn strip_hex_removes_addresses() {
        assert_eq!(strip_hex("foo::bar at 0x7f3a9c00de11"), "foo::bar at ");
        assert_eq!(strip_hex("no addresses"), "no addresses");
        assert_eq!(strip_hex("0xabc mid 0xDEF end"), " mid  end");
    }
}
