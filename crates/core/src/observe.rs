//! The heap observatory: deterministic time-series sampling of occupancy,
//! fragmentation, and tail latency.
//!
//! The paper's headline claims are *trajectories* — fragmentation staying
//! flat under Fragbench churn (§6), morphing kicking in as occupancy
//! decays — but counters and flight-recorder events only show aggregates
//! and instants. This module adds a config-gated timeline sampler
//! ([`crate::NvConfig::timeline`]): every time an operation completes
//! with the acting thread's **virtual PM clock** past the next
//! `k × interval` boundary, one [`TimelineSample`] is recorded into a
//! bounded ring buffer.
//!
//! # Determinism contract
//!
//! Ticks are driven exclusively by the virtual clock — never by host
//! time — so a single-threaded workload with a fixed seed produces a
//! byte-identical timeline on every run (`tests/observe.rs` asserts
//! this), and sampled runs stay compatible with the crash matrix and the
//! pmsan sanitizer. With several worker threads the boundary is claimed
//! by whichever thread's clock crosses it first, so multi-threaded
//! timelines are per-schedule, like every other cross-thread ordering.
//!
//! # Observational invariance
//!
//! Sampling is strictly read-only: gauge collection uses the uncounted
//! observer locks (never the counted [`crate::telemetry`] lock probes),
//! touches no persistent memory, and never advances a virtual clock, so
//! a timeline-on run reports the same [`crate::telemetry::MetricsSnapshot`]
//! as a timeline-off run. With the timeline off the per-operation cost is
//! one `Option` branch.
//!
//! # Shared fragmentation math
//!
//! [`external_fragmentation`], [`utilization`], [`occupancy_decile`], and
//! [`heap_used_bytes`] are the *single* definitions of the heap-health
//! figures; the offline doctor ([`crate::doctor`]) and the live sampler
//! both call them, so the two can never disagree on a quiesced heap.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::Mutex;

use crate::size_class::SLAB_SIZE;
use crate::telemetry::{json, OpHistograms, OpKind};

/// Occupancy-fraction bin edges mirroring the doctor's ten-decile
/// histogram; the arena's `occupancy_histogram` over
/// these edges yields ten counts.
pub const DECILE_BINS: [f64; 9] = [0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9];

// ----- shared heap-health math (doctor + live sampler) -----

/// Heap bytes covered by live extents: every live slab frame (claimed or
/// parked in a reservoir) plus the live non-slab extent bytes.
pub fn covered_bytes(slab_frames: usize, live_large_bytes: u64) -> u64 {
    slab_frames as u64 * SLAB_SIZE as u64 + live_large_bytes
}

/// Fraction of the used heap span not covered by live extents (external
/// fragmentation; 0.0 when the heap is untouched).
pub fn external_fragmentation(heap_used_bytes: u64, covered_bytes: u64) -> f64 {
    if heap_used_bytes == 0 {
        return 0.0;
    }
    1.0 - (covered_bytes.min(heap_used_bytes) as f64 / heap_used_bytes as f64)
}

/// Live blocks over capacity (slab-internal utilisation; 1.0 when there
/// is no capacity to waste).
pub fn utilization(live_blocks: usize, capacity_blocks: usize) -> f64 {
    if capacity_blocks == 0 {
        return 1.0;
    }
    live_blocks as f64 / capacity_blocks as f64
}

/// The decile bin (`0..=9`) a slab with `live` of `nblocks` blocks falls
/// into, or `None` for a zero-capacity slab.
pub fn occupancy_decile(live: usize, nblocks: usize) -> Option<usize> {
    (live * 10).checked_div(nblocks).map(|d| d.min(9))
}

/// Heap bytes spanned by live extents: base → highest extent end (`None`
/// when no extent is live).
pub fn heap_used_bytes(max_extent_end: Option<u64>, heap_base: u64) -> u64 {
    max_extent_end.map_or(0, |end| end.saturating_sub(heap_base))
}

// ----- gauges -----

/// Point-in-time occupancy gauge for one large-allocator shard.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ShardGauge {
    /// Live slab-frame extents (claimed slabs + parked reservoir frames).
    pub active_slabs: usize,
    /// Live non-slab extents.
    pub active_extents: usize,
    /// Bytes of live non-slab extents.
    pub live_large_bytes: u64,
    /// Free extents parked on the reclaimed + retained lists.
    pub free_extents: usize,
    /// Mapped heap bytes (extent regions + headers).
    pub mapped_bytes: u64,
    /// Highest live extent end offset (0 when the shard is empty).
    pub max_extent_end: u64,
    /// Live bookkeeping-log entries (0 in in-place mode).
    pub booklog_live: u64,
    /// Appended entries no longer live — tombstoned, reaped, or
    /// superseded by slow-GC copies (0 in in-place mode).
    pub booklog_dead: u64,
}

/// Per-size-class slab occupancy for one arena.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClassGauge {
    /// Size class index.
    pub class: usize,
    /// Slabs of this class owned by the arena.
    pub slabs: usize,
    /// Total block capacity across those slabs.
    pub capacity_blocks: usize,
    /// Blocks currently taken (volatile view).
    pub live_blocks: usize,
}

/// Point-in-time gauge for one arena.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ArenaGauge {
    /// Slabs owned by the arena.
    pub slabs: usize,
    /// Slab counts over the ten occupancy deciles (same
    /// [`occupancy_decile`] binning as the doctor's audit histogram).
    pub occupancy_hist: Vec<usize>,
    /// Per-class occupancy rows (classes with at least one slab, by
    /// ascending class index).
    pub classes: Vec<ClassGauge>,
    /// Pre-carved slab frames parked in the arena's reservoir.
    pub reservoir: usize,
    /// Deferred cross-arena frees queued on the remote-free queue.
    pub remote_depth: usize,
    /// Pending carve/retire requests on the allocator-service queue
    /// (always 0 with the service off).
    pub service_depth: usize,
}

/// Windowed latency quantiles for one [`OpKind`]: the delta of the op
/// histogram since the previous sample, reduced by
/// [`crate::telemetry::LatencyHistogram::quantile`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OpWindow {
    /// Samples recorded in the window.
    pub count: u64,
    /// Median latency (ns).
    pub p50: u64,
    /// 95th percentile (ns).
    pub p95: u64,
    /// 99th percentile (ns).
    pub p99: u64,
    /// 99.9th percentile (ns).
    pub p999: u64,
}

/// One timeline tick: every gauge the observatory records at a virtual
/// clock boundary.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TimelineSample {
    /// Sample index (monotone across the run, including dropped samples).
    pub seq: u64,
    /// The virtual-clock boundary this sample is stamped at
    /// (`k × interval`).
    pub ns: u64,
    /// Heap bytes spanned by live extents.
    pub heap_used_bytes: u64,
    /// Heap bytes covered by live extents.
    pub covered_bytes: u64,
    /// External fragmentation over the used span.
    pub external_frag: f64,
    /// Slab-internal utilisation (1.0 − internal fragmentation).
    pub slab_utilization: f64,
    /// Mapped heap bytes across all shards.
    pub mapped_bytes: u64,
    /// Bytes handed out and not yet freed.
    pub live_bytes: u64,
    /// Live bookkeeping-log entries across shards.
    pub booklog_live: u64,
    /// Dead bookkeeping-log entries across shards.
    pub booklog_dead: u64,
    /// Micro-WAL entries appended so far (cumulative; WAL usage).
    pub wal_appends: u64,
    /// Per-shard large-allocator gauges, in shard order.
    pub shards: Vec<ShardGauge>,
    /// Per-arena gauges, in arena order.
    pub arenas: Vec<ArenaGauge>,
    /// Windowed latency quantiles, indexed in [`OpKind::ALL`] order.
    pub window: [OpWindow; OpKind::COUNT],
}

/// Append a `u64` as decimal digits without going through `core::fmt`
/// (a sample carries a few hundred integers; the fmt machinery is ~5×
/// the cost of the digits themselves).
fn push_u64(out: &mut String, mut v: u64) {
    let mut buf = [0u8; 20];
    let mut i = buf.len();
    loop {
        i -= 1;
        buf[i] = b'0' + (v % 10) as u8;
        v /= 10;
        if v == 0 {
            break;
        }
    }
    out.push_str(std::str::from_utf8(&buf[i..]).expect("ascii digits"));
}

/// Append a float as plain `Display` digits, `null` when non-finite
/// (the same rendering as [`json::JsonObj::field_f64`]).
fn push_f64(out: &mut String, v: f64) {
    use std::fmt::Write as _;
    if v.is_finite() {
        let _ = write!(out, "{v}");
    } else {
        out.push_str("null");
    }
}

impl TimelineSample {
    /// Serialise the sample as one self-contained JSON object (single
    /// line, fixed field order, no trailing newline) — the `--timeline`
    /// JSON-lines record format. Appends to `out`: a run exports
    /// thousands of samples, so the serialiser must not allocate per
    /// field.
    pub fn write_json(&self, out: &mut String) {
        let field = |out: &mut String, key: &str, v: u64| {
            out.push_str(key);
            push_u64(out, v);
        };
        field(out, "{\"schema_version\":", crate::telemetry::SCHEMA_VERSION);
        field(out, ",\"sample\":", self.seq);
        field(out, ",\"ns\":", self.ns);
        field(out, ",\"heap_used_bytes\":", self.heap_used_bytes);
        field(out, ",\"covered_bytes\":", self.covered_bytes);
        out.push_str(",\"external_frag\":");
        push_f64(out, self.external_frag);
        out.push_str(",\"slab_utilization\":");
        push_f64(out, self.slab_utilization);
        field(out, ",\"mapped_bytes\":", self.mapped_bytes);
        field(out, ",\"live_bytes\":", self.live_bytes);
        field(out, ",\"booklog_live\":", self.booklog_live);
        field(out, ",\"booklog_dead\":", self.booklog_dead);
        field(out, ",\"wal_appends\":", self.wal_appends);
        out.push_str(",\"shards\":[");
        for (i, s) in self.shards.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            field(out, "{\"active_slabs\":", s.active_slabs as u64);
            field(out, ",\"active_extents\":", s.active_extents as u64);
            field(out, ",\"live_large_bytes\":", s.live_large_bytes);
            field(out, ",\"free_extents\":", s.free_extents as u64);
            field(out, ",\"mapped_bytes\":", s.mapped_bytes);
            field(out, ",\"booklog_live\":", s.booklog_live);
            field(out, ",\"booklog_dead\":", s.booklog_dead);
            out.push('}');
        }
        out.push_str("],\"arenas\":[");
        for (i, a) in self.arenas.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            field(out, "{\"slabs\":", a.slabs as u64);
            out.push_str(",\"occupancy_hist\":[");
            for (j, n) in a.occupancy_hist.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                push_u64(out, *n as u64);
            }
            out.push_str("],\"classes\":[");
            for (j, c) in a.classes.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                field(out, "{\"class\":", c.class as u64);
                field(out, ",\"slabs\":", c.slabs as u64);
                field(out, ",\"capacity_blocks\":", c.capacity_blocks as u64);
                field(out, ",\"live_blocks\":", c.live_blocks as u64);
                out.push('}');
            }
            field(out, "],\"reservoir\":", a.reservoir as u64);
            field(out, ",\"remote_depth\":", a.remote_depth as u64);
            field(out, ",\"service_depth\":", a.service_depth as u64);
            out.push('}');
        }
        out.push_str("],\"latency\":{");
        for (i, kind) in OpKind::ALL.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let w = &self.window[kind.index()];
            out.push('"');
            out.push_str(kind.label());
            field(out, "\":{\"count\":", w.count);
            field(out, ",\"p50\":", w.p50);
            field(out, ",\"p95\":", w.p95);
            field(out, ",\"p99\":", w.p99);
            field(out, ",\"p999\":", w.p999);
            out.push('}');
        }
        out.push_str("}}");
    }

    /// The [`write_json`](TimelineSample::write_json) line as an owned
    /// string.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(3072);
        self.write_json(&mut out);
        out
    }
}

// ----- the sampler -----

/// The config-gated timeline sampler: a CAS-claimed virtual-clock
/// deadline plus a bounded ring of [`TimelineSample`]s.
///
/// Created by the allocator front end when `NvConfig::timeline` is on;
/// the per-operation hot path does one relaxed [`TimelineSampler::due`]
/// check and, for the (rare) thread that crosses a boundary, a CAS claim
/// followed by gauge collection with no allocator locks held.
#[derive(Debug)]
pub struct TimelineSampler {
    interval_ns: u64,
    capacity: usize,
    /// Next virtual-clock boundary a tick is owed at.
    next_due: AtomicU64,
    inner: Mutex<SamplerInner>,
}

#[derive(Debug, Default)]
struct SamplerInner {
    ring: VecDeque<TimelineSample>,
    seq: u64,
    dropped: u64,
    /// Cumulative op histograms at the previous sample (window base).
    last_hists: OpHistograms,
}

impl TimelineSampler {
    /// Create a sampler ticking every `interval_ns` virtual nanoseconds,
    /// keeping at most `capacity` samples (drop-oldest).
    pub fn new(interval_ns: u64, capacity: usize) -> TimelineSampler {
        let interval_ns = interval_ns.max(1);
        TimelineSampler {
            interval_ns,
            capacity: capacity.max(1),
            next_due: AtomicU64::new(interval_ns),
            inner: Mutex::new(SamplerInner::default()),
        }
    }

    /// The configured tick interval in virtual nanoseconds.
    pub fn interval_ns(&self) -> u64 {
        self.interval_ns
    }

    /// Ring capacity (samples retained).
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Cheap hot-path check: is a tick owed at virtual time `now_ns`?
    #[inline]
    pub fn due(&self, now_ns: u64) -> bool {
        now_ns >= self.next_due.load(Ordering::Relaxed)
    }

    /// Try to claim the tick for the boundary crossed at `now_ns`.
    /// Exactly one thread wins per boundary; the winner gets the highest
    /// crossed `k × interval` stamp (skipping intermediate boundaries if
    /// the clock jumped several at once) and must collect + [`record`]
    /// one sample. Losers and early callers get `None`.
    ///
    /// [`record`]: TimelineSampler::record
    pub fn claim(&self, now_ns: u64) -> Option<u64> {
        let mut due = self.next_due.load(Ordering::Relaxed);
        loop {
            if now_ns < due {
                return None;
            }
            let stamp = now_ns / self.interval_ns * self.interval_ns;
            match self.next_due.compare_exchange_weak(
                due,
                stamp + self.interval_ns,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return Some(stamp),
                Err(d) => due = d,
            }
        }
    }

    /// Record one collected sample. `cum_hists` is the cumulative op
    /// histogram state at collection time; the sampler diffs it against
    /// the previous sample's to produce the windowed quantiles, then
    /// stores it as the next window base. Assigns the sample's `seq` and
    /// enforces the ring bound (drop-oldest).
    pub fn record(&self, mut sample: TimelineSample, cum_hists: &OpHistograms) {
        let mut inner = self.inner.lock();
        let delta = cum_hists.since(&inner.last_hists);
        inner.last_hists = *cum_hists;
        for kind in OpKind::ALL {
            let h = delta.of(kind);
            sample.window[kind.index()] = OpWindow {
                count: h.count(),
                p50: h.quantile(0.50),
                p95: h.quantile(0.95),
                p99: h.quantile(0.99),
                p999: h.quantile(0.999),
            };
        }
        sample.seq = inner.seq;
        inner.seq += 1;
        if inner.ring.len() == self.capacity {
            inner.ring.pop_front();
            inner.dropped += 1;
        }
        inner.ring.push_back(sample);
    }

    /// Samples currently resident, oldest first.
    pub fn samples(&self) -> Vec<TimelineSample> {
        self.inner.lock().ring.iter().cloned().collect()
    }

    /// Number of samples currently resident (≤ capacity).
    pub fn len(&self) -> usize {
        self.inner.lock().ring.len()
    }

    /// True when no sample has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.inner.lock().ring.is_empty()
    }

    /// Samples lost to drop-oldest wraparound.
    pub fn dropped(&self) -> u64 {
        self.inner.lock().dropped
    }

    /// Every resident sample as JSON lines (one [`TimelineSample::to_json`]
    /// record per line, trailing newline) — the `--timeline` file format.
    pub fn json_lines(&self) -> String {
        let inner = self.inner.lock();
        // ~3 KiB per rendered sample on a default config; one up-front
        // allocation instead of one per sample.
        let mut out = String::with_capacity(inner.ring.len() * 3072);
        for s in &inner.ring {
            s.write_json(&mut out);
            out.push('\n');
        }
        out
    }

    /// The timeline as Chrome trace *counter* events (`"ph":"C"`),
    /// pre-rendered as JSON object strings ready to merge into the flight
    /// recorder's `traceEvents` array: fragmentation, heap size, queue
    /// depths, and booklog liveness tracks alongside the event stream.
    pub fn chrome_counter_events(&self) -> Vec<String> {
        let inner = self.inner.lock();
        let mut out = Vec::with_capacity(inner.ring.len() * 4);
        for s in &inner.ring {
            let ts = s.ns as f64 / 1000.0;
            let counter = |name: &str, args: json::JsonObj| {
                let mut o = json::JsonObj::new();
                o.field_str("name", name);
                o.field_str("cat", "timeline");
                o.field_str("ph", "C");
                o.field_f64("ts", ts);
                o.field_u64("pid", 1);
                o.field_u64("tid", 0);
                o.field_raw("args", &args.finish());
                o.finish()
            };
            let mut frag = json::JsonObj::new();
            frag.field_f64("external", s.external_frag);
            frag.field_f64("internal", 1.0 - s.slab_utilization);
            out.push(counter("fragmentation", frag));
            let mut heap = json::JsonObj::new();
            heap.field_u64("mapped", s.mapped_bytes);
            heap.field_u64("used", s.heap_used_bytes);
            heap.field_u64("live", s.live_bytes);
            out.push(counter("heap_bytes", heap));
            let mut q = json::JsonObj::new();
            q.field_u64("remote", s.arenas.iter().map(|a| a.remote_depth as u64).sum());
            q.field_u64("reservoir", s.arenas.iter().map(|a| a.reservoir as u64).sum());
            q.field_u64("service", s.arenas.iter().map(|a| a.service_depth as u64).sum());
            q.field_u64("free_extents", s.shards.iter().map(|g| g.free_extents as u64).sum());
            out.push(counter("queues", q));
            let mut b = json::JsonObj::new();
            b.field_u64("live", s.booklog_live);
            b.field_u64("dead", s.booklog_dead);
            out.push(counter("booklog", b));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::telemetry::OpKind;

    #[test]
    fn fragmentation_math_edges() {
        assert_eq!(external_fragmentation(0, 0), 0.0);
        assert_eq!(external_fragmentation(100, 100), 0.0);
        assert_eq!(external_fragmentation(200, 100), 0.5);
        // Coverage beyond the span clamps to zero fragmentation.
        assert_eq!(external_fragmentation(100, 300), 0.0);
        assert_eq!(utilization(0, 0), 1.0);
        assert_eq!(utilization(1, 4), 0.25);
        assert_eq!(occupancy_decile(0, 0), None);
        assert_eq!(occupancy_decile(0, 8), Some(0));
        assert_eq!(occupancy_decile(8, 8), Some(9), "full slab lands in the top decile");
        assert_eq!(occupancy_decile(4, 8), Some(5));
        assert_eq!(heap_used_bytes(None, 1 << 20), 0);
        assert_eq!(heap_used_bytes(Some(3 << 20), 1 << 20), 2 << 20);
        assert_eq!(covered_bytes(2, 100), 2 * SLAB_SIZE as u64 + 100);
    }

    #[test]
    fn claim_is_exactly_once_per_boundary() {
        let s = TimelineSampler::new(1000, 8);
        assert!(!s.due(999));
        assert_eq!(s.claim(999), None);
        assert!(s.due(1000));
        assert_eq!(s.claim(1000), Some(1000));
        assert_eq!(s.claim(1000), None, "boundary already claimed");
        assert_eq!(s.claim(1999), None, "still inside the claimed window");
        // A clock jump over several boundaries claims only the highest.
        assert_eq!(s.claim(5321), Some(5000));
        assert_eq!(s.claim(5999), None);
        assert_eq!(s.claim(6000), Some(6000));
    }

    #[test]
    fn ring_respects_capacity_and_counts_drops() {
        let s = TimelineSampler::new(1, 4);
        let cum = OpHistograms::default();
        for i in 0..10u64 {
            s.record(TimelineSample { ns: i, ..TimelineSample::default() }, &cum);
        }
        assert_eq!(s.len(), 4);
        assert_eq!(s.dropped(), 6);
        let got = s.samples();
        assert_eq!(got.first().unwrap().ns, 6, "oldest samples dropped first");
        assert_eq!(got.last().unwrap().seq, 9, "seq keeps counting across drops");
    }

    #[test]
    fn record_windows_are_deltas() {
        let s = TimelineSampler::new(1, 8);
        let mut cum = OpHistograms::default();
        cum.record(OpKind::MallocSmall, 100);
        cum.record(OpKind::MallocSmall, 200);
        s.record(TimelineSample::default(), &cum);
        cum.record(OpKind::Free, 50);
        s.record(TimelineSample::default(), &cum);
        let got = s.samples();
        let w0 = &got[0].window[OpKind::MallocSmall.index()];
        assert_eq!(w0.count, 2);
        assert!(w0.p50 > 0 && w0.p999 >= w0.p50);
        let w1 = &got[1].window;
        assert_eq!(w1[OpKind::MallocSmall.index()].count, 0, "second window saw no mallocs");
        assert_eq!(w1[OpKind::Free.index()].count, 1);
    }

    #[test]
    fn sample_json_is_one_line_with_fixed_shape() {
        let s = TimelineSample {
            seq: 3,
            ns: 4000,
            external_frag: 0.25,
            shards: vec![ShardGauge::default()],
            arenas: vec![ArenaGauge { occupancy_hist: vec![0; 10], ..ArenaGauge::default() }],
            ..TimelineSample::default()
        };
        let j = s.to_json();
        assert!(!j.contains('\n'));
        assert!(j.starts_with("{\"schema_version\":2,\"sample\":3,\"ns\":4000,"));
        assert!(j.contains("\"external_frag\":0.25"));
        assert!(j.contains("\"occupancy_hist\":[0,0,0,0,0,0,0,0,0,0]"));
        assert!(j.contains("\"latency\":{\"malloc_small\":{\"count\":0"));
    }

    #[test]
    fn chrome_counter_events_have_counter_phase() {
        let sampler = TimelineSampler::new(1, 4);
        sampler.record(
            TimelineSample { ns: 2000, external_frag: 0.5, ..TimelineSample::default() },
            &OpHistograms::default(),
        );
        let ev = sampler.chrome_counter_events();
        assert_eq!(ev.len(), 4, "four counter tracks per sample");
        for e in &ev {
            assert!(e.contains("\"ph\":\"C\""), "{e}");
            assert!(e.contains("\"ts\":2"), "{e}");
        }
        assert!(ev[0].contains("\"external\":0.5"));
    }
}
