//! The allocator's flight recorder: event vocabulary, per-thread ring
//! registration, chronological merging, and Chrome trace-event export.
//!
//! The transport (lock-free per-thread rings, global sequence stamping)
//! lives in [`nvalloc_pmem`] so that [`nvalloc_pmem::PmThread`] — which
//! every allocator module already threads through its persistence calls
//! — can carry the emitter. This module gives those raw events meaning:
//!
//! * [`EventKind`] — the binary event vocabulary (alloc/free begin+end,
//!   tcache refill/flush, cursor rotations, morph step transitions, WAL
//!   append/commit, booklog append/GC, remote-queue push/drain, lock
//!   acquisitions with wait/hold nanoseconds, recovery phases);
//! * [`TraceRecorder`] — owns one ring per registered allocator thread
//!   (capacity `NvConfig::trace_events_per_thread`, drop-oldest on
//!   wrap) plus the shared sequence counter;
//! * [`TraceRecorder::merged`] — the rings merged into one stream,
//!   totally ordered by the global sequence number;
//! * [`TraceRecorder::chrome_json`] — the merged stream as a Chrome
//!   `chrome://tracing` / Perfetto JSON document (`--trace <path>` on
//!   every fig binary writes this).
//!
//! Memory bound: a recorder never holds more than
//! `threads × trace_events_per_thread` events of 40 bytes each; older
//! events are overwritten in place and surface only in the
//! `trace_dropped` counter.
//!
//! Tracing is strictly observational: events are stamped from the
//! virtual clock but recording never advances it, so a traced run's
//! modelled measurements equal an untraced run's (asserted by
//! `tests/trace.rs`).

use std::sync::atomic::AtomicU64;
use std::sync::Arc;

use nvalloc_pmem::{TraceEvent, TraceRing, TracerHandle};
use parking_lot::Mutex;

use crate::telemetry::json;

/// Flight-recorder event kinds. The `u16` discriminant is the on-ring
/// `code`; payload words `a`/`b` are documented per variant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u16)]
pub enum EventKind {
    /// `malloc` entered. `a` = requested size.
    MallocBegin = 1,
    /// `malloc` returned. `a` = block address (0 on failure).
    MallocEnd = 2,
    /// `free` entered. `a` = block address.
    FreeBegin = 3,
    /// `free` returned. `a` = block address.
    FreeEnd = 4,
    /// Tcache refill for a class. `a` = class, `b` = blocks gained.
    TcacheRefill = 5,
    /// Tcache flush back to slabs. `a` = class, `b` = blocks flushed.
    TcacheFlush = 6,
    /// Sub-tcache cursor rotation. `a` = class.
    CursorRotate = 7,
    /// Slab-morph step transition. `a` = persistent `flag` value just
    /// written (0 none / 1 old-saved / 2 index-written / 3 new-written),
    /// `b` = slab base address.
    MorphStep = 8,
    /// Micro-WAL entry appended. `a` = block address, `b` = sequence.
    WalAppend = 9,
    /// WAL entry committed (dest write persisted). `a` = block address,
    /// `b` = destination address.
    WalCommit = 10,
    /// Bookkeeping-log entry appended. `a` = extent address, `b` = size.
    BooklogAppend = 11,
    /// Bookkeeping-log GC pass. `a` = 0 fast / 1 slow, `b` = chunks
    /// reaped (fast) or live entries copied (slow).
    BooklogGc = 12,
    /// Cross-arena free pushed onto a remote queue. `a` = block address,
    /// `b` = owning arena.
    RemotePush = 13,
    /// Remote-free queue drained. `a` = arena, `b` = blocks returned.
    RemoteDrain = 14,
    /// Instrumented mutex acquisition. `a` = wall-clock nanoseconds
    /// waited, `b` = wall-clock nanoseconds held.
    LockAcquire = 15,
    /// Recovery phase transition. `a` = phase ordinal (0 start /
    /// 1 slabs-scanned / 2 wal-replayed / 3 gc-complete / 4 done),
    /// `b` = phase-specific count.
    RecoveryPhase = 16,
    /// pmsan persist-ordering violation (emitted by the pmem substrate;
    /// code must equal `nvalloc_pmem::PMSAN_TRACE_CODE`). `a` = 64 B
    /// line offset, `b` = violation-kind ordinal
    /// (`nvalloc_pmem::PmsanKind` index).
    PmsanViolation = 17,
}

impl EventKind {
    /// Every kind, in code order.
    pub const ALL: [EventKind; 17] = [
        EventKind::MallocBegin,
        EventKind::MallocEnd,
        EventKind::FreeBegin,
        EventKind::FreeEnd,
        EventKind::TcacheRefill,
        EventKind::TcacheFlush,
        EventKind::CursorRotate,
        EventKind::MorphStep,
        EventKind::WalAppend,
        EventKind::WalCommit,
        EventKind::BooklogAppend,
        EventKind::BooklogGc,
        EventKind::RemotePush,
        EventKind::RemoteDrain,
        EventKind::LockAcquire,
        EventKind::RecoveryPhase,
        EventKind::PmsanViolation,
    ];

    /// The on-ring event code.
    #[inline]
    pub fn code(self) -> u16 {
        self as u16
    }

    /// Decode an on-ring code.
    pub fn from_code(code: u16) -> Option<EventKind> {
        Self::ALL.get(code.wrapping_sub(1) as usize).copied()
    }

    /// Human-readable name (Chrome trace `name`).
    pub fn name(self) -> &'static str {
        match self {
            EventKind::MallocBegin | EventKind::MallocEnd => "malloc",
            EventKind::FreeBegin | EventKind::FreeEnd => "free",
            EventKind::TcacheRefill => "tcache_refill",
            EventKind::TcacheFlush => "tcache_flush",
            EventKind::CursorRotate => "cursor_rotate",
            EventKind::MorphStep => "morph_step",
            EventKind::WalAppend => "wal_append",
            EventKind::WalCommit => "wal_commit",
            EventKind::BooklogAppend => "booklog_append",
            EventKind::BooklogGc => "booklog_gc",
            EventKind::RemotePush => "remote_push",
            EventKind::RemoteDrain => "remote_drain",
            EventKind::LockAcquire => "lock",
            EventKind::RecoveryPhase => "recovery",
            EventKind::PmsanViolation => "pmsan_violation",
        }
    }

    /// Chrome trace category.
    pub fn category(self) -> &'static str {
        match self {
            EventKind::MallocBegin
            | EventKind::MallocEnd
            | EventKind::FreeBegin
            | EventKind::FreeEnd => "op",
            EventKind::TcacheRefill | EventKind::TcacheFlush | EventKind::CursorRotate => "tcache",
            EventKind::MorphStep => "morph",
            EventKind::WalAppend | EventKind::WalCommit => "wal",
            EventKind::BooklogAppend | EventKind::BooklogGc => "booklog",
            EventKind::RemotePush | EventKind::RemoteDrain => "remote",
            EventKind::LockAcquire => "lock",
            EventKind::RecoveryPhase => "recovery",
            EventKind::PmsanViolation => "pmsan",
        }
    }
}

/// The allocator-wide flight recorder: one drop-oldest ring per
/// registered thread plus the shared sequence counter that gives the
/// merged stream its total order. Created by the allocator front end
/// when `NvConfig::trace` is on; one [`TracerHandle`] is attached to
/// each `NvThread`'s `PmThread` at registration.
#[derive(Debug)]
pub struct TraceRecorder {
    events_per_thread: usize,
    seq: Arc<AtomicU64>,
    rings: Mutex<Vec<Arc<TraceRing>>>,
}

impl TraceRecorder {
    /// Create a recorder whose per-thread rings hold `events_per_thread`
    /// events each.
    pub fn new(events_per_thread: usize) -> TraceRecorder {
        TraceRecorder {
            events_per_thread: events_per_thread.max(1),
            seq: Arc::new(AtomicU64::new(0)),
            rings: Mutex::new(Vec::new()),
        }
    }

    /// Register a new producer thread: allocates its ring and returns
    /// the emitter handle to attach to its `PmThread`.
    pub fn register(&self) -> TracerHandle {
        let ring = Arc::new(TraceRing::new(self.events_per_thread));
        let mut rings = self.rings.lock();
        let tid = rings.len().min(u16::MAX as usize) as u16;
        rings.push(Arc::clone(&ring));
        TracerHandle::new(ring, Arc::clone(&self.seq), tid)
    }

    /// Ring capacity per registered thread.
    pub fn events_per_thread(&self) -> usize {
        self.events_per_thread
    }

    /// Total events currently resident across all rings.
    pub fn events(&self) -> u64 {
        self.rings.lock().iter().map(|r| r.len()).sum()
    }

    /// Total events lost to drop-oldest wraparound across all rings.
    pub fn dropped(&self) -> u64 {
        self.rings.lock().iter().map(|r| r.dropped()).sum()
    }

    /// All resident events merged into one stream, totally ordered by
    /// the global sequence number. Authoritative at quiescence (no
    /// concurrent producers); see the transport docs.
    pub fn merged(&self) -> Vec<TraceEvent> {
        let rings = self.rings.lock();
        let mut out: Vec<TraceEvent> =
            Vec::with_capacity(rings.iter().map(|r| r.len()).sum::<u64>() as usize);
        for r in rings.iter() {
            out.extend(r.snapshot());
        }
        drop(rings);
        out.sort_unstable_by_key(|e| e.seq);
        out
    }

    /// The merged stream as a Chrome trace-event JSON document
    /// (`{"traceEvents":[...]}`), loadable in `chrome://tracing` or
    /// Perfetto. Begin/end kinds map to `B`/`E` duration events, lock
    /// acquisitions to `X` complete events (duration = hold time, wait
    /// time in `args`), everything else to `i` instants. Timestamps are
    /// the emitting thread's virtual-clock microseconds.
    pub fn chrome_json(&self) -> String {
        self.chrome_json_with(&[])
    }

    /// [`TraceRecorder::chrome_json`] with extra pre-rendered trace-event
    /// objects appended to the `traceEvents` array — how the timeline
    /// sampler's counter tracks ([`crate::observe`]) merge into the same
    /// document as the flight-recorder event stream.
    pub fn chrome_json_with(&self, extras: &[String]) -> String {
        let mut events = Vec::new();
        for e in self.merged() {
            let Some(kind) = EventKind::from_code(e.code) else { continue };
            let mut o = json::JsonObj::new();
            o.field_str("name", kind.name());
            o.field_str("cat", kind.category());
            let ph = match kind {
                EventKind::MallocBegin | EventKind::FreeBegin => "B",
                EventKind::MallocEnd | EventKind::FreeEnd => "E",
                EventKind::LockAcquire => "X",
                _ => "i",
            };
            o.field_str("ph", ph);
            o.field_f64("ts", e.ns as f64 / 1000.0);
            o.field_u64("pid", 1);
            o.field_u64("tid", e.tid as u64);
            if ph == "i" {
                o.field_str("s", "t");
            }
            if kind == EventKind::LockAcquire {
                o.field_f64("dur", e.b as f64 / 1000.0);
            }
            let mut args = json::JsonObj::new();
            args.field_u64("seq", e.seq);
            match kind {
                EventKind::LockAcquire => {
                    args.field_u64("wait_ns", e.a);
                    args.field_u64("hold_ns", e.b);
                }
                _ => {
                    args.field_u64("a", e.a);
                    args.field_u64("b", e.b);
                }
            }
            o.field_raw("args", &args.finish());
            events.push(o.finish());
        }
        events.extend(extras.iter().cloned());
        let mut doc = json::JsonObj::new();
        doc.field_raw("traceEvents", &format!("[{}]", events.join(",")));
        doc.field_str("displayTimeUnit", "ns");
        doc.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_round_trip() {
        for k in EventKind::ALL {
            assert_eq!(EventKind::from_code(k.code()), Some(k));
        }
        assert_eq!(EventKind::from_code(0), None);
        assert_eq!(EventKind::from_code(999), None);
    }

    #[test]
    fn merged_is_seq_ordered_across_rings() {
        let rec = TraceRecorder::new(16);
        let h1 = rec.register();
        let h2 = rec.register();
        h1.emit(10, EventKind::MallocBegin.code(), 64, 0);
        h2.emit(5, EventKind::FreeBegin.code(), 4096, 0);
        h1.emit(20, EventKind::MallocEnd.code(), 4096, 0);
        let m = rec.merged();
        assert_eq!(m.len(), 3);
        assert!(m.windows(2).all(|w| w[0].seq < w[1].seq));
        assert_eq!(rec.events(), 3);
        assert_eq!(rec.dropped(), 0);
    }

    #[test]
    fn chrome_json_has_expected_shape() {
        let rec = TraceRecorder::new(8);
        let h = rec.register();
        h.emit(1000, EventKind::MallocBegin.code(), 64, 0);
        h.emit(2000, EventKind::MallocEnd.code(), 4096, 0);
        h.emit(2500, EventKind::LockAcquire.code(), 111, 222);
        let j = rec.chrome_json();
        assert!(j.starts_with("{\"traceEvents\":["));
        assert!(j.contains("\"ph\":\"B\""));
        assert!(j.contains("\"ph\":\"E\""));
        assert!(j.contains("\"ph\":\"X\""));
        assert!(j.contains("\"wait_ns\":111"));
        assert!(j.contains("\"hold_ns\":222"));
    }
}
