//! Lock-free building blocks for the scalable free path: per-arena MPSC
//! remote-free queues and per-slab gates.
//!
//! # Remote-free queues
//!
//! A free whose block belongs to *another* arena must not contend with
//! that arena's owner threads. The freeing thread completes every
//! **persistent** state transition itself (WAL entry, atomic bitmap-bit
//! clear, destination-slot zeroing — all lock-free), then defers only the
//! **volatile** return-to-slab by pushing a `(slab, block)` pair onto the
//! owner arena's [`RemoteFreeQueue`] (mimalloc-style deferred frees).
//! Owner threads drain the queue under the arena lock they already hold
//! during tcache refills, so cross-thread frees never touch the owner's
//! hot path. A crash with entries still queued is consistent by
//! construction: the persistent image already records the block as free,
//! and the volatile bookkeeping is rebuilt from it at recovery.
//!
//! The queue is a Treiber stack. Producers CAS-push; the single consumer
//! (whoever holds the arena lock) detaches the whole chain with one
//! `swap(null)`. Because nodes are never popped individually, the classic
//! ABA hazard of Treiber pops cannot arise.
//!
//! # Slab gates
//!
//! The lock-free fast path reads the slab header and clears a persistent
//! bitmap bit without the arena lock, so it must not race a slab *layout*
//! change (morph transform, retire). Each slab has a gate word: fast
//! frees **pin** it (shared count); layout changes **lock** it
//! (exclusive bit, taken only when the pin count is zero, while holding
//! the arena lock). A pinned gate makes a morph candidate ineligible; a
//! locked gate diverts frees to the classic locked slow path. Pin/unpin
//! is one CAS on an uncontended word — the fast path stays lock-free, and
//! the (rare) exclusive holder spins only while bounded pin sections
//! finish.

use std::ptr;
use std::sync::atomic::{AtomicPtr, AtomicU32, Ordering};

use nvalloc_pmem::PmOffset;

use crate::size_class::SLAB_SIZE;

/// One deferred remote free: the owning slab's base offset and the block
/// index under the slab's *current* layout.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RemoteFree {
    /// Slab base offset.
    pub slab: PmOffset,
    /// Block index within the slab.
    pub idx: u32,
}

struct Node {
    item: RemoteFree,
    next: *mut Node,
}

/// A multi-producer single-consumer Treiber stack of deferred frees.
///
/// `push` is lock-free and safe from any thread; `drain` detaches every
/// queued entry at once and is intended to be called by a thread that
/// holds the owning arena's lock (the single-consumer side).
#[derive(Debug)]
pub struct RemoteFreeQueue {
    head: AtomicPtr<Node>,
}

impl Default for RemoteFreeQueue {
    fn default() -> Self {
        Self::new()
    }
}

impl RemoteFreeQueue {
    /// Create an empty queue.
    pub fn new() -> Self {
        RemoteFreeQueue { head: AtomicPtr::new(ptr::null_mut()) }
    }

    /// Push one deferred free (lock-free, any thread).
    pub fn push(&self, item: RemoteFree) {
        let node = Box::into_raw(Box::new(Node { item, next: ptr::null_mut() }));
        let mut head = self.head.load(Ordering::Relaxed);
        loop {
            // SAFETY: `node` is ours until the CAS publishes it.
            unsafe { (*node).next = head };
            match self.head.compare_exchange_weak(head, node, Ordering::Release, Ordering::Relaxed)
            {
                Ok(_) => return,
                Err(h) => head = h,
            }
        }
    }

    /// True when no entries are queued (racy, advisory: a concurrent push
    /// may land right after the load).
    pub fn is_empty(&self) -> bool {
        self.head.load(Ordering::Acquire).is_null()
    }

    /// Number of queued entries (advisory — the timeline sampler's
    /// queue-depth gauge). Walks the chain without detaching it; entries
    /// pushed after the head load are not counted.
    ///
    /// The caller must hold the owning arena's lock: nodes are freed only
    /// by [`RemoteFreeQueue::drain`], whose single consumer also runs
    /// under that lock, so holding it keeps the chain alive for the walk.
    /// (Concurrent lock-free pushes only prepend ahead of the loaded head
    /// and are simply not counted.)
    pub fn len(&self) -> usize {
        let mut p = self.head.load(Ordering::Acquire);
        let mut n = 0;
        while !p.is_null() {
            // SAFETY: per the contract above the caller holds the arena
            // lock, which excludes the only code path that frees nodes.
            p = unsafe { (*p).next };
            n += 1;
        }
        n
    }

    /// Detach and return every queued entry, in LIFO push order.
    ///
    /// Single-consumer: the caller must be the unique drainer (in the
    /// allocator, that uniqueness comes from holding the arena lock).
    /// Detaching with one `swap` means concurrent pushes either make it
    /// into this batch or stay queued for the next — no entry is lost.
    pub fn drain(&self) -> Vec<RemoteFree> {
        let mut p = self.head.swap(ptr::null_mut(), Ordering::Acquire);
        let mut out = Vec::new();
        while !p.is_null() {
            // SAFETY: the swap gave us exclusive ownership of the chain.
            let node = unsafe { Box::from_raw(p) };
            out.push(node.item);
            p = node.next;
        }
        out
    }
}

impl Drop for RemoteFreeQueue {
    fn drop(&mut self) {
        // Free any still-queued nodes (volatile bookkeeping only; the
        // persistent image is already consistent without them).
        self.drain();
    }
}

// SAFETY: the queue owns heap nodes reachable only through `head`;
// publication is ordered by the Release CAS / Acquire swap pair.
unsafe impl Send for RemoteFreeQueue {}
unsafe impl Sync for RemoteFreeQueue {}

/// Exclusive bit of a slab gate word; the low 31 bits count pins.
const GATE_LOCKED: u32 = 1 << 31;

/// One gate word per 64 KB slab frame of the pool.
///
/// See the module docs for the protocol. Indexed by slab base offset;
/// sized at pool creation so no fast-path bounds growth is ever needed.
#[derive(Debug)]
pub struct SlabGates {
    gates: Box<[AtomicU32]>,
}

impl SlabGates {
    /// Gates covering a pool of `pool_size` bytes.
    pub fn new(pool_size: usize) -> Self {
        let n = pool_size / SLAB_SIZE + 1;
        let mut v = Vec::with_capacity(n);
        v.resize_with(n, || AtomicU32::new(0));
        SlabGates { gates: v.into_boxed_slice() }
    }

    #[inline]
    fn gate(&self, slab_off: PmOffset) -> &AtomicU32 {
        &self.gates[slab_off as usize / SLAB_SIZE]
    }

    /// Try to pin `slab_off` for a lock-free free. Fails (returns `false`)
    /// when the gate is exclusively locked — the caller must fall back to
    /// the locked slow path.
    #[inline]
    pub fn try_pin(&self, slab_off: PmOffset) -> bool {
        let g = self.gate(slab_off);
        let mut cur = g.load(Ordering::Relaxed);
        loop {
            if cur & GATE_LOCKED != 0 {
                return false;
            }
            match g.compare_exchange_weak(cur, cur + 1, Ordering::Acquire, Ordering::Relaxed) {
                Ok(_) => return true,
                Err(c) => cur = c,
            }
        }
    }

    /// Release a pin taken with [`SlabGates::try_pin`].
    #[inline]
    pub fn unpin(&self, slab_off: PmOffset) {
        let prev = self.gate(slab_off).fetch_sub(1, Ordering::Release);
        debug_assert!(prev & !GATE_LOCKED > 0, "unpin without pin");
    }

    /// Try to take the gate exclusively. Fails when any pin is held or the
    /// gate is already locked. Caller must hold the arena lock (which
    /// serialises exclusive attempts against each other).
    #[inline]
    pub fn try_lock(&self, slab_off: PmOffset) -> bool {
        self.gate(slab_off)
            .compare_exchange(0, GATE_LOCKED, Ordering::Acquire, Ordering::Relaxed)
            .is_ok()
    }

    /// Take the gate exclusively, spinning out any in-flight pins. Pin
    /// sections are short and lock-free (they never wait on anything), so
    /// the spin is bounded; the caller holds the arena lock, so no second
    /// exclusive holder can interleave.
    #[inline]
    pub fn lock(&self, slab_off: PmOffset) {
        while !self.try_lock(slab_off) {
            std::hint::spin_loop();
        }
    }

    /// Release an exclusive hold.
    #[inline]
    pub fn unlock(&self, slab_off: PmOffset) {
        let prev = self.gate(slab_off).swap(0, Ordering::Release);
        debug_assert_eq!(prev, GATE_LOCKED, "unlock without exclusive hold");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn queue_push_drain_roundtrip() {
        let q = RemoteFreeQueue::new();
        assert!(q.is_empty());
        q.push(RemoteFree { slab: 0x10000, idx: 3 });
        q.push(RemoteFree { slab: 0x20000, idx: 7 });
        assert!(!q.is_empty());
        let items = q.drain();
        assert_eq!(items.len(), 2);
        // LIFO order.
        assert_eq!(items[0], RemoteFree { slab: 0x20000, idx: 7 });
        assert_eq!(items[1], RemoteFree { slab: 0x10000, idx: 3 });
        assert!(q.is_empty());
        assert!(q.drain().is_empty());
    }

    #[test]
    fn queue_concurrent_pushes_all_arrive() {
        let q = Arc::new(RemoteFreeQueue::new());
        let threads = 8;
        let per = 500;
        std::thread::scope(|s| {
            for t in 0..threads {
                let q = Arc::clone(&q);
                s.spawn(move || {
                    for i in 0..per {
                        q.push(RemoteFree { slab: (t as u64) << 32, idx: i as u32 });
                    }
                });
            }
        });
        let items = q.drain();
        assert_eq!(items.len(), threads * per);
        // Every (thread, idx) pair arrives exactly once.
        let mut seen = std::collections::HashSet::new();
        for it in items {
            assert!(seen.insert((it.slab, it.idx)));
        }
    }

    #[test]
    fn queue_drop_frees_pending_nodes() {
        let q = RemoteFreeQueue::new();
        for i in 0..100 {
            q.push(RemoteFree { slab: 0, idx: i });
        }
        drop(q); // must not leak (run under ASan/Miri to verify)
    }

    #[test]
    fn gates_pin_vs_lock() {
        let g = SlabGates::new(1 << 20);
        assert!(g.try_pin(0));
        assert!(g.try_pin(0), "pins are shared");
        assert!(!g.try_lock(0), "pinned gate cannot be locked");
        assert!(g.try_lock(65536), "other slabs unaffected");
        assert!(!g.try_pin(65536), "locked gate rejects pins");
        g.unpin(0);
        g.unpin(0);
        assert!(g.try_lock(0), "fully unpinned gate locks");
        g.unlock(0);
        g.unlock(65536);
        assert!(g.try_pin(65536), "unlocked gate pins again");
        g.unpin(65536);
    }

    #[test]
    fn gate_lock_waits_for_pins() {
        let g = Arc::new(SlabGates::new(1 << 20));
        assert!(g.try_pin(0));
        let g2 = Arc::clone(&g);
        let h = std::thread::spawn(move || {
            g2.lock(0); // spins until the pin below is released
            g2.unlock(0);
        });
        std::thread::sleep(std::time::Duration::from_millis(5));
        g.unpin(0);
        h.join().unwrap();
        assert!(g.try_pin(0), "gate is free again");
        g.unpin(0);
    }
}
