//! Allocator configuration.
//!
//! Besides selecting the consistency variant, the configuration can switch
//! each of the paper's three optimizations on or off individually, which is
//! how the Fig. 11 ablation ("Base", "+Interleaved", "+Log") and the
//! Fig. 15 "w/o SM" runs are produced.

/// Crash-consistency model (§4.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Variant {
    /// NVAlloc-LOG: every small-allocation metadata update is covered by a
    /// write-ahead log entry and flushed; recovery replays WALs.
    /// Strongly consistent.
    #[default]
    Log,
    /// NVAlloc-GC: no metadata or WAL flushing for small allocations;
    /// recovery runs a conservative garbage collection from the root set.
    /// Weakly consistent.
    Gc,
    /// NVAlloc-IC: the *internal collection* model the paper names as
    /// future work (§4.1, after PMDK's `POBJ_FIRST`/`POBJ_NEXT`). Every
    /// allocation is persistently recorded in the slab bitmaps / booklog
    /// alone — no WAL, no destination commit — and users enumerate their
    /// objects through [`crate::NvAllocator::objects`], so references can
    /// never be lost. Strongly consistent with one metadata flush per
    /// operation.
    Internal,
}

/// Configuration for [`crate::NvAllocator`].
///
/// Start from [`NvConfig::log`], [`NvConfig::gc`], or [`NvConfig::base`]
/// and override with the builder methods:
///
/// ```
/// use nvalloc::NvConfig;
/// let cfg = NvConfig::log().stripes(8).morphing(false).arenas(2);
/// assert_eq!(cfg.stripes, 8);
/// assert!(!cfg.morphing);
/// assert_eq!(cfg.tag(), "NVAlloc-LOG");
/// ```
#[derive(Debug, Clone)]
pub struct NvConfig {
    /// Consistency variant.
    pub variant: Variant,
    /// Number of bit stripes for interleaved mappings (paper default: 6).
    pub stripes: usize,
    /// Interleave slab bitmaps.
    pub interleave_bitmap: bool,
    /// Interleave the tcache (per-stripe sub-tcaches with rotating cursor).
    pub interleave_tcache: bool,
    /// Interleave WAL entry placement.
    pub interleave_wal: bool,
    /// Interleave bookkeeping-log entry placement.
    pub interleave_booklog: bool,
    /// Enable slab morphing.
    pub morphing: bool,
    /// Space-utilisation threshold below which a slab may morph
    /// (paper default: 0.20).
    pub su_threshold: f64,
    /// Use the log-structured bookkeeping log for extent metadata; when
    /// off, extent headers are updated in place (the Base / baseline
    /// behaviour of §3.3).
    pub log_bookkeeping: bool,
    /// Run booklog garbage collection (fast + slow).
    pub booklog_gc: bool,
    /// Log-file size threshold that triggers slow GC, as a fraction of the
    /// pool size (paper: `Usage_pmem`, 0.2 % in Fig. 17).
    pub usage_pmem: f64,
    /// Number of arenas (paper: one per CPU core).
    pub arenas: usize,
    /// Max cached blocks per tcache size class.
    pub tcache_cap: usize,
    /// Per-arena slab reservoir size: slab frames are carved from the
    /// large allocator in batches of this many, so the global large mutex
    /// is touched once per batch, and retired frames are parked here for
    /// reuse instead of being returned. `0` disables the reservoir
    /// (every carve and retire goes through the large allocator, the
    /// pre-reservoir behaviour). Reserved frames survive only in volatile
    /// state; after a crash, recovery reclaims them as leaked slab
    /// extents.
    pub slab_reservoir: usize,
    /// Number of independent large-allocation shards (power of two).
    /// Each shard owns a contiguous sub-heap, its own region list,
    /// extent freelists, and bookkeeping-log head, so large allocs,
    /// slab carves, and slab retires from different shards never
    /// contend. `0` (the default) sizes the shard count automatically
    /// from the arena count; `1` restores the single global large
    /// allocator. The effective count is clamped so every shard keeps a
    /// workable booklog slice and heap span.
    pub large_shards: usize,
    /// WAL capacity per arena, in entries.
    pub wal_entries: usize,
    /// Number of 8-byte root slots to reserve.
    pub roots: usize,
    /// Bytes reserved for the bookkeeping log region
    /// (paper: a 100 MB file; scaled to pool size by default).
    pub booklog_bytes: usize,
    /// Disable interleaving automatically when the pool is in eADR mode
    /// (the paper disables it via `pmem_has_auto_flush()`, §6.7).
    pub auto_eadr: bool,
    /// Record internal telemetry (event counters and op-latency
    /// histograms; see [`crate::telemetry`]). Recording is DRAM-side only
    /// and never perturbs the PM cost model, so it defaults to on.
    pub telemetry: bool,
    /// Record flight-recorder events (see [`crate::trace`]): per-thread
    /// lock-free ring buffers of binary events, exportable as a Chrome
    /// trace. Like telemetry, recording is DRAM-side and observational;
    /// it defaults to off because the rings cost
    /// `threads × trace_events_per_thread × 40` bytes of DRAM.
    pub trace: bool,
    /// Flight-recorder ring capacity per registered thread, in events.
    /// Oldest events are overwritten once a ring is full (surfaced by the
    /// `trace_dropped` metric).
    pub trace_events_per_thread: usize,
    /// Persist-ordering sanitizer ([`nvalloc_pmem::pmsan`]): every 64 B
    /// line carries a persist-state machine and ordering violations are
    /// recorded with flight-recorder context, counted in telemetry
    /// (`pmsan_*`), and reportable as JSON. Also enables crash-image
    /// enumeration windows. The sanitizer itself lives in the pool
    /// ([`nvalloc_pmem::PmemConfig::pmsan`] — it must size shadow state
    /// at pool construction); this knob declares intent at the allocator
    /// level and is reconciled to the pool's actual state at
    /// create/recover, so `config()` always reports what is running.
    /// Off by default: the shadow cells cost 8 B per 64 B of pool and a
    /// few atomics per persistence call.
    pub pmsan: bool,
    /// Timeline sampler tick interval in **virtual** nanoseconds
    /// ([`crate::observe`]); `0` (the default) disables the sampler.
    /// Ticks are driven by the virtual PM clock, so sampled runs stay
    /// deterministic and crash-matrix/pmsan-compatible. Sampling is
    /// read-only (DRAM-side, no persistence calls, no clock advance).
    pub timeline_interval_ns: u64,
    /// Max samples retained by the timeline ring (oldest dropped first).
    pub timeline_capacity: usize,
    /// Window of the large allocator's jemalloc-style extent decay
    /// schedule in **wall-clock** milliseconds (default 10 000). Decay
    /// is the one deliberately wall-clock-driven mechanism in the
    /// allocator; runs that must be bit-reproducible end to end (e.g.
    /// `fig_frag_timeline`) pin it to `u64::MAX`, which freezes the
    /// demotion threshold at its peak so no extent ever decays.
    pub decay_ms: u64,
    /// Enable the allocator service ([`crate::service`]): slow-path work
    /// — slab retires past a full reservoir, reservoir restock carves,
    /// idle-arena remote-queue drains, incremental booklog slow-GC,
    /// morph-candidate scans, extent decay, and occupancy-aware shard
    /// rebalancing — is submitted over per-arena MPSC request queues and
    /// executed at epoch ticks instead of inline on malloc/free. On
    /// wall-clock pools ([`nvalloc_pmem::LatencyMode::Sleep`]) a
    /// dedicated service thread runs the ticks; on virtual-clock pools
    /// ticks are claimed deterministically at operation boundaries (and
    /// tests may pump [`crate::NvAllocator::service_step`] directly), so
    /// crash-matrix and pmsan runs stay reproducible. Off by default.
    pub service: bool,
    /// Service epoch-tick interval in **virtual** nanoseconds on
    /// virtual-clock pools, and in wall-clock nanoseconds for the
    /// dedicated thread on sleep pools (default 50 µs).
    pub service_tick_ns: u64,
    /// Heap-profiler sampling period in bytes ([`crate::prof`]); `0`
    /// (the default) disables profiling. When non-zero, roughly one
    /// allocation per `profile_sample_bytes` allocated bytes is sampled:
    /// its call site is captured into the volatile site table and an
    /// attribution record is appended to the per-arena provenance
    /// sidelog. The value is persisted in the pool header at create and
    /// folded back at recover, so pool layout stays consistent across
    /// attaches. Sampling uses a deterministic byte countdown (no RNG),
    /// keeping same-seed virtual-clock runs byte-identical.
    pub profile_sample_bytes: u64,
}

impl NvConfig {
    /// NVAlloc-LOG with all three optimizations enabled (paper defaults).
    pub fn log() -> Self {
        NvConfig {
            variant: Variant::Log,
            stripes: 6,
            interleave_bitmap: true,
            interleave_tcache: true,
            interleave_wal: true,
            interleave_booklog: true,
            morphing: true,
            su_threshold: 0.20,
            log_bookkeeping: true,
            booklog_gc: true,
            usage_pmem: 0.002,
            arenas: 4,
            tcache_cap: 64,
            slab_reservoir: 8,
            large_shards: 0,
            wal_entries: 4096,
            roots: 1 << 16,
            booklog_bytes: 4 << 20,
            auto_eadr: true,
            telemetry: true,
            trace: false,
            trace_events_per_thread: 4096,
            pmsan: false,
            timeline_interval_ns: 0,
            timeline_capacity: 4096,
            decay_ms: 10_000,
            service: false,
            service_tick_ns: 50_000,
            profile_sample_bytes: 0,
        }
    }

    /// NVAlloc-GC with all optimizations enabled.
    pub fn gc() -> Self {
        NvConfig { variant: Variant::Gc, ..NvConfig::log() }
    }

    /// NVAlloc-IC (internal collection) with all optimizations enabled.
    pub fn internal() -> Self {
        NvConfig { variant: Variant::Internal, ..NvConfig::log() }
    }

    /// The "Base" configuration of Fig. 11: NVAlloc-LOG with every
    /// optimization disabled (sequential bitmaps, flat tcache, in-place
    /// extent headers, no morphing).
    pub fn base() -> Self {
        NvConfig {
            interleave_bitmap: false,
            interleave_tcache: false,
            interleave_wal: false,
            interleave_booklog: false,
            morphing: false,
            log_bookkeeping: false,
            ..NvConfig::log()
        }
    }

    /// Fig. 11 "+Interleaved": Base plus the interleaved tcache layout
    /// and bitmap mapping only.
    pub fn base_plus_interleaved() -> Self {
        NvConfig { interleave_bitmap: true, interleave_tcache: true, ..NvConfig::base() }
    }

    /// Fig. 11 "+Log": Base plus log-structured bookkeeping only.
    pub fn base_plus_log() -> Self {
        NvConfig { log_bookkeeping: true, ..NvConfig::base() }
    }

    /// Set the consistency variant.
    pub fn variant(mut self, v: Variant) -> Self {
        self.variant = v;
        self
    }

    /// Set the stripe count.
    pub fn stripes(mut self, s: usize) -> Self {
        self.stripes = s.max(1);
        self
    }

    /// Enable/disable slab morphing.
    pub fn morphing(mut self, on: bool) -> Self {
        self.morphing = on;
        self
    }

    /// Set the morphing space-utilisation threshold.
    pub fn su_threshold(mut self, su: f64) -> Self {
        self.su_threshold = su;
        self
    }

    /// Set the number of arenas.
    pub fn arenas(mut self, n: usize) -> Self {
        self.arenas = n.max(1);
        self
    }

    /// Enable/disable booklog GC.
    pub fn booklog_gc(mut self, on: bool) -> Self {
        self.booklog_gc = on;
        self
    }

    /// Set the slow-GC trigger threshold (fraction of pool size).
    pub fn usage_pmem(mut self, frac: f64) -> Self {
        self.usage_pmem = frac;
        self
    }

    /// Set the booklog region size in bytes.
    pub fn booklog_bytes(mut self, bytes: usize) -> Self {
        self.booklog_bytes = bytes;
        self
    }

    /// Set the number of root slots.
    pub fn roots(mut self, n: usize) -> Self {
        self.roots = n;
        self
    }

    /// Enable/disable internal telemetry recording.
    pub fn telemetry(mut self, on: bool) -> Self {
        self.telemetry = on;
        self
    }

    /// Enable/disable the flight recorder.
    pub fn trace(mut self, on: bool) -> Self {
        self.trace = on;
        self
    }

    /// Enable or disable the persist-ordering sanitizer
    /// ([`NvConfig::pmsan`]).
    pub fn pmsan(mut self, on: bool) -> Self {
        self.pmsan = on;
        self
    }

    /// Set the timeline sampler tick interval in virtual nanoseconds
    /// ([`NvConfig::timeline_interval_ns`]; 0 disables the sampler).
    pub fn timeline(mut self, interval_ns: u64) -> Self {
        self.timeline_interval_ns = interval_ns;
        self
    }

    /// Set the timeline ring capacity in samples
    /// ([`NvConfig::timeline_capacity`]).
    pub fn timeline_capacity(mut self, n: usize) -> Self {
        self.timeline_capacity = n.max(1);
        self
    }

    /// Set the extent-decay window in wall-clock milliseconds
    /// ([`NvConfig::decay_ms`]; `u64::MAX` disables decay for
    /// bit-reproducible runs).
    pub fn decay_ms(mut self, ms: u64) -> Self {
        self.decay_ms = ms.max(1);
        self
    }

    /// Enable/disable the allocator service ([`NvConfig::service`]).
    pub fn service(mut self, on: bool) -> Self {
        self.service = on;
        self
    }

    /// Set the service epoch-tick interval in nanoseconds
    /// ([`NvConfig::service_tick_ns`]).
    pub fn service_tick_ns(mut self, ns: u64) -> Self {
        self.service_tick_ns = ns.max(1);
        self
    }

    /// Set the heap-profiler sampling period in bytes
    /// ([`NvConfig::profile_sample_bytes`]; 0 disables profiling).
    pub fn profiling(mut self, sample_bytes: u64) -> Self {
        self.profile_sample_bytes = sample_bytes;
        self
    }

    /// Set the flight-recorder ring capacity per thread, in events.
    pub fn trace_events_per_thread(mut self, n: usize) -> Self {
        self.trace_events_per_thread = n.max(1);
        self
    }

    /// Set the per-arena slab reservoir size (0 disables it).
    pub fn slab_reservoir(mut self, n: usize) -> Self {
        self.slab_reservoir = n;
        self
    }

    /// Set the large-allocation shard count (rounded up to a power of
    /// two; 0 = auto-size from the arena count, 1 = single shard).
    pub fn large_shards(mut self, n: usize) -> Self {
        self.large_shards = n;
        self
    }

    /// Effective stripe count for a component, honouring per-component
    /// interleave toggles (1 stripe = sequential).
    pub(crate) fn stripes_for(&self, enabled: bool) -> usize {
        if enabled {
            self.stripes
        } else {
            1
        }
    }

    /// A short human-readable tag for benchmark tables.
    pub fn tag(&self) -> String {
        let v = match self.variant {
            Variant::Log => "LOG",
            Variant::Gc => "GC",
            Variant::Internal => "IC",
        };
        format!("NVAlloc-{v}")
    }
}

impl Default for NvConfig {
    fn default() -> Self {
        NvConfig::log()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_differ_as_documented() {
        let log = NvConfig::log();
        assert!(log.interleave_bitmap && log.log_bookkeeping && log.morphing);
        let base = NvConfig::base();
        assert!(!base.interleave_bitmap && !base.log_bookkeeping && !base.morphing);
        assert_eq!(base.variant, Variant::Log);
        let plus_i = NvConfig::base_plus_interleaved();
        assert!(plus_i.interleave_bitmap && !plus_i.log_bookkeeping);
        let plus_l = NvConfig::base_plus_log();
        assert!(!plus_l.interleave_bitmap && plus_l.log_bookkeeping);
        assert_eq!(NvConfig::gc().variant, Variant::Gc);
    }

    #[test]
    fn stripes_for_honours_toggle() {
        let c = NvConfig::log().stripes(6);
        assert_eq!(c.stripes_for(true), 6);
        assert_eq!(c.stripes_for(false), 1);
    }

    #[test]
    fn reservoir_defaults_on_and_shards_default_auto() {
        // PR 3 flips the slab reservoir on by default and adds sharding
        // (0 = auto-size from the arena count).
        let c = NvConfig::log();
        assert!(c.slab_reservoir > 0, "slab reservoir must default on");
        assert_eq!(c.large_shards, 0, "shards default to auto");
        assert_eq!(NvConfig::log().large_shards(3).large_shards, 3);
        assert_eq!(NvConfig::log().slab_reservoir(0).slab_reservoir, 0);
    }

    #[test]
    fn timeline_defaults_off() {
        let c = NvConfig::log();
        assert_eq!(c.timeline_interval_ns, 0, "timeline must default off");
        assert!(c.timeline_capacity > 0);
        let on = NvConfig::log().timeline(50_000).timeline_capacity(16);
        assert_eq!(on.timeline_interval_ns, 50_000);
        assert_eq!(on.timeline_capacity, 16);
        assert_eq!(NvConfig::log().timeline_capacity(0).timeline_capacity, 1);
    }

    #[test]
    fn service_defaults_off() {
        let c = NvConfig::log();
        assert!(!c.service, "service must default off");
        assert!(c.service_tick_ns > 0);
        let on = NvConfig::log().service(true).service_tick_ns(10_000);
        assert!(on.service);
        assert_eq!(on.service_tick_ns, 10_000);
        assert_eq!(NvConfig::log().service_tick_ns(0).service_tick_ns, 1);
    }

    #[test]
    fn profiling_defaults_off() {
        let c = NvConfig::log();
        assert_eq!(c.profile_sample_bytes, 0, "profiling must default off");
        let on = NvConfig::log().profiling(512 << 10);
        assert_eq!(on.profile_sample_bytes, 512 << 10);
    }

    #[test]
    fn tags() {
        assert_eq!(NvConfig::log().tag(), "NVAlloc-LOG");
        assert_eq!(NvConfig::gc().tag(), "NVAlloc-GC");
        assert_eq!(NvConfig::internal().tag(), "NVAlloc-IC");
    }
}
