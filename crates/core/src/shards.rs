//! Sharded large allocator: N independent [`LargeAlloc`] instances
//! ("region shards"), each owning a contiguous sub-heap, its own extent
//! freelists, and its own bookkeeping-log head, so extent-header updates
//! stay per-shard sequential appends (§5.3) instead of funnelling through
//! one global mutex.
//!
//! Published [`VehId`]s carry the owning shard's index in the bits above
//! [`VEH_LOCAL_BITS`], so a free routes straight to its shard without
//! consulting the address. Allocation starts at the caller's hint shard
//! (its arena id) and falls back round-robin to the others on
//! exhaustion; see [`ShardedLarge::shard_order`]. Every counted lock
//! acquisition first tries `try_lock` and records a contention event
//! when it has to block, which is what the fig22 CI gate watches.
//!
//! Recovery rebuilds the shards one by one in ascending shard-index
//! order: each shard's bookkeeping log (or region-table slice) is
//! replayed independently, so the merged extent list is deterministic
//! regardless of how allocations from different shards interleaved
//! before the crash (DESIGN.md §9).

use std::ops::{Deref, DerefMut};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
// nvalloc-lint: allow(determinism) — lock wait/hold profiling timestamps only; never feeds persistent state.
use std::time::Instant;

use parking_lot::{Mutex, MutexGuard};

use nvalloc_pmem::{PmError, PmOffset, PmResult, PmThread, PmemPool, TracerHandle};

use crate::booklog::BookLogStats;
use crate::large::{
    LargeAlloc, LargeConfig, LargeStats, RecoveredExtent, Veh, VehId, REGION_BYTES, VEH_LOCAL_BITS,
};
use crate::rtree::RTree;
use crate::size_class::SLAB_SIZE;
use crate::telemetry::{AtomicHistogram, LatencyHistogram};
use crate::trace::EventKind;

/// Upper bound on the shard count (the VehId tag field fits 256; 64 is
/// already past any arena count we simulate).
pub const MAX_SHARDS: usize = 64;

/// Smallest per-shard booklog slice worth operating (matches the
/// single-shard floor in `Layout::compute`).
pub const MIN_SHARD_BOOKLOG: usize = 64 << 10;

/// Smallest per-shard heap span: room for two 4 MB regions, so a shard
/// can always hold one slab-carving region plus one extent region.
pub const MIN_SHARD_HEAP: usize = 2 * REGION_BYTES;

/// N independent large-allocator shards with per-shard lock telemetry.
#[derive(Debug)]
pub(crate) struct ShardedLarge {
    shards: Vec<Mutex<LargeAlloc>>,
    /// Counted lock acquisitions per shard (allocation/free paths only;
    /// observer aggregates below don't count).
    acquires: Vec<AtomicU64>,
    /// Acquisitions that found the shard lock held and had to block.
    contended: Vec<AtomicU64>,
    /// Wall-clock nanoseconds counted acquisitions spent waiting,
    /// per shard.
    wait_ns: Vec<AtomicU64>,
    /// Wall-clock nanoseconds counted acquisitions held the shard lock,
    /// per shard.
    hold_ns: Vec<AtomicU64>,
    /// Log₂ histogram of per-acquisition wait times (all shards).
    wait_hist: AtomicHistogram,
    /// Log₂ histogram of per-acquisition hold times (all shards).
    hold_hist: AtomicHistogram,
    /// Overflow preference set by [`ShardedLarge::rebalance`]: the
    /// least-loaded shard by counted acquire/contention score, probed
    /// right after the hint shard in [`ShardedLarge::shard_order`].
    /// `usize::MAX` = unset (the allocator service is off) — probe
    /// order is then exactly the pre-service round-robin.
    cold_hint: AtomicUsize,
}

/// A counted shard-lock guard. Dereferences to the shard's
/// [`LargeAlloc`]; on drop it charges the measured wait/hold
/// nanoseconds to the shard's counters and histograms and, when the
/// locking thread had a flight-recorder handle attached, emits one
/// `LockAcquire` event stamped at the acquisition's virtual-clock time.
pub(crate) struct ShardGuard<'a> {
    guard: MutexGuard<'a, LargeAlloc>,
    owner: &'a ShardedLarge,
    shard: usize,
    wait_ns: u64,
    /// Virtual-clock time of the acquisition (trace timestamp).
    at_ns: u64,
    tracer: Option<TracerHandle>,
    held: Instant,
}

impl Deref for ShardGuard<'_> {
    type Target = LargeAlloc;
    fn deref(&self) -> &LargeAlloc {
        &self.guard
    }
}

impl DerefMut for ShardGuard<'_> {
    fn deref_mut(&mut self) -> &mut LargeAlloc {
        &mut self.guard
    }
}

impl Drop for ShardGuard<'_> {
    fn drop(&mut self) {
        // Runs before the inner `MutexGuard` field drops, so the hold
        // time is measured while the lock is still held.
        let hold = self.held.elapsed().as_nanos() as u64;
        self.owner.wait_ns[self.shard].fetch_add(self.wait_ns, Ordering::Relaxed);
        self.owner.hold_ns[self.shard].fetch_add(hold, Ordering::Relaxed);
        self.owner.wait_hist.record(self.wait_ns);
        self.owner.hold_hist.record(hold);
        if let Some(t) = &self.tracer {
            t.emit(self.at_ns, EventKind::LockAcquire.code(), self.wait_ns, hold);
        }
    }
}

impl ShardedLarge {
    /// The shard index encoded in a published [`VehId`].
    #[inline]
    pub fn shard_of(id: VehId) -> usize {
        (id >> VEH_LOCAL_BITS) as usize
    }

    /// Split `base` (the whole large area) into `n` per-shard configs:
    /// disjoint heap spans (slab-aligned; the last shard takes the
    /// remainder), booklog slices (4 KB-aligned), region-table slices
    /// (8-byte aligned), a divided slow-GC threshold, and the shard tag.
    pub(crate) fn shard_cfgs(base: &LargeConfig, n: usize) -> Vec<LargeConfig> {
        assert!((1..=MAX_SHARDS).contains(&n) && n.is_power_of_two(), "bad shard count {n}");
        if n == 1 {
            let mut c = base.clone();
            c.shard_tag = 0;
            return vec![c];
        }
        let span = (base.heap_bytes / n) & !(SLAB_SIZE - 1);
        let bl = (base.booklog_bytes / n) & !4095;
        let rt = (base.region_table_bytes / n) & !7;
        assert!(span > 0 && (!base.log_bookkeeping || bl > 0), "shard slices must be non-empty");
        (0..n)
            .map(|i| {
                let last = i == n - 1;
                LargeConfig {
                    heap_base: base.heap_base + (i * span) as u64,
                    heap_bytes: if last { base.heap_bytes - (n - 1) * span } else { span },
                    booklog_base: base.booklog_base + (i * bl) as u64,
                    booklog_bytes: bl,
                    region_table_base: base.region_table_base + (i * rt) as u64,
                    region_table_bytes: rt,
                    slow_gc_threshold: (base.slow_gc_threshold / n).max(4096),
                    shard_tag: (i as u32) << VEH_LOCAL_BITS,
                    ..base.clone()
                }
            })
            .collect()
    }

    /// Create `n` fresh shards over the (empty) large area described by
    /// `base`.
    pub fn new(pool: &PmemPool, base: LargeConfig, n: usize, rtree: &Arc<RTree>) -> Self {
        let shards = Self::shard_cfgs(&base, n)
            .into_iter()
            .map(|c| Mutex::new(LargeAlloc::new(pool, c, Arc::clone(rtree))))
            .collect::<Vec<_>>();
        Self::with_shards(shards, n)
    }

    fn with_shards(shards: Vec<Mutex<LargeAlloc>>, n: usize) -> Self {
        ShardedLarge {
            shards,
            acquires: (0..n).map(|_| AtomicU64::new(0)).collect(),
            contended: (0..n).map(|_| AtomicU64::new(0)).collect(),
            wait_ns: (0..n).map(|_| AtomicU64::new(0)).collect(),
            hold_ns: (0..n).map(|_| AtomicU64::new(0)).collect(),
            wait_hist: AtomicHistogram::default(),
            hold_hist: AtomicHistogram::default(),
            cold_hint: AtomicUsize::new(usize::MAX),
        }
    }

    /// Recover all shards from a (possibly crashed) pool image. Shards
    /// are replayed in ascending index order and their live extents
    /// concatenated in that order, so the merge is deterministic.
    pub fn recover(
        pool: &PmemPool,
        base: LargeConfig,
        n: usize,
        rtree: &Arc<RTree>,
    ) -> (Self, Vec<RecoveredExtent>) {
        let mut shards = Vec::with_capacity(n);
        let mut extents = Vec::new();
        for c in Self::shard_cfgs(&base, n) {
            let (la, mut ex) = LargeAlloc::recover(pool, c, Arc::clone(rtree));
            shards.push(Mutex::new(la));
            extents.append(&mut ex);
        }
        (Self::with_shards(shards, n), extents)
    }

    /// Number of shards.
    #[inline]
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Lock shard `i`, counting the acquisition, whether it contended,
    /// and (via the returned guard) the wall-clock wait/hold times.
    pub fn lock(&self, i: usize) -> ShardGuard<'_> {
        self.lock_impl(i, None, 0)
    }

    /// Like [`ShardedLarge::lock`], but the guard additionally emits a
    /// `LockAcquire` flight-recorder event on release when `pm` has a
    /// tracer attached. The `pm` borrow ends at return (the guard keeps
    /// a cloned handle), so callers may use the thread mutably inside
    /// the critical section.
    pub fn lock_traced<'s>(&'s self, i: usize, pm: &PmThread) -> ShardGuard<'s> {
        self.lock_impl(i, pm.tracer().cloned(), pm.virtual_ns())
    }

    fn lock_impl(&self, i: usize, tracer: Option<TracerHandle>, at_ns: u64) -> ShardGuard<'_> {
        self.acquires[i].fetch_add(1, Ordering::Relaxed);
        let wait = Instant::now();
        let guard = match self.shards[i].try_lock() {
            Some(g) => g,
            None => {
                self.contended[i].fetch_add(1, Ordering::Relaxed);
                self.shards[i].lock()
            }
        };
        ShardGuard {
            guard,
            owner: self,
            shard: i,
            wait_ns: wait.elapsed().as_nanos() as u64,
            at_ns,
            tracer,
            held: Instant::now(),
        }
    }

    /// Lock the shard owning `id`; `None` for an id whose shard index is
    /// out of range (corrupt or foreign handle).
    pub fn lock_veh(&self, id: VehId) -> Option<ShardGuard<'_>> {
        let idx = Self::shard_of(id);
        (idx < self.shards.len()).then(|| self.lock(idx))
    }

    /// [`ShardedLarge::lock_veh`] with the tracing behaviour of
    /// [`ShardedLarge::lock_traced`].
    pub fn lock_veh_traced<'s>(&'s self, id: VehId, pm: &PmThread) -> Option<ShardGuard<'s>> {
        let idx = Self::shard_of(id);
        (idx < self.shards.len()).then(|| self.lock_traced(idx, pm))
    }

    /// Allocation probe order: the hint shard (caller's arena id, wrapped
    /// to the shard count) first, then the rebalancer's cold shard when
    /// one has been published, then every other shard ascending —
    /// round-robin-with-fallback.
    pub fn shard_order(&self, hint: usize) -> impl Iterator<Item = usize> + use<> {
        let n = self.shards.len();
        let h = hint & (n - 1);
        let cold = self.cold_hint.load(Ordering::Relaxed);
        let c = (cold < n && cold != h).then_some(cold);
        std::iter::once(h).chain(c).chain((0..n).filter(move |&i| i != h && Some(i) != c))
    }

    /// Recompute the overflow preference from the counted per-shard lock
    /// telemetry: the shard with the lowest acquire/contention score
    /// becomes the cold shard that [`ShardedLarge::shard_order`] probes
    /// second. Returns `true` when the preference changed. Called from
    /// the allocator service's epoch tick; occupancy-aware because a
    /// shard that keeps losing `try_lock` (or keeps being probed) scores
    /// itself out of the overflow slot.
    pub fn rebalance(&self) -> bool {
        let n = self.shards.len();
        if n < 2 {
            return false;
        }
        let mut best = 0usize;
        let mut best_score = u64::MAX;
        for i in 0..n {
            // Contended acquisitions cost far more than clean ones;
            // weight them so a hot-but-rarely-blocked shard still beats
            // a convoyed one.
            let score = self.acquires[i].load(Ordering::Relaxed)
                + 64 * self.contended[i].load(Ordering::Relaxed);
            if score < best_score {
                best_score = score;
                best = i;
            }
        }
        self.cold_hint.swap(best, Ordering::Relaxed) != best
    }

    /// One incremental maintenance pass over the shards: booklog slow-GC
    /// where its dead-bytes threshold was crossed, plus the deferred
    /// extent-decay schedule. `try_lock` only — shards busy serving a
    /// worker are skipped until the next epoch.
    pub fn maintain(&self, pool: &PmemPool, t: &mut PmThread) {
        for s in &self.shards {
            if let Some(mut g) = s.try_lock() {
                // Best-effort: a shard whose GC hits OOM just retries
                // at a later epoch.
                let _ = g.maintain(pool, t);
            }
        }
    }

    /// Free `id` in its owning shard. Ids with an out-of-range shard
    /// index fail like any other stale handle.
    pub fn free(&self, pool: &PmemPool, t: &mut PmThread, id: VehId) -> PmResult<()> {
        match self.lock_veh(id) {
            Some(mut g) => g.free(pool, t, id),
            None => Err(PmError::NotAllocated),
        }
    }

    /// Clone of the VEH behind a published id, if live.
    pub fn veh(&self, id: VehId) -> Option<Veh> {
        let idx = Self::shard_of(id);
        self.shards.get(idx)?.lock().veh(id).cloned()
    }

    /// Every active extent across all shards, in shard order.
    pub fn active_extents(&self) -> Vec<(VehId, PmOffset, bool)> {
        self.shards.iter().flat_map(|s| s.lock().active_extents()).collect()
    }

    /// Total mapped heap bytes across shards.
    pub fn mapped_bytes(&self) -> usize {
        self.shards.iter().map(|s| s.lock().mapped_bytes()).sum()
    }

    /// Sum of per-shard mapped-bytes high-water marks (an upper bound on
    /// the true global peak, since shards peak independently).
    pub fn peak_mapped(&self) -> usize {
        self.shards.iter().map(|s| s.lock().peak_mapped()).sum()
    }

    /// Booklog statistics summed across shards (`None` when the booklog
    /// is disabled — the flag is uniform across shards).
    pub fn booklog_stats(&self) -> Option<BookLogStats> {
        let mut acc: Option<BookLogStats> = None;
        for s in &self.shards {
            if let Some(b) = s.lock().booklog_stats() {
                let a = acc.get_or_insert_with(BookLogStats::default);
                a.fast_gc_runs += b.fast_gc_runs;
                a.fast_gc_chunks += b.fast_gc_chunks;
                a.slow_gc_runs += b.slow_gc_runs;
                a.slow_gc_copied += b.slow_gc_copied;
                a.appends += b.appends;
                a.tombstones += b.tombstones;
                a.alt_flips += b.alt_flips;
            }
        }
        acc
    }

    /// Per-shard occupancy gauges for the timeline sampler, in shard
    /// order (uncounted raw locks, like the other observer aggregates).
    pub fn gauges(&self) -> Vec<crate::observe::ShardGauge> {
        self.shards.iter().map(|s| s.lock().gauge()).collect()
    }

    /// Extent-allocator counters summed across shards (histograms
    /// merged).
    pub fn stats(&self) -> LargeStats {
        let mut acc = LargeStats::default();
        for s in &self.shards {
            let g = s.lock();
            let st = g.stats();
            acc.best_fit_hits += st.best_fit_hits;
            acc.splits += st.splits;
            acc.coalesces += st.coalesces;
            acc.decay_epochs += st.decay_epochs;
            acc.slow_gc_hist.merge(&st.slow_gc_hist);
        }
        acc
    }

    /// Force a full decay pass on every shard.
    pub fn drain_free_lists(&self, pool: &PmemPool, t: &mut PmThread) -> PmResult<()> {
        for s in &self.shards {
            s.lock().drain_free_lists(pool, t)?;
        }
        Ok(())
    }

    /// Per-shard (acquires, contended) lock counters.
    pub fn lock_counts(&self) -> (Vec<u64>, Vec<u64>) {
        (
            self.acquires.iter().map(|a| a.load(Ordering::Relaxed)).collect(),
            self.contended.iter().map(|c| c.load(Ordering::Relaxed)).collect(),
        )
    }

    /// Total wall-clock (wait, hold) nanoseconds across all counted
    /// shard-lock acquisitions.
    pub fn lock_times(&self) -> (u64, u64) {
        (
            self.wait_ns.iter().map(|a| a.load(Ordering::Relaxed)).sum(),
            self.hold_ns.iter().map(|a| a.load(Ordering::Relaxed)).sum(),
        )
    }

    /// Snapshots of the (wait, hold) per-acquisition time histograms.
    pub fn lock_time_hists(&self) -> (LatencyHistogram, LatencyHistogram) {
        (self.wait_hist.snapshot(), self.hold_hist.snapshot())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nvalloc_pmem::{LatencyMode, PmemConfig};

    fn base_cfg() -> LargeConfig {
        LargeConfig {
            heap_base: 8 << 20,
            heap_bytes: 120 << 20,
            log_bookkeeping: true,
            booklog_base: 4096,
            booklog_bytes: 4 << 20,
            booklog_stripes: 6,
            booklog_gc: true,
            slow_gc_threshold: 1 << 20,
            decay_ms: 10_000,
            region_table_base: 6 << 20,
            region_table_bytes: 64 << 10,
            shard_tag: 0,
        }
    }

    fn setup(n: usize) -> (Arc<PmemPool>, ShardedLarge, PmThread) {
        let pool = PmemPool::new(
            PmemConfig::default().pool_size(128 << 20).latency_mode(LatencyMode::Off),
        );
        let t = pool.register_thread();
        let rtree = Arc::new(RTree::new());
        let sl = ShardedLarge::new(&pool, base_cfg(), n, &rtree);
        (pool, sl, t)
    }

    #[test]
    fn shard_cfgs_partition_the_area() {
        let base = base_cfg();
        let cfgs = ShardedLarge::shard_cfgs(&base, 4);
        assert_eq!(cfgs.len(), 4);
        // Heap spans: disjoint, ordered, covering exactly the base span.
        let mut cursor = base.heap_base;
        let mut total = 0usize;
        for (i, c) in cfgs.iter().enumerate() {
            assert_eq!(c.heap_base, cursor, "shard {i} heap must abut its predecessor");
            assert_eq!(c.heap_base % SLAB_SIZE as u64, 0);
            assert_eq!(c.shard_tag, (i as u32) << VEH_LOCAL_BITS);
            cursor += c.heap_bytes as u64;
            total += c.heap_bytes;
        }
        assert_eq!(total, base.heap_bytes, "spans must cover the whole heap");
        // Booklog slices: disjoint and within the base region.
        for w in cfgs.windows(2) {
            assert!(w[0].booklog_base + w[0].booklog_bytes as u64 <= w[1].booklog_base);
        }
        let last = cfgs.last().unwrap();
        assert!(
            last.booklog_base + last.booklog_bytes as u64
                <= base.booklog_base + base.booklog_bytes as u64
        );
    }

    #[test]
    fn single_shard_is_untagged_passthrough() {
        let cfgs = ShardedLarge::shard_cfgs(&base_cfg(), 1);
        assert_eq!(cfgs.len(), 1);
        assert_eq!(cfgs[0].shard_tag, 0);
        assert_eq!(cfgs[0].heap_bytes, base_cfg().heap_bytes);
    }

    #[test]
    fn ids_route_to_their_shard() {
        let (pool, sl, mut t) = setup(4);
        let mut ids = Vec::new();
        for s in 0..4 {
            let (id, off) = sl.lock(s).alloc(&pool, &mut t, 64 << 10, false).unwrap();
            assert_eq!(ShardedLarge::shard_of(id), s, "published id must carry shard {s}");
            assert!(off >= sl.lock(s).veh(id).unwrap().off);
            ids.push(id);
        }
        // Frees route by id: every one succeeds exactly once.
        for id in ids {
            sl.free(&pool, &mut t, id).unwrap();
            assert!(sl.free(&pool, &mut t, id).is_err(), "double free must fail");
        }
    }

    #[test]
    fn alloc_falls_back_across_shards() {
        let (pool, sl, mut t) = setup(2);
        // Exhaust shard 0 with 1 MB extents.
        let mut got0 = 0;
        loop {
            match sl.lock(0).alloc(&pool, &mut t, 1 << 20, false) {
                Ok(_) => got0 += 1,
                Err(PmError::OutOfMemory { .. }) => break,
                Err(e) => panic!("unexpected {e}"),
            }
            assert!(got0 < 10_000);
        }
        // The fallback order starting at shard 0 still finds room (in
        // shard 1).
        let order: Vec<usize> = sl.shard_order(0).collect();
        assert_eq!(order, vec![0, 1]);
        let mut served = None;
        for s in sl.shard_order(0) {
            if let Ok((id, _)) = sl.lock(s).alloc(&pool, &mut t, 1 << 20, false) {
                served = Some((s, id));
                break;
            }
        }
        let (s, id) = served.expect("shard 1 must have space");
        assert_eq!(s, 1);
        assert_eq!(ShardedLarge::shard_of(id), 1);
    }

    #[test]
    fn shard_order_covers_all_shards_once() {
        let (_pool, sl, _t) = setup(4);
        for hint in 0..8 {
            let mut order: Vec<usize> = sl.shard_order(hint).collect();
            assert_eq!(order[0], hint & 3, "hint shard first");
            order.sort_unstable();
            assert_eq!(order, vec![0, 1, 2, 3], "every shard exactly once");
        }
    }

    #[test]
    fn lock_counters_track_acquires_and_contention() {
        let (pool, sl, mut t) = setup(2);
        let (id, _) = sl.lock(0).alloc(&pool, &mut t, 64 << 10, false).unwrap();
        sl.free(&pool, &mut t, id).unwrap();
        let (acq, cont) = sl.lock_counts();
        assert_eq!(acq[0], 2, "alloc + free on shard 0");
        assert_eq!(acq[1], 0, "shard 1 untouched");
        assert_eq!(cont, vec![0, 0], "uncontended run");
        // Hold shard 0 on another thread; a counted lock must register
        // contention.
        let sl = Arc::new(sl);
        let held = Arc::new(std::sync::Barrier::new(2));
        std::thread::scope(|s| {
            let sl2 = Arc::clone(&sl);
            let held2 = Arc::clone(&held);
            s.spawn(move || {
                let _g = sl2.shards[0].lock();
                held2.wait(); // holder in place
                std::thread::sleep(std::time::Duration::from_millis(20));
            });
            held.wait();
            let _g = sl.lock(0); // must block, then succeed
        });
        let (_, cont) = sl.lock_counts();
        assert_eq!(cont[0], 1, "blocking acquisition must count as contended");
    }

    #[test]
    fn lock_times_accumulate_wait_and_hold() {
        let (pool, sl, mut t) = setup(2);
        assert_eq!(sl.lock_times(), (0, 0), "fresh shards have no lock time");
        {
            let mut g = sl.lock(0);
            g.alloc(&pool, &mut t, 64 << 10, false).unwrap();
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        let (wait, hold) = sl.lock_times();
        assert!(hold >= 1_000_000, "guard held ≥2 ms must register ({hold} ns)");
        // Uncontended wait is tiny but the probe still ran: both
        // histograms carry exactly the one acquisition.
        let (wh, hh) = sl.lock_time_hists();
        assert_eq!(wh.count(), 1);
        assert_eq!(hh.count(), 1);
        // A blocked acquisition accumulates real wait time.
        let sl = Arc::new(sl);
        let held = Arc::new(std::sync::Barrier::new(2));
        std::thread::scope(|s| {
            let sl2 = Arc::clone(&sl);
            let held2 = Arc::clone(&held);
            s.spawn(move || {
                let _g = sl2.lock(0);
                held2.wait();
                std::thread::sleep(std::time::Duration::from_millis(10));
            });
            held.wait();
            let _g = sl.lock(0);
        });
        let (wait2, _) = sl.lock_times();
        assert!(wait2 > wait + 1_000_000, "blocked lock must add ≥ the holder's sleep to wait");
        let (wh, _) = sl.lock_time_hists();
        assert_eq!(wh.count(), 3, "three counted acquisitions in total");
    }

    #[test]
    fn aggregates_sum_across_shards() {
        let (pool, sl, mut t) = setup(4);
        for s in 0..4 {
            sl.lock(s).alloc(&pool, &mut t, 64 << 10, false).unwrap();
        }
        assert_eq!(sl.active_extents().len(), 4);
        assert_eq!(sl.mapped_bytes(), 4 * REGION_BYTES, "one region mapped per shard");
        let b = sl.booklog_stats().expect("log mode");
        assert_eq!(b.appends, 4, "one booklog append per shard");
    }

    #[test]
    fn recover_merges_shards_deterministically() {
        let (pool, sl, mut t) = setup(4);
        // Interleave allocations across shards in a scrambled order.
        let mut live = Vec::new();
        for (i, s) in [2usize, 0, 3, 1, 0, 2].iter().enumerate() {
            let (id, off) = sl.lock(*s).alloc(&pool, &mut t, (16 + i) << 10, false).unwrap();
            live.push((id, off));
        }
        drop(sl);
        let rtree = Arc::new(RTree::new());
        let recover_once = || {
            let (_sl, ex) = ShardedLarge::recover(&pool, base_cfg(), 4, &Arc::new(RTree::new()));
            ex
        };
        let ex1 = recover_once();
        let ex2 = recover_once();
        assert_eq!(ex1, ex2, "recovery merge order must be deterministic");
        assert_eq!(ex1.len(), live.len());
        // Extents arrive grouped by ascending shard index.
        let shards_seen: Vec<usize> = ex1.iter().map(|e| ShardedLarge::shard_of(e.veh)).collect();
        let mut sorted = shards_seen.clone();
        sorted.sort_unstable();
        assert_eq!(shards_seen, sorted, "merge must be in shard order");
        // Every live extent survived with its offset.
        let (sl, _) = ShardedLarge::recover(&pool, base_cfg(), 4, &rtree);
        for (id, off) in live {
            let v = sl.veh(id).expect("extent must survive recovery");
            assert_eq!(v.off, off);
        }
    }
}
