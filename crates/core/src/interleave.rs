//! The interleaved-mapping helper (§5.1) shared by slab bitmaps, WAL entry
//! placement, and bookkeeping-log entry placement.
//!
//! Given `n` logical slots that live in a region of cache lines, a plain
//! ("sequential") layout puts consecutive slots next to each other, so
//! consecutive updates hit the same cache line and reflush it. The
//! interleaved layout spreads consecutive logical slots across `stripes`
//! different cache lines.
//!
//! For slot granularities smaller than a line (bitmap bits, 8 B log
//! entries, 16 B WAL entries) the region is viewed as *windows* of
//! `stripes` cache lines. Within a window holding `stripes * per_line`
//! slots, logical slot `q` maps to line `q % stripes`, position
//! `q / stripes` — so slots `q` and `q+1` always land on different lines
//! (when `stripes > 1`).

/// A bijective mapping from logical slot index to physical slot index for
/// `n` slots of which `per_line` fit in one cache line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interleave {
    n: usize,
    per_line: usize,
    stripes: usize,
}

impl Interleave {
    /// Create a mapping. `stripes == 1` (or `per_line == 1`) degenerates to
    /// the identity (sequential) mapping.
    ///
    /// # Panics
    /// Panics if any argument is zero.
    pub fn new(n: usize, per_line: usize, stripes: usize) -> Self {
        assert!(n > 0 && per_line > 0 && stripes > 0, "Interleave arguments must be nonzero");
        Interleave { n, per_line, stripes }
    }

    /// Number of logical slots.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True if the mapping covers no slots (never: `n > 0` is enforced).
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Map logical slot `i` to its physical slot index.
    ///
    /// # Panics
    /// Panics (debug) if `i >= len()`.
    #[inline]
    pub fn physical(&self, i: usize) -> usize {
        debug_assert!(i < self.n);
        let s = self.stripes;
        if s == 1 || self.per_line == 1 {
            return i;
        }
        let window_slots = s * self.per_line;
        let window = i / window_slots;
        let q = i % window_slots;
        let base = window * window_slots;
        // The final window may be partial; only interleave the full part so
        // the mapping stays within bounds and bijective.
        let remaining = self.n - base;
        if remaining >= window_slots {
            base + (q % s) * self.per_line + q / s
        } else {
            // Partial tail window: interleave over however many *full* lines
            // fit, identity for the rest.
            let full_lines = remaining / self.per_line;
            if full_lines >= 2 && q < full_lines * self.per_line {
                base + (q % full_lines) * self.per_line + q / full_lines
            } else {
                base + q
            }
        }
    }

    /// Map a physical slot index back to its logical index (inverse of
    /// [`Interleave::physical`]).
    #[inline]
    pub fn logical(&self, p: usize) -> usize {
        debug_assert!(p < self.n);
        let s = self.stripes;
        if s == 1 || self.per_line == 1 {
            return p;
        }
        let window_slots = s * self.per_line;
        let window = p / window_slots;
        let r = p % window_slots;
        let base = window * window_slots;
        let remaining = self.n - base;
        if remaining >= window_slots {
            base + (r % self.per_line) * s + r / self.per_line
        } else {
            let full_lines = remaining / self.per_line;
            if full_lines >= 2 && r < full_lines * self.per_line {
                base + (r % self.per_line) * full_lines + r / self.per_line
            } else {
                base + r
            }
        }
    }

    /// The stripe (cache line within its window) a logical slot maps to.
    /// Used by the tcache to group blocks whose bits share a cache line.
    #[inline]
    pub fn stripe_of(&self, i: usize) -> usize {
        if self.stripes == 1 || self.per_line == 1 {
            return 0;
        }
        let window_slots = self.stripes * self.per_line;
        let base = i / window_slots * window_slots;
        let remaining = self.n - base;
        let q = i % window_slots;
        if remaining >= window_slots {
            q % self.stripes
        } else {
            let full_lines = remaining / self.per_line;
            if full_lines >= 2 && q < full_lines * self.per_line {
                q % full_lines
            } else {
                // Tail slots share the final line; stripe 0 is fine.
                0
            }
        }
    }

    /// Number of stripes (1 = sequential layout).
    pub fn stripes(&self) -> usize {
        self.stripes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_bijective(m: &Interleave) {
        let mut seen = vec![false; m.len()];
        for i in 0..m.len() {
            let p = m.physical(i);
            assert!(p < m.len(), "physical {p} out of range for logical {i}");
            assert!(!seen[p], "slot {p} mapped twice");
            seen[p] = true;
            assert_eq!(m.logical(p), i, "inverse failed at {i}");
        }
    }

    #[test]
    fn sequential_is_identity() {
        let m = Interleave::new(100, 8, 1);
        for i in 0..100 {
            assert_eq!(m.physical(i), i);
        }
    }

    #[test]
    fn bijective_exact_windows() {
        assert_bijective(&Interleave::new(8 * 6 * 4, 8, 6));
    }

    #[test]
    fn bijective_partial_tail() {
        for n in [1, 5, 7, 13, 100, 121, 127, 300] {
            for s in [1, 2, 4, 6, 8] {
                for per_line in [1, 8, 512] {
                    assert_bijective(&Interleave::new(n, per_line, s));
                }
            }
        }
    }

    #[test]
    fn consecutive_slots_hit_different_lines() {
        // The whole point: logical i and i+1 land in different cache lines
        // (within full windows).
        let per_line = 8;
        let m = Interleave::new(per_line * 6 * 10, per_line, 6);
        for i in 0..m.len() - 1 {
            let line_a = m.physical(i) / per_line;
            let line_b = m.physical(i + 1) / per_line;
            assert_ne!(line_a, line_b, "slots {i},{} share line {line_a}", i + 1);
        }
    }

    #[test]
    fn stripe_of_matches_physical_line_within_window() {
        let per_line = 8;
        let s = 4;
        let m = Interleave::new(per_line * s * 3, per_line, s);
        for i in 0..m.len() {
            let window_slots = per_line * s;
            let line_in_window = m.physical(i) % window_slots / per_line;
            assert_eq!(m.stripe_of(i), line_in_window);
        }
    }

    #[test]
    fn reflush_distance_improved() {
        // Simulate flushing the line of each consecutive slot and measure
        // the minimum gap between repeats: sequential = 0, interleaved >= 3.
        let gap = |stripes: usize| {
            let m = Interleave::new(8 * 6 * 4, 8, stripes);
            let lines: Vec<usize> = (0..m.len()).map(|i| m.physical(i) / 8).collect();
            let mut min_gap = usize::MAX;
            for (i, l) in lines.iter().enumerate() {
                for (j, l2) in lines.iter().enumerate().skip(i + 1) {
                    if l == l2 {
                        min_gap = min_gap.min(j - i - 1);
                        break;
                    }
                }
            }
            min_gap
        };
        assert_eq!(gap(1), 0);
        assert!(gap(6) >= 5, "6 stripes must give reflush distance >= 5");
    }
}
