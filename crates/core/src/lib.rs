//! NVAlloc: a persistent-memory allocator that rethinks heap metadata
//! management (reproduction of Dang et al., ASPLOS 2022).
//!
//! NVAlloc serves `malloc`/`free` on an emulated persistent-memory pool
//! ([`nvalloc_pmem::PmemPool`]) and attacks three metadata pathologies of
//! prior PM allocators:
//!
//! 1. **Cache-line reflushes** — consecutive small allocations update
//!    adjacent bitmap bits and WAL slots, re-flushing the same cache line.
//!    NVAlloc *interleaves* the mapping from blocks to bitmap bits across
//!    bit stripes in different cache lines (§5.1) and splits the thread
//!    cache into per-stripe sub-tcaches served round-robin.
//! 2. **Small random metadata writes** — in-place extent-header updates
//!    scatter small writes across the heap. NVAlloc appends 8-byte records
//!    to a *log-structured bookkeeping log* instead (§5.3).
//! 3. **Segregation-induced fragmentation** — static slab size classes
//!    strand free space. NVAlloc *morphs* mostly-empty slabs into another
//!    size class while old-class blocks are still live (§5.2).
//!
//! Two crash-consistency variants are provided: [`Variant::Log`]
//! (write-ahead logging; strongly consistent) and [`Variant::Gc`]
//! (post-crash conservative garbage collection; weakly consistent).
//!
//! # Quick start
//!
//! ```
//! use std::sync::Arc;
//! use nvalloc::{NvAllocator, NvConfig};
//! use nvalloc::api::{AllocThread, PmAllocator};
//! use nvalloc_pmem::{PmemConfig, PmemPool, LatencyMode};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let pool = PmemPool::new(PmemConfig::default()
//!     .pool_size(32 << 20)
//!     .latency_mode(LatencyMode::Off));
//! let alloc = NvAllocator::create(Arc::clone(&pool), NvConfig::log())?;
//! let mut t = alloc.thread();
//!
//! // Allocate 100 bytes and attach them to root slot 0, atomically.
//! let root = alloc.root_offset(0);
//! let block = t.malloc_to(100, root)?;
//! assert_eq!(pool.read_u64(root), block);
//! t.free_from(root)?;
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod api;
mod arena;
mod bitmap;
mod booklog;
mod config;
pub mod doctor;
mod front;
mod geometry;
pub mod global;
mod interleave;
mod large;
mod morph;
pub mod observe;
pub mod prof;
mod recovery;
mod remote;
mod rtree;
pub mod service;
mod shards;
mod size_class;
mod slab;
mod tcache;
pub mod telemetry;
pub mod trace;
mod wal;

pub use config::{NvConfig, Variant};
pub use front::{NvAllocator, NvThread, RecoveryReport, SlabUtilization};
pub use global::GlobalNv;
pub use size_class::{class_size, size_to_class, ClassId, LARGE_MIN, NUM_CLASSES, SLAB_SIZE};

/// Building blocks shared with the baseline allocators in
/// `nvalloc-baselines` (extent management, bitmaps, geometry, the address
/// radix tree). Semver-exempt: these are implementation details exposed so
/// every allocator in the workspace runs on identical substrate machinery,
/// isolating the *policy* differences the paper measures.
pub mod internals {
    pub use crate::bitmap::{BitmapLayout, PmBitmap};
    pub use crate::booklog::{
        ChunkHeaderRaw, LogHeaderRaw, CHUNK_BYTES, CHUNK_HEADER_BYTES, LOG_HEADER_BYTES,
    };
    pub use crate::geometry::{GeometryTable, SlabGeometry, SLAB_FIXED_HEADER};
    pub use crate::interleave::Interleave;
    pub use crate::large::{
        smootherstep, ExtentState, LargeAlloc, LargeConfig, LargeStats, RecoveredExtent, Veh,
        VehId, HUGE_MIN, PAGE, REGION_BYTES, REGION_HEADER_BYTES, VEH_LOCAL_BITS, VEH_LOCAL_MASK,
    };
    pub use crate::prof::{
        ProfLogHeaderRaw, ProfRecordRaw, PROF_HALF_RECORDS, PROF_LOG_BYTES, PROF_LOG_HEADER_BYTES,
        PROF_RECORD_BYTES,
    };
    pub use crate::rtree::{Owner, RTree};
    pub use crate::size_class::CLASS_SIZES;
    pub use crate::slab::SlabHeaderRaw;
    pub use crate::wal::{WalEntryRaw, WAL_ENTRY_BYTES};
}

pub use nvalloc_pmem::{PmError, PmOffset, PmResult};

/// Round `x` up to a multiple of power-of-two `a`.
pub(crate) fn align_up64(x: u64, a: u64) -> u64 {
    debug_assert!(a.is_power_of_two());
    (x + a - 1) & !(a - 1)
}
