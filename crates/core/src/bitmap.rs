//! Persistent slab bitmaps with interleaved bit-stripe mapping (§5.1).
//!
//! A slab bitmap has one bit per block. In the *sequential* layout (1
//! stripe), bit *i* belongs to block *i*, so consecutive allocations update
//! adjacent bits in the same cache line and reflush it. In the
//! *interleaved* layout, the bitmap is divided into `S` bit stripes, each
//! occupying its own cache-line-aligned region; block *i* maps to stripe
//! `i mod S`, index `i / S` within the stripe. Consecutive blocks therefore
//! update bits in different cache lines.
//!
//! The layout deliberately *pads* each stripe to a cache line: trading a
//! few hundred bytes of header space per slab for the elimination of
//! reflushes is the paper's core bargain.

use nvalloc_pmem::{FlushKind, PmOffset, PmThread, PmemPool};

use crate::geometry::CACHE_LINE;

/// Geometry of one persistent bitmap: where each block's bit lives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BitmapLayout {
    nbits: usize,
    stripes: usize,
    /// Bytes per stripe region (cache-line aligned).
    stripe_bytes: usize,
}

impl BitmapLayout {
    /// Layout for `nbits` blocks across `stripes` stripes (1 = sequential).
    ///
    /// # Panics
    /// Panics if `nbits == 0` or `stripes == 0`.
    pub fn new(nbits: usize, stripes: usize) -> Self {
        assert!(nbits > 0 && stripes > 0);
        // No point in more stripes than bits.
        let stripes = stripes.min(nbits);
        let per_stripe_bits = nbits.div_ceil(stripes);
        let stripe_bytes = per_stripe_bits.div_ceil(8).next_multiple_of(CACHE_LINE);
        BitmapLayout { nbits, stripes, stripe_bytes }
    }

    /// Number of block bits tracked.
    pub fn nbits(&self) -> usize {
        self.nbits
    }

    /// Number of stripes in use.
    pub fn stripes(&self) -> usize {
        self.stripes
    }

    /// Total persistent bytes occupied by the bitmap.
    pub fn bytes(&self) -> usize {
        self.stripes * self.stripe_bytes
    }

    /// The stripe block `i`'s bit lives in (the tcache groups by this).
    #[inline]
    pub fn stripe_of(&self, i: usize) -> usize {
        debug_assert!(i < self.nbits);
        i % self.stripes
    }

    /// (byte offset within the bitmap region, bit index within that byte)
    /// for block `i`.
    #[inline]
    pub fn location(&self, i: usize) -> (usize, u32) {
        debug_assert!(i < self.nbits, "bit {i} out of {n}", n = self.nbits);
        let stripe = i % self.stripes;
        let idx = i / self.stripes;
        (stripe * self.stripe_bytes + idx / 8, (idx % 8) as u32)
    }

    /// Offset of the 8-byte word holding block `i`'s bit, plus the bit's
    /// position inside that word. Used for atomic persistent updates.
    #[inline]
    pub fn word_location(&self, i: usize) -> (usize, u32) {
        let (byte, bit) = self.location(i);
        (byte & !7, (byte & 7) as u32 * 8 + bit)
    }
}

/// A persistent bitmap at a fixed pool offset.
#[derive(Debug, Clone, Copy)]
pub struct PmBitmap {
    base: PmOffset,
    layout: BitmapLayout,
}

impl PmBitmap {
    /// View a bitmap with `layout` at pool offset `base` (8-byte aligned).
    pub fn new(base: PmOffset, layout: BitmapLayout) -> Self {
        debug_assert_eq!(base % 8, 0);
        PmBitmap { base, layout }
    }

    /// The layout in force.
    pub fn layout(&self) -> &BitmapLayout {
        &self.layout
    }

    /// Set block `i`'s bit, persistently (flush + fence), attributed as
    /// metadata traffic.
    pub fn set_persist(&self, pool: &PmemPool, t: &mut PmThread, i: usize) {
        let (word, bit) = self.layout.word_location(i);
        let off = self.base + word as u64;
        pool.fetch_or_u64(off, 1 << bit);
        pool.charge_store(t, off, 8);
        pool.flush(t, off, 8, FlushKind::Meta);
        pool.fence(t);
    }

    /// Clear block `i`'s bit, persistently.
    pub fn clear_persist(&self, pool: &PmemPool, t: &mut PmThread, i: usize) {
        let (word, bit) = self.layout.word_location(i);
        let off = self.base + word as u64;
        pool.fetch_and_u64(off, !(1 << bit));
        pool.charge_store(t, off, 8);
        pool.flush(t, off, 8, FlushKind::Meta);
        pool.fence(t);
    }

    /// Atomically clear block `i`'s bit, persistently, returning the bit's
    /// previous value. The atomic word RMW makes this safe without any
    /// lock: of two racing clears of the same bit, exactly one observes
    /// `true` (the lock-free free path's double-free detection).
    pub fn clear_persist_fetch(&self, pool: &PmemPool, t: &mut PmThread, i: usize) -> bool {
        let (word, bit) = self.layout.word_location(i);
        let off = self.base + word as u64;
        let prev = pool.fetch_and_u64(off, !(1 << bit));
        pool.charge_store(t, off, 8);
        pool.flush(t, off, 8, FlushKind::Meta);
        pool.fence(t);
        prev >> bit & 1 == 1
    }

    /// Atomically clear block `i`'s bit without persisting, returning its
    /// previous value (GC-variant counterpart of
    /// [`PmBitmap::clear_persist_fetch`]).
    pub fn clear_volatile_fetch(&self, pool: &PmemPool, i: usize) -> bool {
        let (word, bit) = self.layout.word_location(i);
        let prev = pool.fetch_and_u64(self.base + word as u64, !(1 << bit));
        prev >> bit & 1 == 1
    }

    /// Set or clear without persisting (used by the GC variant, which skips
    /// runtime metadata flushes entirely, and by recovery rebuilds).
    pub fn write_volatile(&self, pool: &PmemPool, i: usize, value: bool) {
        let (word, bit) = self.layout.word_location(i);
        let off = self.base + word as u64;
        if value {
            pool.fetch_or_u64(off, 1 << bit);
        } else {
            pool.fetch_and_u64(off, !(1 << bit));
        }
    }

    /// Read block `i`'s bit.
    pub fn get(&self, pool: &PmemPool, i: usize) -> bool {
        let (word, bit) = self.layout.word_location(i);
        pool.read_u64(self.base + word as u64) >> bit & 1 == 1
    }

    /// Zero the whole bitmap region (no flush; callers persist the region
    /// as part of header initialisation).
    pub fn clear_all(&self, pool: &PmemPool) {
        pool.fill_bytes(self.base, self.layout.bytes(), 0);
    }

    /// Collect the allocated-block indices (recovery scan).
    pub fn scan_set(&self, pool: &PmemPool) -> Vec<usize> {
        (0..self.layout.nbits).filter(|&i| self.get(pool, i)).collect()
    }

    /// Count set bits.
    pub fn count_set(&self, pool: &PmemPool) -> usize {
        (0..self.layout.nbits).filter(|&i| self.get(pool, i)).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nvalloc_pmem::{LatencyMode, PmemConfig};
    use std::sync::Arc;

    fn pool() -> Arc<PmemPool> {
        PmemPool::new(PmemConfig::default().pool_size(1 << 20).latency_mode(LatencyMode::Off))
    }

    #[test]
    fn layout_sequential_is_dense() {
        let l = BitmapLayout::new(1024, 1);
        assert_eq!(l.stripes(), 1);
        assert_eq!(l.bytes(), 128);
        assert_eq!(l.location(0), (0, 0));
        assert_eq!(l.location(9), (1, 1));
    }

    #[test]
    fn layout_interleaved_spreads_consecutive_blocks() {
        let l = BitmapLayout::new(1024, 6);
        // Consecutive blocks on different cache lines.
        for i in 0..1023 {
            let (a, _) = l.location(i);
            let (b, _) = l.location(i + 1);
            assert_ne!(a / CACHE_LINE, b / CACHE_LINE, "blocks {i},{} share a line", i + 1);
        }
    }

    #[test]
    fn layout_bits_are_unique() {
        for (n, s) in [(1024, 6), (100, 4), (8192, 8), (7, 6), (16, 16), (5, 8)] {
            let l = BitmapLayout::new(n, s);
            let mut seen = std::collections::HashSet::new();
            for i in 0..n {
                let loc = l.location(i);
                assert!(loc.0 < l.bytes());
                assert!(seen.insert(loc), "bit collision at block {i} ({n},{s})");
            }
        }
    }

    #[test]
    fn stripes_capped_by_bits() {
        let l = BitmapLayout::new(3, 8);
        assert_eq!(l.stripes(), 3);
    }

    #[test]
    fn set_clear_get_roundtrip() {
        let p = pool();
        let mut t = p.register_thread();
        let bm = PmBitmap::new(4096, BitmapLayout::new(500, 6));
        bm.clear_all(&p);
        assert!(!bm.get(&p, 123));
        bm.set_persist(&p, &mut t, 123);
        assert!(bm.get(&p, 123));
        assert!(!bm.get(&p, 122));
        assert!(!bm.get(&p, 124));
        bm.clear_persist(&p, &mut t, 123);
        assert!(!bm.get(&p, 123));
    }

    #[test]
    fn scan_and_count() {
        let p = pool();
        let bm = PmBitmap::new(0, BitmapLayout::new(64, 4));
        for i in [0usize, 7, 13, 63] {
            bm.write_volatile(&p, i, true);
        }
        assert_eq!(bm.scan_set(&p), vec![0, 7, 13, 63]);
        assert_eq!(bm.count_set(&p), 4);
    }

    #[test]
    fn interleaving_eliminates_reflushes() {
        // Allocate 32 consecutive blocks; sequential layout reflushes,
        // 6-stripe layout must not.
        let run = |stripes: usize| {
            let p = PmemPool::new(
                PmemConfig::default().pool_size(1 << 20).latency_mode(LatencyMode::Virtual),
            );
            let mut t = p.register_thread();
            let bm = PmBitmap::new(0, BitmapLayout::new(1024, stripes));
            for i in 0..32 {
                bm.set_persist(&p, &mut t, i);
            }
            p.stats().reflushes()
        };
        assert!(run(1) > 20, "sequential layout must reflush heavily");
        assert_eq!(run(6), 0, "6-stripe layout must not reflush");
    }
}
