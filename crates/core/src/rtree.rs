//! Address radix tree ("R-tree" in the paper, after jemalloc's rtree).
//!
//! Maps 4 KB-aligned pool pages to an opaque `u64` handle so that
//! `free(addr)` can find the slab or extent that owns `addr` (§4.2: "the
//! working thread will first use an R-tree to find its size class").
//!
//! Three levels of 2048/2048/2048 fan-out over the page number. The tree
//! is fully concurrent with **no locks on either path**: interior nodes
//! are installed with a CAS on an `AtomicPtr` slot (the loser of a racing
//! install frees its allocation and adopts the winner's node), and each
//! page's value is a single `AtomicU64`, so readers can never observe a
//! torn mapping — a lookup sees either the old value or the new one,
//! never a mix. Installed interior nodes are immortal until `Drop`, which
//! is what makes lock-free readers safe without hazard pointers or epoch
//! reclamation: a pointer loaded with `Acquire` stays valid for the
//! tree's lifetime.
//!
//! Ranges are *not* updated atomically as a unit: a concurrent reader may
//! see a half-registered range. That is benign in the allocator because a
//! range is only published to other threads (via a root slot or free
//! list) after `insert_range` returns, and unpublished after
//! `remove_range` begins only once no other thread can reach it.

use std::ptr;
use std::sync::atomic::{AtomicPtr, AtomicU64, Ordering};

use nvalloc_pmem::PmOffset;

const PAGE_SHIFT: u32 = 12;
const L1_BITS: u32 = 11;
const L2_BITS: u32 = 11;
const L3_BITS: u32 = 11;
const FANOUT: usize = 1 << L1_BITS;

/// Leaf level: one value per 4 KB page (0 = unmapped).
struct Leaf {
    vals: [AtomicU64; FANOUT],
}

/// Middle level: CAS-installed pointers to leaves.
struct Mid {
    slots: [AtomicPtr<Leaf>; FANOUT],
}

fn new_leaf() -> *mut Leaf {
    Box::into_raw(Box::new(Leaf { vals: std::array::from_fn(|_| AtomicU64::new(0)) }))
}

fn new_mid() -> *mut Mid {
    Box::into_raw(Box::new(Mid { slots: std::array::from_fn(|_| AtomicPtr::new(ptr::null_mut())) }))
}

/// Install `fresh()` into `slot` if it is still null, or adopt whatever a
/// racing thread installed first. Returns the winning node. The CAS is
/// the linearization point of the install; the loser frees its
/// allocation, so exactly one node ever lives in a slot.
fn install<T>(slot: &AtomicPtr<T>, fresh: impl FnOnce() -> *mut T) -> *mut T {
    let cur = slot.load(Ordering::Acquire);
    if !cur.is_null() {
        return cur;
    }
    let node = fresh();
    match slot.compare_exchange(ptr::null_mut(), node, Ordering::AcqRel, Ordering::Acquire) {
        Ok(_) => node,
        Err(winner) => {
            // SAFETY: `node` was never published; we still own it.
            unsafe { drop(Box::from_raw(node)) };
            winner
        }
    }
}

/// Concurrent radix tree keyed by pool offset, storing one `u64` value per
/// 4 KB page (0 = unmapped). Reads and writes are both lock-free.
pub struct RTree {
    root: Box<[AtomicPtr<Mid>]>,
}

impl std::fmt::Debug for RTree {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RTree").finish_non_exhaustive()
    }
}

impl Default for RTree {
    fn default() -> Self {
        Self::new()
    }
}

impl RTree {
    /// Create an empty tree.
    pub fn new() -> Self {
        let mut v = Vec::with_capacity(FANOUT);
        v.resize_with(FANOUT, || AtomicPtr::new(ptr::null_mut()));
        RTree { root: v.into_boxed_slice() }
    }

    #[inline]
    fn split(off: PmOffset) -> (usize, usize, usize) {
        let page = off >> PAGE_SHIFT;
        let i3 = (page & ((1 << L3_BITS) - 1)) as usize;
        let i2 = (page >> L3_BITS & ((1 << L2_BITS) - 1)) as usize;
        let i1 = (page >> (L3_BITS + L2_BITS)) as usize;
        debug_assert!(i1 < 1 << L1_BITS, "offset {off:#x} beyond rtree coverage");
        (i1, i2, i3)
    }

    /// The leaf slot for `off`, descending without installing anything.
    #[inline]
    fn slot(&self, off: PmOffset) -> Option<&AtomicU64> {
        let (i1, i2, i3) = Self::split(off);
        let mid = self.root[i1].load(Ordering::Acquire);
        if mid.is_null() {
            return None;
        }
        // SAFETY: non-null interior nodes live until Drop (&self borrow).
        let leaf = unsafe { (*mid).slots[i2].load(Ordering::Acquire) };
        if leaf.is_null() {
            return None;
        }
        // SAFETY: same lifetime argument as above for the leaf node.
        Some(unsafe { &(*leaf).vals[i3] })
    }

    /// The leaf slot for `off`, CAS-installing missing interior nodes.
    #[inline]
    fn slot_or_install(&self, off: PmOffset) -> &AtomicU64 {
        let (i1, i2, i3) = Self::split(off);
        let mid = install(&self.root[i1], new_mid);
        // SAFETY: installed nodes live until Drop (&self borrow).
        let leaf = install(unsafe { &(*mid).slots[i2] }, new_leaf);
        // SAFETY: `leaf` was just installed and lives until Drop.
        unsafe { &(*leaf).vals[i3] }
    }

    /// Look up the value covering `off` (any byte within a registered
    /// range). Returns `None` for unmapped addresses. Lock-free.
    pub fn lookup(&self, off: PmOffset) -> Option<u64> {
        let v = self.slot(off)?.load(Ordering::Acquire);
        (v != 0).then_some(v)
    }

    /// Register `value` for every page in `[off, off + len)`. Lock-free;
    /// concurrent inserts to disjoint ranges never contend beyond the
    /// one-time interior-node installs.
    ///
    /// # Panics
    /// Panics if `value == 0` (reserved for "unmapped") or `off` is not
    /// page aligned.
    pub fn insert_range(&self, off: PmOffset, len: usize, value: u64) {
        assert!(value != 0, "rtree value 0 is reserved");
        assert_eq!(off & ((1 << PAGE_SHIFT) - 1), 0, "range must be page aligned");
        let pages = (len as u64).div_ceil(1 << PAGE_SHIFT);
        for p in 0..pages {
            self.slot_or_install(off + (p << PAGE_SHIFT)).store(value, Ordering::Release);
        }
    }

    /// Remove the registration for every page in `[off, off + len)`.
    /// Lock-free; leaves interior nodes in place for reuse.
    pub fn remove_range(&self, off: PmOffset, len: usize) {
        let pages = (len as u64).div_ceil(1 << PAGE_SHIFT);
        for p in 0..pages {
            if let Some(slot) = self.slot(off + (p << PAGE_SHIFT)) {
                slot.store(0, Ordering::Release);
            }
        }
    }
}

impl Drop for RTree {
    fn drop(&mut self) {
        for slot in self.root.iter() {
            let mid = slot.load(Ordering::Acquire);
            if mid.is_null() {
                continue;
            }
            // SAFETY: `&mut self` means no concurrent access; every
            // non-null pointer was Box-allocated by install() exactly once.
            unsafe {
                for ls in (*mid).slots.iter() {
                    let leaf = ls.load(Ordering::Acquire);
                    if !leaf.is_null() {
                        drop(Box::from_raw(leaf));
                    }
                }
                drop(Box::from_raw(mid));
            }
        }
    }
}

/// What an rtree handle points at. Packed into the stored `u64`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Owner {
    /// A small-allocation slab at this slab base offset.
    Slab {
        /// Pool offset of the slab base.
        slab: PmOffset,
        /// Arena that owns the slab.
        arena: u32,
    },
    /// A large extent; the handle is the VEH id.
    Extent {
        /// Index of the virtual extent header (shard-tagged; see
        /// `crate::shards`).
        veh: u32,
    },
}

const TAG_SLAB: u64 = 1;
const TAG_EXTENT: u64 = 2;

impl Owner {
    /// Pack for storage in the rtree.
    pub fn pack(self) -> u64 {
        match self {
            // Slab bases are 64 KB aligned: the low 16 bits are free for
            // the tag and arena id.
            Owner::Slab { slab, arena } => {
                debug_assert_eq!(slab % crate::size_class::SLAB_SIZE as u64, 0);
                debug_assert!(arena < 1 << 14);
                TAG_SLAB | (arena as u64) << 2 | slab
            }
            Owner::Extent { veh } => TAG_EXTENT | (veh as u64) << 2,
        }
    }

    /// Unpack a stored handle.
    pub fn unpack(v: u64) -> Owner {
        match v & 0b11 {
            TAG_SLAB => Owner::Slab { slab: v & !0xffff, arena: (v >> 2 & 0x3fff) as u32 },
            TAG_EXTENT => Owner::Extent { veh: (v >> 2) as u32 },
            t => unreachable!("corrupt rtree tag {t}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_unmapped_is_none() {
        let t = RTree::new();
        assert_eq!(t.lookup(0), None);
        assert_eq!(t.lookup(123 << 20), None);
    }

    #[test]
    fn range_roundtrip() {
        let t = RTree::new();
        t.insert_range(64 << 10, 64 << 10, 42);
        assert_eq!(t.lookup(64 << 10), Some(42));
        assert_eq!(t.lookup((64 << 10) + 5000), Some(42));
        assert_eq!(t.lookup((128 << 10) - 1), Some(42));
        assert_eq!(t.lookup(128 << 10), None);
        assert_eq!(t.lookup((64 << 10) - 1), None);
        t.remove_range(64 << 10, 64 << 10);
        assert_eq!(t.lookup(64 << 10), None);
    }

    #[test]
    fn spans_level_boundaries() {
        let t = RTree::new();
        // A range crossing an 8 MB (L3) boundary.
        let base = (1u64 << (PAGE_SHIFT + L3_BITS)) - 8192;
        t.insert_range(base, 16384, 7);
        assert_eq!(t.lookup(base), Some(7));
        assert_eq!(t.lookup(base + 16383), Some(7));
    }

    #[test]
    fn owner_packing_roundtrip() {
        let s = Owner::Slab { slab: 7 * crate::size_class::SLAB_SIZE as u64, arena: 3 };
        assert_eq!(Owner::unpack(s.pack()), s);
        let e = Owner::Extent { veh: 12345 };
        assert_eq!(Owner::unpack(e.pack()), e);
    }

    #[test]
    fn concurrent_readers_and_writers() {
        let t = std::sync::Arc::new(RTree::new());
        std::thread::scope(|s| {
            for k in 0..4u64 {
                let t = std::sync::Arc::clone(&t);
                s.spawn(move || {
                    for i in 0..100u64 {
                        let off = (k * 100 + i) * 4096;
                        t.insert_range(off, 4096, off + 1);
                        assert_eq!(t.lookup(off), Some(off + 1));
                    }
                });
            }
        });
        for k in 0..400u64 {
            assert_eq!(t.lookup(k * 4096), Some(k * 4096 + 1));
        }
    }

    #[test]
    fn racing_installs_into_one_subtree_lose_nothing() {
        // All offsets share the same mid node and leaf, so every thread
        // races the same CAS installs; each value must still land.
        let t = std::sync::Arc::new(RTree::new());
        std::thread::scope(|s| {
            for k in 0..8u64 {
                let t = std::sync::Arc::clone(&t);
                s.spawn(move || {
                    t.insert_range(k * 4096, 4096, k + 1);
                });
            }
        });
        for k in 0..8u64 {
            assert_eq!(t.lookup(k * 4096), Some(k + 1));
        }
    }

    #[test]
    fn drop_frees_installed_subtrees() {
        let t = RTree::new();
        // Touch several L1 subtrees so Drop has real work to do.
        for i1 in 0..3u64 {
            t.insert_range(i1 << (PAGE_SHIFT + L2_BITS + L3_BITS), 4096, 9);
        }
        drop(t); // must not leak or double-free (run under Miri/ASan)
    }
}
