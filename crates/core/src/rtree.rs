//! Address radix tree ("R-tree" in the paper, after jemalloc's rtree).
//!
//! Maps 4 KB-aligned pool pages to an opaque `u64` handle so that
//! `free(addr)` can find the slab or extent that owns `addr` (§4.2: "the
//! working thread will first use an R-tree to find its size class").
//!
//! Three levels of 2048/2048/… fan-out over the page number; lookups take
//! a read lock, updates a write lock. Covering a range registers every
//! page in it.

use parking_lot::RwLock;

use nvalloc_pmem::PmOffset;

const PAGE_SHIFT: u32 = 12;
const L1_BITS: u32 = 11;
const L2_BITS: u32 = 11;
const L3_BITS: u32 = 11;
const FANOUT: usize = 1 << L1_BITS;

type Leaf = Box<[u64; FANOUT]>;
type Mid = Vec<Option<Leaf>>;

#[derive(Debug, Default)]
struct Nodes {
    root: Vec<Option<Mid>>,
}

/// Concurrent radix tree keyed by pool offset, storing one `u64` value per
/// 4 KB page (0 = unmapped).
#[derive(Debug)]
pub struct RTree {
    inner: RwLock<Nodes>,
}

impl Default for RTree {
    fn default() -> Self {
        Self::new()
    }
}

impl RTree {
    /// Create an empty tree.
    pub fn new() -> Self {
        RTree { inner: RwLock::new(Nodes { root: Vec::new() }) }
    }

    #[inline]
    fn split(off: PmOffset) -> (usize, usize, usize) {
        let page = off >> PAGE_SHIFT;
        let i3 = (page & ((1 << L3_BITS) - 1)) as usize;
        let i2 = (page >> L3_BITS & ((1 << L2_BITS) - 1)) as usize;
        let i1 = (page >> (L3_BITS + L2_BITS)) as usize;
        debug_assert!(i1 < 1 << L1_BITS, "offset {off:#x} beyond rtree coverage");
        (i1, i2, i3)
    }

    /// Look up the value covering `off` (any byte within a registered
    /// range). Returns `None` for unmapped addresses.
    pub fn lookup(&self, off: PmOffset) -> Option<u64> {
        let (i1, i2, i3) = Self::split(off);
        let g = self.inner.read();
        let v = *g.root.get(i1)?.as_ref()?.get(i2)?.as_ref()?.get(i3)?;
        (v != 0).then_some(v)
    }

    /// Register `value` for every page in `[off, off + len)`.
    ///
    /// # Panics
    /// Panics if `value == 0` (reserved for "unmapped") or `off` is not
    /// page aligned.
    pub fn insert_range(&self, off: PmOffset, len: usize, value: u64) {
        assert!(value != 0, "rtree value 0 is reserved");
        assert_eq!(off & ((1 << PAGE_SHIFT) - 1), 0, "range must be page aligned");
        let mut g = self.inner.write();
        let pages = (len as u64).div_ceil(1 << PAGE_SHIFT);
        for p in 0..pages {
            let (i1, i2, i3) = Self::split(off + (p << PAGE_SHIFT));
            if g.root.len() <= i1 {
                g.root.resize_with(i1 + 1, || None);
            }
            let mid = g.root[i1].get_or_insert_with(Vec::new);
            if mid.len() <= i2 {
                mid.resize_with(i2 + 1, || None);
            }
            let leaf = mid[i2].get_or_insert_with(|| Box::new([0u64; FANOUT]));
            leaf[i3] = value;
        }
    }

    /// Remove the registration for every page in `[off, off + len)`.
    pub fn remove_range(&self, off: PmOffset, len: usize) {
        let mut g = self.inner.write();
        let pages = (len as u64).div_ceil(1 << PAGE_SHIFT);
        for p in 0..pages {
            let (i1, i2, i3) = Self::split(off + (p << PAGE_SHIFT));
            if let Some(Some(mid)) = g.root.get_mut(i1) {
                if let Some(Some(leaf)) = mid.get_mut(i2) {
                    leaf[i3] = 0;
                }
            }
        }
    }
}

/// What an rtree handle points at. Packed into the stored `u64`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Owner {
    /// A small-allocation slab at this slab base offset.
    Slab {
        /// Pool offset of the slab base.
        slab: PmOffset,
        /// Arena that owns the slab.
        arena: u32,
    },
    /// A large extent; the handle is the VEH id.
    Extent {
        /// Index of the virtual extent header.
        veh: u32,
    },
}

const TAG_SLAB: u64 = 1;
const TAG_EXTENT: u64 = 2;

impl Owner {
    /// Pack for storage in the rtree.
    pub fn pack(self) -> u64 {
        match self {
            // Slab bases are 64 KB aligned: the low 16 bits are free for
            // the tag and arena id.
            Owner::Slab { slab, arena } => {
                debug_assert_eq!(slab % crate::size_class::SLAB_SIZE as u64, 0);
                debug_assert!(arena < 1 << 14);
                TAG_SLAB | (arena as u64) << 2 | slab
            }
            Owner::Extent { veh } => TAG_EXTENT | (veh as u64) << 2,
        }
    }

    /// Unpack a stored handle.
    pub fn unpack(v: u64) -> Owner {
        match v & 0b11 {
            TAG_SLAB => Owner::Slab { slab: v & !0xffff, arena: (v >> 2 & 0x3fff) as u32 },
            TAG_EXTENT => Owner::Extent { veh: (v >> 2) as u32 },
            t => unreachable!("corrupt rtree tag {t}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_unmapped_is_none() {
        let t = RTree::new();
        assert_eq!(t.lookup(0), None);
        assert_eq!(t.lookup(123 << 20), None);
    }

    #[test]
    fn range_roundtrip() {
        let t = RTree::new();
        t.insert_range(64 << 10, 64 << 10, 42);
        assert_eq!(t.lookup(64 << 10), Some(42));
        assert_eq!(t.lookup((64 << 10) + 5000), Some(42));
        assert_eq!(t.lookup((128 << 10) - 1), Some(42));
        assert_eq!(t.lookup(128 << 10), None);
        assert_eq!(t.lookup((64 << 10) - 1), None);
        t.remove_range(64 << 10, 64 << 10);
        assert_eq!(t.lookup(64 << 10), None);
    }

    #[test]
    fn spans_level_boundaries() {
        let t = RTree::new();
        // A range crossing an 8 MB (L3) boundary.
        let base = (1u64 << (PAGE_SHIFT + L3_BITS)) - 8192;
        t.insert_range(base, 16384, 7);
        assert_eq!(t.lookup(base), Some(7));
        assert_eq!(t.lookup(base + 16383), Some(7));
    }

    #[test]
    fn owner_packing_roundtrip() {
        let s = Owner::Slab { slab: 7 * crate::size_class::SLAB_SIZE as u64, arena: 3 };
        assert_eq!(Owner::unpack(s.pack()), s);
        let e = Owner::Extent { veh: 12345 };
        assert_eq!(Owner::unpack(e.pack()), e);
    }

    #[test]
    fn concurrent_readers_and_writers() {
        let t = std::sync::Arc::new(RTree::new());
        std::thread::scope(|s| {
            for k in 0..4u64 {
                let t = std::sync::Arc::clone(&t);
                s.spawn(move || {
                    for i in 0..100u64 {
                        let off = (k * 100 + i) * 4096;
                        t.insert_range(off, 4096, off + 1);
                        assert_eq!(t.lookup(off), Some(off + 1));
                    }
                });
            }
        });
        for k in 0..400u64 {
            assert_eq!(t.lookup(k * 4096), Some(k * 4096 + 1));
        }
    }
}
