//! Slabs: 64 KB containers of fixed-size blocks (§2.2, §5.2).
//!
//! Each slab has a **persistent header** (everything recovery needs) and a
//! **volatile header** (*vslab*) for fast free-block search. The persistent
//! header's fixed fields live in the slab's first cache line:
//!
//! ```text
//! word 0: magic:u32 | size_class:u16 | flag:u16        (flag = morph step)
//! word 1: data_offset:u32 | old_size_class:u16 | index_len:u16
//! word 2: old_data_offset:u32 | index_table_off:u32
//! ```
//!
//! followed by the bitmap region (at byte 64) and — for morphing slabs —
//! the index table. `data_offset` is explicit because a morphed slab's data
//! region starts after the index table (Fig. 5).
//!
//! The *persistent* bitmap records user allocations (it is what crash
//! recovery trusts); the *volatile* bitmap in the vslab additionally marks
//! blocks that are reserved by thread caches or blocked by live old-class
//! blocks during morphing, i.e. everything that must not be handed out.

use nvalloc_pmem::{FlushKind, PmOffset, PmThread, PmemPool};

use crate::bitmap::PmBitmap;
use crate::geometry::{GeometryTable, SlabGeometry};
use crate::large::VehId;
use crate::size_class::{class_size, ClassId, SLAB_SIZE};

/// Magic tag of an initialised slab header.
pub const SLAB_MAGIC: u32 = 0x514A_B001;

/// `old_size_class` value meaning "not morphing".
pub const NO_OLD_CLASS: u16 = u16::MAX;

/// Morph progress values stored in the header `flag` field (§5.2).
pub mod flag {
    /// Not morphing (also the post-morph steady state).
    pub const NONE: u16 = 0;
    /// Step 1 done: old_size_class / old_data_offset copied.
    pub const OLD_SAVED: u16 = 1;
    /// Step 2 done: index table written.
    pub const INDEX_WRITTEN: u16 = 2;
    /// Step 3 done: new class/offset/bitmap in place (roll forward).
    pub const NEW_WRITTEN: u16 = 3;
}

/// One entry of the morph index table: the old block's index and its
/// allocation state, packed in 2 bytes (§5.2: "each table entry is only 2B").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IndexEntry {
    /// Block index within the *old* data layout.
    pub old_idx: u16,
    /// True while the old block is live.
    pub allocated: bool,
}

impl IndexEntry {
    /// Pack into the persistent 2-byte form.
    pub fn pack(self) -> u16 {
        debug_assert!(self.old_idx < 1 << 15);
        self.old_idx | (self.allocated as u16) << 15
    }

    /// Unpack from the persistent form.
    pub fn unpack(v: u16) -> IndexEntry {
        IndexEntry { old_idx: v & 0x7fff, allocated: v >> 15 == 1 }
    }
}

/// Volatile morph state of a `slab_in` (§5.2).
#[derive(Debug, Clone)]
pub struct MorphState {
    /// Size class of the *old* blocks still live in the slab.
    pub old_class: ClassId,
    /// Data offset of the old layout.
    pub old_data_offset: usize,
    /// Offset (within the slab) of the persistent index table.
    pub index_off: usize,
    /// Volatile mirror of the index table.
    pub index: Vec<IndexEntry>,
    /// Number of live old blocks (`cnt_slab`).
    pub cnt_slab: usize,
    /// Per-new-block count of overlapping live old blocks (`cnt_block`).
    pub cnt_block: Vec<u16>,
}

/// The volatile slab header.
#[derive(Debug)]
pub struct VSlab {
    /// Slab base offset.
    pub off: PmOffset,
    /// Current size class.
    pub class: ClassId,
    /// VEH of the backing 64 KB extent.
    pub veh: VehId,
    /// Offset of block 0 (may exceed the class geometry's when morphed).
    pub data_offset: usize,
    /// Number of blocks behind `data_offset`.
    pub nblocks: usize,
    /// Volatile occupancy bitmap: bit set = unavailable (user-allocated,
    /// tcache-reserved, or morph-blocked).
    taken: Vec<u64>,
    /// Number of available blocks.
    pub nfree: usize,
    /// Morph state while this is a `slab_in`.
    pub morph: Option<MorphState>,
    /// LRU token (maintained by the arena).
    pub lru_token: u64,
    /// Whether the slab currently has a live entry in its class freelist.
    /// Maintained by the arena: cleared for O(1) logical removal, with the
    /// stale deque entry discarded lazily on pop.
    pub in_freelist: bool,
}

impl VSlab {
    /// Initialise a brand-new slab: write + persist its header and bitmap,
    /// and return the vslab.
    pub fn create(
        pool: &PmemPool,
        t: &mut PmThread,
        off: PmOffset,
        class: ClassId,
        veh: VehId,
        geom: &SlabGeometry,
        persist: bool,
    ) -> VSlab {
        debug_assert_eq!(off % SLAB_SIZE as u64, 0);
        pool.write_u64(off, header_word0(class as u16, flag::NONE));
        pool.write_u64(off + 8, header_word1(geom.data_offset as u32, NO_OLD_CLASS, 0));
        pool.write_u64(off + 16, 0);
        let bm = PmBitmap::new(off + geom.bitmap_off as u64, geom.bitmap);
        bm.clear_all(pool);
        if persist {
            let hdr_len = geom.bitmap_off + geom.bitmap.bytes();
            pool.charge_store(t, off, hdr_len);
            pool.flush(t, off, hdr_len, FlushKind::Meta);
            pool.fence(t);
        }
        VSlab {
            off,
            class,
            veh,
            data_offset: geom.data_offset,
            nblocks: geom.nblocks,
            taken: vec![0; geom.nblocks.div_ceil(64)],
            nfree: geom.nblocks,
            morph: None,
            lru_token: 0,
            in_freelist: false,
        }
    }

    /// Build a vslab shell from recovered persistent-header fields; the
    /// volatile bitmap starts empty — call
    /// [`VSlab::resync_from_persistent`] once repairs are done.
    pub fn create_shell(
        off: PmOffset,
        class: ClassId,
        veh: VehId,
        data_offset: usize,
        nblocks: usize,
    ) -> VSlab {
        VSlab {
            off,
            class,
            veh,
            data_offset,
            nblocks,
            taken: vec![0; nblocks.div_ceil(64).max(1)],
            nfree: nblocks,
            morph: None,
            lru_token: 0,
            in_freelist: false,
        }
    }

    /// The persistent bitmap view for this slab.
    pub fn pbitmap(&self, geoms: &GeometryTable) -> PmBitmap {
        let g = geoms.of(self.class);
        PmBitmap::new(self.off + g.bitmap_off as u64, g.bitmap)
    }

    /// Block size in bytes.
    pub fn block_size(&self) -> usize {
        class_size(self.class)
    }

    /// Address of block `i`.
    pub fn block_addr(&self, i: usize) -> PmOffset {
        debug_assert!(i < self.nblocks);
        self.off + (self.data_offset + i * self.block_size()) as u64
    }

    /// Index of the block containing `addr` under the *current* layout, if
    /// `addr` is block-aligned and in range.
    pub fn block_index(&self, addr: PmOffset) -> Option<usize> {
        let rel = addr.checked_sub(self.off + self.data_offset as u64)?;
        let bs = self.block_size() as u64;
        if rel % bs != 0 {
            return None;
        }
        let i = (rel / bs) as usize;
        (i < self.nblocks).then_some(i)
    }

    /// True if block `i` is unavailable (allocated / reserved / blocked).
    pub fn is_taken(&self, i: usize) -> bool {
        self.taken[i / 64] >> (i % 64) & 1 == 1
    }

    /// Reserve one available block (volatile), returning its index.
    pub fn take_block(&mut self) -> Option<usize> {
        if self.nfree == 0 {
            return None;
        }
        for (w, word) in self.taken.iter_mut().enumerate() {
            if *word != u64::MAX {
                let bit = word.trailing_ones() as usize;
                let i = w * 64 + bit;
                if i >= self.nblocks {
                    return None; // only tail padding left
                }
                *word |= 1 << bit;
                self.nfree -= 1;
                return Some(i);
            }
        }
        None
    }

    /// Mark block `i` unavailable (volatile). The block must currently be
    /// available.
    pub fn reserve_block(&mut self, i: usize) {
        debug_assert!(!self.is_taken(i));
        self.taken[i / 64] |= 1 << (i % 64);
        self.nfree -= 1;
    }

    /// Return block `i` to availability (volatile).
    pub fn release_block(&mut self, i: usize) {
        debug_assert!(self.is_taken(i));
        self.taken[i / 64] &= !(1 << (i % 64));
        self.nfree += 1;
    }

    /// Occupied fraction by the volatile view (allocated + reserved +
    /// blocked).
    pub fn occupancy(&self) -> f64 {
        if self.nblocks == 0 {
            return 1.0;
        }
        (self.nblocks - self.nfree) as f64 / self.nblocks as f64
    }

    /// True when every block is available and no old-class blocks remain.
    pub fn is_completely_free(&self) -> bool {
        self.nfree == self.nblocks && self.morph.as_ref().is_none_or(|m| m.cnt_slab == 0)
    }

    /// Rebuild the volatile bitmap from the persistent one (recovery and
    /// morph bookkeeping).
    pub fn resync_from_persistent(&mut self, pool: &PmemPool, geoms: &GeometryTable) {
        let bm = self.pbitmap(geoms);
        self.taken = vec![0; self.nblocks.div_ceil(64)];
        self.nfree = self.nblocks;
        for i in 0..self.nblocks {
            if bm.get(pool, i) {
                self.reserve_block(i);
            }
        }
        // Re-block positions occupied by live old blocks.
        if let Some(m) = self.morph.clone() {
            for j in 0..self.nblocks.min(m.cnt_block.len()) {
                if m.cnt_block[j] > 0 && !self.is_taken(j) {
                    self.reserve_block(j);
                }
            }
        }
    }
}

/// Compose header word 0.
pub fn header_word0(class: u16, flag: u16) -> u64 {
    SLAB_MAGIC as u64 | (class as u64) << 32 | (flag as u64) << 48
}

/// Compose header word 1.
pub fn header_word1(data_offset: u32, old_class: u16, index_len: u16) -> u64 {
    data_offset as u64 | (old_class as u64) << 32 | (index_len as u64) << 48
}

/// Raw media image of the 24 B fixed slab header (three packed words;
/// [`SlabHeader`] is the decoded view). The pack/unpack helpers above
/// define the bit layout inside each word; this mirror pins the word
/// count and offsets via `tests/layout_sizes.rs` (kept in sync by the
/// `repr-c-sizes` lint rule).
#[repr(C)]
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SlabHeaderRaw {
    /// Word 0: `flag << 48 | class << 32 | SLAB_MAGIC` (see
    /// [`header_word0`]).
    pub magic_class_flag: u64,
    /// Word 1: `index_len << 48 | old_class << 32 | data_offset` (see
    /// [`header_word1`]).
    pub data_old_index: u64,
    /// Word 2: `index_table_off << 32 | old_data_offset`.
    pub old_data_table: u64,
}

/// Decoded persistent slab header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SlabHeader {
    /// Current size class field.
    pub class: u16,
    /// Morph step flag.
    pub flag: u16,
    /// Data offset field.
    pub data_offset: u32,
    /// Old size class (`NO_OLD_CLASS` when not morphing).
    pub old_class: u16,
    /// Number of index-table entries.
    pub index_len: u16,
    /// Old data offset.
    pub old_data_offset: u32,
    /// Offset of the index table within the slab.
    pub index_table_off: u32,
}

impl SlabHeader {
    /// Read and validate the header at `slab`.
    pub fn read(pool: &PmemPool, slab: PmOffset) -> Option<SlabHeader> {
        let w0 = pool.read_u64(slab);
        if w0 as u32 != SLAB_MAGIC {
            return None;
        }
        let w1 = pool.read_u64(slab + 8);
        let w2 = pool.read_u64(slab + 16);
        Some(SlabHeader {
            class: (w0 >> 32) as u16,
            flag: (w0 >> 48) as u16,
            data_offset: w1 as u32,
            old_class: (w1 >> 32) as u16,
            index_len: (w1 >> 48) as u16,
            old_data_offset: w2 as u32,
            index_table_off: (w2 >> 32) as u32,
        })
    }

    /// True if the header records a morph in progress or a live `slab_in`.
    #[allow(dead_code)] // exercised by unit and integration tests
    pub fn is_morphed(&self) -> bool {
        self.old_class != NO_OLD_CLASS
    }
}

/// Persist the flag field (atomic word-0 rewrite + flush + fence). Every
/// morph step transition — forward during the transform, backward during
/// recovery rollback — funnels through here, so this is also where the
/// flight recorder's `MorphStep` events are emitted.
pub fn persist_flag(pool: &PmemPool, t: &mut PmThread, slab: PmOffset, class: u16, flag: u16) {
    pool.persist_u64(t, slab, header_word0(class, flag), FlushKind::Meta);
    t.trace(crate::trace::EventKind::MorphStep.code(), flag as u64, slab);
}

/// Read one persistent index-table entry.
pub fn read_index_entry(pool: &PmemPool, slab: PmOffset, table_off: u32, i: usize) -> IndexEntry {
    IndexEntry::unpack(pool.read_u16(slab + table_off as u64 + (i * 2) as u64))
}

/// Write + persist one index-table entry (the morph release path; §5.2
/// "NVAlloc needs to modify its state in the index_table and flush it").
pub fn persist_index_entry(
    pool: &PmemPool,
    t: &mut PmThread,
    slab: PmOffset,
    table_off: u32,
    i: usize,
    e: IndexEntry,
) {
    let off = slab + table_off as u64 + (i * 2) as u64;
    pool.write_u16(off, e.pack());
    pool.charge_store(t, off, 2);
    pool.flush(t, off, 2, FlushKind::Meta);
    pool.fence(t);
}

#[cfg(test)]
mod tests {
    use super::*;
    use nvalloc_pmem::{LatencyMode, PmemConfig};
    use std::sync::Arc;

    fn pool() -> Arc<PmemPool> {
        PmemPool::new(PmemConfig::default().pool_size(1 << 20).latency_mode(LatencyMode::Off))
    }

    fn geoms() -> GeometryTable {
        GeometryTable::new(6)
    }

    #[test]
    fn index_entry_roundtrip() {
        for (i, a) in [(0u16, true), (123, false), (0x7fff, true)] {
            let e = IndexEntry { old_idx: i, allocated: a };
            assert_eq!(IndexEntry::unpack(e.pack()), e);
        }
    }

    #[test]
    fn create_and_read_header() {
        let p = pool();
        let mut t = p.register_thread();
        let g = geoms();
        let class = crate::size_class::size_to_class(64).unwrap();
        let vs = VSlab::create(&p, &mut t, 0, class, 7, g.of(class), true);
        let h = SlabHeader::read(&p, 0).expect("valid header");
        assert_eq!(h.class as usize, class);
        assert_eq!(h.flag, flag::NONE);
        assert_eq!(h.data_offset as usize, g.of(class).data_offset);
        assert_eq!(h.old_class, NO_OLD_CLASS);
        assert!(!h.is_morphed());
        assert_eq!(vs.nfree, vs.nblocks);
        assert!(SlabHeader::read(&p, 65536).is_none(), "uninitialised area has no header");
    }

    #[test]
    fn take_release_roundtrip() {
        let p = pool();
        let mut t = p.register_thread();
        let g = geoms();
        let class = 4; // 64 B
        let mut vs = VSlab::create(&p, &mut t, 0, class, 0, g.of(class), false);
        let total = vs.nblocks;
        let a = vs.take_block().unwrap();
        let b = vs.take_block().unwrap();
        assert_ne!(a, b);
        assert_eq!(vs.nfree, total - 2);
        assert!(vs.is_taken(a));
        vs.release_block(a);
        assert!(!vs.is_taken(a));
        assert_eq!(vs.nfree, total - 1);
    }

    #[test]
    fn exhaustion_returns_none() {
        let p = pool();
        let mut t = p.register_thread();
        let g = geoms();
        let class = crate::size_class::NUM_CLASSES - 1; // 16 KB: few blocks
        let mut vs = VSlab::create(&p, &mut t, 0, class, 0, g.of(class), false);
        for _ in 0..vs.nblocks {
            assert!(vs.take_block().is_some());
        }
        assert_eq!(vs.take_block(), None);
        assert_eq!(vs.nfree, 0);
        assert!((vs.occupancy() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn block_addr_index_inverse() {
        let p = pool();
        let mut t = p.register_thread();
        let g = geoms();
        let class = 8; // 128 B
        let vs = VSlab::create(&p, &mut t, 65536, class, 0, g.of(class), false);
        for i in [0, 1, 17, vs.nblocks - 1] {
            let addr = vs.block_addr(i);
            assert_eq!(vs.block_index(addr), Some(i));
        }
        assert_eq!(vs.block_index(vs.block_addr(0) + 1), None, "misaligned");
        assert_eq!(vs.block_index(vs.off), None, "header is not a block");
    }

    #[test]
    fn resync_matches_persistent_bits() {
        let p = pool();
        let mut t = p.register_thread();
        let g = geoms();
        let class = 4;
        let mut vs = VSlab::create(&p, &mut t, 0, class, 0, g.of(class), false);
        let bm = vs.pbitmap(&g);
        for i in [3usize, 9, 100] {
            bm.write_volatile(&p, i, true);
        }
        vs.resync_from_persistent(&p, &g);
        assert_eq!(vs.nfree, vs.nblocks - 3);
        assert!(vs.is_taken(3) && vs.is_taken(9) && vs.is_taken(100));
        assert!(!vs.is_taken(4));
    }

    #[test]
    fn flag_persist_roundtrip() {
        let p = pool();
        let mut t = p.register_thread();
        let g = geoms();
        let vs = VSlab::create(&p, &mut t, 0, 2, 0, g.of(2), true);
        persist_flag(&p, &mut t, 0, vs.class as u16, flag::INDEX_WRITTEN);
        let h = SlabHeader::read(&p, 0).unwrap();
        assert_eq!(h.flag, flag::INDEX_WRITTEN);
        assert_eq!(h.class as usize, vs.class);
    }

    #[test]
    fn index_table_persistence() {
        let p = pool();
        let mut t = p.register_thread();
        let table_off = 128u32;
        let e = IndexEntry { old_idx: 42, allocated: true };
        persist_index_entry(&p, &mut t, 0, table_off, 5, e);
        assert_eq!(read_index_entry(&p, 0, table_off, 5), e);
        // Flip state.
        persist_index_entry(&p, &mut t, 0, table_off, 5, IndexEntry { allocated: false, ..e });
        assert!(!read_index_entry(&p, 0, table_off, 5).allocated);
    }

    #[test]
    fn is_completely_free_respects_morph_residents() {
        let p = pool();
        let mut t = p.register_thread();
        let g = geoms();
        let mut vs = VSlab::create(&p, &mut t, 0, 2, 0, g.of(2), false);
        assert!(vs.is_completely_free());
        vs.morph = Some(MorphState {
            old_class: 5,
            old_data_offset: 4096,
            index_off: 128,
            index: vec![IndexEntry { old_idx: 0, allocated: true }],
            cnt_slab: 1,
            cnt_block: vec![1],
        });
        assert!(!vs.is_completely_free(), "live old blocks keep the slab busy");
        vs.morph.as_mut().unwrap().cnt_slab = 0;
        assert!(vs.is_completely_free());
    }
}
