//! Per-thread write-ahead micro-logs (NVAlloc-LOG consistency path).
//!
//! Each arena owns a persistent WAL region partitioned into fixed-size
//! *micro-logs* of [`MICRO_ENTRIES`] 32 B slots; every thread attached to
//! the arena claims one micro-log and rotates through its slots. An
//! operation appends exactly one entry *before* touching heap metadata; the
//! subsequent persistent write of the user's destination slot acts as the
//! commit record, so no invalidation flush is needed.
//!
//! Because a thread finishes one operation before starting the next, only
//! the **newest entry of each micro-log** can describe an in-flight
//! operation; recovery replays exactly those (sorted by a global sequence
//! number so cross-arena orderings are preserved) and re-applies or undoes
//! them idempotently against the authoritative persistent bitmaps (§4.4).
//! Like the paper's design, an entry left behind by a long-idle thread
//! whose block was later recycled by other threads is validated against
//! the current bitmap state rather than tracked exactly.
//!
//! Consecutive slots are 32 B apart — two per cache line — so back-to-back
//! operations from one thread reflush the same line unless slot placement
//! is interleaved (`IM(WAL)` in Table 2), governed by
//! [`crate::NvConfig::interleave_wal`].

use nvalloc_pmem::{FlushKind, PmOffset, PmThread, PmemPool};

use crate::interleave::Interleave;

/// Bytes per WAL entry.
pub const WAL_ENTRY_BYTES: usize = 32;
/// Entries per cache line.
const PER_LINE: usize = nvalloc_pmem::CACHE_LINE / WAL_ENTRY_BYTES;
/// Entry slots per per-thread micro-log (4 cache lines).
pub const MICRO_ENTRIES: usize = 8;

/// Operation recorded in a WAL entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WalOp {
    /// `malloc_to(size) -> addr`, to be attached at `dest`.
    Alloc,
    /// `free_from(dest)` of the block at `addr`.
    Free,
}

impl WalOp {
    fn code(self) -> u8 {
        match self {
            WalOp::Alloc => 1,
            WalOp::Free => 2,
        }
    }

    fn from_code(c: u8) -> Option<WalOp> {
        match c {
            1 => Some(WalOp::Alloc),
            2 => Some(WalOp::Free),
            _ => None,
        }
    }
}

/// A decoded WAL entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WalEntry {
    /// Operation type.
    pub op: WalOp,
    /// Block or extent address the operation concerns.
    pub addr: PmOffset,
    /// User destination slot.
    pub dest: PmOffset,
    /// Request size.
    pub size: u32,
    /// Global sequence number (total order across arenas).
    pub seq: u64,
}

/// Raw media image of one 32 B WAL entry slot, word for word. The live
/// code reads and writes these fields through `pool.read_u64`/`write_u64`
/// at the offsets this struct pins down; it exists so the persistent
/// format is stated in one place and its size/alignment/field offsets are
/// locked by `tests/layout_sizes.rs` (the `repr-c-sizes` lint rule keeps
/// that table in sync).
#[repr(C)]
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WalEntryRaw {
    /// Word 0: block or extent address the operation concerns.
    pub addr: u64,
    /// Word 1: user destination slot offset.
    pub dest: u64,
    /// Word 2: `size << 32 | op_code`; an op code of 0 marks the slot
    /// empty, so this word is the slot's validity marker.
    pub op_size: u64,
    /// Word 3: global sequence number (total order across arenas).
    pub seq: u64,
}

/// One arena's WAL region: `micro_count` micro-logs of
/// [`MICRO_ENTRIES`] slots each.
#[derive(Debug, Clone, Copy)]
pub struct WalRegion {
    base: PmOffset,
    micro_count: usize,
}

impl WalRegion {
    /// Bytes needed for `micro_count` micro-logs.
    pub fn region_bytes(micro_count: usize) -> usize {
        micro_count * MICRO_ENTRIES * WAL_ENTRY_BYTES
    }

    /// Initialise (zero) a fresh region.
    pub fn create(pool: &PmemPool, base: PmOffset, micro_count: usize) -> Self {
        assert!(micro_count >= 1);
        // Fresh media is already zero; this restates durable content, so
        // no flush is owed (and the sanitizer is told as much).
        pool.fill_bytes(base, Self::region_bytes(micro_count), 0);
        pool.pmsan_mark_persisted(base, Self::region_bytes(micro_count));
        WalRegion { base, micro_count }
    }

    /// View an existing region (recovery).
    pub fn open(base: PmOffset, micro_count: usize) -> Self {
        WalRegion { base, micro_count }
    }

    /// Number of micro-logs.
    #[allow(dead_code)]
    pub fn micro_count(&self) -> usize {
        self.micro_count
    }

    /// The micro-log at `idx` (one per thread; `idx` wraps).
    pub fn micro(&self, idx: usize, stripes: usize) -> MicroWal {
        let idx = idx % self.micro_count;
        MicroWal {
            base: self.base + (idx * MICRO_ENTRIES * WAL_ENTRY_BYTES) as u64,
            map: Interleave::new(MICRO_ENTRIES, PER_LINE, stripes),
            next: 0,
        }
    }

    /// Collect the newest entry of every micro-log, sorted by global
    /// sequence number — the candidate set for recovery replay.
    pub fn replay_entries(&self, pool: &PmemPool) -> Vec<WalEntry> {
        let mut out = Vec::new();
        for m in 0..self.micro_count {
            let micro_base = self.base + (m * MICRO_ENTRIES * WAL_ENTRY_BYTES) as u64;
            let mut newest: Option<WalEntry> = None;
            for slot in 0..MICRO_ENTRIES {
                let off = micro_base + (slot * WAL_ENTRY_BYTES) as u64;
                let w2 = pool.read_u64(off + 16);
                let Some(op) = WalOp::from_code((w2 & 0xff) as u8) else { continue };
                let e = WalEntry {
                    op,
                    addr: pool.read_u64(off),
                    dest: pool.read_u64(off + 8),
                    size: (w2 >> 32) as u32,
                    seq: pool.read_u64(off + 24),
                };
                if newest.as_ref().is_none_or(|n| e.seq > n.seq) {
                    newest = Some(e);
                }
            }
            out.extend(newest);
        }
        out.sort_by_key(|e| e.seq);
        out
    }
}

/// One thread's private WAL slots. No locking: only the owning thread
/// appends.
#[derive(Debug)]
pub struct MicroWal {
    base: PmOffset,
    map: Interleave,
    next: usize,
}

impl MicroWal {
    /// Append one entry (overwriting the oldest slot), flush it, fence.
    #[allow(clippy::too_many_arguments)]
    pub fn append(
        &mut self,
        pool: &PmemPool,
        t: &mut PmThread,
        op: WalOp,
        addr: PmOffset,
        dest: PmOffset,
        size: u32,
        seq: u64,
    ) {
        let logical = self.next % MICRO_ENTRIES;
        self.next += 1;
        let off = self.base + (self.map.physical(logical) * WAL_ENTRY_BYTES) as u64;
        pool.write_u64(off, addr);
        pool.write_u64(off + 8, dest);
        pool.write_u64(off + 16, (size as u64) << 32 | (op.code() as u64));
        pool.write_u64(off + 24, seq);
        pool.charge_store(t, off, WAL_ENTRY_BYTES);
        pool.flush(t, off, WAL_ENTRY_BYTES, FlushKind::Wal);
        pool.fence(t);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nvalloc_pmem::{LatencyMode, PmemConfig};
    use std::sync::Arc;

    fn pool() -> Arc<PmemPool> {
        PmemPool::new(PmemConfig::default().pool_size(1 << 20).latency_mode(LatencyMode::Off))
    }

    #[test]
    fn replay_returns_newest_per_micro_log() {
        let p = pool();
        let mut t = p.register_thread();
        let r = WalRegion::create(&p, 0, 4);
        let mut m0 = r.micro(0, 1);
        let mut m1 = r.micro(1, 1);
        m0.append(&p, &mut t, WalOp::Alloc, 0x1000, 0x2000, 64, 1);
        m0.append(&p, &mut t, WalOp::Free, 0x1000, 0x2000, 0, 3);
        m1.append(&p, &mut t, WalOp::Alloc, 0x3000, 0x4000, 128, 2);
        let es = r.replay_entries(&p);
        assert_eq!(es.len(), 2, "one candidate per active micro-log");
        assert_eq!(es[0].seq, 2);
        assert_eq!(es[0].addr, 0x3000);
        assert_eq!(es[1].seq, 3);
        assert_eq!(es[1].op, WalOp::Free);
    }

    #[test]
    fn slot_rotation_survives_many_ops() {
        let p = pool();
        let mut t = p.register_thread();
        let r = WalRegion::create(&p, 0, 1);
        let mut m = r.micro(0, 6);
        for i in 1..=100u64 {
            m.append(&p, &mut t, WalOp::Alloc, i * 64, i, 64, i);
        }
        let es = r.replay_entries(&p);
        assert_eq!(es.len(), 1);
        assert_eq!(es[0].seq, 100, "newest entry wins");
    }

    #[test]
    fn entry_fields_roundtrip() {
        let p = pool();
        let mut t = p.register_thread();
        let r = WalRegion::create(&p, 4096, 2);
        let mut m = r.micro(0, 6);
        m.append(&p, &mut t, WalOp::Free, 0xAB00, 0xCD00, 777, 42);
        let es = r.replay_entries(&p);
        assert_eq!(
            es,
            vec![WalEntry { op: WalOp::Free, addr: 0xAB00, dest: 0xCD00, size: 777, seq: 42 }]
        );
    }

    #[test]
    fn micro_index_wraps() {
        let p = pool();
        let r = WalRegion::create(&p, 0, 2);
        // idx 5 wraps onto micro-log 1.
        let m = r.micro(5, 1);
        let m1 = r.micro(1, 1);
        assert_eq!(m.base, m1.base);
    }

    #[test]
    fn interleaved_slots_avoid_reflushes() {
        let run = |stripes: usize| {
            let p = PmemPool::new(
                PmemConfig::default().pool_size(1 << 20).latency_mode(LatencyMode::Virtual),
            );
            let mut t = p.register_thread();
            let r = WalRegion::create(&p, 0, 1);
            let mut m = r.micro(0, stripes);
            p.stats().reset();
            for i in 1..=64u64 {
                m.append(&p, &mut t, WalOp::Alloc, i * 64, i, 64, i);
                // Simulate the other flushes of an op (bitmap + dest) at
                // far-away lines.
                p.flush(&mut t, (1 << 18) + i * 4096, 8, FlushKind::Meta);
                p.flush(&mut t, (1 << 19) + i * 4096, 8, FlushKind::Meta);
            }
            p.stats().reflushes()
        };
        let flat = run(1);
        let il = run(6);
        assert!(flat > 20, "flat micro-log must reflush (got {flat})");
        assert_eq!(il, 0, "interleaved micro-log must not reflush (got {il})");
    }

    #[test]
    fn entries_survive_crash() {
        let p = PmemPool::new(
            PmemConfig::default()
                .pool_size(1 << 20)
                .latency_mode(LatencyMode::Off)
                .crash_tracking(true),
        );
        let mut t = p.register_thread();
        let r = WalRegion::create(&p, 0, 2);
        p.flush(&mut t, 0, WalRegion::region_bytes(2), FlushKind::Wal);
        let mut m = r.micro(0, 6);
        m.append(&p, &mut t, WalOp::Alloc, 0x5000, 0x6000, 100, 9);
        let reboot = PmemPool::from_crash_image(p.crash());
        let r2 = WalRegion::open(0, 2);
        let es = r2.replay_entries(&reboot);
        assert_eq!(es.len(), 1);
        assert_eq!(es[0].addr, 0x5000);
        assert_eq!(es[0].seq, 9);
    }
}
