//! Allocator-wide telemetry: internal event counters, op-latency
//! histograms over the virtual PM clock, and a dependency-free JSON
//! writer for machine-readable benchmark output.
//!
//! Telemetry is strictly *observational*: every counter is a volatile
//! (DRAM-side) relaxed atomic or a per-thread plain array, and latency is
//! sampled from the PM virtual clock that the cost model already
//! maintains. Enabling or disabling telemetry therefore never changes a
//! [`nvalloc_pmem::StatsSnapshot`] counter or a modelled elapsed time —
//! a property the workspace tests assert.
//!
//! Three layers:
//!
//! * [`CoreMetrics`] — the atomic registry embedded in the allocator:
//!   per-size-class tcache events, sub-tcache cursor rotations, slab
//!   lifecycle, slab-morphing progress, WAL traffic, and (merged in at
//!   snapshot time) bookkeeping-log and extent-allocator counters.
//! * [`LatencyHistogram`] / [`OpHistograms`] — log2-bucketed histograms of
//!   modelled nanoseconds per operation kind ([`OpKind`]), accumulated in
//!   per-thread plain arrays and merged when a thread handle drops.
//! * [`json`] — a minimal serde-free JSON-lines writer used by
//!   [`MetricsSnapshot::to_json`] and the benchmark harness.

use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::Mutex;

use crate::size_class::NUM_CLASSES;

/// Number of log2 latency buckets. Bucket 0 holds 0 ns samples; bucket
/// `b > 0` holds samples in `[2^(b-1), 2^b)` ns; the last bucket also
/// absorbs everything larger.
pub const HIST_BUCKETS: usize = 64;

/// Operation kinds with their own latency histogram.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpKind {
    /// `malloc_to` served by the small (slab) path.
    MallocSmall,
    /// `malloc_to` served by the large (extent) path.
    MallocLarge,
    /// `free_from` (either path).
    Free,
    /// A slab-morph transform (nested inside a small-malloc refill).
    Morph,
    /// A booklog slow-GC pass.
    SlowGc,
    /// Pool recovery (`NvAllocator::recover`).
    Recovery,
}

impl OpKind {
    /// Every kind, in stable (indexing and JSON) order.
    pub const ALL: [OpKind; 6] = [
        OpKind::MallocSmall,
        OpKind::MallocLarge,
        OpKind::Free,
        OpKind::Morph,
        OpKind::SlowGc,
        OpKind::Recovery,
    ];

    /// Number of kinds.
    pub const COUNT: usize = Self::ALL.len();

    #[inline]
    pub(crate) fn index(self) -> usize {
        match self {
            OpKind::MallocSmall => 0,
            OpKind::MallocLarge => 1,
            OpKind::Free => 2,
            OpKind::Morph => 3,
            OpKind::SlowGc => 4,
            OpKind::Recovery => 5,
        }
    }

    /// Snake-case label used as the JSON key.
    pub fn label(self) -> &'static str {
        match self {
            OpKind::MallocSmall => "malloc_small",
            OpKind::MallocLarge => "malloc_large",
            OpKind::Free => "free",
            OpKind::Morph => "morph",
            OpKind::SlowGc => "slow_gc",
            OpKind::Recovery => "recovery",
        }
    }
}

/// The log2 bucket index a sample of `ns` nanoseconds falls into.
#[inline]
pub fn bucket_index(ns: u64) -> usize {
    if ns == 0 {
        0
    } else {
        (64 - ns.leading_zeros() as usize).min(HIST_BUCKETS - 1)
    }
}

/// Inclusive lower bound of bucket `b` (0 for buckets 0 and 1).
pub fn bucket_low(b: usize) -> u64 {
    if b <= 1 {
        0
    } else {
        1u64 << (b - 1)
    }
}

/// Exclusive upper bound of bucket `b` (`u64::MAX` for the last bucket).
pub fn bucket_high(b: usize) -> u64 {
    if b == 0 {
        1
    } else if b >= HIST_BUCKETS - 1 {
        u64::MAX
    } else {
        1u64 << b
    }
}

/// A log2-bucketed latency histogram (fixed-size, allocation-free).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LatencyHistogram {
    /// Sample counts per bucket; see [`bucket_index`].
    pub buckets: [u64; HIST_BUCKETS],
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram { buckets: [0; HIST_BUCKETS] }
    }
}

impl LatencyHistogram {
    /// Record one sample of `ns` modelled nanoseconds.
    #[inline]
    pub fn record(&mut self, ns: u64) {
        self.buckets[bucket_index(ns)] += 1;
    }

    /// Total number of recorded samples.
    pub fn count(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// True when no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.buckets.iter().all(|&b| b == 0)
    }

    /// Add every bucket of `other` into `self`.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
    }

    /// Bucket-wise saturating difference `self - earlier`.
    pub fn since(&self, earlier: &LatencyHistogram) -> LatencyHistogram {
        let mut out = LatencyHistogram::default();
        for (i, o) in out.buckets.iter_mut().enumerate() {
            *o = self.buckets[i].saturating_sub(earlier.buckets[i]);
        }
        out
    }

    /// The `q`-quantile (`0.0 ..= 1.0`) of the recorded samples in
    /// nanoseconds, linearly interpolated within the containing log2
    /// bucket between [`bucket_low`] and [`bucket_high`]. Returns 0 for
    /// an empty histogram. Deterministic: the same buckets always yield
    /// the same value, so bench and core percentile columns agree by
    /// construction.
    pub fn quantile(&self, q: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        // 1-based rank of the sample the quantile falls on.
        let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
        let mut seen = 0u64;
        for (b, &n) in self.buckets.iter().enumerate() {
            if n == 0 {
                continue;
            }
            if seen + n >= rank {
                let lo = bucket_low(b);
                // The open upper bound of the last bucket is u64::MAX;
                // cap the interpolation span so the result stays finite.
                let hi = bucket_high(b).max(lo + 1);
                let within = (rank - seen) as f64 / n as f64;
                let est = lo as f64 + (hi - lo) as f64 * within;
                return est as u64;
            }
            seen += n;
        }
        bucket_high(HIST_BUCKETS - 1)
    }
}

/// One latency histogram per [`OpKind`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OpHistograms {
    /// Histograms indexed in [`OpKind::ALL`] order.
    pub hists: [LatencyHistogram; OpKind::COUNT],
}

impl OpHistograms {
    /// Record one sample for `kind`.
    #[inline]
    pub fn record(&mut self, kind: OpKind, ns: u64) {
        self.hists[kind.index()].record(ns);
    }

    /// The histogram for `kind`.
    pub fn of(&self, kind: OpKind) -> &LatencyHistogram {
        &self.hists[kind.index()]
    }

    /// Merge every histogram of `other` into `self`.
    pub fn merge(&mut self, other: &OpHistograms) {
        for (a, b) in self.hists.iter_mut().zip(other.hists.iter()) {
            a.merge(b);
        }
    }

    /// Histogram-wise saturating difference `self - earlier`.
    pub fn since(&self, earlier: &OpHistograms) -> OpHistograms {
        let mut out = OpHistograms::default();
        for (i, o) in out.hists.iter_mut().enumerate() {
            *o = self.hists[i].since(&earlier.hists[i]);
        }
        out
    }
}

/// Per-size-class tcache event kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TcacheEvent {
    /// `malloc` served straight from the cache.
    Hit,
    /// `malloc` found the cache empty (a refill follows).
    Miss,
    /// A refill attempt (freelist, morph, or new slab).
    Refill,
    /// A freed block bypassed the full cache back to its slab.
    Flush,
}

impl TcacheEvent {
    #[inline]
    fn index(self) -> usize {
        match self {
            TcacheEvent::Hit => 0,
            TcacheEvent::Miss => 1,
            TcacheEvent::Refill => 2,
            TcacheEvent::Flush => 3,
        }
    }
}

/// Scalar counters kept as relaxed atomics in [`CoreMetrics`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Counter {
    /// Sub-tcache cursor rotations (interleaved-tcache round-robin steps).
    CursorRotations,
    /// Slabs carved from the large allocator.
    SlabAllocs,
    /// Fully-free slabs returned to the large allocator.
    SlabRetires,
    /// Slabs examined as morph candidates (LRU scan length).
    MorphCandidates,
    /// Morph transforms started.
    MorphStarted,
    /// Morph transforms completed.
    MorphCompleted,
    /// Interrupted morphs rolled back or forward during recovery.
    MorphUndone,
    /// Micro-WAL entries appended.
    WalAppends,
    /// WAL entries replayed during recovery.
    WalReplays,
    /// Arena/large mutex acquisitions on the free path (slow frees only;
    /// the lock-free fast path never counts here).
    FreeLocks,
    /// Same-thread frees completed on the lock-free fast path.
    FreeFastLocal,
    /// Cross-arena frees pushed onto a remote-free queue.
    FreeRemote,
    /// Remote-free queue drain batches (non-empty drains).
    RemoteDrainBatches,
    /// Blocks returned to slabs by remote-queue drains.
    RemoteDrained,
    /// Foreign-arena remote queues drained opportunistically by a malloc
    /// slow path (the drain hook; counts non-empty drains).
    RemoteDrainForeign,
    /// Slab carves served from a per-arena reservoir.
    ReservoirHits,
    /// Slab carves that had to take a large-shard lock.
    ReservoirMisses,
    /// Wall-clock nanoseconds spent waiting to acquire instrumented
    /// mutexes (arena free/refill locks; large-shard waits are merged in
    /// by the front end at snapshot time).
    LockWaitNs,
    /// Wall-clock nanoseconds instrumented mutexes were held.
    LockHoldNs,
    /// Slow-path requests submitted to the allocator service's per-arena
    /// queues (retires past a full reservoir, restock carves).
    ServiceRequests,
    /// Service requests executed to completion by an epoch tick.
    ServiceCompletions,
    /// Service epoch ticks executed (cooperative or threaded).
    ServiceTicks,
    /// Occupancy-aware large-shard rebalance decisions that changed the
    /// overflow-shard preference.
    ServiceRebalances,
}

const NUM_COUNTERS: usize = 23;
const TCACHE_EVENTS: usize = 4;

/// A lock-free log2-bucketed histogram: the shared-atomic counterpart of
/// [`LatencyHistogram`], for samples recorded from arbitrary threads
/// without a mutex (lock wait/hold probes record from inside and around
/// critical sections, where taking the histogram mutex would itself
/// serialise).
#[derive(Debug)]
pub struct AtomicHistogram {
    buckets: [AtomicU64; HIST_BUCKETS],
}

impl Default for AtomicHistogram {
    fn default() -> Self {
        AtomicHistogram { buckets: [const { AtomicU64::new(0) }; HIST_BUCKETS] }
    }
}

impl AtomicHistogram {
    /// Record one sample of `ns` nanoseconds (relaxed; never blocks).
    #[inline]
    pub fn record(&self, ns: u64) {
        self.buckets[bucket_index(ns)].fetch_add(1, Ordering::Relaxed);
    }

    /// A plain-histogram copy of the current bucket counts.
    pub fn snapshot(&self) -> LatencyHistogram {
        let mut out = LatencyHistogram::default();
        for (o, b) in out.buckets.iter_mut().zip(self.buckets.iter()) {
            *o = b.load(Ordering::Relaxed);
        }
        out
    }
}

/// The allocator's internal metrics registry.
///
/// All mutation paths are relaxed atomic adds on DRAM-side state (or, for
/// histograms, merges of per-thread plain arrays under a mutex taken once
/// per thread lifetime), so recording perturbs neither the PM cost model
/// nor the virtual clocks. Constructed disabled for configurations with
/// `telemetry = false`; every recording call is then a no-op.
#[derive(Debug)]
pub struct CoreMetrics {
    enabled: bool,
    tcache: Vec<[AtomicU64; TCACHE_EVENTS]>,
    counters: [AtomicU64; NUM_COUNTERS],
    hists: Mutex<OpHistograms>,
    lock_wait: AtomicHistogram,
    lock_hold: AtomicHistogram,
}

impl CoreMetrics {
    /// Create a registry; `enabled = false` turns every recording call
    /// into a no-op and leaves the snapshot all-zero.
    pub fn new(enabled: bool) -> Self {
        CoreMetrics {
            enabled,
            tcache: (0..NUM_CLASSES).map(|_| Default::default()).collect(),
            counters: Default::default(),
            hists: Mutex::new(OpHistograms::default()),
            lock_wait: AtomicHistogram::default(),
            lock_hold: AtomicHistogram::default(),
        }
    }

    /// Whether recording is enabled.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Count one tcache event for `class`.
    #[inline]
    pub fn tcache_event(&self, class: usize, ev: TcacheEvent) {
        if self.enabled {
            self.tcache[class][ev.index()].fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Add `n` to a scalar counter.
    #[inline]
    pub fn add(&self, c: Counter, n: u64) {
        if self.enabled && n > 0 {
            self.counters[c as usize].fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Add 1 to a scalar counter.
    #[inline]
    pub fn bump(&self, c: Counter) {
        self.add(c, 1);
    }

    /// Merge a thread's local histograms (called when the thread handle
    /// drops, and once by recovery).
    pub fn merge_hists(&self, local: &OpHistograms) {
        if self.enabled {
            self.hists.lock().merge(local);
        }
    }

    /// Record a single histogram sample directly (recovery path).
    pub fn record_hist(&self, kind: OpKind, ns: u64) {
        if self.enabled {
            self.hists.lock().record(kind, ns);
        }
    }

    /// Copy of the registry's merged op histograms (the timeline sampler
    /// diffs consecutive copies into windowed quantiles).
    pub fn hists(&self) -> OpHistograms {
        *self.hists.lock()
    }

    /// Current value of one scalar counter.
    pub fn counter(&self, c: Counter) -> u64 {
        self.counters[c as usize].load(Ordering::Relaxed)
    }

    /// Record one instrumented mutex acquisition: `wait_ns` spent blocked
    /// before the lock was granted, `hold_ns` inside the critical section
    /// (both wall-clock). Lock-free: totals are relaxed atomic adds and
    /// the histograms are [`AtomicHistogram`]s, so recording from a
    /// guard's `Drop` never takes another lock.
    #[inline]
    pub fn record_lock(&self, wait_ns: u64, hold_ns: u64) {
        if self.enabled {
            self.counters[Counter::LockWaitNs as usize].fetch_add(wait_ns, Ordering::Relaxed);
            self.counters[Counter::LockHoldNs as usize].fetch_add(hold_ns, Ordering::Relaxed);
            self.lock_wait.record(wait_ns);
            self.lock_hold.record(hold_ns);
        }
    }

    /// A point-in-time copy of every counter owned by the registry.
    /// Bookkeeping-log and extent-allocator fields are zero here; the
    /// allocator front end merges them in (they live under its large-
    /// allocator lock).
    pub fn snapshot(&self) -> MetricsSnapshot {
        let mut s = MetricsSnapshot::default();
        for (class, evs) in self.tcache.iter().enumerate() {
            let c = TcacheClassCounters {
                class,
                hits: evs[0].load(Ordering::Relaxed),
                misses: evs[1].load(Ordering::Relaxed),
                refills: evs[2].load(Ordering::Relaxed),
                flushes: evs[3].load(Ordering::Relaxed),
            };
            s.tcache_hits += c.hits;
            s.tcache_misses += c.misses;
            s.tcache_refills += c.refills;
            s.tcache_flushes += c.flushes;
            s.tcache_by_class.push(c);
        }
        let c = |i: Counter| self.counters[i as usize].load(Ordering::Relaxed);
        s.cursor_rotations = c(Counter::CursorRotations);
        s.slab_allocs = c(Counter::SlabAllocs);
        s.slab_retires = c(Counter::SlabRetires);
        s.morph_candidates = c(Counter::MorphCandidates);
        s.morph_started = c(Counter::MorphStarted);
        s.morph_completed = c(Counter::MorphCompleted);
        s.morph_undone = c(Counter::MorphUndone);
        s.wal_appends = c(Counter::WalAppends);
        s.wal_replays = c(Counter::WalReplays);
        s.free_locks = c(Counter::FreeLocks);
        s.free_fast_local = c(Counter::FreeFastLocal);
        s.free_remote = c(Counter::FreeRemote);
        s.remote_drain_batches = c(Counter::RemoteDrainBatches);
        s.remote_drained = c(Counter::RemoteDrained);
        s.remote_drain_foreign = c(Counter::RemoteDrainForeign);
        s.reservoir_hits = c(Counter::ReservoirHits);
        s.reservoir_misses = c(Counter::ReservoirMisses);
        s.lock_wait_ns = c(Counter::LockWaitNs);
        s.lock_hold_ns = c(Counter::LockHoldNs);
        s.service_requests = c(Counter::ServiceRequests);
        s.service_completions = c(Counter::ServiceCompletions);
        s.service_ticks = c(Counter::ServiceTicks);
        s.service_rebalances = c(Counter::ServiceRebalances);
        s.lock_wait_hist = self.lock_wait.snapshot();
        s.lock_hold_hist = self.lock_hold.snapshot();
        s.hists = *self.hists.lock();
        s
    }
}

/// Tcache event counts for one size class.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TcacheClassCounters {
    /// Size class index.
    pub class: usize,
    /// Cache hits.
    pub hits: u64,
    /// Cache misses.
    pub misses: u64,
    /// Refill attempts.
    pub refills: u64,
    /// Full-cache flushes back to the slab.
    pub flushes: u64,
}

impl TcacheClassCounters {
    fn any(&self) -> bool {
        self.hits | self.misses | self.refills | self.flushes != 0
    }

    fn since(&self, earlier: &TcacheClassCounters) -> TcacheClassCounters {
        TcacheClassCounters {
            class: self.class,
            hits: self.hits.saturating_sub(earlier.hits),
            misses: self.misses.saturating_sub(earlier.misses),
            refills: self.refills.saturating_sub(earlier.refills),
            flushes: self.flushes.saturating_sub(earlier.flushes),
        }
    }
}

/// Version of the exported JSON surfaces ([`MetricsSnapshot::to_json`],
/// timeline JSON-lines, profile dumps). External scrapers key on this to
/// detect format changes; bump it whenever a field is renamed, removed,
/// or changes meaning (pure additions may keep the version).
///
/// History: 1 = PR 6 (metrics + timeline), 2 = PR 9 (explicit
/// `schema_version` field everywhere + profiler fields/dumps).
pub const SCHEMA_VERSION: u64 = 2;

/// A point-in-time copy of the allocator's internal metrics, cheap to
/// diff between benchmark phases with [`MetricsSnapshot::since`].
///
/// Allocators without internal telemetry (the baselines) return the
/// all-zero default from [`crate::api::PmAllocator::metrics`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// Tcache hits summed over classes.
    pub tcache_hits: u64,
    /// Tcache misses summed over classes.
    pub tcache_misses: u64,
    /// Tcache refills summed over classes.
    pub tcache_refills: u64,
    /// Tcache full-cache flushes summed over classes.
    pub tcache_flushes: u64,
    /// Per-class tcache counters (one entry per size class).
    pub tcache_by_class: Vec<TcacheClassCounters>,
    /// Sub-tcache cursor rotations.
    pub cursor_rotations: u64,
    /// Slabs carved from the large allocator.
    pub slab_allocs: u64,
    /// Fully-free slabs returned to the large allocator.
    pub slab_retires: u64,
    /// Slabs examined as morph candidates.
    pub morph_candidates: u64,
    /// Morph transforms started.
    pub morph_started: u64,
    /// Morph transforms completed.
    pub morph_completed: u64,
    /// Interrupted morphs resolved during recovery.
    pub morph_undone: u64,
    /// Micro-WAL entries appended.
    pub wal_appends: u64,
    /// WAL entries replayed during recovery.
    pub wal_replays: u64,
    /// Mutex acquisitions on the free path (slow frees only).
    pub free_locks: u64,
    /// Same-thread frees completed on the lock-free fast path.
    pub free_fast_local: u64,
    /// Cross-arena frees pushed onto a remote-free queue.
    pub free_remote: u64,
    /// Remote-free queue drain batches (non-empty drains).
    pub remote_drain_batches: u64,
    /// Blocks returned to slabs by remote-queue drains.
    pub remote_drained: u64,
    /// Foreign-arena remote queues drained opportunistically by a malloc
    /// slow path (the drain hook; counts non-empty drains).
    pub remote_drain_foreign: u64,
    /// Large-shard mutex acquisitions on the large-op path (alloc, free,
    /// and slab carve/retire; observer reads are excluded).
    pub large_lock_acquires: u64,
    /// Large-shard mutex acquisitions that found the lock held and had to
    /// block. `large_lock_contended / large_lock_acquires` is the shard
    /// contention rate.
    pub large_lock_contended: u64,
    /// Per-shard breakdown of [`Self::large_lock_acquires`], indexed by
    /// shard number.
    pub large_shard_acquires: Vec<u64>,
    /// Per-shard breakdown of [`Self::large_lock_contended`], indexed by
    /// shard number.
    pub large_shard_contended: Vec<u64>,
    /// Slab carves served from a per-arena reservoir.
    pub reservoir_hits: u64,
    /// Slab carves that had to take the large-allocator lock.
    pub reservoir_misses: u64,
    /// Wall-clock nanoseconds spent waiting to acquire instrumented
    /// mutexes (arena free/refill locks and large-shard locks for
    /// NVAlloc; the global heap/large/WAL mutexes for the baselines).
    /// Wall-clock, not modelled: contention is a host-scheduling effect
    /// the virtual clocks deliberately do not see.
    pub lock_wait_ns: u64,
    /// Wall-clock nanoseconds instrumented mutexes were held.
    pub lock_hold_ns: u64,
    /// Slow-path requests submitted to the allocator service's per-arena
    /// queues ([`crate::service`]).
    pub service_requests: u64,
    /// Service requests executed to completion by an epoch tick.
    pub service_completions: u64,
    /// Service epoch ticks executed.
    pub service_ticks: u64,
    /// Shard-rebalance decisions that changed the overflow preference.
    pub service_rebalances: u64,
    /// Histogram of per-acquisition lock wait times (wall-clock ns).
    pub lock_wait_hist: LatencyHistogram,
    /// Histogram of per-acquisition lock hold times (wall-clock ns).
    pub lock_hold_hist: LatencyHistogram,
    /// Flight-recorder events captured (still resident in the rings).
    pub trace_events: u64,
    /// Flight-recorder events overwritten by drop-oldest wraparound.
    pub trace_dropped: u64,
    /// Bookkeeping-log entries appended (includes slow-GC copies).
    pub booklog_appends: u64,
    /// Bookkeeping-log tombstones appended.
    pub booklog_tombstones: u64,
    /// Fast-GC passes over the booklog.
    pub booklog_fast_gc_runs: u64,
    /// Empty chunks reaped by fast GC.
    pub booklog_fast_gc_reaps: u64,
    /// Slow-GC passes over the booklog.
    pub booklog_slow_gc_runs: u64,
    /// Live entries copied by slow GC.
    pub booklog_slow_gc_copied: u64,
    /// Dual-chain head flips performed by slow GC.
    pub booklog_alt_flips: u64,
    /// Extent allocations served by best-fit from the free lists.
    pub extent_best_fit: u64,
    /// Extent splits (head/tail remainders produced by carving).
    pub extent_splits: u64,
    /// Extent coalesces with address-adjacent reclaimed neighbours.
    pub extent_coalesces: u64,
    /// Decay-schedule ticks executed by the large allocator.
    pub decay_epochs: u64,
    /// pmsan: stores over a flushed-but-unfenced line (ordering races).
    pub pmsan_store_unfenced: u64,
    /// pmsan: fences issued with zero pending flushes.
    pub pmsan_empty_fence: u64,
    /// pmsan: flushes of lines with nothing unpersisted.
    pub pmsan_redundant_flush: u64,
    /// pmsan: lines still unpersisted at the shutdown audit.
    pub pmsan_shutdown_dirty: u64,
    /// pmsan: total persist-ordering violations (sum of the four above).
    pub pmsan_violations: u64,
    /// Profiler: sampled allocation events ([`crate::prof`]).
    pub prof_samples: u64,
    /// Profiler: provenance-sidelog records appended (ALLOC + FREE).
    pub prof_appends: u64,
    /// Profiler: sampled free events (FREE records for sampled objects).
    pub prof_frees: u64,
    /// Profiler: sidelog half compactions.
    pub prof_compactions: u64,
    /// Profiler: records dropped because both sidelog halves were full of
    /// live records (coverage loss, not corruption).
    pub prof_dropped: u64,
    /// Op-latency histograms over the virtual PM clock.
    pub hists: OpHistograms,
}

impl MetricsSnapshot {
    /// Counter-wise saturating difference `self - earlier` (for phase
    /// measurements). Counters are monotone while an allocator is alive,
    /// so the subtraction only saturates when snapshots from different
    /// allocator instances are mixed; saturating keeps even that case
    /// panic-free. Per-class entries missing from `earlier` are treated
    /// as zero.
    pub fn since(&self, earlier: &MetricsSnapshot) -> MetricsSnapshot {
        let zero = TcacheClassCounters::default();
        let tcache_by_class = self
            .tcache_by_class
            .iter()
            .enumerate()
            .map(|(i, c)| c.since(earlier.tcache_by_class.get(i).unwrap_or(&zero)))
            .collect();
        MetricsSnapshot {
            tcache_hits: self.tcache_hits.saturating_sub(earlier.tcache_hits),
            tcache_misses: self.tcache_misses.saturating_sub(earlier.tcache_misses),
            tcache_refills: self.tcache_refills.saturating_sub(earlier.tcache_refills),
            tcache_flushes: self.tcache_flushes.saturating_sub(earlier.tcache_flushes),
            tcache_by_class,
            cursor_rotations: self.cursor_rotations.saturating_sub(earlier.cursor_rotations),
            slab_allocs: self.slab_allocs.saturating_sub(earlier.slab_allocs),
            slab_retires: self.slab_retires.saturating_sub(earlier.slab_retires),
            morph_candidates: self.morph_candidates.saturating_sub(earlier.morph_candidates),
            morph_started: self.morph_started.saturating_sub(earlier.morph_started),
            morph_completed: self.morph_completed.saturating_sub(earlier.morph_completed),
            morph_undone: self.morph_undone.saturating_sub(earlier.morph_undone),
            wal_appends: self.wal_appends.saturating_sub(earlier.wal_appends),
            wal_replays: self.wal_replays.saturating_sub(earlier.wal_replays),
            free_locks: self.free_locks.saturating_sub(earlier.free_locks),
            free_fast_local: self.free_fast_local.saturating_sub(earlier.free_fast_local),
            free_remote: self.free_remote.saturating_sub(earlier.free_remote),
            remote_drain_batches: self
                .remote_drain_batches
                .saturating_sub(earlier.remote_drain_batches),
            remote_drained: self.remote_drained.saturating_sub(earlier.remote_drained),
            remote_drain_foreign: self
                .remote_drain_foreign
                .saturating_sub(earlier.remote_drain_foreign),
            large_lock_acquires: self
                .large_lock_acquires
                .saturating_sub(earlier.large_lock_acquires),
            large_lock_contended: self
                .large_lock_contended
                .saturating_sub(earlier.large_lock_contended),
            large_shard_acquires: Self::vec_since(
                &self.large_shard_acquires,
                &earlier.large_shard_acquires,
            ),
            large_shard_contended: Self::vec_since(
                &self.large_shard_contended,
                &earlier.large_shard_contended,
            ),
            reservoir_hits: self.reservoir_hits.saturating_sub(earlier.reservoir_hits),
            reservoir_misses: self.reservoir_misses.saturating_sub(earlier.reservoir_misses),
            lock_wait_ns: self.lock_wait_ns.saturating_sub(earlier.lock_wait_ns),
            lock_hold_ns: self.lock_hold_ns.saturating_sub(earlier.lock_hold_ns),
            service_requests: self.service_requests.saturating_sub(earlier.service_requests),
            service_completions: self
                .service_completions
                .saturating_sub(earlier.service_completions),
            service_ticks: self.service_ticks.saturating_sub(earlier.service_ticks),
            service_rebalances: self.service_rebalances.saturating_sub(earlier.service_rebalances),
            lock_wait_hist: self.lock_wait_hist.since(&earlier.lock_wait_hist),
            lock_hold_hist: self.lock_hold_hist.since(&earlier.lock_hold_hist),
            trace_events: self.trace_events.saturating_sub(earlier.trace_events),
            trace_dropped: self.trace_dropped.saturating_sub(earlier.trace_dropped),
            booklog_appends: self.booklog_appends.saturating_sub(earlier.booklog_appends),
            booklog_tombstones: self.booklog_tombstones.saturating_sub(earlier.booklog_tombstones),
            booklog_fast_gc_runs: self
                .booklog_fast_gc_runs
                .saturating_sub(earlier.booklog_fast_gc_runs),
            booklog_fast_gc_reaps: self
                .booklog_fast_gc_reaps
                .saturating_sub(earlier.booklog_fast_gc_reaps),
            booklog_slow_gc_runs: self
                .booklog_slow_gc_runs
                .saturating_sub(earlier.booklog_slow_gc_runs),
            booklog_slow_gc_copied: self
                .booklog_slow_gc_copied
                .saturating_sub(earlier.booklog_slow_gc_copied),
            booklog_alt_flips: self.booklog_alt_flips.saturating_sub(earlier.booklog_alt_flips),
            extent_best_fit: self.extent_best_fit.saturating_sub(earlier.extent_best_fit),
            extent_splits: self.extent_splits.saturating_sub(earlier.extent_splits),
            extent_coalesces: self.extent_coalesces.saturating_sub(earlier.extent_coalesces),
            decay_epochs: self.decay_epochs.saturating_sub(earlier.decay_epochs),
            pmsan_store_unfenced: self
                .pmsan_store_unfenced
                .saturating_sub(earlier.pmsan_store_unfenced),
            pmsan_empty_fence: self.pmsan_empty_fence.saturating_sub(earlier.pmsan_empty_fence),
            pmsan_redundant_flush: self
                .pmsan_redundant_flush
                .saturating_sub(earlier.pmsan_redundant_flush),
            pmsan_shutdown_dirty: self
                .pmsan_shutdown_dirty
                .saturating_sub(earlier.pmsan_shutdown_dirty),
            pmsan_violations: self.pmsan_violations.saturating_sub(earlier.pmsan_violations),
            prof_samples: self.prof_samples.saturating_sub(earlier.prof_samples),
            prof_appends: self.prof_appends.saturating_sub(earlier.prof_appends),
            prof_frees: self.prof_frees.saturating_sub(earlier.prof_frees),
            prof_compactions: self.prof_compactions.saturating_sub(earlier.prof_compactions),
            prof_dropped: self.prof_dropped.saturating_sub(earlier.prof_dropped),
            hists: self.hists.since(&earlier.hists),
        }
    }

    /// Elementwise saturating difference of per-shard counter vectors;
    /// entries missing from `earlier` are treated as zero (mirrors the
    /// per-class tcache convention).
    fn vec_since(now: &[u64], earlier: &[u64]) -> Vec<u64> {
        now.iter()
            .enumerate()
            .map(|(i, v)| v.saturating_sub(*earlier.get(i).unwrap_or(&0)))
            .collect()
    }

    /// The snapshot as one JSON object (no trailing newline). Per-class
    /// tcache counters are emitted only for classes with activity;
    /// histograms are emitted as 64-element bucket arrays per op kind.
    pub fn to_json(&self) -> String {
        let mut o = json::JsonObj::new();
        o.field_u64("schema_version", SCHEMA_VERSION);
        o.field_u64("tcache_hits", self.tcache_hits);
        o.field_u64("tcache_misses", self.tcache_misses);
        o.field_u64("tcache_refills", self.tcache_refills);
        o.field_u64("tcache_flushes", self.tcache_flushes);
        let classes: Vec<String> = self
            .tcache_by_class
            .iter()
            .filter(|c| c.any())
            .map(|c| {
                let mut e = json::JsonObj::new();
                e.field_u64("class", c.class as u64);
                e.field_u64("hits", c.hits);
                e.field_u64("misses", c.misses);
                e.field_u64("refills", c.refills);
                e.field_u64("flushes", c.flushes);
                e.finish()
            })
            .collect();
        o.field_raw("tcache_by_class", &format!("[{}]", classes.join(",")));
        o.field_u64("cursor_rotations", self.cursor_rotations);
        o.field_u64("slab_allocs", self.slab_allocs);
        o.field_u64("slab_retires", self.slab_retires);
        o.field_u64("morph_candidates", self.morph_candidates);
        o.field_u64("morph_started", self.morph_started);
        o.field_u64("morph_completed", self.morph_completed);
        o.field_u64("morph_undone", self.morph_undone);
        o.field_u64("wal_appends", self.wal_appends);
        o.field_u64("wal_replays", self.wal_replays);
        o.field_u64("free_locks", self.free_locks);
        o.field_u64("free_fast_local", self.free_fast_local);
        o.field_u64("free_remote", self.free_remote);
        o.field_u64("remote_drain_batches", self.remote_drain_batches);
        o.field_u64("remote_drained", self.remote_drained);
        o.field_u64("remote_drain_foreign", self.remote_drain_foreign);
        o.field_u64("large_lock_acquires", self.large_lock_acquires);
        o.field_u64("large_lock_contended", self.large_lock_contended);
        o.field_raw("large_shard_acquires", &json::u64_array(&self.large_shard_acquires));
        o.field_raw("large_shard_contended", &json::u64_array(&self.large_shard_contended));
        o.field_u64("reservoir_hits", self.reservoir_hits);
        o.field_u64("reservoir_misses", self.reservoir_misses);
        o.field_u64("lock_wait_ns", self.lock_wait_ns);
        o.field_u64("lock_hold_ns", self.lock_hold_ns);
        o.field_u64("service_requests", self.service_requests);
        o.field_u64("service_completions", self.service_completions);
        o.field_u64("service_ticks", self.service_ticks);
        o.field_u64("service_rebalances", self.service_rebalances);
        o.field_u64("trace_events", self.trace_events);
        o.field_u64("trace_dropped", self.trace_dropped);
        o.field_u64("booklog_appends", self.booklog_appends);
        o.field_u64("booklog_tombstones", self.booklog_tombstones);
        o.field_u64("booklog_fast_gc_runs", self.booklog_fast_gc_runs);
        o.field_u64("booklog_fast_gc_reaps", self.booklog_fast_gc_reaps);
        o.field_u64("booklog_slow_gc_runs", self.booklog_slow_gc_runs);
        o.field_u64("booklog_slow_gc_copied", self.booklog_slow_gc_copied);
        o.field_u64("booklog_alt_flips", self.booklog_alt_flips);
        o.field_u64("pmsan_store_unfenced", self.pmsan_store_unfenced);
        o.field_u64("pmsan_empty_fence", self.pmsan_empty_fence);
        o.field_u64("pmsan_redundant_flush", self.pmsan_redundant_flush);
        o.field_u64("pmsan_shutdown_dirty", self.pmsan_shutdown_dirty);
        o.field_u64("pmsan_violations", self.pmsan_violations);
        o.field_u64("prof_samples", self.prof_samples);
        o.field_u64("prof_appends", self.prof_appends);
        o.field_u64("prof_frees", self.prof_frees);
        o.field_u64("prof_compactions", self.prof_compactions);
        o.field_u64("prof_dropped", self.prof_dropped);
        o.field_u64("extent_best_fit", self.extent_best_fit);
        o.field_u64("extent_splits", self.extent_splits);
        o.field_u64("extent_coalesces", self.extent_coalesces);
        o.field_u64("decay_epochs", self.decay_epochs);
        let mut h = json::JsonObj::new();
        for kind in OpKind::ALL {
            h.field_raw(kind.label(), &json::u64_array(&self.hists.of(kind).buckets));
        }
        h.field_raw("lock_wait", &json::u64_array(&self.lock_wait_hist.buckets));
        h.field_raw("lock_hold", &json::u64_array(&self.lock_hold_hist.buckets));
        o.field_raw("hist", &h.finish());
        let mut q = json::JsonObj::new();
        for kind in OpKind::ALL {
            let hist = self.hists.of(kind);
            let mut kq = json::JsonObj::new();
            kq.field_u64("count", hist.count());
            kq.field_u64("p50", hist.quantile(0.50));
            kq.field_u64("p95", hist.quantile(0.95));
            kq.field_u64("p99", hist.quantile(0.99));
            kq.field_u64("p999", hist.quantile(0.999));
            q.field_raw(kind.label(), &kq.finish());
        }
        o.field_raw("latency", &q.finish());
        o.finish()
    }
}

/// A minimal, serde-free JSON writer (objects, string escaping, numeric
/// arrays) — enough for JSON-lines benchmark records.
pub mod json {
    /// Escape `s` as JSON string *content* (no surrounding quotes).
    pub fn escape(s: &str) -> String {
        let mut out = String::with_capacity(s.len());
        for ch in s.chars() {
            match ch {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                '\r' => out.push_str("\\r"),
                '\t' => out.push_str("\\t"),
                '\u{08}' => out.push_str("\\b"),
                '\u{0c}' => out.push_str("\\f"),
                c if (c as u32) < 0x20 => {
                    out.push_str(&format!("\\u{:04x}", c as u32));
                }
                c => out.push(c),
            }
        }
        out
    }

    /// Invert [`escape`]: decode JSON string content back to the original
    /// text. Returns `None` on malformed escapes (used by round-trip
    /// tests and quick validators).
    pub fn unescape(s: &str) -> Option<String> {
        let mut out = String::with_capacity(s.len());
        let mut chars = s.chars();
        while let Some(c) = chars.next() {
            if c != '\\' {
                out.push(c);
                continue;
            }
            match chars.next()? {
                '"' => out.push('"'),
                '\\' => out.push('\\'),
                '/' => out.push('/'),
                'n' => out.push('\n'),
                'r' => out.push('\r'),
                't' => out.push('\t'),
                'b' => out.push('\u{08}'),
                'f' => out.push('\u{0c}'),
                'u' => {
                    let hex: String = (0..4).map(|_| chars.next()).collect::<Option<_>>()?;
                    let cp = u32::from_str_radix(&hex, 16).ok()?;
                    out.push(char::from_u32(cp)?);
                }
                _ => return None,
            }
        }
        Some(out)
    }

    /// Render a `u64` slice as a JSON array.
    pub fn u64_array(xs: &[u64]) -> String {
        let mut out = String::with_capacity(2 + xs.len() * 2);
        out.push('[');
        for (i, x) in xs.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&x.to_string());
        }
        out.push(']');
        out
    }

    /// An incrementally built JSON object.
    #[derive(Debug, Default)]
    pub struct JsonObj {
        buf: String,
    }

    impl JsonObj {
        /// Start an empty object.
        pub fn new() -> JsonObj {
            JsonObj { buf: String::new() }
        }

        fn key(&mut self, k: &str) {
            if !self.buf.is_empty() {
                self.buf.push(',');
            }
            self.buf.push('"');
            self.buf.push_str(&escape(k));
            self.buf.push_str("\":");
        }

        /// Add a string field (escaped).
        pub fn field_str(&mut self, k: &str, v: &str) {
            self.key(k);
            self.buf.push('"');
            self.buf.push_str(&escape(v));
            self.buf.push('"');
        }

        /// Add an unsigned integer field.
        pub fn field_u64(&mut self, k: &str, v: u64) {
            self.key(k);
            self.buf.push_str(&v.to_string());
        }

        /// Add a float field (`null` for non-finite values).
        pub fn field_f64(&mut self, k: &str, v: f64) {
            self.key(k);
            if v.is_finite() {
                self.buf.push_str(&format!("{v}"));
            } else {
                self.buf.push_str("null");
            }
        }

        /// Add a pre-rendered JSON value verbatim.
        pub fn field_raw(&mut self, k: &str, v: &str) {
            self.key(k);
            self.buf.push_str(v);
        }

        /// Close the object and return it.
        pub fn finish(self) -> String {
            format!("{{{}}}", self.buf)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(1023), 10);
        assert_eq!(bucket_index(1024), 11);
        assert_eq!(bucket_index(u64::MAX), HIST_BUCKETS - 1);
        // Every sample falls inside its bucket's [low, high) bounds.
        for ns in [0u64, 1, 2, 3, 7, 8, 100, 1 << 20, u64::MAX] {
            let b = bucket_index(ns);
            assert!(ns >= bucket_low(b), "{ns} below bucket {b} low");
            if b < HIST_BUCKETS - 1 {
                assert!(ns < bucket_high(b), "{ns} above bucket {b} high");
            }
        }
    }

    #[test]
    fn histogram_record_merge_since() {
        let mut a = LatencyHistogram::default();
        a.record(0);
        a.record(5);
        a.record(5);
        assert_eq!(a.count(), 3);
        let snap = a;
        a.record(1000);
        let d = a.since(&snap);
        assert_eq!(d.count(), 1);
        assert_eq!(d.buckets[bucket_index(1000)], 1);
        let mut b = LatencyHistogram::default();
        b.record(7);
        b.merge(&a);
        assert_eq!(b.count(), a.count() + 1);
    }

    #[test]
    fn metrics_registry_counts_and_disabled_is_noop() {
        let m = CoreMetrics::new(true);
        m.tcache_event(3, TcacheEvent::Hit);
        m.tcache_event(3, TcacheEvent::Hit);
        m.tcache_event(5, TcacheEvent::Miss);
        m.bump(Counter::WalAppends);
        m.add(Counter::SlabAllocs, 4);
        m.record_hist(OpKind::Free, 700);
        let s = m.snapshot();
        assert_eq!(s.tcache_hits, 2);
        assert_eq!(s.tcache_misses, 1);
        assert_eq!(s.tcache_by_class[3].hits, 2);
        assert_eq!(s.tcache_by_class[5].misses, 1);
        assert_eq!(s.wal_appends, 1);
        assert_eq!(s.slab_allocs, 4);
        assert_eq!(s.hists.of(OpKind::Free).count(), 1);

        let off = CoreMetrics::new(false);
        off.tcache_event(0, TcacheEvent::Hit);
        off.bump(Counter::WalAppends);
        off.record_hist(OpKind::Free, 1);
        let s = off.snapshot();
        assert_eq!(
            s,
            MetricsSnapshot { tcache_by_class: s.tcache_by_class.clone(), ..Default::default() }
        );
        assert_eq!(s.tcache_hits, 0);
    }

    #[test]
    fn snapshot_since_diffs() {
        let m = CoreMetrics::new(true);
        m.tcache_event(0, TcacheEvent::Hit);
        m.bump(Counter::WalAppends);
        let a = m.snapshot();
        m.tcache_event(0, TcacheEvent::Hit);
        m.tcache_event(1, TcacheEvent::Flush);
        m.bump(Counter::MorphStarted);
        m.record_hist(OpKind::MallocSmall, 300);
        let d = m.snapshot().since(&a);
        assert_eq!(d.tcache_hits, 1);
        assert_eq!(d.tcache_by_class[0].hits, 1);
        assert_eq!(d.tcache_flushes, 1);
        assert_eq!(d.wal_appends, 0);
        assert_eq!(d.morph_started, 1);
        assert_eq!(d.hists.of(OpKind::MallocSmall).count(), 1);
        // Mixed-instance diffs saturate instead of panicking.
        let other = CoreMetrics::new(true);
        let z = other.snapshot().since(&m.snapshot());
        assert_eq!(z.tcache_hits, 0);
    }

    #[test]
    fn quantile_is_monotone_and_bounded() {
        let mut h = LatencyHistogram::default();
        assert_eq!(h.quantile(0.5), 0, "empty histogram");
        for ns in [100u64, 200, 400, 800, 1600, 3200, 6400, 12800, 25600, 51200] {
            h.record(ns);
        }
        let (p50, p95, p99, p999) =
            (h.quantile(0.50), h.quantile(0.95), h.quantile(0.99), h.quantile(0.999));
        assert!(p50 <= p95 && p95 <= p99 && p99 <= p999, "{p50} {p95} {p99} {p999}");
        // Every quantile lands inside the recorded range's buckets.
        assert!(p50 >= bucket_low(bucket_index(100)));
        assert!(p999 <= bucket_high(bucket_index(51200)));
        // Out-of-range q clamps rather than panicking.
        assert_eq!(h.quantile(-1.0), h.quantile(0.0));
        assert_eq!(h.quantile(2.0), h.quantile(1.0));
        // A single-sample histogram puts every quantile in that bucket.
        let mut one = LatencyHistogram::default();
        one.record(1000);
        let b = bucket_index(1000);
        for q in [0.0, 0.5, 1.0] {
            let v = one.quantile(q);
            assert!(v >= bucket_low(b) && v <= bucket_high(b), "q={q} v={v}");
        }
    }

    #[test]
    fn snapshot_json_has_latency_quantiles() {
        let m = CoreMetrics::new(true);
        m.record_hist(OpKind::MallocSmall, 500);
        m.record_hist(OpKind::MallocSmall, 900);
        let j = m.snapshot().to_json();
        assert!(j.contains("\"latency\":{\"malloc_small\":{\"count\":2,\"p50\":"), "{j}");
        assert!(j.contains("\"p999\":"), "{j}");
    }

    #[test]
    fn json_escape_and_object() {
        assert_eq!(json::escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json::unescape(&json::escape("tab\there")).unwrap(), "tab\there");
        assert_eq!(json::unescape("\\u0041").unwrap(), "A");
        assert!(json::unescape("\\x").is_none());
        let mut o = json::JsonObj::new();
        o.field_str("name", "NVAlloc-LOG");
        o.field_u64("ops", 42);
        o.field_f64("mops", 1.5);
        o.field_raw("arr", &json::u64_array(&[1, 2, 3]));
        assert_eq!(
            o.finish(),
            "{\"name\":\"NVAlloc-LOG\",\"ops\":42,\"mops\":1.5,\"arr\":[1,2,3]}"
        );
    }

    #[test]
    fn metrics_to_json_is_valid_shape() {
        let m = CoreMetrics::new(true);
        m.tcache_event(2, TcacheEvent::Hit);
        let j = m.snapshot().to_json();
        assert!(j.starts_with('{') && j.ends_with('}'));
        assert!(j.contains("\"tcache_hits\":1"));
        assert!(j.contains("\"tcache_by_class\":[{\"class\":2,"));
        assert!(j.contains("\"hist\":{\"malloc_small\":["));
        // Quiet classes are omitted from the per-class list.
        assert!(!j.contains("\"class\":0,"));
    }
}
