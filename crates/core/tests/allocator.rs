//! End-to-end tests of the NVAlloc front end: allocation correctness,
//! multi-threading, morphing under fragmentation, recovery, and crash
//! injection.

use std::collections::HashMap;
use std::sync::Arc;

use nvalloc::api::PmAllocator;
use nvalloc::{NvAllocator, NvConfig, PmError};
use nvalloc_pmem::{CrashImage, LatencyMode, PmemConfig, PmemPool};

fn pool(bytes: usize) -> Arc<PmemPool> {
    PmemPool::new(PmemConfig::default().pool_size(bytes).latency_mode(LatencyMode::Off))
}

fn crash_pool(bytes: usize) -> Arc<PmemPool> {
    PmemPool::new(
        PmemConfig::default().pool_size(bytes).latency_mode(LatencyMode::Off).crash_tracking(true),
    )
}

fn mk(cfg: NvConfig, bytes: usize) -> (Arc<PmemPool>, NvAllocator) {
    let p = pool(bytes);
    let a = NvAllocator::create(Arc::clone(&p), cfg).expect("create");
    (p, a)
}

#[test]
fn small_alloc_free_roundtrip() {
    let (p, a) = mk(NvConfig::log(), 32 << 20);
    let mut t = a.thread();
    let root = a.root_offset(0);
    let addr = t.malloc_to(100, root).unwrap();
    assert_eq!(p.read_u64(root), addr);
    assert!(a.live_bytes() >= 100);
    t.free_from(root).unwrap();
    assert_eq!(p.read_u64(root), 0);
    assert_eq!(a.live_bytes(), 0);
}

#[test]
fn zero_size_and_bad_dest_rejected() {
    let (_, a) = mk(NvConfig::log(), 32 << 20);
    let mut t = a.thread();
    assert!(matches!(t.malloc_to(0, a.root_offset(0)), Err(PmError::InvalidRequest(_))));
    assert!(matches!(t.malloc_to(64, 3), Err(PmError::InvalidRequest(_))));
    assert!(matches!(t.malloc_to(64, u64::MAX - 7), Err(PmError::InvalidRequest(_))));
}

#[test]
fn double_free_detected() {
    let (_, a) = mk(NvConfig::log(), 32 << 20);
    let mut t = a.thread();
    let root = a.root_offset(0);
    t.malloc_to(64, root).unwrap();
    t.free_from(root).unwrap();
    assert!(matches!(t.free_from(root), Err(PmError::NotAllocated)));
}

#[test]
fn allocations_do_not_overlap() {
    let (_, a) = mk(NvConfig::log(), 64 << 20);
    let mut t = a.thread();
    let mut ranges: Vec<(u64, u64)> = Vec::new();
    let sizes = [8usize, 24, 64, 100, 112, 250, 600, 1024, 4096, 10_000, 16_384, 40_000, 200_000];
    for (i, &sz) in sizes.iter().cycle().take(300).enumerate() {
        let root = a.root_offset(i);
        let addr = t.malloc_to(sz, root).unwrap();
        let end = addr + sz as u64;
        for &(s, e) in &ranges {
            assert!(end <= s || addr >= e, "overlap: [{addr:#x},{end:#x}) vs [{s:#x},{e:#x})");
        }
        ranges.push((addr, end));
    }
}

#[test]
fn data_survives_between_neighbours() {
    // Write a pattern into each block; neighbours must not clobber it.
    let (p, a) = mk(NvConfig::log(), 32 << 20);
    let mut t = a.thread();
    let mut blocks = Vec::new();
    for i in 0..200usize {
        let root = a.root_offset(i);
        let addr = t.malloc_to(64, root).unwrap();
        p.write_u64(addr, 0xA5A5_0000 + i as u64);
        blocks.push(addr);
    }
    for (i, &addr) in blocks.iter().enumerate() {
        assert_eq!(p.read_u64(addr), 0xA5A5_0000 + i as u64);
    }
}

#[test]
fn large_alloc_free_roundtrip() {
    let (p, a) = mk(NvConfig::log(), 64 << 20);
    let mut t = a.thread();
    let root = a.root_offset(0);
    let addr = t.malloc_to(300 << 10, root).unwrap();
    assert_eq!(p.read_u64(root), addr);
    t.free_from(root).unwrap();
    // Huge (> 2 MB) path too.
    let addr2 = t.malloc_to(3 << 20, root).unwrap();
    assert_eq!(addr2 % 4096, 0);
    t.free_from(root).unwrap();
}

#[test]
fn freed_memory_is_reused() {
    let (_, a) = mk(NvConfig::log(), 32 << 20);
    let mut t = a.thread();
    let root = a.root_offset(0);
    // Exercise churn far beyond the pool size: 20k x 1 KB = 20 MB turned
    // over within a 32 MB pool.
    for _ in 0..20_000 {
        t.malloc_to(1024, root).unwrap();
        t.free_from(root).unwrap();
    }
}

#[test]
fn gc_variant_basic_ops() {
    let (p, a) = mk(NvConfig::gc(), 32 << 20);
    let mut t = a.thread();
    let root = a.root_offset(0);
    let addr = t.malloc_to(128, root).unwrap();
    assert_eq!(p.read_u64(root), addr);
    t.free_from(root).unwrap();
    // GC small path must not flush at runtime.
    p.stats().reset();
    t.malloc_to(128, root).unwrap();
    let s = p.stats().snapshot();
    assert_eq!(s.flushes, 0, "GC small allocations must not flush");
    t.free_from(root).unwrap();
}

#[test]
fn log_variant_flushes_wal_and_meta() {
    let (p, a) = mk(NvConfig::log(), 32 << 20);
    let mut t = a.thread();
    let root = a.root_offset(0);
    // Warm the tcache first.
    t.malloc_to(128, root).unwrap();
    t.free_from(root).unwrap();
    p.stats().reset();
    t.malloc_to(128, root).unwrap();
    let s = p.stats().snapshot();
    assert!(s.flushes_of(nvalloc_pmem::FlushKind::Wal) >= 1);
    assert!(s.flushes_of(nvalloc_pmem::FlushKind::Meta) >= 1, "bitmap");
    assert!(s.flushes_of(nvalloc_pmem::FlushKind::Data) >= 1, "dest install");
}

#[test]
fn multithreaded_stress_no_overlap() {
    let (p, a) = mk(NvConfig::log().arenas(4), 128 << 20);
    let nthreads = 8;
    let per = 500;
    std::thread::scope(|s| {
        for k in 0..nthreads {
            let a = a.clone();
            let p = Arc::clone(&p);
            s.spawn(move || {
                let mut t = a.thread();
                let mut mine = Vec::new();
                for i in 0..per {
                    let slot = k * per + i;
                    let root = a.root_offset(slot);
                    let sz = 16 + (i * 37) % 2000;
                    let addr = t.malloc_to(sz, root).unwrap();
                    p.write_u64(addr, (k * per + i) as u64 | 1 << 62);
                    mine.push((root, addr, slot));
                    if i % 3 == 0 {
                        let (root, _, _) = mine.remove(0);
                        t.free_from(root).unwrap();
                    }
                }
                // Verify our tags survived.
                for (_, addr, slot) in &mine {
                    assert_eq!(p.read_u64(*addr), *slot as u64 | 1 << 62);
                }
            });
        }
    });
}

#[test]
fn cross_thread_free() {
    // Larson-style: thread A allocates, thread B frees.
    let (_, a) = mk(NvConfig::log().arenas(2), 64 << 20);
    let mut ta = a.thread();
    let mut roots = Vec::new();
    for i in 0..300 {
        let root = a.root_offset(i);
        ta.malloc_to(64 + i % 512, root).unwrap();
        roots.push(root);
    }
    std::thread::scope(|s| {
        let a2 = a.clone();
        s.spawn(move || {
            let mut tb = a2.thread();
            for root in roots {
                tb.free_from(root).unwrap();
            }
        });
    });
    assert_eq!(a.live_bytes(), 0);
}

#[test]
fn morphing_reduces_memory_under_class_shift() {
    // W1-style: allocate many small, delete most, then allocate another
    // class. With morphing, mostly-empty slabs convert; memory stays lower.
    let run = |morphing: bool| {
        let cfg = NvConfig::log().morphing(morphing).arenas(1).roots(1 << 17);
        let (_, a) = mk(cfg, 256 << 20);
        let mut t = a.thread();
        let n = 40_000;
        for i in 0..n {
            t.malloc_to(100, a.root_offset(i)).unwrap();
        }
        // Delete 90 %.
        for i in 0..n {
            if i % 10 != 0 {
                t.free_from(a.root_offset(i)).unwrap();
            }
        }
        // Allocate a different class: enough volume that, without
        // morphing, fresh slabs overflow into new regions.
        for i in 0..n {
            t.malloc_to(130, a.root_offset(n + i)).unwrap();
        }
        a.heap_mapped_bytes()
    };
    let with = run(true);
    let without = run(false);
    assert!(with < without, "morphing should reduce mapped bytes: with={with} without={without}");
}

#[test]
fn exit_and_recover_normal_shutdown() {
    for cfg in [NvConfig::log(), NvConfig::gc()] {
        let p = crash_pool(64 << 20);
        let a = NvAllocator::create(Arc::clone(&p), cfg.clone()).unwrap();
        let mut t = a.thread();
        let mut expect: HashMap<usize, u64> = HashMap::new();
        for i in 0..500usize {
            let sz = if i % 7 == 0 { 40 << 10 } else { 32 + i % 900 };
            let addr = t.malloc_to(sz, a.root_offset(i)).unwrap();
            p.write_u64(addr, i as u64 + 1000);
            p.flush(t.pm_mut(), addr, 8, nvalloc_pmem::FlushKind::Data);
            expect.insert(i, addr);
        }
        for i in (0..500).step_by(3) {
            t.free_from(a.root_offset(i)).unwrap();
            expect.remove(&i);
        }
        drop(t);
        a.exit();

        let reboot = PmemPool::from_crash_image(p.clean_shutdown_image());
        let (a2, report) = NvAllocator::recover(Arc::clone(&reboot), cfg.clone()).unwrap();
        assert!(report.normal_shutdown);
        assert!(report.slabs > 0);
        let mut t2 = a2.thread();
        // All surviving objects readable with intact contents and freeable.
        for (&i, &addr) in &expect {
            assert_eq!(reboot.read_u64(a2.root_offset(i)), addr);
            assert_eq!(reboot.read_u64(addr), i as u64 + 1000, "payload of {i} corrupt");
            t2.free_from(a2.root_offset(i)).unwrap();
        }
        // And the allocator still works.
        let addr = t2.malloc_to(256, a2.root_offset(0)).unwrap();
        assert_ne!(addr, 0);
    }
}

fn crash_image_mid_run(cfg: NvConfig, ops: usize) -> (CrashImage, HashMap<usize, u64>) {
    let p = crash_pool(64 << 20);
    let a = NvAllocator::create(Arc::clone(&p), cfg).unwrap();
    let mut t = a.thread();
    let mut live: HashMap<usize, u64> = HashMap::new();
    for i in 0..ops {
        let slot = i % 256;
        let root = a.root_offset(slot);
        if let std::collections::hash_map::Entry::Vacant(e) = live.entry(slot) {
            let sz = if i % 13 == 0 { 100 << 10 } else { 24 + (i * 11) % 1500 };
            let addr = t.malloc_to(sz, root).unwrap();
            // Persist a payload tag like a real application would.
            p.write_u64(addr, slot as u64 | 0xBEEF_0000_0000);
            p.flush(t.pm_mut(), addr, 8, nvalloc_pmem::FlushKind::Data);
            p.fence(t.pm_mut());
            e.insert(addr);
        } else {
            t.free_from(root).unwrap();
            live.remove(&slot);
        }
    }
    (p.crash(), live)
}

#[test]
fn crash_recovery_log_variant_preserves_live_data() {
    let (img, live) = crash_image_mid_run(NvConfig::log(), 2000);
    let reboot = PmemPool::from_crash_image(img);
    let (a, report) = NvAllocator::recover(Arc::clone(&reboot), NvConfig::log()).unwrap();
    assert!(!report.normal_shutdown);
    let mut t = a.thread();
    // LOG variant: every committed allocation is present and intact.
    for (&slot, &addr) in &live {
        assert_eq!(reboot.read_u64(a.root_offset(slot)), addr, "root {slot} lost");
        assert_eq!(reboot.read_u64(addr), slot as u64 | 0xBEEF_0000_0000);
        t.free_from(a.root_offset(slot)).unwrap();
    }
    assert_eq!(a.live_bytes(), 0, "no leaked bytes after freeing everything");
}

#[test]
fn crash_recovery_log_variant_allows_reallocation_of_everything() {
    // After recovery + freeing all live objects, the heap must be able to
    // serve the same volume again (no permanent leaks).
    let (img, live) = crash_image_mid_run(NvConfig::log(), 3000);
    let reboot = PmemPool::from_crash_image(img);
    let (a, _) = NvAllocator::recover(Arc::clone(&reboot), NvConfig::log()).unwrap();
    let mut t = a.thread();
    for &slot in live.keys() {
        t.free_from(a.root_offset(slot)).unwrap();
    }
    for i in 0..2000usize {
        let root = a.root_offset(i % 256);
        if reboot.read_u64(root) != 0 {
            t.free_from(root).unwrap();
        }
        t.malloc_to(64 + i % 1024, root).unwrap();
    }
}

#[test]
fn crash_recovery_gc_variant_collects_garbage() {
    // GC variant: unflushed dest writes may be lost; after recovery the
    // reachable set is exactly what the roots (persisted by app fences)
    // point at, and everything else is collectable.
    let p = crash_pool(64 << 20);
    let a = NvAllocator::create(Arc::clone(&p), NvConfig::gc()).unwrap();
    let mut t = a.thread();
    let mut live: HashMap<usize, u64> = HashMap::new();
    for i in 0..400usize {
        let root = a.root_offset(i);
        let addr = t.malloc_to(64 + i % 700, root).unwrap();
        // The *application* persists its root pointers (GC-model contract).
        p.flush(t.pm_mut(), root, 8, nvalloc_pmem::FlushKind::Data);
        p.write_u64(addr, i as u64);
        p.flush(t.pm_mut(), addr, 8, nvalloc_pmem::FlushKind::Data);
        live.insert(i, addr);
    }
    // Drop half the roots (persisted) — those blocks become garbage.
    for i in (0..400).step_by(2) {
        let root = a.root_offset(i);
        p.write_u64(root, 0);
        p.flush(t.pm_mut(), root, 8, nvalloc_pmem::FlushKind::Data);
        live.remove(&i);
    }
    p.fence(t.pm_mut());

    let reboot = PmemPool::from_crash_image(p.crash());
    let (a2, report) = NvAllocator::recover(Arc::clone(&reboot), NvConfig::gc()).unwrap();
    assert!(!report.normal_shutdown);
    assert_eq!(report.gc_live_blocks, live.len(), "GC must mark exactly the root-reachable blocks");
    let mut t2 = a2.thread();
    for (&i, &addr) in &live {
        assert_eq!(reboot.read_u64(a2.root_offset(i)), addr);
        assert_eq!(reboot.read_u64(addr), i as u64);
        t2.free_from(a2.root_offset(i)).unwrap();
    }
}

#[test]
fn recover_unformatted_pool_fails() {
    let p = pool(16 << 20);
    assert!(matches!(NvAllocator::recover(p, NvConfig::log()), Err(PmError::Corrupt(_))));
}

#[test]
fn heap_exhaustion_is_reported_not_panicked() {
    let (_, a) = mk(NvConfig::log(), 16 << 20);
    let mut t = a.thread();
    let mut i = 0usize;
    loop {
        match t.malloc_to(1 << 20, a.root_offset(i)) {
            Ok(_) => i += 1,
            Err(PmError::OutOfMemory { .. }) => break,
            Err(e) => panic!("unexpected {e}"),
        }
        assert!(i < 1000);
    }
    // Frees make room again.
    t.free_from(a.root_offset(0)).unwrap();
    t.malloc_to(1 << 20, a.root_offset(0)).unwrap();
}

#[test]
fn interleaving_eliminates_reflushes_end_to_end() {
    let run = |cfg: NvConfig| {
        let p = PmemPool::new(
            PmemConfig::default().pool_size(64 << 20).latency_mode(LatencyMode::Virtual),
        );
        let a = NvAllocator::create(Arc::clone(&p), cfg).unwrap();
        let mut t = a.thread();
        // Warm up one slab + tcache. Destination slots are spread one
        // cache line apart so only allocator-induced traffic is measured.
        for i in 0..80 {
            t.malloc_to(64, a.root_offset(i * 8)).unwrap();
        }
        p.stats().reset();
        for i in 80..400 {
            t.malloc_to(64, a.root_offset(i * 8)).unwrap();
        }
        let s = p.stats().snapshot();
        s.reflush_pct()
    };
    let base = run(NvConfig::base());
    let full = run(NvConfig::log());
    assert!(base > 30.0, "Base config must reflush heavily ({base:.1}%)");
    assert!(full < 5.0, "NVAlloc-LOG must all but eliminate reflushes ({full:.1}%)");
}

#[test]
fn variant_tags() {
    let (_, log) = mk(NvConfig::log(), 16 << 20);
    assert_eq!(log.name(), "NVAlloc-LOG");
    assert_eq!(log.root_count(), NvConfig::log().roots);
    let (_, gc) = mk(NvConfig::gc(), 16 << 20);
    assert_eq!(gc.name(), "NVAlloc-GC");
}
