//! The internal-collection variant (NVAlloc-IC, the paper's §4.1 future
//! work): no WAL, objects enumerable, strongly consistent with a single
//! metadata flush per operation.

use std::sync::Arc;

use nvalloc::api::PmAllocator;
use nvalloc::{NvAllocator, NvConfig};
use nvalloc_pmem::{FlushKind, LatencyMode, PmemConfig, PmemPool};

fn pool(track: bool) -> Arc<PmemPool> {
    PmemPool::new(
        PmemConfig::default()
            .pool_size(64 << 20)
            .latency_mode(LatencyMode::Virtual)
            .crash_tracking(track),
    )
}

#[test]
fn ic_does_not_write_wal() {
    let p = pool(false);
    let a = NvAllocator::create(Arc::clone(&p), NvConfig::internal()).unwrap();
    assert_eq!(a.name(), "NVAlloc-IC");
    let mut t = a.thread();
    for i in 0..100 {
        t.malloc_to(64, a.root_offset(i)).unwrap();
    }
    let s = p.stats().snapshot();
    assert_eq!(s.flushes_of(FlushKind::Wal), 0, "IC must not touch the WAL");
    assert!(s.flushes_of(FlushKind::Meta) > 0, "bitmaps still persisted");
}

#[test]
fn ic_enumerates_every_live_object() {
    let p = pool(false);
    let a = NvAllocator::create(Arc::clone(&p), NvConfig::internal()).unwrap();
    let mut t = a.thread();
    let mut expect = std::collections::HashSet::new();
    for i in 0..300usize {
        let sz = [16usize, 100, 1024, 20 << 10, 100 << 10][i % 5];
        let addr = t.malloc_to(sz, a.root_offset(i)).unwrap();
        expect.insert(addr);
    }
    for i in (0..300).step_by(3) {
        let addr = p.read_u64(a.root_offset(i));
        t.free_from(a.root_offset(i)).unwrap();
        expect.remove(&addr);
    }
    let objs = a.objects();
    let got: std::collections::HashSet<u64> = objs.iter().map(|(o, _)| *o).collect();
    assert_eq!(got, expect, "objects() must enumerate exactly the live set");
    // Sizes cover the requests.
    for (off, size) in objs {
        let _ = (off, size);
        assert!(size >= 8);
    }
}

#[test]
fn ic_cheaper_than_log_per_op() {
    let run = |cfg: NvConfig| {
        let p = pool(false);
        let a = NvAllocator::create(Arc::clone(&p), cfg).unwrap();
        let mut t = a.thread();
        for i in 0..500 {
            t.malloc_to(64, a.root_offset(i * 8)).unwrap();
        }
        t.pm().virtual_ns()
    };
    let log = run(NvConfig::log());
    let ic = run(NvConfig::internal());
    assert!(ic < log, "IC ({ic}ns) must beat LOG ({log}ns): one less flush per op");
}

#[test]
fn ic_survives_crash_without_wal() {
    let p = pool(true);
    let a = NvAllocator::create(Arc::clone(&p), NvConfig::internal()).unwrap();
    let mut t = a.thread();
    let mut live = std::collections::HashMap::new();
    for i in 0..400usize {
        let sz = 32 + i % 900;
        let addr = t.malloc_to(sz, a.root_offset(i)).unwrap();
        p.write_u64(addr, i as u64 | 0x1C << 56);
        p.flush(t.pm_mut(), addr, 8, FlushKind::Data);
        live.insert(i, addr);
    }
    for i in (0..400).step_by(2) {
        t.free_from(a.root_offset(i)).unwrap();
        live.remove(&i);
    }
    p.fence(t.pm_mut());
    let img = PmemPool::from_crash_image(p.crash());
    let (a2, report) = NvAllocator::recover(Arc::clone(&img), NvConfig::internal()).unwrap();
    assert!(!report.normal_shutdown);
    assert_eq!(report.wal_replayed, 0, "IC recovery replays nothing");
    // Committed objects are enumerable and intact.
    let objs: std::collections::HashSet<u64> = a2.objects().iter().map(|(o, _)| *o).collect();
    for (&i, &addr) in &live {
        assert!(objs.contains(&addr), "object {i} missing from collection");
        assert_eq!(img.read_u64(addr), i as u64 | 0x1C << 56);
    }
    // And freeable.
    let mut t2 = a2.thread();
    for &i in live.keys() {
        t2.free_from(a2.root_offset(i)).unwrap();
    }
    assert_eq!(a2.live_bytes(), 0);
}
