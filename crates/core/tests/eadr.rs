//! eADR-platform behaviour (§6.7): flushes are free, stores are charged
//! through a write-combining model, and NVAlloc auto-disables its
//! interleaving (which only exists to avoid flush-path reflushes).

use std::sync::Arc;

use nvalloc::api::PmAllocator;
use nvalloc::{NvAllocator, NvConfig};
use nvalloc_pmem::{LatencyMode, PmemConfig, PmemMode, PmemPool};

fn eadr_pool() -> Arc<PmemPool> {
    PmemPool::new(
        PmemConfig::default()
            .pool_size(64 << 20)
            .latency_mode(LatencyMode::Virtual)
            .pmem_mode(PmemMode::Eadr),
    )
}

#[test]
fn auto_eadr_disables_interleaving() {
    let a = NvAllocator::create(eadr_pool(), NvConfig::log()).unwrap();
    let cfg = a.config();
    assert!(!cfg.interleave_bitmap);
    assert!(!cfg.interleave_tcache);
    assert!(!cfg.interleave_wal);
    assert!(!cfg.interleave_booklog);
    // Morphing is orthogonal and stays on.
    assert!(cfg.morphing);
}

#[test]
fn auto_eadr_can_be_overridden() {
    let cfg = NvConfig { auto_eadr: false, ..NvConfig::log() };
    let a = NvAllocator::create(eadr_pool(), cfg).unwrap();
    assert!(a.config().interleave_bitmap, "explicit override must stick");
}

#[test]
fn eadr_charges_stores_not_flushes() {
    let p = eadr_pool();
    let a = NvAllocator::create(Arc::clone(&p), NvConfig::log()).unwrap();
    let mut t = a.thread();
    for i in 0..200 {
        t.malloc_to(64, a.root_offset(i * 8)).unwrap();
    }
    let s = p.stats().snapshot();
    // Flush *operations* still happen (the code path is unchanged) but
    // they cost nothing; all accrued time comes from store misses.
    assert!(s.flushes > 0);
    assert_eq!(s.kind_ns.iter().sum::<u64>(), 0, "flushes must be free under eADR");
    assert!(t.pm().virtual_ns() > 0, "stores must be charged");
}

#[test]
fn eadr_faster_than_adr_for_strong_allocator() {
    let run = |mode: PmemMode| {
        let p = PmemPool::new(
            PmemConfig::default()
                .pool_size(64 << 20)
                .latency_mode(LatencyMode::Virtual)
                .pmem_mode(mode),
        );
        let a = NvAllocator::create(Arc::clone(&p), NvConfig::log()).unwrap();
        let mut t = a.thread();
        for i in 0..500 {
            t.malloc_to(64, a.root_offset(i * 8)).unwrap();
        }
        t.pm().virtual_ns()
    };
    let adr = run(PmemMode::Adr);
    let eadr = run(PmemMode::Eadr);
    assert!(eadr * 2 < adr, "eADR should be at least 2x cheaper (adr={adr}ns eadr={eadr}ns)");
}

#[test]
fn recovery_works_on_eadr_pools() {
    // Under eADR the entire cache is in the persistence domain, so a crash
    // image is the full volatile state.
    let p = PmemPool::new(
        PmemConfig::default()
            .pool_size(64 << 20)
            .latency_mode(LatencyMode::Off)
            .pmem_mode(PmemMode::Eadr)
            .crash_tracking(true),
    );
    let a = NvAllocator::create(Arc::clone(&p), NvConfig::log()).unwrap();
    let mut t = a.thread();
    let addr = t.malloc_to(100, a.root_offset(0)).unwrap();
    p.write_u64(addr, 42);
    // eADR: no flush needed for survival — but our crash image only keeps
    // flushed lines, so model the platform flush-on-power-fail by taking
    // the clean image.
    let img = PmemPool::from_crash_image(p.clean_shutdown_image());
    let (a2, _) = NvAllocator::recover(Arc::clone(&img), NvConfig::log()).unwrap();
    assert_eq!(img.read_u64(a2.root_offset(0)), addr);
    assert_eq!(img.read_u64(addr), 42);
}
