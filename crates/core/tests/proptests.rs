//! Property-based tests over the core data structures (via the
//! `internals` module): interleave bijectivity, bitmap-layout uniqueness,
//! rtree model equivalence, and the size-class contract.

use nvalloc::internals::{BitmapLayout, Interleave, Owner, RTree};
use nvalloc::{class_size, size_to_class};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig { cases: 256, ..ProptestConfig::default() })]

    #[test]
    fn interleave_is_bijective(
        n in 1usize..2000,
        per_line in prop_oneof![Just(1usize), Just(2), Just(4), Just(8), Just(512)],
        stripes in 1usize..40,
    ) {
        let m = Interleave::new(n, per_line, stripes);
        let mut seen = vec![false; n];
        for i in 0..n {
            let p = m.physical(i);
            prop_assert!(p < n, "physical {p} out of bounds");
            prop_assert!(!seen[p], "slot {p} hit twice");
            seen[p] = true;
            prop_assert_eq!(m.logical(p), i, "inverse mismatch");
        }
    }

    #[test]
    fn interleave_spreads_full_windows(
        windows in 1usize..20,
        per_line in prop_oneof![Just(2usize), Just(8)],
        stripes in 2usize..12,
    ) {
        let n = windows * per_line * stripes;
        let m = Interleave::new(n, per_line, stripes);
        for i in 0..n - 1 {
            let a = m.physical(i) / per_line;
            let b = m.physical(i + 1) / per_line;
            prop_assert_ne!(a, b, "consecutive slots {} and {} share a line", i, i + 1);
        }
    }

    #[test]
    fn bitmap_layout_bits_unique(n in 1usize..9000, stripes in 1usize..40) {
        let l = BitmapLayout::new(n, stripes);
        let mut seen = std::collections::HashSet::new();
        for i in 0..n {
            let loc = l.location(i);
            prop_assert!(loc.0 < l.bytes());
            prop_assert!(seen.insert(loc), "bit collision at {i}");
        }
    }

    #[test]
    fn bitmap_interleaved_neighbours_differ(n in 64usize..9000, stripes in 2usize..17) {
        let l = BitmapLayout::new(n, stripes);
        if l.stripes() < 2 {
            return Ok(());
        }
        for i in 0..n - 1 {
            let (a, _) = l.location(i);
            let (b, _) = l.location(i + 1);
            prop_assert_ne!(a / 64, b / 64, "blocks {} and {} share a cache line", i, i + 1);
        }
    }

    #[test]
    fn size_class_contract(size in 1usize..16384) {
        let c = size_to_class(size).expect("small sizes map");
        prop_assert!(class_size(c) >= size, "class too small");
        if c > 0 {
            prop_assert!(class_size(c - 1) < size, "class not minimal");
        }
    }

    #[test]
    fn owner_packing_roundtrips(slab_idx in 0u64..1 << 20, arena in 0u32..1 << 14, veh in any::<u32>()) {
        let s = Owner::Slab { slab: slab_idx * nvalloc::SLAB_SIZE as u64, arena };
        prop_assert_eq!(Owner::unpack(s.pack()), s);
        let e = Owner::Extent { veh: veh >> 2 };
        prop_assert_eq!(Owner::unpack(e.pack()), e);
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn rtree_matches_model(ops in proptest::collection::vec(
        (0u64..256, 1usize..8, any::<bool>()), 1..100,
    )) {
        let tree = RTree::new();
        let mut model: std::collections::HashMap<u64, u64> = std::collections::HashMap::new();
        for (page, len, insert) in ops {
            let off = page * 4096;
            let bytes = len * 4096;
            if insert {
                let value = off + 1;
                tree.insert_range(off, bytes, value);
                for p in page..page + len as u64 {
                    model.insert(p, value);
                }
            } else {
                tree.remove_range(off, bytes);
                for p in page..page + len as u64 {
                    model.remove(&p);
                }
            }
        }
        for page in 0..264u64 {
            let got = tree.lookup(page * 4096 + 123);
            prop_assert_eq!(got, model.get(&page).copied(), "page {}", page);
        }
    }
}
