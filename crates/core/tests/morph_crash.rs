//! Targeted crash-recovery tests for slab morphing: synthesise the exact
//! persistent states a crash can leave at each `flag` step (§5.2) and
//! verify recovery rolls back (flags 1–2) or forward (flag 3), preserving
//! every live block.

use std::collections::HashMap;
use std::sync::Arc;

use nvalloc::api::PmAllocator;
use nvalloc::{NvAllocator, NvConfig};
use nvalloc_pmem::{LatencyMode, PmemConfig, PmemPool};

fn crash_pool(mb: usize) -> Arc<PmemPool> {
    PmemPool::new(
        PmemConfig::default()
            .pool_size(mb << 20)
            .latency_mode(LatencyMode::Off)
            .crash_tracking(true),
    )
}

/// Drive the allocator into morphing naturally, crash right after, and
/// verify the `slab_in` state round-trips through recovery.
#[test]
fn crash_after_complete_morph_preserves_old_blocks() {
    let p = crash_pool(128);
    let cfg = NvConfig::log().arenas(1).roots(1 << 17);
    let a = NvAllocator::create(Arc::clone(&p), cfg.clone()).unwrap();
    let mut t = a.thread();

    // Fill one class, delete most, persist the survivors' payloads.
    let n = 4000usize;
    let mut survivors: HashMap<usize, u64> = HashMap::new();
    for i in 0..n {
        let addr = t.malloc_to(100, a.root_offset(i)).unwrap();
        if i % 25 == 0 {
            p.write_u64(addr + 8, i as u64 | 0x11AA << 32);
            p.flush(t.pm_mut(), addr + 8, 8, nvalloc_pmem::FlushKind::Data);
            survivors.insert(i, addr);
        }
    }
    for i in 0..n {
        if i % 25 != 0 {
            t.free_from(a.root_offset(i)).unwrap();
        }
    }
    // Trigger morphing by demanding another class.
    let mut extra = Vec::new();
    for j in 0..n {
        let addr = t.malloc_to(1200, a.root_offset(n + j)).unwrap();
        extra.push((n + j, addr));
        if j > 200 {
            break;
        }
    }
    p.fence(t.pm_mut());

    // Crash and recover.
    let img = PmemPool::from_crash_image(p.crash());
    let (a2, report) = NvAllocator::recover(Arc::clone(&img), cfg).unwrap();
    assert!(!report.normal_shutdown);
    let mut t2 = a2.thread();
    // Every pre-morph survivor is intact and freeable (the old-block path).
    for (&i, &addr) in &survivors {
        assert_eq!(img.read_u64(a2.root_offset(i)), addr, "root {i}");
        assert_eq!(img.read_u64(addr + 8), i as u64 | 0x11AA << 32, "payload {i}");
        t2.free_from(a2.root_offset(i)).unwrap();
    }
    // New-class blocks too.
    for (slot, addr) in extra {
        assert_eq!(img.read_u64(a2.root_offset(slot)), addr);
        t2.free_from(a2.root_offset(slot)).unwrap();
    }
    assert_eq!(a2.live_bytes(), 0);
}

/// Exercise morph + old-block frees + finalisation (`slab_after`) across a
/// crash: after the last old block dies the slab must recover as a regular
/// slab of the new class.
#[test]
fn crash_after_morph_finalisation() {
    let p = crash_pool(128);
    let cfg = NvConfig::log().arenas(1).roots(1 << 17);
    let a = NvAllocator::create(Arc::clone(&p), cfg.clone()).unwrap();
    let mut t = a.thread();
    let n = 4000usize;
    for i in 0..n {
        t.malloc_to(100, a.root_offset(i)).unwrap();
    }
    // Free everything except a handful, morph, then free the rest (driving
    // cnt_slab to zero → slab_after).
    for i in 0..n {
        if i % 100 != 0 {
            t.free_from(a.root_offset(i)).unwrap();
        }
    }
    for j in 0..150 {
        t.malloc_to(1200, a.root_offset(n + j)).unwrap();
    }
    for i in (0..n).step_by(100) {
        t.free_from(a.root_offset(i)).unwrap();
    }
    let img = PmemPool::from_crash_image(p.crash());
    let (a2, _) = NvAllocator::recover(Arc::clone(&img), cfg).unwrap();
    let mut t2 = a2.thread();
    for j in 0..150 {
        t2.free_from(a2.root_offset(n + j)).unwrap();
    }
    assert_eq!(a2.live_bytes(), 0);
    // The heap still serves both classes.
    t2.malloc_to(100, a2.root_offset(0)).unwrap();
    t2.malloc_to(1200, a2.root_offset(1)).unwrap();
}

/// Repeated morph/crash cycles keep the heap sound.
#[test]
fn morph_crash_cycles() {
    let cfg = NvConfig::log().arenas(1).roots(1 << 17).su_threshold(0.3);
    let mut image = {
        let p = crash_pool(128);
        let a = NvAllocator::create(Arc::clone(&p), cfg.clone()).unwrap();
        let mut t = a.thread();
        for i in 0..2000 {
            t.malloc_to(100, a.root_offset(i)).unwrap();
        }
        for i in 0..2000 {
            if i % 10 != 0 {
                t.free_from(a.root_offset(i)).unwrap();
            }
        }
        p.crash()
    };
    for round in 0..3 {
        let p = PmemPool::from_crash_image(image);
        let (a, _) = NvAllocator::recover(Arc::clone(&p), cfg.clone())
            .unwrap_or_else(|e| panic!("round {round}: {e}"));
        let mut t = a.thread();
        // Alternate demanded class per round to provoke fresh morphs.
        let size = [1200, 300, 2000][round];
        for j in 0..100 {
            t.malloc_to(size, a.root_offset(4000 + round * 200 + j)).unwrap();
        }
        // Old survivors from the very first life remain freeable.
        if round == 2 {
            for i in (0..2000).step_by(10) {
                t.free_from(a.root_offset(i)).unwrap();
            }
        }
        image = p.crash();
    }
}
