//! End-to-end pmsan coverage: clean runs are violation-free across
//! variants, sanitizer-on runs measure identically to sanitizer-off
//! runs, quiesce defines a clean idle point, and crash-image
//! enumeration windows produce only recoverable images.

use std::sync::Arc;

use nvalloc::api::PmAllocator;
use nvalloc::doctor;
use nvalloc::{NvAllocator, NvConfig};
use nvalloc_pmem::{FlushKind, LatencyMode, PmemConfig, PmemPool};

fn san_pool(bytes: usize) -> Arc<PmemPool> {
    PmemPool::new(
        PmemConfig::default()
            .pool_size(bytes)
            .latency_mode(LatencyMode::Off)
            .crash_tracking(true)
            .pmsan(true),
    )
}

fn mk_san(cfg: NvConfig, bytes: usize) -> (Arc<PmemPool>, NvAllocator) {
    let p = san_pool(bytes);
    let a = NvAllocator::create(Arc::clone(&p), cfg.pmsan(true)).expect("create");
    (p, a)
}

/// A mixed small/large churn workload exercising slabs, the WAL (LOG
/// variant), the booklog, and frees.
fn churn(a: &NvAllocator, slots: usize, rounds: usize) {
    let mut t = a.thread();
    let sizes = [16usize, 48, 100, 256, 600, 1500, 4096, 9000, 40_000];
    for r in 0..rounds {
        for i in 0..slots {
            let root = a.root_offset(i);
            if r > 0 {
                t.free_from(root).unwrap();
            }
            t.malloc_to(sizes[(r + i) % sizes.len()], root).unwrap();
        }
    }
    for i in 0..slots {
        t.free_from(a.root_offset(i)).unwrap();
    }
    t.flush_cache();
}

#[test]
fn clean_run_has_zero_violations_log() {
    let (p, a) = mk_san(NvConfig::log(), 48 << 20);
    churn(&a, 64, 4);
    a.quiesce();
    a.exit();
    assert_eq!(p.pmsan_total(), 0, "{}", p.pmsan_report().unwrap().to_json());
}

#[test]
fn clean_run_has_zero_violations_gc() {
    let (p, a) = mk_san(NvConfig::gc(), 48 << 20);
    churn(&a, 64, 4);
    a.quiesce();
    a.exit();
    assert_eq!(p.pmsan_total(), 0, "{}", p.pmsan_report().unwrap().to_json());
}

#[test]
fn clean_run_has_zero_violations_base() {
    let (p, a) = mk_san(NvConfig::base(), 48 << 20);
    churn(&a, 64, 4);
    a.quiesce();
    a.exit();
    assert_eq!(p.pmsan_total(), 0, "{}", p.pmsan_report().unwrap().to_json());
}

#[test]
fn recovery_run_has_zero_violations() {
    // Crash mid-churn, recover on a sanitized pool: recovery's own
    // persistence (WAL replay, GC rebuild, leak reclaim) must also be
    // ordering-clean.
    let (p, a) = mk_san(NvConfig::log(), 48 << 20);
    churn(&a, 32, 2);
    let mut t = a.thread();
    for i in 0..16 {
        t.malloc_to(100, a.root_offset(i)).unwrap();
    }
    drop(t);
    let img = p.crash();
    let rp = PmemPool::from_crash_image(img);
    assert!(rp.pmsan_enabled(), "crash image must inherit pmsan config");
    let (ra, _report) = NvAllocator::recover(Arc::clone(&rp), NvConfig::log().pmsan(true)).unwrap();
    ra.exit();
    assert_eq!(rp.pmsan_total(), 0, "{}", rp.pmsan_report().unwrap().to_json());
}

#[test]
fn sanitizer_is_measurement_invariant() {
    // Modelled results (virtual clocks, flush/fence counts) must be
    // identical with the sanitizer on and off: it observes the
    // persistence stream, it never participates in it.
    let run = |pmsan: bool| {
        let p = PmemPool::new(
            PmemConfig::default()
                .pool_size(48 << 20)
                .latency_mode(LatencyMode::Off)
                .crash_tracking(true)
                .pmsan(pmsan),
        );
        let a = NvAllocator::create(Arc::clone(&p), NvConfig::log().pmsan(pmsan)).expect("create");
        churn(&a, 48, 3);
        a.quiesce();
        a.exit();
        p.stats().snapshot()
    };
    assert_eq!(run(true), run(false));
}

#[test]
fn quiesce_drains_remote_queues() {
    let (p, a) = mk_san(NvConfig::log().arenas(4), 48 << 20);
    // Allocate on one thread (arena A), free on another (arena B):
    // the frees are deferred onto A's remote queue.
    let mut t1 = a.thread();
    for i in 0..40 {
        t1.malloc_to(64, a.root_offset(i)).unwrap();
    }
    t1.flush_cache();
    let mut t2 = a.thread();
    for i in 0..40 {
        t2.free_from(a.root_offset(i)).unwrap();
    }
    t2.flush_cache();
    drop(t1);
    drop(t2);
    let before = a.metrics();
    a.quiesce();
    let after = a.metrics();
    assert!(
        after.remote_drained >= before.remote_drained,
        "quiesce must not lose drain accounting"
    );
    // The heap is idle and every deferred free is home: live accounting
    // is exact and a shutdown right now is violation-free.
    assert_eq!(a.live_bytes(), 0);
    a.exit();
    assert_eq!(p.pmsan_total(), 0, "{}", p.pmsan_report().unwrap().to_json());
}

#[test]
fn metrics_surface_pmsan_counters() {
    let (p, a) = mk_san(NvConfig::log(), 32 << 20);
    // Manufacture one violation straight on the pool: an empty fence.
    let mut t = p.register_thread();
    p.fence(&mut t);
    let m = a.metrics();
    assert_eq!(m.pmsan_empty_fence, 1);
    assert_eq!(m.pmsan_violations, 1);
    let json = m.to_json();
    assert!(json.contains("\"pmsan_empty_fence\":1"), "{json}");
    a.exit();
}

#[test]
fn window_images_all_recover_clean() {
    // Enumerate every legal crash image across a window of allocator
    // activity; each one must recover and pass the doctor's audit.
    let (p, a) = mk_san(NvConfig::log(), 48 << 20);
    churn(&a, 16, 2);
    p.pmsan_window_begin();
    let mut t = a.thread();
    for i in 0..6 {
        t.malloc_to(100 + i * 64, a.root_offset(i)).unwrap();
    }
    for i in 0..3 {
        t.free_from(a.root_offset(i)).unwrap();
    }
    t.flush_cache();
    drop(t);
    let w = p.pmsan_window_end();
    assert!(w.fence_count() > 0, "window saw no fences");
    let images = p.pmsan_window_images(&w, 512);
    assert!(!images.is_empty());
    let n = images.len();
    for (i, img) in images.into_iter().enumerate() {
        let rp = PmemPool::from_crash_image(img);
        let (ra, _rep) = NvAllocator::recover(Arc::clone(&rp), NvConfig::log().pmsan(true))
            .unwrap_or_else(|e| panic!("image {i}/{n}: recovery failed: {e:?}"));
        let verdict = doctor::audit_pool(ra.pool(), &NvConfig::log());
        assert!(verdict.clean(), "image {i}/{n}: doctor violations: {:?}", verdict.violations);
        drop(ra);
    }
    // The original (uncrashed) allocator is still intact.
    a.exit();
}

#[test]
fn enumeration_covers_fence_subsets_on_raw_pool() {
    // Deterministic shape check on the allocator's pool: two fences with
    // known pending sets enumerate to the expected distinct images.
    let (p, _a) = mk_san(NvConfig::log(), 32 << 20);
    let mut t = p.register_thread();
    let heap = 16 << 20; // scratch offsets well inside the pool
    p.pmsan_window_begin();
    p.write_u64(heap, 1);
    p.charge_store(&mut t, heap, 8);
    p.flush(&mut t, heap, 8, FlushKind::Data);
    p.fence(&mut t);
    let w = p.pmsan_window_end();
    assert_eq!(w.fence_count(), 1);
    let images = p.pmsan_window_images(&w, 16);
    assert_eq!(images.len(), 2, "one pending line => in/out images");
}
