//! FPTree crash durability: committed inserts (bitmap bit persisted last)
//! survive a power failure; half-written entries vanish cleanly; the tree
//! reopens over the recovered allocator.

use std::sync::Arc;

use nvalloc::api::PmAllocator;
use nvalloc::{NvAllocator, NvConfig};
use nvalloc_fptree::FpTree;
use nvalloc_pmem::{LatencyMode, PmemConfig, PmemPool};

#[test]
fn committed_inserts_survive_crash() {
    let pool = PmemPool::new(
        PmemConfig::default()
            .pool_size(128 << 20)
            .latency_mode(LatencyMode::Off)
            .crash_tracking(true),
    );
    let alloc: Arc<dyn PmAllocator> =
        Arc::new(NvAllocator::create(Arc::clone(&pool), NvConfig::log()).unwrap());
    let tree = FpTree::new(Arc::clone(&alloc), 128).unwrap();
    let mut s = tree.session();
    let n = 2000u64;
    for k in 0..n {
        s.insert(k, k * 7).unwrap();
    }
    for k in (0..n).step_by(3) {
        s.remove(k).unwrap();
    }

    // Crash. Rebuild allocator, then the tree's volatile directory.
    let img = PmemPool::from_crash_image(pool.crash());
    let (alloc2, _) = NvAllocator::recover(Arc::clone(&img), NvConfig::log()).unwrap();
    let alloc2: Arc<dyn PmAllocator> = Arc::new(alloc2);
    let tree2 = FpTree::reopen(Arc::clone(&alloc2), 128).unwrap();
    let mut s2 = tree2.session();
    for k in 0..n {
        let expect = if k % 3 == 0 { None } else { Some(k * 7) };
        assert_eq!(s2.get(k), expect, "key {k}");
    }
    // The tree keeps working: reinsert the deleted keys.
    for k in (0..n).step_by(3) {
        s2.insert(k, k + 1).unwrap();
    }
    assert_eq!(tree2.len(), n as usize);
}

#[test]
fn crash_mid_run_loses_nothing_committed() {
    // Interleave inserts/removes and crash with no quiescence at all.
    let pool = PmemPool::new(
        PmemConfig::default()
            .pool_size(128 << 20)
            .latency_mode(LatencyMode::Off)
            .crash_tracking(true),
    );
    let alloc: Arc<dyn PmAllocator> =
        Arc::new(NvAllocator::create(Arc::clone(&pool), NvConfig::log()).unwrap());
    let tree = FpTree::new(Arc::clone(&alloc), 128).unwrap();
    let mut s = tree.session();
    let mut model = std::collections::HashMap::new();
    let mut x = 99u64;
    for _ in 0..3000 {
        x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        let k = x >> 33 & 0x7ff;
        if x & 1 == 0 {
            s.insert(k, x).unwrap();
            model.insert(k, x);
        } else {
            s.remove(k).unwrap();
            model.remove(&k);
        }
    }
    let img = PmemPool::from_crash_image(pool.crash());
    let (alloc2, _) = NvAllocator::recover(Arc::clone(&img), NvConfig::log()).unwrap();
    let alloc2: Arc<dyn PmAllocator> = Arc::new(alloc2);
    let tree2 = FpTree::reopen(Arc::clone(&alloc2), 128).unwrap();
    let s2 = tree2.session();
    // Every operation was committed before returning, so the model matches
    // exactly.
    for (k, v) in model {
        assert_eq!(s2.get(k), Some(v), "key {k}");
    }
}
