//! FPTree: a persistent B+tree with volatile inner nodes and fingerprinted
//! persistent leaves (Oukid et al., SIGMOD'16) — the real-world application
//! of the paper's §6.3 evaluation.
//!
//! Inner nodes live in DRAM and are rebuilt on recovery by scanning the
//! leaf list; leaf nodes live in persistent memory and carry a one-byte
//! *fingerprint* per entry so lookups touch (on average) one key cache
//! line. Keys and in-leaf values are 8 B; the value is a pointer to an
//! actual key-value pair block allocated from the allocator under test
//! (128 B in the paper's Facebook-derived setting), so every insert and
//! delete exercises `malloc_to`/`free_from`.
//!
//! The tree leans on the allocator API's atomic-attach semantics: a new
//! KV block is allocated *directly into its leaf value slot*, and a new
//! leaf *directly into the leaf-list next pointer*, so a crash never leaks
//! either.
//!
//! # Example
//!
//! ```
//! use std::sync::Arc;
//! use nvalloc::api::PmAllocator;
//! use nvalloc::{NvAllocator, NvConfig};
//! use nvalloc_fptree::FpTree;
//! use nvalloc_pmem::{LatencyMode, PmemConfig, PmemPool};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let pool = PmemPool::new(PmemConfig::default()
//!     .pool_size(64 << 20)
//!     .latency_mode(LatencyMode::Off));
//! let alloc = Arc::new(NvAllocator::create(pool, NvConfig::log())?);
//! let tree = FpTree::new(alloc, 128)?;
//! let mut s = tree.session();
//! s.insert(42, 4242)?;
//! assert_eq!(s.get(42), Some(4242));
//! s.remove(42)?;
//! assert_eq!(s.get(42), None);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::sync::Arc;

use parking_lot::{Mutex, RwLock};

use nvalloc::api::{AllocThread, PmAllocator};
use nvalloc::{PmError, PmOffset, PmResult};
use nvalloc_pmem::{FlushKind, PmemPool};

/// Fanout of both inner nodes and leaves (§6.3: "Each node of FPTree
/// contains 64 children").
pub const FANOUT: usize = 64;

/// Number of leaf-lock stripes.
const LOCK_STRIPES: usize = 1024;

// Persistent leaf layout (all offsets in bytes from the leaf base):
//   0   bitmap   u64   (bit i = slot i valid)
//   8   next     u64   (offset of next leaf; doubles as alloc dest)
//   16  fingerprints [u8; 64]
//   80  keys     [u64; 64]
//   592 values   [u64; 64]   (each slot doubles as the KV-block alloc dest)
const LEAF_BITMAP: u64 = 0;
const LEAF_NEXT: u64 = 8;
const LEAF_FP: u64 = 16;
const LEAF_KEYS: u64 = 80;
const LEAF_VALS: u64 = 80 + 8 * FANOUT as u64;
/// Bytes of one persistent leaf.
pub const LEAF_BYTES: usize = (LEAF_VALS as usize) + 8 * FANOUT;

#[inline]
fn fingerprint(key: u64) -> u8 {
    // Cheap mix; one byte as in the paper.
    let h = key.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    (h >> 56) as u8
}

/// Volatile inner structure: a sorted (key, leaf) directory. For the
/// fanouts and scales exercised here a flat sorted directory behaves like
/// the DRAM inner nodes of the paper (O(log n) search, rebuilt on
/// recovery) while keeping the implementation auditable.
#[derive(Debug, Default)]
struct Directory {
    /// Smallest key of each leaf, sorted; parallel to `leaves`.
    min_keys: Vec<u64>,
    leaves: Vec<PmOffset>,
}

impl Directory {
    fn leaf_for(&self, key: u64) -> Option<PmOffset> {
        if self.leaves.is_empty() {
            return None;
        }
        let i = match self.min_keys.binary_search(&key) {
            Ok(i) => i,
            Err(0) => 0,
            Err(i) => i - 1,
        };
        Some(self.leaves[i])
    }

    fn insert_leaf(&mut self, min_key: u64, leaf: PmOffset) {
        let i = self.min_keys.partition_point(|&k| k <= min_key);
        self.min_keys.insert(i, min_key);
        self.leaves.insert(i, leaf);
    }
}

fn stripe(tree: &TreeInner, leaf: PmOffset) -> &Mutex<()> {
    let h = (leaf >> 6).wrapping_mul(0x9E37_79B9_7F4A_7C15) as usize;
    &tree.leaf_locks[h % LOCK_STRIPES]
}

#[derive(Debug)]
struct TreeInner {
    alloc: Arc<dyn PmAllocator>,
    pool: Arc<PmemPool>,
    dir: RwLock<Directory>,
    leaf_locks: Vec<Mutex<()>>,
    /// Root slot holding the head of the leaf list.
    head_slot: PmOffset,
    kv_bytes: usize,
}

/// A persistent FPTree over any [`PmAllocator`].
#[derive(Debug, Clone)]
pub struct FpTree(Arc<TreeInner>);

/// Per-thread FPTree handle (owns its allocator thread).
pub struct FpTreeSession {
    tree: Arc<TreeInner>,
    thread: Box<dyn AllocThread>,
}

impl std::fmt::Debug for FpTreeSession {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FpTreeSession").finish_non_exhaustive()
    }
}

impl FpTree {
    /// Create an empty tree. `kv_bytes` is the size of the out-of-leaf
    /// key-value blocks (128 B in the paper). Root slot 0 of the allocator
    /// is claimed for the leaf-list head.
    ///
    /// # Errors
    /// Propagates allocation failures for the first leaf.
    pub fn new(alloc: Arc<dyn PmAllocator>, kv_bytes: usize) -> PmResult<FpTree> {
        let pool = Arc::clone(alloc.pool());
        let head_slot = alloc.root_offset(0);
        let inner = Arc::new(TreeInner {
            pool,
            dir: RwLock::new(Directory::default()),
            leaf_locks: (0..LOCK_STRIPES).map(|_| Mutex::new(())).collect(),
            head_slot,
            kv_bytes,
            alloc,
        });
        let tree = FpTree(inner);
        // First leaf.
        let mut s = tree.session();
        let leaf = s.alloc_leaf(tree.0.head_slot)?;
        tree.0.dir.write().insert_leaf(0, leaf);
        Ok(tree)
    }

    /// Rebuild a tree from a recovered allocator whose root slot 0 still
    /// heads the leaf list (the paper's DRAM-inner-node reconstruction).
    ///
    /// # Errors
    /// [`PmError::Corrupt`] if the leaf list is cyclic.
    pub fn reopen(alloc: Arc<dyn PmAllocator>, kv_bytes: usize) -> PmResult<FpTree> {
        let pool = Arc::clone(alloc.pool());
        let head_slot = alloc.root_offset(0);
        let inner = Arc::new(TreeInner {
            pool: Arc::clone(&pool),
            dir: RwLock::new(Directory::default()),
            leaf_locks: (0..LOCK_STRIPES).map(|_| Mutex::new(())).collect(),
            head_slot,
            kv_bytes,
            alloc,
        });
        // Walk the leaf list, computing each leaf's min key.
        let mut dir = Directory::default();
        let mut leaf = pool.read_u64(head_slot);
        let mut hops = 0usize;
        while leaf != 0 {
            if hops > 1 << 26 {
                return Err(PmError::Corrupt("cyclic leaf list"));
            }
            hops += 1;
            let bitmap = pool.read_u64(leaf + LEAF_BITMAP);
            let mut min = u64::MAX;
            for i in 0..FANOUT {
                if bitmap >> i & 1 == 1 {
                    min = min.min(pool.read_u64(leaf + LEAF_KEYS + (i * 8) as u64));
                }
            }
            dir.insert_leaf(if min == u64::MAX { 0 } else { min }, leaf);
            leaf = pool.read_u64(leaf + LEAF_NEXT);
        }
        *inner.dir.write() = dir;
        Ok(FpTree(inner))
    }

    /// Open a per-thread session.
    pub fn session(&self) -> FpTreeSession {
        FpTreeSession { tree: Arc::clone(&self.0), thread: self.0.alloc.thread() }
    }

    /// Number of live keys (full scan; test/diagnostic use).
    pub fn len(&self) -> usize {
        let dir = self.0.dir.read();
        dir.leaves
            .iter()
            .map(|&l| self.0.pool.read_u64(l + LEAF_BITMAP).count_ones() as usize)
            .sum()
    }

    /// True if no keys are stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl FpTreeSession {
    fn pool(&self) -> &PmemPool {
        &self.tree.pool
    }

    /// Allocate + zero a fresh leaf attached at `dest`.
    fn alloc_leaf(&mut self, dest: PmOffset) -> PmResult<PmOffset> {
        let leaf = self.thread.malloc_to(LEAF_BYTES, dest)?;
        let pool = Arc::clone(&self.tree.pool);
        pool.fill_bytes(leaf, LEAF_BYTES, 0);
        pool.charge_store(self.thread.pm_mut(), leaf, LEAF_BYTES);
        pool.flush(self.thread.pm_mut(), leaf, 80, FlushKind::Data);
        pool.fence(self.thread.pm_mut());
        Ok(leaf)
    }

    /// Look up `key`, returning the first 8 bytes of its KV block.
    pub fn get(&self, key: u64) -> Option<u64> {
        let tree = Arc::clone(&self.tree);
        // The directory read lock is held across the leaf access so a
        // concurrent split cannot move the key from under us.
        let dir = tree.dir.read();
        let leaf = dir.leaf_for(key)?;
        let _g = stripe(&tree, leaf).lock();
        let slot = self.find_slot(leaf, key)?;
        let kv = self.pool().read_u64(leaf + LEAF_VALS + (slot * 8) as u64);
        Some(self.pool().read_u64(kv + 8))
    }

    fn find_slot(&self, leaf: PmOffset, key: u64) -> Option<usize> {
        let pool = self.pool();
        let bitmap = pool.read_u64(leaf + LEAF_BITMAP);
        let fp = fingerprint(key);
        for i in 0..FANOUT {
            if bitmap >> i & 1 == 1 && pool.read_u8(leaf + LEAF_FP + i as u64) == fp {
                // Fingerprint hit: verify the key.
                if pool.read_u64(leaf + LEAF_KEYS + (i * 8) as u64) == key {
                    return Some(i);
                }
            }
        }
        None
    }

    /// Insert `key` → `value` (stored in a fresh KV block). Replaces any
    /// existing value.
    ///
    /// # Errors
    /// Propagates allocator failures (leaf splits allocate).
    pub fn insert(&mut self, key: u64, value: u64) -> PmResult<()> {
        loop {
            let tree = Arc::clone(&self.tree);
            let full_leaf = {
                // Lock order: directory read lock, then leaf stripe. The
                // read lock is held for the whole leaf operation so splits
                // (which take the write lock first) cannot interleave.
                let dir = tree.dir.read();
                let leaf = dir.leaf_for(key).expect("tree always has a leaf");
                let _g = stripe(&tree, leaf).lock();
                let pool = Arc::clone(&self.tree.pool);
                if let Some(slot) = self.find_slot(leaf, key) {
                    // Replace: overwrite the KV block in place.
                    let kv = pool.read_u64(leaf + LEAF_VALS + (slot * 8) as u64);
                    pool.write_u64(kv + 8, value);
                    pool.charge_store(self.thread.pm_mut(), kv + 8, 8);
                    pool.flush(self.thread.pm_mut(), kv + 8, 8, FlushKind::Data);
                    pool.fence(self.thread.pm_mut());
                    return Ok(());
                }
                let bitmap = pool.read_u64(leaf + LEAF_BITMAP);
                if bitmap != u64::MAX >> (64 - FANOUT) {
                    let slot = (!bitmap).trailing_zeros() as usize;
                    return self.write_entry(leaf, slot, bitmap, key, value);
                }
                leaf
            };
            // Leaf full: split under the directory write lock, then retry.
            self.split_leaf(full_leaf)?;
        }
    }

    /// Write one entry into `slot` of `leaf` and set its bitmap bit last
    /// (FPTree's atomic commit).
    fn write_entry(
        &mut self,
        leaf: PmOffset,
        slot: usize,
        bitmap: u64,
        key: u64,
        value: u64,
    ) -> PmResult<()> {
        let pool = Arc::clone(&self.tree.pool);
        let vslot = leaf + LEAF_VALS + (slot * 8) as u64;
        // KV block allocated straight into the leaf's value slot.
        let kv = self.thread.malloc_to(self.tree.kv_bytes, vslot)?;
        pool.write_u64(kv, key);
        pool.write_u64(kv + 8, value);
        pool.charge_store(self.thread.pm_mut(), kv, 16);
        pool.flush(self.thread.pm_mut(), kv, 16, FlushKind::Data);
        pool.write_u64(leaf + LEAF_KEYS + (slot * 8) as u64, key);
        pool.write_u8(leaf + LEAF_FP + slot as u64, fingerprint(key));
        pool.charge_store(self.thread.pm_mut(), leaf + LEAF_KEYS + (slot * 8) as u64, 8);
        pool.charge_store(self.thread.pm_mut(), leaf + LEAF_FP + slot as u64, 1);
        pool.flush(self.thread.pm_mut(), leaf + LEAF_KEYS + (slot * 8) as u64, 8, FlushKind::Data);
        pool.flush(self.thread.pm_mut(), leaf + LEAF_FP + slot as u64, 1, FlushKind::Data);
        pool.fence(self.thread.pm_mut());
        // Commit: persist the bitmap bit.
        pool.write_u64(leaf + LEAF_BITMAP, bitmap | 1 << slot);
        pool.charge_store(self.thread.pm_mut(), leaf + LEAF_BITMAP, 8);
        pool.flush(self.thread.pm_mut(), leaf + LEAF_BITMAP, 8, FlushKind::Data);
        pool.fence(self.thread.pm_mut());
        Ok(())
    }

    /// Split `leaf`: move the upper half of its keys into a new leaf linked
    /// after it.
    fn split_leaf(&mut self, leaf: PmOffset) -> PmResult<()> {
        let tree = Arc::clone(&self.tree);
        let mut dir = tree.dir.write();
        // Write lock held: no reader holds a stripe; taking the stripe too
        // keeps the lock order (dir, then stripe) consistent.
        let _g = stripe(&tree, leaf).lock();
        let pool = Arc::clone(&self.tree.pool);
        let bitmap = pool.read_u64(leaf + LEAF_BITMAP);
        if bitmap != u64::MAX >> (64 - FANOUT) {
            return Ok(()); // someone else split it already
        }
        // Median key.
        let mut keys: Vec<(u64, usize)> =
            (0..FANOUT).map(|i| (pool.read_u64(leaf + LEAF_KEYS + (i * 8) as u64), i)).collect();
        keys.sort_unstable();
        let median = keys[FANOUT / 2].0;

        // New leaf allocated into the old leaf's next pointer (atomic link).
        let old_next = pool.read_u64(leaf + LEAF_NEXT);
        let new_leaf = self.alloc_leaf(leaf + LEAF_NEXT)?;
        pool.write_u64(new_leaf + LEAF_NEXT, old_next);
        pool.charge_store(self.thread.pm_mut(), new_leaf + LEAF_NEXT, 8);
        pool.flush(self.thread.pm_mut(), new_leaf + LEAF_NEXT, 8, FlushKind::Data);

        // Copy upper half into the new leaf.
        let mut new_bitmap = 0u64;
        for (j, &(k, slot)) in keys[FANOUT / 2..].iter().enumerate() {
            let v = pool.read_u64(leaf + LEAF_VALS + (slot * 8) as u64);
            pool.write_u64(new_leaf + LEAF_KEYS + (j * 8) as u64, k);
            pool.write_u64(new_leaf + LEAF_VALS + (j * 8) as u64, v);
            pool.write_u8(new_leaf + LEAF_FP + j as u64, fingerprint(k));
            new_bitmap |= 1 << j;
        }
        pool.charge_store(self.thread.pm_mut(), new_leaf, LEAF_BYTES);
        pool.flush(self.thread.pm_mut(), new_leaf, LEAF_BYTES, FlushKind::Data);
        pool.write_u64(new_leaf + LEAF_BITMAP, new_bitmap);
        pool.charge_store(self.thread.pm_mut(), new_leaf + LEAF_BITMAP, 8);
        pool.flush(self.thread.pm_mut(), new_leaf + LEAF_BITMAP, 8, FlushKind::Data);
        pool.fence(self.thread.pm_mut());
        // Retire moved slots from the old leaf (single atomic bitmap write).
        let mut old_bitmap = bitmap;
        for &(_, slot) in &keys[FANOUT / 2..] {
            old_bitmap &= !(1 << slot);
        }
        pool.write_u64(leaf + LEAF_BITMAP, old_bitmap);
        pool.charge_store(self.thread.pm_mut(), leaf + LEAF_BITMAP, 8);
        pool.flush(self.thread.pm_mut(), leaf + LEAF_BITMAP, 8, FlushKind::Data);
        pool.fence(self.thread.pm_mut());

        dir.insert_leaf(median, new_leaf);
        Ok(())
    }

    /// Remove `key`, freeing its KV block. Returns `true` if it existed.
    ///
    /// # Errors
    /// Propagates allocator free failures.
    pub fn remove(&mut self, key: u64) -> PmResult<bool> {
        let tree = Arc::clone(&self.tree);
        let dir = tree.dir.read();
        let leaf = dir.leaf_for(key).expect("tree always has a leaf");
        let _g = stripe(&tree, leaf).lock();
        let pool = Arc::clone(&self.tree.pool);
        let Some(slot) = self.find_slot(leaf, key) else { return Ok(false) };
        // Clear the bitmap bit first (atomic un-commit), then free the KV
        // block from its value slot.
        let bitmap = pool.read_u64(leaf + LEAF_BITMAP);
        pool.write_u64(leaf + LEAF_BITMAP, bitmap & !(1 << slot));
        pool.charge_store(self.thread.pm_mut(), leaf + LEAF_BITMAP, 8);
        pool.flush(self.thread.pm_mut(), leaf + LEAF_BITMAP, 8, FlushKind::Data);
        pool.fence(self.thread.pm_mut());
        self.thread.free_from(leaf + LEAF_VALS + (slot * 8) as u64)?;
        Ok(true)
    }

    /// Range scan: visit every live `(key, value)` with `key` in
    /// `[lo, hi]`, in no particular order within a leaf but covering every
    /// qualifying leaf via the directory. Returns the pairs sorted by key.
    pub fn range(&self, lo: u64, hi: u64) -> Vec<(u64, u64)> {
        let tree = Arc::clone(&self.tree);
        let dir = tree.dir.read();
        let pool = self.pool();
        let mut out = Vec::new();
        // Leaves are directory-ordered by min key; scan the covering run.
        let start = match dir.min_keys.binary_search(&lo) {
            Ok(i) => i,
            Err(0) => 0,
            Err(i) => i - 1,
        };
        for idx in start..dir.leaves.len() {
            if dir.min_keys[idx] > hi {
                break;
            }
            let leaf = dir.leaves[idx];
            let _g = stripe(&tree, leaf).lock();
            let bitmap = pool.read_u64(leaf + LEAF_BITMAP);
            for i in 0..FANOUT {
                if bitmap >> i & 1 == 1 {
                    let k = pool.read_u64(leaf + LEAF_KEYS + (i * 8) as u64);
                    if (lo..=hi).contains(&k) {
                        let kv = pool.read_u64(leaf + LEAF_VALS + (i * 8) as u64);
                        out.push((k, pool.read_u64(kv + 8)));
                    }
                }
            }
        }
        out.sort_unstable_by_key(|(k, _)| *k);
        out
    }

    /// The underlying allocator thread (virtual-clock access for benches).
    pub fn thread(&self) -> &dyn AllocThread {
        self.thread.as_ref()
    }

    /// Mutable access to the allocator thread.
    pub fn thread_mut(&mut self) -> &mut dyn AllocThread {
        self.thread.as_mut()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nvalloc::{NvAllocator, NvConfig};
    use nvalloc_pmem::{LatencyMode, PmemConfig};

    fn tree(bytes: usize) -> (Arc<PmemPool>, FpTree) {
        let pool =
            PmemPool::new(PmemConfig::default().pool_size(bytes).latency_mode(LatencyMode::Off));
        let alloc = Arc::new(NvAllocator::create(Arc::clone(&pool), NvConfig::log()).unwrap());
        (pool, FpTree::new(alloc, 128).unwrap())
    }

    #[test]
    fn insert_get_remove() {
        let (_, t) = tree(64 << 20);
        let mut s = t.session();
        assert_eq!(s.get(1), None);
        s.insert(1, 100).unwrap();
        s.insert(2, 200).unwrap();
        assert_eq!(s.get(1), Some(100));
        assert_eq!(s.get(2), Some(200));
        assert!(s.remove(1).unwrap());
        assert_eq!(s.get(1), None);
        assert!(!s.remove(1).unwrap());
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn update_replaces_value() {
        let (_, t) = tree(64 << 20);
        let mut s = t.session();
        s.insert(7, 1).unwrap();
        s.insert(7, 2).unwrap();
        assert_eq!(s.get(7), Some(2));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn splits_preserve_all_keys() {
        let (_, t) = tree(128 << 20);
        let mut s = t.session();
        let n = 1000u64;
        for k in 0..n {
            s.insert(k * 7 % n, k * 7 % n + 1).unwrap();
        }
        assert_eq!(t.len(), n as usize);
        for k in 0..n {
            assert_eq!(s.get(k), Some(k + 1), "key {k}");
        }
    }

    #[test]
    fn mixed_workload_consistency() {
        let (_, t) = tree(128 << 20);
        let mut s = t.session();
        let mut model = std::collections::HashMap::new();
        let mut x = 12345u64;
        for _ in 0..5000 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let k = x >> 33 & 0x3ff;
            if x & 1 == 0 {
                s.insert(k, x).unwrap();
                model.insert(k, x);
            } else {
                let existed = s.remove(k).unwrap();
                assert_eq!(existed, model.remove(&k).is_some(), "key {k}");
            }
        }
        for (k, v) in model {
            assert_eq!(s.get(k), Some(v), "key {k}");
        }
    }

    #[test]
    fn concurrent_sessions() {
        let (_, t) = tree(256 << 20);
        std::thread::scope(|sc| {
            for k in 0..4u64 {
                let t = t.clone();
                sc.spawn(move || {
                    let mut s = t.session();
                    for i in 0..500u64 {
                        let key = k << 32 | i;
                        s.insert(key, key + 1).unwrap();
                    }
                    for i in 0..500u64 {
                        let key = k << 32 | i;
                        assert_eq!(s.get(key), Some(key + 1));
                        if i % 2 == 0 {
                            s.remove(key).unwrap();
                        }
                    }
                });
            }
        });
        assert_eq!(t.len(), 4 * 250);
    }

    #[test]
    fn reopen_rebuilds_inner_nodes() {
        let pool = PmemPool::new(
            PmemConfig::default().pool_size(128 << 20).latency_mode(LatencyMode::Off),
        );
        let alloc = Arc::new(NvAllocator::create(Arc::clone(&pool), NvConfig::log()).unwrap());
        let t = FpTree::new(Arc::clone(&alloc) as Arc<dyn PmAllocator>, 128).unwrap();
        let mut s = t.session();
        for k in 0..500u64 {
            s.insert(k, k * 2).unwrap();
        }
        drop(s);
        drop(t);
        // Same pool, same allocator: rebuild the volatile directory.
        let t2 = FpTree::reopen(alloc, 128).unwrap();
        assert_eq!(t2.len(), 500);
        let s2 = t2.session();
        for k in 0..500u64 {
            assert_eq!(s2.get(k), Some(k * 2), "key {k}");
        }
    }

    #[test]
    fn works_over_baseline_allocators() {
        use nvalloc_baselines::{Baseline, BaselineKind};
        for kind in [BaselineKind::Pmdk, BaselineKind::Makalu] {
            let pool = PmemPool::new(
                PmemConfig::default().pool_size(64 << 20).latency_mode(LatencyMode::Off),
            );
            let alloc = Arc::new(Baseline::create(Arc::clone(&pool), kind).unwrap());
            let t = FpTree::new(alloc, 128).unwrap();
            let mut s = t.session();
            for k in 0..300u64 {
                s.insert(k, k + 9).unwrap();
            }
            for k in 0..300u64 {
                assert_eq!(s.get(k), Some(k + 9), "{kind:?} key {k}");
            }
        }
    }
}

#[cfg(test)]
mod range_tests {
    use super::*;
    use nvalloc::{NvAllocator, NvConfig};
    use nvalloc_pmem::{LatencyMode, PmemConfig, PmemPool};

    fn tree() -> FpTree {
        let pool = PmemPool::new(
            PmemConfig::default().pool_size(128 << 20).latency_mode(LatencyMode::Off),
        );
        let alloc = Arc::new(NvAllocator::create(pool, NvConfig::log()).unwrap());
        FpTree::new(alloc, 128).unwrap()
    }

    #[test]
    fn range_scan_returns_sorted_window() {
        let t = tree();
        let mut s = t.session();
        for k in (0..2000u64).rev() {
            s.insert(k, k + 1).unwrap();
        }
        let got = s.range(500, 549);
        assert_eq!(got.len(), 50);
        assert_eq!(got.first(), Some(&(500, 501)));
        assert_eq!(got.last(), Some(&(549, 550)));
        assert!(got.windows(2).all(|w| w[0].0 < w[1].0));
    }

    #[test]
    fn range_scan_skips_deleted() {
        let t = tree();
        let mut s = t.session();
        for k in 0..300u64 {
            s.insert(k, k).unwrap();
        }
        for k in (0..300u64).step_by(2) {
            s.remove(k).unwrap();
        }
        let got = s.range(0, 299);
        assert_eq!(got.len(), 150);
        assert!(got.iter().all(|(k, _)| k % 2 == 1));
    }

    #[test]
    fn empty_and_out_of_range() {
        let t = tree();
        let mut s = t.session();
        assert!(s.range(0, u64::MAX).is_empty());
        s.insert(10, 1).unwrap();
        assert!(s.range(11, 20).is_empty());
        assert_eq!(s.range(10, 10), vec![(10, 1)]);
    }
}
