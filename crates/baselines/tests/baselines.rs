//! Behavioural tests for the five baseline allocators: correctness across
//! policies, the pathologies the paper measures (reflushes, random writes,
//! static segregation), and recovery.

use std::collections::HashMap;
use std::sync::Arc;

use nvalloc::api::PmAllocator;
use nvalloc_baselines::{Baseline, BaselineKind};
use nvalloc_pmem::{FlushKind, LatencyMode, PmemConfig, PmemPool};

fn pool(bytes: usize, mode: LatencyMode) -> Arc<PmemPool> {
    PmemPool::new(PmemConfig::default().pool_size(bytes).latency_mode(mode))
}

#[test]
fn roundtrip_every_baseline() {
    for kind in BaselineKind::ALL {
        let p = pool(32 << 20, LatencyMode::Off);
        let a = Baseline::create(Arc::clone(&p), kind).unwrap();
        let mut t = a.thread();
        let root = a.root_offset(0);
        let addr = t.malloc_to(100, root).unwrap_or_else(|e| panic!("{kind:?}: {e}"));
        assert_eq!(p.read_u64(root), addr, "{kind:?}");
        assert!(a.live_bytes() >= 100);
        t.free_from(root).unwrap();
        assert!(t.free_from(root).is_err(), "{kind:?}: double free");
        assert_eq!(a.live_bytes(), 0);
    }
}

#[test]
fn no_overlap_mixed_sizes_every_baseline() {
    for kind in BaselineKind::ALL {
        let p = pool(64 << 20, LatencyMode::Off);
        let a = Baseline::create(Arc::clone(&p), kind).unwrap();
        let mut t = a.thread();
        let mut ranges: Vec<(u64, u64)> = Vec::new();
        for i in 0..250usize {
            let sz = [16, 100, 112, 600, 1024, 9000, 20_000, 80_000][i % 8];
            let addr = t.malloc_to(sz, a.root_offset(i)).unwrap();
            let end = addr + sz as u64;
            for &(s, e) in &ranges {
                assert!(end <= s || addr >= e, "{kind:?}: overlap at {addr:#x}");
            }
            ranges.push((addr, end));
        }
    }
}

#[test]
fn churn_reuses_memory_every_baseline() {
    for kind in BaselineKind::ALL {
        let p = pool(32 << 20, LatencyMode::Off);
        let a = Baseline::create(Arc::clone(&p), kind).unwrap();
        let mut t = a.thread();
        let root = a.root_offset(0);
        for i in 0..5000 {
            t.malloc_to(64 + i % 512, root).unwrap_or_else(|e| panic!("{kind:?}@{i}: {e}"));
            t.free_from(root).unwrap();
        }
        assert!(
            a.heap_mapped_bytes() <= 8 << 20,
            "{kind:?}: churn must not grow the heap ({})",
            a.heap_mapped_bytes()
        );
    }
}

#[test]
fn multithreaded_every_baseline() {
    for kind in BaselineKind::ALL {
        let p = pool(128 << 20, LatencyMode::Off);
        let a = Baseline::create(Arc::clone(&p), kind).unwrap();
        std::thread::scope(|s| {
            for k in 0..4usize {
                let a = a.clone();
                let p = Arc::clone(&p);
                s.spawn(move || {
                    let mut t = a.thread();
                    for i in 0..300usize {
                        let slot = k * 300 + i;
                        let addr = t.malloc_to(32 + i % 800, a.root_offset(slot)).unwrap();
                        p.write_u64(addr, slot as u64);
                        if i % 2 == 0 {
                            t.free_from(a.root_offset(slot)).unwrap();
                        }
                    }
                });
            }
        });
        // Verify survivors.
        for slot in 0..1200usize {
            let addr = p.read_u64(a.root_offset(slot));
            if addr != 0 {
                assert_eq!(p.read_u64(addr), slot as u64, "{kind:?}");
            }
        }
    }
}

#[test]
fn cross_thread_free_every_baseline() {
    // Prod-con / Larson pattern, including PAllocator's remote-heap path.
    for kind in BaselineKind::ALL {
        let p = pool(64 << 20, LatencyMode::Off);
        let a = Baseline::create(Arc::clone(&p), kind).unwrap();
        let mut producer = a.thread();
        for i in 0..200 {
            producer.malloc_to(64 + i % 300, a.root_offset(i)).unwrap();
        }
        std::thread::scope(|s| {
            let a2 = a.clone();
            s.spawn(move || {
                let mut consumer = a2.thread();
                for i in 0..200 {
                    consumer.free_from(a2.root_offset(i)).unwrap();
                }
            });
        });
        assert_eq!(a.live_bytes(), 0, "{kind:?}");
    }
}

#[test]
fn strong_baselines_reflush_heavily() {
    // Fig. 1a: PMDK / nvm_malloc / PAllocator reflush 40–99.7 % of flushes
    // on fixed-size allocation streams.
    for kind in BaselineKind::STRONG {
        let p = pool(64 << 20, LatencyMode::Virtual);
        let a = Baseline::create(Arc::clone(&p), kind).unwrap();
        let mut t = a.thread();
        for i in 0..64 {
            t.malloc_to(64, a.root_offset(i * 8)).unwrap();
        }
        p.stats().reset();
        for i in 64..512 {
            t.malloc_to(64, a.root_offset(i * 8)).unwrap();
        }
        let pct = p.stats().snapshot().allocator_reflush_pct();
        assert!(pct > 50.0, "{kind:?}: expected heavy reflushing, got {pct:.1}%");
    }
}

#[test]
fn pmdk_reflushes_more_than_nvalloc_log() {
    let measure = |mk: &dyn Fn(Arc<PmemPool>) -> Box<dyn PmAllocator>| {
        let p = pool(64 << 20, LatencyMode::Virtual);
        let a = mk(Arc::clone(&p));
        let mut t = a.thread();
        for i in 0..64 {
            t.malloc_to(64, a.root_offset(i * 8)).unwrap();
        }
        p.stats().reset();
        for i in 64..512 {
            t.malloc_to(64, a.root_offset(i * 8)).unwrap();
        }
        p.stats().snapshot().allocator_reflush_pct()
    };
    let pmdk = measure(&|p| Box::new(Baseline::create(p, BaselineKind::Pmdk).unwrap()));
    let nv =
        measure(&|p| Box::new(nvalloc::NvAllocator::create(p, nvalloc::NvConfig::log()).unwrap()));
    assert!(pmdk > 55.0, "PMDK reflush {pmdk:.1}%");
    assert!(nv < 5.0, "NVAlloc-LOG reflush {nv:.1}%");
}

#[test]
fn weak_baselines_flush_less_but_makalu_flushes_on_free() {
    let p = pool(64 << 20, LatencyMode::Virtual);
    let a = Baseline::create(Arc::clone(&p), BaselineKind::Makalu).unwrap();
    let mut t = a.thread();
    for i in 0..200 {
        t.malloc_to(64, a.root_offset(i)).unwrap();
    }
    p.stats().reset();
    // Makalu allocation path: no flushes.
    for i in 200..260 {
        t.malloc_to(64, a.root_offset(i)).unwrap();
    }
    assert_eq!(p.stats().flushes(), 0, "Makalu alloc must not flush");
    // Free path: block link + header per free, with header reflushes.
    for i in 0..60 {
        t.free_from(a.root_offset(i)).unwrap();
    }
    let s = p.stats().snapshot();
    assert!(s.flushes >= 120, "Makalu frees must flush ({})", s.flushes);
    assert!(s.reflushes > 30, "header updates must reflush ({})", s.reflushes);
}

#[test]
fn ralloc_frees_cheaper_than_makalu() {
    let run = |kind: BaselineKind| {
        let p = pool(64 << 20, LatencyMode::Virtual);
        let a = Baseline::create(Arc::clone(&p), kind).unwrap();
        let mut t = a.thread();
        for i in 0..512 {
            t.malloc_to(64, a.root_offset(i)).unwrap();
        }
        p.stats().reset();
        for i in 0..512 {
            t.free_from(a.root_offset(i)).unwrap();
        }
        p.stats().flushes()
    };
    let makalu = run(BaselineKind::Makalu);
    let ralloc = run(BaselineKind::Ralloc);
    assert!(
        ralloc * 3 < makalu * 2,
        "Ralloc batching should flush notably less (ralloc={ralloc}, makalu={makalu})"
    );
}

#[test]
fn static_segregation_wastes_memory_vs_nvalloc_morphing() {
    // The Fig. 1b pathology: change allocation size after deleting 90 %.
    let run_baseline = |kind: BaselineKind| {
        let p = pool(256 << 20, LatencyMode::Off);
        let a = Baseline::create_with_roots(Arc::clone(&p), kind, 1 << 17).unwrap();
        let mut t = a.thread();
        let n = 60_000;
        for i in 0..n {
            t.malloc_to(100, a.root_offset(i)).unwrap();
        }
        for i in 0..n {
            if i % 10 != 0 {
                t.free_from(a.root_offset(i)).unwrap();
            }
        }
        for i in 0..n {
            t.malloc_to(130, a.root_offset(n + i)).unwrap();
        }
        a.heap_mapped_bytes()
    };
    let run_nvalloc = || {
        let p = pool(256 << 20, LatencyMode::Off);
        let a = nvalloc::NvAllocator::create(
            Arc::clone(&p),
            nvalloc::NvConfig::log().roots(1 << 17).arenas(1),
        )
        .unwrap();
        let mut t = a.thread();
        let n = 60_000;
        for i in 0..n {
            t.malloc_to(100, a.root_offset(i)).unwrap();
        }
        for i in 0..n {
            if i % 10 != 0 {
                t.free_from(a.root_offset(i)).unwrap();
            }
        }
        for i in 0..n {
            t.malloc_to(130, a.root_offset(n + i)).unwrap();
        }
        a.heap_mapped_bytes()
    };
    let nv = run_nvalloc();
    for kind in [BaselineKind::Pmdk, BaselineKind::Makalu] {
        let b = run_baseline(kind);
        assert!(
            nv < b,
            "{kind:?}: NVAlloc morphing should use less memory (nv={nv}, baseline={b})"
        );
    }
}

#[test]
fn inplace_headers_cause_scattered_metadata_writes() {
    // Fig. 2: large-allocation metadata goes to per-region header areas
    // spread across the heap.
    let p = pool(256 << 20, LatencyMode::Virtual);
    let a = Baseline::create(Arc::clone(&p), BaselineKind::Pmdk).unwrap();
    let mut t = a.thread();
    p.stats().enable_trace();
    let mut live = Vec::new();
    for i in 0..300usize {
        let sz = 32 << 10 | (i % 17) << 12;
        t.malloc_to(sz, a.root_offset(i)).unwrap();
        live.push(i);
        if i % 3 != 0 {
            let v = live.remove(i % live.len());
            t.free_from(a.root_offset(v)).unwrap();
        }
    }
    let meta_addrs: Vec<u64> =
        p.stats().trace().iter().filter(|r| r.kind == FlushKind::Meta).map(|r| r.addr).collect();
    p.stats().disable_trace();
    assert!(meta_addrs.len() > 100);
    // Spread: addresses span multiple 4 MB regions.
    let regions: std::collections::HashSet<u64> = meta_addrs.iter().map(|a| a >> 22).collect();
    assert!(regions.len() >= 2, "metadata writes should span regions ({})", regions.len());
}

#[test]
fn recovery_after_clean_exit_every_baseline() {
    for kind in BaselineKind::ALL {
        let p = PmemPool::new(
            PmemConfig::default()
                .pool_size(64 << 20)
                .latency_mode(LatencyMode::Off)
                .crash_tracking(true),
        );
        let a = Baseline::create(Arc::clone(&p), kind).unwrap();
        let mut t = a.thread();
        let mut live: HashMap<usize, u64> = HashMap::new();
        for i in 0..300usize {
            let sz = if i % 9 == 0 { 50 << 10 } else { 32 + i % 700 };
            let addr = t.malloc_to(sz, a.root_offset(i)).unwrap();
            p.write_u64(addr, i as u64 + 7);
            p.flush(t.pm_mut(), addr, 8, FlushKind::Data);
            live.insert(i, addr);
        }
        for i in (0..300).step_by(3) {
            t.free_from(a.root_offset(i)).unwrap();
            live.remove(&i);
        }
        drop(t);
        a.exit();

        let reboot = PmemPool::from_crash_image(p.clean_shutdown_image());
        let (a2, rep) = Baseline::recover(Arc::clone(&reboot), kind)
            .unwrap_or_else(|e| panic!("{kind:?}: {e}"));
        assert!(rep.slabs > 0, "{kind:?}");
        let mut t2 = a2.thread();
        for (&i, &addr) in &live {
            assert_eq!(reboot.read_u64(a2.root_offset(i)), addr, "{kind:?} root {i}");
            assert_eq!(reboot.read_u64(addr), i as u64 + 7, "{kind:?} payload {i}");
            t2.free_from(a2.root_offset(i)).unwrap_or_else(|e| panic!("{kind:?}: {e}"));
        }
        // Allocator serves new requests after recovery.
        t2.malloc_to(128, a2.root_offset(0)).unwrap();
    }
}

#[test]
fn recover_wrong_kind_fails() {
    let p = pool(32 << 20, LatencyMode::Off);
    let _a = Baseline::create(Arc::clone(&p), BaselineKind::Pmdk).unwrap();
    assert!(Baseline::recover(p, BaselineKind::Makalu).is_err());
}

#[test]
fn pallocator_scales_without_shared_locks() {
    // Sanity: per-thread heaps serve allocations from distinct slabs.
    let p = pool(128 << 20, LatencyMode::Off);
    let a = Baseline::create(Arc::clone(&p), BaselineKind::Pallocator).unwrap();
    let slabs: Vec<u64> = std::thread::scope(|s| {
        (0..4)
            .map(|k| {
                let a = a.clone();
                s.spawn(move || {
                    let mut t = a.thread();
                    let addr = t.malloc_to(64, a.root_offset(k)).unwrap();
                    addr & !(nvalloc::SLAB_SIZE as u64 - 1)
                })
            })
            .collect::<Vec<_>>()
            .into_iter()
            .map(|h| h.join().unwrap())
            .collect()
    });
    let distinct: std::collections::HashSet<u64> = slabs.iter().copied().collect();
    assert_eq!(distinct.len(), 4, "per-thread heaps must not share slabs");
}
